open Strip_relational
open Strip_txn

let c_close_cursor = Meter.counter "close_cursor"
let c_fetch_cursor = Meter.counter "fetch_cursor"
let c_open_cursor = Meter.counter "open_cursor"
type lock_error = exn

let update_by_key txn tb idx key f =
  let hooks = Transaction.hooks txn in
  let cursor = Table.open_index_cursor tb idx key in
  let n = ref 0 in
  let rec loop () =
    match Table.fetch cursor with
    | None -> ()
    | Some r ->
      hooks.Sql_exec.lock_record tb r Sql_exec.Exclusive;
      let values = f (Array.copy r.Record.values) in
      let r' = Table.cursor_update cursor values in
      hooks.Sql_exec.on_update tb ~old_rec:r ~new_rec:r';
      incr n;
      loop ()
  in
  loop ();
  Table.close_cursor cursor;
  !n

let lookup_one txn tb idx key =
  let hooks = Transaction.hooks txn in
  let cursor = Table.open_index_cursor tb idx key in
  let result =
    match Table.fetch cursor with
    | None -> None
    | Some r ->
      hooks.Sql_exec.lock_record tb r Sql_exec.Shared;
      Some (Array.copy r.Record.values)
  in
  Table.close_cursor cursor;
  result

let update_stock_price txn ~stocks ~by_symbol ~symbol ~price =
  let n =
    update_by_key txn stocks by_symbol
      [ Value.Str symbol ]
      (fun values ->
        values.(1) <- Value.Float price;
        values)
  in
  if n = 0 then
    invalid_arg (Printf.sprintf "update_stock_price: unknown symbol %s" symbol)

let bound_table (ctx : Rule_manager.action_ctx) name =
  match List.assoc_opt name ctx.task.Task.bound with
  | Some tmp -> tmp
  | None -> raise Not_found

let iter_bound ctx name f =
  let tmp = bound_table ctx name in
  Meter.tick_c c_open_cursor;
  Temp_table.iter tmp (fun row ->
      Meter.tick_c c_fetch_cursor;
      f (Temp_table.row_values tmp row));
  Meter.tick_c c_close_cursor
