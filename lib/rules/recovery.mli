(** Restart recovery (redo from the last checkpoint).

    Rebuilds a crashed database on a {e fresh} {!Strip_db.t} that shares
    the crashed instance's {!Strip_txn.Durable.t}:

    + restore every table from the last installed checkpoint image;
    + re-register the image's view definitions without executing them;
    + run the caller's [reinstall] hook (reattach handles, register user
      functions, reinstall rules);
    + redo the WAL tail past the image's LSN with raw table operations —
      no rule fires during redo, because committed maintenance left its
      own [Commit] records and uncommitted maintenance survives as queue
      state;
    + rebuild the unique-transaction queue (checkpoint image + logged
      enqueue/merge/release transitions) and resubmit it through
      {!Rule_manager.resubmit_recovered};
    + take a fresh checkpoint, making the recovered state the durable
      baseline and truncating the replayed log.

    The caller then re-drives the remaining workload and runs the
    {!Auditor} once the engine drains.  Recovery work is metered
    (["recovery_restore_row"], ["recovery_redo_op"],
    ["recovery_requeue"]) so its simulated latency can be charged.

    A crash injected {e during} recovery (the post-recovery checkpoint
    has a [Crash] site) leaves the old durable state untouched; the
    driver simply retries on another fresh instance. *)

type stats = {
  had_checkpoint : bool;
  restored_tables : int;
  restored_rows : int;
  redo_commits : int;
  redo_ops : int;  (** individual insert/update/delete images re-applied *)
  requeued : int;  (** unique transactions resubmitted *)
  requeued_rows : int;  (** bound rows carried by the resubmissions *)
  released : int;  (** queue slots retired by logged releases *)
  torn_tail : bool;  (** an incomplete final entry was discarded *)
  corrupt_tail : bool;  (** mid-log corruption was found (and salvaged) *)
  cp_fallbacks : int;
      (** checkpoint slots that failed their CRC and were passed over *)
  salvaged_ranges : int;  (** corrupt ranges re-fetched from a replica *)
  salvaged_bytes : int;
  quarantined_bytes : int;
      (** tail bytes dropped because no replica covered the range *)
  orphan_merges : int;
      (** [Uq_merge] records whose enqueue was lost; a synthetic entry
          was created instead of aborting recovery *)
}

type salvage = from_lsn:int -> len:int -> string option
(** Fetch [len] clean bytes starting at [from_lsn] from any replica
    whose log copy covers the range; [None] when no replica can serve
    (recovery then quarantines the tail). *)

val recover : ?salvage:salvage -> Strip_db.t -> reinstall:(unit -> unit) -> stats
(** @raise Invalid_argument if [db] has no durability layer or no
    checkpoint image is installed (take an initial checkpoint right after
    population, before the feed starts), or if every retained checkpoint
    slot fails its CRC.
    @raise Failure if a redo image does not match the restored state. *)

val pp_stats : Format.formatter -> stats -> unit
