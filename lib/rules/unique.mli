(** Registry of queued unique transactions (paper §6.3).

    "To support this lookup, a hash table is built for each type of unique
    transaction.  The hash table is used to hash the unique column values
    of a task to a pointer to its TCB."  Keys here are (user function name,
    unique-column values); the empty value list is coarse uniqueness.

    Entries are removed when the task begins to run (the rule manager wraps
    task bodies to do so) — from that point new firings start a fresh
    task.  Every operation ticks ["unique_hash"]. *)

type t

val create : unit -> t

val find : t -> func:string -> key:Strip_relational.Value.t list -> Strip_txn.Task.t option
(** The queued, not-yet-started task for this key, if any.  An entry whose
    task has already started or finished is dropped and [None] returned. *)

val register : t -> func:string -> key:Strip_relational.Value.t list -> Strip_txn.Task.t -> unit

val remove : t -> func:string -> key:Strip_relational.Value.t list -> unit

val queued : t -> int
(** Live entries (queued unique transactions).  Entries whose task already
    started or was cancelled are excluded even though [find] has not yet
    purged them — ticks nothing. *)

val entries :
  t -> ((string * Strip_relational.Value.t list) * Strip_txn.Task.t) list
(** Live entries as ((func, key), task), ordered by task id (creation
    order) so checkpoints are deterministic — ticks nothing. *)
