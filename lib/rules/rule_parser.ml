open Strip_relational
module P = Sql_parser

let event_stoppers = [ "inserted"; "deleted"; "updated"; "if"; "then" ]

let is_one_of c kws = List.exists (fun kw -> P.accept_kw c kw) kws

let parse_events c =
  let events = ref [] in
  let continue_ = ref true in
  while !continue_ do
    (match P.peek c with
    | Sql_lexer.Comma -> P.advance c
    | _ -> ());
    if P.accept_kw c "inserted" then events := Rule_ast.On_insert :: !events
    else if P.accept_kw c "deleted" then events := Rule_ast.On_delete :: !events
    else if P.accept_kw c "updated" then begin
      (* optional column list: idents (comma-separated or juxtaposed) up to
         the next event keyword or clause keyword *)
      let cols = ref [] in
      let more = ref true in
      while !more do
        (match P.peek c with
        | Sql_lexer.Comma ->
          P.advance c
        | _ -> ());
        match P.peek c with
        | Sql_lexer.Ident name
          when not (List.mem (String.lowercase_ascii name) event_stoppers) ->
          P.advance c;
          cols := name :: !cols
        | _ -> more := false
      done;
      events := Rule_ast.On_update (List.rev !cols) :: !events
    end
    else continue_ := false
  done;
  match List.rev !events with
  | [] -> P.parse_error "expected at least one event (inserted/deleted/updated)"
  | evs -> evs

let parse_bound_query c =
  let query = P.parse_select_at c in
  let bind_as =
    if P.accept_kw c "bind" then begin
      P.expect_kw c "as";
      Some (P.expect_ident c)
    end
    else None
  in
  { Rule_ast.query; bind_as }

let parse_bound_queries c =
  let qs = ref [ parse_bound_query c ] in
  let continue_ = ref true in
  while !continue_ do
    match P.peek c with
    | Sql_lexer.Comma ->
      P.advance c;
      qs := parse_bound_query c :: !qs
    | Sql_lexer.Ident name when String.lowercase_ascii name = "select" ->
      qs := parse_bound_query c :: !qs
    | _ -> continue_ := false
  done;
  List.rev !qs

let parse_at c =
  P.expect_kw c "create";
  P.expect_kw c "rule";
  let rname = P.expect_ident c in
  P.expect_kw c "on";
  let rtable = P.expect_ident c in
  P.expect_kw c "when";
  let events = parse_events c in
  let condition =
    if P.accept_kw c "if" then parse_bound_queries c else []
  in
  P.expect_kw c "then";
  let evaluate =
    if P.accept_kw c "evaluate" then parse_bound_queries c else []
  in
  P.expect_kw c "execute";
  let func = P.expect_ident c in
  let uniqueness =
    if P.accept_kw c "unique" then
      if P.accept_kw c "on" then begin
        let cols = ref [ P.expect_ident c ] in
        while P.peek c = Sql_lexer.Comma do
          P.advance c;
          cols := P.expect_ident c :: !cols
        done;
        Rule_ast.Unique_on (List.rev !cols)
      end
      else Rule_ast.Unique
    else Rule_ast.Not_unique
  in
  let delay =
    if P.accept_kw c "after" then begin
      let v =
        match P.peek c with
        | Sql_lexer.Float_lit f ->
          P.advance c;
          f
        | Sql_lexer.Int_lit i ->
          P.advance c;
          float_of_int i
        | t ->
          P.parse_error "expected a time value after AFTER, found %s"
            (Sql_lexer.token_to_string t)
      in
      let v =
        if P.accept_kw c "seconds" || P.accept_kw c "second" then v
        else if P.accept_kw c "milliseconds" || P.accept_kw c "ms" then
          v /. 1000.0
        else v
      in
      if v < 0.0 then P.parse_error "negative delay";
      v
    end
    else 0.0
  in
  (* tolerate trailing [end rule] / [end function] *)
  if P.accept_kw c "end" then ignore (is_one_of c [ "rule"; "function" ]);
  {
    Rule_ast.rname;
    rtable;
    events;
    condition;
    evaluate;
    func;
    uniqueness;
    delay;
  }

let parse s =
  let c = P.cursor_of_string s in
  let r = parse_at c in
  (match P.peek c with
  | Sql_lexer.Semi -> P.advance c
  | _ -> ());
  if not (P.at_eof c) then
    P.parse_error "trailing input after rule definition";
  r

let is_rule_ddl s =
  match Sql_lexer.tokenize s with
  | [||] | [| Sql_lexer.Eof |] -> false
  | toks -> (
    match (toks.(0), if Array.length toks > 1 then toks.(1) else Sql_lexer.Eof) with
    | Sql_lexer.Ident a, Sql_lexer.Ident b ->
      String.lowercase_ascii a = "create" && String.lowercase_ascii b = "rule"
    | _ -> false)
  | exception Sql_lexer.Lex_error _ -> false
