open Strip_relational
open Strip_txn

let c_unique_hash = Meter.counter "unique_hash"
module Key = struct
  type t = string * Value.t list

  let equal (f1, k1) (f2, k2) =
    String.equal f1 f2
    && List.length k1 = List.length k2
    && List.for_all2 Value.equal k1 k2

  let hash (f, k) = Hashtbl.hash (f, List.map Value.hash k)
end

module Tbl = Hashtbl.Make (Key)

type t = { tbl : Task.t Tbl.t }

let create () = { tbl = Tbl.create 1024 }

let find t ~func ~key =
  Meter.tick_c c_unique_hash;
  match Tbl.find_opt t.tbl (func, key) with
  | None -> None
  | Some task ->
    if Task.started task || task.Task.state = Task.Cancelled then begin
      Tbl.remove t.tbl (func, key);
      None
    end
    else Some task

let register t ~func ~key task =
  Meter.tick_c c_unique_hash;
  Tbl.replace t.tbl (func, key) task

let remove t ~func ~key =
  Meter.tick_c c_unique_hash;
  Tbl.remove t.tbl (func, key)

(* Entries whose task has started (or was cancelled) are purged only lazily
   inside [find], so [Tbl.length] overcounts; report only live batch-queue
   entries — the quantity the overload watermark and the [unique_queued]
   metric mean. *)
let queued t =
  Tbl.fold
    (fun _ task n ->
      if Task.started task || task.Task.state = Task.Cancelled then n
      else n + 1)
    t.tbl 0

(* Live entries in a deterministic order (by task id = creation order),
   for checkpointing.  No meter tick: the checkpoint pays per-row costs
   instead. *)
let entries t =
  Tbl.fold
    (fun key task acc ->
      if Task.started task || task.Task.state = Task.Cancelled then acc
      else (key, task) :: acc)
    t.tbl []
  |> List.sort (fun (_, (a : Task.t)) (_, (b : Task.t)) ->
         compare a.Task.task_id b.Task.task_id)
