(** The STRIP database facade.

    Bundles the whole system — catalog, lock manager, virtual clock, rule
    manager, and the discrete-event engine — behind the interface an
    application sees: execute statements, define rules, register user
    functions, submit update transactions, and run the system.

    Statements executed through {!exec} run in their own transaction and go
    through the full end-of-transaction rule protocol, so an [UPDATE] here
    triggers rules exactly like one inside an experiment.  Tasks created by
    rules (and by {!submit_update}) wait in the engine; {!run} drains
    them. *)

type t

val create :
  ?policy:Strip_txn.Queues.policy ->
  ?cost:Strip_sim.Cost_model.t ->
  ?now:float ->
  ?fault:Strip_txn.Fault.config ->
  ?durable:Strip_txn.Durable.t ->
  ?retry:Strip_sim.Engine.retry ->
  ?overload:Strip_sim.Engine.overload ->
  ?servers:int ->
  ?lock_timeout_s:float ->
  ?trace:Strip_obs.Trace.t ->
  ?slo:Strip_obs.Slo.t ->
  ?provenance:Strip_obs.Provenance.t ->
  unit ->
  t
(** [fault] installs a deterministic fault injector on every task
    transaction (rule actions and update tasks); [retry] enables the
    engine's bounded-exponential-backoff recovery for failed tasks;
    [overload] enables watermark-based shedding of delayed rule tasks.
    All three default to off, preserving fail-fast semantics.

    [durable] wires a write-ahead log and checkpoint store (see
    docs/RECOVERY.md): every commit appends redo images and unique-queue
    transitions and fsyncs, {!checkpoint} installs action-consistent
    snapshots, and after a {!Strip_txn.Fault.Crashed} escape the pair is
    what {!Recovery.recover} rebuilds from.  Without it, no durability
    work happens at all — crash-free runs are byte-identical to a build
    without this subsystem.

    [servers] (default 1) sets the engine's executor count; the lock
    manager arbitrates overlapping service windows for real (blocked tasks
    park and wake FIFO by task id; waits past [lock_timeout_s] are
    presumed deadlocked and retried).  See docs/CONCURRENCY.md.

    [trace] turns on lifecycle tracing: the engine and rule manager emit
    enqueue/release/execution/commit/abort/retry/merge/shed/dead-letter
    events into the given ring buffer (export with
    {!Strip_obs.Trace.chrome_json}).  When tracing is on, every update
    task minted by {!submit_update} carries a fresh {!Strip_obs.Span}
    root context that rule firings, commits, WAL records and replica
    applies parent-link under.

    [slo] attaches a staleness-SLO monitor: each rule-transaction commit
    feeds the per-view staleness sample into it, and violation windows
    accumulate per objective (exported via registry probes
    [slo_violations_total] / [slo_windows_total]).

    [provenance] attaches a bounded derived-row provenance store: each
    rule-transaction commit records which rule firing wrote which derived
    keys from which base deltas (query with {!Strip_obs.Provenance.query}
    or the [strip-cli explain] subcommand).

    Every database also carries a {!Strip_obs.Metrics} registry (see
    {!metrics}) into which the engine, rule manager, queues and fault
    injector are wired: task counts, service/queue-wait histograms per
    class, failure counters, rule firing/merge counts, queue depths, and
    per-derived-table staleness distributions sampled at the commit of
    each rule transaction. *)

(** {1 Component access} *)

val catalog : t -> Strip_relational.Catalog.t
val clock : t -> Strip_txn.Clock.t
val locks : t -> Strip_txn.Lock.t
val rules : t -> Rule_manager.t
val engine : t -> Strip_sim.Engine.t

val fault_injector : t -> Strip_txn.Fault.t option
(** The live injector (for injection counts), when [create] got [fault]. *)

val durable : t -> Strip_txn.Durable.t option
(** The durability layer, when [create] got [durable]. *)

val metrics : t -> Strip_obs.Metrics.t
(** The metrics registry every component registers into; snapshot it with
    {!Strip_obs.Metrics.snapshot} and export with
    {!Strip_obs.Metrics.json_of_rows} / [csv_of_rows]. *)

val trace : t -> Strip_obs.Trace.t option
(** The lifecycle tracer passed to {!create}, if any. *)

val slo : t -> Strip_obs.Slo.t option
(** The staleness-SLO monitor passed to {!create}, if any. *)

val provenance : t -> Strip_obs.Provenance.t option
(** The derived-row provenance store passed to {!create}, if any. *)

val now : t -> float

(** {1 Statements} *)

val exec : t -> string -> Strip_relational.Sql_exec.exec_result
(** Execute one statement (SQL or [create rule ...]) in its own
    transaction, with rule processing at commit. *)

exception Script_error of { index : int; source : string; cause : exn }
(** Raised by {!exec_script} when a statement fails: [index] is its
    1-based position in the script, [source] the reconstructed statement
    text, [cause] the underlying exception.  The failing statement's
    transaction is already aborted; earlier statements stay committed. *)

val exec_script : t -> string -> unit
(** Execute a [;]-separated script that may interleave SQL and rule DDL.
    Each statement runs in its own transaction.
    @raise Script_error if a statement fails to parse or execute. *)

val query : t -> string -> Strip_relational.Query.result
(** Run a SELECT in its own (read-only) transaction. *)

val query_rows : t -> string -> Strip_relational.Value.t array list

val with_txn : t -> (Strip_txn.Transaction.t -> 'a) -> 'a
(** Run several statements in one transaction; commits through the rule
    manager on normal return, aborts if the callback raises. *)

(** {1 Rules and user functions} *)

val register_function : t -> string -> Rule_manager.user_fun -> unit

val create_rule : t -> string -> unit
(** Parse and install a Figure-2 rule definition. *)

(** {1 Tasks and simulated execution} *)

val submit_update : t -> at:float -> ?label:string -> (Strip_txn.Transaction.t -> unit) -> unit
(** Enqueue an update-class task that runs [f] in a transaction (committed
    through the rule manager) when the simulated clock reaches [at]. *)

val submit_maintenance :
  t ->
  at:float ->
  ?label:string ->
  ?ctx:Strip_obs.Span.ctx ->
  (Strip_txn.Transaction.t -> unit) ->
  unit
(** Enqueue a recompute-class task that runs [f] in a transaction when
    the simulated clock reaches [at] — the shard coordinator uses this
    to apply merged cross-shard partial deltas with rule-action
    accounting.  [ctx] (honoured only when tracing is on) threads the
    shipping partial's span context through the applying transaction so
    cross-shard lineage stays connected. *)

val schedule_periodic :
  t ->
  every:float ->
  ?start:float ->
  ?until:float ->
  ?label:string ->
  (Strip_txn.Transaction.t -> unit) ->
  unit
(** Periodic recomputation (paper §3: "periodic recomputation is supported
    by STRIP" — e.g. refreshing [stock_stdev] nightly).  Runs [f] in its own
    background-class transaction at [start] (default [every]) and then every
    [every] seconds while the release time stays ≤ [until].
    @raise Invalid_argument if [every <= 0]. *)

val run : ?until:float -> t -> unit
(** Drain the engine: release delayed tasks and execute everything. *)

val stats : t -> Strip_sim.Stats.t

val view_definitions : t -> (string * Strip_relational.Sql_parser.select_ast) list
(** Definitions captured from [CREATE VIEW] statements, newest last (used
    by the {!Strip_ivm} rule generator and the consistency {!Auditor}). *)

(** {1 Views} *)

val declare_view : t -> sql:string -> unit
(** Execute a [CREATE VIEW] raw (outside any transaction, as schema
    population always has) and record its definition for audits and
    checkpoints.  @raise Invalid_argument on any other statement. *)

val register_view_def : t -> sql:string -> unit
(** Record a view definition {e without} executing it — for recovery,
    where the materialized view table was already restored from the
    checkpoint image and re-running the query would be wrong. *)

val view_sql : t -> (string * string) list
(** The recorded [(name, CREATE VIEW sql)] pairs, declaration order. *)

(** {1 Durability: checkpoints and crashes} *)

val checkpoint : t -> unit
(** Take an action-consistent snapshot of all tables, view definitions and
    the queued unique transactions; install it atomically in the durable
    store; append a {!Strip_txn.Wal.Checkpoint_mark} and truncate the log
    behind the image's LSN.  Charges ["checkpoint_row"] per captured row.
    The mid-checkpoint [Crash] fault site fires between capture and
    install, so a crash there recovers from the {e previous} image.
    @raise Invalid_argument without a durability layer. *)

val schedule_checkpoints :
  t -> every:float -> ?start:float -> ?until:float -> unit -> unit
(** Fuzzy checkpointing: run {!checkpoint} as a background task every
    [every] simulated seconds (first at [start], default [every] from
    now) without stopping the feed.  Each tick runs between transactions
    by construction, giving action consistency.
    @raise Invalid_argument if [every <= 0] or without a durability
    layer. *)

val schedule_crash : t -> at:float -> unit
(** Arrange for {!Strip_txn.Fault.Crashed} to be raised out of {!run} when
    the clock reaches [at] — a deterministic crash point for tests and
    benchmarks (rate-based crashes come from the [fault] config). *)

val schedule_partition : t -> at:float -> heal_after_s:float -> unit
(** Arrange for {!Strip_txn.Fault.Partitioned} to be raised out of {!run}
    when the clock reaches [at].  Unlike a crash, the node survives —
    volatile state is intact and the engine can keep running; only its
    network traffic is cut until the partition heals [heal_after_s]
    later (the driver isolates it via {!Cluster.begin_partition}). *)

val schedule_bitrot :
  t -> at:float -> target:[ `Wal | `Checkpoint ] -> frac:float -> unit
(** Arrange for at-rest bit rot at simulated time [at]: flip one durable
    byte at relative offset [frac] (0..1) of the WAL, or one byte of the
    newest checkpoint image.  Nothing is raised — the damage is silent
    until the scrubber, ship-time verification or recovery finds it.
    The injection is recorded in the store's media-fault ledger.
    @raise Invalid_argument without a durability layer. *)

val schedule_fsync_lie : t -> at:float -> unit
(** Arrange for the next fsync after [at] to lie: the write is
    acknowledged but the bytes are silently replaced by a zero gap of
    the same length ({!Strip_txn.Wal.arm_fsync_lie}).
    @raise Invalid_argument without a durability layer. *)

val schedule_disk_full : t -> at:float -> free_bytes:int -> unit
(** Arrange for the log device to clamp at [at], leaving only
    [free_bytes] of headroom: once exhausted, appends raise
    {!Strip_txn.Wal.Disk_full}, which the engine translates into a
    crash-and-recover cycle (typed backpressure, counted as a
    ["disk_full_stall"]).  @raise Invalid_argument without a durability
    layer. *)

val schedule_disk_heal : t -> at:float -> unit
(** Remove the disk-full capacity clamp at [at].
    @raise Invalid_argument without a durability layer. *)

val crash : t -> unit
(** Condemn all volatile state after a {!Strip_txn.Fault.Crashed} escape:
    discard the engine's queued/parked/in-flight tasks and drop unfsynced
    WAL bytes.  Durable state is untouched; pair with {!Recovery.recover}
    on a fresh database. *)
