open Strip_relational
open Strip_txn

type table_snap = {
  tname : string;
  cols : (string * Value.ty) list;
  indexes : (string * Index.kind * string list) list;
  rows : Value.t array list;
}

type queue_entry = {
  qfunc : string;
  qkey : Value.t list;
  qrelease_time : float;
  qcreated_at : float;
  qbound : Wal.bound_rows;
}

type t = {
  taken_at : float;
  wal_lsn : int;
  tables : table_snap list;  (* catalog creation order *)
  views : (string * string) list;  (* (name, sql), declaration order *)
  queue : queue_entry list;  (* task-id order *)
}

let snap_table tb =
  let schema = Table.schema tb in
  let cols =
    List.map (fun (c : Schema.column) -> (c.Schema.cname, c.Schema.cty))
      (Schema.columns schema)
  in
  let indexes =
    List.map
      (fun ix ->
        let names =
          Array.to_list
            (Array.map
               (fun pos -> (Schema.col schema pos).Schema.cname)
               (Index.key_cols ix))
        in
        (Index.name ix, Index.kind ix, names))
      (Table.indexes tb)
  in
  { tname = Table.name tb; cols; indexes; rows = Table.to_rows tb }

let snap_queue reg =
  List.map
    (fun ((func, key), (task : Task.t)) ->
      {
        qfunc = func;
        qkey = key;
        qrelease_time = task.Task.release_time;
        qcreated_at = task.Task.created_at;
        qbound =
          List.map
            (fun (name, tmp) -> (name, Temp_table.to_rows tmp))
            task.Task.bound;
      })
    (Unique.entries reg)

let capture ~cat ~views ~reg ~now ~wal_lsn =
  {
    taken_at = now;
    wal_lsn;
    tables = List.map snap_table (Catalog.tables cat);
    views;
    queue = snap_queue reg;
  }

let total_rows t =
  List.fold_left (fun acc ts -> acc + List.length ts.rows) 0 t.tables
  + List.fold_left
      (fun acc q ->
        List.fold_left (fun acc (_, rows) -> acc + List.length rows) acc q.qbound)
      0 t.queue

(* Rebuild tables into a fresh catalog: raw inserts (no locking or
   logging — recovery runs outside any transaction), indexes built after
   the rows so each is populated in one pass. *)
let restore_tables t cat =
  List.iter
    (fun ts ->
      let tb =
        Catalog.create_table cat ~name:ts.tname ~schema:(Schema.of_list ts.cols)
      in
      List.iter (fun row -> ignore (Table.insert tb row)) ts.rows;
      List.iter
        (fun (name, kind, cols) -> ignore (Table.create_index tb ~name ~kind ~cols))
        ts.indexes)
    t.tables

(* ------------------------------------------------------------------ *)
(* Serialization.                                                       *)

let put_kind b = function
  | Index.Hash -> Codec.put_u8 b 0
  | Index.Ordered -> Codec.put_u8 b 1

let get_kind r =
  match Codec.get_u8 r with
  | 0 -> Index.Hash
  | 1 -> Index.Ordered
  | tag -> raise (Codec.Decode_error (Printf.sprintf "index kind %d" tag))

let put_table_snap b ts =
  Codec.put_string b ts.tname;
  Codec.put_list b
    (fun b (name, ty) ->
      Codec.put_string b name;
      Codec.put_ty b ty)
    ts.cols;
  Codec.put_list b
    (fun b (name, kind, cols) ->
      Codec.put_string b name;
      put_kind b kind;
      Codec.put_list b Codec.put_string cols)
    ts.indexes;
  Codec.put_list b Codec.put_values ts.rows

let get_table_snap r =
  let tname = Codec.get_string r in
  let cols =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let ty = Codec.get_ty r in
        (name, ty))
  in
  let indexes =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let kind = get_kind r in
        let cols = Codec.get_list r Codec.get_string in
        (name, kind, cols))
  in
  let rows = Codec.get_list r Codec.get_values in
  { tname; cols; indexes; rows }

let put_queue_entry b q =
  Codec.put_string b q.qfunc;
  Codec.put_list b Codec.put_value q.qkey;
  Codec.put_float b q.qrelease_time;
  Codec.put_float b q.qcreated_at;
  Codec.put_list b
    (fun b (name, rows) ->
      Codec.put_string b name;
      Codec.put_list b Codec.put_values rows)
    q.qbound

let get_queue_entry r =
  let qfunc = Codec.get_string r in
  let qkey = Codec.get_list r Codec.get_value in
  let qrelease_time = Codec.get_float r in
  let qcreated_at = Codec.get_float r in
  let qbound =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let rows = Codec.get_list r Codec.get_values in
        (name, rows))
  in
  { qfunc; qkey; qrelease_time; qcreated_at; qbound }

let encode t =
  let b = Buffer.create 65536 in
  Codec.put_float b t.taken_at;
  Codec.put_int b t.wal_lsn;
  Codec.put_list b put_table_snap t.tables;
  Codec.put_list b
    (fun b (name, sql) ->
      Codec.put_string b name;
      Codec.put_string b sql)
    t.views;
  Codec.put_list b put_queue_entry t.queue;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let taken_at = Codec.get_float r in
  let wal_lsn = Codec.get_int r in
  let tables = Codec.get_list r get_table_snap in
  let views =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let sql = Codec.get_string r in
        (name, sql))
  in
  let queue = Codec.get_list r get_queue_entry in
  if Codec.remaining r > 0 then
    raise (Codec.Decode_error "trailing bytes in checkpoint image");
  { taken_at; wal_lsn; tables; views; queue }
