(** Programmatic data operations for user functions.

    STRIP rule actions are application functions "linked into the database"
    — compiled code driving the cursor interface rather than ad-hoc SQL
    text.  These helpers give the PTA's user functions exactly that: the
    Table-1 cursor path (open / fetch / update / close) with the calling
    transaction's locks and logging, without per-call SQL parsing.

    All record access is metered identically to the SQL path, so simulated
    costs are comparable across both. *)

type lock_error = exn

val update_by_key :
  Strip_txn.Transaction.t ->
  Strip_relational.Table.t ->
  Strip_relational.Index.t ->
  Strip_relational.Value.t list ->
  (Strip_relational.Value.t array -> Strip_relational.Value.t array) ->
  int
(** Cursor-update every record matching the index key, applying [f] to a
    copy of its values; returns the match count.  Exclusive-locks each
    record (pinning the pre-image for the rule pass) and logs the change. *)

val lookup_one :
  Strip_txn.Transaction.t ->
  Strip_relational.Table.t ->
  Strip_relational.Index.t ->
  Strip_relational.Value.t list ->
  Strip_relational.Value.t array option
(** Shared-lock and read the first record with this key. *)

val update_stock_price :
  Strip_txn.Transaction.t ->
  stocks:Strip_relational.Table.t ->
  by_symbol:Strip_relational.Index.t ->
  symbol:string ->
  price:float ->
  unit
(** The canonical market-feed update: one-tuple cursor update of
    [stocks.price] — the paper's 172 µs transaction. *)

val iter_bound :
  Rule_manager.action_ctx ->
  string ->
  (Strip_relational.Value.t array -> unit) ->
  unit
(** Iterate a bound table of the action's TCB by name, through a cursor-like
    metered read path (open, fetch per row, close).
    @raise Not_found if the task has no bound table of that name. *)

val bound_table :
  Rule_manager.action_ctx -> string -> Strip_relational.Temp_table.t
(** Direct access to a bound table.  @raise Not_found if absent. *)
