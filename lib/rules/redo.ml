open Strip_relational
open Strip_txn

(* The log carries full before/after images, so update and delete targets
   are found by whole-row match.  A per-table hash map over the live rows
   makes that O(1) per op; it is built lazily (insert-only tables never
   pay for one) and maintained incrementally as ops apply. *)

module RowKey = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if not (Value.equal v b.(i)) then ok := false) a;
    !ok

  let hash a = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 a
end

module RT = Hashtbl.Make (RowKey)

type t = {
  cat : Catalog.t;
  maps : (string, Record.t RT.t) Hashtbl.t;
  meter : string;
  mutable ops : int;
}

let create ?(meter = "recovery_redo_op") cat =
  { cat; maps = Hashtbl.create 8; meter; ops = 0 }

let n_ops t = t.ops

let row_map t tname tb =
  match Hashtbl.find_opt t.maps tname with
  | Some m -> m
  | None ->
    let m = RT.create (max 64 (2 * Table.cardinal tb)) in
    Table.iter tb (fun r -> RT.add m (Array.copy r.Record.values) r);
    Hashtbl.replace t.maps tname m;
    m

let find_row m tname values =
  match RT.find_opt m values with
  | Some r -> r
  | None ->
    failwith (Printf.sprintf "Redo: target row missing in %s" tname)

let apply t op =
  Meter.tick t.meter;
  t.ops <- t.ops + 1;
  match op with
  | Wal.Insert { table; values; _ } ->
    let tb = Catalog.table_exn t.cat table in
    let r = Table.insert tb (Array.copy values) in
    (match Hashtbl.find_opt t.maps table with
    | Some m -> RT.add m (Array.copy values) r
    | None -> ())
  | Wal.Delete { table; values; _ } ->
    let tb = Catalog.table_exn t.cat table in
    let m = row_map t table tb in
    let r = find_row m table values in
    Table.delete tb r;
    RT.remove m values
  | Wal.Update { table; old_values; new_values; _ } ->
    let tb = Catalog.table_exn t.cat table in
    let m = row_map t table tb in
    let r = find_row m table old_values in
    let r' = Table.update tb r (Array.copy new_values) in
    RT.remove m old_values;
    RT.add m (Array.copy new_values) r'

let apply_commit t ops = List.iter (apply t) ops
