(** The rule system proper (paper §2, §6.3, Appendix A).

    Responsibilities, in the order they play out for one transaction:

    + {b Event checking} — at commit, one pass over the transaction log
      finds the rules triggered per table and builds the transition
      tables.
    + {b Condition evaluation} — each triggered rule's [if] queries run in
      the triggering transaction's scope; the condition holds when every
      query returns at least one row (or there are none).  Query results
      marked [bind as] become bound tables with the §6.1 pointer layout;
      a declared [commit_time] column is stamped with the clock.
    + {b Action creation} — a task is created to run the rule's user
      function in a new transaction ("sequentially causally dependent"),
      released after the rule's delay.  For [unique] rules, the
      (function × unique-column values) hash is consulted first: if a
      not-yet-started task exists, the fresh bound-table rows are appended
      to its TCB instead (the unique-transaction merge).  [unique on]
      partitions the bound tables by the Appendix-A scheme — tables
      containing unique columns are split by key, the others are passed
      whole to every partition.
    + {b Action execution} — when the simulated CPU dispatches the task,
      the manager wraps the user function in a transaction whose
      environment is the TCB's bound-table list, removes the task's hash
      entry (new firings start a fresh batch), and commits through this
      module again, so actions can cascade. *)

type action_ctx = {
  txn : Strip_txn.Transaction.t;  (** the action transaction *)
  task : Strip_txn.Task.t;  (** the TCB (bound tables live in [txn]'s env) *)
  cat : Strip_relational.Catalog.t;
  clock : Strip_txn.Clock.t;
}

type user_fun = action_ctx -> unit
(** An application function "linked into the database" (paper §2).  Bound
    tables are readable inside [txn] under their declared names. *)

type t

exception Rule_error of string

val create :
  cat:Strip_relational.Catalog.t ->
  locks:Strip_txn.Lock.t ->
  clock:Strip_txn.Clock.t ->
  ?fault:Strip_txn.Fault.t ->
  ?durable:Strip_txn.Durable.t ->
  ?trace:Strip_obs.Trace.t ->
  ?provenance:Strip_obs.Provenance.t ->
  unit ->
  t
(** [fault] installs a fault injector consulted around every rule-action
    transaction (user-function entry, then pre-commit lock-conflict /
    deadlock / abort / crash sites).  [durable] wires the write-ahead log:
    every commit appends its redo images (plus unique-queue transitions)
    and fsyncs; without it no durability work happens at all, keeping
    crash-free runs byte-identical.  [trace] records unique-batch [merge]
    events and action-transaction [commit] events (with the tables
    written); when the committing task carries a {!Strip_obs.Span} context,
    rule tasks it creates get child contexts, and — with a durability layer
    — {!Strip_txn.Wal.Trace_note} records annotate the enqueue and commit
    so replicas and crash recovery can reattach the lineage.  [provenance]
    records, at each rule-action commit, which firing wrote which derived
    rows from which bound base deltas. *)

val set_current_ctx : t -> Strip_obs.Span.ctx option -> unit
(** Make [ctx] the ambient trace context for rule processing: firings
    triggered by the next commit parent-link their tasks under it, and
    the WAL commit annotation carries it.  {!Strip_core.Strip_db} sets it
    around each update-task body (rule actions set it themselves from
    their task). *)

val set_commit_hook :
  t -> (task:Strip_txn.Task.t -> tables:string list -> now:float -> unit) -> unit
(** Called after every successfully committed rule-action transaction with
    the tables it wrote and the commit's virtual time.  {!Strip_core.Strip_db}
    installs the staleness sampler here: each written (derived) table gets
    a [now - task.created_at] staleness sample. *)

val fault : t -> Strip_txn.Fault.t option

val set_submitter : t -> (Strip_txn.Task.t -> unit) -> unit
(** Where created action tasks go — normally {!Strip_sim.Engine.submit}. *)

val register_function : t -> string -> user_fun -> unit
(** Names are case-insensitive, matching the SQL side. *)

val create_rule : t -> Rule_ast.t -> unit
(** Compile and install a rule.  Validates that the table exists, that
    unique columns appear in the rule's bound tables, and that bound tables
    agree in layout with other rules executing the same function (the §2
    requirement that lets their batches merge).
    @raise Rule_error on any violation. *)

val create_rule_text : t -> string -> unit
(** Parse (Figure 2 syntax) and install. *)

val drop_rule : t -> string -> unit
(** @raise Rule_error if no such rule. *)

val rules : t -> Rule_ast.t list

val commit_txn :
  ?release:string * Strip_relational.Value.t list ->
  t ->
  Strip_txn.Transaction.t ->
  unit
(** End-of-transaction protocol: event checking and rule processing, then
    commit, then — with a durability layer — WAL append of the redo images
    and an fsync (the crash site ["wal_flush"] sits between the in-memory
    commit and the flush), then release of the pre-image pins.  [release]
    is the (func, unique key) whose durable queue slot this commit
    retires; {!run_action} passes it for unique transactions. *)

val registry : t -> Unique.t
(** The unique-transaction hash (exposed for tests and stats). *)

val reregister_task : t -> Strip_txn.Task.t -> unit
(** Put a retried unique transaction back in the registry (no-op for
    non-unique tasks).  {!Strip_core.Strip_db} installs this as the
    engine's requeue hook so batching survives failure: firings that occur
    during the task's backoff merge into its preserved bound tables. *)

val log_shed :
  t -> victim:Strip_txn.Task.t -> into:Strip_txn.Task.t option -> unit
(** Engine shed hook: with a durability layer, log a coalesced victim's
    rows as a merge into [into]'s queue slot (plus the victim's release)
    {e before} the rows change hands.  Plain drops log nothing — the
    victim's durable enqueue survives, so replay after a crash restores
    the shed work instead of losing it. *)

(** {1 Cross-shard partial deltas}

    Hooks for the sharded write path ({!Strip_shard}).  A routed rule
    action whose composite target row lives on another shard calls
    {!emit_partial} instead of updating locally; the buffered partials
    are stamped with monotone ship sequence numbers at commit, logged as
    {!Strip_txn.Wal.Shard_out} records in the {e same append batch} as
    the commit (so a partial is durable exactly when the commit that
    produced it is), and handed to the registered sink after the fsync.
    With no sink registered and nothing emitted, all of this is inert —
    single-primary runs stay byte-identical. *)

val set_partial_sink :
  t ->
  (seq:int ->
  dst:int ->
  key:Strip_relational.Value.t list ->
  delta:float ->
  created_at:float ->
  ctx:Strip_obs.Span.ctx option ->
  unit) ->
  unit
(** Where durable partials go — the shard coordinator's outbox.  Called
    once per partial, after the emitting commit's fsync, with the
    emitting transaction's trace context (for ship-path span
    propagation). *)

val emit_partial :
  t -> dst:int -> key:Strip_relational.Value.t list -> delta:float -> unit
(** Buffer a weighted partial delta for composite row [key] owned by
    shard [dst]; flushed (stamped, logged, shipped) by the enclosing
    commit, discarded if it aborts. *)

val note_shard_release : t -> key:Strip_relational.Value.t list -> unit
(** Record that the running action applies the merged partials for
    [key]: a {!Strip_txn.Wal.Shard_release} rides the applying commit's
    append batch, making apply + release atomic. *)

val set_release_sink :
  t -> (key:Strip_relational.Value.t list -> unit) -> unit
(** Called once per released key after the applying commit's fsync — the
    shard coordinator removes the key's merged entry from its
    distributed queue here, so removal happens only when the release is
    durable (aborts never reach it and the entry survives for a clean
    re-apply). *)

val clear_partials : t -> unit
(** Drop buffered partials and releases (abort paths call this). *)

val partial_seq : t -> int
(** Highest ship sequence number stamped so far. *)

val set_partial_seq : t -> int -> unit
(** Restore the ship sequence counter after crash recovery so re-shipped
    and fresh partials never collide. *)

(** {1 Crash recovery} *)

val bound_schemas_for :
  t -> func:string -> (string * Strip_relational.Schema.t) list option
(** Declared bound-table layouts of the rules executing [func]
    (case-insensitive), if any rule does. *)

val resubmit_recovered :
  t ->
  ctx:Strip_obs.Span.ctx option ->
  func:string ->
  key:Strip_relational.Value.t list ->
  release_time:float ->
  created_at:float ->
  bound:(string * Strip_relational.Value.t array list) list ->
  unit
(** Recreate a queued unique transaction from its logged image: rebuild
    fully-materialized bound tables against the rule's declared schemas,
    register the task in the unique hash and submit it.  [ctx] reattaches
    the batch's pre-crash trace context (recovered from its
    {!Strip_txn.Wal.Trace_note}), so the post-restart span tree stays
    linked to the original base write.
    @raise Rule_error if no installed rule executes [func]. *)

(** {1 Statistics} *)

val n_rule_firings : t -> int
(** Rule activations whose condition evaluated to true. *)

val n_tasks_created : t -> int
val n_merges : t -> int
(** Firings absorbed into an already-queued unique transaction. *)

val reset_stats : t -> unit
