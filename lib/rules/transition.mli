(** Transition tables (paper §2, §6.3).

    At commit time the rule system makes one pass over the transaction log
    and materializes, per touched table, the four transition tables —
    [inserted], [deleted], and [new]/[old] for updates.  Each has the base
    table's columns plus the system [execute_order] column that sequences
    changes within the transaction (the old and new images of one update
    share a number).  No net-effect reduction is performed: a tuple
    inserted and deleted in the same transaction appears in both tables.

    The tables use the §6.1 pointer representation: one pointer slot to the
    (possibly retired) record, with only [execute_order] materialized.
    Appending pins the records, so pre-images survive until the consuming
    rule evaluation finishes. *)

type t = {
  inserted : Strip_relational.Temp_table.t;
  deleted : Strip_relational.Temp_table.t;
  new_ : Strip_relational.Temp_table.t;
  old : Strip_relational.Temp_table.t;
}

val execute_order_column : string
(** ["execute_order"]. *)

val build :
  schema:Strip_relational.Schema.t ->
  table:string ->
  Strip_txn.Tlog.entry list ->
  t
(** Build the four tables from the given table's log entries (the caller
    filters the log by table name; [entries] must be in execution order). *)

val env : t -> Strip_relational.Catalog.env
(** The four tables under their standard names [inserted], [deleted],
    [new], [old]. *)

val retire : t -> unit
(** Release all four tables (unpinning pre-images). *)
