open Strip_relational
open Strip_txn

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type divergence = {
  view : string;
  key : Value.t;
  expected : Value.t array list;
  actual : Value.t array list;
}

type report = {
  audited : (string * int) list;
  divergences : divergence list;
}

let clean r = r.divergences = []

let value_close ~eps a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | Value.Float x, Value.Int y | Value.Int y, Value.Float x ->
    Float.abs (x -. float_of_int y) <= eps
  | _ -> Value.compare a b = 0

let row_close ~eps a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if not (value_close ~eps v b.(i)) then ok := false) a;
  !ok

(* Multiset equality under [row_close]: every expected row claims one
   not-yet-claimed actual row, and nothing is left over. *)
let rows_match ~eps expected actual =
  let rec claim row = function
    | [] -> None
    | r :: rest when row_close ~eps row r -> Some rest
    | r :: rest -> Option.map (fun rem -> r :: rem) (claim row rest)
  in
  let rec go exp act =
    match exp with
    | [] -> act = []
    | row :: rest -> (
      match claim row act with None -> false | Some act' -> go rest act')
  in
  go expected actual

(* Group rows by their first column, preserving first-seen key order. *)
let group_by_key rows =
  let tbl = VH.create 64 in
  let order = ref [] in
  List.iter
    (fun (row : Value.t array) ->
      let key = row.(0) in
      match VH.find_opt tbl key with
      | Some cell -> cell := row :: !cell
      | None ->
        VH.add tbl key (ref [ row ]);
        order := key :: !order)
    rows;
  (tbl, List.rev !order)

let rows_of tbl key =
  match VH.find_opt tbl key with Some cell -> List.rev !cell | None -> []

let audit_view ~eps cat ~name ~ast =
  let plan = Sql_exec.plan_select cat ~env:[] ast in
  let expected = Query.rows (Query.run cat ~env:[] plan) in
  let actual = Table.to_rows (Catalog.table_exn cat name) in
  let etbl, ekeys = group_by_key expected in
  let atbl, akeys = group_by_key actual in
  let extra = List.filter (fun k -> not (VH.mem etbl k)) akeys in
  let divergences =
    List.filter_map
      (fun key ->
        let exp = rows_of etbl key and act = rows_of atbl key in
        if rows_match ~eps exp act then None
        else Some { view = name; key; expected = exp; actual = act })
      (ekeys @ extra)
  in
  (List.length expected, divergences)

let audit ?(eps = 1e-9) ?views db =
  let cat = Strip_db.catalog db in
  let selected =
    match views with
    | None -> Strip_db.view_definitions db
    | Some names ->
      List.filter
        (fun (name, _) -> List.mem name names)
        (Strip_db.view_definitions db)
  in
  let audited, divergences =
    List.fold_left
      (fun (audited, divs) (name, ast) ->
        let n, d = audit_view ~eps cat ~name ~ast in
        ((name, n) :: audited, divs @ d))
      ([], []) selected
  in
  { audited = List.rev audited; divergences }

(* ------------------------------------------------------------------ *)
(* Repair.                                                              *)

let delete_key txn tb key =
  let hooks = Transaction.hooks txn in
  let schema = Table.schema tb in
  let c0 = (Schema.col schema 0).Schema.cname in
  let cursor =
    match Table.index_on tb [ c0 ] with
    | Some ix -> Table.open_index_cursor tb ix [ key ]
    | None -> Table.open_cursor tb
  in
  let rec loop () =
    match Table.fetch cursor with
    | None -> ()
    | Some r ->
      if Value.equal r.Record.values.(0) key then begin
        hooks.Sql_exec.lock_record tb r Sql_exec.Exclusive;
        Table.cursor_delete cursor;
        hooks.Sql_exec.on_delete tb r
      end;
      loop ()
  in
  loop ();
  Table.close_cursor cursor

let repair_one txn cat d =
  let tb = Catalog.table_exn cat d.view in
  let hooks = Transaction.hooks txn in
  hooks.Sql_exec.lock_table tb Sql_exec.Exclusive;
  delete_key txn tb d.key;
  List.iter
    (fun row ->
      let r = Table.insert tb (Array.copy row) in
      hooks.Sql_exec.on_insert tb r)
    d.expected

let enqueue_repairs db report =
  let cat = Strip_db.catalog db in
  let at = Strip_db.now db in
  List.iter
    (fun d ->
      Strip_db.submit_update db ~at ~label:"audit_repair" (fun txn ->
          repair_one txn cat d))
    report.divergences;
  List.length report.divergences

let pp_report ppf r =
  if clean r then
    Format.fprintf ppf "audit clean: %d views, %d rows"
      (List.length r.audited)
      (List.fold_left (fun a (_, n) -> a + n) 0 r.audited)
  else begin
    Format.fprintf ppf "audit FAILED: %d divergent keys@,"
      (List.length r.divergences);
    List.iter
      (fun d ->
        Format.fprintf ppf "  %s key=%s: expected %d row(s), found %d@," d.view
          (Value.to_string d.key) (List.length d.expected)
          (List.length d.actual))
      r.divergences
  end
