open Strip_relational
open Strip_txn

type event =
  | On_insert
  | On_delete
  | On_update of string list

type bound_query = {
  query : Sql_parser.select_ast;
  bind_as : string option;
}

type uniqueness =
  | Not_unique
  | Unique
  | Unique_on of string list

type t = {
  rname : string;
  rtable : string;
  events : event list;
  condition : bound_query list;
  evaluate : bound_query list;
  func : string;
  uniqueness : uniqueness;
  delay : float;
}

let event_matches ~schema event (change : Tlog.change) =
  match (event, change) with
  | On_insert, Tlog.Inserted _ -> true
  | On_delete, Tlog.Deleted _ -> true
  | On_update [], Tlog.Updated _ -> true
  | On_update cols, Tlog.Updated { old_rec; new_rec } ->
    List.exists
      (fun col ->
        match Schema.find schema col with
        | Some i ->
          not
            (Value.equal (Record.value old_rec i) (Record.value new_rec i))
        | None -> false)
      cols
  | (On_insert | On_delete | On_update _), _ -> false

let pp_event ppf = function
  | On_insert -> Format.pp_print_string ppf "inserted"
  | On_delete -> Format.pp_print_string ppf "deleted"
  | On_update [] -> Format.pp_print_string ppf "updated"
  | On_update cols ->
    Format.fprintf ppf "updated %s" (String.concat ", " cols)

let pp ppf r =
  Format.fprintf ppf "rule %s on %s when %a -> %s%s%s" r.rname r.rtable
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       pp_event)
    r.events r.func
    (match r.uniqueness with
    | Not_unique -> ""
    | Unique -> " unique"
    | Unique_on cols -> " unique on " ^ String.concat ", " cols)
    (if r.delay > 0.0 then Printf.sprintf " after %gs" r.delay else "")
