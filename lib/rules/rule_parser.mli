(** Parser for the rule DDL of paper Figure 2.

    Accepts the paper's concrete syntax, including the examples of Figures
    3, 6, 7 and 8 verbatim:

    {[
      create rule do_comps3 on stocks
      when updated price
      if
          select comp, comps_list.symbol as symbol, weight,
                 old.price as old_price, new.price as new_price
          from comps_list, new, old
          where comps_list.symbol = new.symbol
            and new.execute_order = old.execute_order
          bind as matches
      then
          execute compute_comps3
          unique on comp
          after 1.0 seconds
      end rule
    ]}

    Event lists are juxtaposed or comma-separated; [updated] takes an
    optional column list; [after] accepts a bare number (seconds) or
    [<number> seconds]; a trailing [end rule] / [end function] is
    tolerated.  Queries inside [if]/[evaluate] reuse the SQL parser and may
    carry a [bind as] suffix. *)

val parse : string -> Rule_ast.t
(** @raise Strip_relational.Sql_parser.Parse_error on malformed input. *)

val parse_at : Strip_relational.Sql_parser.cursor -> Rule_ast.t
(** Parse starting at [create]; leaves the cursor after the rule (and any
    trailing [end rule]). *)

val is_rule_ddl : string -> bool
(** Does the statement text start with [create rule]?  Used by the facade
    to route statements. *)
