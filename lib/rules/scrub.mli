(** Background media scrubber: periodic re-verification of durable bytes
    and checkpoint slots, with in-place repair.

    Real storage rots at rest, so detection cannot wait for the next
    crash: a scrub pass re-reads every durable WAL byte, re-verifies the
    frame chain ({!Strip_txn.Wal.verify}) and every retained checkpoint
    slot's CRC, and reports each corruption with its exact LSN range
    (["wal_corruption"] / ["checkpoint_corruption"] trace instants, the
    store's media-fault ledger, and the ["scrub_*"] meters).

    Repair ladder, per corrupt WAL range:
    + {b replica fetch} — re-fetch clean bytes for exactly that range
      from any replica whose log copy covers it ([?fetch], usually
      [Cluster.fetch_clean]) and splice them in place;
    + {b checkpoint} — when no replica can serve, take a fresh
      checkpoint: the live in-memory state is clean (at-rest corruption
      never influenced it), and truncating down to the fresh image
      expunges the corrupt range from the log;

    and a rotted checkpoint slot is dropped and replaced by a fresh
    checkpoint the same way.  A scheduled scrub runs as a background
    task (never inside a transaction); its work is metered
    (["scrub_pass"], ["scrub_byte"], ["salvage_byte"],
    ["quarantine_byte"]) so the cost model can charge it. *)

type t
(** Scrub statistics, owned by the driver so they survive restarts. *)

type fetch = from_lsn:int -> len:int -> string option
(** Fetch [len] clean bytes at [from_lsn] from a replica covering the
    range; [None] when no replica can serve. *)

val create : unit -> t

val scrub : ?fetch:fetch -> t -> Strip_db.t -> unit
(** One pass over [db]'s durable store.  No-op without a durability
    layer. *)

val schedule :
  t ->
  Strip_db.t ->
  every:float ->
  ?start:float ->
  ?until:float ->
  ?fetch:fetch ->
  unit ->
  unit
(** Run {!scrub} every [every] simulated seconds (first at [start],
    default [every] from now) until [until].
    @raise Invalid_argument if [every <= 0] or [db] has no durability
    layer. *)

(** {1 Counters} *)

val passes : t -> int
val bytes_scanned : t -> int
val wal_corruptions : t -> int
val cp_corruptions : t -> int
val repaired_replica : t -> int
val repaired_checkpoint : t -> int
val salvaged_bytes : t -> int

val expunged_bytes : t -> int
(** Log bytes truncated away by the checkpoint rung — the whole span
    below the emergency image, whose redo capability is destroyed, not
    just the rotten ranges inside it. *)
