open Strip_relational
open Strip_txn
let c_rule_check = Meter.counter "rule_check"
module Trace = Strip_obs.Trace
module Span = Strip_obs.Span
module Provenance = Strip_obs.Provenance

type action_ctx = {
  txn : Transaction.t;
  task : Task.t;
  cat : Catalog.t;
  clock : Clock.t;
}

type user_fun = action_ctx -> unit

exception Rule_error of string

let rule_error fmt = Printf.ksprintf (fun s -> raise (Rule_error s)) fmt

type compiled = {
  rule : Rule_ast.t;
  cond : (Query.plan * string option) list;
  eval : (Query.plan * string option) list;
  (* declared layout of every named bound table, for merge compatibility *)
  bound_schemas : (string * Schema.t) list;
}

type t = {
  cat : Catalog.t;
  locks : Lock.t;
  clock : Clock.t;
  fault : Fault.t option;
  dur : Durable.t option;
  funcs : (string, user_fun) Hashtbl.t;
  by_table : (string, compiled list ref) Hashtbl.t;
  mutable all_rules : compiled list;  (* creation order *)
  reg : Unique.t;
  mutable submit : (Task.t -> unit) option;
  mutable firings : int;
  mutable created : int;
  mutable merges : int;
  trace : Trace.t option;
  prov : Provenance.t option;
  (* trace context of the transaction currently committing through this
     manager — set from the running task so [fire] can parent-link the
     rule tasks it creates and [commit_txn] can annotate the WAL *)
  mutable cur_ctx : Span.ctx option;
  mutable on_commit :
    (task:Task.t -> tables:string list -> now:float -> unit) option;
  (* Cross-shard partial deltas (lib/shard).  [emit_partial] buffers a
     weighted contribution to a composite row owned by another shard while
     the action transaction runs; at commit the buffer is stamped with
     monotone ship sequence numbers, logged as [Wal.Shard_out] records in
     the same append batch as the commit (atomicity), and handed to the
     sink after the fsync.  All three stay empty outside sharded runs, so
     single-primary behavior is byte-identical. *)
  mutable partial_sink :
    (seq:int ->
    dst:int ->
    key:Value.t list ->
    delta:float ->
    created_at:float ->
    ctx:Span.ctx option ->
    unit)
    option;
  mutable partial_buf : (int * Value.t list * float) list;  (* reversed *)
  mutable release_buf : Value.t list list;  (* reversed *)
  mutable partial_seq : int;
  mutable release_sink : (key:Value.t list -> unit) option;
}

let create ~cat ~locks ~clock ?fault ?durable ?trace ?provenance () =
  {
    cat;
    locks;
    clock;
    fault;
    dur = durable;
    funcs = Hashtbl.create 16;
    by_table = Hashtbl.create 16;
    all_rules = [];
    reg = Unique.create ();
    submit = None;
    firings = 0;
    created = 0;
    merges = 0;
    trace;
    prov = provenance;
    cur_ctx = None;
    on_commit = None;
    partial_sink = None;
    partial_buf = [];
    release_buf = [];
    partial_seq = 0;
    release_sink = None;
  }

let set_partial_sink t f = t.partial_sink <- Some f
let set_release_sink t f = t.release_sink <- Some f

let emit_partial t ~dst ~key ~delta =
  t.partial_buf <- (dst, key, delta) :: t.partial_buf

let note_shard_release t ~key = t.release_buf <- key :: t.release_buf

let clear_partials t =
  t.partial_buf <- [];
  t.release_buf <- []

let partial_seq t = t.partial_seq
let set_partial_seq t n = t.partial_seq <- n

let set_commit_hook t f = t.on_commit <- Some f

let set_current_ctx t ctx = t.cur_ctx <- ctx

let ctx_args (task : Task.t) =
  match task.Task.ctx with None -> [] | Some c -> Span.args c

let fault t = t.fault

let inject t ~txn ~site ~detail =
  match t.fault with
  | None -> ()
  | Some f -> Fault.fire f ~site ~txid:(Transaction.txid txn) ~detail

let set_submitter t f = t.submit <- Some f

let submit t task =
  match t.submit with
  | Some f -> f task
  | None -> rule_error "no task submitter installed (call set_submitter)"

let register_function t name fn =
  Hashtbl.replace t.funcs (String.lowercase_ascii name) fn

let find_function t name =
  Hashtbl.find_opt t.funcs (String.lowercase_ascii name)

let registry t = t.reg

(* Installed as the engine's requeue hook: a failed unique transaction
   re-enters the registry while it waits out its retry backoff, so new
   firings keep merging into its (still intact) bound tables. *)
let reregister_task t (task : Task.t) =
  match task.Task.unique_key with
  | Some key -> Unique.register t.reg ~func:task.Task.func_name ~key task
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Durable queue logging.  With a durability layer wired, every unique
   queue transition is appended to the WAL (pending until the enclosing
   commit's fsync), so queued batches can be rebuilt after a crash. *)

(* Disk-full on an append is typed backpressure: the device refused the
   bytes, so the acked-but-unlogged work cannot be made durable.  Treat
   it as a crash — the restart driver recovers from the last checkpoint,
   whose truncation reclaims log space. *)
let wal_guard f =
  try f ()
  with Wal.Disk_full _ ->
    Meter.tick "disk_full_stall";
    raise (Fault.Crashed { at = "disk_full" })

let log_uq t record =
  match t.dur with
  | None -> ()
  | Some d -> wal_guard (fun () -> ignore (Wal.append (Durable.wal d) record))

let bound_rows_of (bound : (string * Temp_table.t) list) : Wal.bound_rows =
  List.map (fun (name, tmp) -> (name, Temp_table.to_rows tmp)) bound

(* Installed as the engine's shed hook.  A coalesced victim's rows change
   hands before the victim is cancelled: log the merge (and the victim's
   release) first, so the durable queue never loses the rows.  A plain
   drop logs nothing — the victim's durable enqueue survives, and replay
   after a crash conservatively restores the shed work. *)
let log_shed t ~(victim : Task.t) ~(into : Task.t option) =
  if t.dur <> None then
    match (victim.Task.unique_key, into) with
    | Some vkey, Some dst -> (
      match dst.Task.unique_key with
      | Some dkey ->
        log_uq t
          (Wal.Uq_merge
             {
               func = dst.Task.func_name;
               key = dkey;
               bound = bound_rows_of victim.Task.bound;
             });
        log_uq t
          (Wal.Uq_release { func = victim.Task.func_name; key = vkey })
      | None -> ())
    | _ -> ()

let n_rule_firings t = t.firings
let n_tasks_created t = t.created
let n_merges t = t.merges

let reset_stats t =
  t.firings <- 0;
  t.created <- 0;
  t.merges <- 0

(* ------------------------------------------------------------------ *)
(* Rule compilation.                                                    *)

let transition_names = [ "inserted"; "deleted"; "new"; "old" ]

let compile_rule t (rule : Rule_ast.t) =
  let base =
    match Catalog.find_table t.cat rule.Rule_ast.rtable with
    | Some tb -> Table.schema tb
    | None -> rule_error "rule %s: unknown table %s" rule.rname rule.rtable
  in
  let tschema =
    Schema.make
      (Schema.columns (Schema.unqualify base)
      @ [ Schema.column Transition.execute_order_column Value.TInt ])
  in
  let resolve_rel name =
    if List.mem name transition_names then Some (tschema, `Tmp)
    else
      match Catalog.find_table t.cat name with
      | Some tb -> Some (Table.schema tb, `Std)
      | None -> None
  in
  let plan_bound (bq : Rule_ast.bound_query) =
    let plan =
      try Sql_parser.plan_select ~resolve_rel bq.query
      with Sql_parser.Parse_error msg ->
        rule_error "rule %s: %s" rule.rname msg
    in
    (plan, bq.bind_as)
  in
  let cond = List.map plan_bound rule.condition in
  let eval = List.map plan_bound rule.evaluate in
  (* Output schemas of the bound queries (for layout validation) — computed
     against empty transition tables. *)
  let dummy = Transition.build ~schema:base ~table:rule.rtable [] in
  let env = Transition.env dummy in
  let bound_schemas =
    List.filter_map
      (fun (plan, name) ->
        match name with
        | None -> None
        | Some n -> (
          match Query.schema_of t.cat ~env plan with
          | sch -> Some (n, Schema.unqualify sch)
          | exception Query.Plan_error msg ->
            rule_error "rule %s, bound table %s: %s" rule.rname n msg))
      (cond @ eval)
  in
  Transition.retire dummy;
  (* Unique columns must come from the bound tables. *)
  (match rule.uniqueness with
  | Rule_ast.Unique_on cols ->
    List.iter
      (fun col ->
        if
          not
            (List.exists (fun (_, sch) -> Schema.mem sch col) bound_schemas)
        then
          rule_error
            "rule %s: unique column %s does not appear in any bound table"
            rule.rname col)
      cols
  | Rule_ast.Not_unique | Rule_ast.Unique -> ());
  (* Bound tables of rules executing the same function must be defined
     identically (§2), so batches can merge. *)
  List.iter
    (fun other ->
      if String.lowercase_ascii other.rule.Rule_ast.func
         = String.lowercase_ascii rule.func
      then
        List.iter
          (fun (n, sch) ->
            match List.assoc_opt n other.bound_schemas with
            | Some osch when not (Schema.equal_layout sch osch) ->
              rule_error
                "rule %s: bound table %s differs in layout from rule %s's \
                 definition (same function %s)"
                rule.rname n other.rule.Rule_ast.rname rule.func
            | _ -> ())
          bound_schemas)
    t.all_rules;
  { rule; cond; eval; bound_schemas }

let create_rule t rule =
  if
    List.exists
      (fun c -> c.rule.Rule_ast.rname = rule.Rule_ast.rname)
      t.all_rules
  then rule_error "duplicate rule name %s" rule.Rule_ast.rname;
  let compiled = compile_rule t rule in
  t.all_rules <- t.all_rules @ [ compiled ];
  let slot =
    match Hashtbl.find_opt t.by_table rule.Rule_ast.rtable with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add t.by_table rule.Rule_ast.rtable l;
      l
  in
  slot := !slot @ [ compiled ]

let create_rule_text t s = create_rule t (Rule_parser.parse s)

let drop_rule t name =
  if not (List.exists (fun c -> c.rule.Rule_ast.rname = name) t.all_rules)
  then rule_error "no such rule %s" name;
  t.all_rules <-
    List.filter (fun c -> c.rule.Rule_ast.rname <> name) t.all_rules;
  Hashtbl.iter
    (fun _ slot ->
      slot := List.filter (fun c -> c.rule.Rule_ast.rname <> name) !slot)
    t.by_table

let rules t = List.map (fun c -> c.rule) t.all_rules

(* ------------------------------------------------------------------ *)
(* Derived-row provenance.  At each rule-action commit, every written
   derived row (keyed by its leading column) gets an entry linking it to
   the firing — the task, transaction, trace context, and the bound-table
   base deltas that drove it.  Inputs are capped per bound table so one
   huge batch cannot bloat an entry; the ring itself bounds history. *)

let max_prov_inputs = 8

let render_row row =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string row)) ^ ")"

let prov_inputs (task : Task.t) =
  List.concat_map
    (fun (name, tmp) ->
      let rows = Temp_table.to_rows tmp in
      let n = List.length rows in
      let shown = List.filteri (fun i _ -> i < max_prov_inputs) rows in
      List.map
        (fun row -> { Provenance.src_table = name; src_desc = render_row row })
        shown
      @
      if n > max_prov_inputs then
        [
          {
            Provenance.src_table = name;
            src_desc =
              Printf.sprintf "... %d more row(s)" (n - max_prov_inputs);
          };
        ]
      else [])
    task.Task.bound

let record_provenance p ~(task : Task.t) ~txid ~now ~ops =
  let trace, span =
    match task.Task.ctx with
    | None -> (0, 0)
    | Some c -> (c.Span.trace, c.Span.span)
  in
  let inputs = prov_inputs task in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let view = Wal.op_table op in
      let key =
        match op with
        | Wal.Insert { values; _ } | Wal.Delete { values; _ } ->
          if Array.length values > 0 then Value.to_string values.(0) else ""
        | Wal.Update { new_values; _ } ->
          if Array.length new_values > 0 then Value.to_string new_values.(0)
          else ""
      in
      if not (Hashtbl.mem seen (view, key)) then begin
        Hashtbl.add seen (view, key) ();
        Provenance.record p
          {
            Provenance.view;
            key;
            rule = task.Task.func_name;
            task_id = task.Task.task_id;
            txid;
            trace;
            span;
            committed_at = now;
            inputs;
          }
      end)
    ops

(* ------------------------------------------------------------------ *)
(* Action execution.                                                    *)

let rec run_action t task =
  let func = task.Task.func_name in
  match find_function t func with
  | None -> rule_error "user function %s is not registered" func
  | Some fn ->
    (* A fresh firing must now start a new transaction (§2). *)
    (match task.Task.unique_key with
    | Some key -> Unique.remove t.reg ~func ~key
    | None -> ());
    (* The action's trace context is current while it runs: cascade
       firings parent under it, and its commit note carries its span. *)
    t.cur_ctx <- task.Task.ctx;
    let txn =
      Transaction.begin_ ~cat:t.cat ~locks:t.locks ~clock:t.clock
        ~env:task.Task.bound ()
    in
    (try
       (* Injection sites for the fault harness: the user function raising
          on entry; then — after the real work, but before commit-time rule
          processing so no phantom cascade firings escape an aborted
          transaction — a lock conflict, a deadlock victimization, or a
          plain abort. *)
       inject t ~txn ~site:Fault.User_fun ~detail:func;
       fn { txn; task; cat = t.cat; clock = t.clock };
       inject t ~txn ~site:Fault.Lock_conflict ~detail:func;
       inject t ~txn ~site:Fault.Deadlock ~detail:func;
       inject t ~txn ~site:Fault.Txn_abort ~detail:func;
       inject t ~txn ~site:Fault.Crash ~detail:func
     with e ->
       if Transaction.status txn = Transaction.Active then
         Transaction.abort txn;
       t.cur_ctx <- None;
       clear_partials t;
       raise e);
    if Transaction.status txn = Transaction.Active then begin
      (* the written-table set, captured before cleanup clears the log *)
      let tables = Tlog.tables_touched (Transaction.log txn) in
      (* Redo images for provenance, captured likewise (the commit clears
         the transaction log). *)
      let prov_ops =
        match t.prov with
        | None -> []
        | Some _ -> Wal.ops_of_tlog (Transaction.log txn)
      in
      let txid = Transaction.txid txn in
      (* A committing unique transaction durably releases its queue slot. *)
      let release =
        match task.Task.unique_key with
        | Some key -> Some (func, key)
        | None -> None
      in
      commit_txn ?release t txn;
      t.cur_ctx <- None;
      let now = Clock.now t.clock in
      (match t.trace with
      | None -> ()
      | Some tr ->
        Trace.instant tr ~ts:now ~tid:Trace.tid_recompute
          ~args:
            ([
               ("task", Trace.Int task.Task.task_id);
               ("func", Trace.Str func);
               ("tables", Trace.Str (String.concat "," tables));
             ]
            @ ctx_args task)
          "commit");
      (match t.prov with
      | None -> ()
      | Some p -> record_provenance p ~task ~txid ~now ~ops:prov_ops);
      match t.on_commit with
      | Some f -> f ~task ~tables ~now
      | None -> ()
    end
    else begin
      t.cur_ctx <- None;
      clear_partials t
    end

(* ------------------------------------------------------------------ *)
(* Firing: bind results, partition, merge-or-create tasks.              *)

and fire t compiled (named_results : (string * Query.result) list) =
  let rule = compiled.rule in
  let now = Clock.now t.clock in
  let release = now +. rule.Rule_ast.delay in
  t.firings <- t.firings + 1;
  let overrides_for result =
    if Schema.mem (Query.result_schema result) "commit_time" then
      [ ("commit_time", Value.Float now) ]
    else []
  in
  let bind_all parts =
    List.map
      (fun (name, result) ->
        (name, Query.bind ~overrides:(overrides_for result) ~name result))
      parts
  in
  let merge_or_create ~key named =
    match Unique.find t.reg ~func:rule.Rule_ast.func ~key with
    | Some queued ->
      (* Append this firing's rows to the queued TCB's bound tables. *)
      t.merges <- t.merges + 1;
      (match t.trace with
      | None -> ()
      | Some tr ->
        (* The merge event carries the queued task's context plus the
           incoming firing's span, so the merged trace shows both causal
           parents of the batch. *)
        let from_args =
          match t.cur_ctx with
          | None -> []
          | Some c ->
            [
              ("from_trace", Trace.Int c.Span.trace);
              ("from_span", Trace.Int c.Span.span);
            ]
        in
        Trace.instant tr ~ts:now ~tid:Trace.tid_recompute
          ~args:
            ([
               ("task", Trace.Int queued.Task.task_id);
               ("func", Trace.Str rule.Rule_ast.func);
               ( "key",
                 Trace.Str
                   (String.concat "," (List.map Value.to_string key)) );
             ]
            @ ctx_args queued @ from_args)
          "merge");
      let fresh = bind_all named in
      if t.dur <> None then
        log_uq t
          (Wal.Uq_merge
             { func = rule.Rule_ast.func; key; bound = bound_rows_of fresh });
      List.iter
        (fun (name, tmp) ->
          match List.assoc_opt name queued.Task.bound with
          | Some dst -> Temp_table.absorb dst tmp
          | None ->
            Temp_table.retire tmp;
            rule_error
              "rule %s: queued transaction for %s lacks bound table %s"
              rule.Rule_ast.rname rule.Rule_ast.func name)
        fresh
    | None ->
      t.created <- t.created + 1;
      let bound = bind_all named in
      (* The rule task is a child span of the transaction that fired it. *)
      let ctx = Option.map Span.child t.cur_ctx in
      if t.dur <> None then begin
        log_uq t
          (Wal.Uq_enqueue
             {
               func = rule.Rule_ast.func;
               key;
               release_time = release;
               created_at = now;
               bound = bound_rows_of bound;
             });
        match ctx with
        | None -> ()
        | Some c ->
          (* rides the enqueue's fsync; crash recovery reattaches the
             context to the resubmitted batch *)
          log_uq t
            (Wal.Trace_note
               {
                 subject = Wal.For_uq { func = rule.Rule_ast.func; key };
                 trace = c.Span.trace;
                 span = c.Span.span;
               })
      end;
      let task =
        Task.create ~klass:Task.Recompute ~func_name:rule.Rule_ast.func
          ~unique_key:key ~bound ?ctx ~release_time:release ~created_at:now
          (fun task -> run_action t task)
      in
      Unique.register t.reg ~func:rule.Rule_ast.func ~key task;
      submit t task
  in
  match rule.Rule_ast.uniqueness with
  | Rule_ast.Not_unique ->
    t.created <- t.created + 1;
    let ctx = Option.map Span.child t.cur_ctx in
    let task =
      Task.create ~klass:Task.Recompute ~func_name:rule.Rule_ast.func
        ~bound:(bind_all named_results) ?ctx ~release_time:release
        ~created_at:now
        (fun task -> run_action t task)
    in
    submit t task
  | Rule_ast.Unique -> merge_or_create ~key:[] named_results
  | Rule_ast.Unique_on cols ->
    (* Appendix A: partition the bound tables that contain unique columns;
       pass the others whole.  The unique key ranges over the cartesian
       product of the per-table distinct sub-keys (column names are unique
       across bound tables). *)
    let with_cols, without_cols =
      List.partition
        (fun (_, result) ->
          List.exists
            (fun col -> Schema.mem (Query.result_schema result) col)
            cols)
        named_results
    in
    let parted =
      List.map
        (fun (name, result) ->
          let owned =
            List.filter
              (fun col -> Schema.mem (Query.result_schema result) col)
              cols
          in
          (name, owned, Query.partition result ~cols:owned))
        with_cols
    in
    (* Cartesian product across the partitioned tables. *)
    let rec combos acc = function
      | [] -> [ List.rev acc ]
      | (name, owned, parts) :: rest ->
        List.concat_map
          (fun (key, sub) -> combos ((name, owned, key, sub) :: acc) rest)
          parts
    in
    let all = combos [] parted in
    List.iter
      (fun combo ->
        (* Key ordered by the rule's unique column list. *)
        let key =
          List.map
            (fun col ->
              let rec find = function
                | [] -> assert false
                | (_, owned, key, _) :: rest -> (
                  match
                    List.find_opt (fun (c, _) -> c = col)
                      (List.combine owned key)
                  with
                  | Some (_, v) -> v
                  | None -> find rest)
              in
              find combo)
            cols
        in
        let named =
          List.map (fun (name, _, _, sub) -> (name, sub)) combo
          @ without_cols
        in
        merge_or_create ~key named)
      all

(* ------------------------------------------------------------------ *)
(* Commit-time processing (§6.3).                                       *)

and process_commit t txn =
  let log = Transaction.log txn in
  if Tlog.length log > 0 then begin
    let tables = Tlog.tables_touched log in
    List.iter
      (fun table ->
        match Hashtbl.find_opt t.by_table table with
        | None | Some { contents = [] } -> ()
        | Some { contents = rules } ->
          let tb = Catalog.table_exn t.cat table in
          let schema = Table.schema tb in
          let entries =
            List.filter
              (fun (e : Tlog.entry) -> e.table = table)
              (Tlog.entries log)
          in
          let trans = Transition.build ~schema ~table entries in
          let env = Transition.env trans in
          List.iter
            (fun compiled ->
              Meter.tick_c c_rule_check;
              let triggered =
                List.exists
                  (fun (e : Tlog.entry) ->
                    List.exists
                      (fun ev -> Rule_ast.event_matches ~schema ev e.change)
                      compiled.rule.Rule_ast.events)
                  entries
              in
              if triggered then begin
                let run_plans plans =
                  List.map
                    (fun (plan, name) -> (Query.run t.cat ~env plan, name))
                    plans
                in
                let cond_results = run_plans compiled.cond in
                let ok =
                  List.for_all
                    (fun (r, _) -> Query.row_count r > 0)
                    cond_results
                in
                if ok then begin
                  let eval_results = run_plans compiled.eval in
                  let named =
                    List.filter_map
                      (fun (r, name) ->
                        match name with Some n -> Some (n, r) | None -> None)
                      (cond_results @ eval_results)
                  in
                  fire t compiled named
                end
              end)
            rules;
          Transition.retire trans)
      tables
  end

and commit_txn ?release t txn =
  process_commit t txn;
  (* Redo images must be captured before cleanup clears the log; rule
     firings above have already appended their Uq records to the pending
     WAL tail, so the Commit record lands after them in log order. *)
  let ops =
    match t.dur with
    | None -> []
    | Some _ -> Wal.ops_of_tlog (Transaction.log txn)
  in
  Transaction.commit txn;
  (* Stamp buffered cross-shard partials with ship sequence numbers in
     emit order; their Shard_out records ride the commit's append batch
     so the partial is durable iff the commit that produced it is. *)
  let commit_time = Clock.now t.clock in
  let partials =
    List.map
      (fun (dst, key, delta) ->
        t.partial_seq <- t.partial_seq + 1;
        (t.partial_seq, dst, key, delta))
      (List.rev t.partial_buf)
  in
  let shard_releases = List.rev t.release_buf in
  clear_partials t;
  (match t.dur with
  | None -> ()
  | Some d ->
    let w = Durable.wal d in
    let commit_recs =
      if ops = [] then []
      else
        (* The trace note precedes its Commit record so a replica scanning
           in order has the context before it applies the transaction. *)
        (match t.cur_ctx with
        | None -> []
        | Some c ->
          [
            Wal.Trace_note
              {
                subject = Wal.For_txn (Transaction.txid txn);
                trace = c.Span.trace;
                span = c.Span.span;
              };
          ])
        @ [
            Wal.Commit
              { txid = Transaction.txid txn; time = commit_time; ops };
          ]
    in
    let commit_recs =
      commit_recs
      @ (match release with
        | Some (func, key) -> [ Wal.Uq_release { func; key } ]
        | None -> [])
      @ List.map
          (fun (seq, dst, key, delta) ->
            Wal.Shard_out { seq; dst; key; delta; created_at = commit_time })
          partials
      @ List.map (fun key -> Wal.Shard_release { key }) shard_releases
    in
    if commit_recs <> [] then
      wal_guard (fun () -> ignore (Wal.append_batch w commit_recs));
    if Wal.pending_bytes w > 0 then begin
      (* The window between the in-memory commit and the log reaching
         stable storage: a crash here loses this transaction. *)
      inject t ~txn ~site:Fault.Crash ~detail:"wal_flush";
      Wal.fsync w
    end);
  (* Hand the now-durable partials to the shard coordinator for shipping.
     The sink runs after the fsync: a crash before this point re-ships
     from the WAL, a crash after it ships twice — both collapse to one
     merge at the owner's dedup. *)
  (match t.partial_sink with
  | None -> ()
  | Some sink ->
    List.iter
      (fun (seq, dst, key, delta) ->
        sink ~seq ~dst ~key ~delta ~created_at:commit_time ~ctx:t.cur_ctx)
      partials);
  (* Releases likewise reach the coordinator only once durable: the apply
     task peeks (never takes) the merged delta, so an abort after the body
     leaves the queue entry intact for a clean re-apply. *)
  (match t.release_sink with
  | None -> ()
  | Some f -> List.iter (fun key -> f ~key) shard_releases);
  Transaction.cleanup txn

(* ------------------------------------------------------------------ *)
(* Crash recovery support.                                              *)

let bound_schemas_for t ~func =
  let lf = String.lowercase_ascii func in
  Option.map
    (fun c -> c.bound_schemas)
    (List.find_opt
       (fun c -> String.lowercase_ascii c.rule.Rule_ast.func = lf)
       t.all_rules)

let resubmit_recovered t ~ctx ~func ~key ~release_time ~created_at
    ~(bound : Wal.bound_rows) =
  match bound_schemas_for t ~func with
  | None -> rule_error "recovery: no rule executes user function %s" func
  | Some schemas ->
    let bound_tbls =
      List.map
        (fun (name, rows) ->
          match List.assoc_opt name schemas with
          | None ->
            rule_error "recovery: function %s has no bound table %s" func name
          | Some schema ->
            (* No record pointers survive a restart: the recovered TCB is
               fully materialized, and later merges copy by value (the
               absorb slow path). *)
            let tmp = Temp_table.create_materialized ~name ~schema in
            List.iter (Temp_table.append_values tmp) rows;
            (name, tmp))
        bound
    in
    t.created <- t.created + 1;
    let task =
      Task.create ~klass:Task.Recompute ~func_name:func ~unique_key:key
        ~bound:bound_tbls ?ctx ~release_time ~created_at
        (fun task -> run_action t task)
    in
    Unique.register t.reg ~func ~key task;
    submit t task
