(** Action-consistent database snapshots (fuzzy checkpointing).

    A checkpoint captures, at a point between transactions, everything a
    restart needs that the WAL alone cannot cheaply provide: all standard
    tables (base {e and} maintained views) with their index definitions,
    the SQL text of each view, and the queued unique transactions with
    their bound rows.  The feed is never stopped — the snapshot runs as an
    ordinary background task between transactions, so it is consistent at
    its instant while the log keeps flowing around it ("fuzzy" at the
    level of the feed, action-consistent at the level of transactions).

    The image records the WAL LSN it is consistent up to; redo starts
    there, and the log behind it can be truncated once the image is
    durably installed. *)

open Strip_relational
open Strip_txn

type table_snap = {
  tname : string;
  cols : (string * Value.ty) list;
  indexes : (string * Index.kind * string list) list;
  rows : Value.t array list;
}

type queue_entry = {
  qfunc : string;
  qkey : Value.t list;
  qrelease_time : float;
  qcreated_at : float;
  qbound : Wal.bound_rows;
}

type t = {
  taken_at : float;
  wal_lsn : int;
  tables : table_snap list;  (** catalog creation order *)
  views : (string * string) list;  (** (name, sql), declaration order *)
  queue : queue_entry list;  (** task-id order *)
}

val capture :
  cat:Catalog.t ->
  views:(string * string) list ->
  reg:Unique.t ->
  now:float ->
  wal_lsn:int ->
  t

val total_rows : t -> int
(** Table rows plus queued bound rows — the unit the ["checkpoint_row"]
    cost is charged per. *)

val restore_tables : t -> Catalog.t -> unit
(** Recreate every table (rows, then indexes) in a fresh catalog with raw
    unlogged inserts.  View {e tables} are restored like any other — their
    definitions must be re-registered separately, without re-execution. *)

val encode : t -> string

val decode : string -> t
(** @raise Strip_txn.Codec.Decode_error on a malformed image. *)
