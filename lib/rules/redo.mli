(** Redo application of logged WAL ops against a catalog.

    Shared by crash recovery (replaying the log tail after a restart) and
    replication (a replica's apply loop over shipped segments).  Ops carry
    full before/after images; targets of updates and deletes are located
    by whole-row match through lazily-built per-table row maps, maintained
    incrementally so a long redo stream stays O(1) per op. *)

open Strip_relational

type t

val create : ?meter:string -> Catalog.t -> t
(** [meter] is the {!Strip_relational.Meter} counter ticked per applied op
    (default ["recovery_redo_op"]; replicas use ["repl_apply_op"]). *)

val apply : t -> Strip_txn.Wal.op -> unit
(** Apply one op.  @raise Failure if a delete/update target row is
    missing — the log and the catalog disagree. *)

val apply_commit : t -> Strip_txn.Wal.op list -> unit
(** Apply a commit record's ops in order. *)

val n_ops : t -> int
(** Total ops applied through this instance. *)
