open Strip_relational
open Strip_txn
open Strip_sim
module Metrics = Strip_obs.Metrics

type t = {
  cat : Catalog.t;
  lcks : Lock.t;
  clk : Clock.t;
  mgr : Rule_manager.t;
  eng : Engine.t;
  fi : Fault.t option;
  dur : Durable.t option;
  reg : Metrics.t;
  tracer : Strip_obs.Trace.t option;
  slo : Strip_obs.Slo.t option;
  prov : Strip_obs.Provenance.t option;
  mutable views : (string * Sql_parser.select_ast) list;  (* newest first *)
  mutable view_sql : (string * string) list;  (* newest first *)
}

(* Register every component's counters, gauges and distributions into one
   registry — the single snapshot surface for the CLI/bench exporters.
   Sources that already maintain their own state are wired as probes
   (polled at snapshot time), so nothing is double-counted. *)
let register_metrics reg ~stats ~mgr ~eng ~clk ~tracer ~fi ~dur ~slo ~prov =
  let open Strip_sim in
  List.iter
    (fun (label, klass) ->
      let labels = [ ("class", label) ] in
      Metrics.probe_int reg "tasks_total" ~labels (fun () ->
          Stats.tasks_run stats klass);
      Metrics.probe_float reg "busy_us_total" ~labels (fun () ->
          Stats.busy_us_of stats klass);
      Metrics.probe_hist reg "service_us" ~labels (fun () ->
          Stats.service_hist stats klass);
      Metrics.probe_hist reg "queue_wait_us" ~labels (fun () ->
          Stats.queue_hist stats klass))
    [
      ("update", Task.Update);
      ("recompute", Task.Recompute);
      ("background", Task.Background);
    ];
  Metrics.probe_int reg "context_switches_total" (fun () ->
      Stats.context_switches stats);
  Metrics.probe_int reg "aborts_total" (fun () -> Stats.n_aborts stats);
  Metrics.probe_int reg "retries_total" (fun () -> Stats.n_retries stats);
  Metrics.probe_int reg "sheds_total" (fun () -> Stats.n_sheds stats);
  Metrics.probe_int reg "coalesced_total" (fun () -> Stats.n_coalesced stats);
  Metrics.probe_int reg "dead_letters_total" (fun () ->
      Stats.n_dead_letters stats);
  Metrics.probe_int reg "recoveries_total" (fun () -> Stats.n_recoveries stats);
  Metrics.probe_hist reg "recovery_latency_s" (fun () ->
      Stats.recovery_hist stats);
  Metrics.probe_family reg "staleness_s" (fun () ->
      List.map
        (fun table ->
          ( [ ("table", table) ],
            Metrics.Sample_hist (Stats.staleness_hist stats table) ))
        (Stats.staleness_tables stats));
  Metrics.probe_int reg "rule_firings_total" (fun () ->
      Rule_manager.n_rule_firings mgr);
  Metrics.probe_int reg "rule_tasks_created_total" (fun () ->
      Rule_manager.n_tasks_created mgr);
  Metrics.probe_int reg "rule_merges_total" (fun () ->
      Rule_manager.n_merges mgr);
  Metrics.probe_int reg "unique_queued" (fun () ->
      Unique.queued (Rule_manager.registry mgr));
  Metrics.probe_int reg "ready_queue_length" (fun () -> Engine.ready_length eng);
  Metrics.probe_int reg "delay_queue_length" (fun () ->
      Engine.delayed_length eng);
  Metrics.probe_int reg "engine_backlog" (fun () -> Engine.backlog eng);
  Metrics.probe_int reg "servers" (fun () -> Engine.num_servers eng);
  Metrics.probe_int reg "parked_tasks" (fun () -> Engine.parked_count eng);
  Metrics.probe_int reg "lock_waits_total" (fun () -> Stats.n_lock_waits stats);
  Metrics.probe_int reg "lock_timeouts_total" (fun () ->
      Stats.n_lock_timeouts stats);
  Metrics.probe_hist reg "lock_wait_s" (fun () -> Stats.lock_wait_hist stats);
  Metrics.probe_family reg "server_busy_us" (fun () ->
      List.init (Stats.num_servers stats) (fun i ->
          ( [ ("server", string_of_int i) ],
            Metrics.Sample_float (Stats.server_busy_us stats i) )));
  Metrics.probe_float reg "sim_now_s" (fun () -> Clock.now clk);
  (match fi with
  | None -> ()
  | Some fi ->
    Metrics.probe_int reg "faults_injected_total" (fun () ->
        Fault.total_injected fi));
  (* Durability metrics exist only when the layer is wired, so crash-free
     (non-durable) registry snapshots stay byte-identical to older runs. *)
  (match dur with
  | None -> ()
  | Some d ->
    let w = Durable.wal d in
    Metrics.probe_int reg "wal_appends_total" (fun () -> Wal.n_appends w);
    Metrics.probe_int reg "wal_fsyncs_total" (fun () -> Wal.n_fsyncs w);
    Metrics.probe_int reg "wal_durable_bytes" (fun () -> Wal.durable_bytes w);
    Metrics.probe_int reg "wal_appended_bytes_total" (fun () ->
        Wal.appended_bytes w);
    Metrics.probe_int reg "wal_truncations_total" (fun () ->
        Wal.n_truncations w);
    Metrics.probe_int reg "wal_pending_bytes" (fun () -> Wal.pending_bytes w);
    Metrics.probe_int reg "wal_base_lsn" (fun () -> Wal.base_lsn w);
    Metrics.probe_int reg "wal_durable_end_lsn" (fun () -> Wal.durable_end w);
    Metrics.probe_int reg "checkpoints_total" (fun () ->
        Durable.n_checkpoints d);
    Metrics.probe_int reg "checkpoint_bytes" (fun () ->
        Durable.last_checkpoint_bytes d);
    Metrics.probe_int reg "crashes_total" (fun () -> Stats.n_crashes stats);
    Metrics.probe_hist reg "crash_recovery_s" (fun () ->
        Stats.crash_recovery_hist stats);
    Metrics.probe_int reg "failovers_total" (fun () ->
        Stats.n_failovers stats);
    (* Media-fault surfaces appear only when storage-fault injection is
       armed, keeping fault-free registry snapshots byte-identical. *)
    if Durable.media_armed d then begin
      Metrics.probe_int reg "media_faults_injected_total" (fun () ->
          let c = Durable.media_counts d in
          c.Durable.injected_bitrot_wal + c.Durable.injected_bitrot_cp
          + c.Durable.injected_fsync_lie);
      Metrics.probe_int reg "media_faults_outstanding" (fun () ->
          Durable.outstanding d);
      Metrics.probe_int reg "media_faults_repaired_total" (fun () ->
          (Durable.media_counts d).Durable.repaired);
      Metrics.probe_int reg "media_faults_quarantined_total" (fun () ->
          (Durable.media_counts d).Durable.quarantined);
      Metrics.probe_int reg "wal_disk_fulls_total" (fun () ->
          Wal.n_disk_fulls w);
      Metrics.probe_int reg "wal_lied_bytes_total" (fun () -> Wal.lied_bytes w)
    end);
  (match tracer with
  | None -> ()
  | Some tr ->
    Metrics.probe_int reg "trace_events_buffered" (fun () ->
        Strip_obs.Trace.length tr);
    Metrics.probe_int reg "trace_dropped_total" (fun () ->
        Strip_obs.Trace.dropped tr));
  (* SLO and provenance surfaces are opt-in like the durability ones, so
     runs without them snapshot byte-identically to earlier releases. *)
  (match slo with
  | None -> ()
  | Some s ->
    Metrics.probe_family reg "slo_violations_total" (fun () ->
        List.map
          (fun (r : Strip_obs.Slo.view_report) ->
            ( [ ("view", r.Strip_obs.Slo.r_view) ],
              Metrics.Sample_int r.Strip_obs.Slo.r_violations ))
          (Strip_obs.Slo.report s));
    Metrics.probe_family reg "slo_windows_total" (fun () ->
        List.map
          (fun (r : Strip_obs.Slo.view_report) ->
            ( [ ("view", r.Strip_obs.Slo.r_view) ],
              Metrics.Sample_int r.Strip_obs.Slo.r_windows ))
          (Strip_obs.Slo.report s)));
  match prov with
  | None -> ()
  | Some p ->
    Metrics.probe_int reg "provenance_recorded_total" (fun () ->
        Strip_obs.Provenance.total p);
    Metrics.probe_int reg "provenance_truncated_total" (fun () ->
        Strip_obs.Provenance.truncated p)

let create ?policy ?cost ?now ?fault ?durable ?retry ?overload ?servers
    ?lock_timeout_s ?trace ?slo ?provenance () =
  let cat = Catalog.create () in
  let lcks = Lock.create () in
  let clk = Clock.create ?now () in
  let fi = Option.map Fault.create fault in
  let mgr =
    Rule_manager.create ~cat ~locks:lcks ~clock:clk ?fault:fi ?durable ?trace
      ?provenance ()
  in
  let eng =
    Engine.create ~clock:clk ?policy ?cost ?retry ?overload ~locks:lcks
      ?servers ?lock_timeout_s ?trace ()
  in
  Rule_manager.set_submitter mgr (Engine.submit eng);
  (* Failure wiring: retried unique transactions re-enter the registry so
     merges continue through their backoff; rule-definition errors are
     programming errors, not transient faults, and must not be retried.
     A crash is not retryable either — it must propagate to the restart
     driver with all volatile state condemned. *)
  Engine.set_requeue_hook eng (Rule_manager.reregister_task mgr);
  Engine.set_shed_hook eng (Rule_manager.log_shed mgr);
  Engine.set_fatal_filter eng (function
    | Rule_manager.Rule_error _ | Fault.Crashed _ | Fault.Partitioned _ ->
      true
    | _ -> false);
  (* Staleness sampling (paper §7): when a rule action commits, every table
     it wrote has just caught up with base changes first fired at the
     task's creation; the age of that oldest change is the sample. *)
  let stats = Engine.stats eng in
  Rule_manager.set_commit_hook mgr (fun ~task ~tables ~now ->
      match task.Task.klass with
      | Task.Update -> ()
      | Task.Recompute | Task.Background ->
        List.iter
          (fun table ->
            let seconds = Float.max 0.0 (now -. task.Task.created_at) in
            Stats.record_staleness stats ~table ~seconds;
            match slo with
            | None -> ()
            | Some s ->
              Strip_obs.Slo.observe s ~view:table ~staleness_s:seconds ~now)
          tables);
  let reg = Metrics.create () in
  register_metrics reg ~stats ~mgr ~eng ~clk ~tracer:trace ~fi ~dur:durable
    ~slo ~prov:provenance;
  {
    cat;
    lcks;
    clk;
    mgr;
    eng;
    fi;
    dur = durable;
    reg;
    tracer = trace;
    slo;
    prov = provenance;
    views = [];
    view_sql = [];
  }

let catalog t = t.cat
let clock t = t.clk
let locks t = t.lcks
let rules t = t.mgr
let engine t = t.eng
let fault_injector t = t.fi
let durable t = t.dur
let metrics t = t.reg
let trace t = t.tracer
let slo t = t.slo
let provenance t = t.prov
let now t = Clock.now t.clk

let with_txn t f =
  let txn = Transaction.begin_ ~cat:t.cat ~locks:t.lcks ~clock:t.clk () in
  match f txn with
  | v ->
    if Transaction.status txn = Transaction.Active then
      Rule_manager.commit_txn t.mgr txn;
    v
  | exception e ->
    if Transaction.status txn = Transaction.Active then Transaction.abort txn;
    Rule_manager.clear_partials t.mgr;
    raise e

(* Task-body variant of [with_txn]: consults the fault injector between the
   work and the commit, so update tasks see the same abort / lock-conflict
   failure modes as rule actions (and the engine's retry policy recovers
   both).  Direct [exec]/[query] calls are not injected — they have no
   retry layer above them. *)
let with_txn_injected t ~detail f =
  with_txn t (fun txn ->
      let v = f txn in
      (match t.fi with
      | None -> ()
      | Some fi ->
        let txid = Transaction.txid txn in
        Fault.fire fi ~site:Fault.Lock_conflict ~txid ~detail;
        Fault.fire fi ~site:Fault.Deadlock ~txid ~detail;
        Fault.fire fi ~site:Fault.Txn_abort ~txid ~detail;
        Fault.fire fi ~site:Fault.Crash ~txid ~detail;
        Fault.fire fi ~site:Fault.Partition ~txid ~detail);
      v)

let on_view t name ast = t.views <- (name, ast) :: t.views

let view_definitions t = List.rev t.views

let view_sql t = List.rev t.view_sql

(* Record a view's definition (AST for the auditor, SQL for checkpoints)
   without touching the catalog — recovery uses this after restoring the
   already-materialized view table from a checkpoint image. *)
let register_view_def t ~sql =
  match Sql_parser.parse_statement sql with
  | Sql_parser.Create_view { name; select } ->
    on_view t name select;
    t.view_sql <- (name, sql) :: t.view_sql
  | _ -> invalid_arg "Strip_db.register_view_def: not a CREATE VIEW"

(* Populate-time view creation: execute the CREATE VIEW raw (outside any
   transaction, exactly as the PTA schema setup always has) and remember
   its definition for audits and checkpoints. *)
let declare_view t ~sql =
  match Sql_parser.parse_statement sql with
  | Sql_parser.Create_view { name; _ } ->
    ignore (Sql_exec.exec_string t.cat ~env:[] ~on_view:(on_view t) sql);
    t.view_sql <- (name, sql) :: t.view_sql
  | _ -> invalid_arg "Strip_db.declare_view: not a CREATE VIEW"

let exec_parsed t stmt =
  with_txn t (fun txn ->
      match stmt with
      | Sql_parser.Create_view _ ->
        (* run unhooked-for-views path through Sql_exec to capture the
           definition, but inside the transaction for locking/logging *)
        Sql_exec.exec ~hooks:(Transaction.hooks txn) ~on_view:(on_view t)
          t.cat ~env:[] stmt
      | stmt -> Transaction.exec_stmt txn stmt)

let is_drop_rule s =
  match Sql_lexer.tokenize s with
  | toks when Array.length toks > 2 -> (
    match (toks.(0), toks.(1)) with
    | Sql_lexer.Ident a, Sql_lexer.Ident b ->
      String.lowercase_ascii a = "drop" && String.lowercase_ascii b = "rule"
    | _ -> false)
  | _ | (exception Sql_lexer.Lex_error _) -> false

let exec t s =
  if Rule_parser.is_rule_ddl s then begin
    Rule_manager.create_rule_text t.mgr s;
    Sql_exec.Unit
  end
  else if is_drop_rule s then begin
    let c = Sql_parser.cursor_of_string s in
    Sql_parser.expect_kw c "drop";
    Sql_parser.expect_kw c "rule";
    Rule_manager.drop_rule t.mgr (Sql_parser.expect_ident c);
    Sql_exec.Unit
  end
  else exec_parsed t (Sql_parser.parse_statement s)

exception Script_error of { index : int; source : string; cause : exn }

let () =
  Printexc.register_printer (function
    | Script_error { index; source; cause } ->
      Some
        (Printf.sprintf "Strip_db.Script_error(statement %d: `%s`: %s)" index
           source (Printexc.to_string cause))
    | _ -> None)

(* The offending statement's tokens, from [start] to the next [;] or EOF. *)
let statement_source c start =
  Sql_parser.restore c start;
  let buf = Buffer.create 64 in
  while
    (not (Sql_parser.at_eof c)) && Sql_parser.peek c <> Sql_lexer.Semi
  do
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Sql_lexer.token_to_string (Sql_parser.peek c));
    Sql_parser.advance c
  done;
  Buffer.contents buf

let exec_script t s =
  let c = Sql_parser.cursor_of_string s in
  let index = ref 0 in
  while not (Sql_parser.at_eof c) do
    incr index;
    (* route on the leading tokens: [create rule ...] vs plain SQL *)
    let pos = Sql_parser.save c in
    (try
       let is_rule =
         Sql_parser.accept_kw c "create" && Sql_parser.accept_kw c "rule"
       in
       Sql_parser.restore c pos;
       if is_rule then Rule_manager.create_rule t.mgr (Rule_parser.parse_at c)
       else ignore (exec_parsed t (Sql_parser.parse_statement_at c))
     with e ->
       (* the statement's transaction was already aborted by [with_txn];
          report which statement failed and with what *)
       raise (Script_error { index = !index; source = statement_source c pos; cause = e }));
    while Sql_parser.peek c = Sql_lexer.Semi do
      Sql_parser.advance c
    done
  done

let query t s = with_txn t (fun txn -> Transaction.query txn s)

let query_rows t s = Query.rows (query t s)

let register_function t name fn = Rule_manager.register_function t.mgr name fn

let create_rule t s = Rule_manager.create_rule_text t.mgr s

let submit_update t ~at ?(label = "update") f =
  (* Base-update ingestion is where a causal story begins: mint a root
     trace context here (tracing on only) and let it ride the task
     through dispatch, rule firings, WAL commit, shipping and apply. *)
  let ctx =
    match t.tracer with None -> None | Some _ -> Some (Strip_obs.Span.mint ())
  in
  let task =
    Task.create ~klass:Task.Update ~func_name:label ?ctx ~release_time:at
      ~created_at:at (fun task ->
        (* the rule manager parents any firings under this task's span *)
        Rule_manager.set_current_ctx t.mgr task.Task.ctx;
        Fun.protect
          ~finally:(fun () -> Rule_manager.set_current_ctx t.mgr None)
          (fun () -> with_txn_injected t ~detail:label f))
  in
  Engine.submit t.eng task

(* Recompute-class variant for the shard coordinator: the task that
   applies a merged cross-shard partial delta is maintenance work, not
   base ingestion, so it is scheduled and accounted like a rule action.
   [ctx] (when the shipping partial carried one) keeps the cross-shard
   span tree connected instead of minting a fresh root. *)
let submit_maintenance t ~at ?(label = "shard_apply") ?ctx f =
  let ctx = match t.tracer with None -> None | Some _ -> ctx in
  let task =
    Task.create ~klass:Task.Recompute ~func_name:label ?ctx ~release_time:at
      ~created_at:at (fun task ->
        Rule_manager.set_current_ctx t.mgr task.Task.ctx;
        Fun.protect
          ~finally:(fun () -> Rule_manager.set_current_ctx t.mgr None)
          (fun () -> with_txn_injected t ~detail:label f))
  in
  Engine.submit t.eng task

let schedule_periodic t ~every ?start ?(until = infinity) ?(label = "periodic") f =
  if every <= 0.0 then invalid_arg "Strip_db.schedule_periodic: period <= 0";
  let first = match start with Some s -> s | None -> Clock.now t.clk +. every in
  let rec make at =
    Task.create ~klass:Task.Background ~func_name:label ~release_time:at
      ~created_at:(Clock.now t.clk) (fun _task ->
        with_txn_injected t ~detail:label f;
        (* the next occurrence is scheduled only on success, so a retried
           tick cannot double-schedule *)
        let next = at +. every in
        if next <= until then Engine.submit t.eng (make next))
  in
  if first <= until then Engine.submit t.eng (make first)

(* ------------------------------------------------------------------ *)
(* Durability: checkpoints and crashes.                                 *)

(* Disk-full is typed backpressure, not an abort: the device refused the
   bytes, so the commit (or checkpoint mark) never became durable.  The
   engine treats it as a crash — volatile state is condemned and the
   restart driver recovers from the last checkpoint, whose truncation
   reclaims log space and lets progress resume. *)
let wal_guard f =
  try f ()
  with Wal.Disk_full _ ->
    Meter.tick "disk_full_stall";
    raise (Fault.Crashed { at = "disk_full" })

let checkpoint t =
  match t.dur with
  | None -> invalid_arg "Strip_db.checkpoint: no durability layer"
  | Some d ->
    let w = Durable.wal d in
    (* The image's LSN is only meaningful over stable log, so flush any
       riders first (there are none between transactions, but a direct
       call may land anywhere). *)
    if Wal.pending_bytes w > 0 then Wal.fsync w;
    let lsn = Wal.durable_end w in
    let snap =
      Checkpoint.capture ~cat:t.cat ~views:(view_sql t)
        ~reg:(Rule_manager.registry t.mgr) ~now:(Clock.now t.clk) ~wal_lsn:lsn
    in
    let encoded = Checkpoint.encode snap in
    Meter.tick_n "checkpoint_row" (Checkpoint.total_rows snap);
    (* Crash site: the image is built but not installed.  The previous
       checkpoint and the untruncated log remain the recovery source. *)
    (match t.fi with
    | None -> ()
    | Some fi -> Fault.fire fi ~site:Fault.Crash ~txid:0 ~detail:"checkpoint");
    Durable.install_checkpoint d ~encoded ~lsn ~time:snap.Checkpoint.taken_at;
    (* Truncate before appending the mark — the byte stream is identical
       (the mark's LSN was fixed above), and reclaiming first means a
       disk-full clamp cannot livelock checkpointing: by the time the
       mark needs space, the replayed log is already gone.  With
       [retain >= 2] slots, truncation stops at the oldest retained
       slot's LSN so CRC-failure fallback keeps its redo tail. *)
    let cut = Durable.truncation_floor d in
    Wal.truncate_to w ~lsn:cut;
    Durable.note_truncated d ~below:cut;
    wal_guard (fun () ->
        ignore
          (Wal.append w
             (Wal.Checkpoint_mark { time = snap.Checkpoint.taken_at; lsn })));
    Wal.fsync w

let schedule_checkpoints t ~every ?start ?(until = infinity) () =
  if every <= 0.0 then invalid_arg "Strip_db.schedule_checkpoints: period <= 0";
  if t.dur = None then
    invalid_arg "Strip_db.schedule_checkpoints: no durability layer";
  let first = match start with Some s -> s | None -> Clock.now t.clk +. every in
  let rec make at =
    (* Runs as a plain background task — no transaction, so the snapshot
       sits between transactions by construction (action-consistency). *)
    Task.create ~klass:Task.Background ~func_name:"checkpoint" ~release_time:at
      ~created_at:(Clock.now t.clk) (fun _task ->
        checkpoint t;
        let next = at +. every in
        if next <= until then Engine.submit t.eng (make next))
  in
  if first <= until then Engine.submit t.eng (make first)

let schedule_crash t ~at =
  let task =
    Task.create ~klass:Task.Background ~func_name:"crash" ~release_time:at
      ~created_at:(Clock.now t.clk) (fun _task ->
        raise (Fault.Crashed { at = "scheduled" }))
  in
  Engine.submit t.eng task

let schedule_partition t ~at ~heal_after_s =
  let task =
    Task.create ~klass:Task.Background ~func_name:"partition" ~release_time:at
      ~created_at:(Clock.now t.clk) (fun _task ->
        raise (Fault.Partitioned { at = "scheduled"; heal_after_s }))
  in
  Engine.submit t.eng task

(* Scheduled storage faults.  Unlike crash/partition these raise nothing
   at injection time — the damage is silent by design and must be found
   by the scrubber, ship-time verification or recovery. *)

let note_storage_fault t site =
  match t.fi with None -> () | Some fi -> Fault.note fi site

let schedule_bitrot t ~at ~target ~frac =
  match t.dur with
  | None -> invalid_arg "Strip_db.schedule_bitrot: no durability layer"
  | Some d ->
    let task =
      Task.create ~klass:Task.Background ~func_name:"bitrot" ~release_time:at
        ~created_at:(Clock.now t.clk) (fun _task ->
          match target with
          | `Wal ->
            let w = Durable.wal d in
            let n = Wal.durable_bytes w in
            if n > 0 then begin
              let off = min (int_of_float (frac *. float_of_int n)) (n - 1) in
              let lsn = Wal.base_lsn w + off in
              Wal.flip_byte w ~lsn;
              Durable.note_injected d ~kind:Durable.Bitrot_wal ~lsn ~len:1;
              note_storage_fault t Fault.Bitrot
            end
          | `Checkpoint ->
            if Durable.flip_snapshot_byte d ~frac then
              note_storage_fault t Fault.Bitrot)
    in
    Engine.submit t.eng task

let schedule_fsync_lie t ~at =
  match t.dur with
  | None -> invalid_arg "Strip_db.schedule_fsync_lie: no durability layer"
  | Some d ->
    let task =
      Task.create ~klass:Task.Background ~func_name:"fsync_lie"
        ~release_time:at ~created_at:(Clock.now t.clk) (fun _task ->
          let w = Durable.wal d in
          Wal.arm_fsync_lie w ~notify:(fun ~lsn ~len ->
              Durable.note_injected d ~kind:Durable.Fsync_lie ~lsn ~len;
              note_storage_fault t Fault.Fsync_lie))
    in
    Engine.submit t.eng task

let schedule_disk_full t ~at ~free_bytes =
  match t.dur with
  | None -> invalid_arg "Strip_db.schedule_disk_full: no durability layer"
  | Some d ->
    let task =
      Task.create ~klass:Task.Background ~func_name:"disk_full"
        ~release_time:at ~created_at:(Clock.now t.clk) (fun _task ->
          let w = Durable.wal d in
          Wal.set_capacity w
            (Some (Wal.durable_bytes w + Wal.pending_bytes w + free_bytes));
          note_storage_fault t Fault.Disk_full)
    in
    Engine.submit t.eng task

let schedule_disk_heal t ~at =
  match t.dur with
  | None -> invalid_arg "Strip_db.schedule_disk_heal: no durability layer"
  | Some d ->
    let task =
      Task.create ~klass:Task.Background ~func_name:"disk_heal"
        ~release_time:at ~created_at:(Clock.now t.clk) (fun _task ->
          Wal.set_capacity (Durable.wal d) None)
    in
    Engine.submit t.eng task

(* Condemn all volatile state: the engine's queues and in-flight work, and
   any WAL bytes appended but not yet fsynced.  Durable state (stable log,
   installed checkpoint) is untouched — it is all recovery gets. *)
let crash t =
  Engine.discard_all t.eng;
  match t.dur with
  | None -> ()
  | Some d -> Wal.lose_tail (Durable.wal d)

let run ?until t = Engine.run ?until t.eng

let stats t = Engine.stats t.eng
