open Strip_relational
open Strip_txn

type stats = {
  had_checkpoint : bool;
  restored_tables : int;
  restored_rows : int;
  redo_commits : int;
  redo_ops : int;
  requeued : int;
  requeued_rows : int;
  released : int;
  torn_tail : bool;
  corrupt_tail : bool;
  cp_fallbacks : int;
  salvaged_ranges : int;
  salvaged_bytes : int;
  quarantined_bytes : int;
  orphan_merges : int;
}

type salvage = from_lsn:int -> len:int -> string option

(* ------------------------------------------------------------------ *)
(* Unique-queue reconstruction: start from the checkpoint's queue image,
   then replay the tail's enqueue/merge/release transitions in log
   order. *)

module QK = struct
  type t = string * Value.t list

  let equal (f1, k1) (f2, k2) =
    String.equal f1 f2
    && List.length k1 = List.length k2
    && List.for_all2 Value.equal k1 k2

  let hash (f, k) =
    List.fold_left (fun h v -> (h * 31) + Value.hash v) (Hashtbl.hash f) k
end

module QT = Hashtbl.Make (QK)

type qentry = {
  q_release : float;
  q_created : float;
  mutable q_bound : (string * Value.t array list) list;
}

let merge_bound entry (name, rows) =
  if List.mem_assoc name entry.q_bound then
    entry.q_bound <-
      List.map
        (fun (n, old) -> if n = name then (n, old @ rows) else (n, old))
        entry.q_bound
  else entry.q_bound <- entry.q_bound @ [ (name, rows) ]

let recover ?salvage db ~reinstall =
  let d =
    match Strip_db.durable db with
    | Some d -> d
    | None -> invalid_arg "Recovery.recover: database has no durability layer"
  in
  let cp, cp_fallbacks =
    match Durable.verified_slot d with
    | Some (s, _lsn, _time, skipped) ->
      if skipped > 0 then begin
        (* newer slot(s) failed their CRC: note the detection, fall back
           to the older verified image and redo its longer tail *)
        Durable.note_cp_detected d;
        Meter.tick_n "recovery_cp_fallback" skipped
      end;
      (Checkpoint.decode s, skipped)
    | None ->
      if Durable.snapshot d = None then
        invalid_arg "Recovery.recover: no checkpoint image installed"
      else
        invalid_arg
          "Recovery.recover: every retained checkpoint slot failed its CRC"
  in
  let cat = Strip_db.catalog db in
  (* 1. Restore every table (base and view) from the image. *)
  Checkpoint.restore_tables cp cat;
  let restored_rows =
    List.fold_left
      (fun a (ts : Checkpoint.table_snap) -> a + List.length ts.Checkpoint.rows)
      0 cp.Checkpoint.tables
  in
  Meter.tick_n "recovery_restore_row" restored_rows;
  (* 2. Re-register view definitions without executing them — the
     materialized tables were just restored. *)
  List.iter
    (fun (_name, sql) -> Strip_db.register_view_def db ~sql)
    cp.Checkpoint.views;
  (* 3. Reattach the application: handles, user functions, rules. *)
  reinstall ();
  (* 4. Redo the log tail with raw table operations.  No rule fires here —
     every maintenance action that committed left its own Commit record,
     and every one that did not is represented in the rebuilt queue.  The
     cursor read starts at the checkpoint LSN: truncation keeps
     [base_lsn <= wal_lsn], so nothing before it is re-decoded.

     Mid-log corruption is not fatal: the salvage ladder first tries to
     re-fetch clean bytes for the exact corrupt range from a replica
     whose log covers it ([?salvage]), and otherwise quarantines the
     tail from the corruption point — the checkpoint image plus audit
     repair then restore fidelity.  Redo only starts once the scan is
     clean, so corrupt bytes never influence the rebuilt state. *)
  let w = Durable.wal d in
  let salvaged_ranges = ref 0
  and salvaged_bytes = ref 0
  and quarantined_bytes = ref 0
  and saw_corruption = ref false in
  let rec clean_read () =
    let rd = Wal.read_from w ~lsn:cp.Checkpoint.wal_lsn in
    match rd.Wal.corrupt_at with
    | None -> rd
    | Some l ->
      saw_corruption := true;
      let r = Wal.next_valid_lsn w ~after:l in
      Durable.note_wal_detected d ~lsn:l ~len:(max 1 (r - l));
      Meter.tick "salvage_attempt";
      let fetched =
        match salvage with
        | Some fetch -> fetch ~from_lsn:l ~len:(r - l)
        | None -> None
      in
      (match fetched with
      | Some bytes ->
        Wal.splice w ~lsn:l ~bytes;
        Durable.note_wal_repaired d ~lsn:l ~len:(r - l);
        Meter.tick_n "salvage_byte" (r - l);
        incr salvaged_ranges;
        salvaged_bytes := !salvaged_bytes + (r - l)
      | None ->
        (* no replica covers the range: quarantine the tail from the
           corruption point; anything lost is restored by audit repair
           and quote resubmission *)
        let dropped = Wal.drop_from w ~lsn:l in
        Durable.note_wal_quarantined d ~from_lsn:l;
        Meter.tick_n "quarantine_byte" dropped;
        quarantined_bytes := !quarantined_bytes + dropped);
      clean_read ()
  in
  let rd = clean_read () in
  let redo = Redo.create cat in
  let n_commits = ref 0 and released = ref 0 and orphan_merges = ref 0 in
  let queue = QT.create 64 in
  (* trace contexts of queued batches, rebuilt from Trace_note riders *)
  let ctxs = QT.create 16 in
  let order = ref [] in
  let enqueue key entry =
    if not (QT.mem queue key) then order := key :: !order;
    QT.replace queue key entry
  in
  List.iter
    (fun (qe : Checkpoint.queue_entry) ->
      enqueue
        (qe.Checkpoint.qfunc, qe.Checkpoint.qkey)
        {
          q_release = qe.Checkpoint.qrelease_time;
          q_created = qe.Checkpoint.qcreated_at;
          q_bound = qe.Checkpoint.qbound;
        })
    cp.Checkpoint.queue;
  List.iter
    (fun (_lsn, record) ->
      match record with
      | Wal.Commit { ops; _ } ->
        incr n_commits;
        Redo.apply_commit redo ops
      | Wal.Uq_enqueue { func; key; release_time; created_at; bound } ->
        enqueue (func, key)
          { q_release = release_time; q_created = created_at; q_bound = bound }
      | Wal.Uq_merge { func; key; bound } -> (
        match QT.find_opt queue (func, key) with
        | Some e -> List.iter (merge_bound e) bound
        | None ->
          (* the enqueue this merge extends is gone (its range was
             quarantined, or the image predates a lost log segment):
             synthesize an immediately-releasable entry carrying the
             merged rows instead of aborting recovery *)
          incr orphan_merges;
          Meter.tick "recovery_orphan_merge";
          enqueue (func, key)
            {
              q_release = cp.Checkpoint.taken_at;
              q_created = cp.Checkpoint.taken_at;
              q_bound = bound;
            })
      | Wal.Uq_release { func; key } ->
        incr released;
        QT.remove queue (func, key);
        QT.remove ctxs (func, key)
      | Wal.Trace_note { subject = Wal.For_uq { func; key }; trace; span } ->
        QT.replace ctxs (func, key) (trace, span)
      | Wal.Trace_note { subject = Wal.For_txn _; _ } ->
        (* commit annotations matter to replicas, not to redo *)
        ()
      | Wal.Checkpoint_mark _ -> ()
      | Wal.Shard_out _ | Wal.Shard_in _ | Wal.Shard_release _
      | Wal.Shard_state _ ->
        (* cross-shard protocol state is rebuilt by the shard coordinator
           (Strip_shard.Coordinator), which scans the same log *)
        ())
    rd.Wal.records;
  (* 5. Resubmit the surviving queue in original enqueue order.  The
     resubmission is not re-logged — the post-recovery checkpoint below
     captures the rebuilt queue durably instead. *)
  let mgr = Strip_db.rules db in
  let requeued = ref 0 and requeued_rows = ref 0 in
  List.iter
    (fun ((func, key) as k) ->
      match QT.find_opt queue k with
      | None -> ()
      | Some e ->
        QT.remove queue k;
        Meter.tick "recovery_requeue";
        incr requeued;
        requeued_rows :=
          !requeued_rows
          + List.fold_left (fun a (_, rs) -> a + List.length rs) 0 e.q_bound;
        (* Reattach the batch's pre-crash trace context as the parent of a
           fresh span: the resubmitted task is a new scheduling life, but
           causally it continues the original enqueue. *)
        let ctx =
          Option.map
            (fun (trace, span) ->
              Strip_obs.Span.child_of ~trace ~parent:span)
            (QT.find_opt ctxs k)
        in
        Rule_manager.resubmit_recovered mgr ~ctx ~func ~key
          ~release_time:e.q_release ~created_at:e.q_created ~bound:e.q_bound)
    (List.rev !order);
  (* 6. A fresh checkpoint makes the recovered state the new durable
     baseline and truncates the replayed log. *)
  Strip_db.checkpoint db;
  {
    had_checkpoint = true;
    restored_tables = List.length cp.Checkpoint.tables;
    restored_rows;
    redo_commits = !n_commits;
    redo_ops = Redo.n_ops redo;
    requeued = !requeued;
    requeued_rows = !requeued_rows;
    released = !released;
    torn_tail = rd.Wal.torn_at <> None;
    corrupt_tail = !saw_corruption;
    cp_fallbacks;
    salvaged_ranges = !salvaged_ranges;
    salvaged_bytes = !salvaged_bytes;
    quarantined_bytes = !quarantined_bytes;
    orphan_merges = !orphan_merges;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "restored %d tables / %d rows; redo %d commits / %d ops; requeued %d \
     (%d rows), released %d%s%s%s%s%s%s"
    s.restored_tables s.restored_rows s.redo_commits s.redo_ops s.requeued
    s.requeued_rows s.released
    (if s.torn_tail then "; torn tail dropped" else "")
    (if s.corrupt_tail then "; CORRUPT mid-log entry" else "")
    (if s.cp_fallbacks > 0 then
       Printf.sprintf "; fell back %d checkpoint slot(s)" s.cp_fallbacks
     else "")
    (if s.salvaged_ranges > 0 then
       Printf.sprintf "; salvaged %d range(s) / %d B from replicas"
         s.salvaged_ranges s.salvaged_bytes
     else "")
    (if s.quarantined_bytes > 0 then
       Printf.sprintf "; quarantined %d B" s.quarantined_bytes
     else "")
    (if s.orphan_merges > 0 then
       Printf.sprintf "; synthesized %d orphan merge(s)" s.orphan_merges
     else "")
