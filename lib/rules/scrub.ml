open Strip_relational
open Strip_txn
open Strip_sim

type fetch = from_lsn:int -> len:int -> string option

type t = {
  mutable passes : int;
  mutable bytes_scanned : int;
  mutable wal_corruptions : int;
  mutable cp_corruptions : int;
  mutable repaired_replica : int;
  mutable repaired_checkpoint : int;
  mutable salvaged_bytes : int;
  mutable expunged_bytes : int;
}

let create () =
  {
    passes = 0;
    bytes_scanned = 0;
    wal_corruptions = 0;
    cp_corruptions = 0;
    repaired_replica = 0;
    repaired_checkpoint = 0;
    salvaged_bytes = 0;
    expunged_bytes = 0;
  }

let passes t = t.passes
let bytes_scanned t = t.bytes_scanned
let wal_corruptions t = t.wal_corruptions
let cp_corruptions t = t.cp_corruptions
let repaired_replica t = t.repaired_replica
let repaired_checkpoint t = t.repaired_checkpoint
let salvaged_bytes t = t.salvaged_bytes
let expunged_bytes t = t.expunged_bytes

let report_corruption db ~what ~lsn ~len =
  match Strip_db.trace db with
  | None -> ()
  | Some tr ->
    Strip_obs.Trace.instant tr ~ts:(Strip_db.now db) ~cat:"storage"
      ~args:[ ("lsn", Strip_obs.Trace.Int lsn); ("len", Strip_obs.Trace.Int len) ]
      what

let scrub ?fetch t db =
  match Strip_db.durable db with
  | None -> ()
  | Some d ->
    let w = Durable.wal d in
    t.passes <- t.passes + 1;
    Meter.tick "scrub_pass";
    let nbytes = Wal.durable_bytes w in
    t.bytes_scanned <- t.bytes_scanned + nbytes;
    Meter.tick_n "scrub_byte" nbytes;
    (* Ladder rung 1: re-fetch clean bytes for each corrupt range from a
       replica whose log copy covers it, splicing them in place. *)
    let unrepaired =
      List.filter
        (fun (l, r) ->
          let len = max 1 (r - l) in
          t.wal_corruptions <- t.wal_corruptions + 1;
          Durable.note_wal_detected d ~lsn:l ~len;
          report_corruption db ~what:"wal_corruption" ~lsn:l ~len;
          match Option.bind fetch (fun f -> f ~from_lsn:l ~len:(r - l)) with
          | Some bytes ->
            Wal.splice w ~lsn:l ~bytes;
            Durable.note_wal_repaired d ~lsn:l ~len;
            Meter.tick_n "salvage_byte" (r - l);
            t.repaired_replica <- t.repaired_replica + 1;
            t.salvaged_bytes <- t.salvaged_bytes + (r - l);
            false
          | None -> true)
        (Wal.verify w)
    in
    let bad_slots = Durable.scrub_slots d in
    if bad_slots > 0 then begin
      t.cp_corruptions <- t.cp_corruptions + bad_slots;
      report_corruption db ~what:"checkpoint_corruption"
        ~lsn:(Durable.snapshot_lsn d) ~len:bad_slots
    end;
    (* Ladder rung 2: checkpoint-based repair.  The live in-memory state
       is clean (corrupt at-rest bytes never influenced it), so a fresh
       checkpoint both replaces any rotted slot and lets the corrupt log
       ranges be truncated away. *)
    if unrepaired <> [] || bad_slots > 0 then begin
      Strip_db.checkpoint db;
      if unrepaired <> [] then begin
        (* drop the retained history down to the fresh image: the
           corrupt ranges leave the log for good.  The cost of this rung
           is the whole truncated span — every byte below the new image
           loses its redo capability, not just the rotten range — which
           is what makes replica-served splicing the preferred rung. *)
        let old_base = Wal.base_lsn w in
        let lsn = Durable.snapshot_lsn d in
        if lsn > old_base then Wal.truncate_to w ~lsn;
        Durable.note_truncated d ~below:lsn;
        t.expunged_bytes <- t.expunged_bytes + max 0 (lsn - old_base);
        List.iter
          (fun (l, r) ->
            Meter.tick_n "quarantine_byte" (r - l);
            t.repaired_checkpoint <- t.repaired_checkpoint + 1)
          unrepaired
      end;
      if bad_slots > 0 then begin
        t.repaired_checkpoint <- t.repaired_checkpoint + bad_slots;
        Durable.note_cp_repaired d
      end
    end

let schedule t db ~every ?start ?(until = infinity) ?fetch () =
  if every <= 0.0 then invalid_arg "Scrub.schedule: period <= 0";
  if Strip_db.durable db = None then
    invalid_arg "Scrub.schedule: no durability layer";
  let eng = Strip_db.engine db and clk = Strip_db.clock db in
  let first =
    match start with Some s -> s | None -> Clock.now clk +. every
  in
  let rec make at =
    (* A plain background task, like fuzzy checkpointing: it runs
       between transactions, never inside one, and reschedules itself
       only on success so a retried tick cannot double-schedule. *)
    Task.create ~klass:Task.Background ~func_name:"scrub" ~release_time:at
      ~created_at:(Clock.now clk) (fun _task ->
        scrub ?fetch t db;
        let next = at +. every in
        if next <= until then Engine.submit eng (make next))
  in
  if first <= until then Engine.submit eng (make first)
