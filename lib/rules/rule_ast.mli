(** Rule definitions — the abstract syntax of paper Figure 2.

    {[
      create rule rule-name on t-name
         when transition-predicate
             [ if condition ]
         then
             [ evaluate query-commalist ]
             execute function-name
             [ unique [on column-commalist] ]
             [ after time-value ]
    ]} *)

type event =
  | On_insert
  | On_delete
  | On_update of string list
      (** columns whose change triggers the rule; empty = any column *)

type bound_query = {
  query : Strip_relational.Sql_parser.select_ast;
  bind_as : string option;  (** [bind as bound-table-name] *)
}

type uniqueness =
  | Not_unique  (** a fresh action transaction per firing *)
  | Unique  (** coarse: at most one queued transaction per user function *)
  | Unique_on of string list
      (** at most one queued transaction per (function, unique-column
          values) combination *)

type t = {
  rname : string;
  rtable : string;  (** the table the rule is defined on *)
  events : event list;
  condition : bound_query list;
      (** the [if] clause: true iff every query returns at least one row *)
  evaluate : bound_query list;
      (** extra queries bound for the action without affecting the
          condition *)
  func : string;  (** user function run by the action transaction *)
  uniqueness : uniqueness;
  delay : float;  (** release delay in seconds; 0 = release at commit *)
}

val event_matches :
  schema:Strip_relational.Schema.t -> event -> Strip_txn.Tlog.change -> bool
(** Does a log entry trigger this event?  [On_update cols] matches an
    update that changed at least one of [cols] (any column when the list is
    empty); the names are resolved against the table's [schema], and
    unknown names never match. *)

val pp : Format.formatter -> t -> unit
