open Strip_relational
open Strip_txn

type t = {
  inserted : Temp_table.t;
  deleted : Temp_table.t;
  new_ : Temp_table.t;
  old : Temp_table.t;
}

let execute_order_column = "execute_order"

let transition_schema base =
  Schema.make
    (Schema.columns (Schema.unqualify base)
    @ [ Schema.column execute_order_column Value.TInt ])

(* Every commit against the same base table builds four transition tables
   with the same derived schema and static map.  Cache the layout per base
   schema (physical identity — schemas are created once per table) so the
   per-commit cost is four small arena allocations, and so every transition
   table over one base shares a physically-identical schema, which lets
   downstream plan caches key on it. *)
let layouts : (Schema.t * (Schema.t * Temp_table.provenance array)) list ref =
  ref []

let layout_for base =
  match List.assq_opt base !layouts with
  | Some l -> l
  | None ->
    let base_arity = Schema.arity base in
    let prov =
      (* base columns point into the source record; execute_order is
         materialized *)
      Array.init (base_arity + 1) (fun i ->
          if i < base_arity then Temp_table.From_record (0, i)
          else Temp_table.Computed 0)
    in
    let l = (transition_schema base, prov) in
    layouts := (base, l) :: !layouts;
    l

let build ~schema ~table entries =
  ignore table;
  let tschema, prov = layout_for schema in
  let make_table name = Temp_table.create ~name ~schema:tschema ~nslots:1 ~prov in
  let inserted = make_table "inserted" in
  let deleted = make_table "deleted" in
  let new_ = make_table "new" in
  let old = make_table "old" in
  List.iter
    (fun (e : Tlog.entry) ->
      let seq = [| Value.Int e.execute_order |] in
      match e.change with
      | Tlog.Inserted r -> Temp_table.append inserted ~srcs:[| r |] ~mats:seq
      | Tlog.Deleted r -> Temp_table.append deleted ~srcs:[| r |] ~mats:seq
      | Tlog.Updated { old_rec; new_rec } ->
        Temp_table.append old ~srcs:[| old_rec |] ~mats:(Array.copy seq);
        Temp_table.append new_ ~srcs:[| new_rec |] ~mats:seq)
    entries;
  { inserted; deleted; new_; old }

let env t =
  [
    ("inserted", t.inserted);
    ("deleted", t.deleted);
    ("new", t.new_);
    ("old", t.old);
  ]

let retire t =
  Temp_table.retire t.inserted;
  Temp_table.retire t.deleted;
  Temp_table.retire t.new_;
  Temp_table.retire t.old
