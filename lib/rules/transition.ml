open Strip_relational
open Strip_txn

type t = {
  inserted : Temp_table.t;
  deleted : Temp_table.t;
  new_ : Temp_table.t;
  old : Temp_table.t;
}

let execute_order_column = "execute_order"

let transition_schema base =
  Schema.make
    (Schema.columns (Schema.unqualify base)
    @ [ Schema.column execute_order_column Value.TInt ])

let make_table ~schema ~base_arity name =
  (* base columns point into the source record; execute_order is
     materialized *)
  let prov =
    Array.init (base_arity + 1) (fun i ->
        if i < base_arity then Temp_table.From_record (0, i)
        else Temp_table.Computed 0)
  in
  Temp_table.create ~name ~schema ~nslots:1 ~prov

let build ~schema ~table entries =
  ignore table;
  let base_arity = Schema.arity schema in
  let tschema = transition_schema schema in
  let inserted = make_table ~schema:tschema ~base_arity "inserted" in
  let deleted = make_table ~schema:tschema ~base_arity "deleted" in
  let new_ = make_table ~schema:tschema ~base_arity "new" in
  let old = make_table ~schema:tschema ~base_arity "old" in
  List.iter
    (fun (e : Tlog.entry) ->
      let seq = [| Value.Int e.execute_order |] in
      match e.change with
      | Tlog.Inserted r -> Temp_table.append inserted ~srcs:[| r |] ~mats:seq
      | Tlog.Deleted r -> Temp_table.append deleted ~srcs:[| r |] ~mats:seq
      | Tlog.Updated { old_rec; new_rec } ->
        Temp_table.append old ~srcs:[| old_rec |] ~mats:(Array.copy seq);
        Temp_table.append new_ ~srcs:[| new_rec |] ~mats:seq)
    entries;
  { inserted; deleted; new_; old }

let env t =
  [
    ("inserted", t.inserted);
    ("deleted", t.deleted);
    ("new", t.new_);
    ("old", t.old);
  ]

let retire t =
  Temp_table.retire t.inserted;
  Temp_table.retire t.deleted;
  Temp_table.retire t.new_;
  Temp_table.retire t.old
