(** Derived-data consistency auditor.

    The maintained views are redundant by construction: [comp_prices] and
    [option_prices] must equal what their defining queries produce from the
    base tables.  The auditor recomputes each registered view definition
    from scratch, groups both sides by the view's key (its first result
    column), and compares per-key row multisets — floats within a relative
    tolerance, everything else exactly.

    It runs in two roles: as the final gate of crash recovery (a recovered
    database must audit clean {e after} the rebuilt unique queue drains),
    and as a standalone invariant checker on any live database.

    {!enqueue_repairs} turns divergences into ordinary update-class repair
    transactions that replace the view's rows for each divergent key, so a
    damaged database converges instead of merely being diagnosed. *)

type divergence = {
  view : string;
  key : Strip_relational.Value.t;  (** first result column's value *)
  expected : Strip_relational.Value.t array list;  (** recomputed, this key *)
  actual : Strip_relational.Value.t array list;  (** materialized, this key *)
}

type report = {
  audited : (string * int) list;  (** (view, recomputed rows) per view *)
  divergences : divergence list;
}

val clean : report -> bool

val audit : ?eps:float -> ?views:string list -> Strip_db.t -> report
(** Recompute every registered view definition against the current base
    data and compare with the materialized view tables.  [eps]
    (default [1e-9]) is the relative tolerance for float columns.
    [views] restricts the audit to the named views — a view with no
    installed maintenance rule is stale by design, not divergent.  Audit
    query work is metered like any other query. *)

val enqueue_repairs : Strip_db.t -> report -> int
(** Submit one update-class repair transaction per divergent key (labelled
    ["audit_repair"]): delete the key's materialized rows, insert the
    recomputed ones.  Returns the number of repairs enqueued; drain with
    {!Strip_db.run} and re-audit. *)

val pp_report : Format.formatter -> report -> unit
