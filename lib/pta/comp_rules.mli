(** Rules maintaining [comp_prices] (paper Figures 3, 6, 7).

    Four variants, one per curve of Figures 9-11:

    - {!Non_unique} — [do_comps1]: one action transaction per triggering
      transaction; [compute_comps1] walks [matches] row by row;
    - {!Unique_coarse} — [do_comps2]: one queued transaction for the whole
      view; [compute_comps2] groups the batched changes by composite in
      user code before applying them;
    - {!Unique_on_symbol} — batches per changed stock symbol; the user
      function still groups by composite in user code;
    - {!Unique_on_comp} — [do_comps3]: batches per composite;
      [compute_comps3] folds its single composite's changes in one pass.

    All variants share the condition query of Figure 3 (binding [matches])
    and are installed with their user function registered. *)

type variant = Non_unique | Unique_coarse | Unique_on_symbol | Unique_on_comp

val variant_name : variant -> string
val all_variants : variant list

val rule_text : variant -> delay:float -> string
(** The Figure-2-syntax source of the rule (delay ignored for
    {!Non_unique}, which releases at commit). *)

val install :
  Strip_core.Strip_db.t -> Pta_tables.handles -> variant -> delay:float -> unit
(** Register the user function and create the rule. *)

val install_routed :
  Strip_core.Strip_db.t ->
  Pta_tables.handles ->
  sid:int ->
  owner:(string -> int) ->
  variant ->
  delay:float ->
  unit
(** Sharded install for shard [sid]: the same rule body as {!install},
    except each composite's total change is applied locally when
    [owner comp = sid] and emitted as a cross-shard partial delta
    ({!Strip_core.Rule_manager.emit_partial}) otherwise.  Partials are
    stamped, WAL-logged and shipped by the enclosing commit. *)

val apply_partial :
  Pta_tables.handles ->
  Strip_txn.Transaction.t ->
  key:Strip_relational.Value.t list ->
  delta:float ->
  unit
(** Owner-side apply of a merged cross-shard delta: fold [delta] into the
    [comp_prices] row keyed by [key = [comp]].
    @raise Invalid_argument on any other key shape. *)

val recompute_from_scratch : Pta_tables.handles -> (string * float) list
(** Ground truth: every composite's price recomputed from current stock
    prices (unmetered), for correctness checks. *)

val maintained : Pta_tables.handles -> (string * float) list
(** Current contents of the materialized [comp_prices]. *)

val recompute_from_scratch_sharded :
  Pta_tables.handles array -> (string * float) list
(** Ground truth over a sharded deployment: stock prices and membership
    rows are unioned across all shards before totalling (unmetered). *)

val maintained_sharded : Pta_tables.handles array -> (string * float) list
(** Union of every shard's materialized [comp_prices] partition, sorted —
    comparable to {!recompute_from_scratch_sharded}. *)
