(** Rules maintaining [comp_prices] (paper Figures 3, 6, 7).

    Four variants, one per curve of Figures 9-11:

    - {!Non_unique} — [do_comps1]: one action transaction per triggering
      transaction; [compute_comps1] walks [matches] row by row;
    - {!Unique_coarse} — [do_comps2]: one queued transaction for the whole
      view; [compute_comps2] groups the batched changes by composite in
      user code before applying them;
    - {!Unique_on_symbol} — batches per changed stock symbol; the user
      function still groups by composite in user code;
    - {!Unique_on_comp} — [do_comps3]: batches per composite;
      [compute_comps3] folds its single composite's changes in one pass.

    All variants share the condition query of Figure 3 (binding [matches])
    and are installed with their user function registered. *)

type variant = Non_unique | Unique_coarse | Unique_on_symbol | Unique_on_comp

val variant_name : variant -> string
val all_variants : variant list

val rule_text : variant -> delay:float -> string
(** The Figure-2-syntax source of the rule (delay ignored for
    {!Non_unique}, which releases at commit). *)

val install :
  Strip_core.Strip_db.t -> Pta_tables.handles -> variant -> delay:float -> unit
(** Register the user function and create the rule. *)

val recompute_from_scratch : Pta_tables.handles -> (string * float) list
(** Ground truth: every composite's price recomputed from current stock
    prices (unmetered), for correctness checks. *)

val maintained : Pta_tables.handles -> (string * float) list
(** Current contents of the materialized [comp_prices]. *)
