let print_metrics_header () =
  Printf.printf "%-36s %6s %8s %9s %12s %12s %8s %8s %6s\n%!" "configuration"
    "delay" "cpu%" "N_r" "mean_rc_us" "max_rc_us" "merges" "ctxsw" "ok"

let print_metrics (m : Experiment.metrics) =
  Printf.printf "%-36s %6.2f %7.1f%% %9d %12.1f %12.0f %8d %8d %6s\n%!" m.label
    m.delay
    (100.0 *. m.utilization)
    m.n_recompute m.mean_recompute_us m.max_recompute_us m.n_merges
    m.context_switches
    (match m.verified with
    | Some true -> "yes"
    | Some false -> "NO"
    | None -> "-")

let print_failures (m : Experiment.metrics) =
  if m.n_injected + m.n_aborts + m.n_retries + m.n_sheds + m.n_dead_letters > 0
  then
    Printf.printf
      "  failures: %d injected, %d aborts, %d retries, %d sheds, %d dead%s\n%!"
      m.n_injected m.n_aborts m.n_retries m.n_sheds m.n_dead_letters
      (if Float.is_nan m.mean_recovery_s then ""
       else Printf.sprintf ", mean recovery %.3fs" m.mean_recovery_s)

let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_count v =
  if v >= 1_000_000.0 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 10_000.0 then Printf.sprintf "%.0fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let fmt_us v =
  if v >= 1e6 then Printf.sprintf "%.2fs" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fms" (v /. 1e3)
  else Printf.sprintf "%.0fus" v

let print_series ~title ~ylabel ~delays ~series ~value_fmt =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  Printf.printf "%-26s" (ylabel ^ " \\ delay");
  List.iter (fun d -> Printf.printf "%10s" (Printf.sprintf "%.1fs" d)) delays;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-26s" name;
      List.iter
        (fun d ->
          let v =
            match points with
            | [ (_, only) ] -> Some only  (* horizontal baseline *)
            | points -> List.assoc_opt d points
          in
          match v with
          | Some v -> Printf.printf "%10s" (value_fmt v)
          | None -> Printf.printf "%10s" "-")
        delays;
      print_newline ())
    series;
  flush stdout
