module Json = Strip_obs.Json

let print_metrics_header () =
  Printf.printf "%-36s %6s %8s %9s %12s %10s %10s %12s %8s %8s %6s\n%!"
    "configuration" "delay" "cpu%" "N_r" "mean_rc_us" "p50_rc_us" "p99_rc_us"
    "max_rc_us" "merges" "ctxsw" "ok"

let print_metrics (m : Experiment.metrics) =
  Printf.printf
    "%-36s %6.2f %7.1f%% %9d %12.1f %10.1f %10.1f %12.0f %8d %8d %6s\n%!"
    m.label m.delay
    (100.0 *. m.utilization)
    m.n_recompute m.mean_recompute_us m.p50_recompute_us m.p99_recompute_us
    m.max_recompute_us m.n_merges m.context_switches
    (match m.verified with
    | Some true -> "yes"
    | Some false -> "NO"
    | None -> "-")

let print_failures (m : Experiment.metrics) =
  if m.n_injected + m.n_aborts + m.n_retries + m.n_sheds + m.n_dead_letters > 0
  then
    Printf.printf
      "  failures: %d injected, %d aborts, %d retries, %d sheds, %d dead%s\n%!"
      m.n_injected m.n_aborts m.n_retries m.n_sheds m.n_dead_letters
      (if m.mean_recovery_s > 0.0 then
         Printf.sprintf ", mean recovery %.3fs" m.mean_recovery_s
       else "")
  else Printf.printf "  failures: (none)\n%!"

let print_servers (m : Experiment.metrics) =
  if m.servers > 1 || m.n_lock_waits + m.n_lock_timeouts > 0 then begin
    Printf.printf
      "  servers: %d; makespan %.1fs; recompute throughput %.1f/s; \
       utilization per server: %s\n%!"
      m.servers m.makespan_s m.recompute_throughput_per_s
      (String.concat ", "
         (List.map (fun u -> Printf.sprintf "%.1f%%" (100.0 *. u))
            m.per_server_utilization));
    match m.lock_wait_s with
    | None ->
      Printf.printf "  lock waits: (none); timeouts: %d\n%!" m.n_lock_timeouts
    | Some (s : Strip_obs.Histogram.summary) ->
      Printf.printf
        "  lock waits: %d (mean %.2fms p50 %.2fms p99 %.2fms max %.2fms); \
         timeouts: %d\n%!"
        m.n_lock_waits (1e3 *. s.mean) (1e3 *. s.p50) (1e3 *. s.p99)
        (1e3 *. s.max) m.n_lock_timeouts
  end

let print_recovery (m : Experiment.metrics) =
  match m.recovery with
  | None -> ()
  | Some (r : Experiment.recovery_metrics) ->
    Printf.printf
      "  durability: %d wal appends / %d fsyncs (%d bytes, %.3fs cpu); %d \
       checkpoints (last %d bytes, %.3fs cpu)\n%!"
      r.wal_appends r.wal_fsyncs r.wal_appended_bytes r.wal_overhead_s
      r.n_checkpoints r.checkpoint_bytes r.checkpoint_overhead_s;
    if r.n_crashes > 0 then
      Printf.printf
        "  crashes: %d; recovery %.3fs total; restored %d rows; redo %d \
         commits / %d ops; requeued %d\n%!"
        r.n_crashes r.total_recovery_s r.restored_rows r.redo_commits
        r.redo_ops r.requeued;
    Printf.printf "  audit: %s%s\n%!"
      (if r.audit_clean then "clean" else "DIVERGENT")
      (if r.repairs > 0 || r.audit_divergences > 0 then
         Printf.sprintf " (%d divergences, %d repairs)" r.audit_divergences
           r.repairs
       else "")

let print_repl (m : Experiment.metrics) =
  match m.repl with
  | None -> ()
  | Some (r : Experiment.repl_metrics) ->
    Printf.printf
      "  replication: %d replicas, policy %s; %d segments shipped (%d \
       bytes, %d dropped); %d failover(s)%s; epoch %d; data loss: %d \
       bytes lost, %d bytes fenced\n%!"
      r.n_replicas r.read_policy r.segments_sent r.bytes_shipped
      r.segments_dropped r.n_failovers
      (if r.n_partitions > 0 then
         Printf.sprintf "; %d partition(s) (%d sends cut, %d msgs fenced)"
           r.n_partitions r.partition_drops r.fenced_messages
       else "")
      r.epoch r.promotion_lost_bytes r.fenced_bytes;
    (* Cluster-wide distributions, merged across nodes / crash epochs —
       the percentile rows a primary-only report would understate. *)
    (match r.cluster_lag with
    | None -> ()
    | Some (s : Strip_obs.Histogram.summary) ->
      Printf.printf
        "  cluster lag: n=%d p50 %.1fms p99 %.1fms max %.1fms (all replicas)\n%!"
        s.n (1e3 *. s.p50) (1e3 *. s.p99) (1e3 *. s.max));
    (match r.cluster_lock_wait with
    | None -> ()
    | Some (s : Strip_obs.Histogram.summary) ->
      Printf.printf
        "  cluster lock waits: n=%d p50 %.2fms p99 %.2fms max %.2fms (all \
         epochs)\n%!"
        s.n (1e3 *. s.p50) (1e3 *. s.p99) (1e3 *. s.max));
    List.iter
      (fun (pr : Experiment.replica_metrics) ->
        match pr.r_lag with
        | None ->
          Printf.printf
            "  replica %d: applied_lsn %d; %d segments (%d dup, %d \
             reordered, %d reseeds); %d reads\n%!"
            pr.r_id pr.r_applied_lsn pr.r_segments pr.r_duplicates
            pr.r_reordered pr.r_bootstraps pr.r_reads
        | Some (s : Strip_obs.Histogram.summary) ->
          Printf.printf
            "  replica %d: applied_lsn %d; %d segments (%d dup, %d \
             reordered, %d reseeds); %d reads; lag p50 %.1fms p99 %.1fms\n%!"
            pr.r_id pr.r_applied_lsn pr.r_segments pr.r_duplicates
            pr.r_reordered pr.r_bootstraps pr.r_reads (1e3 *. s.p50)
            (1e3 *. s.p99))
      r.per_replica;
    if r.n_reads > 0 then
      Printf.printf
        "  reads: %d total (%d primary / %d replica), policy %s; %s \
         throughput %.1f/s\n%!"
        r.n_reads r.reads_primary r.reads_replica r.read_policy
        (match r.read_latency with
        | None -> "latency n/a;"
        | Some s ->
          Printf.sprintf "p50 %.2fms p99 %.2fms max %.2fms;" (1e3 *. s.p50)
            (1e3 *. s.p99) (1e3 *. s.max))
        r.read_throughput_per_s

let print_storage (m : Experiment.metrics) =
  match m.storage with
  | None -> ()
  | Some (s : Experiment.storage_metrics) ->
    Printf.printf
      "  storage faults: %d injected (%d wal rot, %d cp rot, %d fsync \
       lies); ledger: %d repaired, %d quarantined, %d expunged, %d \
       outstanding%s\n%!"
      (s.injected_bitrot_wal + s.injected_bitrot_cp + s.injected_fsync_lie)
      s.injected_bitrot_wal s.injected_bitrot_cp s.injected_fsync_lie
      s.faults_repaired s.faults_quarantined s.faults_expunged
      s.faults_outstanding
      (if s.faults_outstanding > 0 then " [SILENT CORRUPTION]" else "");
    Printf.printf
      "  scrub: %d pass(es) over %d bytes; %d wal + %d checkpoint \
       corruption(s); repaired %d via replica (%d bytes), %d via \
       checkpoint (%d bytes expunged)\n%!"
      s.scrub_passes s.scrub_bytes s.wal_corruptions s.cp_corruptions
      s.repaired_replica s.scrub_salvaged_bytes s.repaired_checkpoint
      s.scrub_expunged_bytes;
    if
      s.salvaged_ranges + s.cp_fallbacks + s.orphan_merges > 0
      || s.quarantined_bytes > 0
    then
      Printf.printf
        "  salvage recovery: %d range(s) hit during redo (%d bytes \
         replica-fetched, %d quarantined); %d checkpoint fallback(s); %d \
         orphan merge(s)\n%!"
        s.salvaged_ranges s.salvaged_bytes s.quarantined_bytes s.cp_fallbacks
        s.orphan_merges;
    if s.disk_fulls + s.lied_bytes + s.ship_verify_skips > 0 then
      Printf.printf
        "  backpressure: %d disk-full stall(s); %d bytes zeroed by lying \
         fsyncs; %d shipped segment(s) cut at corruption\n%!"
        s.disk_fulls s.lied_bytes s.ship_verify_skips;
    Printf.printf "  media: %s (%.3fs salvage cpu)\n%!"
      (if s.final_clean then "clean" else "CORRUPT AT END OF RUN")
      s.salvage_s

let print_shard (m : Experiment.metrics) =
  match m.shard with
  | None -> ()
  | Some (s : Experiment.shard_metrics) ->
    Printf.printf
      "  sharding: %d shards; %d partials shipped (%d msgs, %d bytes, %d \
       acks, %d reships); cross-shard audit: %s (%d composites)%s\n%!"
      s.n_shards s.sh_partials s.sh_msgs s.sh_bytes s.sh_acks s.sh_reships
      (if s.cross_divergences = 0 then "clean" else "DIVERGENT")
      s.cross_checks
      (if s.cross_divergences > 0 then
         Printf.sprintf " (%d divergences)" s.cross_divergences
       else "");
    if s.sh_recovery_s > 0.0 then
      Printf.printf "  shard downtime: %.3fs total across restarts\n%!"
        s.sh_recovery_s;
    List.iter
      (fun (r : Experiment.shard_row) ->
        Printf.printf
          "  shard %d: %d updates, %d recomputes, %d firings; %d partials \
           out; queue %d offered (%d dup, %d merged, %d applied); %d \
           crash(es); lsn %d\n%!"
          r.sh_id r.sh_updates r.sh_recomputes r.sh_firings r.sh_partials_out
          r.sh_offered r.sh_duplicates r.sh_merged r.sh_applied r.sh_crashes
          r.sh_final_lsn)
      s.sh_rows

let print_slo (m : Experiment.metrics) =
  List.iter
    (fun (r : Strip_obs.Slo.view_report) ->
      Printf.printf
        "  slo %-16s bound=%.3fs %s: %d/%d samples over bound in %d \
         window(s) (%.3fs violating, worst %.3fs)\n%!"
        r.r_view r.r_bound_s
        (if r.r_met then "met" else "VIOLATED")
        r.r_violations r.r_samples r.r_windows r.r_violation_s r.r_worst_s)
    m.slo

let print_trace (m : Experiment.metrics) =
  List.iter
    (fun (node, buffered, dropped) ->
      Printf.printf "  trace %-16s %d span event(s) buffered, %d dropped\n%!"
        node buffered dropped)
    m.trace_spans

let print_staleness (m : Experiment.metrics) =
  List.iter
    (fun (table, (s : Strip_obs.Histogram.summary)) ->
      Printf.printf
        "  staleness %-16s n=%-6d mean=%.3fs p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n%!"
        table s.n s.mean s.p50 s.p90 s.p99 s.max)
    m.staleness

let summary_to_json (s : Strip_obs.Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Int s.n);
      ("sum", Json.Float s.sum);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let recovery_json (r : Experiment.recovery_metrics) =
  Json.Obj
    [
      ("n_crashes", Json.Int r.n_crashes);
      ("n_checkpoints", Json.Int r.n_checkpoints);
      ("checkpoint_bytes", Json.Int r.checkpoint_bytes);
      ("wal_appends", Json.Int r.wal_appends);
      ("wal_fsyncs", Json.Int r.wal_fsyncs);
      ("wal_appended_bytes", Json.Int r.wal_appended_bytes);
      ("wal_overhead_s", Json.Float r.wal_overhead_s);
      ("checkpoint_overhead_s", Json.Float r.checkpoint_overhead_s);
      ("redo_commits", Json.Int r.redo_commits);
      ("redo_ops", Json.Int r.redo_ops);
      ("requeued", Json.Int r.requeued);
      ("restored_rows", Json.Int r.restored_rows);
      ("total_recovery_s", Json.Float r.total_recovery_s);
      ("audit_clean", Json.Bool r.audit_clean);
      ("audit_divergences", Json.Int r.audit_divergences);
      ("repairs", Json.Int r.repairs);
    ]

let repl_json (r : Experiment.repl_metrics) =
  let opt_summary = function
    | None -> Json.Null
    | Some s -> summary_to_json s
  in
  Json.Obj
    [
      ("n_replicas", Json.Int r.n_replicas);
      ("read_policy", Json.Str r.read_policy);
      ("read_rate", Json.Float r.read_rate);
      ("n_reads", Json.Int r.n_reads);
      ("reads_primary", Json.Int r.reads_primary);
      ("reads_replica", Json.Int r.reads_replica);
      ("read_latency_s", opt_summary r.read_latency);
      ("read_throughput_per_s", Json.Float r.read_throughput_per_s);
      ("n_failovers", Json.Int r.n_failovers);
      ("promotion_lost_bytes", Json.Int r.promotion_lost_bytes);
      ("epoch", Json.Int r.epoch);
      ( "epochs",
        Json.List
          (List.map
             (fun (e, id) ->
               Json.Obj [ ("epoch", Json.Int e); ("primary", Json.Int id) ])
             r.epochs) );
      ( "promotions",
        Json.List
          (List.map
             (fun (e, id, lsn) ->
               Json.Obj
                 [
                   ("epoch", Json.Int e);
                   ("promoted", Json.Int id);
                   ("promoted_lsn", Json.Int lsn);
                 ])
             r.promotions) );
      ("final_lsn", Json.Int r.final_lsn);
      ("fenced_bytes", Json.Int r.fenced_bytes);
      ("n_partitions", Json.Int r.n_partitions);
      ("partition_drops", Json.Int r.partition_drops);
      ("fenced_messages", Json.Int r.fenced_messages);
      ("segments_sent", Json.Int r.segments_sent);
      ("segments_dropped", Json.Int r.segments_dropped);
      ("bytes_shipped", Json.Int r.bytes_shipped);
      ("cluster_lag_s", opt_summary r.cluster_lag);
      ("cluster_lock_wait_s", opt_summary r.cluster_lock_wait);
      ( "replicas",
        Json.List
          (List.map
             (fun (pr : Experiment.replica_metrics) ->
               Json.Obj
                 [
                   ("id", Json.Int pr.r_id);
                   ("applied_lsn", Json.Int pr.r_applied_lsn);
                   ("segments", Json.Int pr.r_segments);
                   ("duplicates", Json.Int pr.r_duplicates);
                   ("reordered", Json.Int pr.r_reordered);
                   ("bootstraps", Json.Int pr.r_bootstraps);
                   ("reads", Json.Int pr.r_reads);
                   ("lag_s", opt_summary pr.r_lag);
                 ])
             r.per_replica) );
    ]

let storage_json (s : Experiment.storage_metrics) =
  Json.Obj
    [
      ("injected_bitrot_wal", Json.Int s.injected_bitrot_wal);
      ("injected_bitrot_cp", Json.Int s.injected_bitrot_cp);
      ("injected_fsync_lie", Json.Int s.injected_fsync_lie);
      ("faults_detected", Json.Int s.faults_detected);
      ("faults_repaired", Json.Int s.faults_repaired);
      ("faults_quarantined", Json.Int s.faults_quarantined);
      ("faults_expunged", Json.Int s.faults_expunged);
      ("faults_outstanding", Json.Int s.faults_outstanding);
      ("scrub_passes", Json.Int s.scrub_passes);
      ("scrub_bytes", Json.Int s.scrub_bytes);
      ("wal_corruptions", Json.Int s.wal_corruptions);
      ("cp_corruptions", Json.Int s.cp_corruptions);
      ("repaired_replica", Json.Int s.repaired_replica);
      ("repaired_checkpoint", Json.Int s.repaired_checkpoint);
      ("scrub_salvaged_bytes", Json.Int s.scrub_salvaged_bytes);
      ("scrub_expunged_bytes", Json.Int s.scrub_expunged_bytes);
      ("cp_fallbacks", Json.Int s.cp_fallbacks);
      ("salvaged_ranges", Json.Int s.salvaged_ranges);
      ("salvaged_bytes", Json.Int s.salvaged_bytes);
      ("quarantined_bytes", Json.Int s.quarantined_bytes);
      ("orphan_merges", Json.Int s.orphan_merges);
      ("disk_fulls", Json.Int s.disk_fulls);
      ("lied_bytes", Json.Int s.lied_bytes);
      ("ship_verify_skips", Json.Int s.ship_verify_skips);
      ("salvage_s", Json.Float s.salvage_s);
      ("final_clean", Json.Bool s.final_clean);
    ]

let shard_json (s : Experiment.shard_metrics) =
  Json.Obj
    [
      ("n_shards", Json.Int s.n_shards);
      ("msgs_sent", Json.Int s.sh_msgs);
      ("bytes_shipped", Json.Int s.sh_bytes);
      ("partials_shipped", Json.Int s.sh_partials);
      ("acks_sent", Json.Int s.sh_acks);
      ("reships", Json.Int s.sh_reships);
      ("recovery_s", Json.Float s.sh_recovery_s);
      ("cross_checks", Json.Int s.cross_checks);
      ("cross_divergences", Json.Int s.cross_divergences);
      ( "shards",
        Json.List
          (List.map
             (fun (r : Experiment.shard_row) ->
               Json.Obj
                 [
                   ("id", Json.Int r.sh_id);
                   ("updates", Json.Int r.sh_updates);
                   ("recomputes", Json.Int r.sh_recomputes);
                   ("firings", Json.Int r.sh_firings);
                   ("partials_out", Json.Int r.sh_partials_out);
                   ("offered", Json.Int r.sh_offered);
                   ("duplicates", Json.Int r.sh_duplicates);
                   ("merged", Json.Int r.sh_merged);
                   ("applied", Json.Int r.sh_applied);
                   ("crashes", Json.Int r.sh_crashes);
                   ("final_lsn", Json.Int r.sh_final_lsn);
                 ])
             s.sh_rows) );
    ]

let metrics_json (m : Experiment.metrics) =
  (* The "recovery" member appears only for durable runs, and the
     "replication" member only for replicated runs, so crash-free /
     replica-free reports stay byte-identical to earlier versions. *)
  let recovery_field =
    match m.recovery with
    | None -> []
    | Some r -> [ ("recovery", recovery_json r) ]
  in
  let repl_field =
    match m.repl with
    | None -> []
    | Some r -> [ ("replication", repl_json r) ]
  in
  (* "storage" appears only for storage-fault runs, keeping every other
     report byte-identical. *)
  let storage_field =
    match m.storage with
    | None -> []
    | Some s -> [ ("storage", storage_json s) ]
  in
  (* "sharding" appears only for sharded runs, keeping single-primary
     reports byte-identical. *)
  let shard_field =
    match m.shard with
    | None -> []
    | Some s -> [ ("sharding", shard_json s) ]
  in
  (* Likewise "slo" and "trace" appear only when those opt-in surfaces
     were armed. *)
  let slo_field =
    match m.slo with
    | [] -> []
    | rs -> [ ("slo", Json.List (List.map Strip_obs.Slo.report_json rs)) ]
  in
  let trace_field =
    match m.trace_spans with
    | [] -> []
    | spans ->
      [
        ( "trace",
          Json.List
            (List.map
               (fun (node, buffered, dropped) ->
                 Json.Obj
                   [
                     ("node", Json.Str node);
                     ("buffered", Json.Int buffered);
                     ("dropped", Json.Int dropped);
                   ])
               spans) );
      ]
  in
  Json.Obj
    ([
      ("label", Json.Str m.label);
      ("delay_s", Json.Float m.delay);
      ("duration_s", Json.Float m.duration_s);
      ("servers", Json.Int m.servers);
      ("makespan_s", Json.Float m.makespan_s);
      ("recompute_throughput_per_s", Json.Float m.recompute_throughput_per_s);
      ( "per_server_utilization",
        Json.List (List.map (fun u -> Json.Float u) m.per_server_utilization)
      );
      ("n_lock_waits", Json.Int m.n_lock_waits);
      ("n_lock_timeouts", Json.Int m.n_lock_timeouts);
      ( "lock_wait_s",
        match m.lock_wait_s with
        | None -> Json.Null
        | Some s -> summary_to_json s );
      ("utilization", Json.Float m.utilization);
      ("n_updates", Json.Int m.n_updates);
      ("n_recompute", Json.Int m.n_recompute);
      ("mean_recompute_us", Json.Float m.mean_recompute_us);
      ("p50_recompute_us", Json.Float m.p50_recompute_us);
      ("p90_recompute_us", Json.Float m.p90_recompute_us);
      ("p99_recompute_us", Json.Float m.p99_recompute_us);
      ("max_recompute_us", Json.Float m.max_recompute_us);
      ("busy_update_s", Json.Float m.busy_update_s);
      ("busy_recompute_s", Json.Float m.busy_recompute_s);
      ("n_firings", Json.Int m.n_firings);
      ("n_merges", Json.Int m.n_merges);
      ("context_switches", Json.Int m.context_switches);
      ("expected_fanout", Json.Float m.expected_fanout);
      ( "verified",
        match m.verified with None -> Json.Null | Some b -> Json.Bool b );
      ("max_abs_error", Json.Float m.max_abs_error);
      ("n_injected", Json.Int m.n_injected);
      ("n_aborts", Json.Int m.n_aborts);
      ("n_retries", Json.Int m.n_retries);
      ("n_sheds", Json.Int m.n_sheds);
      ("n_dead_letters", Json.Int m.n_dead_letters);
      ("mean_recovery_s", Json.Float m.mean_recovery_s);
      ( "staleness_s",
        Json.Obj (List.map (fun (t, s) -> (t, summary_to_json s)) m.staleness)
      );
     ]
    @ recovery_field @ repl_field @ storage_field @ shard_field @ slo_field
    @ trace_field)

let print_metrics_json ms =
  print_string
    (Json.to_string (Json.Obj [ ("experiments", Json.List (List.map metrics_json ms)) ]));
  print_newline ();
  flush stdout

let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_count v =
  if v >= 1_000_000.0 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 10_000.0 then Printf.sprintf "%.0fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let fmt_us v =
  if v >= 1e6 then Printf.sprintf "%.2fs" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fms" (v /. 1e3)
  else Printf.sprintf "%.0fus" v

let print_series ~title ~ylabel ~delays ~series ~value_fmt =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  Printf.printf "%-26s" (ylabel ^ " \\ delay");
  List.iter (fun d -> Printf.printf "%10s" (Printf.sprintf "%.1fs" d)) delays;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-26s" name;
      List.iter
        (fun d ->
          let v =
            match points with
            | [ (_, only) ] -> Some only  (* horizontal baseline *)
            | points -> List.assoc_opt d points
          in
          match v with
          | Some v -> Printf.printf "%10s" (value_fmt v)
          | None -> Printf.printf "%10s" "-")
        delays;
      print_newline ())
    series;
  flush stdout
