open Strip_relational
open Strip_core
open Strip_market

type sizes = {
  n_comps : int;
  comp_members : int;
  n_options : int;
  membership_bias : float;
  option_bias : float;
  seed : int;
}

let default_sizes =
  {
    n_comps = 400;
    comp_members = 200;
    n_options = 50000;
    membership_bias = 0.5;
    option_bias = 0.8;
    seed = 42;
  }

let scaled_sizes s f =
  {
    s with
    n_comps = max 1 (int_of_float (Float.round (float_of_int s.n_comps *. f)));
    n_options = max 1 (int_of_float (Float.round (float_of_int s.n_options *. f)));
  }

type handles = {
  stocks : Table.t;
  stocks_by_symbol : Index.t;
  stock_stdev : Table.t;
  stdev_by_symbol : Index.t;
  comps_list : Table.t;
  comps_by_symbol : Index.t;
  comp_prices : Table.t;
  comp_by_name : Index.t;
  options_list : Table.t;
  options_by_stock : Index.t;
  option_prices : Table.t;
  option_by_symbol : Index.t;
}

let comp_name i = Printf.sprintf "COMP%03d" i

let populate db ~feed sizes =
  Strip_finance.Black_scholes.register_sql_function ();
  let cat = Strip_db.catalog db in
  let mk name cols = Catalog.create_table cat ~name ~schema:(Schema.of_list cols) in
  let stocks =
    mk "stocks" [ ("symbol", Value.TStr); ("price", Value.TFloat) ]
  in
  let stock_stdev =
    mk "stock_stdev" [ ("symbol", Value.TStr); ("stdev", Value.TFloat) ]
  in
  let comps_list =
    mk "comps_list"
      [ ("comp", Value.TStr); ("symbol", Value.TStr); ("weight", Value.TFloat) ]
  in
  let options_list =
    mk "options_list"
      [
        ("option_symbol", Value.TStr);
        ("stock_symbol", Value.TStr);
        ("strike", Value.TFloat);
        ("expiration", Value.TFloat);
      ]
  in
  let rng = Random.State.make [| sizes.seed |] in
  let weights = Feed.activity_weights feed in
  let prices = Feed.initial_prices feed in
  (* stocks + stock_stdev *)
  for s = 0 to feed.Feed.n_stocks - 1 do
    let sym = Value.Str (Taq.symbol s) in
    ignore (Table.insert stocks [| sym; Value.Float prices.(s) |]);
    let stdev = 0.15 +. Random.State.float rng 0.45 in
    ignore (Table.insert stock_stdev [| sym; Value.Float stdev |])
  done;
  (* composite membership: members drawn in proportion to activity^bias *)
  let member_sampler =
    Zipf.sampler (Zipf.power weights sizes.membership_bias)
  in
  for cnum = 0 to sizes.n_comps - 1 do
    let members =
      Zipf.sample_distinct member_sampler rng ~k:sizes.comp_members
        ~n:feed.Feed.n_stocks
    in
    let base_weight = 1.0 /. float_of_int sizes.comp_members in
    Array.iter
      (fun s ->
        let w = base_weight *. (0.5 +. Random.State.float rng 1.0) in
        ignore
          (Table.insert comps_list
             [|
               Value.Str (comp_name cnum);
               Value.Str (Taq.symbol s);
               Value.Float w;
             |]))
      members
  done;
  (* listed options: stocks drawn in proportion to activity^bias *)
  let option_sampler = Zipf.sampler (Zipf.power weights sizes.option_bias) in
  for onum = 0 to sizes.n_options - 1 do
    let s = Zipf.sample option_sampler rng in
    let sym = Taq.symbol s in
    let strike =
      Float.max 0.125
        (Float.round (prices.(s) *. (0.8 +. Random.State.float rng 0.4) *. 8.0)
        /. 8.0)
    in
    let expiration = 0.05 +. Random.State.float rng 0.70 in
    ignore
      (Table.insert options_list
         [|
           Value.Str (Printf.sprintf "%s_O%d" sym onum);
           Value.Str sym;
           Value.Float strike;
           Value.Float expiration;
         |])
  done;
  (* indexes the rules' access paths need *)
  let idx tb name cols = Table.create_index tb ~name ~kind:Index.Hash ~cols in
  let stocks_by_symbol = idx stocks "stocks_by_symbol" [ "symbol" ] in
  let stdev_by_symbol = idx stock_stdev "stdev_by_symbol" [ "symbol" ] in
  let comps_by_symbol = idx comps_list "comps_by_symbol" [ "symbol" ] in
  let options_by_stock = idx options_list "options_by_stock" [ "stock_symbol" ] in
  (* materialized views, built through their paper definitions (declared
     through the database so the auditor and checkpoints know them) *)
  Strip_db.declare_view db
    ~sql:
      "create view comp_prices as select comp, sum(price * weight) as price \
       from stocks, comps_list where stocks.symbol = comps_list.symbol \
       group by comp";
  Strip_db.declare_view db
    ~sql:
      "create view option_prices as select option_symbol, \
       f_bs(price, strike, expiration, stdev) as price \
       from stocks, stock_stdev, options_list \
       where stocks.symbol = options_list.stock_symbol \
       and stocks.symbol = stock_stdev.symbol";
  let comp_prices = Catalog.table_exn cat "comp_prices" in
  let option_prices = Catalog.table_exn cat "option_prices" in
  let comp_by_name = idx comp_prices "comp_by_name" [ "comp" ] in
  let option_by_symbol = idx option_prices "option_by_symbol" [ "option_symbol" ] in
  {
    stocks;
    stocks_by_symbol;
    stock_stdev;
    stdev_by_symbol;
    comps_list;
    comps_by_symbol;
    comp_prices;
    comp_by_name;
    options_list;
    options_by_stock;
    option_prices;
    option_by_symbol;
  }

(* Sharded population: every shard gets the full schema, but each row
   lives only on its owner — stocks, stock_stdev, comps_list and
   options_list rows on the shard owning the stock symbol, comp_prices
   rows on the shard owning the composite name.  The SAME single RNG and
   draw sequence as [populate] runs here, so the union of all shards'
   tables is byte-for-byte the unsharded dataset regardless of the shard
   count (only the placement changes). *)
let populate_sharded dbs ~owner_sym ~owner_comp ~feed sizes =
  Strip_finance.Black_scholes.register_sql_function ();
  let n = Array.length dbs in
  if n = 0 then invalid_arg "Pta_tables.populate_sharded: no shards";
  let cats = Array.map Strip_db.catalog dbs in
  let mk cat name cols =
    Catalog.create_table cat ~name ~schema:(Schema.of_list cols)
  in
  let stocks_a =
    Array.map
      (fun cat -> mk cat "stocks" [ ("symbol", Value.TStr); ("price", Value.TFloat) ])
      cats
  in
  let stdev_a =
    Array.map
      (fun cat ->
        mk cat "stock_stdev" [ ("symbol", Value.TStr); ("stdev", Value.TFloat) ])
      cats
  in
  let comps_a =
    Array.map
      (fun cat ->
        mk cat "comps_list"
          [ ("comp", Value.TStr); ("symbol", Value.TStr); ("weight", Value.TFloat) ])
      cats
  in
  let options_a =
    Array.map
      (fun cat ->
        mk cat "options_list"
          [
            ("option_symbol", Value.TStr);
            ("stock_symbol", Value.TStr);
            ("strike", Value.TFloat);
            ("expiration", Value.TFloat);
          ])
      cats
  in
  let rng = Random.State.make [| sizes.seed |] in
  let weights = Feed.activity_weights feed in
  let prices = Feed.initial_prices feed in
  for s = 0 to feed.Feed.n_stocks - 1 do
    let o = owner_sym (Taq.symbol s) in
    let sym = Value.Str (Taq.symbol s) in
    ignore (Table.insert stocks_a.(o) [| sym; Value.Float prices.(s) |]);
    let stdev = 0.15 +. Random.State.float rng 0.45 in
    ignore (Table.insert stdev_a.(o) [| sym; Value.Float stdev |])
  done;
  let member_sampler =
    Zipf.sampler (Zipf.power weights sizes.membership_bias)
  in
  (* A shard's local stocks cannot price remote members, so each
     composite's seed value accumulates here from the full data and is
     installed on the composite's owner below. *)
  let totals = Hashtbl.create 512 in
  let comp_order = ref [] in
  for cnum = 0 to sizes.n_comps - 1 do
    let members =
      Zipf.sample_distinct member_sampler rng ~k:sizes.comp_members
        ~n:feed.Feed.n_stocks
    in
    let base_weight = 1.0 /. float_of_int sizes.comp_members in
    let name = comp_name cnum in
    comp_order := name :: !comp_order;
    Array.iter
      (fun s ->
        let w = base_weight *. (0.5 +. Random.State.float rng 1.0) in
        let o = owner_sym (Taq.symbol s) in
        ignore
          (Table.insert comps_a.(o)
             [| Value.Str name; Value.Str (Taq.symbol s); Value.Float w |]);
        let tl =
          match Hashtbl.find_opt totals name with Some t -> t | None -> 0.0
        in
        Hashtbl.replace totals name (tl +. (w *. prices.(s))))
      members
  done;
  let option_sampler = Zipf.sampler (Zipf.power weights sizes.option_bias) in
  for onum = 0 to sizes.n_options - 1 do
    let s = Zipf.sample option_sampler rng in
    let sym = Taq.symbol s in
    let strike =
      Float.max 0.125
        (Float.round (prices.(s) *. (0.8 +. Random.State.float rng 0.4) *. 8.0)
        /. 8.0)
    in
    let expiration = 0.05 +. Random.State.float rng 0.70 in
    let o = owner_sym sym in
    ignore
      (Table.insert options_a.(o)
         [|
           Value.Str (Printf.sprintf "%s_O%d" sym onum);
           Value.Str sym;
           Value.Float strike;
           Value.Float expiration;
         |])
  done;
  Array.init n (fun i ->
      let db = dbs.(i) in
      let idx tb name cols = Table.create_index tb ~name ~kind:Index.Hash ~cols in
      let stocks = stocks_a.(i)
      and stock_stdev = stdev_a.(i)
      and comps_list = comps_a.(i)
      and options_list = options_a.(i) in
      let stocks_by_symbol = idx stocks "stocks_by_symbol" [ "symbol" ] in
      let stdev_by_symbol = idx stock_stdev "stdev_by_symbol" [ "symbol" ] in
      let comps_by_symbol = idx comps_list "comps_by_symbol" [ "symbol" ] in
      let options_by_stock = idx options_list "options_by_stock" [ "stock_symbol" ] in
      (* comp_prices is a plain partitioned table here, not a local view:
         a composite's members span shards, so its row is seeded from the
         full data on the owner and thereafter maintained by local writes
         plus shipped partial deltas (docs/SHARDING.md). *)
      let comp_prices =
        mk cats.(i) "comp_prices" [ ("comp", Value.TStr); ("price", Value.TFloat) ]
      in
      List.iter
        (fun name ->
          if owner_comp name = i then
            ignore
              (Table.insert comp_prices
                 [| Value.Str name; Value.Float (Hashtbl.find totals name) |]))
        (List.rev !comp_order);
      (* options are fully local — stocks, stock_stdev and options_list
         are co-partitioned by symbol — so the paper view works per shard *)
      Strip_db.declare_view db
        ~sql:
          "create view option_prices as select option_symbol, \
           f_bs(price, strike, expiration, stdev) as price \
           from stocks, stock_stdev, options_list \
           where stocks.symbol = options_list.stock_symbol \
           and stocks.symbol = stock_stdev.symbol";
      let option_prices = Catalog.table_exn cats.(i) "option_prices" in
      let comp_by_name = idx comp_prices "comp_by_name" [ "comp" ] in
      let option_by_symbol = idx option_prices "option_by_symbol" [ "option_symbol" ] in
      {
        stocks;
        stocks_by_symbol;
        stock_stdev;
        stdev_by_symbol;
        comps_list;
        comps_by_symbol;
        comp_prices;
        comp_by_name;
        options_list;
        options_by_stock;
        option_prices;
        option_by_symbol;
      })

(* Rebind handles against a recovered catalog: every table and index was
   restored from the checkpoint image under its original name. *)
let reattach db =
  let cat = Strip_db.catalog db in
  let tb = Catalog.table_exn cat in
  let ix t name =
    match Table.find_index t name with
    | Some ix -> ix
    | None -> invalid_arg (Printf.sprintf "Pta_tables.reattach: no index %s" name)
  in
  let stocks = tb "stocks" in
  let stock_stdev = tb "stock_stdev" in
  let comps_list = tb "comps_list" in
  let options_list = tb "options_list" in
  let comp_prices = tb "comp_prices" in
  let option_prices = tb "option_prices" in
  {
    stocks;
    stocks_by_symbol = ix stocks "stocks_by_symbol";
    stock_stdev;
    stdev_by_symbol = ix stock_stdev "stdev_by_symbol";
    comps_list;
    comps_by_symbol = ix comps_list "comps_by_symbol";
    comp_prices;
    comp_by_name = ix comp_prices "comp_by_name";
    options_list;
    options_by_stock = ix options_list "options_by_stock";
    option_prices;
    option_by_symbol = ix option_prices "option_by_symbol";
  }

(* E[rows touched per price change] = Σ_s w_s · fanout_s. *)
let fanout_per_update table ~key_col ~weights =
  let counts = Hashtbl.create 4096 in
  Table.iter table (fun r ->
      let sym =
        match Record.value r key_col with
        | Value.Str s -> s
        | v -> Value.to_string v
      in
      let c = match Hashtbl.find_opt counts sym with Some c -> c | None -> 0 in
      Hashtbl.replace counts sym (c + 1));
  let total = ref 0.0 in
  Array.iteri
    (fun s w ->
      match Hashtbl.find_opt counts (Taq.symbol s) with
      | Some c -> total := !total +. (w *. float_of_int c)
      | None -> ())
    weights;
  !total

let expected_comps_per_update h ~weights =
  fanout_per_update h.comps_list ~key_col:1 ~weights

let expected_options_per_update h ~weights =
  fanout_per_update h.options_list ~key_col:1 ~weights
