open Strip_relational
open Strip_core

let c_ugroup_row = Meter.counter "ugroup_row"
type variant = Non_unique | Unique_coarse | Unique_on_symbol | Unique_on_comp

let variant_name = function
  | Non_unique -> "non-unique"
  | Unique_coarse -> "unique"
  | Unique_on_symbol -> "unique on symbol"
  | Unique_on_comp -> "unique on comp"

let all_variants = [ Non_unique; Unique_coarse; Unique_on_symbol; Unique_on_comp ]

let condition =
  "  select comp, comps_list.symbol as symbol, weight,\n\
  \         old.price as old_price, new.price as new_price\n\
  \  from comps_list, new, old\n\
  \  where comps_list.symbol = new.symbol\n\
  \    and new.execute_order = old.execute_order\n\
  \  bind as matches\n"

let func_name = function
  | Non_unique -> "compute_comps1"
  | Unique_coarse -> "compute_comps2"
  | Unique_on_symbol -> "compute_comps2s"
  | Unique_on_comp -> "compute_comps3"

let rule_name = function
  | Non_unique -> "do_comps1"
  | Unique_coarse -> "do_comps2"
  | Unique_on_symbol -> "do_comps2s"
  | Unique_on_comp -> "do_comps3"

let rule_text variant ~delay =
  let unique_clause =
    match variant with
    | Non_unique -> ""
    | Unique_coarse -> "  unique\n"
    | Unique_on_symbol -> "  unique on symbol\n"
    | Unique_on_comp -> "  unique on comp\n"
  in
  let after_clause =
    match variant with
    | Non_unique -> ""
    | _ -> Printf.sprintf "  after %g seconds\n" delay
  in
  Printf.sprintf
    "create rule %s on stocks\nwhen updated price\nif\n%sthen\n  execute %s\n%s%s"
    (rule_name variant) condition (func_name variant) unique_clause
    after_clause

(* matches columns *)
let c_comp = 0
let c_weight = 2
let c_old = 3
let c_new = 4

let apply_diff (h : Pta_tables.handles) txn comp diff =
  ignore
    (Db_ops.update_by_key txn h.Pta_tables.comp_prices h.Pta_tables.comp_by_name
       [ comp ]
       (fun values ->
         values.(1) <- Value.add values.(1) (Value.Float diff);
         values))

(* The three maintenance bodies below are parameterized on [emit] (what
   to do with one composite's total change) so the sharded path can route
   remote composites into cross-shard partials while the single-primary
   path keeps writing locally — same grouping, same arithmetic. *)

(* Figure 3: row-at-a-time incremental maintenance. *)
let compute_comps1_emit emit (ctx : Rule_manager.action_ctx) =
  Db_ops.iter_bound ctx "matches" (fun row ->
      let diff =
        Strip_finance.Composite.delta
          ~weight:(Value.to_float row.(c_weight))
          ~old_price:(Value.to_float row.(c_old))
          ~new_price:(Value.to_float row.(c_new))
      in
      emit ctx row.(c_comp) diff)

(* Figure 6: group the batch by composite in user code, then apply each
   composite's total change once. *)
let compute_comps2_emit emit (ctx : Rule_manager.action_ctx) =
  let diffs : (Value.t, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Db_ops.iter_bound ctx "matches" (fun row ->
      Meter.tick_c c_ugroup_row;
      let diff =
        Strip_finance.Composite.delta
          ~weight:(Value.to_float row.(c_weight))
          ~old_price:(Value.to_float row.(c_old))
          ~new_price:(Value.to_float row.(c_new))
      in
      match Hashtbl.find_opt diffs row.(c_comp) with
      | Some d -> Hashtbl.replace diffs row.(c_comp) (d +. diff)
      | None ->
        Hashtbl.add diffs row.(c_comp) diff;
        order := row.(c_comp) :: !order);
  List.iter
    (fun comp -> emit ctx comp (Hashtbl.find diffs comp))
    (List.rev !order)

(* Figure 7: the batch holds a single composite's changes; fold them in one
   pass and write once. *)
let compute_comps3_emit emit (ctx : Rule_manager.action_ctx) =
  let comp = ref Value.Null and total = ref 0.0 in
  Db_ops.iter_bound ctx "matches" (fun row ->
      comp := row.(c_comp);
      total :=
        !total
        +. Strip_finance.Composite.delta
             ~weight:(Value.to_float row.(c_weight))
             ~old_price:(Value.to_float row.(c_old))
             ~new_price:(Value.to_float row.(c_new)));
  if not (Value.is_null !comp) then emit ctx !comp !total

let local_emit h (ctx : Rule_manager.action_ctx) comp diff =
  apply_diff h ctx.Rule_manager.txn comp diff

let body_of variant =
  match variant with
  | Non_unique -> compute_comps1_emit
  | Unique_coarse | Unique_on_symbol -> compute_comps2_emit
  | Unique_on_comp -> compute_comps3_emit

let install db h variant ~delay =
  Strip_db.register_function db (func_name variant) (body_of variant (local_emit h));
  Strip_db.create_rule db (rule_text variant ~delay)

(* Sharded install: composites this shard owns update locally exactly as
   above; the rest become weighted partial deltas buffered in the rule
   manager, to be stamped/logged/shipped by the enclosing commit (DBSP
   linearity: the composite total is the sum of per-shard
   contributions). *)
let install_routed db h ~sid ~owner variant ~delay =
  let mgr = Strip_db.rules db in
  let emit (ctx : Rule_manager.action_ctx) comp diff =
    let dst = owner (Value.to_string comp) in
    if dst = sid then apply_diff h ctx.Rule_manager.txn comp diff
    else Rule_manager.emit_partial mgr ~dst ~key:[ comp ] ~delta:diff
  in
  Strip_db.register_function db (func_name variant) (body_of variant emit);
  Strip_db.create_rule db (rule_text variant ~delay)

(* Owner side of the protocol: fold a merged cross-shard delta into the
   composite row, same access path as a local apply. *)
let apply_partial h txn ~key ~delta =
  match key with
  | [ comp ] -> apply_diff h txn comp delta
  | _ -> invalid_arg "Comp_rules.apply_partial: key must be [comp]"

let recompute_from_scratch (h : Pta_tables.handles) =
  let was = !Meter.enabled in
  Meter.enabled := false;
  Fun.protect
    ~finally:(fun () -> Meter.enabled := was)
    (fun () ->
      let price_of = Hashtbl.create 8192 in
      Table.iter h.Pta_tables.stocks (fun r ->
          Hashtbl.replace price_of (Record.value r 0) (Value.to_float (Record.value r 1)));
      let totals = Hashtbl.create 512 in
      let order = ref [] in
      Table.iter h.Pta_tables.comps_list (fun r ->
          let comp = Value.to_string (Record.value r 0) in
          let sym = Record.value r 1 in
          let w = Value.to_float (Record.value r 2) in
          let p = Hashtbl.find price_of sym in
          match Hashtbl.find_opt totals comp with
          | Some t -> Hashtbl.replace totals comp (t +. (w *. p))
          | None ->
            Hashtbl.add totals comp (w *. p);
            order := comp :: !order);
      List.rev_map (fun comp -> (comp, Hashtbl.find totals comp)) !order
      |> List.sort compare)

let maintained (h : Pta_tables.handles) =
  let acc = ref [] in
  Table.iter h.Pta_tables.comp_prices (fun r ->
      acc :=
        (Value.to_string (Record.value r 0), Value.to_float (Record.value r 1))
        :: !acc);
  List.sort compare !acc

(* Cross-shard ground truth: stock prices live scattered across shards and
   so do membership rows, so both scans union over the whole array before
   totalling.  Sorted output, directly comparable to
   [maintained_sharded]. *)
let recompute_from_scratch_sharded (hs : Pta_tables.handles array) =
  let was = !Meter.enabled in
  Meter.enabled := false;
  Fun.protect
    ~finally:(fun () -> Meter.enabled := was)
    (fun () ->
      let price_of = Hashtbl.create 8192 in
      Array.iter
        (fun (h : Pta_tables.handles) ->
          Table.iter h.Pta_tables.stocks (fun r ->
              Hashtbl.replace price_of (Record.value r 0)
                (Value.to_float (Record.value r 1))))
        hs;
      let totals = Hashtbl.create 512 in
      let order = ref [] in
      Array.iter
        (fun (h : Pta_tables.handles) ->
          Table.iter h.Pta_tables.comps_list (fun r ->
              let comp = Value.to_string (Record.value r 0) in
              let sym = Record.value r 1 in
              let w = Value.to_float (Record.value r 2) in
              let p = Hashtbl.find price_of sym in
              match Hashtbl.find_opt totals comp with
              | Some t -> Hashtbl.replace totals comp (t +. (w *. p))
              | None ->
                Hashtbl.add totals comp (w *. p);
                order := comp :: !order))
        hs;
      List.rev_map (fun comp -> (comp, Hashtbl.find totals comp)) !order
      |> List.sort compare)

let maintained_sharded (hs : Pta_tables.handles array) =
  let acc = ref [] in
  Array.iter
    (fun (h : Pta_tables.handles) ->
      Table.iter h.Pta_tables.comp_prices (fun r ->
          acc :=
            (Value.to_string (Record.value r 0), Value.to_float (Record.value r 1))
            :: !acc))
    hs;
  List.sort compare !acc
