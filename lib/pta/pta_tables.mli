(** Program-trading-application schema and population (paper §3, §4.2).

    Six tables:
    - [stocks(symbol, price)] — base data, driven by the quote stream;
    - [stock_stdev(symbol, stdev)] — annualized volatility (base data);
    - [comps_list(comp, symbol, weight)] — composite membership
      ("other data"; 400 composites × 200 stocks = 80,000 rows);
    - [comp_prices(comp, price)] — derived, materialized as a view;
    - [options_list(option_symbol, stock_symbol, strike, expiration)] —
      50,000 listed call options (base data);
    - [option_prices(option_symbol, price)] — derived via Black-Scholes.

    Composite members and option listings are drawn in proportion to
    trading activity ("the stocks of large companies which trade frequently
    are most often used in composites"), with a bias exponent because the
    paper simultaneously reports ≈12 recomputations per price change —
    see DESIGN.md.  All tables get the indexes the rules' access paths
    need. *)

type sizes = {
  n_comps : int;
  comp_members : int;
  n_options : int;
  membership_bias : float;
      (** exponent applied to activity weights when sampling composite
          members (1 = fully proportional, 0 = uniform) *)
  option_bias : float;  (** same, for assigning options to stocks *)
  seed : int;
}

val default_sizes : sizes
(** The paper's scenario: 400 composites × 200 members, 50,000 options. *)

val scaled_sizes : sizes -> float -> sizes
(** Shrink composite count and option count by a factor (members per
    composite unchanged), for quick runs. *)

type handles = {
  stocks : Strip_relational.Table.t;
  stocks_by_symbol : Strip_relational.Index.t;
  stock_stdev : Strip_relational.Table.t;
  stdev_by_symbol : Strip_relational.Index.t;
  comps_list : Strip_relational.Table.t;
  comps_by_symbol : Strip_relational.Index.t;
  comp_prices : Strip_relational.Table.t;
  comp_by_name : Strip_relational.Index.t;
  options_list : Strip_relational.Table.t;
  options_by_stock : Strip_relational.Index.t;
  option_prices : Strip_relational.Table.t;
  option_by_symbol : Strip_relational.Index.t;
}

val populate :
  Strip_core.Strip_db.t -> feed:Strip_market.Feed.config -> sizes -> handles
(** Create, index and fill all six tables.  [comp_prices] and
    [option_prices] are materialized through their paper view definitions
    (the [option_prices] view uses the registered [f_bs] function).
    Metering performed during population is the caller's to reset. *)

val populate_sharded :
  Strip_core.Strip_db.t array ->
  owner_sym:(string -> int) ->
  owner_comp:(string -> int) ->
  feed:Strip_market.Feed.config ->
  sizes ->
  handles array
(** Partitioned population for the sharded write path: every shard gets
    the full schema, each row lives only on its owner ([owner_sym] for
    stock-keyed rows, [owner_comp] for composite rows).  Runs the {e same}
    single RNG draw sequence as {!populate}, so the union of all shards'
    tables equals the unsharded dataset for any shard count.
    [comp_prices] is a plain partitioned table (seeded from the full
    data, maintained by local writes + shipped partial deltas), while
    [option_prices] stays a per-shard view — options are fully local
    because their three source tables are co-partitioned by symbol.
    @raise Invalid_argument on an empty array. *)

val reattach : Strip_core.Strip_db.t -> handles
(** Rebind handles against a recovered catalog (tables and indexes were
    restored from a checkpoint image under their original names).
    @raise Invalid_argument if an expected table or index is missing. *)

(** {1 Workload statistics} *)

val expected_comps_per_update :
  handles -> weights:float array -> float
(** E[composite memberships touched per price change] — the fan-in figure
    the paper quotes as ≈12. *)

val expected_options_per_update :
  handles -> weights:float array -> float
(** E[options recomputed per price change] — the fan-out driver of §5.2. *)
