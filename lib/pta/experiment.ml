open Strip_relational
open Strip_core
open Strip_market

type rule_choice =
  | Comp_view of Comp_rules.variant
  | Option_view of Option_rules.variant

type config = {
  rule : rule_choice;
  delay : float;
  feed : Feed.config;
  sizes : Pta_tables.sizes;
  cost : Strip_sim.Cost_model.t;
  verify : bool;
  servers : int;
  lock_timeout_s : float;
  fault : Strip_txn.Fault.config option;
  retry : Strip_sim.Engine.retry option;
  overload : Strip_sim.Engine.overload option;
  trace : Strip_obs.Trace.t option;
}

let default_config rule ~delay =
  {
    rule;
    delay;
    feed = Feed.default_config;
    sizes = Pta_tables.default_sizes;
    cost = Strip_sim.Cost_model.default;
    verify = true;
    servers = 1;
    lock_timeout_s = 5.0;
    fault = None;
    retry = None;
    overload = None;
    trace = None;
  }

let with_faults ?seed ?(retry = Strip_sim.Engine.default_retry) ~abort_rate cfg =
  { cfg with fault = Some (Strip_txn.Fault.abort_only ?seed abort_rate); retry = Some retry }

let quick cfg f =
  {
    cfg with
    feed = Feed.scaled cfg.feed f;
    sizes = Pta_tables.scaled_sizes cfg.sizes f;
  }

type metrics = {
  label : string;
  delay : float;
  duration_s : float;
  servers : int;
  makespan_s : float;
  recompute_throughput_per_s : float;
  per_server_utilization : float list;
  n_lock_waits : int;
  n_lock_timeouts : int;
  lock_wait_s : Strip_obs.Histogram.summary option;
  utilization : float;
  n_updates : int;
  n_recompute : int;
  mean_recompute_us : float;
  p50_recompute_us : float;
  p90_recompute_us : float;
  p99_recompute_us : float;
  max_recompute_us : float;
  busy_update_s : float;
  busy_recompute_s : float;
  n_firings : int;
  n_merges : int;
  context_switches : int;
  expected_fanout : float;
  verified : bool option;
  max_abs_error : float;
  n_injected : int;
  n_aborts : int;
  n_retries : int;
  n_sheds : int;
  n_dead_letters : int;
  mean_recovery_s : float;
  staleness : (string * Strip_obs.Histogram.summary) list;
  registry : Strip_obs.Metrics.row list;
}

let label_of = function
  | Comp_view v -> "comp_prices/" ^ Comp_rules.variant_name v
  | Option_view v -> "option_prices/" ^ Option_rules.variant_name v

let verify_tolerance = function
  | Comp_view _ -> 1e-6
  | Option_view _ -> 1e-9

(* Compare two sorted (name, value) association lists. *)
let max_error expected actual =
  let tbl = Hashtbl.create (List.length expected * 2) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) expected;
  List.fold_left
    (fun worst (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some e -> Float.max worst (Float.abs (v -. e))
      | None -> infinity)
    (if List.length expected = List.length actual then 0.0 else infinity)
    actual

let run cfg =
  let db =
    Strip_db.create ~cost:cfg.cost ?fault:cfg.fault ?retry:cfg.retry
      ?overload:cfg.overload ~servers:cfg.servers
      ~lock_timeout_s:cfg.lock_timeout_s ?trace:cfg.trace ()
  in
  let h = Pta_tables.populate db ~feed:cfg.feed cfg.sizes in
  let weights = Feed.activity_weights cfg.feed in
  let expected_fanout =
    match cfg.rule with
    | Comp_view _ -> Pta_tables.expected_comps_per_update h ~weights
    | Option_view _ -> Pta_tables.expected_options_per_update h ~weights
  in
  (match cfg.rule with
  | Comp_view v -> Comp_rules.install db h v ~delay:cfg.delay
  | Option_view v -> Option_rules.install db h v ~delay:cfg.delay);
  let n_submitted =
    Strip_ingest.Import.generate_and_replay db
      {
        Strip_ingest.Import.stocks = h.Pta_tables.stocks;
        by_symbol = h.Pta_tables.stocks_by_symbol;
      }
      cfg.feed
  in
  ignore n_submitted;
  Meter.reset ();
  Rule_manager.reset_stats (Strip_db.rules db);
  Strip_db.run db;
  let stats = Strip_db.stats db in
  let duration_s = cfg.feed.Feed.duration in
  let verified, max_abs_error =
    if cfg.verify then begin
      let expected, actual =
        match cfg.rule with
        | Comp_view _ ->
          (Comp_rules.recompute_from_scratch h, Comp_rules.maintained h)
        | Option_view _ ->
          (Option_rules.recompute_from_scratch h, Option_rules.maintained h)
      in
      let err = max_error expected actual in
      (Some (err <= verify_tolerance cfg.rule), err)
    end
    else (None, nan)
  in
  let open Strip_txn in
  (* Makespan: the simulated instant the last dispatched task finished
     (the clock ends on its completion event).  Recompute throughput over
     the makespan is the quantity the server sweep improves: an overloaded
     single server drains its backlog long after the feed ends, and extra
     servers shrink that tail. *)
  let makespan_s = Clock.now (Strip_db.clock db) in
  let n_recompute = Strip_sim.Stats.n_recompute stats in
  {
    label = label_of cfg.rule;
    delay = cfg.delay;
    duration_s;
    servers = cfg.servers;
    makespan_s;
    recompute_throughput_per_s =
      (if makespan_s <= 0.0 then 0.0
       else float_of_int n_recompute /. makespan_s);
    per_server_utilization =
      Strip_sim.Stats.per_server_utilization stats
        ~duration_s:(Float.max duration_s makespan_s);
    n_lock_waits = Strip_sim.Stats.n_lock_waits stats;
    n_lock_timeouts = Strip_sim.Stats.n_lock_timeouts stats;
    lock_wait_s =
      (if Strip_sim.Stats.n_lock_waits stats = 0 then None
       else
         Some
           (Strip_obs.Histogram.summary
              (Strip_sim.Stats.lock_wait_hist stats)));
    utilization = Strip_sim.Stats.utilization stats ~duration_s;
    n_updates = Strip_sim.Stats.tasks_run stats Task.Update;
    n_recompute = Strip_sim.Stats.n_recompute stats;
    mean_recompute_us = Strip_sim.Stats.mean_service_us stats Task.Recompute;
    p50_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 50.0;
    p90_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 90.0;
    p99_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 99.0;
    max_recompute_us = Strip_sim.Stats.max_service_us stats Task.Recompute;
    busy_update_s = Strip_sim.Stats.busy_us_of stats Task.Update *. 1e-6;
    busy_recompute_s = Strip_sim.Stats.busy_us_of stats Task.Recompute *. 1e-6;
    n_firings = Rule_manager.n_rule_firings (Strip_db.rules db);
    n_merges = Rule_manager.n_merges (Strip_db.rules db);
    context_switches = Strip_sim.Stats.context_switches stats;
    expected_fanout;
    verified;
    max_abs_error;
    n_injected =
      (match Strip_db.fault_injector db with
      | Some fi -> Fault.total_injected fi
      | None -> 0);
    n_aborts = Strip_sim.Stats.n_aborts stats;
    n_retries = Strip_sim.Stats.n_retries stats;
    n_sheds = Strip_sim.Stats.n_sheds stats;
    n_dead_letters = Strip_sim.Stats.n_dead_letters stats;
    mean_recovery_s = Strip_sim.Stats.mean_recovery_s stats;
    staleness =
      List.map
        (fun table ->
          (table, Strip_obs.Histogram.summary (Strip_sim.Stats.staleness_hist stats table)))
        (Strip_sim.Stats.staleness_tables stats);
    registry = Strip_obs.Metrics.snapshot (Strip_db.metrics db);
  }
