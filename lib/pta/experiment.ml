open Strip_relational
open Strip_core
open Strip_market

type rule_choice =
  | Comp_view of Comp_rules.variant
  | Option_view of Option_rules.variant

type recovery_cfg = {
  checkpoint_every : float option;
      (* None = only the initial post-population checkpoint *)
  crash_at : float option;
  max_crashes : int;
}

let default_recovery =
  { checkpoint_every = Some 5.0; crash_at = None; max_crashes = 8 }

type repl_cfg = {
  replicas : int;
  read_policy : Strip_repl.Cluster.read_policy;
  read_rate : float;
  read_cost_s : float;
  link : Strip_repl.Link.config;
  ship_every : float;
  partition_detect_s : float;
}

let default_repl =
  {
    replicas = 1;
    read_policy = Strip_repl.Cluster.Any;
    read_rate = 0.0;
    read_cost_s = 0.0;
    link = Strip_repl.Link.default_config;
    ship_every = 0.05;
    partition_detect_s = 0.1;
  }

type storage_cfg = {
  scrub_every : float option;
      (* None = no background scrubber: at-rest faults are only found if
         something reads them (the planted-bug configuration) *)
  retain : int;  (* checkpoint slots kept for CRC-failure fallback *)
}

let default_storage = { scrub_every = Some 0.5; retain = 2 }

type shard_cfg = {
  shards : int;
  shard_link : Strip_repl.Link.config;
  shard_ship_every : float;
  shard_resend_after : float;
  shard_crash_at : (int * float) option;  (* (shard id, simulated time) *)
  shard_checkpoint_every : float option;
}

let default_shard ~shards =
  {
    shards;
    shard_link = Strip_repl.Link.default_config;
    shard_ship_every = 0.05;
    shard_resend_after = 0.25;
    shard_crash_at = None;
    shard_checkpoint_every = Some 5.0;
  }

(* One deterministic fault in a chaos schedule, in absolute simulated
   time.  Crash and partition events are armed as scheduled engine tasks
   (re-armed on whatever instance is live after each escape); drop
   bursts are installed on the shipping links at cluster creation;
   checkpoint events force an extra checkpoint to race the surrounding
   faults. *)
type chaos_event =
  | Crash_at of float
  | Partition_at of { at : float; heal_after_s : float }
  | Drop_burst of { at : float; until_s : float; rate : float }
  | Checkpoint_at of float
  | Bitrot_at of { at : float; target : [ `Wal | `Checkpoint ]; frac : float }
  | Fsync_lie_at of float
  | Disk_full_at of { at : float; free_bytes : int; heal_after_s : float }

let chaos_event_time = function
  | Crash_at at | Checkpoint_at at | Fsync_lie_at at -> at
  | Partition_at { at; _ }
  | Drop_burst { at; _ }
  | Bitrot_at { at; _ }
  | Disk_full_at { at; _ } ->
    at

let is_storage_event = function
  | Bitrot_at _ | Fsync_lie_at _ | Disk_full_at _ -> true
  | Crash_at _ | Partition_at _ | Drop_burst _ | Checkpoint_at _ -> false

type config = {
  rule : rule_choice;
  delay : float;
  feed : Feed.config;
  sizes : Pta_tables.sizes;
  cost : Strip_sim.Cost_model.t;
  verify : bool;
  servers : int;
  lock_timeout_s : float;
  fault : Strip_txn.Fault.config option;
  retry : Strip_sim.Engine.retry option;
  overload : Strip_sim.Engine.overload option;
  trace : Strip_obs.Trace.t option;
  slo : Strip_obs.Slo.t option;
  provenance : Strip_obs.Provenance.t option;
  recovery : recovery_cfg option;
  repl : repl_cfg option;
  storage : storage_cfg option;
  chaos : chaos_event list;
  shard : shard_cfg option;
}

let default_config rule ~delay =
  {
    rule;
    delay;
    feed = Feed.default_config;
    sizes = Pta_tables.default_sizes;
    cost = Strip_sim.Cost_model.default;
    verify = true;
    servers = 1;
    lock_timeout_s = 5.0;
    fault = None;
    retry = None;
    overload = None;
    trace = None;
    slo = None;
    provenance = None;
    recovery = None;
    repl = None;
    storage = None;
    chaos = [];
    shard = None;
  }

let with_faults ?seed ?(retry = Strip_sim.Engine.default_retry) ~abort_rate cfg =
  { cfg with fault = Some (Strip_txn.Fault.abort_only ?seed abort_rate); retry = Some retry }

let quick cfg f =
  {
    cfg with
    feed = Feed.scaled cfg.feed f;
    sizes = Pta_tables.scaled_sizes cfg.sizes f;
  }

type recovery_metrics = {
  n_crashes : int;
  n_checkpoints : int;
  checkpoint_bytes : int;
  wal_appends : int;
  wal_fsyncs : int;
  wal_appended_bytes : int;
  wal_overhead_s : float;
  checkpoint_overhead_s : float;
  redo_commits : int;
  redo_ops : int;
  requeued : int;
  restored_rows : int;
  total_recovery_s : float;
  audit_clean : bool;
  audit_divergences : int;
  repairs : int;
}

type replica_metrics = {
  r_id : int;
  r_applied_lsn : int;
  r_segments : int;
  r_duplicates : int;
  r_reordered : int;
  r_bootstraps : int;
  r_reads : int;
  r_lag : Strip_obs.Histogram.summary option;
}

type repl_metrics = {
  n_replicas : int;
  read_policy : string;
  read_rate : float;
  n_reads : int;
  reads_primary : int;
  reads_replica : int;
  read_latency : Strip_obs.Histogram.summary option;
  read_throughput_per_s : float;
  n_failovers : int;
  promotion_lost_bytes : int;
  epoch : int;
  epochs : (int * int) list;
  promotions : (int * int * int) list;
  final_lsn : int;
  fenced_bytes : int;
  n_partitions : int;
  partition_drops : int;
  fenced_messages : int;
  segments_sent : int;
  segments_dropped : int;
  bytes_shipped : int;
  cluster_lag : Strip_obs.Histogram.summary option;
      (* replication lag merged across every replica's histogram — a
         cluster-level percentile row instead of primary-only *)
  cluster_lock_wait : Strip_obs.Histogram.summary option;
      (* lock waits merged across all primary incarnations (epochs) *)
  per_replica : replica_metrics list;
}

(* End-of-run storage-fault accounting: the media-fault ledger unioned
   over every durable store the run touched (the live one plus any
   abandoned at failover), scrubber work, salvage outcomes, and the
   final cleanliness verdict the chaos invariants check. *)
type storage_metrics = {
  injected_bitrot_wal : int;
  injected_bitrot_cp : int;
  injected_fsync_lie : int;
  faults_detected : int;
  faults_repaired : int;
  faults_quarantined : int;
  faults_expunged : int;
  faults_outstanding : int;
  scrub_passes : int;
  scrub_bytes : int;
  wal_corruptions : int;
  cp_corruptions : int;
  repaired_replica : int;
  repaired_checkpoint : int;
  scrub_salvaged_bytes : int;
  scrub_expunged_bytes : int;
  cp_fallbacks : int;
  salvaged_ranges : int;
  salvaged_bytes : int;
  quarantined_bytes : int;
  orphan_merges : int;
  disk_fulls : int;
  lied_bytes : int;
  ship_verify_skips : int;
  salvage_s : float;  (* modeled seconds spent on detection + repair *)
  final_clean : bool;
      (* end of run: WAL frame chain verifies and every retained
         checkpoint slot passes its CRC *)
}

(* One shard primary's slice of a sharded run. *)
type shard_row = {
  sh_id : int;
  sh_updates : int;
  sh_recomputes : int;
  sh_firings : int;
  sh_partials_out : int;  (* weighted partials this shard emitted *)
  sh_offered : int;  (* arrivals offered to this shard's queue *)
  sh_duplicates : int;  (* resends the (src, seq) dedup collapsed *)
  sh_merged : int;  (* arrivals folded into a pending entry *)
  sh_applied : int;  (* merged entries applied and released *)
  sh_crashes : int;
  sh_final_lsn : int;
}

type shard_metrics = {
  n_shards : int;
  sh_rows : shard_row list;
  sh_msgs : int;  (* shard-to-shard messages sent (partials + acks) *)
  sh_bytes : int;
  sh_partials : int;  (* first ships *)
  sh_acks : int;
  sh_reships : int;  (* resends past the ack deadline *)
  sh_recovery_s : float;  (* downtime summed over shard restarts *)
  cross_checks : int;  (* composites compared by the cross-shard audit *)
  cross_divergences : int;  (* comparisons beyond tolerance *)
}

type metrics = {
  label : string;
  delay : float;
  duration_s : float;
  servers : int;
  makespan_s : float;
  recompute_throughput_per_s : float;
  per_server_utilization : float list;
  n_lock_waits : int;
  n_lock_timeouts : int;
  lock_wait_s : Strip_obs.Histogram.summary option;
  utilization : float;
  n_updates : int;
  n_recompute : int;
  mean_recompute_us : float;
  p50_recompute_us : float;
  p90_recompute_us : float;
  p99_recompute_us : float;
  max_recompute_us : float;
  busy_update_s : float;
  busy_recompute_s : float;
  n_firings : int;
  n_merges : int;
  context_switches : int;
  expected_fanout : float;
  verified : bool option;
  max_abs_error : float;
  n_injected : int;
  n_aborts : int;
  n_retries : int;
  n_sheds : int;
  n_dead_letters : int;
  mean_recovery_s : float;
  staleness : (string * Strip_obs.Histogram.summary) list;
  registry : Strip_obs.Metrics.row list;
  recovery : recovery_metrics option;
  repl : repl_metrics option;
  storage : storage_metrics option;
  shard : shard_metrics option;
      (* present iff the run went through the sharded write path *)
  slo : Strip_obs.Slo.view_report list;
      (* one report per objective; empty when no SLO monitor is attached *)
  trace_spans : (string * int * int) list;
      (* (node, events buffered, events dropped) per traced node; empty
         when tracing is off *)
  cluster_traces : (string * Strip_obs.Trace.t) list;
      (* per-node span buffers for a merged cluster trace export, primary
         first; empty unless tracing a replicated run *)
}

let label_of = function
  | Comp_view v -> "comp_prices/" ^ Comp_rules.variant_name v
  | Option_view v -> "option_prices/" ^ Option_rules.variant_name v

let verify_tolerance = function
  | Comp_view _ -> 1e-6
  | Option_view _ -> 1e-9

(* Cluster-level histogram rows merge per-node distributions into one
   summary.  First wired for a single primary lineage (the live instance
   plus its crashed epochs); the sharded driver folds N shard primaries'
   histograms through this same helper, so single-shard output is
   unchanged. *)
let merged_summary hs =
  let m = Strip_obs.Histogram.merge hs in
  if Strip_obs.Histogram.count m = 0 then None
  else Some (Strip_obs.Histogram.summary m)

(* Compare two sorted (name, value) association lists. *)
let max_error expected actual =
  let tbl = Hashtbl.create (List.length expected * 2) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) expected;
  List.fold_left
    (fun worst (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some e -> Float.max worst (Float.abs (v -. e))
      | None -> infinity)
    (if List.length expected = List.length actual then 0.0 else infinity)
    actual

let install_rules cfg db h =
  match cfg.rule with
  | Comp_view v -> Comp_rules.install db h v ~delay:cfg.delay
  | Option_view v -> Option_rules.install db h v ~delay:cfg.delay

let mk_db ?now ?durable ?fault (cfg : config) =
  (* Storage-fault runs arm every durable store a primary incarnation
     uses — including a promoted replica's copy — before the instance
     registers its metrics, so the media probes exist on every registry
     and ship-time verification covers every term. *)
  (match (cfg.storage, durable) with
  | Some _, Some d -> Strip_txn.Durable.arm_media d
  | _ -> ());
  (* The trace buffer, SLO monitor and provenance store are caller-owned
     and shared across every instance a crashy run burns through, so one
     causal story spans restarts and failovers. *)
  Strip_db.create ~cost:cfg.cost ?now ?durable ?fault ?retry:cfg.retry
    ?overload:cfg.overload ~servers:cfg.servers
    ~lock_timeout_s:cfg.lock_timeout_s ?trace:cfg.trace ?slo:cfg.slo
    ?provenance:cfg.provenance ()

(* Counters accumulated from the instances a crashy run burns through —
   the final instance's {!Strip_sim.Stats} only covers the last epoch.
   (Histograms and percentiles are not mergeable and stay last-epoch.) *)
type acc = {
  mutable a_updates : int;
  mutable a_recompute : int;
  mutable a_firings : int;
  mutable a_merges : int;
  mutable a_injected : int;
  mutable a_aborts : int;
  mutable a_retries : int;
  mutable a_sheds : int;
  mutable a_dead : int;
  mutable a_ctxsw : int;
  mutable a_lock_waits : int;
  mutable a_lock_timeouts : int;
  mutable a_busy_update_us : float;
  mutable a_busy_recompute_us : float;
  a_lock_h : Strip_obs.Histogram.t;
      (* lock waits of dead instances, merged for the cluster-wide row *)
}

let zero_acc () =
  {
    a_updates = 0;
    a_recompute = 0;
    a_firings = 0;
    a_merges = 0;
    a_injected = 0;
    a_aborts = 0;
    a_retries = 0;
    a_sheds = 0;
    a_dead = 0;
    a_ctxsw = 0;
    a_lock_waits = 0;
    a_lock_timeouts = 0;
    a_busy_update_us = 0.0;
    a_busy_recompute_us = 0.0;
    a_lock_h = Strip_obs.Histogram.create ();
  }

let accumulate acc db =
  let open Strip_txn in
  let st = Strip_db.stats db in
  let mgr = Strip_db.rules db in
  acc.a_updates <- acc.a_updates + Strip_sim.Stats.tasks_run st Task.Update;
  acc.a_recompute <- acc.a_recompute + Strip_sim.Stats.n_recompute st;
  acc.a_firings <- acc.a_firings + Rule_manager.n_rule_firings mgr;
  acc.a_merges <- acc.a_merges + Rule_manager.n_merges mgr;
  acc.a_injected <-
    (acc.a_injected
    +
    match Strip_db.fault_injector db with
    | Some fi -> Fault.total_injected fi
    | None -> 0);
  acc.a_aborts <- acc.a_aborts + Strip_sim.Stats.n_aborts st;
  acc.a_retries <- acc.a_retries + Strip_sim.Stats.n_retries st;
  acc.a_sheds <- acc.a_sheds + Strip_sim.Stats.n_sheds st;
  acc.a_dead <- acc.a_dead + Strip_sim.Stats.n_dead_letters st;
  acc.a_ctxsw <- acc.a_ctxsw + Strip_sim.Stats.context_switches st;
  acc.a_lock_waits <- acc.a_lock_waits + Strip_sim.Stats.n_lock_waits st;
  acc.a_lock_timeouts <-
    acc.a_lock_timeouts + Strip_sim.Stats.n_lock_timeouts st;
  acc.a_busy_update_us <-
    acc.a_busy_update_us +. Strip_sim.Stats.busy_us_of st Task.Update;
  acc.a_busy_recompute_us <-
    acc.a_busy_recompute_us +. Strip_sim.Stats.busy_us_of st Task.Recompute;
  Strip_obs.Histogram.merge_into ~dst:acc.a_lock_h
    (Strip_sim.Stats.lock_wait_hist st)

(* Running totals of recovery work across all crashes of one run. *)
type rec_totals = {
  mutable t_crashes : int;
  mutable t_partitions : int;
  mutable t_promotions : (int * int * int) list;
      (* (epoch, promoted id, promoted lsn), newest first *)
  mutable t_redo_commits : int;
  mutable t_redo_ops : int;
  mutable t_requeued : int;
  mutable t_restored_rows : int;
  mutable t_recovery_s : float;
  mutable t_cp_fallbacks : int;
  mutable t_salvaged_ranges : int;
  mutable t_salvaged_bytes : int;
  mutable t_quarantined_bytes : int;
  mutable t_orphan_merges : int;
}

let add_salvage_totals totals (rs : Recovery.stats) =
  totals.t_cp_fallbacks <- totals.t_cp_fallbacks + rs.Recovery.cp_fallbacks;
  totals.t_salvaged_ranges <-
    totals.t_salvaged_ranges + rs.Recovery.salvaged_ranges;
  totals.t_salvaged_bytes <- totals.t_salvaged_bytes + rs.Recovery.salvaged_bytes;
  totals.t_quarantined_bytes <-
    totals.t_quarantined_bytes + rs.Recovery.quarantined_bytes;
  totals.t_orphan_merges <- totals.t_orphan_merges + rs.Recovery.orphan_merges

(* (Re-)arm the chaos events still strictly in the future on the live
   instance — called at the start of the drive and after every crash or
   failover, so a schedule keeps firing across instance boundaries
   (events inside an outage window are consumed by it). *)
let arm_chaos cfg db ~now =
  List.iter
    (fun ev ->
      match ev with
      | Crash_at at -> if at > now then Strip_db.schedule_crash db ~at
      | Partition_at { at; heal_after_s } ->
        if at > now then Strip_db.schedule_partition db ~at ~heal_after_s
      | Checkpoint_at at ->
        if at > now then
          Strip_db.schedule_checkpoints db ~every:at ~start:at ~until:at ()
      | Bitrot_at { at; target; frac } ->
        if at > now then Strip_db.schedule_bitrot db ~at ~target ~frac
      | Fsync_lie_at at -> if at > now then Strip_db.schedule_fsync_lie db ~at
      | Disk_full_at { at; free_bytes; heal_after_s } ->
        (* The capacity clamp lives on the WAL, which survives restarts:
           a post-crash instance re-arms only the heal still due, so a
           crash inside the full window cannot leave the disk full
           forever. *)
        if at > now then begin
          Strip_db.schedule_disk_full db ~at ~free_bytes;
          Strip_db.schedule_disk_heal db ~at:(at +. heal_after_s)
        end
        else if at +. heal_after_s > now then
          Strip_db.schedule_disk_heal db ~at:(at +. heal_after_s)
      | Drop_burst _ -> ())
    cfg.chaos

(* Interleave policy-routed read-only queries with the engine: run to the
   next read's release time, serve it at that instant against whichever
   node the router picks, repeat.  With no cluster this is exactly
   [Strip_db.run] — the replication-free path is untouched. *)
let run_with_reads ~cluster db =
  match cluster with
  | None -> Strip_db.run db
  | Some c ->
    let rec loop () =
      match Strip_repl.Cluster.next_read_time c with
      | Some tr ->
        Strip_db.run ~until:tr db;
        Strip_repl.Cluster.serve_read c ~now:tr;
        loop ()
      | None -> Strip_db.run db
    in
    loop ()

(* Crash-restart loop: run the engine until it drains; on every
   {!Strip_txn.Fault.Crashed} escape, condemn the volatile state, bring up
   a fresh instance against the shared durable store, recover, charge the
   modeled recovery latency as downtime, resubmit the quotes the crash did
   not consume, and keep going.  With replicas attached, the crash is
   instead resolved by failover: the cluster promotes the replica with the
   highest applied LSN and recovery replays {e its} durable copy.  After
   [max_crashes] the crash {e rate} is zeroed (a scheduled [crash_at]
   fires once by construction) so a hostile seed cannot loop forever. *)
let drive cfg rcfg ~durable ~quotes ~acc ~totals ~mk_cluster ~arm_scrub
    ~abandoned db0 h0 =
  let open Strip_txn in
  Strip_db.checkpoint db0;
  (* Bound the checkpoint schedule by the feed: an unbounded schedule would
     keep the event queue non-empty forever and the engine would never
     drain.  The tail of the run past the last periodic checkpoint is
     covered by the WAL. *)
  let cp_until = cfg.feed.Feed.duration in
  (* The cluster bootstraps its replicas from the checkpoint just taken. *)
  let cluster = mk_cluster db0 in
  (match cluster with
  | Some c ->
    Strip_repl.Cluster.register_metrics c (Strip_db.metrics db0);
    Strip_repl.Cluster.schedule_shipping c ~until:cp_until
  | None -> ());
  (match rcfg.checkpoint_every with
  | Some every -> Strip_db.schedule_checkpoints db0 ~every ~until:cp_until ()
  | None -> ());
  (match rcfg.crash_at with
  | Some at -> Strip_db.schedule_crash db0 ~at
  | None -> ());
  arm_chaos cfg db0 ~now:(Strip_db.now db0);
  arm_scrub db0 cluster;
  let db = ref db0 and h = ref h0 in
  let finished = ref false in
  (* Crashes and partitions share one budget: past [max_crashes] total
     escapes, both rates are zeroed so a hostile seed cannot prevent
     convergence (scheduled events fire once by construction). *)
  let budget_fault () =
    if totals.t_crashes + totals.t_partitions >= rcfg.max_crashes then
      Option.map
        (fun (c : Fault.config) ->
          {
            c with
            Fault.rates =
              { c.Fault.rates with Fault.crash = 0.0; partition = 0.0 };
          })
        cfg.fault
    else cfg.fault
  in
  while not !finished do
    match run_with_reads ~cluster !db with
    | () -> finished := true
    | exception Fault.Crashed _ ->
      let t_crash = Strip_db.now !db in
      accumulate acc !db;
      Strip_db.crash !db;
      let before = Meter.snapshot () in
      let next_fault () =
        totals.t_crashes <- totals.t_crashes + 1;
        budget_fault ()
      in
      (* A rate-based crash can also hit mid-recovery (the post-recovery
         checkpoint is a crash site); retry on yet another fresh instance —
         the durable state is untouched until that checkpoint installs. *)
      let rec restart () =
        let fault = next_fault () in
        let ndb = mk_db ~now:t_crash ~durable ?fault cfg in
        let nh = ref None in
        match
          Recovery.recover ndb ~reinstall:(fun () ->
              let hh = Pta_tables.reattach ndb in
              nh := Some hh;
              install_rules cfg ndb hh)
        with
        | rs -> (ndb, Option.get !nh, rs)
        | exception Fault.Crashed _ ->
          Strip_db.crash ndb;
          restart ()
      in
      (* Failover: promotion recovers from the elected replica's durable
         copy (bootstrap image + shipped tail) instead of the dead
         primary's store. *)
      let rec failover c =
        let fault = next_fault () in
        let nh = ref None in
        match
          Strip_repl.Cluster.promote c ~now:t_crash
            ~mk_db:(fun dur -> mk_db ~now:t_crash ~durable:dur ?fault cfg)
            ~reinstall:(fun ndb ->
              let hh = Pta_tables.reattach ndb in
              nh := Some hh;
              install_rules cfg ndb hh)
        with
        | _ndb, rs, info ->
          totals.t_promotions <-
            ( info.Strip_repl.Cluster.epoch,
              info.Strip_repl.Cluster.promoted,
              info.Strip_repl.Cluster.promoted_lsn )
            :: totals.t_promotions;
          (Strip_repl.Cluster.primary c, Option.get !nh, rs)
        | exception Fault.Crashed _ -> failover c
      in
      let failing_over =
        match cluster with
        | Some c when Strip_repl.Cluster.n_replicas c > 0 -> Some c
        | _ -> None
      in
      (* Failing over abandons the dead primary's durable store: nothing
         in it can influence a served read anymore, but its media-fault
         ledger still counts toward the run's silent-corruption audit. *)
      (match (failing_over, Strip_db.durable !db) with
      | Some _, Some od when not (List.memq od !abandoned) ->
        Durable.note_abandoned od;
        abandoned := od :: !abandoned
      | _ -> ());
      let ndb, nh, rs =
        match failing_over with Some c -> failover c | None -> restart ()
      in
      let recovery_work = Meter.diff before (Meter.snapshot ()) in
      let rec_s = 1e-6 *. Strip_sim.Cost_model.charge cfg.cost recovery_work in
      Clock.advance_by (Strip_db.clock ndb) rec_s;
      Strip_sim.Stats.record_crash (Strip_db.stats ndb) ~recovery_s:rec_s;
      (match failing_over with
      | Some c ->
        (* Re-seed the surviving nodes (and the demoted old primary's
           slot) from the promoted node's fresh checkpoint, after the
           downtime accounting — resynchronization proceeds in parallel
           with resumed service. *)
        Strip_repl.Cluster.resume c
          ~now:(Clock.now (Strip_db.clock ndb))
          ~ship_until:cp_until;
        Strip_repl.Cluster.register_metrics c (Strip_db.metrics ndb)
      | None -> ());
      totals.t_redo_commits <- totals.t_redo_commits + rs.Recovery.redo_commits;
      totals.t_redo_ops <- totals.t_redo_ops + rs.Recovery.redo_ops;
      totals.t_requeued <- totals.t_requeued + rs.Recovery.requeued;
      totals.t_restored_rows <-
        totals.t_restored_rows + rs.Recovery.restored_rows;
      totals.t_recovery_s <- totals.t_recovery_s +. rec_s;
      add_salvage_totals totals rs;
      (* Quotes at or before the crash are consumed or lost input; the rest
         of the feed resumes against the recovered instance.  Re-running a
         quote would be harmless (prices are absolute), so the conservative
         cut is exact-time exclusive. *)
      let rest =
        Array.of_seq
          (Seq.filter
             (fun (q : Feed.quote) -> q.Feed.time > t_crash)
             (Array.to_seq quotes))
      in
      ignore
        (Strip_ingest.Import.replay ndb
           {
             Strip_ingest.Import.stocks = nh.Pta_tables.stocks;
             by_symbol = nh.Pta_tables.stocks_by_symbol;
           }
           rest);
      (match rcfg.checkpoint_every with
      | Some every -> Strip_db.schedule_checkpoints ndb ~every ~until:cp_until ()
      | None -> ());
      arm_chaos cfg ndb ~now:(Strip_db.now ndb);
      arm_scrub ndb cluster;
      db := ndb;
      h := nh
    | exception Fault.Partitioned { heal_after_s; _ } -> (
      let t_part = Strip_db.now !db in
      let detect_s =
        match cfg.repl with Some r -> r.partition_detect_s | None -> 0.1
      in
      match cluster with
      | Some c
        when Strip_repl.Cluster.n_replicas c > 0 && heal_after_s > detect_s ->
        let module C = Strip_repl.Cluster in
        let heal_at = t_part +. heal_after_s in
        let detect_at = t_part +. detect_s in
        totals.t_partitions <- totals.t_partitions + 1;
        C.begin_partition c ~now:t_part ~heal_at;
        (* The isolated primary is alive, not dead: it keeps committing
           and its surviving shipping chain keeps sending in the old
           term, but every send dies on the epoch-tagged partition
           windows.  A nested crash fells it for good; a nested
           partition of an already-cut node changes nothing. *)
        let old_db = !db in
        let old_alive = ref true in
        let rec run_doomed until =
          match Strip_db.run ~until old_db with
          | () -> ()
          | exception Fault.Crashed _ -> old_alive := false
          | exception Fault.Partitioned _ -> run_doomed until
        in
        run_doomed detect_at;
        (* Detection timeout expired: the majority side elects a new
           primary over the partition.  Mid-recovery crashes of the
           candidate retry the election, spending crash budget. *)
        let before = Meter.snapshot () in
        let attempt = ref 0 in
        let rec failover_isolated () =
          if !attempt > 0 then totals.t_crashes <- totals.t_crashes + 1;
          incr attempt;
          let fault = budget_fault () in
          let nh = ref None in
          match
            C.promote_isolated c ~now:detect_at
              ~mk_db:(fun dur -> mk_db ~now:detect_at ~durable:dur ?fault cfg)
              ~reinstall:(fun ndb ->
                let hh = Pta_tables.reattach ndb in
                nh := Some hh;
                install_rules cfg ndb hh)
          with
          | _ndb, rs, info -> (C.primary c, Option.get !nh, rs, info)
          | exception Fault.Crashed _ -> failover_isolated ()
        in
        let ndb, nh, rs, info = failover_isolated () in
        totals.t_promotions <-
          (info.C.epoch, info.C.promoted, info.C.promoted_lsn)
          :: totals.t_promotions;
        let recovery_work = Meter.diff before (Meter.snapshot ()) in
        let rec_s =
          1e-6 *. Strip_sim.Cost_model.charge cfg.cost recovery_work
        in
        Clock.advance_by (Strip_db.clock ndb) rec_s;
        totals.t_redo_commits <-
          totals.t_redo_commits + rs.Recovery.redo_commits;
        totals.t_redo_ops <- totals.t_redo_ops + rs.Recovery.redo_ops;
        totals.t_requeued <- totals.t_requeued + rs.Recovery.requeued;
        totals.t_restored_rows <-
          totals.t_restored_rows + rs.Recovery.restored_rows;
        totals.t_recovery_s <- totals.t_recovery_s +. rec_s;
        add_salvage_totals totals rs;
        (* The new term opens immediately: shipping and reads resume on
           the promoted primary while the deposed one rides out the
           partition on the other side. *)
        C.resume c ~now:(Clock.now (Strip_db.clock ndb)) ~ship_until:cp_until;
        C.register_metrics c (Strip_db.metrics ndb);
        (* Split brain, contained: run the old primary to the heal point
           so it accumulates a divergent tail nobody will ever see, then
           fence it — it discards that tail and stands by to rejoin as a
           replica at the next re-seed. *)
        if !old_alive then run_doomed heal_at;
        accumulate acc old_db;
        Strip_db.crash old_db;
        ignore (C.heal c ~now:heal_at);
        (match Strip_db.durable old_db with
        | Some od when not (List.memq od !abandoned) ->
          Durable.note_abandoned od;
          abandoned := od :: !abandoned
        | _ -> ());
        (* Quotes after the cut belong to the new timeline; the doomed
           instance's work on them was fenced away with its tail. *)
        let rest =
          Array.of_seq
            (Seq.filter
               (fun (q : Feed.quote) -> q.Feed.time > t_part)
               (Array.to_seq quotes))
        in
        ignore
          (Strip_ingest.Import.replay ndb
             {
               Strip_ingest.Import.stocks = nh.Pta_tables.stocks;
               by_symbol = nh.Pta_tables.stocks_by_symbol;
             }
             rest);
        (match rcfg.checkpoint_every with
        | Some every ->
          Strip_db.schedule_checkpoints ndb ~every ~until:cp_until ()
        | None -> ());
        arm_chaos cfg ndb ~now:(Strip_db.now ndb);
        arm_scrub ndb cluster;
        db := ndb;
        h := nh
      | _ ->
        (* No cluster to fail over to, or a blip shorter than the
           detection timeout: the node keeps running (volatile state is
           intact — only the raising task was discarded).  With a
           cluster attached, the blip still drops its sends for the
           window; the shipper re-covers the gap on later ticks. *)
        (match cluster with
        | Some c
          when Strip_repl.Cluster.n_replicas c > 0 && heal_after_s > 0.0 ->
          totals.t_partitions <- totals.t_partitions + 1;
          Strip_repl.Cluster.begin_partition c ~now:t_part
            ~heal_at:(t_part +. heal_after_s)
        | _ -> ()))
  done;
  (!db, !h, cluster)

let run (cfg : config) =
  (* Replication rides on the durability substrate: replicas bootstrap
     from checkpoints and apply shipped WAL bytes, so a replicated run
     without an explicit recovery config gets the default one. *)
  let cfg =
    match (cfg.recovery, cfg.repl) with
    | None, Some r when r.replicas > 0 ->
      { cfg with recovery = Some default_recovery }
    (* A chaos schedule needs the durability layer and the crash-restart
       drive loop to make sense of its events. *)
    | None, _ when cfg.chaos <> [] ->
      { cfg with recovery = Some default_recovery }
    | _ -> cfg
  in
  (* Storage-fault events imply the storage substrate (scrubber +
     retained checkpoint slots), exactly as chaos implies recovery. *)
  let cfg =
    if cfg.storage = None && List.exists is_storage_event cfg.chaos then
      { cfg with storage = Some default_storage }
    else cfg
  in
  let durable =
    Option.map
      (fun _ ->
        let retain =
          match cfg.storage with Some s -> max 1 s.retain | None -> 1
        in
        Strip_txn.Durable.create ~retain ())
      cfg.recovery
  in
  let db = mk_db ?durable ?fault:cfg.fault cfg in
  let h = Pta_tables.populate db ~feed:cfg.feed cfg.sizes in
  let weights = Feed.activity_weights cfg.feed in
  let expected_fanout =
    match cfg.rule with
    | Comp_view _ -> Pta_tables.expected_comps_per_update h ~weights
    | Option_view _ -> Pta_tables.expected_options_per_update h ~weights
  in
  install_rules cfg db h;
  let quotes = Feed.generate cfg.feed in
  let n_submitted =
    Strip_ingest.Import.replay db
      {
        Strip_ingest.Import.stocks = h.Pta_tables.stocks;
        by_symbol = h.Pta_tables.stocks_by_symbol;
      }
      quotes
  in
  ignore n_submitted;
  Meter.reset ();
  Rule_manager.reset_stats (Strip_db.rules db);
  let acc = zero_acc () in
  let totals =
    {
      t_crashes = 0;
      t_partitions = 0;
      t_promotions = [];
      t_redo_commits = 0;
      t_redo_ops = 0;
      t_requeued = 0;
      t_restored_rows = 0;
      t_recovery_s = 0.0;
      t_cp_fallbacks = 0;
      t_salvaged_ranges = 0;
      t_salvaged_bytes = 0;
      t_quarantined_bytes = 0;
      t_orphan_merges = 0;
    }
  in
  let scrub_stats =
    match cfg.storage with Some _ -> Some (Scrub.create ()) | None -> None
  in
  let abandoned : Strip_txn.Durable.t list ref = ref [] in
  let fetch_of cluster =
    Option.map
      (fun c ~from_lsn ~len -> Strip_repl.Cluster.fetch_clean c ~from_lsn ~len)
      cluster
  in
  (* (Re-)schedule the background scrubber on the live instance — like
     checkpoints, the chain dies with its engine at a crash and must be
     re-armed on every incarnation. *)
  let arm_scrub db cluster =
    match (cfg.storage, scrub_stats) with
    | Some { scrub_every = Some every; _ }, Some st
      when Strip_db.durable db <> None ->
      Scrub.schedule st db ~every ~until:cfg.feed.Feed.duration
        ?fetch:(fetch_of cluster) ()
    | _ -> ()
  in
  (* Per-replica span buffers are owned here rather than by the cluster so
     they survive failover re-seeding; they merge with the primary buffer
     into one cluster-wide trace export. *)
  let replica_traces =
    match (cfg.trace, cfg.repl) with
    | Some _, Some r when r.replicas > 0 ->
      List.init r.replicas (fun i ->
          (Printf.sprintf "replica-%d" i, Strip_obs.Trace.create ()))
    | _ -> []
  in
  let mk_cluster db =
    match cfg.repl with
    | None -> None
    | Some r ->
      let read_table, read_key_col =
        match cfg.rule with
        | Comp_view _ -> ("comp_prices", "comp")
        | Option_view _ -> ("option_prices", "option_symbol")
      in
      let read_keys =
        Strip_db.query_rows db
          (Printf.sprintf "select %s from %s" read_key_col read_table)
        |> List.map (fun row -> Value.to_string row.(0))
        |> Array.of_list
      in
      let ccfg =
        {
          Strip_repl.Cluster.n_replicas = r.replicas;
          link = r.link;
          ship_every = r.ship_every;
          read_policy = r.read_policy;
          read_rate = r.read_rate;
          read_cost_s = r.read_cost_s;
          seed = 11;
        }
      in
      let c =
        Strip_repl.Cluster.create
          ~trace_for:(fun i -> Option.map snd (List.nth_opt replica_traces i))
          ccfg ~primary:db ~read_table ~read_key_col ~read_keys
          ~read_until:cfg.feed.Feed.duration
      in
      (* Drop bursts live on the links, which survive failovers. *)
      List.iter
        (function
          | Drop_burst { at; until_s; rate } ->
            for i = 0 to Strip_repl.Cluster.n_replicas c - 1 do
              Strip_repl.Link.add_drop_burst
                (Strip_repl.Cluster.link c i)
                ~from_s:at ~until_s ~rate
            done
          | _ -> ())
        cfg.chaos;
      Some c
  in
  let db, h, cluster =
    match cfg.recovery with
    | None -> (
      (* Only reachable with zero replicas: a read pump with no shipping
         needs no durability layer. *)
      match mk_cluster db with
      | None ->
        Strip_db.run db;
        (db, h, None)
      | Some c ->
        Strip_repl.Cluster.register_metrics c (Strip_db.metrics db);
        run_with_reads ~cluster:(Some c) db;
        (db, h, Some c))
    | Some rcfg ->
      drive cfg rcfg ~durable:(Option.get durable) ~quotes ~acc ~totals
        ~mk_cluster ~arm_scrub ~abandoned db h
  in
  (* One last scrub pass before the administrative catch-up, so a fault
     injected after the final periodic tick is still detected and
     repaired before the run is judged (and before replicas converge on
     the final log). *)
  (match (cfg.storage, scrub_stats) with
  | Some { scrub_every = Some _; _ }, Some st when Strip_db.durable db <> None
    ->
    Scrub.scrub ?fetch:(fetch_of cluster) st db
  | _ -> ());
  (* Converge the replicas administratively so end-of-run lag/LSN metrics
     (and the tests) compare equals against the final primary. *)
  (match cluster with
  | Some c ->
    Strip_repl.Cluster.final_sync c
      ~now:(Strip_txn.Clock.now (Strip_db.clock db))
  | None -> ());
  (* Consistency audit (recovery runs only): the recovered queue has
     drained, so the views must now equal their recomputation; divergences
     become repair transactions and the audit reruns. *)
  let recovery_audit =
    match cfg.recovery with
    | None -> None
    | Some _ ->
      (* Incrementally-maintained composites accumulate float increments,
         so audit with the same tolerance the end-to-end verification
         uses; anything past it is a real divergence worth repairing. *)
      (* Audit only the view this run maintains: the other registered view
         has no installed rule, so it is stale by design. *)
      let eps = verify_tolerance cfg.rule in
      let views =
        match cfg.rule with
        | Comp_view _ -> [ "comp_prices" ]
        | Option_view _ -> [ "option_prices" ]
      in
      let first = Auditor.audit ~eps ~views db in
      let repairs =
        if Auditor.clean first then 0
        else begin
          let n = Auditor.enqueue_repairs db first in
          Strip_db.run db;
          n
        end
      in
      let final = if repairs = 0 then first else Auditor.audit ~eps ~views db in
      Some (first, final, repairs)
  in
  (* Close any violation window still open at end of run (audit repairs
     above were the last possible staleness samples). *)
  Option.iter Strip_obs.Slo.finish cfg.slo;
  let stats = Strip_db.stats db in
  let duration_s = cfg.feed.Feed.duration in
  let verified, max_abs_error =
    if cfg.verify then begin
      let expected, actual =
        match cfg.rule with
        | Comp_view _ ->
          (Comp_rules.recompute_from_scratch h, Comp_rules.maintained h)
        | Option_view _ ->
          (Option_rules.recompute_from_scratch h, Option_rules.maintained h)
      in
      let err = max_error expected actual in
      (Some (err <= verify_tolerance cfg.rule), err)
    end
    else (None, nan)
  in
  let open Strip_txn in
  (* Makespan: the simulated instant the last dispatched task finished
     (the clock ends on its completion event).  Recompute throughput over
     the makespan is the quantity the server sweep improves: an overloaded
     single server drains its backlog long after the feed ends, and extra
     servers shrink that tail. *)
  let makespan_s = Clock.now (Strip_db.clock db) in
  let n_recompute = acc.a_recompute + Strip_sim.Stats.n_recompute stats in
  let recovery =
    (* After a failover the live durable store is the promoted replica's
       copy, not the one the run started with. *)
    match (cfg.recovery, Strip_db.durable db, recovery_audit) with
    | Some _, Some d, Some (_first, final, repairs) ->
      let w = Durable.wal d in
      Some
        {
          n_crashes = totals.t_crashes;
          n_checkpoints = Durable.n_checkpoints d;
          checkpoint_bytes = Durable.last_checkpoint_bytes d;
          wal_appends = Wal.n_appends w;
          wal_fsyncs = Wal.n_fsyncs w;
          wal_appended_bytes = Wal.appended_bytes w;
          wal_overhead_s =
            1e-6
            *. Strip_sim.Cost_model.charge cfg.cost
                 [
                   ("wal_append", Meter.get "wal_append");
                   ("wal_fsync", Meter.get "wal_fsync");
                 ];
          checkpoint_overhead_s =
            1e-6
            *. Strip_sim.Cost_model.charge cfg.cost
                 [ ("checkpoint_row", Meter.get "checkpoint_row") ];
          redo_commits = totals.t_redo_commits;
          redo_ops = totals.t_redo_ops;
          requeued = totals.t_requeued;
          restored_rows = totals.t_restored_rows;
          total_recovery_s = totals.t_recovery_s;
          audit_clean = Auditor.clean final;
          audit_divergences = List.length final.Auditor.divergences;
          repairs;
        }
    | _ -> None
  in
  let repl =
    match cluster with
    | None -> None
    | Some c ->
      let module C = Strip_repl.Cluster in
      let module R = Strip_repl.Replica in
      let hist_summary h =
        if Strip_obs.Histogram.count h = 0 then None
        else Some (Strip_obs.Histogram.summary h)
      in
      let n_reads = C.reads_issued c in
      let last_done = C.last_read_done c in
      Some
        {
          n_replicas = C.n_replicas c;
          read_policy =
            (match cfg.repl with
            | Some r -> C.policy_string r.read_policy
            | None -> "any");
          read_rate =
            (match cfg.repl with Some r -> r.read_rate | None -> 0.0);
          n_reads;
          reads_primary = C.reads_primary c;
          reads_replica = C.reads_replica c;
          read_latency = hist_summary (C.read_latency c);
          read_throughput_per_s =
            (if last_done <= 0.0 then 0.0
             else float_of_int n_reads /. last_done);
          n_failovers = C.n_failovers c;
          promotion_lost_bytes = C.lost_bytes_total c;
          epoch = C.epoch c;
          epochs = C.epoch_history c;
          promotions = List.rev totals.t_promotions;
          final_lsn =
            (match Strip_db.durable db with
            | Some d -> Wal.durable_end (Durable.wal d)
            | None -> 0);
          fenced_bytes = C.fenced_bytes_total c;
          n_partitions = C.n_partitions c;
          partition_drops = C.partition_drops_total c;
          fenced_messages = C.fenced_messages_total c;
          segments_sent = C.segments_sent c;
          segments_dropped = C.segments_dropped c;
          bytes_shipped = C.bytes_shipped c;
          cluster_lag =
            merged_summary
              (List.init (C.n_replicas c) (fun i -> R.lag (C.replica c i)));
          cluster_lock_wait =
            merged_summary
              [ acc.a_lock_h; Strip_sim.Stats.lock_wait_hist stats ];
          per_replica =
            List.init (C.n_replicas c) (fun i ->
                let r = C.replica c i in
                {
                  r_id = R.id r;
                  r_applied_lsn = R.applied_lsn r;
                  r_segments = R.n_segments r;
                  r_duplicates = R.n_duplicates r;
                  r_reordered = R.n_reordered r;
                  r_bootstraps = R.n_bootstraps r;
                  r_reads = R.n_reads r;
                  r_lag = hist_summary (R.lag r);
                });
        }
  in
  let storage =
    match (cfg.storage, Strip_db.durable db) with
    | Some _, Some d ->
      let stores = d :: !abandoned in
      let counts =
        List.fold_left
          (fun c od -> Durable.add_counts od c)
          Durable.zero_counts stores
      in
      let sum_wal f =
        List.fold_left (fun a od -> a + f (Durable.wal od)) 0 stores
      in
      let sget f = match scrub_stats with Some s -> f s | None -> 0 in
      let salvage_s =
        1e-6
        *. Strip_sim.Cost_model.charge cfg.cost
             [
               ("scrub_pass", Meter.get "scrub_pass");
               ("scrub_byte", Meter.get "scrub_byte");
               ("salvage_attempt", Meter.get "salvage_attempt");
               ("salvage_byte", Meter.get "salvage_byte");
               ("quarantine_byte", Meter.get "quarantine_byte");
             ]
      in
      Some
        {
          injected_bitrot_wal = counts.Durable.injected_bitrot_wal;
          injected_bitrot_cp = counts.Durable.injected_bitrot_cp;
          injected_fsync_lie = counts.Durable.injected_fsync_lie;
          faults_detected = counts.Durable.detected;
          faults_repaired = counts.Durable.repaired;
          faults_quarantined = counts.Durable.quarantined;
          faults_expunged = counts.Durable.expunged;
          faults_outstanding = counts.Durable.outstanding;
          scrub_passes = sget Scrub.passes;
          scrub_bytes = sget Scrub.bytes_scanned;
          wal_corruptions = sget Scrub.wal_corruptions;
          cp_corruptions = sget Scrub.cp_corruptions;
          repaired_replica = sget Scrub.repaired_replica;
          repaired_checkpoint = sget Scrub.repaired_checkpoint;
          scrub_salvaged_bytes = sget Scrub.salvaged_bytes;
          scrub_expunged_bytes = sget Scrub.expunged_bytes;
          cp_fallbacks = totals.t_cp_fallbacks;
          salvaged_ranges = totals.t_salvaged_ranges;
          salvaged_bytes = totals.t_salvaged_bytes;
          quarantined_bytes = totals.t_quarantined_bytes;
          orphan_merges = totals.t_orphan_merges;
          disk_fulls = sum_wal Wal.n_disk_fulls;
          lied_bytes = sum_wal Wal.lied_bytes;
          ship_verify_skips =
            (match cluster with
            | Some c -> Strip_repl.Cluster.ship_verify_skips c
            | None -> 0);
          salvage_s;
          final_clean =
            Wal.verify (Durable.wal d) = [] && Durable.slots_valid d;
        }
    | _ -> None
  in
  {
    label = label_of cfg.rule;
    delay = cfg.delay;
    duration_s;
    servers = cfg.servers;
    makespan_s;
    recompute_throughput_per_s =
      (if makespan_s <= 0.0 then 0.0
       else float_of_int n_recompute /. makespan_s);
    per_server_utilization =
      Strip_sim.Stats.per_server_utilization stats
        ~duration_s:(Float.max duration_s makespan_s);
    n_lock_waits = acc.a_lock_waits + Strip_sim.Stats.n_lock_waits stats;
    n_lock_timeouts =
      acc.a_lock_timeouts + Strip_sim.Stats.n_lock_timeouts stats;
    lock_wait_s =
      (if Strip_sim.Stats.n_lock_waits stats = 0 then None
       else
         Some
           (Strip_obs.Histogram.summary
              (Strip_sim.Stats.lock_wait_hist stats)));
    utilization = Strip_sim.Stats.utilization stats ~duration_s;
    n_updates = acc.a_updates + Strip_sim.Stats.tasks_run stats Task.Update;
    n_recompute;
    mean_recompute_us = Strip_sim.Stats.mean_service_us stats Task.Recompute;
    p50_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 50.0;
    p90_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 90.0;
    p99_recompute_us = Strip_sim.Stats.service_percentile_us stats Task.Recompute 99.0;
    max_recompute_us = Strip_sim.Stats.max_service_us stats Task.Recompute;
    busy_update_s =
      (acc.a_busy_update_us +. Strip_sim.Stats.busy_us_of stats Task.Update)
      *. 1e-6;
    busy_recompute_s =
      (acc.a_busy_recompute_us
      +. Strip_sim.Stats.busy_us_of stats Task.Recompute)
      *. 1e-6;
    n_firings = acc.a_firings + Rule_manager.n_rule_firings (Strip_db.rules db);
    n_merges = acc.a_merges + Rule_manager.n_merges (Strip_db.rules db);
    context_switches = acc.a_ctxsw + Strip_sim.Stats.context_switches stats;
    expected_fanout;
    verified;
    max_abs_error;
    n_injected =
      (acc.a_injected
      +
      match Strip_db.fault_injector db with
      | Some fi -> Fault.total_injected fi
      | None -> 0);
    n_aborts = acc.a_aborts + Strip_sim.Stats.n_aborts stats;
    n_retries = acc.a_retries + Strip_sim.Stats.n_retries stats;
    n_sheds = acc.a_sheds + Strip_sim.Stats.n_sheds stats;
    n_dead_letters = acc.a_dead + Strip_sim.Stats.n_dead_letters stats;
    mean_recovery_s = Strip_sim.Stats.mean_recovery_s stats;
    staleness =
      List.map
        (fun table ->
          (table, Strip_obs.Histogram.summary (Strip_sim.Stats.staleness_hist stats table)))
        (Strip_sim.Stats.staleness_tables stats);
    registry = Strip_obs.Metrics.snapshot (Strip_db.metrics db);
    recovery;
    repl;
    storage;
    shard = None;
    slo = (match cfg.slo with None -> [] | Some s -> Strip_obs.Slo.report s);
    trace_spans =
      (match cfg.trace with
      | None -> []
      | Some tr ->
        ("primary", Strip_obs.Trace.length tr, Strip_obs.Trace.dropped tr)
        :: List.map
             (fun (name, t) ->
               (name, Strip_obs.Trace.length t, Strip_obs.Trace.dropped t))
             replica_traces);
    cluster_traces =
      (match cfg.trace with
      | Some tr when replica_traces <> [] -> ("primary", tr) :: replica_traces
      | _ -> []);
  }
