(** Tabular output for the figure-reproduction harness. *)

val print_metrics_header : unit -> unit
val print_metrics : Experiment.metrics -> unit

val print_failures : Experiment.metrics -> unit
(** One indented line of failure counters (injected faults, aborts,
    retries, sheds, dead letters, mean recovery latency); silent when the
    run saw no failures. *)

val print_series :
  title:string ->
  ylabel:string ->
  delays:float list ->
  series:(string * (float * float) list) list ->
  value_fmt:(float -> string) ->
  unit
(** Print one figure as a delay × variant table.  [series] maps a variant
    label to (delay, value) points; a series with a single point (the
    non-unique baseline) prints the same value in every column, mirroring
    the horizontal line in the paper's plots. *)

val fmt_pct : float -> string
val fmt_count : float -> string
val fmt_us : float -> string
