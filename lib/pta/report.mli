(** Tabular and JSON output for the figure-reproduction harness. *)

val print_metrics_header : unit -> unit
(** Column legend: [mean_rc_us] / [p50_rc_us] / [p99_rc_us] / [max_rc_us]
    are recompute-transaction service times in simulated microseconds. *)

val print_metrics : Experiment.metrics -> unit

val print_failures : Experiment.metrics -> unit
(** One indented line of failure counters (injected faults, aborts,
    retries, sheds, dead letters, mean recovery latency); prints
    ["failures: (none)"] when the run saw no failures, so a clean run is
    distinguishable from a missing report. *)

val print_servers : Experiment.metrics -> unit
(** Indented multi-server rows: server count, makespan, recompute
    throughput, per-server utilization, and the lock-wait summary
    (count, mean/p50/p99/max wait, timeouts).  Silent for a single-server
    run that never waited on a lock, so historical reports are
    unchanged. *)

val print_recovery : Experiment.metrics -> unit
(** Indented durability/recovery rows: WAL and checkpoint volume with
    their simulated CPU overhead, crash/recovery totals, and the final
    consistency-audit verdict.  Silent for runs without a [recovery]
    config, so historical reports are unchanged. *)

val print_repl : Experiment.metrics -> unit
(** Indented replication rows: cluster shape and shipping volume, one row
    per replica (applied LSN, segment/duplicate/reorder/reseed counts,
    lag p50/p99), and the read-routing summary with latency percentiles
    and throughput.  Silent for runs without a [repl] config, so
    historical reports are unchanged. *)

val print_storage : Experiment.metrics -> unit
(** Indented storage-fault rows: injected-fault census and ledger
    outcomes (with a [SILENT CORRUPTION] marker on any outstanding
    fault), scrubber volume and repair-source mix, salvage-recovery
    work, backpressure counters, and the final media verdict.  Silent
    for runs without a [storage] config, so historical reports are
    unchanged. *)

val print_shard : Experiment.metrics -> unit
(** Indented sharding rows: shard count and partial-delta protocol volume
    (ships, acks, reships), the cross-shard composite audit verdict, and
    one row per shard primary (local work, queue verdict counters, crash
    count, final LSN).  Silent for single-primary runs, so historical
    reports are unchanged. *)

val print_slo : Experiment.metrics -> unit
(** One indented verdict line per staleness SLO objective (samples over
    bound, violation windows, violating seconds, worst sample); silent
    for runs without an [slo] config. *)

val print_trace : Experiment.metrics -> unit
(** One indented line per traced span buffer (node, events buffered,
    events dropped by the ring); silent when tracing was off. *)

val print_staleness : Experiment.metrics -> unit
(** One indented line per derived table: count, mean, p50/p90/p99 and max
    staleness in seconds (paper §7); silent when no maintenance
    transaction committed. *)

val storage_json : Experiment.storage_metrics -> Strip_obs.Json.t
(** The storage-fault block alone — the chaos explorer embeds it in
    outcome and quarantine reports. *)

val shard_json : Experiment.shard_metrics -> Strip_obs.Json.t
(** The sharding block alone (protocol counters, per-shard rows,
    cross-shard audit verdict). *)

val metrics_json : Experiment.metrics -> Strip_obs.Json.t
(** The full metrics record as a JSON object, including recompute-latency
    percentiles and per-table staleness summaries.  NaN (e.g.
    [max_abs_error] with verification off) serialises as [null]. *)

val print_metrics_json : Experiment.metrics list -> unit
(** [{"experiments": [...]}] on stdout — the machine-readable counterpart
    of {!print_metrics_header}/{!print_metrics}. *)

val print_series :
  title:string ->
  ylabel:string ->
  delays:float list ->
  series:(string * (float * float) list) list ->
  value_fmt:(float -> string) ->
  unit
(** Print one figure as a delay × variant table.  [series] maps a variant
    label to (delay, value) points; a series with a single point (the
    non-unique baseline) prints the same value in every column, mirroring
    the horizontal line in the paper's plots. *)

val fmt_pct : float -> string
val fmt_count : float -> string
val fmt_us : float -> string
