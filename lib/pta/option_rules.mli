(** Rules maintaining [option_prices] (paper Figure 8 and §5.2).

    Unlike composites, option prices cannot be maintained incrementally:
    every change reprices through Black-Scholes.  Batching pays only when
    the same stock is re-quoted inside the delay window — then only its
    {e last} price needs repricing (temporal locality).

    Variants (the Figures 12-14 curves):
    - {!Non_unique} — [do_options1]/[compute_options1]: reprice every
      affected option on every change, row by row;
    - {!Unique_coarse} — one queued transaction for the whole view; the
      user function dedupes (option, last price) in user code;
    - {!Unique_on_symbol} — batches per underlying stock; one volatility
      lookup and a cheap last-value dedupe per batch;
    - {!Unique_on_option} — batches per option symbol.  The paper found
      the resulting task population unmanageable and dropped it from the
      graphs; it is implemented here and excluded the same way. *)

type variant = Non_unique | Unique_coarse | Unique_on_symbol | Unique_on_option

val variant_name : variant -> string

val all_variants : variant list
(** The three the paper plots (no {!Unique_on_option}). *)

val rule_text : variant -> delay:float -> string

val install :
  Strip_core.Strip_db.t -> Pta_tables.handles -> variant -> delay:float -> unit

val recompute_from_scratch : Pta_tables.handles -> (string * float) list
(** Ground truth: every option repriced from current stock prices
    (unmetered). *)

val maintained : Pta_tables.handles -> (string * float) list
