open Strip_relational
open Strip_core
open Strip_market
open Experiment
module Coordinator = Strip_shard.Coordinator

(* The sharded analogue of {!Experiment.run}: N shard primaries, each a
   full Strip_db with its own durable store, stitched together by the
   {!Strip_shard.Coordinator} partial-delta protocol.  The population,
   rule install, feed replay, crash accounting and metrics assembly
   mirror the single-primary driver so a shard sweep is an
   apples-to-apples comparison; what differs is that composite writes for
   non-local composites travel as weighted partial deltas and the
   end-of-run verification is a cross-shard audit over the union of all
   shards' base tables. *)

let run (cfg : config) : metrics =
  let scfg =
    match cfg.shard with
    | Some s -> s
    | None -> invalid_arg "Shard_exp.run: config.shard is required"
  in
  let n = scfg.shards in
  if n < 1 then invalid_arg "Shard_exp.run: shards must be >= 1";
  (* Multi-engine determinism: the task/span id wells are global, so an
     in-process re-run must restart them from the same origin or every
     id (and thus every trace byte) shifts. *)
  Strip_txn.Task.reset_ids ();
  let part = Strip_shard.Partitioner.create ~shards:n in
  let owner_sym = Strip_shard.Partitioner.shard_of_symbol part in
  let owner_comp = Strip_shard.Partitioner.shard_of_comp part in
  let rcfg = Option.value cfg.recovery ~default:default_recovery in
  (* Sharded runs are always durable: the partial-delta protocol's
     exactly-once guarantee rests on Shard_* WAL records. *)
  let retain = match cfg.storage with Some s -> max 1 s.retain | None -> 1 in
  let durables =
    Array.init n (fun _ -> Strip_txn.Durable.create ~retain ())
  in
  let dbs =
    Array.init n (fun i -> mk_db ~durable:durables.(i) ?fault:cfg.fault cfg)
  in
  let handles =
    Pta_tables.populate_sharded dbs ~owner_sym ~owner_comp ~feed:cfg.feed
      cfg.sizes
  in
  let weights = Feed.activity_weights cfg.feed in
  (* Membership rows are partitioned by symbol owner, so the global
     E[fanout] is the sum of each shard's partition fanout. *)
  let expected_fanout =
    Array.fold_left
      (fun acc h ->
        acc
        +.
        match cfg.rule with
        | Comp_view _ -> Pta_tables.expected_comps_per_update h ~weights
        | Option_view _ -> Pta_tables.expected_options_per_update h ~weights)
      0.0 handles
  in
  let install sid db h =
    match cfg.rule with
    | Comp_view v ->
      Comp_rules.install_routed db h ~sid ~owner:owner_comp v ~delay:cfg.delay
    | Option_view v ->
      (* Options are fully local (stocks / stock_stdev / options_list are
         co-partitioned by symbol): the plain install never emits a
         partial. *)
      Option_rules.install db h v ~delay:cfg.delay
  in
  Array.iteri (fun i db -> install i db handles.(i)) dbs;
  let quotes = Feed.generate cfg.feed in
  let shard_quotes =
    Array.init n (fun i ->
        Array.of_seq
          (Seq.filter
             (fun (q : Feed.quote) -> owner_sym (Taq.symbol q.Feed.stock) = i)
             (Array.to_seq quotes)))
  in
  let feed_of i =
    {
      Strip_ingest.Import.stocks = handles.(i).Pta_tables.stocks;
      by_symbol = handles.(i).Pta_tables.stocks_by_symbol;
    }
  in
  Array.iteri
    (fun i db ->
      ignore (Strip_ingest.Import.replay db (feed_of i) shard_quotes.(i)))
    dbs;
  Meter.reset ();
  Array.iter (fun db -> Rule_manager.reset_stats (Strip_db.rules db)) dbs;
  (* Shared crash budget across all shards, same policy as the
     single-primary drive: past [max_crashes] restarts, fresh instances
     get zeroed crash/partition rates so a hostile seed converges. *)
  let restarts = ref 0 in
  let budget_fault () =
    if !restarts >= rcfg.max_crashes then
      Option.map
        (fun (c : Strip_txn.Fault.config) ->
          {
            c with
            Strip_txn.Fault.rates =
              {
                c.Strip_txn.Fault.rates with
                Strip_txn.Fault.crash = 0.0;
                partition = 0.0;
              };
          })
        cfg.fault
    else cfg.fault
  in
  let redo_commits = ref 0
  and redo_ops = ref 0
  and requeued = ref 0
  and restored_rows = ref 0 in
  let cb =
    {
      Coordinator.remake =
        (fun ~sid ~now ->
          incr restarts;
          mk_db ~now ~durable:durables.(sid) ?fault:(budget_fault ()) cfg);
      reinstall =
        (fun ~sid ndb ->
          let hh = Pta_tables.reattach ndb in
          handles.(sid) <- hh;
          install sid ndb hh);
      apply =
        (fun ~sid _db txn ~key ~delta ->
          match cfg.rule with
          | Comp_view _ -> Comp_rules.apply_partial handles.(sid) txn ~key ~delta
          | Option_view _ -> ());
      requote =
        (fun ~sid ndb ~after ->
          let rest =
            Array.of_seq
              (Seq.filter
                 (fun (q : Feed.quote) -> q.Feed.time > after)
                 (Array.to_seq shard_quotes.(sid)))
          in
          ignore (Strip_ingest.Import.replay ndb (feed_of sid) rest));
      recovered =
        (fun ~sid:_ _ndb (rs : Recovery.stats) ->
          redo_commits := !redo_commits + rs.Recovery.redo_commits;
          redo_ops := !redo_ops + rs.Recovery.redo_ops;
          requeued := !requeued + rs.Recovery.requeued;
          restored_rows := !restored_rows + rs.Recovery.restored_rows);
    }
  in
  let ccfg =
    {
      Coordinator.link = scfg.shard_link;
      ship_every = scfg.shard_ship_every;
      resend_after = scfg.shard_resend_after;
      checkpoint_every = scfg.shard_checkpoint_every;
      cost = cfg.cost;
    }
  in
  let coord = Coordinator.create ~cfg:ccfg ~cb dbs in
  Coordinator.checkpoint_all coord;
  (match scfg.shard_crash_at with
  | Some (sid, at) when sid >= 0 && sid < n ->
    Strip_db.schedule_crash dbs.(sid) ~at
  | Some (sid, _) ->
    invalid_arg (Printf.sprintf "Shard_exp.run: shard_crash_at shard %d out of range" sid)
  | None -> ());
  let duration_s = cfg.feed.Feed.duration in
  Coordinator.run coord ~until:duration_s;
  Option.iter Strip_obs.Slo.finish cfg.slo;
  let final i = Coordinator.db coord i in
  let finals = Array.init n final in
  (* Per-shard counter accumulation (crashed incarnations + the live
     one); the global figures are the per-shard sums. *)
  let per_acc =
    Array.init n (fun i ->
        let a = zero_acc () in
        List.iter (accumulate a) (Coordinator.prior_dbs coord i);
        accumulate a (final i);
        a)
  in
  let sum f = Array.fold_left (fun t a -> t + f a) 0 per_acc in
  let sumf f = Array.fold_left (fun t a -> t +. f a) 0.0 per_acc in
  let sum_sh f =
    let t = ref 0 in
    for i = 0 to n - 1 do
      t := !t + f i
    done;
    !t
  in
  let sum_shf f =
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      t := !t +. f i
    done;
    !t
  in
  let eps = verify_tolerance cfg.rule in
  (* Per-shard audit: only views with a locally-complete definition are
     auditable in place.  The sharded [comp_prices] is a plain partition
     (its members live everywhere), so composites are judged by the
     cross-shard pass below instead. *)
  let per_shard_clean = ref true in
  let audit_divs = ref 0 and repairs_total = ref 0 in
  (match cfg.rule with
  | Option_view _ ->
    Array.iter
      (fun db ->
        let views = [ "option_prices" ] in
        let first = Auditor.audit ~eps ~views db in
        let repairs =
          if Auditor.clean first then 0
          else begin
            let r = Auditor.enqueue_repairs db first in
            Strip_db.run db;
            r
          end
        in
        let final =
          if repairs = 0 then first else Auditor.audit ~eps ~views db
        in
        repairs_total := !repairs_total + repairs;
        audit_divs := !audit_divs + List.length final.Auditor.divergences;
        if not (Auditor.clean final) then per_shard_clean := false)
      finals
  | Comp_view _ -> ());
  (* Cross-shard audit: recompute every composite from the union of all
     shards' base tables and compare against the union of the maintained
     partitions — the check no single shard can run alone. *)
  let cross_expected, cross_actual =
    match cfg.rule with
    | Comp_view _ ->
      ( Comp_rules.recompute_from_scratch_sharded handles,
        Comp_rules.maintained_sharded handles )
    | Option_view _ ->
      let union f =
        Array.to_list handles |> List.concat_map f |> List.sort compare
      in
      ( union Option_rules.recompute_from_scratch,
        union Option_rules.maintained )
  in
  let cross_checks = List.length cross_expected in
  let cross_err = max_error cross_expected cross_actual in
  let cross_divergences =
    let tbl = Hashtbl.create (2 * cross_checks) in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) cross_expected;
    let diverging =
      List.fold_left
        (fun acc (k, v) ->
          match Hashtbl.find_opt tbl k with
          | Some e when Float.abs (v -. e) <= eps -> acc
          | _ -> acc + 1)
        0 cross_actual
    in
    diverging + abs (List.length cross_expected - List.length cross_actual)
  in
  let cross_clean = cross_divergences = 0 in
  let verified, max_abs_error =
    if cfg.verify then (Some (cross_clean && !per_shard_clean), cross_err)
    else (None, nan)
  in
  let open Strip_txn in
  let makespan_s =
    Array.fold_left
      (fun m db -> Float.max m (Clock.now (Strip_db.clock db)))
      0.0 finals
  in
  let n_recompute = sum (fun a -> a.a_recompute) in
  (* Service-time percentiles live in per-engine reservoirs and do not
     merge; report the busiest shard's recompute distribution as the
     representative one. *)
  let rep_stats =
    let best = ref (Strip_db.stats finals.(0)) and best_n = ref (-1) in
    Array.iter
      (fun db ->
        let st = Strip_db.stats db in
        let nr = Strip_sim.Stats.n_recompute st in
        if nr > !best_n then begin
          best := st;
          best_n := nr
        end)
      finals;
    !best
  in
  let lock_h = Strip_obs.Histogram.create () in
  Array.iter
    (fun a -> Strip_obs.Histogram.merge_into ~dst:lock_h a.a_lock_h)
    per_acc;
  let staleness =
    let tables =
      Array.to_list finals
      |> List.concat_map (fun db ->
             Strip_sim.Stats.staleness_tables (Strip_db.stats db))
      |> List.sort_uniq compare
    in
    List.map
      (fun table ->
        let hs =
          Array.to_list finals
          |> List.filter_map (fun db ->
                 let st = Strip_db.stats db in
                 if List.mem table (Strip_sim.Stats.staleness_tables st) then
                   Some (Strip_sim.Stats.staleness_hist st table)
                 else None)
        in
        (table, Strip_obs.Histogram.summary (Strip_obs.Histogram.merge hs)))
      tables
  in
  (* One report, N registries: every shard's rows tagged with a [shard]
     label and re-sorted into a single deterministic snapshot. *)
  let registry =
    Array.to_list finals
    |> List.mapi (fun i db ->
           List.map
             (fun (r : Strip_obs.Metrics.row) ->
               {
                 r with
                 Strip_obs.Metrics.labels =
                   ("shard", string_of_int i) :: r.Strip_obs.Metrics.labels;
               })
             (Strip_obs.Metrics.snapshot (Strip_db.metrics db)))
    |> List.concat
    |> List.sort compare
  in
  let n_crashes = sum_sh (fun i -> Coordinator.crashes coord i) in
  let total_recovery_s = sum_shf (fun i -> Coordinator.recovery_s coord i) in
  let sum_dur f = Array.fold_left (fun t d -> t + f d) 0 durables in
  let sum_wal f =
    Array.fold_left (fun t d -> t + f (Durable.wal d)) 0 durables
  in
  let recovery =
    Some
      {
        n_crashes;
        n_checkpoints = sum_dur Durable.n_checkpoints;
        checkpoint_bytes = sum_dur Durable.last_checkpoint_bytes;
        wal_appends = sum_wal Wal.n_appends;
        wal_fsyncs = sum_wal Wal.n_fsyncs;
        wal_appended_bytes = sum_wal Wal.appended_bytes;
        wal_overhead_s =
          1e-6
          *. Strip_sim.Cost_model.charge cfg.cost
               [
                 ("wal_append", Meter.get "wal_append");
                 ("wal_fsync", Meter.get "wal_fsync");
               ];
        checkpoint_overhead_s =
          1e-6
          *. Strip_sim.Cost_model.charge cfg.cost
               [ ("checkpoint_row", Meter.get "checkpoint_row") ];
        redo_commits = !redo_commits;
        redo_ops = !redo_ops;
        requeued = !requeued;
        restored_rows = !restored_rows;
        total_recovery_s;
        audit_clean = cross_clean && !per_shard_clean;
        audit_divergences = !audit_divs + cross_divergences;
        repairs = !repairs_total;
      }
  in
  let sh_rows =
    List.init n (fun i ->
        let dq = Coordinator.queue coord i in
        {
          sh_id = i;
          sh_updates = per_acc.(i).a_updates;
          sh_recomputes = per_acc.(i).a_recompute;
          sh_firings = per_acc.(i).a_firings;
          sh_partials_out = Rule_manager.partial_seq (Strip_db.rules (final i));
          sh_offered = Strip_shard.Dqueue.n_offered dq;
          sh_duplicates = Strip_shard.Dqueue.n_duplicates dq;
          sh_merged = Strip_shard.Dqueue.n_merged dq;
          sh_applied = Strip_shard.Dqueue.n_applied dq;
          sh_crashes = Coordinator.crashes coord i;
          sh_final_lsn = Wal.durable_end (Durable.wal durables.(i));
        })
  in
  let shard =
    Some
      {
        n_shards = n;
        sh_rows;
        sh_msgs = Coordinator.msgs_sent coord;
        sh_bytes = Coordinator.bytes_shipped coord;
        sh_partials = Coordinator.partials_shipped coord;
        sh_acks = Coordinator.acks_sent coord;
        sh_reships = Coordinator.reships coord;
        sh_recovery_s = total_recovery_s;
        cross_checks;
        cross_divergences;
      }
  in
  let dur = Float.max duration_s makespan_s in
  {
    label = label_of cfg.rule;
    delay = cfg.delay;
    duration_s;
    servers = cfg.servers;
    makespan_s;
    recompute_throughput_per_s =
      (if makespan_s <= 0.0 then 0.0
       else float_of_int n_recompute /. makespan_s);
    per_server_utilization =
      Array.to_list finals
      |> List.concat_map (fun db ->
             Strip_sim.Stats.per_server_utilization (Strip_db.stats db)
               ~duration_s:dur);
    n_lock_waits = sum (fun a -> a.a_lock_waits);
    n_lock_timeouts = sum (fun a -> a.a_lock_timeouts);
    lock_wait_s =
      (if Strip_obs.Histogram.count lock_h = 0 then None
       else Some (Strip_obs.Histogram.summary lock_h));
    utilization =
      (let u =
         Array.fold_left
           (fun t db ->
             t +. Strip_sim.Stats.utilization (Strip_db.stats db) ~duration_s)
           0.0 finals
       in
       u /. float_of_int n);
    n_updates = sum (fun a -> a.a_updates);
    n_recompute;
    mean_recompute_us = Strip_sim.Stats.mean_service_us rep_stats Task.Recompute;
    p50_recompute_us =
      Strip_sim.Stats.service_percentile_us rep_stats Task.Recompute 50.0;
    p90_recompute_us =
      Strip_sim.Stats.service_percentile_us rep_stats Task.Recompute 90.0;
    p99_recompute_us =
      Strip_sim.Stats.service_percentile_us rep_stats Task.Recompute 99.0;
    max_recompute_us = Strip_sim.Stats.max_service_us rep_stats Task.Recompute;
    busy_update_s = sumf (fun a -> a.a_busy_update_us) *. 1e-6;
    busy_recompute_s = sumf (fun a -> a.a_busy_recompute_us) *. 1e-6;
    n_firings = sum (fun a -> a.a_firings);
    n_merges = sum (fun a -> a.a_merges);
    context_switches = sum (fun a -> a.a_ctxsw);
    expected_fanout;
    verified;
    max_abs_error;
    n_injected = sum (fun a -> a.a_injected);
    n_aborts = sum (fun a -> a.a_aborts);
    n_retries = sum (fun a -> a.a_retries);
    n_sheds = sum (fun a -> a.a_sheds);
    n_dead_letters = sum (fun a -> a.a_dead);
    mean_recovery_s =
      (if n_crashes = 0 then 0.0
       else total_recovery_s /. float_of_int n_crashes);
    staleness;
    registry;
    recovery;
    repl = None;
    storage = None;
    shard;
    slo = (match cfg.slo with None -> [] | Some s -> Strip_obs.Slo.report s);
    trace_spans =
      (match cfg.trace with
      | None -> []
      | Some tr ->
        [ ("primary", Strip_obs.Trace.length tr, Strip_obs.Trace.dropped tr) ]);
    cluster_traces = [];
  }

(* The single entry point drivers should call: sharded configs go through
   the coordinator, everything else takes the unchanged single-primary
   path ({!Experiment.run} never consults [config.shard], so a [None] /
   1-shard run is byte-identical to a build without this module). *)
let dispatch (cfg : config) : metrics =
  match cfg.shard with
  | Some s when s.shards > 1 -> run cfg
  | _ -> Experiment.run cfg
