(** The sharded experiment driver (ISSUE 10 tentpole).

    Runs the program-trading workload across N shard primaries: base
    tables hash-partitioned by symbol ({!Strip_shard.Partitioner}), each
    shard a full {!Strip_core.Strip_db} with its own engine, WAL and
    checkpoints, and cross-shard [comp_prices] maintenance flowing as
    weighted partial deltas through {!Strip_shard.Coordinator}'s
    distributed unique-transaction queue.

    Mirrors {!Experiment.run}'s population, install, replay and metrics
    assembly so a shard sweep compares like with like; the differences
    are documented in [docs/SHARDING.md]. *)

val run : Experiment.config -> Experiment.metrics
(** Run the sharded write path.  Requires [config.shard = Some _]; the
    resulting metrics carry [shard = Some _] (per-shard rows, protocol
    counters, cross-shard audit verdict) and [recovery = Some _]
    (sharded runs are always durable — the exactly-once partial-delta
    protocol rests on Shard_* WAL records).
    @raise Invalid_argument without a shard config, or with
    [shards < 1], or a [shard_crash_at] shard id out of range. *)

val dispatch : Experiment.config -> Experiment.metrics
(** [run] when [config.shard] asks for more than one shard, otherwise
    the unchanged {!Experiment.run} — callers route through this so a
    shard-less config keeps the single-primary path byte-identical. *)
