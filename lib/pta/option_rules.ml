open Strip_relational
open Strip_core

let c_dedupe_row = Meter.counter "dedupe_row"
let c_ulast_row = Meter.counter "ulast_row"
type variant = Non_unique | Unique_coarse | Unique_on_symbol | Unique_on_option

let variant_name = function
  | Non_unique -> "non-unique"
  | Unique_coarse -> "unique"
  | Unique_on_symbol -> "unique on symbol"
  | Unique_on_option -> "unique on option_symbol"

let all_variants = [ Non_unique; Unique_coarse; Unique_on_symbol ]

let condition =
  "  select option_symbol, stock_symbol, strike, expiration,\n\
  \         new.price as new_price\n\
  \  from options_list, new\n\
  \  where options_list.stock_symbol = new.symbol\n\
  \  bind as matches\n"

let func_name = function
  | Non_unique -> "compute_options1"
  | Unique_coarse -> "compute_options2"
  | Unique_on_symbol -> "compute_options3"
  | Unique_on_option -> "compute_options4"

let rule_name = function
  | Non_unique -> "do_options1"
  | Unique_coarse -> "do_options2"
  | Unique_on_symbol -> "do_options3"
  | Unique_on_option -> "do_options4"

let rule_text variant ~delay =
  let unique_clause =
    match variant with
    | Non_unique -> ""
    | Unique_coarse -> "  unique\n"
    | Unique_on_symbol -> "  unique on stock_symbol\n"
    | Unique_on_option -> "  unique on option_symbol\n"
  in
  let after_clause =
    match variant with
    | Non_unique -> ""
    | _ -> Printf.sprintf "  after %g seconds\n" delay
  in
  Printf.sprintf
    "create rule %s on stocks\nwhen updated price\nif\n%sthen\n  execute %s\n%s%s"
    (rule_name variant) condition (func_name variant) unique_clause
    after_clause

(* matches columns *)
let c_opt = 0
let c_stock = 1
let c_strike = 2
let c_expiry = 3
let c_price = 4

let stdev_of (h : Pta_tables.handles) txn stock =
  match
    Db_ops.lookup_one txn h.Pta_tables.stock_stdev h.Pta_tables.stdev_by_symbol
      [ stock ]
  with
  | Some values -> Value.to_float values.(1)
  | None -> invalid_arg ("no stdev for stock " ^ Value.to_string stock)

let reprice (h : Pta_tables.handles) txn ~opt ~price ~strike ~expiry ~stdev =
  let theo =
    Strip_finance.Black_scholes.call ~stock_price:price ~strike
      ~rate:Strip_finance.Black_scholes.default_rate ~volatility:stdev
      ~expiry_years:expiry
  in
  ignore
    (Db_ops.update_by_key txn h.Pta_tables.option_prices
       h.Pta_tables.option_by_symbol [ opt ]
       (fun values ->
         values.(1) <- Value.Float theo;
         values))

(* Figure 8: reprice every row.  The paper's pseudo-code re-selects the
   volatility per row; like any compiled implementation we hoist the lookup
   per distinct underlying in the batch (a non-unique batch holds a single
   triggering transaction's changes, so this is one lookup per task). *)
let compute_options1 h (ctx : Rule_manager.action_ctx) =
  let stdevs : (Value.t, float) Hashtbl.t = Hashtbl.create 8 in
  Db_ops.iter_bound ctx "matches" (fun row ->
      let stdev =
        match Hashtbl.find_opt stdevs row.(c_stock) with
        | Some s -> s
        | None ->
          let s = stdev_of h ctx.Rule_manager.txn row.(c_stock) in
          Hashtbl.add stdevs row.(c_stock) s;
          s
      in
      reprice h ctx.Rule_manager.txn ~opt:row.(c_opt)
        ~price:(Value.to_float row.(c_price))
        ~strike:(Value.to_float row.(c_strike))
        ~expiry:(Value.to_float row.(c_expiry))
        ~stdev)

(* Coarse batch: group by option in user code, keep the last price (rows
   arrive in commit order), then reprice each option once. *)
let compute_options2 h (ctx : Rule_manager.action_ctx) =
  let last : (Value.t, Value.t array) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  Db_ops.iter_bound ctx "matches" (fun row ->
      (* keep-last grouping over the whole mixed batch, in user code *)
      Meter.tick_c c_ulast_row;
      if not (Hashtbl.mem last row.(c_opt)) then order := row.(c_opt) :: !order;
      Hashtbl.replace last row.(c_opt) row);
  let stdevs : (Value.t, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun opt ->
      let row = Hashtbl.find last opt in
      let stdev =
        match Hashtbl.find_opt stdevs row.(c_stock) with
        | Some s -> s
        | None ->
          let s = stdev_of h ctx.Rule_manager.txn row.(c_stock) in
          Hashtbl.add stdevs row.(c_stock) s;
          s
      in
      reprice h ctx.Rule_manager.txn ~opt
        ~price:(Value.to_float row.(c_price))
        ~strike:(Value.to_float row.(c_strike))
        ~expiry:(Value.to_float row.(c_expiry))
        ~stdev)
    (List.rev !order)

(* Per-stock batch: the rule system already partitioned by stock_symbol, so
   only a cheap last-value dedupe per option remains, and the volatility is
   fetched once. *)
let compute_options3 h (ctx : Rule_manager.action_ctx) =
  let last : (Value.t, Value.t array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let stock = ref Value.Null in
  Db_ops.iter_bound ctx "matches" (fun row ->
      Meter.tick_c c_dedupe_row;
      stock := row.(c_stock);
      if not (Hashtbl.mem last row.(c_opt)) then order := row.(c_opt) :: !order;
      Hashtbl.replace last row.(c_opt) row);
  if not (Value.is_null !stock) then begin
    let stdev = stdev_of h ctx.Rule_manager.txn !stock in
    List.iter
      (fun opt ->
        let row = Hashtbl.find last opt in
        reprice h ctx.Rule_manager.txn ~opt
          ~price:(Value.to_float row.(c_price))
          ~strike:(Value.to_float row.(c_strike))
          ~expiry:(Value.to_float row.(c_expiry))
          ~stdev)
      (List.rev !order)
  end

(* Per-option batch: keep the last change only. *)
let compute_options4 h (ctx : Rule_manager.action_ctx) =
  let last = ref None in
  Db_ops.iter_bound ctx "matches" (fun row -> last := Some row);
  match !last with
  | None -> ()
  | Some row ->
    let stdev = stdev_of h ctx.Rule_manager.txn row.(c_stock) in
    reprice h ctx.Rule_manager.txn ~opt:row.(c_opt)
      ~price:(Value.to_float row.(c_price))
      ~strike:(Value.to_float row.(c_strike))
      ~expiry:(Value.to_float row.(c_expiry))
      ~stdev

let install db h variant ~delay =
  let fn =
    match variant with
    | Non_unique -> compute_options1 h
    | Unique_coarse -> compute_options2 h
    | Unique_on_symbol -> compute_options3 h
    | Unique_on_option -> compute_options4 h
  in
  Strip_db.register_function db (func_name variant) fn;
  Strip_db.create_rule db (rule_text variant ~delay)

let recompute_from_scratch (h : Pta_tables.handles) =
  let was = !Meter.enabled in
  Meter.enabled := false;
  Fun.protect
    ~finally:(fun () -> Meter.enabled := was)
    (fun () ->
      let price_of = Hashtbl.create 8192 and stdev_of = Hashtbl.create 8192 in
      Table.iter h.Pta_tables.stocks (fun r ->
          Hashtbl.replace price_of (Record.value r 0)
            (Value.to_float (Record.value r 1)));
      Table.iter h.Pta_tables.stock_stdev (fun r ->
          Hashtbl.replace stdev_of (Record.value r 0)
            (Value.to_float (Record.value r 1)));
      let acc = ref [] in
      Table.iter h.Pta_tables.options_list (fun r ->
          let opt = Value.to_string (Record.value r 0) in
          let stock = Record.value r 1 in
          let strike = Value.to_float (Record.value r 2) in
          let expiry = Value.to_float (Record.value r 3) in
          let price =
            Strip_finance.Black_scholes.call
              ~stock_price:(Hashtbl.find price_of stock)
              ~strike ~rate:Strip_finance.Black_scholes.default_rate
              ~volatility:(Hashtbl.find stdev_of stock)
              ~expiry_years:expiry
          in
          acc := (opt, price) :: !acc);
      List.sort compare !acc)

let maintained (h : Pta_tables.handles) =
  let acc = ref [] in
  Table.iter h.Pta_tables.option_prices (fun r ->
      acc :=
        (Value.to_string (Record.value r 0), Value.to_float (Record.value r 1))
        :: !acc);
  List.sort compare !acc
