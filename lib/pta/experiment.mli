(** One experiment = one curve point of Figures 9-14.

    Builds a fresh STRIP instance, populates the PTA tables, installs one
    maintenance rule variant, replays a quote trace through the simulator,
    and reports the paper's metrics: CPU utilization, the number of
    recomputation transactions N_r, and recompute transaction lengths.
    Optionally verifies that the maintained views match a from-scratch
    recomputation — every run is a correctness test as well as a
    measurement. *)

type rule_choice =
  | Comp_view of Comp_rules.variant
  | Option_view of Option_rules.variant

type recovery_cfg = {
  checkpoint_every : float option;
      (** fuzzy-checkpoint period in simulated seconds; [None] takes only
          the initial post-population checkpoint, so recovery redoes the
          whole log *)
  crash_at : float option;
      (** schedule one deterministic crash at this simulated time *)
  max_crashes : int;
      (** after this many crashes the crash {e rate} is zeroed so a
          hostile seed cannot prevent convergence *)
}

val default_recovery : recovery_cfg
(** 5 s checkpoints, no scheduled crash, at most 8 crashes. *)

type repl_cfg = {
  replicas : int;  (** read replicas fed by WAL log shipping *)
  read_policy : Strip_repl.Cluster.read_policy;
  read_rate : float;  (** read-only queries per simulated second *)
  read_cost_s : float;
      (** fixed per-read service overhead on top of the metered execution
          cost *)
  link : Strip_repl.Link.config;  (** shipping-link latency/bandwidth/drops *)
  ship_every : float;  (** segment/heartbeat shipping period, seconds *)
  partition_detect_s : float;
      (** how long a primary must stay partitioned before the cluster
          declares it down and elects over the cut; a shorter partition
          is a blip — sends drop for the window but nobody fails over *)
}

val default_repl : repl_cfg
(** 1 replica, default link, 50 ms shipping, policy [Any], no reads,
    100 ms partition detection. *)

type storage_cfg = {
  scrub_every : float option;
      (** background-scrubber period in simulated seconds; [None] runs no
          scrubber, so at-rest faults are only found when something reads
          the bytes (the configuration the planted-bug hunt uses) *)
  retain : int;
      (** checkpoint slots kept (≥ 1); extra slots let recovery fall back
          past a CRC-failing image instead of refusing *)
}

val default_storage : storage_cfg
(** 0.5 s scrub period, 2 retained checkpoint slots. *)

type shard_cfg = {
  shards : int;  (** shard primaries; [1] is the unsharded path *)
  shard_link : Strip_repl.Link.config;
      (** shard-to-shard link model for partial/ack traffic *)
  shard_ship_every : float;  (** coordinator tick, seconds *)
  shard_resend_after : float;
      (** unacked partials re-ship after this many seconds *)
  shard_crash_at : (int * float) option;
      (** schedule one deterministic crash of shard [fst] at time [snd];
          the shard restarts in place from its own WAL + checkpoint *)
  shard_checkpoint_every : float option;
      (** per-shard fuzzy-checkpoint period, driven by the coordinator so
          every log truncation is followed by a protocol-state snapshot *)
}

val default_shard : shards:int -> shard_cfg
(** Default link, 50 ms ticks, 250 ms resend, no scheduled crash, 5 s
    checkpoints. *)

(** One deterministic fault in a chaos schedule, in absolute simulated
    seconds.  Crashes and partitions are armed as scheduled engine tasks
    and re-armed on whatever instance is live after each escape; drop
    bursts are installed on the shipping links at cluster creation;
    checkpoint events force an extra checkpoint to race the surrounding
    faults. *)
type chaos_event =
  | Crash_at of float
  | Partition_at of { at : float; heal_after_s : float }
  | Drop_burst of { at : float; until_s : float; rate : float }
  | Checkpoint_at of float
  | Bitrot_at of { at : float; target : [ `Wal | `Checkpoint ]; frac : float }
      (** flip one at-rest byte at fraction [frac] of the durable WAL
          (respectively the newest checkpoint image) *)
  | Fsync_lie_at of float
      (** the next fsync acknowledges its pending bytes but silently
          writes zeros — a mid-log gap discovered only when read *)
  | Disk_full_at of { at : float; free_bytes : int; heal_after_s : float }
      (** clamp WAL capacity to [free_bytes] headroom at [at]; appends
          past it raise typed backpressure until the heal *)

val chaos_event_time : chaos_event -> float
(** The instant the event fires (a burst's opening edge). *)

val is_storage_event : chaos_event -> bool
(** True for the at-rest media events ([Bitrot_at] / [Fsync_lie_at] /
    [Disk_full_at]). *)

type config = {
  rule : rule_choice;
  delay : float;
  feed : Strip_market.Feed.config;
  sizes : Pta_tables.sizes;
  cost : Strip_sim.Cost_model.t;
  verify : bool;
  servers : int;
      (** engine executor count (default 1); overlapping service windows
          are arbitrated by the lock manager *)
  lock_timeout_s : float;
      (** simulated seconds a task may spend blocked (measured from its
          first blocked attempt) before the engine presumes deadlock and
          routes it to the retry path (default 5.0) *)
  fault : Strip_txn.Fault.config option;
      (** inject transaction failures at the configured rates *)
  retry : Strip_sim.Engine.retry option;
      (** recover failed tasks with bounded exponential backoff *)
  overload : Strip_sim.Engine.overload option;
      (** shed delayed rule tasks past the watermark *)
  trace : Strip_obs.Trace.t option;
      (** record task/transaction lifecycle events into this ring buffer;
          with a replicated run, per-replica buffers are created too and
          returned in [cluster_traces] for a merged cluster export *)
  slo : Strip_obs.Slo.t option;
      (** staleness SLO monitor; observed at every maintenance commit,
          reported per view in [slo].  [None] reports nothing. *)
  provenance : Strip_obs.Provenance.t option;
      (** derived-row provenance store; each maintenance commit records
          the base deltas and rule firing behind the derived values it
          wrote.  [None] records nothing. *)
  recovery : recovery_cfg option;
      (** enable the durability layer (WAL + checkpoints), drive the run
          through the crash-restart loop, and audit/repair derived data at
          the end.  [None] (the default) performs no durability work at
          all — output is byte-identical to builds without the
          subsystem. *)
  repl : repl_cfg option;
      (** attach a replication cluster: WAL log shipping to [replicas]
          read replicas plus a policy-routed read pump.  [None] (the
          default) creates no cluster and leaves the run byte-identical
          to non-replicated builds.  [replicas > 0] implies
          {!default_recovery} when [recovery] is [None], and a primary
          crash is resolved by deterministic failover promotion instead
          of restart-in-place. *)
  storage : storage_cfg option;
      (** arm the storage-fault substrate: media-fault ledger, background
          scrubber, retained checkpoint slots, ship-time verification.
          [None] (the default) leaves every run byte-identical to builds
          without the subsystem; a chaos schedule containing storage
          events implies {!default_storage}. *)
  chaos : chaos_event list;
      (** deterministic fault schedule (from {!Strip_chaos} or hand
          written).  [[]] (the default) arms nothing and leaves the run
          byte-identical to chaos-free builds; a non-empty schedule
          implies {!default_recovery} when [recovery] is [None]. *)
  shard : shard_cfg option;
      (** partition the write path across N shard primaries
          ({!Shard_exp}).  [None] (the default) leaves {!run} untouched
          and byte-identical to unsharded builds; {!run} itself never
          consults this field — dispatch through {!Shard_exp.dispatch}. *)
}

val default_config : rule_choice -> delay:float -> config
(** Paper-scale feed and sizes, default cost model, verification on, no
    fault injection / retry / overload control, no tracing. *)

val with_faults :
  ?seed:int -> ?retry:Strip_sim.Engine.retry -> abort_rate:float -> config -> config
(** Enable pre-commit abort injection at [abort_rate] on every task
    transaction, with retry (default {!Strip_sim.Engine.default_retry})
    so the run still converges. *)

val quick : config -> float -> config
(** Scale the workload (duration, update count, composites, options) by a
    factor for fast runs. *)

type recovery_metrics = {
  n_crashes : int;
  n_checkpoints : int;  (** images installed (initial + periodic + post-recovery) *)
  checkpoint_bytes : int;  (** size of the last installed image *)
  wal_appends : int;
  wal_fsyncs : int;
  wal_appended_bytes : int;
  wal_overhead_s : float;
      (** simulated CPU charged to WAL appends and fsyncs — this cost is
          inside the makespan, reported here rather than silently added *)
  checkpoint_overhead_s : float;  (** same, for checkpoint row capture *)
  redo_commits : int;  (** log records replayed, summed over crashes *)
  redo_ops : int;
  requeued : int;  (** unique transactions rebuilt into the queue *)
  restored_rows : int;
  total_recovery_s : float;  (** simulated downtime charged to recovery *)
  audit_clean : bool;  (** final consistency audit (after any repairs) *)
  audit_divergences : int;  (** divergent keys remaining at the end *)
  repairs : int;  (** repair transactions the first audit enqueued *)
}

type replica_metrics = {
  r_id : int;
  r_applied_lsn : int;  (** contiguous applied frontier at end of run *)
  r_segments : int;  (** byte-carrying segments applied *)
  r_duplicates : int;  (** messages fully below the applied frontier *)
  r_reordered : int;  (** segments buffered for a gap ahead of them *)
  r_bootstraps : int;  (** checkpoint re-seeds (truncation / failover) *)
  r_reads : int;  (** reads this replica served *)
  r_lag : Strip_obs.Histogram.summary option;
      (** per-segment replication lag (arrival − send), seconds *)
}

type repl_metrics = {
  n_replicas : int;
  read_policy : string;
  read_rate : float;
  n_reads : int;
  reads_primary : int;  (** reads routed to (or falling through to) the primary *)
  reads_replica : int;
  read_latency : Strip_obs.Histogram.summary option;
      (** queueing + service per read, seconds *)
  read_throughput_per_s : float;
      (** reads over the span to the latest read completion — the
          quantity the replica sweep improves *)
  n_failovers : int;
  promotion_lost_bytes : int;
      (** durable primary bytes that never reached any elected replica *)
  epoch : int;  (** final primary term (1 = no election ever ran) *)
  epochs : (int * int) list;
      (** [(epoch, primary id)] in opening order; id -1 is the founding
          primary or a restart-in-place *)
  promotions : (int * int * int) list;
      (** every promotion as [(epoch, promoted id, promoted lsn)] in
          order — the acked frontier each election preserved *)
  final_lsn : int;  (** primary durable log end at end of run *)
  fenced_bytes : int;
      (** bytes deposed primaries discarded from their divergent tails
          when their partitions healed *)
  n_partitions : int;  (** partition windows the cluster lived through *)
  partition_drops : int;  (** messages discarded by partition windows *)
  fenced_messages : int;  (** stale-epoch messages replicas rejected *)
  segments_sent : int;
  segments_dropped : int;
  bytes_shipped : int;
  cluster_lag : Strip_obs.Histogram.summary option;
      (** replication lag merged across {e all} replicas — the cluster-wide
          distribution, not any single node's ([None] when no segment ever
          recorded lag) *)
  cluster_lock_wait : Strip_obs.Histogram.summary option;
      (** lock-wait distribution merged across every instance the run
          burned through (crash epochs included), not just the final
          primary's ([None] when no task ever waited) *)
  per_replica : replica_metrics list;
}

type storage_metrics = {
  injected_bitrot_wal : int;  (** at-rest WAL byte flips injected *)
  injected_bitrot_cp : int;  (** checkpoint-image byte flips injected *)
  injected_fsync_lie : int;  (** lying fsyncs (acked bytes zeroed) *)
  faults_detected : int;
      (** noticed (scrub / ship verify / recovery) but not yet fixed *)
  faults_repaired : int;  (** clean bytes restored in place *)
  faults_quarantined : int;  (** corrupt ranges dropped, never served *)
  faults_expunged : int;
      (** left the system unread (truncated behind a checkpoint, or the
          whole store was abandoned at failover) *)
  faults_outstanding : int;
      (** injected and never noticed — any nonzero value is silent
          corruption, and the [no_silent_corruption] chaos invariant
          fails the run *)
  scrub_passes : int;
  scrub_bytes : int;  (** durable bytes re-read and re-verified *)
  wal_corruptions : int;  (** corrupt WAL ranges the scrubber found *)
  cp_corruptions : int;  (** checkpoint slots that failed their CRC *)
  repaired_replica : int;  (** ranges healed by replica re-fetch *)
  repaired_checkpoint : int;  (** repairs via emergency checkpoint *)
  scrub_salvaged_bytes : int;  (** bytes spliced back from replicas *)
  scrub_expunged_bytes : int;
      (** log bytes whose redo capability the checkpoint rung destroyed
          (the whole truncated span, not just the rotten ranges) *)
  cp_fallbacks : int;
      (** recoveries that skipped a CRC-failing slot for an older one *)
  salvaged_ranges : int;  (** corrupt ranges found during recovery redo *)
  salvaged_bytes : int;  (** bytes replica-fetched during recovery *)
  quarantined_bytes : int;
      (** log tail dropped by recovery when no replica could serve;
          the audit repairs whatever the lost records maintained *)
  orphan_merges : int;
      (** orphan [Uq_merge] records re-rooted as synthetic enqueues
          instead of refusing recovery *)
  disk_fulls : int;  (** appends refused by the capacity clamp *)
  lied_bytes : int;  (** acked bytes silently zeroed by lying fsyncs *)
  ship_verify_skips : int;
      (** outgoing segments cut at a corrupt frame by ship-time
          verification (rot never propagates to replicas) *)
  salvage_s : float;
      (** modeled seconds charged to scrubbing, salvage and quarantine *)
  final_clean : bool;
      (** end of run: the durable WAL frame chain verifies end-to-end and
          every retained checkpoint slot passes its CRC — the
          [salvage_converges] chaos invariant *)
}

(** One shard primary's slice of a sharded run. *)
type shard_row = {
  sh_id : int;
  sh_updates : int;
  sh_recomputes : int;
  sh_firings : int;
  sh_partials_out : int;  (** weighted partials this shard emitted *)
  sh_offered : int;  (** arrivals offered to this shard's queue *)
  sh_duplicates : int;  (** resends the [(src, seq)] dedup collapsed *)
  sh_merged : int;  (** arrivals folded into a pending entry *)
  sh_applied : int;  (** merged entries applied and released *)
  sh_crashes : int;
  sh_final_lsn : int;  (** shard WAL durable end *)
}

type shard_metrics = {
  n_shards : int;
  sh_rows : shard_row list;
  sh_msgs : int;  (** shard-to-shard messages sent (partials + acks) *)
  sh_bytes : int;
  sh_partials : int;  (** first ships *)
  sh_acks : int;
  sh_reships : int;  (** resends past the ack deadline *)
  sh_recovery_s : float;  (** downtime summed over shard restarts *)
  cross_checks : int;
      (** composites compared by the cross-shard audit (recomputed from
          all shards' base tables against the owners' maintained rows) *)
  cross_divergences : int;  (** comparisons beyond tolerance *)
}

type metrics = {
  label : string;
  delay : float;
  duration_s : float;
  servers : int;
  makespan_s : float;
      (** simulated instant the last task finished (includes any backlog
          drained after the feed ends) *)
  recompute_throughput_per_s : float;
      (** n_recompute / makespan — the quantity the server sweep improves *)
  per_server_utilization : float list;
      (** busy fraction of each executor over the makespan (unlike
          [utilization], the paper's offered-load cpu%, which is
          normalized by the feed duration and can exceed 100% under
          overload) *)
  n_lock_waits : int;  (** park → wake episodes on lock conflicts *)
  n_lock_timeouts : int;  (** waits presumed deadlocked and retried *)
  lock_wait_s : Strip_obs.Histogram.summary option;
      (** park → wake wait distribution (seconds); [None] when no task
          ever waited *)
  utilization : float;  (** fraction of the simulated CPU consumed *)
  n_updates : int;
  n_recompute : int;  (** the paper's N_r *)
  mean_recompute_us : float;
  p50_recompute_us : float;
  p90_recompute_us : float;
  p99_recompute_us : float;
  max_recompute_us : float;
  busy_update_s : float;
  busy_recompute_s : float;
  n_firings : int;
  n_merges : int;
  context_switches : int;
  expected_fanout : float;
      (** E[derived rows touched per update] for the chosen view *)
  verified : bool option;  (** [None] when verification was off *)
  max_abs_error : float;
  n_injected : int;  (** faults fired by the injector *)
  n_aborts : int;  (** task transactions that failed *)
  n_retries : int;  (** failed tasks re-enqueued with backoff *)
  n_sheds : int;  (** tasks shed by overload control *)
  n_dead_letters : int;  (** tasks whose retry budget ran out *)
  mean_recovery_s : float;
      (** mean first-failure → eventual-success latency (0 if none) *)
  staleness : (string * Strip_obs.Histogram.summary) list;
      (** per-derived-table staleness distribution (seconds), sampled at
          the commit of each maintenance transaction; sorted by table *)
  registry : Strip_obs.Metrics.row list;
      (** full metrics-registry snapshot taken after the run drained *)
  recovery : recovery_metrics option;
      (** present iff the run had a [recovery] config.  Count-type fields
          above accumulate across crash epochs; distributions (percentiles,
          histograms, staleness, registry) cover the final epoch only. *)
  repl : repl_metrics option;
      (** present iff the run had a [repl] config; cluster-owned counters
          survive failover epochs. *)
  storage : storage_metrics option;
      (** present iff the run had a [storage] config (explicit or implied
          by storage chaos events); the fault ledger is unioned over
          every durable store the run touched, including stores abandoned
          at failover. *)
  shard : shard_metrics option;
      (** present iff the run went through the sharded write path
          ({!Shard_exp}); count fields elsewhere in this record then sum
          over all shard primaries (crashed incarnations included), while
          distributions cover each shard's final incarnation. *)
  slo : Strip_obs.Slo.view_report list;
      (** per-view staleness SLO verdicts; empty unless the run had an
          [slo] config *)
  trace_spans : (string * int * int) list;
      (** [(node, buffered, dropped)] per traced span buffer, primary
          first; empty unless tracing was on *)
  cluster_traces : (string * Strip_obs.Trace.t) list;
      (** per-node span buffers for a merged cluster export
          ({!Strip_obs.Trace.merge_chrome_json}), primary first; empty
          unless the run was both traced and replicated *)
}

val run : config -> metrics
(** The single-primary driver; ignores [config.shard] (use
    {!Shard_exp.dispatch} to honour it). *)

val verify_tolerance : rule_choice -> float
(** Comparison tolerance: composites accumulate float increments;
    options are recomputed exactly. *)

(** {1 Shared driver machinery}

    Exposed for {!Shard_exp}, which assembles the same {!metrics} record
    from N shard primaries. *)

val label_of : rule_choice -> string

val max_error : (string * float) list -> (string * float) list -> float
(** Worst absolute difference between two sorted [(name, value)]
    association lists; [infinity] on a key or cardinality mismatch. *)

val merged_summary :
  Strip_obs.Histogram.t list -> Strip_obs.Histogram.summary option
(** Merge per-node histograms into one cluster-level summary row; [None]
    when the merged histogram is empty.  Folds any number of lineages —
    one primary plus its crash epochs, or N shard primaries. *)

val mk_db :
  ?now:float ->
  ?durable:Strip_txn.Durable.t ->
  ?fault:Strip_txn.Fault.config ->
  config ->
  Strip_core.Strip_db.t
(** One database instance wired per the config (cost model, servers,
    fault injector, observability); crashy drivers call it for every
    incarnation against the same durable store. *)

(** Counters accumulated across the instances a crashy (or sharded) run
    burns through — a final instance's {!Strip_sim.Stats} only covers
    its own epoch.  Histograms and percentiles are not mergeable and
    stay per-instance ([a_lock_h] is the exception: dead instances'
    lock waits, merged for the cluster-wide row). *)
type acc = {
  mutable a_updates : int;
  mutable a_recompute : int;
  mutable a_firings : int;
  mutable a_merges : int;
  mutable a_injected : int;
  mutable a_aborts : int;
  mutable a_retries : int;
  mutable a_sheds : int;
  mutable a_dead : int;
  mutable a_ctxsw : int;
  mutable a_lock_waits : int;
  mutable a_lock_timeouts : int;
  mutable a_busy_update_us : float;
  mutable a_busy_recompute_us : float;
  a_lock_h : Strip_obs.Histogram.t;
}

val zero_acc : unit -> acc

val accumulate : acc -> Strip_core.Strip_db.t -> unit
(** Fold one instance's engine stats, rule-manager counters and fault
    injections into [acc]. *)
