open Strip_relational
open Strip_txn
open Strip_sim
open Strip_core
module Trace = Strip_obs.Trace

type read_policy = Any | Bounded_staleness of float | Primary_only

let policy_string = function
  | Any -> "any"
  | Bounded_staleness s -> Printf.sprintf "bounded:%g" s
  | Primary_only -> "primary"

type config = {
  n_replicas : int;
  link : Link.config;
  ship_every : float;
  read_policy : read_policy;
  read_rate : float;
  read_cost_s : float;
  seed : int;
}

let default_config =
  {
    n_replicas = 1;
    link = Link.default_config;
    ship_every = 0.05;
    read_policy = Any;
    read_rate = 0.0;
    read_cost_s = 0.0;
    seed = 11;
  }

type t = {
  cfg : config;
  mutable primary : Strip_db.t;
  replicas : Replica.t array;
  links : Link.t array;
  sent_end : int array;  (* per replica: durable end covered by sends *)
  read_table : string;
  read_key_col : string;
  read_keys : string array;
  read_until : float;
  rng : Random.State.t;
  mutable rr : int;  (* round-robin cursor *)
  mutable issued : int;
  mutable rd_primary : int;
  mutable rd_replica : int;
  read_lat : Strip_obs.Histogram.t;
  mutable primary_busy : float;
  mutable last_done : float;
  mutable failovers : int;
  mutable lost : int;
  mutable epoch : int;  (* current primary term, bumped at every election *)
  mutable history : (int * int) list;  (* (epoch, primary id), newest first *)
  mutable fenced : int;  (* bytes discarded from deposed primaries' tails *)
  mutable partitions : int;
  (* A partitioned-but-alive old primary awaiting its fencing at heal:
     the db handle, the term it was deposed from, and the elected
     winner's applied LSN at promotion (the fencing point). *)
  mutable isolated : (Strip_db.t * int * int) option;
  mutable ship_skips : int;
      (* shipped segments cut short by ship-time verification *)
}

let primary_durable t =
  match Strip_db.durable t.primary with
  | Some d -> d
  | None -> invalid_arg "Cluster: primary has no durability layer"

(* The image replicas are (re-)seeded from.  Under storage-fault
   injection the newest slot may have rotted, so pick the newest slot
   that still verifies; fault-free stores behave exactly as before. *)
let seed_image d =
  if Durable.media_armed d then
    Option.map
      (fun (image, lsn, time, _) -> (image, lsn, time))
      (Durable.verified_slot d)
  else
    Option.map
      (fun image -> (image, Durable.snapshot_lsn d, Durable.snapshot_time d))
      (Durable.snapshot d)

let create ?(trace_for = fun _ -> None) cfg ~primary ~read_table ~read_key_col
    ~read_keys ~read_until =
  if cfg.n_replicas < 0 then invalid_arg "Cluster.create: n_replicas < 0";
  let replicas, snap_lsn =
    if cfg.n_replicas = 0 then ([||], 0)
    else begin
      let d =
        match Strip_db.durable primary with
        | Some d -> d
        | None ->
          invalid_arg "Cluster.create: replicas need a durable primary"
      in
      let image, lsn, time =
        match seed_image d with
        | Some s -> s
        | None -> invalid_arg "Cluster.create: no checkpoint to bootstrap from"
      in
      ( Array.init cfg.n_replicas (fun i ->
            Replica.bootstrap ?trace:(trace_for i) ~id:i ~image ~lsn ~time ()),
        lsn )
    end
  in
  {
    cfg;
    primary;
    replicas;
    links = Array.init cfg.n_replicas (fun i -> Link.create ~id:i cfg.link);
    sent_end = Array.make (max 1 cfg.n_replicas) snap_lsn;
    read_table;
    read_key_col;
    read_keys;
    read_until;
    rng = Random.State.make [| cfg.seed; 0x7ead |];
    rr = 0;
    issued = 0;
    rd_primary = 0;
    rd_replica = 0;
    read_lat = Strip_obs.Histogram.create ();
    primary_busy = 0.0;
    last_done = 0.0;
    failovers = 0;
    lost = 0;
    epoch = 1;
    history = [ (1, -1) ];  (* the founding primary is node -1 *)
    fenced = 0;
    partitions = 0;
    isolated = None;
    ship_skips = 0;
  }

let primary t = t.primary
let n_replicas t = Array.length t.replicas
let replica t i = t.replicas.(i)
let link t i = t.links.(i)
let epoch t = t.epoch
let epoch_history t = List.rev t.history

let drain_one t i ~now =
  let rec go () =
    match Link.pop_arrived t.links.(i) ~now with
    | Some m ->
      Replica.receive t.replicas.(i) m;
      go ()
    | None -> ()
  in
  go ()

let drain_all t ~now =
  Array.iteri (fun i _ -> drain_one t i ~now) t.replicas

(* ------------------------------------------------------------------ *)
(* Shipping.                                                           *)

(* One shipping round from [db]'s durable log in term [epoch], tracking
   what has been covered in [cursor].  The live chain ships the cluster
   primary with the shared [t.sent_end] cursor; a deposed primary's chain
   (still running on its own engine during a partition) keeps shipping its
   own divergent log in its old term through a private cursor, so it can
   neither corrupt the live chain's bookkeeping nor — thanks to epoch
   fencing at the replicas and epoch-tagged partition windows on the
   links — rewrite anyone's state. *)
let ship_tick_from t ~db ~cursor ~epoch ~now =
  let d =
    match Strip_db.durable db with
    | Some d -> d
    | None -> invalid_arg "Cluster: shipping source has no durability layer"
  in
  let tr = Strip_db.trace db in
  (* Epoch-stamped ship events land in the shipping node's own buffer, so
     a merged cluster trace shows which term each segment left under. *)
  let trace_ship ~replica ~from_lsn ~bytes name =
    match tr with
    | None -> ()
    | Some tr ->
      Trace.instant tr ~ts:now ~tid:Trace.tid_background
        ~args:
          [
            ("replica", Trace.Int replica);
            ("from_lsn", Trace.Int from_lsn);
            ("bytes", Trace.Int bytes);
            ("epoch", Trace.Int epoch);
          ]
        name
  in
  let pwal = Durable.wal d in
  let base = Wal.base_lsn pwal and dend = Wal.durable_end pwal in
  Array.iteri
    (fun i r ->
      drain_one t i ~now;
      Meter.tick "repl_ship_segment";
      let applied = Replica.applied_lsn r in
      if applied < base then begin
        (* The primary truncated past this replica: re-seed it with the
           current checkpoint image over the same link. *)
        match seed_image d with
        | Some (image, lsn, time) ->
          Link.send ~epoch t.links.(i) ~now
            (Link.Bootstrap { image; lsn; time });
          trace_ship ~replica:i ~from_lsn:lsn ~bytes:(String.length image)
            "ship_bootstrap";
          cursor.(i) <- lsn
        | None -> ()
      end
      else begin
        (* Resend from the replica's observed frontier if what we already
           shipped has not landed after a full period (drop recovery);
           otherwise ship only the new tail. *)
        let from = if applied < cursor.(i) then applied else cursor.(i) in
        let from = max base (min from dend) in
        if from < dend then begin
          let bytes = Wal.durable_slice pwal ~from_lsn:from in
          (* Ship-time verification: never propagate rot.  A corrupt
             frame in the outgoing slice cuts the segment down to its
             clean prefix; the cursor stays at the corruption point so
             the tail is retried after the scrubber (or recovery) has
             repaired it. *)
          let bytes, upto =
            if not (Durable.media_armed d) then (bytes, dend)
            else
              let rd = Wal.scan_bytes ~base:from bytes in
              match
                match rd.Wal.corrupt_at with
                | Some _ as c -> c
                | None -> rd.Wal.torn_at
              with
              | None -> (bytes, dend)
              | Some l ->
                t.ship_skips <- t.ship_skips + 1;
                Durable.note_wal_detected d ~lsn:l ~len:1;
                (String.sub bytes 0 (l - from), l)
          in
          if String.length bytes > 0 then begin
            Link.send ~epoch t.links.(i) ~now
              (Link.Segment { from_lsn = from; bytes });
            trace_ship ~replica:i ~from_lsn:from ~bytes:(upto - from)
              "ship_segment"
          end;
          cursor.(i) <- upto
        end
        else
          (* Nothing new: a heartbeat advances the freshness horizon
             (no trace event — heartbeats would flood the ring). *)
          Link.send ~epoch t.links.(i) ~now
            (Link.Segment { from_lsn = dend; bytes = "" })
      end)
    t.replicas

let ship_tick t ~now =
  ship_tick_from t ~db:t.primary ~cursor:t.sent_end ~epoch:t.epoch ~now

(* ------------------------------------------------------------------ *)
(* Salvage source.                                                     *)

(* Serve [len] clean bytes at [from_lsn] from any replica whose log copy
   covers the range.  Replicas hold byte-identical copies of the shipped
   log (ship-time verification keeps rot out of the wire), so a covering
   slice that still frames cleanly is exactly the bytes the primary lost
   to media corruption. *)
let fetch_clean t ~from_lsn ~len =
  if len <= 0 then None
  else begin
    let found = ref None in
    Array.iter
      (fun r ->
        if !found = None then begin
          let rwal = Durable.wal (Replica.durable r) in
          if
            Wal.base_lsn rwal <= from_lsn
            && from_lsn + len <= Wal.durable_end rwal
          then begin
            let bytes =
              String.sub (Wal.durable_slice rwal ~from_lsn) 0 len
            in
            let rd = Wal.scan_bytes ~base:from_lsn bytes in
            if
              rd.Wal.corrupt_at = None
              && rd.Wal.torn_at = None
              && rd.Wal.records <> []
            then found := Some bytes
          end
        end)
      t.replicas;
    (match !found with
    | Some _ -> Meter.tick "repl_salvage_served"
    | None -> ());
    !found
  end

let schedule_shipping t ~until =
  if Array.length t.replicas = 0 then ()
  else begin
    if t.cfg.ship_every <= 0.0 then
      invalid_arg "Cluster.schedule_shipping: period <= 0";
    (* The chain belongs to the node that scheduled it, not to whoever is
       primary when a tick fires: after a failover the deposed node's
       surviving chain keeps shipping its own log in its frozen term
       through a private cursor (split brain, contained by fencing). *)
    let owner = t.primary in
    let owner_epoch = t.epoch in
    let stale_cursor = lazy (Array.copy t.sent_end) in
    let eng = Strip_db.engine owner in
    let clk = Strip_db.clock owner in
    let rec make at =
      Task.create ~klass:Task.Background ~func_name:"repl_ship"
        ~release_time:at ~created_at:(Clock.now clk) (fun _task ->
          (if t.primary == owner then ship_tick t ~now:(Clock.now clk)
           else
             ship_tick_from t ~db:owner ~cursor:(Lazy.force stale_cursor)
               ~epoch:owner_epoch ~now:(Clock.now clk));
          let next = at +. t.cfg.ship_every in
          if next <= until then Engine.submit eng (make next))
    in
    let first = Clock.now clk +. t.cfg.ship_every in
    if first <= until then Engine.submit eng (make first)
  end

(* ------------------------------------------------------------------ *)
(* Reads.                                                              *)

let next_read_time t =
  if t.cfg.read_rate <= 0.0 then None
  else
    let tr = float_of_int (t.issued + 1) /. t.cfg.read_rate in
    if tr <= t.read_until then Some tr else None

let route t ~now =
  let n = Array.length t.replicas in
  match t.cfg.read_policy with
  | Primary_only -> `Primary
  | Any ->
    if n = 0 then `Primary
    else begin
      let k = t.rr mod (n + 1) in
      t.rr <- t.rr + 1;
      if k = 0 then `Primary else `Replica t.replicas.(k - 1)
    end
  | Bounded_staleness bound ->
    let eligible =
      Array.to_list t.replicas
      |> List.filter (fun r -> Replica.staleness r ~now < bound)
    in
    (match eligible with
    | [] -> `Primary
    | _ ->
      let k = t.rr mod List.length eligible in
      t.rr <- t.rr + 1;
      `Replica (List.nth eligible k))

let serve_read t ~now =
  drain_all t ~now;
  t.issued <- t.issued + 1;
  let target = route t ~now in
  let key = t.read_keys.(Random.State.int t.rng (Array.length t.read_keys)) in
  let sql =
    Printf.sprintf "select * from %s where %s = '%s'" t.read_table
      t.read_key_col key
  in
  let cat =
    match target with
    | `Primary -> Strip_db.catalog t.primary
    | `Replica r -> Replica.catalog r
  in
  let before = Meter.snapshot () in
  ignore (Sql_exec.exec_string cat ~env:[] sql);
  let after = Meter.snapshot () in
  let cost = Engine.cost_model (Strip_db.engine t.primary) in
  let service =
    (1e-6 *. Cost_model.charge_span cost ~before ~after) +. t.cfg.read_cost_s
  in
  let busy =
    match target with
    | `Primary -> t.primary_busy
    | `Replica r -> Replica.busy_until r
  in
  let start = Float.max now busy in
  let fin = start +. service in
  (match target with
  | `Primary ->
    t.primary_busy <- fin;
    t.rd_primary <- t.rd_primary + 1
  | `Replica r ->
    Replica.set_busy_until r fin;
    Replica.incr_reads r;
    t.rd_replica <- t.rd_replica + 1);
  Strip_obs.Histogram.add t.read_lat (fin -. now);
  t.last_done <- Float.max t.last_done fin

(* ------------------------------------------------------------------ *)
(* Failover.                                                           *)

type promotion = {
  promoted : int;
  promoted_lsn : int;
  lost_bytes : int;
  epoch : int;
}

let elect t =
  let best = ref 0 in
  Array.iteri
    (fun i r ->
      if Replica.applied_lsn r > Replica.applied_lsn t.replicas.(!best) then
        best := i)
    t.replicas;
  t.replicas.(!best)

(* The election bumps the term and every voter adopts it, so any later
   traffic from a deposed primary (still stamped with the old term) is
   fenced at the replicas. *)
let open_epoch (t : t) ~winner_id =
  t.epoch <- t.epoch + 1;
  t.history <- (t.epoch, winner_id) :: t.history;
  Array.iter (fun r -> Replica.note_epoch r t.epoch) t.replicas

let trace_promote t ~now ~(p : promotion) name =
  match Strip_db.trace t.primary with
  | None -> ()
  | Some tr ->
    Trace.instant tr ~ts:now ~tid:Trace.tid_engine
      ~args:
        [
          ("promoted", Trace.Int p.promoted);
          ("promoted_lsn", Trace.Int p.promoted_lsn);
          ("lost_bytes", Trace.Int p.lost_bytes);
          ("epoch", Trace.Int p.epoch);
        ]
      name

let promote t ~now ~mk_db ~reinstall =
  if Array.length t.replicas = 0 then begin
    (* Graceful degradation: with no replica to elect, fall back to
       crash-restart recovery from the dead primary's own durable store —
       the same path an unreplicated run takes — instead of refusing. *)
    let dur = primary_durable t in
    let promoted_lsn = Wal.durable_end (Durable.wal dur) in
    let ndb = mk_db dur in
    let rs =
      Recovery.recover ndb
        ~salvage:(fun ~from_lsn ~len -> fetch_clean t ~from_lsn ~len)
        ~reinstall:(fun () -> reinstall ndb)
    in
    t.primary <- ndb;
    open_epoch t ~winner_id:(-1);
    let p = { promoted = -1; promoted_lsn; lost_bytes = 0; epoch = t.epoch } in
    trace_promote t ~now ~p "promote";
    (ndb, rs, p)
  end
  else begin
    (* Everything already delivered counts; bytes on the wire die with the
       primary's connections. *)
    drain_all t ~now;
    Array.iter Link.clear_in_flight t.links;
    let winner = elect t in
    let promoted_lsn = Replica.applied_lsn winner in
    let old_end = Wal.durable_end (Durable.wal (primary_durable t)) in
    let lost_bytes = max 0 (old_end - promoted_lsn) in
    let ndb = mk_db (Replica.durable winner) in
    let rs =
      Recovery.recover ndb
        ~salvage:(fun ~from_lsn ~len -> fetch_clean t ~from_lsn ~len)
        ~reinstall:(fun () -> reinstall ndb)
    in
    t.primary <- ndb;
    t.failovers <- t.failovers + 1;
    t.lost <- t.lost + lost_bytes;
    open_epoch t ~winner_id:(Replica.id winner);
    let p =
      {
        promoted = Replica.id winner;
        promoted_lsn;
        lost_bytes;
        epoch = t.epoch;
      }
    in
    trace_promote t ~now ~p "promote";
    (ndb, rs, p)
  end

let begin_partition t ~now ~heal_at =
  if heal_at <= now then invalid_arg "Cluster.begin_partition: empty window";
  t.partitions <- t.partitions + 1;
  Array.iter
    (fun l ->
      Link.add_partition_window ~only_epoch:t.epoch l ~from_s:now
        ~until_s:heal_at)
    t.links

let promote_isolated t ~now ~mk_db ~reinstall =
  if Array.length t.replicas = 0 then
    invalid_arg "Cluster.promote_isolated: no replicas";
  (* The old primary is alive behind the partition: messages it launched
     before the cut still arrive (so drain, but keep the wire), and no
     byte is lost yet — its divergent tail is fenced when the partition
     heals, not counted as promotion loss. *)
  drain_all t ~now;
  let old_db = t.primary and old_epoch = t.epoch in
  let winner = elect t in
  let promoted_lsn = Replica.applied_lsn winner in
  let ndb = mk_db (Replica.durable winner) in
  let rs =
    Recovery.recover ndb
      ~salvage:(fun ~from_lsn ~len -> fetch_clean t ~from_lsn ~len)
      ~reinstall:(fun () -> reinstall ndb)
  in
  t.primary <- ndb;
  t.failovers <- t.failovers + 1;
  open_epoch t ~winner_id:(Replica.id winner);
  t.isolated <- Some (old_db, old_epoch, promoted_lsn);
  let p =
    {
      promoted = Replica.id winner;
      promoted_lsn;
      lost_bytes = 0;
      epoch = t.epoch;
    }
  in
  trace_promote t ~now ~p "promote_isolated";
  (ndb, rs, p)

let heal t ~now =
  match t.isolated with
  | None -> 0
  | Some (old_db, old_epoch, promoted_lsn) ->
    t.isolated <- None;
    (match Strip_db.durable old_db with
    | None -> 0
    | Some od ->
      let owal = Durable.wal od in
      (* On healing, the deposed primary announces itself once more in its
         frozen term; every replica fences the message, which is how the
         old primary discovers the higher epoch.  It then discards its
         unshipped tail — everything it committed past what the elected
         winner had applied — and rejoins as a replica (the winner's
         vacated slot, re-seeded by {!resume}). *)
      Array.iteri
        (fun i _ ->
          Link.send ~epoch:old_epoch t.links.(i) ~now
            (Link.Segment { from_lsn = Wal.durable_end owal; bytes = "" }))
        t.replicas;
      let fenced = max 0 (Wal.durable_end owal - promoted_lsn) in
      t.fenced <- t.fenced + fenced;
      (match Strip_db.trace t.primary with
      | None -> ()
      | Some tr ->
        Trace.instant tr ~ts:now ~tid:Trace.tid_engine
          ~args:
            [
              ("old_epoch", Trace.Int old_epoch);
              ("epoch", Trace.Int t.epoch);
              ("fenced_bytes", Trace.Int fenced);
            ]
          "heal");
      fenced)

let resume t ~now ~ship_until =
  let d = primary_durable t in
  (match seed_image d with
  | None -> ()
  | Some (image, lsn, time) ->
    Array.iteri
      (fun i r ->
        Replica.rebootstrap r ~image ~lsn ~time;
        Replica.note_epoch r t.epoch;
        t.sent_end.(i) <- lsn)
      t.replicas);
  (* Reads routed to the primary during the outage queue behind it. *)
  t.primary_busy <- Float.max t.primary_busy now;
  Stats.record_failover (Strip_db.stats t.primary);
  schedule_shipping t ~until:ship_until

let final_sync t ~now =
  if Array.length t.replicas > 0 then begin
    let d = primary_durable t in
    let pwal = Durable.wal d in
    Array.iteri
      (fun i r ->
        let rec go () =
          match Link.pop_arrived t.links.(i) ~now:infinity with
          | Some m ->
            Replica.receive r m;
            go ()
          | None -> ()
        in
        go ();
        (if Replica.applied_lsn r < Wal.base_lsn pwal then
           match seed_image d with
           | Some (image, lsn, time) -> Replica.rebootstrap r ~image ~lsn ~time
           | None -> ());
        if Replica.applied_lsn r < Wal.durable_end pwal then
          Replica.ingest r
            (Wal.durable_slice pwal ~from_lsn:(Replica.applied_lsn r))
            ~horizon:now)
      t.replicas
  end

(* ------------------------------------------------------------------ *)
(* Accounting.                                                         *)

let n_failovers t = t.failovers
let ship_verify_skips t = t.ship_skips
let lost_bytes_total t = t.lost
let fenced_bytes_total t = t.fenced
let n_partitions t = t.partitions
let reads_issued t = t.issued
let reads_primary t = t.rd_primary
let reads_replica t = t.rd_replica
let read_latency t = t.read_lat
let last_read_done t = t.last_done

let sum f t = Array.fold_left (fun a l -> a + f l) 0 t.links
let segments_sent t = sum Link.n_sent t
let segments_dropped t = sum Link.n_dropped t
let partition_drops_total t = sum Link.n_partition_drops t
let bytes_shipped t = sum Link.bytes_sent t
let fenced_messages_total t =
  Array.fold_left (fun a r -> a + Replica.n_fenced r) 0 t.replicas

let register_metrics t reg =
  let module M = Strip_obs.Metrics in
  M.probe_int reg "repl_replicas" (fun () -> Array.length t.replicas);
  M.probe_int reg "repl_failovers_total" (fun () -> t.failovers);
  M.probe_int reg "repl_lost_bytes_total" (fun () -> t.lost);
  M.probe_int reg "repl_epoch" (fun () -> t.epoch);
  M.probe_int reg "repl_fenced_bytes_total" (fun () -> t.fenced);
  M.probe_int reg "repl_partitions_total" (fun () -> t.partitions);
  M.probe_int reg "repl_partition_drops_total" (fun () ->
      partition_drops_total t);
  M.probe_int reg "repl_fenced_messages_total" (fun () ->
      fenced_messages_total t);
  M.probe_int reg "repl_reads_primary_total" (fun () -> t.rd_primary);
  M.probe_int reg "repl_reads_replica_total" (fun () -> t.rd_replica);
  M.probe_hist reg "repl_read_latency_s" (fun () -> t.read_lat);
  (match Strip_db.durable t.primary with
  | Some d when Durable.media_armed d ->
    M.probe_int reg "repl_ship_verify_skips_total" (fun () -> t.ship_skips)
  | _ -> ());
  M.probe_int reg "repl_segments_sent_total" (fun () -> segments_sent t);
  M.probe_int reg "repl_segments_dropped_total" (fun () -> segments_dropped t);
  M.probe_int reg "repl_bytes_shipped_total" (fun () -> bytes_shipped t);
  M.probe_family reg "repl_applied_lsn" (fun () ->
      Array.to_list
        (Array.map
           (fun r ->
             ( [ ("replica", string_of_int (Replica.id r)) ],
               M.Sample_int (Replica.applied_lsn r) ))
           t.replicas));
  M.probe_family reg "repl_lag_s" (fun () ->
      Array.to_list
        (Array.map
           (fun r ->
             ( [ ("replica", string_of_int (Replica.id r)) ],
               M.Sample_hist (Replica.lag r) ))
           t.replicas))
