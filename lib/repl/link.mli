(** Simulated primary→replica shipping link.

    Messages experience a fixed one-way latency plus a serialization
    delay proportional to their size, and are dropped independently with
    a configurable probability from a seeded generator — the same
    deterministic-fault philosophy as {!Strip_txn.Fault}.  Delivery is by
    arrival time (ties broken by send order), so a large segment can be
    overtaken by a later small one: receivers must tolerate reordering
    and, because the shipper resends optimistically, duplication. *)

type config = {
  latency_s : float;  (** one-way propagation delay *)
  bandwidth_bps : float;
      (** serialization rate, bytes per simulated second
          ([infinity] disables the size-dependent term) *)
  drop_rate : float;  (** independent per-message loss probability *)
  seed : int;  (** per-link RNG seed (combined with the replica id) *)
}

val default_config : config
(** 20 ms latency, 10 MB/s, no drops, seed 7. *)

type payload =
  | Segment of { from_lsn : int; bytes : string }
      (** Framed WAL bytes [[from_lsn, from_lsn + length bytes)].  Empty
          [bytes] is a heartbeat: "the primary's durable log ended at
          [from_lsn] when this was sent". *)
  | Bootstrap of { image : string; lsn : int; time : float }
      (** A full checkpoint image for a replica that fell behind the
          primary's truncation horizon (or is joining mid-stream). *)
  | Blob of string
      (** Opaque application bytes riding the same latency/bandwidth/drop
          model — the shard layer ships its encoded partial-delta and ack
          messages this way ({!Strip_shard.Partial}). *)

type message = {
  sent_at : float;
  arrives_at : float;
  seq : int;  (** send order, the arrival-time tie-break *)
  epoch : int;
      (** the sender's primary term; receivers fence anything below the
          highest epoch they have seen (0 = unstamped test traffic) *)
  payload : payload;
}

type t

val create : ?id:int -> config -> t
(** [id] perturbs the seed so each replica's link drops independently. *)

val send : ?epoch:int -> t -> now:float -> payload -> unit
(** Enqueue a message; it may be dropped (never delivered).  [epoch]
    (default 0) stamps the sender's term into the message and selects
    which partition windows apply to it. *)

val pop_arrived : t -> now:float -> message option
(** Earliest message with [arrives_at <= now], removed; [None] if none. *)

val clear_in_flight : t -> unit
(** Drop every undelivered message — the sender died mid-flight. *)

(** {1 Chaos: partitions and drop bursts}

    Windows are half-open [[from_s, until_s)] intervals over {e send}
    time.  A message sent inside a partition window is silently
    discarded, modelling an isolated sender (asymmetry comes free: each
    link is unidirectional, so partitioning primary→replica links leaves
    any other direction untouched).  Windows tagged with an epoch only
    isolate that term's sender — after a failover promotion the fenced
    old primary stays cut off while the new primary's traffic flows over
    the same links. *)

val add_partition_window : ?only_epoch:int -> t -> from_s:float -> until_s:float -> unit
(** Sends in [[from_s, until_s)] are discarded (and counted as partition
    drops); [only_epoch] restricts the window to one sender term. *)

val add_drop_burst : t -> from_s:float -> until_s:float -> rate:float -> unit
(** Raise the loss probability to [rate] inside the window (the
    configured base rate still applies outside, and whichever is higher
    wins inside).  The RNG stream is unchanged: bursts only reinterpret
    the same per-send draw. *)

val partitioned : t -> now:float -> epoch:int -> bool
(** Would a message sent at [now] in [epoch] be discarded by a window? *)

val random_windows :
  seed:int -> rate_per_s:float -> mean_s:float -> until:float ->
  (float * float) list
(** Deterministic open/heal intervals for seeded chaos schedules:
    exponential gaps at [rate_per_s] and exponential durations with mean
    [mean_s], clipped to [until].  Pure — install the result with
    {!add_partition_window}. *)

val n_sent : t -> int
val n_dropped : t -> int
val n_delivered : t -> int

val n_partition_drops : t -> int
(** Messages discarded by partition windows (not counted in
    {!n_dropped}, which remains random loss only). *)

val bytes_sent : t -> int
val in_flight : t -> int
