(** Simulated primary→replica shipping link.

    Messages experience a fixed one-way latency plus a serialization
    delay proportional to their size, and are dropped independently with
    a configurable probability from a seeded generator — the same
    deterministic-fault philosophy as {!Strip_txn.Fault}.  Delivery is by
    arrival time (ties broken by send order), so a large segment can be
    overtaken by a later small one: receivers must tolerate reordering
    and, because the shipper resends optimistically, duplication. *)

type config = {
  latency_s : float;  (** one-way propagation delay *)
  bandwidth_bps : float;
      (** serialization rate, bytes per simulated second
          ([infinity] disables the size-dependent term) *)
  drop_rate : float;  (** independent per-message loss probability *)
  seed : int;  (** per-link RNG seed (combined with the replica id) *)
}

val default_config : config
(** 20 ms latency, 10 MB/s, no drops, seed 7. *)

type payload =
  | Segment of { from_lsn : int; bytes : string }
      (** Framed WAL bytes [[from_lsn, from_lsn + length bytes)].  Empty
          [bytes] is a heartbeat: "the primary's durable log ended at
          [from_lsn] when this was sent". *)
  | Bootstrap of { image : string; lsn : int; time : float }
      (** A full checkpoint image for a replica that fell behind the
          primary's truncation horizon (or is joining mid-stream). *)

type message = {
  sent_at : float;
  arrives_at : float;
  seq : int;  (** send order, the arrival-time tie-break *)
  payload : payload;
}

type t

val create : ?id:int -> config -> t
(** [id] perturbs the seed so each replica's link drops independently. *)

val send : t -> now:float -> payload -> unit
(** Enqueue a message; it may be dropped (never delivered). *)

val pop_arrived : t -> now:float -> message option
(** Earliest message with [arrives_at <= now], removed; [None] if none. *)

val clear_in_flight : t -> unit
(** Drop every undelivered message — the sender died mid-flight. *)

val n_sent : t -> int
val n_dropped : t -> int
val n_delivered : t -> int
val bytes_sent : t -> int
val in_flight : t -> int
