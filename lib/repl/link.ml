type config = {
  latency_s : float;
  bandwidth_bps : float;
  drop_rate : float;
  seed : int;
}

let default_config =
  { latency_s = 0.02; bandwidth_bps = 10e6; drop_rate = 0.0; seed = 7 }

type payload =
  | Segment of { from_lsn : int; bytes : string }
  | Bootstrap of { image : string; lsn : int; time : float }
  | Blob of string
      (* opaque application bytes — the shard layer ships encoded
         partial-delta messages over the same simulated pipe *)

type message = {
  sent_at : float;
  arrives_at : float;
  seq : int;
  epoch : int;
  payload : payload;
}

(* A partition window blocks sends whose send time falls in
   [[w_from, w_until)]; [w_epoch = Some e] isolates only the node sending
   in epoch [e] (a fenced primary), [None] severs the link for everyone. *)
type window = { w_from : float; w_until : float; w_epoch : int option }

(* A drop burst raises the loss probability to [b_rate] inside the
   window — a flaky patch cable rather than a full partition. *)
type burst = { b_from : float; b_until : float; b_rate : float }

(* In-flight messages ordered by (arrives_at, seq). *)
module Mq = Set.Make (struct
  type t = float * int * message

  let compare (a1, s1, _) (a2, s2, _) =
    match Float.compare a1 a2 with 0 -> Int.compare s1 s2 | c -> c
end)

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable in_flight : Mq.t;
  mutable seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes : int;
  mutable windows : window list;
  mutable bursts : burst list;
  mutable partition_drops : int;
}

let create ?(id = 0) cfg =
  {
    cfg;
    rng = Random.State.make [| cfg.seed; id; 0x5ea |];
    in_flight = Mq.empty;
    seq = 0;
    sent = 0;
    dropped = 0;
    delivered = 0;
    bytes = 0;
    windows = [];
    bursts = [];
    partition_drops = 0;
  }

let add_partition_window ?only_epoch t ~from_s ~until_s =
  if until_s <= from_s then
    invalid_arg "Link.add_partition_window: empty window";
  t.windows <-
    { w_from = from_s; w_until = until_s; w_epoch = only_epoch } :: t.windows

let add_drop_burst t ~from_s ~until_s ~rate =
  if until_s <= from_s then invalid_arg "Link.add_drop_burst: empty window";
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Link.add_drop_burst: rate outside [0, 1]";
  t.bursts <- { b_from = from_s; b_until = until_s; b_rate = rate } :: t.bursts

let partitioned t ~now ~epoch =
  List.exists
    (fun w ->
      w.w_from <= now && now < w.w_until
      && match w.w_epoch with None -> true | Some e -> e = epoch)
    t.windows

let effective_drop_rate t ~now =
  List.fold_left
    (fun r b ->
      if b.b_from <= now && now < b.b_until then Float.max r b.b_rate else r)
    t.cfg.drop_rate t.bursts

(* Deterministic open/heal intervals for seeded chaos runs: exponential
   gaps at [rate_per_s] and exponential durations with mean [mean_s],
   drawn from a dedicated stream so the schedule depends only on the
   seed.  Pure — callers install the result via {!add_partition_window}. *)
let random_windows ~seed ~rate_per_s ~mean_s ~until =
  if rate_per_s <= 0.0 || mean_s <= 0.0 then []
  else begin
    let rng = Random.State.make [| seed; 0xf109; 0x77 |] in
    let exp mean = -.mean *. log1p (-.Random.State.float rng 1.0) in
    let rec go at acc =
      let start = at +. exp (1.0 /. rate_per_s) in
      if start >= until then List.rev acc
      else
        let stop = Float.min until (start +. exp mean_s) in
        go stop ((start, stop) :: acc)
    in
    go 0.0 []
  end

let payload_bytes = function
  | Segment { bytes; _ } -> String.length bytes
  | Bootstrap { image; _ } -> String.length image
  | Blob bytes -> String.length bytes

let send ?(epoch = 0) t ~now payload =
  let size = payload_bytes payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  (* Draw even for dropped and partitioned messages so the RNG stream
     depends only on the send sequence, keeping runs deterministic. *)
  let u = Random.State.float t.rng 1.0 in
  if partitioned t ~now ~epoch then
    t.partition_drops <- t.partition_drops + 1
  else if u < effective_drop_rate t ~now then t.dropped <- t.dropped + 1
  else begin
    let ser =
      if t.cfg.bandwidth_bps = infinity then 0.0
      else float_of_int size /. t.cfg.bandwidth_bps
    in
    let arrives_at = now +. t.cfg.latency_s +. ser in
    let seq = t.seq in
    t.seq <- t.seq + 1;
    let msg = { sent_at = now; arrives_at; seq; epoch; payload } in
    t.in_flight <- Mq.add (arrives_at, seq, msg) t.in_flight
  end

let pop_arrived t ~now =
  match Mq.min_elt_opt t.in_flight with
  | Some ((arrives_at, _, msg) as e) when arrives_at <= now +. 1e-12 ->
    t.in_flight <- Mq.remove e t.in_flight;
    t.delivered <- t.delivered + 1;
    Some msg
  | _ -> None

let clear_in_flight t = t.in_flight <- Mq.empty
let n_sent t = t.sent
let n_dropped t = t.dropped
let n_delivered t = t.delivered
let n_partition_drops t = t.partition_drops
let bytes_sent t = t.bytes
let in_flight t = Mq.cardinal t.in_flight
