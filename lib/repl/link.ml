type config = {
  latency_s : float;
  bandwidth_bps : float;
  drop_rate : float;
  seed : int;
}

let default_config =
  { latency_s = 0.02; bandwidth_bps = 10e6; drop_rate = 0.0; seed = 7 }

type payload =
  | Segment of { from_lsn : int; bytes : string }
  | Bootstrap of { image : string; lsn : int; time : float }

type message = {
  sent_at : float;
  arrives_at : float;
  seq : int;
  payload : payload;
}

(* In-flight messages ordered by (arrives_at, seq). *)
module Mq = Set.Make (struct
  type t = float * int * message

  let compare (a1, s1, _) (a2, s2, _) =
    match Float.compare a1 a2 with 0 -> Int.compare s1 s2 | c -> c
end)

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable in_flight : Mq.t;
  mutable seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes : int;
}

let create ?(id = 0) cfg =
  {
    cfg;
    rng = Random.State.make [| cfg.seed; id; 0x5ea |];
    in_flight = Mq.empty;
    seq = 0;
    sent = 0;
    dropped = 0;
    delivered = 0;
    bytes = 0;
  }

let payload_bytes = function
  | Segment { bytes; _ } -> String.length bytes
  | Bootstrap { image; _ } -> String.length image

let send t ~now payload =
  let size = payload_bytes payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  (* Draw even for dropped messages so the RNG stream depends only on the
     send sequence, keeping runs deterministic. *)
  let u = Random.State.float t.rng 1.0 in
  if u < t.cfg.drop_rate then t.dropped <- t.dropped + 1
  else begin
    let ser =
      if t.cfg.bandwidth_bps = infinity then 0.0
      else float_of_int size /. t.cfg.bandwidth_bps
    in
    let arrives_at = now +. t.cfg.latency_s +. ser in
    let seq = t.seq in
    t.seq <- t.seq + 1;
    let msg = { sent_at = now; arrives_at; seq; payload } in
    t.in_flight <- Mq.add (arrives_at, seq, msg) t.in_flight
  end

let pop_arrived t ~now =
  match Mq.min_elt_opt t.in_flight with
  | Some ((arrives_at, _, msg) as e) when arrives_at <= now +. 1e-12 ->
    t.in_flight <- Mq.remove e t.in_flight;
    t.delivered <- t.delivered + 1;
    Some msg
  | _ -> None

let clear_in_flight t = t.in_flight <- Mq.empty
let n_sent t = t.sent
let n_dropped t = t.dropped
let n_delivered t = t.delivered
let bytes_sent t = t.bytes
let in_flight t = Mq.cardinal t.in_flight
