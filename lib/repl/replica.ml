open Strip_relational
open Strip_txn
open Strip_core

type t = {
  rid : int;
  mutable cat : Catalog.t;
  mutable redo : Redo.t;
  mutable wal : Wal.t;
  mutable dur : Durable.t;
  mutable applied : int;
  mutable horizon_t : float;
  mutable epoch : int;  (* highest primary term seen; lower terms fence *)
  mutable pending : Link.message list;  (* out-of-order segments, buffered *)
  lag_h : Strip_obs.Histogram.t;
  mutable segments : int;
  mutable duplicates : int;
  mutable reordered : int;
  mutable bootstraps : int;
  mutable fenced : int;
  mutable commits : int;
  mutable ops : int;
  mutable busy : float;
  mutable reads : int;
}

let restore_image ~image ~lsn ~time =
  let cat = Catalog.create () in
  let cp = Checkpoint.decode image in
  Checkpoint.restore_tables cp cat;
  Meter.tick_n "repl_bootstrap_row" (Checkpoint.total_rows cp);
  let wal = Wal.create ~base_lsn:lsn () in
  let dur = Durable.create ~wal () in
  Durable.install_checkpoint dur ~encoded:image ~lsn ~time;
  (cat, wal, dur, cp.Checkpoint.taken_at)

let bootstrap ~id ~image ~lsn ~time =
  let cat, wal, dur, taken_at = restore_image ~image ~lsn ~time in
  {
    rid = id;
    cat;
    redo = Redo.create ~meter:"repl_apply_op" cat;
    wal;
    dur;
    applied = lsn;
    horizon_t = taken_at;
    epoch = 0;
    pending = [];
    lag_h = Strip_obs.Histogram.create ();
    segments = 0;
    duplicates = 0;
    reordered = 0;
    bootstraps = 0;
    fenced = 0;
    commits = 0;
    ops = 0;
    busy = 0.0;
    reads = 0;
  }

let rebootstrap t ~image ~lsn ~time =
  let cat, wal, dur, taken_at = restore_image ~image ~lsn ~time in
  t.cat <- cat;
  t.redo <- Redo.create ~meter:"repl_apply_op" cat;
  t.wal <- wal;
  t.dur <- dur;
  t.applied <- lsn;
  t.horizon_t <- max t.horizon_t taken_at;
  t.pending <- [];
  t.bootstraps <- t.bootstraps + 1

(* Decode and apply everything newly grafted onto the local log copy. *)
let apply_tail t =
  let rd = Wal.read_from t.wal ~lsn:t.applied in
  List.iter
    (fun (_lsn, record) ->
      match record with
      | Wal.Commit { ops; _ } ->
        t.commits <- t.commits + 1;
        t.ops <- t.ops + List.length ops;
        Redo.apply_commit t.redo ops
      | Wal.Uq_enqueue _ | Wal.Uq_merge _ | Wal.Uq_release _
      | Wal.Checkpoint_mark _ ->
        (* Queue transitions matter only at promotion, when Recovery
           rebuilds the pending queue from this same log copy. *)
        ())
    rd.Wal.records;
  t.applied <- Wal.durable_end t.wal

let ingest t bytes ~horizon =
  Wal.install_bytes t.wal bytes;
  apply_tail t;
  t.horizon_t <- max t.horizon_t horizon

let rec receive t (msg : Link.message) =
  (* Epoch fencing: a message from a lower term than the highest this
     replica has seen comes from a deposed primary — drop it outright so a
     partitioned-but-alive old primary can never rewrite a promoted
     timeline.  Higher terms are adopted on sight. *)
  if msg.Link.epoch < t.epoch then t.fenced <- t.fenced + 1
  else begin
    if msg.Link.epoch > t.epoch then t.epoch <- msg.Link.epoch;
    receive_unfenced t msg
  end

and receive_unfenced t (msg : Link.message) =
  match msg.Link.payload with
  | Link.Bootstrap { image; lsn; time } ->
    if lsn > t.applied then rebootstrap t ~image ~lsn ~time
    else t.duplicates <- t.duplicates + 1;
    retry_pending t
  | Link.Segment { from_lsn; bytes = "" } ->
    (* Heartbeat: the primary's durable log ended at [from_lsn] when this
       was sent.  If we have all of it, our state is fresh as of then. *)
    if from_lsn <= t.applied then
      t.horizon_t <- max t.horizon_t msg.Link.sent_at
  | Link.Segment { from_lsn; bytes } ->
    let end_ = from_lsn + String.length bytes in
    if end_ <= t.applied then begin
      (* Entirely old bytes — but still proof of freshness at send time. *)
      t.duplicates <- t.duplicates + 1;
      t.horizon_t <- max t.horizon_t msg.Link.sent_at
    end
    else if from_lsn > t.applied then begin
      (* A gap: an earlier segment was dropped or is still in flight. *)
      t.reordered <- t.reordered + 1;
      t.pending <- msg :: t.pending
    end
    else begin
      let skip = t.applied - from_lsn in
      ingest t
        (String.sub bytes skip (String.length bytes - skip))
        ~horizon:msg.Link.sent_at;
      t.segments <- t.segments + 1;
      Strip_obs.Histogram.add t.lag_h (msg.Link.arrives_at -. msg.Link.sent_at);
      retry_pending t
    end

and retry_pending t =
  (* Oldest (lowest seq) first so contiguous runs drain in one pass. *)
  let ready, still =
    List.partition
      (fun (m : Link.message) ->
        match m.Link.payload with
        | Link.Segment { from_lsn; bytes } ->
          from_lsn <= t.applied && from_lsn + String.length bytes > t.applied
        | Link.Bootstrap _ -> false)
      t.pending
  in
  match ready with
  | [] ->
    (* Drop buffered segments made obsolete by a bootstrap or duplicate. *)
    t.pending <-
      List.filter
        (fun (m : Link.message) ->
          match m.Link.payload with
          | Link.Segment { from_lsn; bytes } ->
            from_lsn + String.length bytes > t.applied
          | Link.Bootstrap _ -> false)
        still
  | _ ->
    let ready =
      List.sort (fun (a : Link.message) b -> Int.compare a.seq b.seq) ready
    in
    t.pending <- still;
    List.iter (receive t) ready

let id t = t.rid
let catalog t = t.cat
let durable t = t.dur
let applied_lsn t = t.applied
let horizon t = t.horizon_t
let epoch t = t.epoch
let note_epoch t e = if e > t.epoch then t.epoch <- e
let n_fenced t = t.fenced
let staleness t ~now = now -. t.horizon_t
let lag t = t.lag_h
let n_segments t = t.segments
let n_duplicates t = t.duplicates
let n_reordered t = t.reordered
let n_bootstraps t = t.bootstraps
let n_commits_applied t = t.commits
let n_ops_applied t = t.ops
let busy_until t = t.busy
let set_busy_until t v = t.busy <- v
let n_reads t = t.reads
let incr_reads t = t.reads <- t.reads + 1
