open Strip_relational
open Strip_txn
open Strip_core
module Trace = Strip_obs.Trace
module Span = Strip_obs.Span

type t = {
  rid : int;
  mutable cat : Catalog.t;
  mutable redo : Redo.t;
  mutable wal : Wal.t;
  mutable dur : Durable.t;
  mutable applied : int;
  mutable horizon_t : float;
  mutable epoch : int;  (* highest primary term seen; lower terms fence *)
  mutable pending : Link.message list;  (* out-of-order segments, buffered *)
  lag_h : Strip_obs.Histogram.t;
  mutable segments : int;
  mutable duplicates : int;
  mutable reordered : int;
  mutable bootstraps : int;
  mutable fenced : int;
  mutable commits : int;
  mutable ops : int;
  mutable busy : float;
  mutable reads : int;
  trace : Trace.t option;  (* this node's span buffer, when tracing *)
  (* primary trace contexts by txid, harvested from Trace_note records in
     the shipped log; consumed when the matching Commit is applied *)
  txn_ctx : (int, int * int) Hashtbl.t;
}

let restore_image ~image ~lsn ~time =
  let cat = Catalog.create () in
  let cp = Checkpoint.decode image in
  Checkpoint.restore_tables cp cat;
  Meter.tick_n "repl_bootstrap_row" (Checkpoint.total_rows cp);
  let wal = Wal.create ~base_lsn:lsn () in
  let dur = Durable.create ~wal () in
  Durable.install_checkpoint dur ~encoded:image ~lsn ~time;
  (cat, wal, dur, cp.Checkpoint.taken_at)

let bootstrap ?trace ~id ~image ~lsn ~time () =
  let cat, wal, dur, taken_at = restore_image ~image ~lsn ~time in
  {
    rid = id;
    cat;
    redo = Redo.create ~meter:"repl_apply_op" cat;
    wal;
    dur;
    applied = lsn;
    horizon_t = taken_at;
    epoch = 0;
    pending = [];
    lag_h = Strip_obs.Histogram.create ();
    segments = 0;
    duplicates = 0;
    reordered = 0;
    bootstraps = 0;
    fenced = 0;
    commits = 0;
    ops = 0;
    busy = 0.0;
    reads = 0;
    trace;
    txn_ctx = Hashtbl.create 16;
  }

let rebootstrap t ~image ~lsn ~time =
  let cat, wal, dur, taken_at = restore_image ~image ~lsn ~time in
  t.cat <- cat;
  t.redo <- Redo.create ~meter:"repl_apply_op" cat;
  t.wal <- wal;
  t.dur <- dur;
  t.applied <- lsn;
  t.horizon_t <- max t.horizon_t taken_at;
  t.pending <- [];
  Hashtbl.reset t.txn_ctx;
  t.bootstraps <- t.bootstraps + 1

(* Decode and apply everything newly grafted onto the local log copy.
   [at] is the apply wall-time (simulated) stamped on trace events. *)
let apply_tail t ~at =
  let rd = Wal.read_from t.wal ~lsn:t.applied in
  List.iter
    (fun (_lsn, record) ->
      match record with
      | Wal.Commit { txid; ops; _ } ->
        t.commits <- t.commits + 1;
        t.ops <- t.ops + List.length ops;
        Redo.apply_commit t.redo ops;
        (match t.trace with
        | None -> ()
        | Some tr ->
          (* The apply span is a child of the primary's commit span when
             its Trace_note preceded this Commit in the shipped log; the
             epoch tag shows which primary term shipped it. *)
          let link_args =
            match Hashtbl.find_opt t.txn_ctx txid with
            | None -> []
            | Some (trace, parent) ->
              Hashtbl.remove t.txn_ctx txid;
              Span.args (Span.child_of ~trace ~parent)
          in
          Trace.instant tr ~ts:at ~tid:Trace.tid_engine
            ~args:
              ([
                 ("replica", Trace.Int t.rid);
                 ("txid", Trace.Int txid);
                 ("ops", Trace.Int (List.length ops));
                 ("epoch", Trace.Int t.epoch);
               ]
              @ link_args)
            "apply")
      | Wal.Trace_note { subject = Wal.For_txn txid; trace; span } ->
        if t.trace <> None then Hashtbl.replace t.txn_ctx txid (trace, span)
      | Wal.Trace_note { subject = Wal.For_uq _; _ } ->
        (* queued-batch contexts matter to crash recovery at promotion *)
        ()
      | Wal.Uq_enqueue _ | Wal.Uq_merge _ | Wal.Uq_release _
      | Wal.Checkpoint_mark _ ->
        (* Queue transitions matter only at promotion, when Recovery
           rebuilds the pending queue from this same log copy. *)
        ()
      | Wal.Shard_out _ | Wal.Shard_in _ | Wal.Shard_release _
      | Wal.Shard_state _ ->
        (* Cross-shard protocol records matter only to the shard's own
           coordinator; a replica replays just the data commits. *)
        ())
    rd.Wal.records;
  t.applied <- Wal.durable_end t.wal

let ingest t bytes ~horizon =
  Wal.install_bytes t.wal bytes;
  apply_tail t ~at:horizon;
  t.horizon_t <- max t.horizon_t horizon

let rec receive t (msg : Link.message) =
  (* Epoch fencing: a message from a lower term than the highest this
     replica has seen comes from a deposed primary — drop it outright so a
     partitioned-but-alive old primary can never rewrite a promoted
     timeline.  Higher terms are adopted on sight. *)
  if msg.Link.epoch < t.epoch then begin
    t.fenced <- t.fenced + 1;
    match t.trace with
    | None -> ()
    | Some tr ->
      Trace.instant tr ~ts:msg.Link.arrives_at ~tid:Trace.tid_engine
        ~args:
          [
            ("replica", Trace.Int t.rid);
            ("msg_epoch", Trace.Int msg.Link.epoch);
            ("epoch", Trace.Int t.epoch);
          ]
        "fence"
  end
  else begin
    if msg.Link.epoch > t.epoch then t.epoch <- msg.Link.epoch;
    receive_unfenced t msg
  end

and receive_unfenced t (msg : Link.message) =
  match msg.Link.payload with
  | Link.Blob _ ->
    (* shard-layer traffic; a replica is never its addressee *)
    t.duplicates <- t.duplicates + 1
  | Link.Bootstrap { image; lsn; time } ->
    if lsn > t.applied then rebootstrap t ~image ~lsn ~time
    else t.duplicates <- t.duplicates + 1;
    retry_pending t
  | Link.Segment { from_lsn; bytes = "" } ->
    (* Heartbeat: the primary's durable log ended at [from_lsn] when this
       was sent.  If we have all of it, our state is fresh as of then. *)
    if from_lsn <= t.applied then
      t.horizon_t <- max t.horizon_t msg.Link.sent_at
  | Link.Segment { from_lsn; bytes } ->
    let end_ = from_lsn + String.length bytes in
    if end_ <= t.applied then begin
      (* Entirely old bytes — but still proof of freshness at send time. *)
      t.duplicates <- t.duplicates + 1;
      t.horizon_t <- max t.horizon_t msg.Link.sent_at
    end
    else if from_lsn > t.applied then begin
      (* A gap: an earlier segment was dropped or is still in flight. *)
      t.reordered <- t.reordered + 1;
      t.pending <- msg :: t.pending
    end
    else begin
      let skip = t.applied - from_lsn in
      Wal.install_bytes t.wal
        (String.sub bytes skip (String.length bytes - skip));
      (* applies happen at arrival, but freshness only reaches send time *)
      apply_tail t ~at:msg.Link.arrives_at;
      t.horizon_t <- max t.horizon_t msg.Link.sent_at;
      t.segments <- t.segments + 1;
      Strip_obs.Histogram.add t.lag_h (msg.Link.arrives_at -. msg.Link.sent_at);
      retry_pending t
    end

and retry_pending t =
  (* Oldest (lowest seq) first so contiguous runs drain in one pass. *)
  let ready, still =
    List.partition
      (fun (m : Link.message) ->
        match m.Link.payload with
        | Link.Segment { from_lsn; bytes } ->
          from_lsn <= t.applied && from_lsn + String.length bytes > t.applied
        | Link.Bootstrap _ | Link.Blob _ -> false)
      t.pending
  in
  match ready with
  | [] ->
    (* Drop buffered segments made obsolete by a bootstrap or duplicate. *)
    t.pending <-
      List.filter
        (fun (m : Link.message) ->
          match m.Link.payload with
          | Link.Segment { from_lsn; bytes } ->
            from_lsn + String.length bytes > t.applied
          | Link.Bootstrap _ | Link.Blob _ -> false)
        still
  | _ ->
    let ready =
      List.sort (fun (a : Link.message) b -> Int.compare a.seq b.seq) ready
    in
    t.pending <- still;
    List.iter (receive t) ready

let id t = t.rid
let catalog t = t.cat
let durable t = t.dur
let applied_lsn t = t.applied
let horizon t = t.horizon_t
let epoch t = t.epoch
let note_epoch t e = if e > t.epoch then t.epoch <- e
let n_fenced t = t.fenced
let staleness t ~now = now -. t.horizon_t
let lag t = t.lag_h
let n_segments t = t.segments
let n_duplicates t = t.duplicates
let n_reordered t = t.reordered
let n_bootstraps t = t.bootstraps
let n_commits_applied t = t.commits
let n_ops_applied t = t.ops
let busy_until t = t.busy
let set_busy_until t v = t.busy <- v
let n_reads t = t.reads
let incr_reads t = t.reads <- t.reads + 1
