(** A primary plus N read replicas fed by WAL log shipping.

    The shipper runs as a periodic background task on the primary's
    engine: each tick it sends every replica the durable log bytes it has
    not yet acknowledged seeing (optimistic resend — there are no acks,
    so a dropped segment is simply covered again next tick and duplicate
    delivery is handled idempotently by the replica), or a heartbeat when
    there is nothing new, which advances the replica's freshness horizon.
    A replica that has fallen behind the primary's truncation horizon is
    re-seeded with a full checkpoint image through the same link.

    Reads are routed by {!read_policy}; each node owns a single-lane
    service queue, so read latency is queueing plus metered execution
    cost and adding replicas adds lanes.

    On a primary crash, {!promote} deterministically elects the replica
    with the highest applied LSN (ties break toward the lowest replica
    id), rebuilds a full primary from that replica's own durable state
    through {!Strip_core.Recovery} — checkpoint image plus shipped log
    tail, including the pending unique-transaction queue — and repoints
    the cluster at it; {!resume} then re-seeds every other node (and the
    demoted old primary's slot) from the promoted node's post-recovery
    checkpoint.

    Every election opens a new {e epoch} (a monotonically increasing
    term, starting at 1 for the founding primary).  The current epoch is
    stamped into every shipped message; replicas fence anything from a
    lower term, so a deposed primary that is still alive behind a
    network partition ({!promote_isolated}) can keep committing locally
    but can never rewrite the promoted timeline.  When the partition
    {!heal}s, the old primary discovers the higher term, discards its
    divergent unshipped tail (reported as fenced bytes, distinct from
    crash-failover lost bytes), and rejoins as a replica. *)

open Strip_core

type read_policy = Any | Bounded_staleness of float | Primary_only

val policy_string : read_policy -> string
(** ["any"], ["bounded:S"], or ["primary"]. *)

type config = {
  n_replicas : int;
  link : Link.config;
  ship_every : float;  (** shipping / heartbeat period, seconds *)
  read_policy : read_policy;
  read_rate : float;  (** read-only queries per simulated second *)
  read_cost_s : float;
      (** fixed per-read service overhead added to the metered execution
          cost (result marshalling / protocol) *)
  seed : int;  (** read-key RNG seed *)
}

val default_config : config
(** 1 replica, default link, 50 ms shipping, [Any], no reads. *)

type t

val create :
  ?trace_for:(int -> Strip_obs.Trace.t option) ->
  config ->
  primary:Strip_db.t ->
  read_table:string ->
  read_key_col:string ->
  read_keys:string array ->
  read_until:float ->
  t
(** Bootstrap [n_replicas] replicas from the primary's installed
    checkpoint.  [trace_for i] supplies replica [i]'s span buffer (default
    none): the caller owns the buffers so they survive re-seeding and can
    be merged into one cluster trace with
    {!Strip_obs.Trace.merge_chrome_json}.  Ship, promote and heal events
    land in the shipping / promoted node's own buffer, epoch-stamped.
    @raise Invalid_argument if [n_replicas > 0] and the
    primary has no durability layer or no checkpoint installed. *)

val schedule_shipping : t -> until:float -> unit
(** Schedule the periodic shipping task chain on the current primary's
    engine, first tick one period from now. *)

val primary : t -> Strip_db.t
val n_replicas : t -> int
val replica : t -> int -> Replica.t
val link : t -> int -> Link.t

val epoch : t -> int
(** Current primary term; starts at 1, bumped by every election. *)

val epoch_history : t -> (int * int) list
(** [(epoch, primary id)] in opening order; id -1 is the founding
    primary (and any restart-in-place of a replica-less cluster). *)

(** {1 Reads} *)

val next_read_time : t -> float option
(** Release time of the next read, [None] when the configured rate is
    zero or the feed window is exhausted. *)

val serve_read : t -> now:float -> unit
(** Drain arrivals up to [now], route one read by policy, execute it
    raw (no locks — replicas are single-writer apply loops, and the
    primary lane models a read endpoint), and account latency as
    queueing-plus-service on the chosen node's lane. *)

(** {1 Salvage} *)

val fetch_clean : t -> from_lsn:int -> len:int -> string option
(** Serve [len] clean log bytes at [from_lsn] from any replica whose
    copy covers that range and still frames cleanly, or [None] when no
    replica can.  This is the first rung of the salvage ladder: the
    primary's scrubber (and salvage recovery) splices the returned bytes
    over a corrupt range in place, because shipped copies are
    byte-identical to what the primary originally logged. *)

(** {1 Failover} *)

type promotion = {
  promoted : int;  (** elected replica id; -1 = restart-in-place *)
  promoted_lsn : int;  (** its applied LSN at election *)
  lost_bytes : int;
      (** durable-on-primary bytes that never reached the elected
          replica — lost to the cluster (always 0 for
          {!promote_isolated}: a partitioned primary's tail is fenced at
          {!heal}, not lost at election) *)
  epoch : int;  (** the term this promotion opened *)
}

val promote :
  t ->
  now:float ->
  mk_db:(Strip_txn.Durable.t -> Strip_db.t) ->
  reinstall:(Strip_db.t -> unit) ->
  Strip_db.t * Recovery.stats * promotion
(** Elect, rebuild a primary from the winner's durable state via
    {!Recovery.recover}, repoint the cluster, and open a new epoch.
    In-flight link messages die with the old primary.  With zero
    replicas this degrades gracefully to crash-restart recovery from the
    dead primary's own durable store ([promoted = -1]) instead of
    refusing.  Re-raises {!Strip_txn.Fault.Crashed} if the fault
    injector fells the new primary mid-recovery; the call may simply be
    retried. *)

val begin_partition : t -> now:float -> heal_at:float -> unit
(** Isolate the {e current} primary: add a partition window tagged with
    the current epoch to every link, open over sends in
    [[now, heal_at)].  The primary keeps running — its traffic just dies
    on the wire — and a subsequently elected primary's higher-epoch
    traffic flows over the same links untouched. *)

val promote_isolated :
  t ->
  now:float ->
  mk_db:(Strip_txn.Durable.t -> Strip_db.t) ->
  reinstall:(Strip_db.t -> unit) ->
  Strip_db.t * Recovery.stats * promotion
(** Like {!promote}, but the old primary is partitioned rather than
    dead: in-flight messages it launched before the cut still arrive,
    nothing is counted lost at election, and the old db handle is
    retained so {!heal} can fence its divergent tail.
    @raise Invalid_argument with zero replicas. *)

val heal : t -> now:float -> int
(** End the split-brain window opened by {!promote_isolated}: the
    deposed primary makes one last announcement in its frozen term
    (fenced by every replica), discards its unshipped divergent tail,
    and stands by to rejoin as a replica via {!resume}.  Returns the
    fenced byte count (also accumulated in {!fenced_bytes_total}); 0 if
    no primary is isolated. *)

val resume : t -> now:float -> ship_until:float -> unit
(** After {!promote} (and after downtime accounting): re-seed every
    replica slot from the promoted primary's fresh checkpoint, bump the
    primary read lane past the outage, and restart shipping. *)

val final_sync : t -> now:float -> unit
(** End of run: deliver everything in flight and graft any remaining
    durable tail so replicas converge to the primary (no lag samples are
    recorded for this administrative catch-up). *)

(** {1 Accounting} *)

val n_failovers : t -> int
val lost_bytes_total : t -> int

val fenced_bytes_total : t -> int
(** Bytes discarded from deposed primaries' divergent tails at {!heal} —
    writes the old primary accepted during split brain that the promoted
    timeline never acknowledged. *)

val n_partitions : t -> int
(** Partition windows opened via {!begin_partition}. *)

val reads_issued : t -> int
val reads_primary : t -> int
val reads_replica : t -> int
val read_latency : t -> Strip_obs.Histogram.t
val last_read_done : t -> float
(** Completion time of the latest-finishing read, 0 if none ran. *)

val segments_sent : t -> int
val segments_dropped : t -> int
val bytes_shipped : t -> int

val partition_drops_total : t -> int
(** Messages discarded by partition windows across all links. *)

val fenced_messages_total : t -> int
(** Stale-epoch messages rejected across all replicas. *)

val ship_verify_skips : t -> int
(** Outgoing segments cut short because ship-time verification found a
    corrupt frame in the slice (storage-fault injection only — clean
    runs never scan). *)

val register_metrics : t -> Strip_obs.Metrics.t -> unit
(** Probe lag/routing/shipping counters into a registry under [repl_*];
    call again after {!promote} to wire the new primary's registry. *)
