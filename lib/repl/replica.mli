(** A read replica: its own catalog plus a local copy of the primary's
    durable state, fed by shipped WAL segments.

    The replica bootstraps from a checkpoint image (tables restored, a
    fresh WAL whose [base_lsn] is the image's LSN, the image installed in
    its own {!Strip_txn.Durable.t} slot) and then applies [Commit]
    records from arriving segments through the shared {!Strip_core.Redo}
    path.  Segments may arrive duplicated, reordered, or partially
    overlapping; apply is idempotent — bytes at or below [applied_lsn]
    are skipped, bytes beyond the contiguous frontier are buffered until
    the gap fills.

    Freshness is tracked as a {e horizon}: the latest primary send-time
    whose durable prefix this replica has fully applied (heartbeats
    advance it without carrying bytes).  Staleness at [now] is
    [now - horizon] — strictly positive under any nonzero link latency,
    which is why [bounded_staleness 0.0] can never elect a replica. *)

open Strip_relational

type t

val bootstrap :
  ?trace:Strip_obs.Trace.t ->
  id:int ->
  image:string ->
  lsn:int ->
  time:float ->
  unit ->
  t
(** Restore from checkpoint [image] consistent up to [lsn], captured at
    simulated [time].  Ticks ["repl_bootstrap_row"] per restored row.

    [trace] is this node's span buffer: each applied [Commit] emits an
    epoch-tagged [apply] event, parent-linked (via {!Strip_obs.Span})
    under the primary's commit span when the shipped log carries the
    matching {!Strip_txn.Wal.Trace_note}; fenced messages emit [fence]
    events.  The buffer survives {!rebootstrap} — it describes the node,
    not one incarnation of its state. *)

val rebootstrap : t -> image:string -> lsn:int -> time:float -> unit
(** Throw away this replica's state and restore from a newer image —
    used when the primary's truncation outran the replica, and to resync
    every surviving node after a failover. *)

val receive : t -> Link.message -> unit
(** Deliver one message.  Applies, buffers, or skips as appropriate.  A
    message stamped with a lower epoch than the highest seen is fenced
    (counted, otherwise ignored); a higher epoch is adopted on sight. *)

val ingest : t -> string -> horizon:float -> unit
(** Graft framed bytes starting exactly at [applied_lsn] and apply them,
    advancing the freshness horizon to [horizon] — the administrative
    catch-up path ({!Cluster.final_sync}), which records no lag sample. *)

val id : t -> int
val catalog : t -> Catalog.t
val durable : t -> Strip_txn.Durable.t
val applied_lsn : t -> int
val horizon : t -> float
val staleness : t -> now:float -> float

val epoch : t -> int
(** Highest primary term observed (0 until any stamped traffic lands). *)

val note_epoch : t -> int -> unit
(** Administratively adopt a term if it is higher than the current one —
    the election path, where the replica learns the new epoch directly
    rather than from link traffic. *)

val n_fenced : t -> int
(** Messages rejected for carrying a stale epoch. *)

val lag : t -> Strip_obs.Histogram.t
(** Per-applied-segment replication lag (arrival − send), seconds. *)

val n_segments : t -> int
val n_duplicates : t -> int
val n_reordered : t -> int
val n_bootstraps : t -> int
val n_commits_applied : t -> int
val n_ops_applied : t -> int

(** {1 Read lane} — a single service queue for the reads this replica
    serves; the router owns the arithmetic, the replica just stores the
    high-water mark. *)

val busy_until : t -> float
val set_busy_until : t -> float -> unit
val n_reads : t -> int
val incr_reads : t -> unit
