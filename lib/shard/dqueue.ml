type entry = { mutable delta : float; created_at : float }

type t = {
  seen : (int * int, unit) Hashtbl.t;
  pending : (Strip_relational.Value.t list, entry) Hashtbl.t;
  mutable order : Strip_relational.Value.t list list;
      (* first-arrival order, reversed *)
  mutable offered : int;
  mutable dups : int;
  mutable merged : int;
  mutable fresh : int;
  mutable applied : int;
}

type verdict = Duplicate | Merged | Fresh

let create () =
  {
    seen = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    order = [];
    offered = 0;
    dups = 0;
    merged = 0;
    fresh = 0;
    applied = 0;
  }

let offer t ~src ~seq ~key ~delta ~created_at =
  t.offered <- t.offered + 1;
  if Hashtbl.mem t.seen (src, seq) then begin
    t.dups <- t.dups + 1;
    Duplicate
  end
  else begin
    Hashtbl.replace t.seen (src, seq) ();
    match Hashtbl.find_opt t.pending key with
    | Some e ->
      e.delta <- e.delta +. delta;
      t.merged <- t.merged + 1;
      Merged
    | None ->
      Hashtbl.replace t.pending key { delta; created_at };
      t.order <- key :: t.order;
      t.fresh <- t.fresh + 1;
      Fresh
  end

let peek t ~key =
  match Hashtbl.find_opt t.pending key with
  | None -> None
  | Some e -> Some (e.delta, e.created_at)

let remove t ~key =
  if Hashtbl.mem t.pending key then begin
    Hashtbl.remove t.pending key;
    t.order <- List.filter (fun k -> k <> key) t.order;
    t.applied <- t.applied + 1
  end

let pending_keys t = List.rev t.order
let n_pending t = Hashtbl.length t.pending

let seen_list t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.seen [] |> List.sort compare

let pending_list t =
  List.map
    (fun key ->
      let e = Hashtbl.find t.pending key in
      (key, e.delta, e.created_at))
    (pending_keys t)

let restore t ~seen ~pending =
  Hashtbl.reset t.seen;
  Hashtbl.reset t.pending;
  t.order <- [];
  List.iter (fun id -> Hashtbl.replace t.seen id ()) seen;
  List.iter
    (fun (key, delta, created_at) ->
      Hashtbl.replace t.pending key { delta; created_at };
      t.order <- key :: t.order)
    pending

let n_offered t = t.offered
let n_duplicates t = t.dups
let n_merged t = t.merged
let n_fresh t = t.fresh
let n_applied t = t.applied
