(** The distributed unique-transaction queue (owner side).

    The sharded analogue of STRIP's unique-transaction hash (paper §6.3):
    where a single primary merges same-key rule firings into one queued
    batch, the composite owner merges same-key {e partial deltas} arriving
    from many shards into one pending entry, and fires the maintenance
    action once per key rather than once per arrival.

    Idempotence: every arrival is first checked against the set of
    [(src, seq)] identities already merged — a resent or duplicated
    partial is a {!verdict.Duplicate} and changes nothing.  Merging is
    commutative addition (DBSP linearity of the composite rules), so
    arrival order across shards cannot change the merged total, and the
    entry keeps its {e first} arrival's [created_at] so latency
    accounting measures the oldest unapplied contribution.

    The queue is volatile; the owner's WAL ([Shard_in] / [Shard_release] /
    [Shard_state] records) is the durable truth, and
    {!Strip_shard.Coordinator} rebuilds the queue from it at recovery via
    {!restore}. *)

type t

type verdict =
  | Duplicate  (** [(src, seq)] already merged — no effect *)
  | Merged  (** folded into an existing pending entry for the key *)
  | Fresh  (** first pending contribution for the key *)

val create : unit -> t

val offer :
  t ->
  src:int ->
  seq:int ->
  key:Strip_relational.Value.t list ->
  delta:float ->
  created_at:float ->
  verdict

val peek : t -> key:Strip_relational.Value.t list -> (float * float) option
(** Current [(merged delta, first created_at)] for [key] —
    non-destructive, so an aborted apply leaves the entry intact. *)

val remove : t -> key:Strip_relational.Value.t list -> unit
(** Retire [key]'s pending entry (the durable-release path); no-op if
    absent. *)

val pending_keys : t -> Strip_relational.Value.t list list
(** Keys with unapplied merged deltas, first-arrival order. *)

val n_pending : t -> int

val seen_list : t -> (int * int) list
(** Merged [(src, seq)] identities, ascending — the dedup set, exported
    into [Shard_state] snapshots. *)

val pending_list : t -> (Strip_relational.Value.t list * float * float) list
(** Pending [(key, delta, created_at)] entries, first-arrival order. *)

val restore :
  t ->
  seen:(int * int) list ->
  pending:(Strip_relational.Value.t list * float * float) list ->
  unit
(** Replace the queue's state wholesale (crash recovery). *)

(** {1 Counters} *)

val n_offered : t -> int
val n_duplicates : t -> int
val n_merged : t -> int
val n_fresh : t -> int
val n_applied : t -> int
(** Entries retired through {!remove}. *)
