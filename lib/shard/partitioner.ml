type t = { n : int }

let create ~shards =
  if shards < 1 then invalid_arg "Partitioner.create: shards < 1";
  { n = shards }

let n_shards t = t.n

(* 32-bit FNV-1a.  Stable across platforms and OCaml versions — the
   placement of every row is part of the durable format, so the hash must
   never depend on the runtime's polymorphic hashing. *)
let hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let shard_of_symbol t s = hash s mod t.n
let shard_of_comp t s = hash s mod t.n
