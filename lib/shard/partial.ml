open Strip_txn

type t = {
  src : int;
  seq : int;
  dst : int;
  key : Strip_relational.Value.t list;
  delta : float;
  created_at : float;
  ctx : (int * int) option;
}

type msg = Partial of t | Ack of { src : int; seq : int }

let encode m =
  let b = Buffer.create 64 in
  (match m with
  | Partial p ->
    Codec.put_u8 b 1;
    Codec.put_int b p.src;
    Codec.put_int b p.seq;
    Codec.put_int b p.dst;
    Codec.put_list b Codec.put_value p.key;
    Codec.put_float b p.delta;
    Codec.put_float b p.created_at;
    (match p.ctx with
    | None -> Codec.put_u8 b 0
    | Some (trace, span) ->
      Codec.put_u8 b 1;
      Codec.put_int b trace;
      Codec.put_int b span)
  | Ack { src; seq } ->
    Codec.put_u8 b 2;
    Codec.put_int b src;
    Codec.put_int b seq);
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  match Codec.get_u8 r with
  | 1 ->
    let src = Codec.get_int r in
    let seq = Codec.get_int r in
    let dst = Codec.get_int r in
    let key = Codec.get_list r Codec.get_value in
    let delta = Codec.get_float r in
    let created_at = Codec.get_float r in
    let ctx =
      match Codec.get_u8 r with
      | 0 -> None
      | 1 ->
        let trace = Codec.get_int r in
        let span = Codec.get_int r in
        Some (trace, span)
      | n -> raise (Codec.Decode_error (Printf.sprintf "partial ctx tag %d" n))
    in
    Partial { src; seq; dst; key; delta; created_at; ctx }
  | 2 ->
    let src = Codec.get_int r in
    let seq = Codec.get_int r in
    Ack { src; seq }
  | n -> raise (Codec.Decode_error (Printf.sprintf "shard message tag %d" n))
