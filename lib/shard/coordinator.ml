open Strip_relational
open Strip_txn
open Strip_core
module Link = Strip_repl.Link
module Span = Strip_obs.Span

type config = {
  link : Link.config;
  ship_every : float;
  resend_after : float;
  checkpoint_every : float option;
  cost : Strip_sim.Cost_model.t;
}

type callbacks = {
  remake : sid:int -> now:float -> Strip_db.t;
  reinstall : sid:int -> Strip_db.t -> unit;
  apply :
    sid:int ->
    Strip_db.t ->
    Transaction.t ->
    key:Value.t list ->
    delta:float ->
    unit;
  requote : sid:int -> Strip_db.t -> after:float -> unit;
  recovered : sid:int -> Strip_db.t -> Recovery.stats -> unit;
}

type unacked = { p : Partial.t; mutable last_sent : float }

type shard = {
  sid : int;
  mutable db : Strip_db.t;
  dq : Dqueue.t;
  mutable unacked : unacked list;  (* ship order *)
  mutable outbox : Partial.t list;  (* reversed *)
  mutable acks : (int * int) list;  (* reversed; (emitter, seq) *)
  mutable prior : Strip_db.t list;  (* crashed incarnations, newest first *)
  mutable crashes : int;
  mutable recovery_s : float;
  mutable last_cp : float;
}

type t = {
  cfg : config;
  cb : callbacks;
  n : int;
  shards : shard array;
  links : Link.t array array;  (* links.(src).(dst); diagonal unused *)
  mutable msgs : int;
  mutable bytes : int;
  mutable partials : int;
  mutable n_acks : int;
  mutable n_reships : int;
}

(* ------------------------------------------------------------------ *)
(* Sinks: where durable partials and releases leave the rule manager.   *)

let install_sinks sh =
  let mgr = Strip_db.rules sh.db in
  Rule_manager.set_partial_sink mgr
    (fun ~seq ~dst ~key ~delta ~created_at ~ctx ->
      let ctx = Option.map (fun c -> (c.Span.trace, c.Span.span)) ctx in
      sh.outbox <-
        { Partial.src = sh.sid; seq; dst; key; delta; created_at; ctx }
        :: sh.outbox);
  Rule_manager.set_release_sink mgr (fun ~key -> Dqueue.remove sh.dq ~key)

(* ------------------------------------------------------------------ *)
(* Durable protocol state.                                              *)

let append_state sh =
  match Strip_db.durable sh.db with
  | None -> ()
  | Some d ->
    let w = Durable.wal d in
    let state =
      Wal.Shard_state
        {
          next_seq = Rule_manager.partial_seq (Strip_db.rules sh.db);
          seen = Dqueue.seen_list sh.dq;
          pending = Dqueue.pending_list sh.dq;
          unacked =
            List.map
              (fun u ->
                ( u.p.Partial.seq,
                  u.p.Partial.dst,
                  u.p.Partial.key,
                  u.p.Partial.delta,
                  u.p.Partial.created_at ))
              sh.unacked;
        }
    in
    ignore (Wal.append_batch w [ state ]);
    Wal.fsync w

type proto_state = {
  mutable s_next_seq : int;
  mutable s_seen : (int * int) list;
  mutable s_pending : (Value.t list * float * float) list;
  mutable s_unacked : (int * int * Value.t list * float * float) list;
}

(* Rebuild the cross-shard protocol state from the shard's own log.  Must
   run BEFORE Recovery.recover: recovery ends with a checkpoint that
   truncates the log these records live in. *)
let scan_state dur =
  let rd = Wal.read (Durable.wal dur) in
  let st =
    { s_next_seq = 0; s_seen = []; s_pending = []; s_unacked = [] }
  in
  List.iter
    (fun (_lsn, r) ->
      match r with
      | Wal.Shard_state { next_seq; seen; pending; unacked } ->
        st.s_next_seq <- next_seq;
        st.s_seen <- seen;
        st.s_pending <- pending;
        st.s_unacked <- unacked
      | Wal.Shard_out { seq; dst; key; delta; created_at } ->
        st.s_next_seq <- max st.s_next_seq seq;
        st.s_unacked <- st.s_unacked @ [ (seq, dst, key, delta, created_at) ]
      | Wal.Shard_in { src; seq; key; delta; created_at } ->
        if not (List.mem (src, seq) st.s_seen) then begin
          st.s_seen <- st.s_seen @ [ (src, seq) ];
          let rec merge = function
            | [] -> [ (key, delta, created_at) ]
            | (k, d, c) :: tl when k = key -> (k, d +. delta, c) :: tl
            | hd :: tl -> hd :: merge tl
          in
          st.s_pending <- merge st.s_pending
        end
      | Wal.Shard_release { key } ->
        st.s_pending <- List.filter (fun (k, _, _) -> k <> key) st.s_pending
      | _ -> ())
    rd.Wal.records;
  st

(* ------------------------------------------------------------------ *)
(* Shipping.                                                            *)

let send_msg t ~src ~dst ~now msg =
  let bytes = Partial.encode msg in
  Link.send t.links.(src).(dst) ~now (Link.Blob bytes);
  t.msgs <- t.msgs + 1;
  t.bytes <- t.bytes + String.length bytes

(* ------------------------------------------------------------------ *)
(* Applying merged deltas on the owner.                                 *)

let submit_apply t sh ~key ~ctx =
  (* The body PEEKS the merged delta: with_txn_injected's abort/crash
     fault sites fire after the body returns, so a destructive take here
     could lose the delta to an abort the body never sees.  Removal
     happens in the release sink, after the applying commit's fsync. *)
  Strip_db.submit_maintenance sh.db ~at:(Strip_db.now sh.db)
    ~label:"shard_apply" ?ctx (fun txn ->
      match Dqueue.peek sh.dq ~key with
      | None -> ()
      | Some (delta, _created_at) ->
        t.cb.apply ~sid:sh.sid sh.db txn ~key ~delta;
        Rule_manager.note_shard_release (Strip_db.rules sh.db) ~key)

(* ------------------------------------------------------------------ *)
(* Crash recovery: restart in place (see the .mli for why never         *)
(* failover), rebuild protocol state, re-ship, resubmit applies.        *)

let handle_crash t sh =
  let t_crash = Strip_db.now sh.db in
  sh.crashes <- sh.crashes + 1;
  Strip_db.crash sh.db;
  let dur =
    match Strip_db.durable sh.db with
    | Some d -> d
    | None ->
      invalid_arg "Coordinator: crashed shard has no durability layer"
  in
  let st = scan_state dur in
  let before = Meter.snapshot () in
  let rec restart () =
    let ndb = t.cb.remake ~sid:sh.sid ~now:t_crash in
    match
      Recovery.recover ndb ~reinstall:(fun () ->
          t.cb.reinstall ~sid:sh.sid ndb)
    with
    | stats -> (ndb, stats)
    | exception Fault.Crashed _ ->
      (* crashed again mid-recovery — condemn and retry from durable state *)
      Strip_db.crash ndb;
      sh.prior <- ndb :: sh.prior;
      restart ()
  in
  let ndb, stats = restart () in
  let after = Meter.snapshot () in
  let rec_s = 1e-6 *. Strip_sim.Cost_model.charge t.cfg.cost (Meter.diff before after) in
  Clock.advance_by (Strip_db.clock ndb) rec_s;
  Strip_sim.Stats.record_crash (Strip_db.stats ndb) ~recovery_s:rec_s;
  sh.prior <- sh.db :: sh.prior;
  sh.db <- ndb;
  sh.recovery_s <- sh.recovery_s +. rec_s;
  install_sinks sh;
  Rule_manager.set_partial_seq (Strip_db.rules ndb) st.s_next_seq;
  Dqueue.restore sh.dq ~seen:st.s_seen ~pending:st.s_pending;
  sh.outbox <- [];
  sh.acks <- [];
  (* Everything logged but unacknowledged re-ships immediately; the
     owners' (src, seq) dedup collapses any double delivery. *)
  sh.unacked <-
    List.map
      (fun (seq, dst, key, delta, created_at) ->
        {
          p =
            {
              Partial.src = sh.sid;
              seq;
              dst;
              key;
              delta;
              created_at;
              ctx = None;
            };
          last_sent = neg_infinity;
        })
      st.s_unacked;
  List.iter
    (fun key -> submit_apply t sh ~key ~ctx:None)
    (Dqueue.pending_keys sh.dq);
  t.cb.requote ~sid:sh.sid ndb ~after:t_crash;
  (* Recovery's final checkpoint truncated the log; put the protocol
     baseline back so a second crash still finds it. *)
  append_state sh;
  sh.last_cp <- Strip_db.now ndb;
  t.cb.recovered ~sid:sh.sid ndb stats

let rec run_guarded t sh ~until =
  try Strip_db.run ~until sh.db with
  | Fault.Crashed _ ->
    handle_crash t sh;
    run_guarded t sh ~until

(* ------------------------------------------------------------------ *)
(* Receive side.                                                        *)

let receive t sh (m : Link.message) =
  match m.Link.payload with
  | Link.Segment _ | Link.Bootstrap _ -> ()  (* not shard-layer traffic *)
  | Link.Blob bytes -> (
    match Partial.decode bytes with
    | Partial.Ack { src = _; seq } ->
      sh.unacked <- List.filter (fun u -> u.p.Partial.seq <> seq) sh.unacked
    | Partial.Partial p ->
      let verdict =
        Dqueue.offer sh.dq ~src:p.Partial.src ~seq:p.Partial.seq
          ~key:p.Partial.key ~delta:p.Partial.delta
          ~created_at:p.Partial.created_at
      in
      (match verdict with
      | Dqueue.Duplicate -> ()
      | Dqueue.Merged | Dqueue.Fresh -> (
        match Strip_db.durable sh.db with
        | None -> ()
        | Some d ->
          let w = Durable.wal d in
          ignore
            (Wal.append_batch w
               [
                 Wal.Shard_in
                   {
                     src = p.Partial.src;
                     seq = p.Partial.seq;
                     key = p.Partial.key;
                     delta = p.Partial.delta;
                     created_at = p.Partial.created_at;
                   };
               ]);
          Wal.fsync w));
      (* Ack even duplicates: the previous ack may have been dropped. *)
      sh.acks <- (p.Partial.src, p.Partial.seq) :: sh.acks;
      if verdict = Dqueue.Fresh then begin
        let ctx =
          match (Strip_db.trace sh.db, p.Partial.ctx) with
          | Some _, Some (trace, parent) -> Some (Span.child_of ~trace ~parent)
          | _ -> None
        in
        submit_apply t sh ~key:p.Partial.key ~ctx
      end)

(* ------------------------------------------------------------------ *)
(* The tick.                                                            *)

let step t ~now =
  (* 1: advance every shard's engine, restarting any that crash *)
  Array.iter (fun sh -> run_guarded t sh ~until:now) t.shards;
  (* 1b: coordinator-driven fuzzy checkpoints (truncation is always
     immediately followed by a fresh Shard_state) *)
  (match t.cfg.checkpoint_every with
  | None -> ()
  | Some every ->
    Array.iter
      (fun sh ->
        if now -. sh.last_cp >= every && Strip_db.durable sh.db <> None
        then begin
          Strip_db.checkpoint sh.db;
          append_state sh;
          sh.last_cp <- now
        end)
      t.shards);
  (* 2: flush outboxes and acks, emit order *)
  Array.iter
    (fun sh ->
      List.iter
        (fun p ->
          send_msg t ~src:sh.sid ~dst:p.Partial.dst ~now (Partial.Partial p);
          t.partials <- t.partials + 1;
          sh.unacked <- sh.unacked @ [ { p; last_sent = now } ])
        (List.rev sh.outbox);
      sh.outbox <- [];
      List.iter
        (fun (emitter, seq) ->
          send_msg t ~src:sh.sid ~dst:emitter ~now
            (Partial.Ack { src = emitter; seq });
          t.n_acks <- t.n_acks + 1)
        (List.rev sh.acks);
      sh.acks <- [])
    t.shards;
  (* 3: resend stale unacked partials (drops and crashed receivers) *)
  Array.iter
    (fun sh ->
      List.iter
        (fun u ->
          if now -. u.last_sent >= t.cfg.resend_after then begin
            send_msg t ~src:sh.sid ~dst:u.p.Partial.dst ~now
              (Partial.Partial u.p);
            t.n_reships <- t.n_reships + 1;
            u.last_sent <- now
          end)
        sh.unacked)
    t.shards;
  (* 4: deliver — drain every link, then process in a total order
     ((arrives_at, source shard, link seq)) so hashtable iteration and
     arrival interleaving can never perturb a fixed-seed run *)
  let arrived = ref [] in
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst l ->
          if src <> dst then begin
            let rec drain () =
              match Link.pop_arrived l ~now with
              | None -> ()
              | Some m ->
                arrived := (m, src, dst) :: !arrived;
                drain ()
            in
            drain ()
          end)
        row)
    t.links;
  let arrived =
    List.sort
      (fun ((a : Link.message), sa, _) ((b : Link.message), sb, _) ->
        match Float.compare a.Link.arrives_at b.Link.arrives_at with
        | 0 -> (
          match Int.compare sa sb with
          | 0 -> Int.compare a.Link.seq b.Link.seq
          | c -> c)
        | c -> c)
      (List.rev !arrived)
  in
  List.iter (fun (m, _src, dst) -> receive t t.shards.(dst) m) arrived

let quiescent t =
  Array.for_all
    (fun sh ->
      Strip_sim.Engine.pending (Strip_db.engine sh.db) = 0
      && sh.outbox = [] && sh.acks = [] && sh.unacked = []
      && Dqueue.n_pending sh.dq = 0)
    t.shards
  && Array.for_all
       (fun row -> Array.for_all (fun l -> Link.in_flight l = 0) row)
       t.links

let run t ~until =
  let tick = max 1e-6 t.cfg.ship_every in
  let n_ticks = int_of_float (ceil (until /. tick)) in
  for i = 1 to n_ticks do
    step t ~now:(float_of_int i *. tick)
  done;
  step t ~now:until;
  (* Quiesce: in-flight partials, resends and their applies may still be
     working through the links past [until]. *)
  let now = ref until in
  let guard = ref 0 in
  while (not (quiescent t)) && !guard < 10_000 do
    incr guard;
    now := !now +. tick;
    step t ~now:!now
  done

(* ------------------------------------------------------------------ *)

let create ~cfg ~cb dbs =
  let n = Array.length dbs in
  if n = 0 then invalid_arg "Coordinator.create: no shards";
  let shards =
    Array.mapi
      (fun sid db ->
        {
          sid;
          db;
          dq = Dqueue.create ();
          unacked = [];
          outbox = [];
          acks = [];
          prior = [];
          crashes = 0;
          recovery_s = 0.0;
          last_cp = 0.0;
        })
      dbs
  in
  let links =
    Array.init n (fun src ->
        Array.init n (fun dst -> Link.create ~id:((src * n) + dst) cfg.link))
  in
  let t =
    {
      cfg;
      cb;
      n;
      shards;
      links;
      msgs = 0;
      bytes = 0;
      partials = 0;
      n_acks = 0;
      n_reships = 0;
    }
  in
  Array.iter install_sinks shards;
  t

let checkpoint_all t =
  Array.iter
    (fun sh ->
      if Strip_db.durable sh.db <> None then begin
        Strip_db.checkpoint sh.db;
        append_state sh;
        sh.last_cp <- Strip_db.now sh.db
      end)
    t.shards

let n_shards t = t.n
let db t i = t.shards.(i).db
let prior_dbs t i = t.shards.(i).prior
let queue t i = t.shards.(i).dq
let crashes t i = t.shards.(i).crashes
let recovery_s t i = t.shards.(i).recovery_s
let msgs_sent t = t.msgs
let bytes_shipped t = t.bytes
let partials_shipped t = t.partials
let acks_sent t = t.n_acks
let reships t = t.n_reships
