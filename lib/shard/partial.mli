(** Wire format of the cross-shard maintenance protocol.

    Two message kinds travel over the shard-to-shard {!Strip_repl.Link}s
    (as [Blob] payloads): a {e partial} — one emitting shard's weighted
    contribution to a composite row owned by another shard — and the
    owner's {e ack}.  [(src, seq)] identifies a partial for the life of
    the system: [seq] is the emitter's monotone ship sequence number
    (stamped at commit by {!Strip_core.Rule_manager}), which the owner
    dedups on, turning at-least-once shipping into an exactly-once merge
    effect. *)

type t = {
  src : int;  (** emitting shard *)
  seq : int;  (** emitter's monotone ship sequence number *)
  dst : int;  (** owning shard *)
  key : Strip_relational.Value.t list;  (** composite row key *)
  delta : float;  (** weighted contribution to the composite value *)
  created_at : float;  (** emitting commit's virtual time *)
  ctx : (int * int) option;
      (** emitting transaction's (trace, span), when tracing *)
}

type msg =
  | Partial of t
  | Ack of { src : int; seq : int }
      (** owner → emitter receipt for partial [(src, seq)]; the emitter
          retires the matching unacked entry and stops resending *)

val encode : msg -> string

val decode : string -> msg
(** @raise Strip_txn.Codec.Decode_error on truncation or unknown tag. *)
