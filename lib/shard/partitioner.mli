(** Hash partitioning of the symbol space across shard primaries.

    Base rows route by stock symbol, composite rows by composite name —
    both through the same 32-bit FNV-1a hash, so placement depends only
    on the name string and the shard count.  Every node (and every test)
    computes the same owner without coordination, and a fixed-seed run is
    reproducible because nothing here consults a clock or an RNG. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument if [shards < 1]. *)

val n_shards : t -> int

val shard_of_symbol : t -> string -> int
(** Owner of a base (stock) row, in [0 .. shards-1]. *)

val shard_of_comp : t -> string -> int
(** Owner of a composite ([comp_prices]) row. *)

val hash : string -> int
(** The raw 32-bit FNV-1a value (exposed for tests). *)
