(** The sharded write path: N shard primaries, each a full
    {!Strip_core.Strip_db} (own engine, WAL, checkpoints), stitched
    together by an asynchronous partial-delta protocol for composite
    rows whose members live on other shards.

    {2 Protocol}

    A routed rule action on the emitting shard computes its {e local}
    weighted contribution to a remote composite and calls
    {!Strip_core.Rule_manager.emit_partial}; the partial is stamped with
    a monotone ship sequence number at commit, logged as a
    [Wal.Shard_out] in the same append batch as the commit, and handed
    to this coordinator's outbox after the fsync.  The coordinator ships
    it over the shard-to-shard {!Strip_repl.Link} on the next tick and
    keeps it on an unacked list, resending every [resend_after] seconds
    until the owner's ack arrives.

    The owner dedups each arrival by [(src, seq)] ({!Dqueue}), logs a
    [Wal.Shard_in] for every novel one, merges same-key deltas, and —
    on the first pending contribution for a key — submits a
    recompute-class maintenance task that {e peeks} the merged delta,
    applies it to the composite table, and notes the release; the
    [Wal.Shard_release] rides the applying commit's fsync, after which
    the queue entry is retired.  Acks are always sent, duplicates
    included, because the first ack may itself have been dropped.

    At-least-once shipping + idempotent merge + atomic apply/release =
    exactly-once composite effect across crashes.

    {2 Determinism}

    Each tick processes shards in index order, then drains every link's
    arrived messages and handles them sorted by
    [(arrives_at, source shard, link sequence)] — a total order
    independent of hashtable iteration or arrival interleaving, so a
    fixed-seed run is byte-identical across re-runs.

    {2 Crash handling}

    A shard primary that crashes is restarted {e in place} (recovered
    from its own WAL + checkpoint), not failed over: an unshipped
    [Shard_out] tail is durable only in the primary's log, so promoting
    a replica that never saw those bytes could silently lose committed
    partials.  Recovery scans the log {e before}
    {!Strip_core.Recovery.recover} truncates it (rebuilding the dedup
    set, pending merges, unacked ships and the sequence counter from
    [Shard_state] + subsequent records), re-ships everything
    unacknowledged, resubmits an apply task per pending key, and
    appends a fresh [Shard_state] past the recovery checkpoint's
    truncation point. *)

type config = {
  link : Strip_repl.Link.config;  (** shard-to-shard link model *)
  ship_every : float;  (** coordinator tick, seconds of virtual time *)
  resend_after : float;  (** unacked partials are re-shipped after this *)
  checkpoint_every : float option;
      (** coordinator-driven fuzzy checkpoints; driven here rather than
          by {!Strip_core.Strip_db.schedule_checkpoints} so every log
          truncation is immediately followed by a fresh [Shard_state] *)
  cost : Strip_sim.Cost_model.t;  (** charges recovery work *)
}

type callbacks = {
  remake : sid:int -> now:float -> Strip_core.Strip_db.t;
      (** fresh database bound to shard [sid]'s durable store *)
  reinstall : sid:int -> Strip_core.Strip_db.t -> unit;
      (** re-register user functions / rules / view defs during recovery *)
  apply :
    sid:int ->
    Strip_core.Strip_db.t ->
    Strip_txn.Transaction.t ->
    key:Strip_relational.Value.t list ->
    delta:float ->
    unit;
      (** fold a merged partial delta into shard [sid]'s composite row *)
  requote : sid:int -> Strip_core.Strip_db.t -> after:float -> unit;
      (** resubmit the shard's undelivered feed updates after a crash *)
  recovered : sid:int -> Strip_core.Strip_db.t -> Strip_core.Recovery.stats -> unit;
      (** post-recovery hook (e.g. rebuild the shard's replica set) *)
}

type t

val create : cfg:config -> cb:callbacks -> Strip_core.Strip_db.t array -> t
(** Installs the partial and release sinks on every shard's rule
    manager.  @raise Invalid_argument on an empty array. *)

val checkpoint_all : t -> unit
(** Checkpoint every durable shard and append a fresh [Shard_state]
    snapshot after each truncation (also the initial baseline). *)

val step : t -> now:float -> unit
(** One coordinator tick: advance every shard's engine to [now]
    (recovering any that crash), take due checkpoints, flush outboxes
    and acks, resend stale unacked partials, then deliver and process
    everything arrived, in the deterministic order above. *)

val run : t -> until:float -> unit
(** Tick every [ship_every] up to [until], then keep ticking until the
    system is quiescent: all engines drained, no partial unshipped,
    unacked or unapplied, no message in flight. *)

(** {1 Inspection} *)

val n_shards : t -> int
val db : t -> int -> Strip_core.Strip_db.t
val prior_dbs : t -> int -> Strip_core.Strip_db.t list
(** Crashed incarnations of shard [i], newest first (for stats folds). *)

val queue : t -> int -> Dqueue.t
val crashes : t -> int -> int
val recovery_s : t -> int -> float
val msgs_sent : t -> int
val bytes_shipped : t -> int
val partials_shipped : t -> int
val acks_sent : t -> int
val reships : t -> int
