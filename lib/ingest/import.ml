open Strip_relational
open Strip_core
open Strip_market

type target = {
  stocks : Table.t;
  by_symbol : Index.t;
}

let replay db target quotes =
  Array.iter
    (fun (q : Feed.quote) ->
      let symbol = Taq.symbol q.Feed.stock in
      let price = q.Feed.price in
      Strip_db.submit_update db ~at:q.Feed.time ~label:"quote" (fun txn ->
          Db_ops.update_stock_price txn ~stocks:target.stocks
            ~by_symbol:target.by_symbol ~symbol ~price))
    quotes;
  Strip_sim.Engine.set_arrival_profile (Strip_db.engine db)
    (Feed.arrival_times quotes);
  Array.length quotes

let replay_file db target path = replay db target (Taq.load path)

let generate_and_replay db target cfg = replay db target (Feed.generate cfg)
