(** Change export — subscriptions on table changes (the export half of the
    paper's import/export system, §6.2 / [AKGM96b]).

    A subscription watches a table and delivers its changes to an OCaml
    callback.  It is implemented {e with the rule system itself}: each
    subscription installs a rule whose condition binds the relevant
    transition table and whose user function invokes the callback — so
    exports get, for free, exactly the batching story of the paper:

    - immediate mode (no batching): one delivery per triggering transaction;
    - batched mode ([~batch:delay]): a unique transaction collects changes
      for [delay] seconds and delivers them in one call — the natural
      design for feeding a downstream ticker plant or GUI that prefers
      conflated updates.

    Deliveries carry the simulated time and the change rows (new images for
    inserts/updates, old images for deletes). *)

type event = On_insert | On_update | On_delete

type subscription

val subscribe :
  Strip_core.Strip_db.t ->
  table:string ->
  ?events:event list ->
  ?batch:float ->
  ?columns:string list ->
  (time:float -> rows:Strip_relational.Value.t array list -> unit) ->
  subscription
(** Install a subscription.  [events] defaults to all three; [columns]
    restricts the delivered projection (default: all of the table's
    columns); [batch] switches to a unique transaction with that delay.
    @raise Strip_core.Rule_manager.Rule_error on an unknown table or
    column. *)

val unsubscribe : Strip_core.Strip_db.t -> subscription -> unit
(** Drop the subscription's rules.  Idempotent. *)

val deliveries : subscription -> int
(** Number of callback invocations so far. *)
