open Strip_relational
open Strip_core

type event = On_insert | On_update | On_delete

type subscription = {
  mutable rule_names : string list;
  mutable active : bool;
  mutable count : int;
}

let next_id = ref 0

let subscribe db ~table ?(events = [ On_insert; On_update; On_delete ])
    ?batch ?columns callback =
  incr next_id;
  let id = !next_id in
  let cat = Strip_db.catalog db in
  let tb =
    match Catalog.find_table cat table with
    | Some tb -> tb
    | None ->
      raise
        (Rule_manager.Rule_error
           (Printf.sprintf "export: unknown table %s" table))
  in
  let cols =
    match columns with
    | Some cols ->
      List.iter
        (fun c ->
          if not (Schema.mem (Table.schema tb) c) then
            raise
              (Rule_manager.Rule_error
                 (Printf.sprintf "export: unknown column %s in %s" c table)))
        cols;
      cols
    | None -> Schema.names (Table.schema tb)
  in
  let sub = { rule_names = []; active = true; count = 0 } in
  let mgr = Strip_db.rules db in
  let uniqueness, delay =
    match batch with
    | Some d -> (Rule_ast.Unique, d)
    | None -> (Rule_ast.Not_unique, 0.0)
  in
  (* One rule per event kind: their bound layouts are identical, so in
     batched mode they share one user function and merge into one queued
     delivery. *)
  let select_from src =
    {
      Sql_parser.distinct = false;
      items =
        List.map
          (fun c -> Sql_parser.Item (Query.item (Expr.Col (Some src, c))))
          cols;
      from = [ { Sql_parser.rel = src; alias = src } ];
      where = None;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
    }
  in
  let func = Printf.sprintf "export_%s_%d" table id in
  Rule_manager.register_function mgr func (fun ctx ->
      if sub.active then begin
        sub.count <- sub.count + 1;
        let rows =
          Query.rows
            (Strip_txn.Transaction.query ctx.Rule_manager.txn
               (Printf.sprintf "select %s from changes" (String.concat ", " cols)))
        in
        callback ~time:(Strip_txn.Clock.now ctx.Rule_manager.clock) ~rows
      end);
  let rules =
    List.filter_map
      (fun ev ->
        let rname, revents, src =
          match ev with
          | On_insert ->
            (Printf.sprintf "export_%s_%d_ins" table id, [ Rule_ast.On_insert ], "inserted")
          | On_update ->
            (Printf.sprintf "export_%s_%d_upd" table id, [ Rule_ast.On_update [] ], "new")
          | On_delete ->
            (Printf.sprintf "export_%s_%d_del" table id, [ Rule_ast.On_delete ], "deleted")
        in
        if List.mem ev events then begin
          Rule_manager.create_rule mgr
            {
              Rule_ast.rname;
              rtable = table;
              events = revents;
              condition =
                [ { Rule_ast.query = select_from src; bind_as = Some "changes" } ];
              evaluate = [];
              func;
              uniqueness;
              delay;
            };
          Some rname
        end
        else None)
      [ On_insert; On_update; On_delete ]
  in
  sub.rule_names <- rules;
  sub

let unsubscribe db sub =
  if sub.active then begin
    sub.active <- false;
    List.iter
      (fun name ->
        try Rule_manager.drop_rule (Strip_db.rules db) name
        with Rule_manager.Rule_error _ -> ())
      sub.rule_names
  end

let deliveries sub = sub.count
