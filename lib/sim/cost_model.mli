(** Simulated CPU cost model.

    Converts {!Strip_relational.Meter} counter deltas into microseconds of
    simulated CPU time on the paper's reference machine (an HP-735,
    99 MHz PA-RISC).

    Two groups of constants:

    - {b Table-1 primitives} — the paper gives only the canonical total:
      a one-tuple cursor update (begin task + begin transaction + get lock +
      open/fetch/update/close cursor + release lock + commit + end task)
      costs 172 µs (≈5,814 TPS).  The split across primitives below is a
      reconstruction; see DESIGN.md.
    - {b Query-processing and rule-system costs} — not covered by Table 1.
      These were calibrated once so that the non-unique [comp_prices]
      baseline lands near the paper's 36% CPU utilization (Figure 9) and
      then held fixed for every other configuration and experiment.

    Unknown counter names cost zero but are remembered, so a typo in a
    meter name is observable via {!unknown_counters}. *)

type t

val default : t

val create : (string * float) list -> t
(** Explicit cost table (name, µs per tick). *)

val override : t -> (string * float) list -> t
(** Functional update of selected entries. *)

val cost_us : t -> string -> float
(** Cost of one tick of a counter (0 if unknown). *)

val charge : t -> (string * int) list -> float
(** Total µs for a counter delta list (as produced by
    {!Strip_relational.Meter.diff}). *)

val charge_span :
  t ->
  before:Strip_relational.Meter.snapshot ->
  after:Strip_relational.Meter.snapshot ->
  float
(** [charge t (Meter.diff before after)], bit for bit, without building the
    delta list — the engine's per-task accounting path.  Per-cell rates are
    memoized on first use. *)

val entries : t -> (string * float) list
(** All (counter, µs) entries, sorted by name. *)

val table1_entries : t -> (string * float) list
(** The Table-1 primitive subset, in the paper's order. *)

val simple_update_us : t -> float
(** The canonical one-tuple cursor-update total (the paper's 172 µs). *)

val unknown_counters : unit -> string list
(** Counter names charged so far that no cost model knew about. *)
