open Strip_relational
open Strip_txn
let c_context_switch = Meter.counter "context_switch"
let c_sched_congestion = Meter.counter "sched_congestion"
let c_task_dead_letter = Meter.counter "task_dead_letter"
let c_task_dispatch = Meter.counter "task_dispatch"
let c_task_retry = Meter.counter "task_retry"
let c_task_shed = Meter.counter "task_shed"
module Trace = Strip_obs.Trace

type retry = {
  max_attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
}

let default_retry = { max_attempts = 5; base_backoff_s = 0.05; max_backoff_s = 2.0 }

type shed_policy = Drop | Coalesce

type overload = {
  high_watermark : int;
  shed_policy : shed_policy;
}

type t = {
  eclock : Clock.t;
  events : Task.t Event_queue.t;  (* the delay queue *)
  ready : Queues.t;
  cost : Cost_model.t;
  estats : Stats.t;
  retry : retry option;
  overload : overload option;
  locks : Lock.t option;
      (* when wired, committing transactions release their locks deferred
         (zombie holders) until the completion event at the task's
         simulated finish instant — the contention source for overlapping
         servers *)
  lock_timeout_s : float;
  servers : float array;  (* per-server next-free instants *)
  completions : int list Event_queue.t;
      (* finish instants of dispatched tasks; payload = the txids whose
         lock release was deferred inside the task body *)
  inflight : (int, float) Hashtbl.t;  (* deferred txid -> finish instant *)
  parked : (int, (Task.t * float) list ref) Hashtbl.t;
      (* blocker txid -> tasks parked on it, with their park instants;
         woken FIFO by task id when the blocker's completion flushes *)
  mutable n_parked : int;
  mutable arrivals : float array;
  recent_dispatches : float Queue.t;
      (* dispatch instants within the trailing second, for the congestion
         surcharge *)
  mutable dead : Task.t list;  (* newest first *)
  mutable on_requeue : (Task.t -> unit) option;
  mutable on_shed : (victim:Task.t -> into:Task.t option -> unit) option;
  mutable fatal : exn -> bool;
  mutable backlog_hint : int;
      (* optimistic count of live pending non-update tasks; may overcount
         externally-cancelled entries, resynced on every overload check *)
  trace : Trace.t option;
}

let create ~clock ?policy ?(cost = Cost_model.default) ?retry ?overload ?locks
    ?(servers = 1) ?(lock_timeout_s = 5.0) ?trace () =
  if servers < 1 then invalid_arg "Engine.create: servers < 1";
  {
    eclock = clock;
    events = Event_queue.create ();
    ready = Queues.create ?policy ();
    cost;
    estats = Stats.create ~servers ();
    retry;
    overload;
    locks;
    lock_timeout_s;
    servers = Array.make servers 0.0;
    completions = Event_queue.create ();
    inflight = Hashtbl.create 64;
    parked = Hashtbl.create 16;
    n_parked = 0;
    arrivals = [||];
    recent_dispatches = Queue.create ();
    dead = [];
    on_requeue = None;
    on_shed = None;
    fatal = (fun _ -> false);
    backlog_hint = 0;
    trace;
  }

let tid_of (task : Task.t) =
  match task.Task.klass with
  | Task.Update -> Trace.tid_update
  | Task.Recompute -> Trace.tid_recompute
  | Task.Background -> Trace.tid_background

(* Lifecycle instants share one argument vocabulary: the task id and its
   user-function name, so any event can be joined back to its task; when
   the task carries a causal context its trace/span/parent ids ride
   along, linking the event into the cluster-wide span tree. *)
let ctx_args (task : Task.t) =
  match task.Task.ctx with
  | None -> []
  | Some ctx -> Strip_obs.Span.args ctx

let trace_instant t ~ts ?(extra = []) name (task : Task.t) =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.instant tr ~ts ~tid:(tid_of task)
      ~args:
        ([
           ("task", Trace.Int task.Task.task_id);
           ("func", Trace.Str task.Task.func_name);
         ]
        @ ctx_args task @ extra)
      name

let clock t = t.eclock
let cost_model t = t.cost
let stats t = t.estats
let trace t = t.trace
let dead_letters t = List.rev t.dead
let set_requeue_hook t f = t.on_requeue <- Some f
let set_shed_hook t f = t.on_shed <- Some f
let set_fatal_filter t f = t.fatal <- f
let num_servers t = Array.length t.servers
let parked_count t = t.n_parked

(* The server the next dispatch lands on: earliest free, lowest index on
   ties — both deterministic. *)
let min_server t =
  let s = ref 0 in
  for i = 1 to Array.length t.servers - 1 do
    if t.servers.(i) < t.servers.(!s) then s := i
  done;
  !s

(* ------------------------------------------------------------------ *)
(* Overload control: when the live backlog of rule-triggered tasks
   exceeds the high watermark, shed delayed tasks — preferring expired
   deadlines, then low value, then staleness — so the engine keeps
   serving updates instead of drowning in recomputations. *)

let live_non_update acc (task : Task.t) =
  match (task.Task.klass, task.Task.state) with
  | Task.Update, _ -> acc
  | _, (Task.Pending | Task.Ready) -> acc + 1
  | _ -> acc

let backlog t =
  let parked =
    Hashtbl.fold
      (fun _ lst acc ->
        List.fold_left (fun acc (task, _) -> live_non_update acc task) acc !lst)
      t.parked 0
  in
  Queues.fold
    (fun acc task -> live_non_update acc task)
    (Event_queue.fold
       (fun acc _time task -> live_non_update acc task)
       parked t.events)
    t.ready

(* [a] is a better shed victim than [b]: expired deadline first, then the
   lowest value, then the stalest (oldest) task, then the lowest task id.
   The final tiebreak makes this a total order, so the victim chosen by
   folding over the delay queue is independent of the heap's internal
   layout (Event_queue.fold visits in arbitrary order). *)
let better_victim now (a : Task.t) (b : Task.t) =
  let expired (x : Task.t) =
    match x.Task.deadline with Some d -> d < now | None -> false
  in
  match (expired a, expired b) with
  | true, false -> true
  | false, true -> false
  | _ ->
    if a.Task.value <> b.Task.value then a.Task.value < b.Task.value
    else if a.Task.created_at <> b.Task.created_at then
      a.Task.created_at < b.Task.created_at
    else a.Task.task_id < b.Task.task_id

let pick_victim t ~exclude =
  let now = Clock.now t.eclock in
  Event_queue.fold
    (fun best _time (task : Task.t) ->
      match (task.Task.klass, task.Task.state) with
      | Task.Update, _ -> best
      | _, (Task.Ready | Task.Running | Task.Done | Task.Cancelled) -> best
      | _, Task.Pending ->
        if task == exclude then best
        else (
          match best with
          | None -> Some task
          | Some b -> if better_victim now task b then Some task else best))
    None t.events

(* The victim's bound rows can move into [into]'s TCB when the two tasks
   run the same user function with the same bound-table names — degraded
   batching (the rows lose their per-key transaction) but no lost data. *)
let can_coalesce ~into:(dst : Task.t) (victim : Task.t) =
  dst != victim
  && String.equal dst.Task.func_name victim.Task.func_name
  && victim.Task.bound <> []
  && List.for_all
       (fun (name, _) -> List.mem_assoc name dst.Task.bound)
       victim.Task.bound

let do_coalesce ~into:(dst : Task.t) (victim : Task.t) =
  List.iter
    (fun (name, tmp) -> Temp_table.absorb (List.assoc name dst.Task.bound) tmp)
    victim.Task.bound

let shed t ~incoming ov =
  if t.backlog_hint > ov.high_watermark then begin
    let exact = backlog t in
    t.backlog_hint <- exact;
    let excess = ref (exact - ov.high_watermark) in
    while !excess > 0 do
      match pick_victim t ~exclude:incoming with
      | None -> excess := 0
      | Some victim ->
        let into =
          if ov.shed_policy = Coalesce && can_coalesce ~into:incoming victim
          then Some incoming
          else None
        in
        (* The hook sees the victim with its bound rows still intact, and
           learns where they are headed — the durability layer uses this to
           log the merge before the rows change hands. *)
        (match t.on_shed with
        | Some f -> f ~victim ~into
        | None -> ());
        let coalesced =
          match into with
          | Some dst ->
            do_coalesce ~into:dst victim;
            true
          | None -> false
        in
        Task.cancel victim;
        Meter.tick_c c_task_shed;
        trace_instant t ~ts:(Clock.now t.eclock)
          ~extra:[ ("coalesced", Trace.Int (Bool.to_int coalesced)) ]
          "shed" victim;
        Stats.record_shed t.estats ~coalesced;
        t.backlog_hint <- t.backlog_hint - 1;
        decr excess
    done
  end

(* ------------------------------------------------------------------ *)

let submit t task =
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    t.backlog_hint <- t.backlog_hint + 1);
  trace_instant t ~ts:(Clock.now t.eclock)
    ~extra:[ ("release", Trace.Float task.Task.release_time) ]
    "enqueue" task;
  if task.Task.release_time <= Clock.now t.eclock then
    Queues.enqueue t.ready task
  else Event_queue.add t.events ~time:task.Task.release_time task;
  match (task.Task.klass, t.overload) with
  | Task.Update, _ | _, None -> ()
  | (Task.Recompute | Task.Background), Some ov -> shed t ~incoming:task ov

let set_arrival_profile t arrivals = t.arrivals <- arrivals

let pending t = Event_queue.length t.events + Queues.length t.ready + t.n_parked

let ready_length t = Queues.length t.ready

let delayed_length t = Event_queue.length t.events

(* Number of update arrivals in the open-closed interval (t0, t1]. *)
let arrivals_between t t0 t1 =
  let a = t.arrivals in
  let n = Array.length a in
  (* first index with a.(i) > t0 *)
  let lower bound =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= bound then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  max 0 (lower t1 - lower t0)

let release_due t =
  match Event_queue.pop t.events with
  | None -> ()
  | Some (time, task) ->
    (* Events dated before now exist only after crash recovery, when tasks
       rebuilt from the log keep their original release times but the clock
       has been advanced past them to charge the recovery downtime.  They
       release immediately; the clock never moves backwards. *)
    let time = Float.max time (Clock.now t.eclock) in
    Clock.advance_to t.eclock time;
    (match task.Task.state with
    | Task.Pending ->
      trace_instant t ~ts:time "release" task;
      Queues.enqueue t.ready task
    | Task.Ready | Task.Running | Task.Done | Task.Cancelled -> ())

(* Scheduling congestion (paper §5.1): "more recompute transactions means
   more tasks in the system at the same time which increases the scheduling
   time ... a critical region when transaction management costs become
   comparable to query costs".  We charge a surcharge quadratic in the
   dispatch rate over the trailing second; it is negligible below ~100
   tasks/s and dominant around the paper's critical region (~280 tasks/s,
   i.e. 500k recomputations per 30-minute run). *)
let congestion_us t now =
  let unit = Cost_model.cost_us t.cost "sched_congestion" in
  if unit <= 0.0 then 0.0
  else begin
    while
      (not (Queue.is_empty t.recent_dispatches))
      && Queue.peek t.recent_dispatches < now -. 1.0
    do
      ignore (Queue.pop t.recent_dispatches)
    done;
    Queue.push now t.recent_dispatches;
    let n = Queue.length t.recent_dispatches in
    let surcharge = unit *. float_of_int (n * n) in
    if surcharge > 0.0 then Meter.tick_cn c_sched_congestion (n * n);
    surcharge
  end

(* A failed attempt: re-enqueue with bounded exponential backoff while the
   retry budget lasts, dead-letter once it is exhausted, and fall back to
   the fail-fast contract (discard + propagate) when retry is off or the
   error is classified fatal. *)
let handle_failure t ~now task e =
  Stats.record_abort t.estats;
  trace_instant t ~ts:now
    ~extra:
      [
        ("attempt", Trace.Int task.Task.attempts);
        ("error", Trace.Str (Printexc.to_string e));
      ]
    "abort" task;
  if Float.is_nan task.Task.first_failed_at then
    task.Task.first_failed_at <- now;
  task.Task.first_blocked_at <- nan;
  match t.retry with
  | Some r when not (t.fatal e) ->
    if task.Task.attempts < r.max_attempts then begin
      let backoff =
        Float.min r.max_backoff_s
          (r.base_backoff_s
          *. (2.0 ** float_of_int (task.Task.attempts - 1)))
      in
      task.Task.release_time <- now +. backoff;
      Meter.tick_c c_task_retry;
      trace_instant t ~ts:now
        ~extra:[ ("backoff_s", Trace.Float backoff) ]
        "retry" task;
      Stats.record_retry t.estats;
      (match t.on_requeue with Some f -> f task | None -> ());
      submit t task
    end
    else begin
      Task.discard task;
      t.dead <- task :: t.dead;
      Meter.tick_c c_task_dead_letter;
      trace_instant t ~ts:now
        ~extra:[ ("attempts", Trace.Int task.Task.attempts) ]
        "dead_letter" task;
      Stats.record_dead_letter t.estats
    end
  | Some _ | None ->
    Task.discard task;
    raise e

(* Wake the tasks parked on [owner], FIFO by task id, at completion
   instant [time].  Tasks cancelled while parked (shed, discarded) are
   silently dropped. *)
let wake_parked t ~time owner =
  match Hashtbl.find_opt t.parked owner with
  | None -> ()
  | Some lst ->
    Hashtbl.remove t.parked owner;
    let woken =
      List.sort
        (fun ((a : Task.t), _) ((b : Task.t), _) ->
          compare a.Task.task_id b.Task.task_id)
        !lst
    in
    List.iter
      (fun ((task : Task.t), since) ->
        t.n_parked <- t.n_parked - 1;
        match task.Task.state with
        | Task.Pending ->
          Stats.record_lock_wait t.estats
            ~seconds:(Float.max 0.0 (time -. since));
          trace_instant t ~ts:time
            ~extra:[ ("blocker", Trace.Int owner) ]
            "wake" task;
          Queues.enqueue t.ready task
        | Task.Ready | Task.Running | Task.Done | Task.Cancelled -> ())
      woken

(* A completion event: the simulated instant a dispatched task finished.
   Flush the zombie locks of every transaction that committed inside its
   body, then wake their waiters. *)
let complete t ~advance time owners =
  if advance then Clock.advance_to t.eclock time;
  (match t.locks with
  | Some lk -> List.iter (fun owner -> Lock.flush lk ~owner) owners
  | None -> ());
  List.iter
    (fun owner ->
      Hashtbl.remove t.inflight owner;
      wake_parked t ~time owner)
    owners

let park t task ~start ~blocker ~finish =
  task.Task.attempts <- task.Task.attempts - 1;
  if Float.is_nan task.Task.first_blocked_at then
    task.Task.first_blocked_at <- start;
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background -> t.backlog_hint <- t.backlog_hint + 1);
  t.n_parked <- t.n_parked + 1;
  trace_instant t ~ts:start
    ~extra:[ ("blocker", Trace.Int blocker); ("until", Trace.Float finish) ]
    "lock_wait" task;
  (* Re-register unique transactions, as on retry: merges keep appending
     to the parked TCB while the task waits for the lock. *)
  (match t.on_requeue with Some f -> f task | None -> ());
  let lst =
    match Hashtbl.find_opt t.parked blocker with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add t.parked blocker l;
      l
  in
  lst := (task, start) :: !lst

let dispatch t task =
  let s = min_server t in
  let start = Float.max (Clock.now t.eclock) t.servers.(s) in
  Clock.advance_to t.eclock start;
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    t.backlog_hint <- t.backlog_hint - 1);
  task.Task.dispatched_at <- start;
  let queue_us = Float.max 0.0 (start -. task.Task.release_time) *. 1e6 in
  let before = Meter.snapshot () in
  Meter.tick_c c_task_dispatch;
  (match t.locks with Some lk -> Lock.begin_defer lk | None -> ());
  let failure =
    match Task.run task with () -> None | exception e -> Some e
  in
  let owners = match t.locks with Some lk -> Lock.end_defer lk | None -> [] in
  let after = Meter.snapshot () in
  (* A lock-blocked attempt parks on the conflicting holder instead of
     charging: its partial work was undone by the abort, and the modeled
     executor would have blocked in place rather than burned its server.
     Parking requires a blocker still in flight — injected conflicts carry
     no blockers and detected deadlocks must not wait, so both take the
     ordinary failure path — and a wait that has exceeded the timeout is
     presumed deadlocked and retried with backoff instead. *)
  let park_target =
    match (failure, t.locks) with
    | ( Some (Transaction.Lock_conflict { blockers; deadlock = false; _ }),
        Some _ )
      when blockers <> [] -> (
      let inflight =
        List.filter_map
          (fun b ->
            Option.map (fun f -> (f, b)) (Hashtbl.find_opt t.inflight b))
          blockers
      in
      (* wait on the holder that releases last, so one wake suffices *)
      match List.sort (fun a b -> compare b a) inflight with
      | [] -> None
      | (finish, blocker) :: _ ->
        if
          (not (Float.is_nan task.Task.first_blocked_at))
          && start -. task.Task.first_blocked_at > t.lock_timeout_s
        then begin
          Stats.record_lock_timeout t.estats;
          trace_instant t ~ts:start
            ~extra:[ ("blocker", Trace.Int blocker) ]
            "lock_timeout" task;
          None
        end
        else Some (blocker, finish))
    | _ -> None
  in
  match park_target with
  | Some (blocker, finish) ->
    (* Single-transaction task bodies cannot both defer a commit and then
       fail, but flush defensively if one did. *)
    (match t.locks with
    | Some lk -> List.iter (fun owner -> Lock.flush lk ~owner) owners
    | None -> ());
    park t task ~start ~blocker ~finish
  | None -> (
    let us = ref (Cost_model.charge_span t.cost ~before ~after) in
    (* Only rule-triggered tasks contend on the task-management structures
       (updates bypass the delay queue and unique hash). *)
    (match task.Task.klass with
    | Task.Update -> ()
    | Task.Recompute | Task.Background -> us := !us +. congestion_us t start);
    (* Charge preemption overhead: one context switch per update arriving
       while this (non-update) task occupies its server. *)
    (match task.Task.klass with
    | Task.Update -> ()
    | Task.Recompute | Task.Background ->
      let span = !us *. 1e-6 in
      let ctx = arrivals_between t start (start +. span) in
      if ctx > 0 then begin
        Meter.tick_cn c_context_switch ctx;
        us :=
          !us +. (Cost_model.cost_us t.cost "context_switch" *. float_of_int ctx);
        Stats.record_context_switches t.estats ctx
      end);
    task.Task.service_us <- !us;
    let finish = start +. (!us *. 1e-6) in
    t.servers.(s) <- finish;
    Stats.record_task ~server:s t.estats ~klass:task.Task.klass
      ~service_us:!us ~queue_us;
    if owners <> [] then begin
      List.iter (fun owner -> Hashtbl.replace t.inflight owner finish) owners;
      Event_queue.add t.completions ~time:finish owners
    end;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Trace.complete tr ~ts:start ~dur_us:!us ~tid:(tid_of task)
        ~args:
          ([
             ("task", Trace.Int task.Task.task_id);
             ("attempt", Trace.Int task.Task.attempts);
             ("queue_us", Trace.Float queue_us);
             ("server", Trace.Int s);
             ("ok", Trace.Int (Bool.to_int (Option.is_none failure)));
           ]
          @ ctx_args task)
        task.Task.func_name);
    match failure with
    | None ->
      task.Task.first_blocked_at <- nan;
      if
        task.Task.attempts > 1
        && not (Float.is_nan task.Task.first_failed_at)
      then
        Stats.record_recovery t.estats
          ~latency_s:(Float.max 0.0 (finish -. task.Task.first_failed_at))
    | Some e -> handle_failure t ~now:finish task e)

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    let tc = Event_queue.peek_time t.completions in
    let te = Event_queue.peek_time t.events in
    let has_ready = Queues.peek t.ready <> None in
    if (not has_ready) && tc = None && te = None then continue_ := false
    else begin
      (* The three possible next steps, earliest first; at equal instants
         completions run before releases run before dispatch, so a holder's
         locks are flushed before any task that could collide with it
         starts. *)
      let ds =
        if has_ready then
          Some (Float.max (Clock.now t.eclock) t.servers.(min_server t))
        else None
      in
      let le a b =
        match (a, b) with
        | Some x, Some y -> x <= y
        | Some _, None -> true
        | None, _ -> false
      in
      if (match tc with Some c -> le tc te && le (Some c) ds | None -> false)
      then begin
        if Option.get tc <= until then
          match Event_queue.pop t.completions with
          | Some (time, owners) -> complete t ~advance:true time owners
          | None -> ()
        else continue_ := false
      end
      else if match te with Some _ -> le te ds | None -> false then begin
        if Option.get te <= until then release_due t
        else continue_ := false
      end
      else
        match Queues.dequeue t.ready with
        | Some task -> dispatch t task
        | None -> ()
    end
  done;
  (* Exiting with completion events still queued (an [until] horizon cut
     before some dispatched task's finish instant): flush the zombie locks
     and wake their waiters without advancing the clock, so a caller
     resuming with direct transactions — or a later [run] — never collides
     with holders whose transactions are already over. *)
  let rec drain () =
    match Event_queue.pop t.completions with
    | None -> ()
    | Some (time, owners) ->
      complete t ~advance:false time owners;
      drain ()
  in
  drain ()

(* Crash: every queued, delayed, parked or in-flight task dies with the
   process.  Discarding (rather than cancelling) retires the tasks' bound
   tables so the temp-table pool stays balanced across a restart; parked
   waiters are explicitly drained so none leak as zombies — recovery
   re-creates the work they carried from the durable queue log. *)
let discard_all t =
  let rec drain_events () =
    match Event_queue.pop t.events with
    | None -> ()
    | Some (_, task) ->
      Task.discard task;
      drain_events ()
  in
  drain_events ();
  let rec drain_ready () =
    match Queues.dequeue t.ready with
    | None -> ()
    | Some task ->
      Task.discard task;
      drain_ready ()
  in
  drain_ready ();
  Hashtbl.iter
    (fun _ lst -> List.iter (fun (task, _) -> Task.discard task) !lst)
    t.parked;
  Hashtbl.reset t.parked;
  t.n_parked <- 0;
  let rec drain_completions () =
    match Event_queue.pop t.completions with
    | None -> ()
    | Some _ -> drain_completions ()
  in
  drain_completions ();
  Hashtbl.reset t.inflight;
  t.backlog_hint <- 0;
  Queue.clear t.recent_dispatches
