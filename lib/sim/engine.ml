open Strip_relational
open Strip_txn

type t = {
  eclock : Clock.t;
  events : Task.t Event_queue.t;  (* the delay queue *)
  ready : Queues.t;
  cost : Cost_model.t;
  estats : Stats.t;
  mutable cpu_free : float;
  mutable arrivals : float array;
  recent_dispatches : float Queue.t;
      (* dispatch instants within the trailing second, for the congestion
         surcharge *)
}

let create ~clock ?policy ?(cost = Cost_model.default) () =
  {
    eclock = clock;
    events = Event_queue.create ();
    ready = Queues.create ?policy ();
    cost;
    estats = Stats.create ();
    cpu_free = 0.0;
    arrivals = [||];
    recent_dispatches = Queue.create ();
  }

let clock t = t.eclock
let cost_model t = t.cost
let stats t = t.estats

let submit t task =
  if task.Task.release_time <= Clock.now t.eclock then
    Queues.enqueue t.ready task
  else Event_queue.add t.events ~time:task.Task.release_time task

let set_arrival_profile t arrivals = t.arrivals <- arrivals

let pending t = Event_queue.length t.events + Queues.length t.ready

(* Number of update arrivals in the open-closed interval (t0, t1]. *)
let arrivals_between t t0 t1 =
  let a = t.arrivals in
  let n = Array.length a in
  (* first index with a.(i) > t0 *)
  let lower bound =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= bound then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  max 0 (lower t1 - lower t0)

let release_due t =
  match Event_queue.pop t.events with
  | None -> ()
  | Some (time, task) ->
    Clock.advance_to t.eclock time;
    (match task.Task.state with
    | Task.Pending -> Queues.enqueue t.ready task
    | Task.Ready | Task.Running | Task.Done | Task.Cancelled -> ())

(* Scheduling congestion (paper §5.1): "more recompute transactions means
   more tasks in the system at the same time which increases the scheduling
   time ... a critical region when transaction management costs become
   comparable to query costs".  We charge a surcharge quadratic in the
   dispatch rate over the trailing second; it is negligible below ~100
   tasks/s and dominant around the paper's critical region (~280 tasks/s,
   i.e. 500k recomputations per 30-minute run). *)
let congestion_us t now =
  let unit = Cost_model.cost_us t.cost "sched_congestion" in
  if unit <= 0.0 then 0.0
  else begin
    while
      (not (Queue.is_empty t.recent_dispatches))
      && Queue.peek t.recent_dispatches < now -. 1.0
    do
      ignore (Queue.pop t.recent_dispatches)
    done;
    Queue.push now t.recent_dispatches;
    let n = Queue.length t.recent_dispatches in
    let surcharge = unit *. float_of_int (n * n) in
    if surcharge > 0.0 then Meter.tick_n "sched_congestion" (n * n);
    surcharge
  end

let dispatch t task =
  let start = Float.max (Clock.now t.eclock) t.cpu_free in
  Clock.advance_to t.eclock start;
  task.Task.dispatched_at <- start;
  let queue_us = Float.max 0.0 (start -. task.Task.release_time) *. 1e6 in
  let before = Meter.snapshot () in
  Meter.tick "task_dispatch";
  Task.run task;
  let deltas = Meter.diff before (Meter.snapshot ()) in
  let us = ref (Cost_model.charge t.cost deltas) in
  (* Only rule-triggered tasks contend on the task-management structures
     (updates bypass the delay queue and unique hash). *)
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background -> us := !us +. congestion_us t start);
  (* Charge preemption overhead: one context switch per update arriving
     while this (non-update) task occupies the CPU. *)
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    let span = !us *. 1e-6 in
    let ctx = arrivals_between t start (start +. span) in
    if ctx > 0 then begin
      Meter.tick_n "context_switch" ctx;
      us := !us +. (Cost_model.cost_us t.cost "context_switch" *. float_of_int ctx);
      Stats.record_context_switches t.estats ctx
    end);
  task.Task.service_us <- !us;
  t.cpu_free <- start +. (!us *. 1e-6);
  Stats.record_task t.estats ~klass:task.Task.klass ~service_us:!us ~queue_us

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match (Event_queue.peek_time t.events, Queues.peek t.ready) with
    | None, None -> continue_ := false
    | Some te, None -> if te <= until then release_due t else continue_ := false
    | None, Some _ -> (
      match Queues.dequeue t.ready with
      | Some task -> dispatch t task
      | None -> ())
    | Some te, Some _ ->
      (* Serve the CPU unless an earlier release must be processed first. *)
      let start = Float.max (Clock.now t.eclock) t.cpu_free in
      if te <= start then begin
        if te <= until then release_due t else continue_ := false
      end
      else begin
        match Queues.dequeue t.ready with
        | Some task -> dispatch t task
        | None -> ()
      end
  done
