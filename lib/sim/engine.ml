open Strip_relational
open Strip_txn
module Trace = Strip_obs.Trace

type retry = {
  max_attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
}

let default_retry = { max_attempts = 5; base_backoff_s = 0.05; max_backoff_s = 2.0 }

type shed_policy = Drop | Coalesce

type overload = {
  high_watermark : int;
  shed_policy : shed_policy;
}

type t = {
  eclock : Clock.t;
  events : Task.t Event_queue.t;  (* the delay queue *)
  ready : Queues.t;
  cost : Cost_model.t;
  estats : Stats.t;
  retry : retry option;
  overload : overload option;
  mutable cpu_free : float;
  mutable arrivals : float array;
  recent_dispatches : float Queue.t;
      (* dispatch instants within the trailing second, for the congestion
         surcharge *)
  mutable dead : Task.t list;  (* newest first *)
  mutable on_requeue : (Task.t -> unit) option;
  mutable fatal : exn -> bool;
  mutable backlog_hint : int;
      (* optimistic count of live pending non-update tasks; may overcount
         externally-cancelled entries, resynced on every overload check *)
  trace : Trace.t option;
}

let create ~clock ?policy ?(cost = Cost_model.default) ?retry ?overload ?trace
    () =
  {
    eclock = clock;
    events = Event_queue.create ();
    ready = Queues.create ?policy ();
    cost;
    estats = Stats.create ();
    retry;
    overload;
    cpu_free = 0.0;
    arrivals = [||];
    recent_dispatches = Queue.create ();
    dead = [];
    on_requeue = None;
    fatal = (fun _ -> false);
    backlog_hint = 0;
    trace;
  }

let tid_of (task : Task.t) =
  match task.Task.klass with
  | Task.Update -> Trace.tid_update
  | Task.Recompute -> Trace.tid_recompute
  | Task.Background -> Trace.tid_background

(* Lifecycle instants share one argument vocabulary: the task id and its
   user-function name, so any event can be joined back to its task. *)
let trace_instant t ~ts ?(extra = []) name (task : Task.t) =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.instant tr ~ts ~tid:(tid_of task)
      ~args:
        ([
           ("task", Trace.Int task.Task.task_id);
           ("func", Trace.Str task.Task.func_name);
         ]
        @ extra)
      name

let clock t = t.eclock
let cost_model t = t.cost
let stats t = t.estats
let trace t = t.trace
let dead_letters t = List.rev t.dead
let set_requeue_hook t f = t.on_requeue <- Some f
let set_fatal_filter t f = t.fatal <- f

(* ------------------------------------------------------------------ *)
(* Overload control: when the live backlog of rule-triggered tasks
   exceeds the high watermark, shed delayed tasks — preferring expired
   deadlines, then low value, then staleness — so the engine keeps
   serving updates instead of drowning in recomputations. *)

let live_non_update acc (task : Task.t) =
  match (task.Task.klass, task.Task.state) with
  | Task.Update, _ -> acc
  | _, (Task.Pending | Task.Ready) -> acc + 1
  | _ -> acc

let backlog t =
  Queues.fold
    (fun acc task -> live_non_update acc task)
    (Event_queue.fold (fun acc _time task -> live_non_update acc task) 0 t.events)
    t.ready

(* [a] is a better shed victim than [b]: expired deadline first, then the
   lowest value, then the stalest (oldest) task. *)
let better_victim now (a : Task.t) (b : Task.t) =
  let expired (x : Task.t) =
    match x.Task.deadline with Some d -> d < now | None -> false
  in
  match (expired a, expired b) with
  | true, false -> true
  | false, true -> false
  | _ ->
    if a.Task.value <> b.Task.value then a.Task.value < b.Task.value
    else a.Task.created_at < b.Task.created_at

let pick_victim t ~exclude =
  let now = Clock.now t.eclock in
  Event_queue.fold
    (fun best _time (task : Task.t) ->
      match (task.Task.klass, task.Task.state) with
      | Task.Update, _ -> best
      | _, (Task.Ready | Task.Running | Task.Done | Task.Cancelled) -> best
      | _, Task.Pending ->
        if task == exclude then best
        else (
          match best with
          | None -> Some task
          | Some b -> if better_victim now task b then Some task else best))
    None t.events

(* Move the victim's bound rows into [into]'s TCB when the two tasks run
   the same user function with the same bound-table names — degraded
   batching (the rows lose their per-key transaction) but no lost data. *)
let try_coalesce ~into:(dst : Task.t) (victim : Task.t) =
  if
    dst != victim
    && String.equal dst.Task.func_name victim.Task.func_name
    && victim.Task.bound <> []
    && List.for_all
         (fun (name, _) -> List.mem_assoc name dst.Task.bound)
         victim.Task.bound
  then begin
    List.iter
      (fun (name, tmp) ->
        Temp_table.absorb (List.assoc name dst.Task.bound) tmp)
      victim.Task.bound;
    true
  end
  else false

let shed t ~incoming ov =
  if t.backlog_hint > ov.high_watermark then begin
    let exact = backlog t in
    t.backlog_hint <- exact;
    let excess = ref (exact - ov.high_watermark) in
    while !excess > 0 do
      match pick_victim t ~exclude:incoming with
      | None -> excess := 0
      | Some victim ->
        let coalesced =
          ov.shed_policy = Coalesce && try_coalesce ~into:incoming victim
        in
        Task.cancel victim;
        Meter.tick "task_shed";
        trace_instant t ~ts:(Clock.now t.eclock)
          ~extra:[ ("coalesced", Trace.Int (Bool.to_int coalesced)) ]
          "shed" victim;
        Stats.record_shed t.estats ~coalesced;
        t.backlog_hint <- t.backlog_hint - 1;
        decr excess
    done
  end

(* ------------------------------------------------------------------ *)

let submit t task =
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    t.backlog_hint <- t.backlog_hint + 1);
  trace_instant t ~ts:(Clock.now t.eclock)
    ~extra:[ ("release", Trace.Float task.Task.release_time) ]
    "enqueue" task;
  if task.Task.release_time <= Clock.now t.eclock then
    Queues.enqueue t.ready task
  else Event_queue.add t.events ~time:task.Task.release_time task;
  match (task.Task.klass, t.overload) with
  | Task.Update, _ | _, None -> ()
  | (Task.Recompute | Task.Background), Some ov -> shed t ~incoming:task ov

let set_arrival_profile t arrivals = t.arrivals <- arrivals

let pending t = Event_queue.length t.events + Queues.length t.ready

let ready_length t = Queues.length t.ready

let delayed_length t = Event_queue.length t.events

(* Number of update arrivals in the open-closed interval (t0, t1]. *)
let arrivals_between t t0 t1 =
  let a = t.arrivals in
  let n = Array.length a in
  (* first index with a.(i) > t0 *)
  let lower bound =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= bound then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  max 0 (lower t1 - lower t0)

let release_due t =
  match Event_queue.pop t.events with
  | None -> ()
  | Some (time, task) ->
    Clock.advance_to t.eclock time;
    (match task.Task.state with
    | Task.Pending ->
      trace_instant t ~ts:time "release" task;
      Queues.enqueue t.ready task
    | Task.Ready | Task.Running | Task.Done | Task.Cancelled -> ())

(* Scheduling congestion (paper §5.1): "more recompute transactions means
   more tasks in the system at the same time which increases the scheduling
   time ... a critical region when transaction management costs become
   comparable to query costs".  We charge a surcharge quadratic in the
   dispatch rate over the trailing second; it is negligible below ~100
   tasks/s and dominant around the paper's critical region (~280 tasks/s,
   i.e. 500k recomputations per 30-minute run). *)
let congestion_us t now =
  let unit = Cost_model.cost_us t.cost "sched_congestion" in
  if unit <= 0.0 then 0.0
  else begin
    while
      (not (Queue.is_empty t.recent_dispatches))
      && Queue.peek t.recent_dispatches < now -. 1.0
    do
      ignore (Queue.pop t.recent_dispatches)
    done;
    Queue.push now t.recent_dispatches;
    let n = Queue.length t.recent_dispatches in
    let surcharge = unit *. float_of_int (n * n) in
    if surcharge > 0.0 then Meter.tick_n "sched_congestion" (n * n);
    surcharge
  end

(* A failed attempt: re-enqueue with bounded exponential backoff while the
   retry budget lasts, dead-letter once it is exhausted, and fall back to
   the fail-fast contract (discard + propagate) when retry is off or the
   error is classified fatal. *)
let handle_failure t task e =
  Stats.record_abort t.estats;
  trace_instant t ~ts:t.cpu_free
    ~extra:
      [
        ("attempt", Trace.Int task.Task.attempts);
        ("error", Trace.Str (Printexc.to_string e));
      ]
    "abort" task;
  if Float.is_nan task.Task.first_failed_at then
    task.Task.first_failed_at <- t.cpu_free;
  match t.retry with
  | Some r when not (t.fatal e) ->
    if task.Task.attempts < r.max_attempts then begin
      let backoff =
        Float.min r.max_backoff_s
          (r.base_backoff_s
          *. (2.0 ** float_of_int (task.Task.attempts - 1)))
      in
      task.Task.release_time <- t.cpu_free +. backoff;
      Meter.tick "task_retry";
      trace_instant t ~ts:t.cpu_free
        ~extra:[ ("backoff_s", Trace.Float backoff) ]
        "retry" task;
      Stats.record_retry t.estats;
      (match t.on_requeue with Some f -> f task | None -> ());
      submit t task
    end
    else begin
      Task.discard task;
      t.dead <- task :: t.dead;
      Meter.tick "task_dead_letter";
      trace_instant t ~ts:t.cpu_free
        ~extra:[ ("attempts", Trace.Int task.Task.attempts) ]
        "dead_letter" task;
      Stats.record_dead_letter t.estats
    end
  | Some _ | None ->
    Task.discard task;
    raise e

let dispatch t task =
  let start = Float.max (Clock.now t.eclock) t.cpu_free in
  Clock.advance_to t.eclock start;
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    t.backlog_hint <- t.backlog_hint - 1);
  task.Task.dispatched_at <- start;
  let queue_us = Float.max 0.0 (start -. task.Task.release_time) *. 1e6 in
  let before = Meter.snapshot () in
  Meter.tick "task_dispatch";
  let failure =
    match Task.run task with () -> None | exception e -> Some e
  in
  let deltas = Meter.diff before (Meter.snapshot ()) in
  let us = ref (Cost_model.charge t.cost deltas) in
  (* Only rule-triggered tasks contend on the task-management structures
     (updates bypass the delay queue and unique hash). *)
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background -> us := !us +. congestion_us t start);
  (* Charge preemption overhead: one context switch per update arriving
     while this (non-update) task occupies the CPU. *)
  (match task.Task.klass with
  | Task.Update -> ()
  | Task.Recompute | Task.Background ->
    let span = !us *. 1e-6 in
    let ctx = arrivals_between t start (start +. span) in
    if ctx > 0 then begin
      Meter.tick_n "context_switch" ctx;
      us := !us +. (Cost_model.cost_us t.cost "context_switch" *. float_of_int ctx);
      Stats.record_context_switches t.estats ctx
    end);
  task.Task.service_us <- !us;
  t.cpu_free <- start +. (!us *. 1e-6);
  Stats.record_task t.estats ~klass:task.Task.klass ~service_us:!us ~queue_us;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.complete tr ~ts:start ~dur_us:!us ~tid:(tid_of task)
      ~args:
        [
          ("task", Trace.Int task.Task.task_id);
          ("attempt", Trace.Int task.Task.attempts);
          ("queue_us", Trace.Float queue_us);
          ("ok", Trace.Int (Bool.to_int (Option.is_none failure)));
        ]
      task.Task.func_name);
  match failure with
  | None ->
    if task.Task.attempts > 1 && not (Float.is_nan task.Task.first_failed_at)
    then
      Stats.record_recovery t.estats
        ~latency_s:(Float.max 0.0 (t.cpu_free -. task.Task.first_failed_at))
  | Some e -> handle_failure t task e

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match (Event_queue.peek_time t.events, Queues.peek t.ready) with
    | None, None -> continue_ := false
    | Some te, None -> if te <= until then release_due t else continue_ := false
    | None, Some _ -> (
      match Queues.dequeue t.ready with
      | Some task -> dispatch t task
      | None -> ())
    | Some te, Some _ ->
      (* Serve the CPU unless an earlier release must be processed first. *)
      let start = Float.max (Clock.now t.eclock) t.cpu_free in
      if te <= start then begin
        if te <= until then release_due t else continue_ := false
      end
      else begin
        match Queues.dequeue t.ready with
        | Some task -> dispatch t task
        | None -> ()
      end
  done
