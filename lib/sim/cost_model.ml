open Strip_relational

type t = {
  costs : (string, float) Hashtbl.t;
  (* per-meter-cell memo of [cost_us]; nan marks an unresolved slot (no
     real cost is nan).  Filled on first charge of a cell, so the unknown-
     counter bookkeeping still only sees counters that were charged. *)
  mutable rates : float array;
}

let unknown : (string, unit) Hashtbl.t = Hashtbl.create 8

let table1_order =
  [
    "begin_task";
    "begin_transaction";
    "get_lock";
    "open_cursor";
    "fetch_cursor";
    "update_cursor";
    "close_cursor";
    "release_lock";
    "commit_transaction";
    "end_task";
  ]

(* Reconstructed Table-1 primitives (µs); they sum to the paper's stated
   172 µs for a simple one-tuple cursor update. *)
let table1_costs =
  [
    ("begin_task", 30.0);
    ("begin_transaction", 10.0);
    ("get_lock", 18.0);
    ("open_cursor", 10.0);
    ("fetch_cursor", 12.0);
    ("update_cursor", 27.0);
    ("close_cursor", 10.0);
    ("release_lock", 15.0);
    ("commit_transaction", 25.0);
    ("end_task", 15.0);
  ]

(* Query-processing, storage and rule-system costs (µs).  Calibrated once
   against the Figure-9 non-unique baseline (see DESIGN.md / EXPERIMENTS.md)
   and held fixed across all experiments. *)
let other_costs =
  [
    (* storage engine *)
    ("insert_record", 35.0);
    ("update_record", 0.0);  (* folded into update_cursor *)
    ("delete_record", 20.0);
    ("delete_cursor", 15.0);
    ("index_update", 100.0);
    ("index_probe", 150.0);
    (* query processing *)
    ("seq_row", 3.0);
    ("predicate_eval", 4.0);
    ("hash_build", 15.0);
    ("hash_probe", 25.0);
    (* one pointer advance of the ordered-index merge join; cheaper than a
       full index probe because both sides stream in key order *)
    ("merge_step", 20.0);
    ("join_row", 8.0);
    ("row_construct", 12.0);
    ("agg_row", 40.0);
    ("group_init", 45.0);
    ("sort_row", 20.0);
    (* rule system *)
    ("bound_append", 10.0);
    ("rule_check", 25.0);
    ("unique_hash", 12.0);
    (* Appendix-A partitioning of a firing's bound rows by the unique
       columns — paid only by [unique on] rules *)
    ("partition_row", 15.0);
    (* task management and scheduling *)
    ("sched_op", 20.0);
    ("task_dispatch", 30.0);
    ("context_switch", 180.0);
    ("abort_transaction", 50.0);
    (* failure subsystem: re-enqueue of a failed task, dead-letter
       bookkeeping, overload shedding, and the injector's own draw *)
    ("task_retry", 25.0);
    ("task_dead_letter", 20.0);
    ("task_shed", 25.0);
    ("fault_injected", 0.0);
    (* durability: WAL serialization is cheap, the (simulated) fsync is
       the stable-storage round trip; checkpoint/recovery costs are per
       row / redo op / requeued task and drive the recovery-time model *)
    ("wal_append", 15.0);
    ("wal_fsync", 120.0);
    ("checkpoint_row", 1.0);
    ("recovery_restore_row", 2.0);
    ("recovery_redo_op", 60.0);
    ("recovery_requeue", 40.0);
    ("repl_ship_segment", 25.0);
    ("repl_apply_op", 40.0);
    ("repl_bootstrap_row", 2.0);
    (* storage faults: the scrubber's sequential re-read is cheap per
       byte; a salvage attempt pays a replica round trip plus the splice,
       and quarantine/truncation is local byte shuffling.  Disk-full
       stalls and recovery-side fallbacks charge their bookkeeping. *)
    ("scrub_pass", 20.0);
    ("scrub_byte", 0.02);
    ("salvage_attempt", 50.0);
    ("salvage_byte", 0.1);
    ("quarantine_byte", 0.02);
    ("repl_salvage_served", 25.0);
    ("disk_full_stall", 30.0);
    ("recovery_cp_fallback", 25.0);
    ("recovery_orphan_merge", 40.0);
    (* per (tasks dispatched in the trailing second)², charged per
       recompute dispatch — the §5.1 critical-region congestion *)
    ("sched_congestion", 0.005);
    (* user functions *)
    ("bs_eval", 250.0);  (* Black-Scholes: ln/exp/sqrt/erf on a 99 MHz CPU *)
    ("ugroup_row", 10.0);  (* user-code aggregation of a coarse batch, §5.2 *)
    (* user-code keep-last grouping of full rows (the coarse option batch);
       costlier than the rule system's partitioning, §5.2 second bullet *)
    ("ulast_row", 85.0);
    (* last-value dedupe inside a pre-partitioned batch — cheaper than
       user-code grouping because the rule system already split the rows
       by the unique columns (§5.2, second bullet) *)
    ("dedupe_row", 30.0);
  ]

let create entries =
  let costs = Hashtbl.create 64 in
  List.iter (fun (name, us) -> Hashtbl.replace costs name us) entries;
  { costs; rates = [||] }

let default = create (table1_costs @ other_costs)

let override t entries =
  let costs = Hashtbl.copy t.costs in
  List.iter (fun (name, us) -> Hashtbl.replace costs name us) entries;
  { costs; rates = [||] }

let cost_us t name =
  match Hashtbl.find_opt t.costs name with
  | Some us -> us
  | None ->
    Hashtbl.replace unknown name ();
    0.0

let charge t deltas =
  List.fold_left
    (fun acc (name, n) -> acc +. (cost_us t name *. float_of_int n))
    0.0 deltas

let rate t cell =
  let id = Meter.cell_id cell in
  let n = Array.length t.rates in
  if id >= n then begin
    let grown = Array.make (max 64 (max (id + 1) (2 * n))) nan in
    Array.blit t.rates 0 grown 0 n;
    t.rates <- grown
  end;
  let v = t.rates.(id) in
  if Float.is_nan v then begin
    let us = cost_us t (Meter.name_of_cell cell) in
    t.rates.(id) <- us;
    us
  end
  else v

let charge_span t ~before ~after =
  Meter.charge_diff before after ~rate:(rate t)

let entries t =
  Hashtbl.fold (fun name us acc -> (name, us) :: acc) t.costs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let table1_entries t = List.map (fun name -> (name, cost_us t name)) table1_order

let simple_update_us t =
  List.fold_left (fun acc name -> acc +. cost_us t name) 0.0 table1_order

let unknown_counters () =
  Hashtbl.fold (fun name () acc -> name :: acc) unknown []
  |> List.sort String.compare
