(** Run statistics collected by the simulation engine.

    Everything the paper's figures need: CPU busy time split by task class
    (utilization, Figures 9/12), recomputation counts (Figures 10/13) and
    recompute service-time moments (Figures 11/14). *)

type t

val create : unit -> t

val record_task :
  t -> klass:Strip_txn.Task.klass -> service_us:float -> queue_us:float -> unit

val record_context_switches : t -> int -> unit

(** {1 Failure accounting}

    Populated by the engine's retry/overload machinery and by the bench's
    fault-injection scenarios: failed attempts (aborts), re-enqueues
    (retries), overload sheds, exhausted tasks (dead letters), and the
    latency from a task's first failure to its eventual success. *)

val record_abort : t -> unit
val record_retry : t -> unit

val record_shed : t -> coalesced:bool -> unit
(** A task shed by overload control; [coalesced] when its bound rows were
    merged into a surviving task rather than dropped. *)

val record_dead_letter : t -> unit
val record_recovery : t -> latency_s:float -> unit

val n_aborts : t -> int
val n_retries : t -> int
val n_sheds : t -> int
val n_coalesced : t -> int
val n_dead_letters : t -> int
val n_recoveries : t -> int

val mean_recovery_s : t -> float
(** Mean first-failure→success latency (0 if no recoveries). *)

val max_recovery_s : t -> float

val busy_us : t -> float
(** Total simulated CPU time consumed. *)

val busy_us_of : t -> Strip_txn.Task.klass -> float

val tasks_run : t -> Strip_txn.Task.klass -> int

val n_recompute : t -> int
(** Recompute transactions executed — the paper's N_r. *)

val mean_service_us : t -> Strip_txn.Task.klass -> float
(** Mean service time (queueing excluded, as in Figure 11). *)

val max_service_us : t -> Strip_txn.Task.klass -> float

val mean_queue_us : t -> Strip_txn.Task.klass -> float

val context_switches : t -> int

val utilization : t -> duration_s:float -> float
(** busy / duration. *)

val pp_summary : duration_s:float -> Format.formatter -> t -> unit
