(** Run statistics collected by the simulation engine.

    Everything the paper's figures need: CPU busy time split by task class
    (utilization, Figures 9/12), recomputation counts (Figures 10/13) and
    recompute service-time moments (Figures 11/14) — plus, for the Section
    7/8 curves, log-bucketed latency histograms (service time, queue wait,
    recovery) and per-derived-table {e staleness} distributions sampled at
    commit time of each rule transaction.

    Every accessor is total: with no samples recorded (or a zero duration)
    the means, percentiles and utilization return 0.0, never NaN or
    infinity, so downstream report arithmetic stays finite. *)

type t

val create : ?servers:int -> unit -> t
(** [servers] (default 1) sizes the per-server busy/task accounting the
    multi-server engine fills in. *)

val record_task :
  ?server:int ->
  t ->
  klass:Strip_txn.Task.klass ->
  service_us:float ->
  queue_us:float ->
  unit
(** [server] (default 0) attributes the service time to that executor's
    busy counter; out-of-range indices only skip the per-server
    attribution. *)

val record_context_switches : t -> int -> unit

(** {1 Lock arbitration}

    Filled in by the multi-server engine: a {e lock wait} is one
    park → wake episode of a task blocked on a conflicting holder; a
    {e lock timeout} is a wait that exceeded the presumed-deadlock
    timeout and was routed to the retry path instead. *)

val record_lock_wait : t -> seconds:float -> unit
val record_lock_timeout : t -> unit
val n_lock_waits : t -> int
val n_lock_timeouts : t -> int

val lock_wait_hist : t -> Strip_obs.Histogram.t
(** Park → wake wait distribution, in seconds. *)

(** {1 Per-server accounting} *)

val num_servers : t -> int

val server_busy_us : t -> int -> float
(** Busy µs of server [i]; raises on out-of-range [i]. *)

val server_tasks : t -> int -> int

val per_server_utilization : t -> duration_s:float -> float list
(** Busy fraction of each server over [duration_s]; all zeros when
    [duration_s <= 0]. *)

(** {1 Failure accounting}

    Populated by the engine's retry/overload machinery and by the bench's
    fault-injection scenarios: failed attempts (aborts), re-enqueues
    (retries), overload sheds, exhausted tasks (dead letters), and the
    latency from a task's first failure to its eventual success. *)

val record_abort : t -> unit
val record_retry : t -> unit

val record_shed : t -> coalesced:bool -> unit
(** A task shed by overload control; [coalesced] when its bound rows were
    merged into a surviving task rather than dropped. *)

val record_dead_letter : t -> unit
val record_recovery : t -> latency_s:float -> unit

val n_aborts : t -> int
val n_retries : t -> int
val n_sheds : t -> int
val n_coalesced : t -> int
val n_dead_letters : t -> int
val n_recoveries : t -> int

val mean_recovery_s : t -> float
(** Mean first-failure→success latency (0 if no recoveries). *)

val max_recovery_s : t -> float

val recovery_hist : t -> Strip_obs.Histogram.t
(** Recovery-latency distribution, in seconds. *)

(** {1 Crash restarts}

    Filled in by the crash-recovery driver: one sample per hard crash
    ({!Strip_txn.Fault.Crashed}), measuring the simulated time from the
    crash instant to the restarted engine accepting work again. *)

val record_crash : t -> recovery_s:float -> unit
val n_crashes : t -> int
val total_crash_recovery_s : t -> float

val crash_recovery_hist : t -> Strip_obs.Histogram.t
(** Crash → engine-back-up restart-latency distribution, in seconds. *)

val record_failover : t -> unit
(** A crash resolved by promoting a replica rather than restarting in
    place (replication subsystem). *)

val n_failovers : t -> int

(** {1 Staleness}

    The paper's Section 7 metric: how out of date a derived table is when
    a maintenance transaction finally commits.  Each sample is [commit
    time - first firing time] of the committing rule transaction — the age
    of the oldest base-data change the commit folds in (merged firings are
    younger).  Sampled by the rule layer at commit of every recompute /
    background transaction, keyed by the table(s) the transaction wrote. *)

val record_staleness : t -> table:string -> seconds:float -> unit

val staleness_tables : t -> string list
(** Tables with at least one staleness sample, sorted. *)

val staleness_of : t -> string -> Strip_obs.Histogram.t option
val staleness_hist : t -> string -> Strip_obs.Histogram.t
(** Like {!staleness_of} but creates an empty histogram on first use. *)

(** {1 Task-class statistics} *)

val busy_us : t -> float
(** Total simulated CPU time consumed. *)

val busy_us_of : t -> Strip_txn.Task.klass -> float

val tasks_run : t -> Strip_txn.Task.klass -> int

val n_recompute : t -> int
(** Recompute transactions executed — the paper's N_r. *)

val mean_service_us : t -> Strip_txn.Task.klass -> float
(** Mean service time (queueing excluded, as in Figure 11). *)

val max_service_us : t -> Strip_txn.Task.klass -> float

val mean_queue_us : t -> Strip_txn.Task.klass -> float

val service_hist : t -> Strip_txn.Task.klass -> Strip_obs.Histogram.t
(** Service-time distribution (µs). *)

val queue_hist : t -> Strip_txn.Task.klass -> Strip_obs.Histogram.t
(** Queue-wait distribution (µs, release to dispatch). *)

val service_percentile_us : t -> Strip_txn.Task.klass -> float -> float
(** [service_percentile_us t klass p] for [p] in [0,100]; 0.0 when no
    samples. *)

val queue_percentile_us : t -> Strip_txn.Task.klass -> float -> float

val context_switches : t -> int

val utilization : t -> duration_s:float -> float
(** busy / duration; 0.0 when [duration_s <= 0]. *)

val pp_summary : duration_s:float -> Format.formatter -> t -> unit
