(** Time-ordered event queue (binary min-heap).

    Ties are broken by insertion order, so simultaneous events are handled
    first-scheduled-first — this keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit

val peek_time : 'a t -> float option

val pop : 'a t -> (float * 'a) option

val length : 'a t -> int

val is_empty : 'a t -> bool

val fold : ('b -> float -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Fold over every queued [(time, payload)], in arbitrary (heap) order —
    used by the overload controller to scan delayed tasks for shed
    victims. *)
