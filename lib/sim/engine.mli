(** Discrete-event simulation engine.

    Mirrors STRIP's task flow (paper Figure 15) on a single simulated CPU:
    tasks with future release times wait in the delay queue (the event
    heap), released tasks enter the ready queue, and the CPU serves ready
    tasks — updates before recomputes, the scheduling policy ordering each
    class.

    Every task body is {e really executed} against the database when
    dispatched; the engine converts the {!Strip_relational.Meter} counter
    delta of that execution into simulated service time through the
    {!Cost_model}.  The only approximation versus a preemptive system is
    that preemption is charged, not interleaved: a recompute transaction
    pays one context switch per update that arrives during its service
    window (the §5.2 observation that "longer running transactions ... seem
    to be preempted more often").

    Virtual time during a body's execution is the dispatch instant; service
    time is added when the body finishes.  Update transactions are 2-3
    orders of magnitude shorter than rule delay windows, so the error this
    introduces in commit timestamps is negligible (see DESIGN.md). *)

type t

val create :
  clock:Strip_txn.Clock.t ->
  ?policy:Strip_txn.Queues.policy ->
  ?cost:Cost_model.t ->
  unit ->
  t

val clock : t -> Strip_txn.Clock.t
val cost_model : t -> Cost_model.t
val stats : t -> Stats.t

val submit : t -> Strip_txn.Task.t -> unit
(** Enter a task into the system at its [release_time]: future releases go
    to the delay queue, due ones to the ready queue. *)

val set_arrival_profile : t -> float array -> unit
(** Sorted times of all update arrivals, used to charge context switches to
    long recompute transactions. *)

val pending : t -> int
(** Tasks in the delay queue plus the ready queue. *)

val run : ?until:float -> t -> unit
(** Drain the system: process releases and serve tasks until both queues
    are empty (or the next event lies beyond [until]). *)
