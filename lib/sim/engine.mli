(** Discrete-event simulation engine.

    Mirrors STRIP's task flow (paper Figure 15) across [servers] logical
    executors (STRIP dispatched transactions to a pool of executor
    processes): tasks with future release times wait in the delay queue
    (the event heap), released tasks enter the ready queue, and each ready
    task is dispatched to the earliest-free server — updates before
    recomputes, the scheduling policy ordering each class — so service
    windows overlap in simulated time.

    Every task body is {e really executed} against the database when
    dispatched; the engine converts the {!Strip_relational.Meter} counter
    delta of that execution into simulated service time through the
    {!Cost_model}.  The only approximation versus a preemptive system is
    that preemption is charged, not interleaved: a recompute transaction
    pays one context switch per update that arrives during its service
    window (the §5.2 observation that "longer running transactions ... seem
    to be preempted more often").

    With a lock manager wired ([locks]), concurrency is arbitrated for
    real: a committing transaction's locks are released {e deferred} —
    held as zombies until the completion event at the task's simulated
    finish instant — so a later-dispatched overlapping task that conflicts
    observes [Blocked], aborts its partial attempt (undo for real), and
    parks on the engine's wait queue without being charged.  Waiters wake
    FIFO by task id when the blocking holder's completion flushes; a wait
    exceeding [lock_timeout_s] is presumed deadlocked and routed to the
    retry/backoff path instead.  With one server the completion of task
    [k] is always processed before task [k+1] dispatches, so locks never
    collide and behavior is identical to the historical serial engine.

    Virtual time during a body's execution is the dispatch instant; service
    time is added when the body finishes.  Update transactions are 2-3
    orders of magnitude shorter than rule delay windows, so the error this
    introduces in commit timestamps is negligible (see DESIGN.md and
    docs/CONCURRENCY.md). *)

type retry = {
  max_attempts : int;  (** total attempts (first run + retries) per task *)
  base_backoff_s : float;  (** backoff after the first failure *)
  max_backoff_s : float;  (** exponential backoff cap *)
}
(** Retry policy for failed tasks.  A task whose body raises is re-enqueued
    with its bound tables intact after [min(max, base * 2^(attempt-1))]
    seconds of backoff; once [max_attempts] attempts have failed it is
    moved to the dead-letter list instead. *)

val default_retry : retry
(** 5 attempts, 50 ms base backoff, 2 s cap. *)

type shed_policy =
  | Drop  (** cancel the victim, retiring its bound tables *)
  | Coalesce
      (** first try to fold the victim's bound rows into the task being
          submitted (same user function and bound-table names); drop
          otherwise *)

type overload = {
  high_watermark : int;
      (** max live pending rule-triggered (non-update) tasks *)
  shed_policy : shed_policy;
}
(** Overload control: when a submitted rule task pushes the backlog past
    the watermark, delayed tasks are shed — expired deadlines first, then
    lowest value, then stalest — so the engine keeps serving updates
    (the paper's soft-real-time degradation).  Every shed is recorded in
    {!Stats} and ticks ["task_shed"]. *)

type t

val create :
  clock:Strip_txn.Clock.t ->
  ?policy:Strip_txn.Queues.policy ->
  ?cost:Cost_model.t ->
  ?retry:retry ->
  ?overload:overload ->
  ?locks:Strip_txn.Lock.t ->
  ?servers:int ->
  ?lock_timeout_s:float ->
  ?trace:Strip_obs.Trace.t ->
  unit ->
  t
(** Without [retry], a task failure discards the task and re-raises (the
    historical fail-fast contract); without [overload], nothing is shed.
    Without [locks], commits release immediately and nothing ever parks
    (the standalone-engine contract).  [servers] (default 1) sets the
    executor count; [lock_timeout_s] (default 5 s) bounds a task's total
    lock wait before it is presumed deadlocked and retried.  With [trace],
    every task lifecycle step — [enqueue], [release], the execution span,
    [abort], [retry], [shed], [dead_letter], [lock_wait], [wake],
    [lock_timeout] — is emitted into the ring buffer, stamped with
    simulated time.
    @raise Invalid_argument if [servers < 1]. *)

val clock : t -> Strip_txn.Clock.t
val cost_model : t -> Cost_model.t
val stats : t -> Stats.t

val num_servers : t -> int

val parked_count : t -> int
(** Tasks currently parked on a lock wait. *)

val trace : t -> Strip_obs.Trace.t option
(** The tracer passed to {!create}, if any. *)

val dead_letters : t -> Strip_txn.Task.t list
(** Tasks whose retry budget was exhausted, oldest first.  Their bound
    tables are retired but the TCBs remain inspectable (id, function,
    unique key, attempts). *)

val set_requeue_hook : t -> (Strip_txn.Task.t -> unit) -> unit
(** Called just before a failed task is re-enqueued for retry — the rule
    manager uses it to re-register unique transactions so merges continue
    while the task waits out its backoff. *)

val set_fatal_filter : t -> (exn -> bool) -> unit
(** Exceptions matching the filter are never retried: the task is
    discarded and the exception propagates (used for programming errors
    such as unregistered user functions). *)

val set_shed_hook :
  t -> (victim:Strip_txn.Task.t -> into:Strip_txn.Task.t option -> unit) -> unit
(** Called for every shed victim {e before} its bound rows are coalesced
    or dropped; [into] is the task absorbing the rows under the [Coalesce]
    policy (None for a plain drop).  The durability layer uses this to log
    the queue transition while the victim's TCB is still intact. *)

val backlog : t -> int
(** Live pending rule-triggered (non-update) tasks across the delay queue,
    the ready queue and the lock-wait parking lot — the quantity compared
    against the overload watermark. *)

val submit : t -> Strip_txn.Task.t -> unit
(** Enter a task into the system at its [release_time]: future releases go
    to the delay queue, due ones to the ready queue. *)

val set_arrival_profile : t -> float array -> unit
(** Sorted times of all update arrivals, used to charge context switches to
    long recompute transactions. *)

val pending : t -> int
(** Tasks in the delay queue, the ready queue, and parked on locks. *)

val ready_length : t -> int
(** Live tasks in the ready queue (cancelled entries excluded). *)

val delayed_length : t -> int
(** Tasks in the delay queue awaiting release. *)

val run : ?until:float -> t -> unit
(** Drain the system: process releases, completions and dispatches in
    event order until everything is empty (or the next timed event lies
    beyond [until]).  On exit any still-queued completion events are
    flushed without advancing the clock, so no zombie lock outlives a
    [run] call. *)

val discard_all : t -> unit
(** Crash semantics: discard every delayed, ready, parked and in-flight
    task, retiring their bound tables, and reset all volatile scheduling
    state (parking lot, inflight map, backlog, dispatch history).  Parked
    waiters are drained explicitly so none leak as zombies across a
    restart; the dead-letter list and cumulative stats survive (they
    describe the pre-crash epoch). *)
