open Strip_txn
module Histogram = Strip_obs.Histogram

type per_class = {
  mutable n : int;
  mutable busy : float;  (* µs *)
  mutable queue : float;  (* µs *)
  mutable max_service : float;
  service_h : Histogram.t;  (* µs *)
  queue_h : Histogram.t;  (* µs *)
}

type t = {
  update : per_class;
  recompute : per_class;
  background : per_class;
  (* per-server busy time / task counts (multi-server engine) *)
  sbusy : float array;  (* µs *)
  stasks : int array;
  (* lock arbitration *)
  lock_wait_h : Histogram.t;  (* s, park → wake *)
  mutable lock_waits : int;
  mutable lock_timeouts : int;
  mutable ctx : int;
  (* failure subsystem *)
  mutable aborts : int;
  mutable retries : int;
  mutable sheds : int;
  mutable coalesced : int;
  mutable dead_letters : int;
  mutable recoveries : int;
  mutable recovery_s : float;  (* total *)
  mutable max_recovery_s : float;
  recovery_h : Histogram.t;  (* s *)
  (* crash-restart subsystem *)
  mutable crashes : int;
  mutable crash_recovery_s : float;  (* total *)
  crash_recovery_h : Histogram.t;  (* s, crash → engine back up *)
  mutable failovers : int;  (* crashes resolved by replica promotion *)
  (* per-derived-table staleness, sampled at recompute commit (s) *)
  staleness : (string, Histogram.t) Hashtbl.t;
}

let fresh () =
  {
    n = 0;
    busy = 0.0;
    queue = 0.0;
    max_service = 0.0;
    service_h = Histogram.create ();
    queue_h = Histogram.create ();
  }

let create ?(servers = 1) () =
  {
    update = fresh ();
    recompute = fresh ();
    background = fresh ();
    sbusy = Array.make (max 1 servers) 0.0;
    stasks = Array.make (max 1 servers) 0;
    lock_wait_h = Histogram.create ();
    lock_waits = 0;
    lock_timeouts = 0;
    ctx = 0;
    aborts = 0;
    retries = 0;
    sheds = 0;
    coalesced = 0;
    dead_letters = 0;
    recoveries = 0;
    recovery_s = 0.0;
    max_recovery_s = 0.0;
    recovery_h = Histogram.create ();
    crashes = 0;
    crash_recovery_s = 0.0;
    crash_recovery_h = Histogram.create ();
    failovers = 0;
    staleness = Hashtbl.create 8;
  }

let slot t (klass : Task.klass) =
  match klass with
  | Task.Update -> t.update
  | Task.Recompute -> t.recompute
  | Task.Background -> t.background

let record_task ?(server = 0) t ~klass ~service_us ~queue_us =
  let s = slot t klass in
  s.n <- s.n + 1;
  s.busy <- s.busy +. service_us;
  s.queue <- s.queue +. queue_us;
  Histogram.add s.service_h service_us;
  Histogram.add s.queue_h queue_us;
  if service_us > s.max_service then s.max_service <- service_us;
  if server >= 0 && server < Array.length t.sbusy then begin
    t.sbusy.(server) <- t.sbusy.(server) +. service_us;
    t.stasks.(server) <- t.stasks.(server) + 1
  end

let record_context_switches t n = t.ctx <- t.ctx + n

let record_lock_wait t ~seconds =
  t.lock_waits <- t.lock_waits + 1;
  Histogram.add t.lock_wait_h seconds

let record_lock_timeout t = t.lock_timeouts <- t.lock_timeouts + 1

let n_lock_waits t = t.lock_waits
let n_lock_timeouts t = t.lock_timeouts
let lock_wait_hist t = t.lock_wait_h

let num_servers t = Array.length t.sbusy
let server_busy_us t i = t.sbusy.(i)
let server_tasks t i = t.stasks.(i)

let per_server_utilization t ~duration_s =
  Array.to_list
    (Array.map
       (fun busy ->
         if duration_s <= 0.0 then 0.0 else busy *. 1e-6 /. duration_s)
       t.sbusy)

let record_abort t = t.aborts <- t.aborts + 1
let record_retry t = t.retries <- t.retries + 1

let record_shed t ~coalesced =
  t.sheds <- t.sheds + 1;
  if coalesced then t.coalesced <- t.coalesced + 1

let record_dead_letter t = t.dead_letters <- t.dead_letters + 1

let record_recovery t ~latency_s =
  t.recoveries <- t.recoveries + 1;
  t.recovery_s <- t.recovery_s +. latency_s;
  Histogram.add t.recovery_h latency_s;
  if latency_s > t.max_recovery_s then t.max_recovery_s <- latency_s

let record_crash t ~recovery_s =
  t.crashes <- t.crashes + 1;
  t.crash_recovery_s <- t.crash_recovery_s +. recovery_s;
  Histogram.add t.crash_recovery_h recovery_s

let n_crashes t = t.crashes
let total_crash_recovery_s t = t.crash_recovery_s
let crash_recovery_hist t = t.crash_recovery_h
let record_failover t = t.failovers <- t.failovers + 1
let n_failovers t = t.failovers

let staleness_hist t table =
  match Hashtbl.find_opt t.staleness table with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.staleness table h;
    h

let record_staleness t ~table ~seconds =
  Histogram.add (staleness_hist t table) seconds

let staleness_tables t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.staleness []
  |> List.sort String.compare

let staleness_of t table = Hashtbl.find_opt t.staleness table

let n_aborts t = t.aborts
let n_retries t = t.retries
let n_sheds t = t.sheds
let n_coalesced t = t.coalesced
let n_dead_letters t = t.dead_letters
let n_recoveries t = t.recoveries

let mean_recovery_s t =
  if t.recoveries = 0 then 0.0 else t.recovery_s /. float_of_int t.recoveries

let max_recovery_s t = t.max_recovery_s

let recovery_hist t = t.recovery_h

let busy_us t = t.update.busy +. t.recompute.busy +. t.background.busy

let busy_us_of t klass = (slot t klass).busy

let tasks_run t klass = (slot t klass).n

let n_recompute t = t.recompute.n

let mean_service_us t klass =
  let s = slot t klass in
  if s.n = 0 then 0.0 else s.busy /. float_of_int s.n

let max_service_us t klass = (slot t klass).max_service

let mean_queue_us t klass =
  let s = slot t klass in
  if s.n = 0 then 0.0 else s.queue /. float_of_int s.n

let service_hist t klass = (slot t klass).service_h
let queue_hist t klass = (slot t klass).queue_h

let service_percentile_us t klass p =
  Histogram.percentile (slot t klass).service_h p

let queue_percentile_us t klass p = Histogram.percentile (slot t klass).queue_h p

let context_switches t = t.ctx

let utilization t ~duration_s =
  if duration_s <= 0.0 then 0.0 else busy_us t *. 1e-6 /. duration_s

let pp_summary ~duration_s ppf t =
  let failure_suffix =
    if t.aborts + t.retries + t.sheds + t.dead_letters = 0 then ""
    else
      Printf.sprintf
        "\naborts: %d, retries: %d, sheds: %d (%d coalesced), dead letters: \
         %d\nrecoveries: %d, mean %.1f ms, max %.1f ms"
        t.aborts t.retries t.sheds t.coalesced t.dead_letters t.recoveries
        (1e3 *. mean_recovery_s t)
        (1e3 *. t.max_recovery_s)
  in
  let server_suffix =
    if Array.length t.sbusy <= 1 then ""
    else
      String.concat ""
        (List.mapi
           (fun i busy ->
             Printf.sprintf "\nserver %d: %d tasks, %.1f s busy (%.1f%%)" i
               t.stasks.(i) (busy *. 1e-6)
               (if duration_s <= 0.0 then 0.0
                else 100.0 *. busy *. 1e-6 /. duration_s))
           (Array.to_list t.sbusy))
  in
  let lock_suffix =
    if t.lock_waits + t.lock_timeouts = 0 then ""
    else
      Printf.sprintf
        "\nlock waits: %d (mean %.2f ms, p99 %.2f ms, max %.2f ms), timeouts: \
         %d"
        t.lock_waits
        (1e3 *. Histogram.mean t.lock_wait_h)
        (1e3 *. Histogram.percentile t.lock_wait_h 99.0)
        (1e3 *. Histogram.max_value t.lock_wait_h)
        t.lock_timeouts
  in
  let staleness_suffix =
    String.concat ""
      (List.map
         (fun table ->
           let h = staleness_hist t table in
           Printf.sprintf
             "\nstaleness %s: %d samples, mean %.2f s, p50 %.2f s, p99 %.2f \
              s, max %.2f s"
             table (Histogram.count h) (Histogram.mean h)
             (Histogram.percentile h 50.0)
             (Histogram.percentile h 99.0)
             (Histogram.max_value h))
         (staleness_tables t))
  in
  Format.fprintf ppf
    "@[<v>cpu utilization: %.1f%%@,\
     updates: %d tasks, %.1f s busy@,\
     recomputes: %d tasks, %.1f s busy, mean %.1f us, p50 %.1f us, p99 %.1f \
     us, max %.1f us@,\
     context switches: %d%s%s%s%s@]"
    (100.0 *. utilization t ~duration_s)
    t.update.n (t.update.busy *. 1e-6) t.recompute.n
    (t.recompute.busy *. 1e-6)
    (mean_service_us t Task.Recompute)
    (service_percentile_us t Task.Recompute 50.0)
    (service_percentile_us t Task.Recompute 99.0)
    t.recompute.max_service t.ctx server_suffix lock_suffix failure_suffix
    staleness_suffix
