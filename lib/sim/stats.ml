open Strip_txn

type per_class = {
  mutable n : int;
  mutable busy : float;  (* µs *)
  mutable queue : float;  (* µs *)
  mutable max_service : float;
}

type t = {
  update : per_class;
  recompute : per_class;
  background : per_class;
  mutable ctx : int;
}

let fresh () = { n = 0; busy = 0.0; queue = 0.0; max_service = 0.0 }

let create () =
  { update = fresh (); recompute = fresh (); background = fresh (); ctx = 0 }

let slot t (klass : Task.klass) =
  match klass with
  | Task.Update -> t.update
  | Task.Recompute -> t.recompute
  | Task.Background -> t.background

let record_task t ~klass ~service_us ~queue_us =
  let s = slot t klass in
  s.n <- s.n + 1;
  s.busy <- s.busy +. service_us;
  s.queue <- s.queue +. queue_us;
  if service_us > s.max_service then s.max_service <- service_us

let record_context_switches t n = t.ctx <- t.ctx + n

let busy_us t = t.update.busy +. t.recompute.busy +. t.background.busy

let busy_us_of t klass = (slot t klass).busy

let tasks_run t klass = (slot t klass).n

let n_recompute t = t.recompute.n

let mean_service_us t klass =
  let s = slot t klass in
  if s.n = 0 then 0.0 else s.busy /. float_of_int s.n

let max_service_us t klass = (slot t klass).max_service

let mean_queue_us t klass =
  let s = slot t klass in
  if s.n = 0 then 0.0 else s.queue /. float_of_int s.n

let context_switches t = t.ctx

let utilization t ~duration_s =
  if duration_s <= 0.0 then 0.0 else busy_us t *. 1e-6 /. duration_s

let pp_summary ~duration_s ppf t =
  Format.fprintf ppf
    "@[<v>cpu utilization: %.1f%%@,\
     updates: %d tasks, %.1f s busy@,\
     recomputes: %d tasks, %.1f s busy, mean %.1f us, max %.1f us@,\
     context switches: %d@]"
    (100.0 *. utilization t ~duration_s)
    t.update.n (t.update.busy *. 1e-6) t.recompute.n
    (t.recompute.busy *. 1e-6)
    (mean_service_us t Task.Recompute)
    t.recompute.max_service t.ctx
