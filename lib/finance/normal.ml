(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1.0 /. (1.0 +. (p *. x)) in
  let y =
    1.0
    -. (((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1)
       *. t *. Float.exp (-.x *. x)
  in
  sign *. y

let cdf x = 0.5 *. (1.0 +. erf (x /. Float.sqrt 2.0))

let pdf x = Float.exp (-0.5 *. x *. x) /. Float.sqrt (2.0 *. Float.pi)
