(** Weighted composite indexes (paper Appendix B).

    A composite's price is [Σ wᵢ pᵢ] over its member stocks.  Because the
    function is linear, it supports the incremental maintenance the
    [comp_prices] rules rely on: a member price change Δp contributes
    exactly [w · Δp] to the composite. *)

val price : weights:float array -> prices:float array -> float
(** Full recomputation.  @raise Invalid_argument on length mismatch. *)

val delta : weight:float -> old_price:float -> new_price:float -> float
(** Incremental contribution of one member change. *)

val apply_deltas : float -> (float * float * float) list -> float
(** [apply_deltas current changes] folds [(weight, old, new)] changes into
    a composite price — the aggregation [compute_comps2] performs in user
    code (paper Figure 6). *)
