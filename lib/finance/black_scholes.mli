(** Black-Scholes call-option pricing (paper Appendix B).

    {[
      p = ps * Φ(d1) - pe * e^(-rt) * Φ(d2)
      d1 = (ln(ps/pe) + (r + σ²/2) t) / (σ √t)
      d2 = d1 - σ √t
    ]}

    where [ps] is the stock price, [pe] the exercise (strike) price, [r]
    the risk-free rate, [σ] the annualized volatility and [t] the time to
    expiration in years.

    Every call ticks the ["bs_eval"] meter — this is the dominant CPU cost
    of maintaining [option_prices] in the paper's experiments. *)

val call :
  stock_price:float ->
  strike:float ->
  rate:float ->
  volatility:float ->
  expiry_years:float ->
  float
(** Theoretical call price.  Degenerate inputs follow the model's limits:
    at [expiry_years <= 0] or [volatility <= 0] the price is the intrinsic
    value [max (ps - pe*e^-rt) 0].
    @raise Invalid_argument on non-positive stock or strike price. *)

val default_rate : float
(** 5% continuously-compounded risk-free rate used by the PTA. *)

val register_sql_function : unit -> unit
(** Register [f_bs(price, strike, expiry_years, stdev)] as a SQL scalar
    function (rate fixed at {!default_rate}), the [f_BS] of the paper's
    [option_prices] view definition. *)
