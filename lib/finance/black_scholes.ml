open Strip_relational

let c_bs_eval = Meter.counter "bs_eval"

let default_rate = 0.05

let call ~stock_price ~strike ~rate ~volatility ~expiry_years =
  Meter.tick_c c_bs_eval;
  if stock_price <= 0.0 then
    invalid_arg "Black_scholes.call: non-positive stock price";
  if strike <= 0.0 then invalid_arg "Black_scholes.call: non-positive strike";
  let discounted_strike = strike *. Float.exp (-.rate *. expiry_years) in
  if expiry_years <= 0.0 || volatility <= 0.0 then
    Float.max (stock_price -. discounted_strike) 0.0
  else begin
    let sqrt_t = Float.sqrt expiry_years in
    let d1 =
      (Float.log (stock_price /. strike)
      +. ((rate +. (0.5 *. volatility *. volatility)) *. expiry_years))
      /. (volatility *. sqrt_t)
    in
    let d2 = d1 -. (volatility *. sqrt_t) in
    (stock_price *. Normal.cdf d1) -. (discounted_strike *. Normal.cdf d2)
  end

let register_sql_function () =
  Expr.register_fun "f_bs" ~ret:Value.TFloat (fun args ->
      match args with
      | [ price; strike; expiry; stdev ] ->
        if List.exists Value.is_null args then Value.Null
        else
          Value.Float
            (call ~stock_price:(Value.to_float price)
               ~strike:(Value.to_float strike) ~rate:default_rate
               ~volatility:(Value.to_float stdev)
               ~expiry_years:(Value.to_float expiry))
      | _ ->
        raise
          (Value.Type_error
             "f_bs expects (price, strike, expiry_years, stdev)"))
