let price ~weights ~prices =
  if Array.length weights <> Array.length prices then
    invalid_arg "Composite.price: weights/prices length mismatch";
  let total = ref 0.0 in
  for i = 0 to Array.length weights - 1 do
    total := !total +. (weights.(i) *. prices.(i))
  done;
  !total

let delta ~weight ~old_price ~new_price = weight *. (new_price -. old_price)

let apply_deltas current changes =
  List.fold_left
    (fun acc (weight, old_price, new_price) ->
      acc +. delta ~weight ~old_price ~new_price)
    current changes
