(** Standard normal distribution.

    The paper computes Φ "using the error function in the C math library";
    OCaml's stdlib has no [erf], so we implement the Abramowitz & Stegun
    7.1.26 rational approximation (|error| < 1.5e-7), which matches C
    library precision for this purpose. *)

val erf : float -> float
(** Error function, |absolute error| < 1.5e-7. *)

val cdf : float -> float
(** Φ(x): cumulative distribution function of N(0,1). *)

val pdf : float -> float
(** φ(x): density of N(0,1). *)
