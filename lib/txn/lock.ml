open Strip_relational

let c_get_lock = Meter.counter "get_lock"
let c_release_lock = Meter.counter "release_lock"

type mode = S | X

type resource =
  | Rel of string
  | Rec of string * int

type outcome =
  | Granted
  | Blocked of int list
  | Deadlock of int list

type entry = {
  mutable lholders : (int * mode) list;
  mutable lwaiters : (int * mode) list;  (* FIFO order *)
}

type t = {
  entries : (resource, entry) Hashtbl.t;
  owned : (int, resource list ref) Hashtbl.t;
  (* Deferred release (multi-server simulation): while [defer] is on, a
     committing owner's locks are kept in place as "zombie" holders — the
     transaction is over in real execution order but its simulated commit
     instant lies in the future, so later-dispatched overlapping tasks must
     still collide with it.  The engine flushes the zombies when the
     holder's completion event fires. *)
  mutable defer : bool;
  mutable deferred : int list;  (* owners deferred in the current window, newest first *)
}

let create () =
  {
    entries = Hashtbl.create 256;
    owned = Hashtbl.create 32;
    defer = false;
    deferred = [];
  }

let begin_defer t =
  t.defer <- true;
  t.deferred <- []

let end_defer t =
  t.defer <- false;
  let owners = List.rev t.deferred in
  t.deferred <- [];
  owners

let entry_of t res =
  match Hashtbl.find_opt t.entries res with
  | Some e -> e
  | None ->
    let e = { lholders = []; lwaiters = [] } in
    Hashtbl.add t.entries res e;
    e

let owned_of t owner =
  match Hashtbl.find_opt t.owned owner with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.owned owner l;
    l

let mode_leq a b =
  match (a, b) with S, _ -> true | X, X -> true | X, S -> false

(* Wait-for edges: waiter -> every conflicting holder. *)
let wait_for_edges t =
  Hashtbl.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc (w, wm) ->
          List.fold_left
            (fun acc (h, hm) ->
              if h <> w && (wm = X || hm = X) then (w, h) :: acc else acc)
            acc e.lholders)
        acc e.lwaiters)
    t.entries []

(* Would adding edge (from, to_) close a cycle?  DFS from [to_]. *)
let creates_cycle edges from to_ =
  let rec reachable seen node =
    if node = from then true
    else if List.mem node seen then false
    else
      List.exists
        (fun (a, b) -> a = node && reachable (node :: seen) b)
        edges
  in
  reachable [] to_

let holds t ~owner res =
  match Hashtbl.find_opt t.entries res with
  | None -> None
  | Some e -> (
    let modes = List.filter_map (fun (o, m) -> if o = owner then Some m else None) e.lholders in
    match modes with
    | [] -> None
    | l -> if List.mem X l then Some X else Some S)

let acquire t ~owner res mode =
  let e = entry_of t res in
  match holds t ~owner res with
  | Some held when mode_leq mode held -> Granted
  | held_opt ->
    let conflicting =
      List.filter
        (fun (o, m) -> o <> owner && (mode = X || m = X))
        e.lholders
    in
    if conflicting = [] then begin
      (* Grant, possibly an upgrade. *)
      Meter.tick_c c_get_lock;
      (match held_opt with
      | Some _ ->
        e.lholders <-
          List.map (fun (o, m) -> if o = owner then (o, mode) else (o, m)) e.lholders
      | None ->
        e.lholders <- (owner, mode) :: e.lholders;
        let l = owned_of t owner in
        l := res :: !l);
      Granted
    end
    else begin
      let blockers = List.map fst conflicting in
      let edges = wait_for_edges t in
      let cycle =
        List.exists (fun b -> creates_cycle edges owner b) blockers
      in
      if cycle then Deadlock blockers
      else begin
        if
          not
            (List.exists (fun (o, m) -> o = owner && m = mode) e.lwaiters)
        then e.lwaiters <- e.lwaiters @ [ (owner, mode) ];
        Blocked blockers
      end
    end

let clear_waiters t ~owner =
  Hashtbl.iter
    (fun _ e -> e.lwaiters <- List.filter (fun (o, _) -> o <> owner) e.lwaiters)
    t.entries

(* Physically remove the owner's holder entries.  [tick] selects whether
   each released resource charges a ["release_lock"]: true on the commit /
   abort path (the Table-1 cost is paid then), false when flushing locks
   whose release was already charged at the deferred commit. *)
let release_physical ~tick t ~owner =
  (match Hashtbl.find_opt t.owned owner with
  | None -> ()
  | Some l ->
    List.iter
      (fun res ->
        match Hashtbl.find_opt t.entries res with
        | None -> ()
        | Some e ->
          let before = List.length e.lholders in
          e.lholders <- List.filter (fun (o, _) -> o <> owner) e.lholders;
          if tick && List.length e.lholders < before then
            Meter.tick_c c_release_lock;
          if e.lholders = [] && e.lwaiters = [] then
            Hashtbl.remove t.entries res)
      !l;
    Hashtbl.remove t.owned owner);
  (* Clear the owner's waiter entries everywhere. *)
  clear_waiters t ~owner

let release_now t ~owner = release_physical ~tick:true t ~owner

let release_all t ~owner =
  if t.defer then begin
    (* Deferred commit: charge the releases now — they happen inside the
       task body's metering window, exactly where an immediate release
       would tick — but keep the holder entries as zombies until the
       engine flushes them at the simulated completion instant. *)
    (match Hashtbl.find_opt t.owned owner with
    | None -> ()
    | Some l -> List.iter (fun _ -> Meter.tick_c c_release_lock) !l);
    clear_waiters t ~owner;
    t.deferred <- owner :: t.deferred
  end
  else release_physical ~tick:true t ~owner

let flush t ~owner = release_physical ~tick:false t ~owner

let holders t res =
  match Hashtbl.find_opt t.entries res with
  | None -> []
  | Some e -> e.lholders

let waiters t res =
  match Hashtbl.find_opt t.entries res with
  | None -> []
  | Some e -> e.lwaiters

let locks_held t ~owner =
  match Hashtbl.find_opt t.owned owner with
  | None -> 0
  | Some l -> List.length !l
