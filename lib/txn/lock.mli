(** Two-phase lock manager.

    Shared/exclusive locks at table and record granularity, with upgrade
    (S to X by the sole shared holder) and wait-for-graph deadlock
    detection.  The discrete-event simulator executes one transaction at a
    time, so at runtime [acquire] always grants; the waiting and deadlock
    machinery exists because it is part of the substrate the paper assumes
    (lock conflicts are its argument for short recompute transactions) and
    is exercised directly by the test suite.

    Successful acquisitions tick ["get_lock"]; releases tick
    ["release_lock"] — the two Table-1 costs around every cursor update. *)

type mode = S | X

type resource =
  | Rel of string  (** whole table *)
  | Rec of string * int  (** (table, record id) *)

type outcome =
  | Granted
  | Blocked of int list
      (** conflicting owners; the request was queued as a waiter *)
  | Deadlock of int list
      (** granting would close a wait-for cycle through these owners;
          the request was not queued *)

type t

val create : unit -> t

val acquire : t -> owner:int -> resource -> mode -> outcome
(** Re-acquiring a held lock (same or weaker mode) is a no-op granting
    immediately and ticking nothing. *)

val release_all : t -> owner:int -> unit
(** Release every lock held by [owner] and drop its waiter entries, then
    promote any waiters that can now run (their next [acquire] will be
    granted; promotion here just clears the queue slot). *)

val holds : t -> owner:int -> resource -> mode option
(** Strongest mode held, if any. *)

val holders : t -> resource -> (int * mode) list

val waiters : t -> resource -> (int * mode) list

val locks_held : t -> owner:int -> int
(** Number of distinct resources the owner holds. *)
