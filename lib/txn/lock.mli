(** Two-phase lock manager.

    Shared/exclusive locks at table and record granularity, with upgrade
    (S to X by the sole shared holder) and wait-for-graph deadlock
    detection.  Task bodies really execute one at a time, but under the
    multi-server engine their simulated service windows overlap: a
    committing transaction's locks are released {e deferred} — kept in
    place as zombie holders until the engine's completion event at the
    simulated finish instant flushes them — so later-dispatched tasks
    whose windows overlap a conflicting holder observe [Blocked] and park
    on the engine's wait queue (woken FIFO by task id).

    Successful acquisitions tick ["get_lock"]; releases tick
    ["release_lock"] — the two Table-1 costs around every cursor update.
    A deferred release ticks at commit time (inside the task body's
    metering window, where an immediate release would); the later flush
    ticks nothing, so service-time charges are identical with and without
    deferral. *)

type mode = S | X

type resource =
  | Rel of string  (** whole table *)
  | Rec of string * int  (** (table, record id) *)

type outcome =
  | Granted
  | Blocked of int list
      (** conflicting owners; the request was queued as a waiter *)
  | Deadlock of int list
      (** granting would close a wait-for cycle through these owners;
          the request was not queued *)

type t

val create : unit -> t

val acquire : t -> owner:int -> resource -> mode -> outcome
(** Re-acquiring a held lock (same or weaker mode) is a no-op granting
    immediately and ticking nothing. *)

val release_all : t -> owner:int -> unit
(** Release every lock held by [owner] and drop its waiter entries, then
    promote any waiters that can now run (their next [acquire] will be
    granted; promotion here just clears the queue slot).  Inside a
    {!begin_defer} window the release is deferred: the ["release_lock"]
    ticks are charged immediately but the holder entries stay as zombies
    until {!flush}. *)

val release_now : t -> owner:int -> unit
(** Like {!release_all} but always physical, even inside a defer window —
    the abort path: an aborted transaction undid its effects for real, so
    its locks must not linger as zombies. *)

(** {1 Deferred release (multi-server simulation)} *)

val begin_defer : t -> unit
(** Start a defer window: subsequent {!release_all} calls keep their
    holder entries in place and record the owner. *)

val end_defer : t -> int list
(** Close the window and return the owners whose release was deferred
    inside it, oldest first.  The caller schedules a {!flush} for each at
    the simulated completion instant. *)

val flush : t -> owner:int -> unit
(** Physically remove a deferred owner's zombie holder entries without
    ticking (the release was already charged at commit). *)

val holds : t -> owner:int -> resource -> mode option
(** Strongest mode held, if any. *)

val holders : t -> resource -> (int * mode) list

val waiters : t -> resource -> (int * mode) list

val locks_held : t -> owner:int -> int
(** Number of distinct resources the owner holds. *)
