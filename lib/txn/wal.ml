open Strip_relational

(* ------------------------------------------------------------------ *)
(* Record vocabulary.                                                   *)

let c_wal_append = Meter.counter "wal_append"
let c_wal_fsync = Meter.counter "wal_fsync"

type op =
  | Insert of { table : string; order : int; values : Value.t array }
  | Delete of { table : string; order : int; values : Value.t array }
  | Update of {
      table : string;
      order : int;
      old_values : Value.t array;
      new_values : Value.t array;
    }

type bound_rows = (string * Value.t array list) list

(* What a trace note annotates: the commit with this txid (so a replica
   can parent its apply span under the primary's commit span), or the
   queued unique batch for (func, key) (so crash recovery can reattach
   the context to the resubmitted task). *)
type trace_subject =
  | For_txn of int
  | For_uq of { func : string; key : Value.t list }

type record =
  | Commit of { txid : int; time : float; ops : op list }
  | Uq_enqueue of {
      func : string;
      key : Value.t list;
      release_time : float;
      created_at : float;
      bound : bound_rows;
    }
  | Uq_merge of { func : string; key : Value.t list; bound : bound_rows }
  | Uq_release of { func : string; key : Value.t list }
  | Checkpoint_mark of { time : float; lsn : int }
  | Trace_note of { subject : trace_subject; trace : int; span : int }
      (* written only when tracing is on, riding the same fsync as the
         record it annotates; flag-off logs carry no notes and stay
         byte-identical *)
  | Shard_out of {
      seq : int;
      dst : int;
      key : Value.t list;
      delta : float;
      created_at : float;
    }
      (* a weighted partial delta this shard owes the composite row [key]
         on shard [dst]; rides the emitting commit's fsync, so recovery
         re-ships exactly the partials the commit made durable *)
  | Shard_in of {
      src : int;
      seq : int;
      key : Value.t list;
      delta : float;
      created_at : float;
    }
      (* receipt of a shipped partial on the owning shard, fsynced before
         it is merged; (src, seq) is the dedup identity that makes
         at-least-once shipping an exactly-once effect *)
  | Shard_release of { key : Value.t list }
      (* the owning shard applied the merged partials for [key]; rides the
         applying commit's batch so apply+release are atomic *)
  | Shard_state of {
      next_seq : int;
      seen : (int * int) list;  (* (src, seq) receipts already merged *)
      pending : (Value.t list * float * float) list;
          (* unapplied merged partials: key, summed delta, first created_at *)
      unacked : (int * int * Value.t list * float * float) list;
          (* in-flight ships: dst, seq, key, delta, created_at *)
    }
      (* snapshot of the shard protocol state, re-appended after recovery's
         checkpoint truncates the log so a second crash still recovers *)

let op_table = function
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> table

let op_order = function
  | Insert { order; _ } | Delete { order; _ } | Update { order; _ } -> order

let record_values (r : Record.t) = r.Record.values

let ops_of_tlog log =
  List.map
    (fun (e : Tlog.entry) ->
      match e.Tlog.change with
      | Tlog.Inserted r ->
        Insert
          {
            table = e.Tlog.table;
            order = e.Tlog.execute_order;
            values = record_values r;
          }
      | Tlog.Deleted r ->
        Delete
          {
            table = e.Tlog.table;
            order = e.Tlog.execute_order;
            values = record_values r;
          }
      | Tlog.Updated { old_rec; new_rec } ->
        Update
          {
            table = e.Tlog.table;
            order = e.Tlog.execute_order;
            old_values = record_values old_rec;
            new_values = record_values new_rec;
          })
    (Tlog.entries log)

(* ------------------------------------------------------------------ *)
(* Payload encoding.                                                    *)

let put_op b op =
  match op with
  | Insert { table; order; values } ->
    Codec.put_u8 b 0;
    Codec.put_string b table;
    Codec.put_int b order;
    Codec.put_values b values
  | Delete { table; order; values } ->
    Codec.put_u8 b 1;
    Codec.put_string b table;
    Codec.put_int b order;
    Codec.put_values b values
  | Update { table; order; old_values; new_values } ->
    Codec.put_u8 b 2;
    Codec.put_string b table;
    Codec.put_int b order;
    Codec.put_values b old_values;
    Codec.put_values b new_values

let get_op r =
  match Codec.get_u8 r with
  | 0 ->
    let table = Codec.get_string r in
    let order = Codec.get_int r in
    let values = Codec.get_values r in
    Insert { table; order; values }
  | 1 ->
    let table = Codec.get_string r in
    let order = Codec.get_int r in
    let values = Codec.get_values r in
    Delete { table; order; values }
  | 2 ->
    let table = Codec.get_string r in
    let order = Codec.get_int r in
    let old_values = Codec.get_values r in
    let new_values = Codec.get_values r in
    Update { table; order; old_values; new_values }
  | tag -> raise (Codec.Decode_error (Printf.sprintf "op tag %d" tag))

let put_bound b (bound : bound_rows) =
  Codec.put_list b
    (fun b (name, rows) ->
      Codec.put_string b name;
      Codec.put_list b Codec.put_values rows)
    bound

let get_bound r : bound_rows =
  Codec.get_list r (fun r ->
      let name = Codec.get_string r in
      let rows = Codec.get_list r Codec.get_values in
      (name, rows))

let encode_record_into b rec_ =
  (match rec_ with
  | Commit { txid; time; ops } ->
    Codec.put_u8 b 0;
    Codec.put_int b txid;
    Codec.put_float b time;
    Codec.put_list b put_op ops
  | Uq_enqueue { func; key; release_time; created_at; bound } ->
    Codec.put_u8 b 1;
    Codec.put_string b func;
    Codec.put_list b Codec.put_value key;
    Codec.put_float b release_time;
    Codec.put_float b created_at;
    put_bound b bound
  | Uq_merge { func; key; bound } ->
    Codec.put_u8 b 2;
    Codec.put_string b func;
    Codec.put_list b Codec.put_value key;
    put_bound b bound
  | Uq_release { func; key } ->
    Codec.put_u8 b 3;
    Codec.put_string b func;
    Codec.put_list b Codec.put_value key
  | Checkpoint_mark { time; lsn } ->
    Codec.put_u8 b 4;
    Codec.put_float b time;
    Codec.put_int b lsn
  | Trace_note { subject; trace; span } ->
    Codec.put_u8 b 5;
    (match subject with
    | For_txn txid ->
      Codec.put_u8 b 0;
      Codec.put_int b txid
    | For_uq { func; key } ->
      Codec.put_u8 b 1;
      Codec.put_string b func;
      Codec.put_list b Codec.put_value key);
    Codec.put_int b trace;
    Codec.put_int b span
  | Shard_out { seq; dst; key; delta; created_at } ->
    Codec.put_u8 b 6;
    Codec.put_int b seq;
    Codec.put_int b dst;
    Codec.put_list b Codec.put_value key;
    Codec.put_float b delta;
    Codec.put_float b created_at
  | Shard_in { src; seq; key; delta; created_at } ->
    Codec.put_u8 b 7;
    Codec.put_int b src;
    Codec.put_int b seq;
    Codec.put_list b Codec.put_value key;
    Codec.put_float b delta;
    Codec.put_float b created_at
  | Shard_release { key } ->
    Codec.put_u8 b 8;
    Codec.put_list b Codec.put_value key
  | Shard_state { next_seq; seen; pending; unacked } ->
    Codec.put_u8 b 9;
    Codec.put_int b next_seq;
    Codec.put_list b
      (fun b (src, seq) ->
        Codec.put_int b src;
        Codec.put_int b seq)
      seen;
    Codec.put_list b
      (fun b (key, delta, created_at) ->
        Codec.put_list b Codec.put_value key;
        Codec.put_float b delta;
        Codec.put_float b created_at)
      pending;
    Codec.put_list b
      (fun b (dst, seq, key, delta, created_at) ->
        Codec.put_int b dst;
        Codec.put_int b seq;
        Codec.put_list b Codec.put_value key;
        Codec.put_float b delta;
        Codec.put_float b created_at)
      unacked)


let decode_record r =
  let rec_ =
    match Codec.get_u8 r with
    | 0 ->
      let txid = Codec.get_int r in
      let time = Codec.get_float r in
      let ops = Codec.get_list r get_op in
      Commit { txid; time; ops }
    | 1 ->
      let func = Codec.get_string r in
      let key = Codec.get_list r Codec.get_value in
      let release_time = Codec.get_float r in
      let created_at = Codec.get_float r in
      let bound = get_bound r in
      Uq_enqueue { func; key; release_time; created_at; bound }
    | 2 ->
      let func = Codec.get_string r in
      let key = Codec.get_list r Codec.get_value in
      let bound = get_bound r in
      Uq_merge { func; key; bound }
    | 3 ->
      let func = Codec.get_string r in
      let key = Codec.get_list r Codec.get_value in
      Uq_release { func; key }
    | 4 ->
      let time = Codec.get_float r in
      let lsn = Codec.get_int r in
      Checkpoint_mark { time; lsn }
    | 5 ->
      let subject =
        match Codec.get_u8 r with
        | 0 -> For_txn (Codec.get_int r)
        | 1 ->
          let func = Codec.get_string r in
          let key = Codec.get_list r Codec.get_value in
          For_uq { func; key }
        | tag ->
          raise (Codec.Decode_error (Printf.sprintf "trace subject tag %d" tag))
      in
      let trace = Codec.get_int r in
      let span = Codec.get_int r in
      Trace_note { subject; trace; span }
    | 6 ->
      let seq = Codec.get_int r in
      let dst = Codec.get_int r in
      let key = Codec.get_list r Codec.get_value in
      let delta = Codec.get_float r in
      let created_at = Codec.get_float r in
      Shard_out { seq; dst; key; delta; created_at }
    | 7 ->
      let src = Codec.get_int r in
      let seq = Codec.get_int r in
      let key = Codec.get_list r Codec.get_value in
      let delta = Codec.get_float r in
      let created_at = Codec.get_float r in
      Shard_in { src; seq; key; delta; created_at }
    | 8 ->
      let key = Codec.get_list r Codec.get_value in
      Shard_release { key }
    | 9 ->
      let next_seq = Codec.get_int r in
      let seen =
        Codec.get_list r (fun r ->
            let src = Codec.get_int r in
            let seq = Codec.get_int r in
            (src, seq))
      in
      let pending =
        Codec.get_list r (fun r ->
            let key = Codec.get_list r Codec.get_value in
            let delta = Codec.get_float r in
            let created_at = Codec.get_float r in
            (key, delta, created_at))
      in
      let unacked =
        Codec.get_list r (fun r ->
            let dst = Codec.get_int r in
            let seq = Codec.get_int r in
            let key = Codec.get_list r Codec.get_value in
            let delta = Codec.get_float r in
            let created_at = Codec.get_float r in
            (dst, seq, key, delta, created_at))
      in
      Shard_state { next_seq; seen; pending; unacked }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "record tag %d" tag))
  in
  if Codec.remaining r > 0 then
    raise (Codec.Decode_error "trailing bytes in record payload");
  rec_

(* ------------------------------------------------------------------ *)
(* The log: a durable byte sequence plus a pending (unsynced) tail.
   Entries are framed [u32 len][u32 crc][payload]; an entry's LSN is the
   byte offset of its frame start since log creation.  [truncate_to]
   drops durable bytes behind a checkpoint without renumbering. *)

exception
  Out_of_range of { fn : string; lsn : int; base_lsn : int; durable_end : int }

exception Disk_full of { need : int; capacity : int; used : int }

let () =
  Printexc.register_printer (function
    | Out_of_range { fn; lsn; base_lsn; durable_end } ->
      Some
        (Printf.sprintf "%s: lsn %d outside the durable log [%d, %d]" fn lsn
           base_lsn durable_end)
    | Disk_full { need; capacity; used } ->
      Some
        (Printf.sprintf
           "Wal.Disk_full: append of %d B refused (capacity %d B, used %d B)"
           need capacity used)
    | _ -> None)

type t = {
  mutable base_lsn : int;  (* LSN of the first byte still retained *)
  durable : Buffer.t;
  pending : Buffer.t;
  scratch : Buffer.t;  (* reused payload-encoding workspace *)
  mutable appends : int;
  mutable fsyncs : int;
  mutable truncations : int;
  mutable appended_bytes : int;
  mutable capacity : int option;
      (* byte budget for durable+pending; None = unbounded (default) *)
  mutable lie_notify : (lsn:int -> len:int -> unit) option;
      (* armed lying fsync: the next fsync discards the acked pending
         bytes, leaving a zero gap of the same length *)
  mutable disk_fulls : int;
  mutable lied_bytes : int;
}

let create ?(base_lsn = 0) () =
  {
    base_lsn;
    durable = Buffer.create 4096;
    pending = Buffer.create 512;
    scratch = Buffer.create 512;
    appends = 0;
    fsyncs = 0;
    truncations = 0;
    appended_bytes = 0;
    capacity = None;
    lie_notify = None;
    disk_fulls = 0;
    lied_bytes = 0;
  }

let base_lsn t = t.base_lsn
let durable_end t = t.base_lsn + Buffer.length t.durable
let end_lsn t = durable_end t + Buffer.length t.pending
let pending_bytes t = Buffer.length t.pending
let durable_bytes t = Buffer.length t.durable
let n_appends t = t.appends
let n_fsyncs t = t.fsyncs
let n_truncations t = t.truncations
let appended_bytes t = t.appended_bytes
let n_disk_fulls t = t.disk_fulls
let lied_bytes t = t.lied_bytes
let set_capacity t c = t.capacity <- c
let capacity t = t.capacity
let arm_fsync_lie t ~notify = t.lie_notify <- Some notify
let fsync_lie_armed t = t.lie_notify <> None

let check_range t fn lsn =
  if lsn < t.base_lsn || lsn > durable_end t then
    raise
      (Out_of_range
         { fn; lsn; base_lsn = t.base_lsn; durable_end = durable_end t })

(* Frame [data.(off..off+len)] as one log entry; the frame layout
   ([u32 len][u32 crc][payload]) is what [scan] below decodes. *)
let frame t data off len =
  (match t.capacity with
  | Some cap ->
    let used = Buffer.length t.durable + Buffer.length t.pending in
    if used + len + 8 > cap then begin
      t.disk_fulls <- t.disk_fulls + 1;
      raise (Disk_full { need = len + 8; capacity = cap; used })
    end
  | None -> ());
  let lsn = end_lsn t in
  Codec.put_u32 t.pending len;
  Codec.put_u32 t.pending (Codec.crc32 ~pos:off ~len data);
  Buffer.add_substring t.pending data off len;
  t.appends <- t.appends + 1;
  t.appended_bytes <- t.appended_bytes + len + 8;
  lsn

let append t rec_ =
  Buffer.clear t.scratch;
  encode_record_into t.scratch rec_;
  let data = Buffer.contents t.scratch in
  let lsn = frame t data 0 (String.length data) in
  Meter.tick_c c_wal_append;
  lsn

let append_batch t recs =
  (* One scratch encode and one [Buffer.contents] copy for the whole
     transaction; each record still gets its own frame, so the byte stream
     (and every reader) is identical to per-record [append]s. *)
  Buffer.clear t.scratch;
  let spans =
    List.map
      (fun rec_ ->
        let off = Buffer.length t.scratch in
        encode_record_into t.scratch rec_;
        (off, Buffer.length t.scratch - off))
      recs
  in
  let data = Buffer.contents t.scratch in
  let lsns = List.map (fun (off, len) -> frame t data off len) spans in
  let n = List.length lsns in
  if n > 0 then Meter.tick_cn c_wal_append n;
  lsns

let fsync t =
  (if Buffer.length t.pending > 0 then
     match t.lie_notify with
     | Some notify ->
       (* lying fsync: ack the write but silently drop the bytes.  A
          zero gap of the same length keeps later LSNs honest; the gap
          surfaces as mid-log corruption when anything re-reads it. *)
       let lsn = durable_end t in
       let len = Buffer.length t.pending in
       t.lie_notify <- None;
       Buffer.add_string t.durable (String.make len '\000');
       Buffer.clear t.pending;
       t.lied_bytes <- t.lied_bytes + len;
       notify ~lsn ~len
     | None ->
       Buffer.add_buffer t.durable t.pending;
       Buffer.clear t.pending);
  t.fsyncs <- t.fsyncs + 1;
  Meter.tick_c c_wal_fsync

let lose_tail t = Buffer.clear t.pending

let truncate_to t ~lsn =
  check_range t "Wal.truncate_to" lsn;
  if lsn > t.base_lsn then begin
    let drop = lsn - t.base_lsn in
    let keep = Buffer.sub t.durable drop (Buffer.length t.durable - drop) in
    Buffer.clear t.durable;
    Buffer.add_string t.durable keep;
    t.base_lsn <- lsn;
    t.truncations <- t.truncations + 1
  end

type read_result = {
  records : (int * record) list;
  torn_at : int option;
  corrupt_at : int option;
}

(* Scan framed entries in [data], whose first byte has LSN [base]. *)
let scan ~base data =
  let n = String.length data in
  let rec go pos acc =
    if pos >= n then
      { records = List.rev acc; torn_at = None; corrupt_at = None }
    else if n - pos < 8 then
      (* a header that never finished writing: torn tail *)
      {
        records = List.rev acc;
        torn_at = Some (base + pos);
        corrupt_at = None;
      }
    else begin
      let r = Codec.reader ~pos data in
      let len = Codec.get_u32 r in
      let crc = Codec.get_u32 r in
      if n - pos - 8 < len then
        (* payload cut short: torn tail *)
        {
          records = List.rev acc;
          torn_at = Some (base + pos);
          corrupt_at = None;
        }
      else begin
        let fin = pos + 8 + len in
        let bad verdict =
          if verdict then
            (* the final entry failing its checksum is a torn write;
               anything earlier is real corruption *)
            {
              records = List.rev acc;
              torn_at = Some (base + pos);
              corrupt_at = None;
            }
          else
            {
              records = List.rev acc;
              torn_at = None;
              corrupt_at = Some (base + pos);
            }
        in
        if Codec.crc32 ~pos:(pos + 8) ~len data <> crc then bad (fin >= n)
        else
          let payload = String.sub data (pos + 8) len in
          match decode_record (Codec.reader payload) with
          | rec_ -> go fin ((base + pos, rec_) :: acc)
          | exception Codec.Decode_error _ -> bad (fin >= n)
      end
    end
  in
  go 0 []

let read t = scan ~base:t.base_lsn (Buffer.contents t.durable)
let scan_bytes ~base data = scan ~base data

let read_from t ~lsn =
  check_range t "Wal.read_from" lsn;
  let off = lsn - t.base_lsn in
  scan ~base:lsn (Buffer.sub t.durable off (Buffer.length t.durable - off))

let durable_slice t ~from_lsn =
  check_range t "Wal.durable_slice" from_lsn;
  let off = from_lsn - t.base_lsn in
  Buffer.sub t.durable off (Buffer.length t.durable - off)

let install_bytes t s = Buffer.add_string t.durable s

(* ------------------------------------------------------------------ *)
(* Media faults and salvage.  [flip_byte] models at-rest bit rot;
   [next_valid_lsn]/[verify] find the exact corrupt LSN ranges by
   re-synchronizing on the first offset from which the frame chain
   parses cleanly to the end of the log; [splice] overwrites a corrupt
   range with clean bytes fetched from a replica; [drop_from]
   quarantines an unsalvageable tail. *)

let flip_byte t ~lsn =
  if lsn < t.base_lsn || lsn >= durable_end t then
    raise
      (Out_of_range
         {
           fn = "Wal.flip_byte";
           lsn;
           base_lsn = t.base_lsn;
           durable_end = durable_end t;
         });
  let b = Buffer.to_bytes t.durable in
  let off = lsn - t.base_lsn in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  Buffer.clear t.durable;
  Buffer.add_bytes t.durable b

let next_valid_lsn t ~after =
  let dend = durable_end t in
  let data = Buffer.contents t.durable in
  let n = String.length data in
  let rec go lsn =
    if lsn >= dend then dend
    else begin
      let off = lsn - t.base_lsn in
      let rd = scan ~base:lsn (String.sub data off (n - off)) in
      (* a genuine resync point parses a frame right here and stays
         clean to the end of the log (a torn tail is fine) *)
      if rd.corrupt_at = None && rd.records <> [] then lsn else go (lsn + 1)
    end
  in
  go (after + 1)

let verify t =
  let dend = durable_end t in
  let rec go from acc =
    if from >= dend then List.rev acc
    else
      let rd = read_from t ~lsn:from in
      match (rd.corrupt_at, rd.torn_at) with
      | Some l, _ ->
        let r = next_valid_lsn t ~after:l in
        go r ((l, r) :: acc)
      | None, Some l ->
        (* A frame that parses past the end of the log looks torn — but a
           genuine torn write can only be the final append.  If the chain
           re-synchronizes at a valid frame strictly before the end, the
           "torn" frame is really rot (e.g. a flipped length header that
           swallowed the rest of the log). *)
        let r = next_valid_lsn t ~after:l in
        if r >= dend then List.rev acc else go r ((l, r) :: acc)
      | None, None -> List.rev acc
  in
  go t.base_lsn []

let splice t ~lsn ~bytes =
  let len = String.length bytes in
  if lsn < t.base_lsn || lsn + len > durable_end t then
    raise
      (Out_of_range
         {
           fn = "Wal.splice";
           lsn;
           base_lsn = t.base_lsn;
           durable_end = durable_end t;
         });
  let b = Buffer.to_bytes t.durable in
  Bytes.blit_string bytes 0 b (lsn - t.base_lsn) len;
  Buffer.clear t.durable;
  Buffer.add_bytes t.durable b

let drop_from t ~lsn =
  check_range t "Wal.drop_from" lsn;
  let keep = lsn - t.base_lsn in
  let dropped = Buffer.length t.durable - keep in
  if dropped > 0 then begin
    let s = Buffer.sub t.durable 0 keep in
    Buffer.clear t.durable;
    Buffer.add_string t.durable s
  end;
  dropped

(* Test hooks: the recovery tests simulate torn writes and media
   corruption by mangling the durable bytes directly. *)
let durable_contents t = Buffer.contents t.durable

let set_durable_for_test t s =
  Buffer.clear t.durable;
  Buffer.add_string t.durable s
