(** Per-transaction change log.

    Records every insert, delete and update a transaction performs, in
    execution order.  At commit the rule system makes a single pass over
    this log to detect triggered rules and build transition tables
    (paper §6.3); on abort it is replayed backwards to undo.

    The [execute_order] sequence number is the one exposed to rules: the
    old and new images of one update share a number, so conditions can
    re-associate them (paper §2). *)

type change =
  | Inserted of Strip_relational.Record.t
  | Deleted of Strip_relational.Record.t
  | Updated of {
      old_rec : Strip_relational.Record.t;
      new_rec : Strip_relational.Record.t;
    }

type entry = {
  table : string;
  change : change;
  execute_order : int;  (** 1-based position within the transaction *)
}

type t

val create : unit -> t

val log_insert : t -> table:string -> Strip_relational.Record.t -> unit
val log_delete : t -> table:string -> Strip_relational.Record.t -> unit

val log_update :
  t ->
  table:string ->
  old_rec:Strip_relational.Record.t ->
  new_rec:Strip_relational.Record.t ->
  unit

val entries : t -> entry list
(** In execution order. *)

val entries_rev : t -> entry list
(** Newest first (the undo direction). *)

val length : t -> int

val tables_touched : t -> string list
(** Distinct table names, in first-touch order. *)
