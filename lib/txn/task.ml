open Strip_relational

let c_begin_task = Meter.counter "begin_task"
let c_end_task = Meter.counter "end_task"

type klass =
  | Update
  | Recompute
  | Background

type state = Pending | Ready | Running | Done | Cancelled

type t = {
  task_id : int;
  klass : klass;
  func_name : string;
  unique_key : Value.t list option;
  mutable release_time : float;
  deadline : float option;
  value : float;
  mutable bound : (string * Temp_table.t) list;
  mutable state : state;
  body : t -> unit;
  mutable created_at : float;
  mutable dispatched_at : float;
  mutable service_us : float;
  mutable attempts : int;
  mutable first_failed_at : float;
  mutable first_blocked_at : float;
      (* simulated instant of the first lock-blocked attempt of the current
         wait episode; NaN when not waiting.  The engine uses it for the
         presumed-deadlock wait timeout. *)
  mutable ctx : Strip_obs.Span.ctx option;
      (* causal trace context; None unless tracing is on *)
}

let next_id = ref 0

let reset_ids () =
  next_id := 0;
  (* span ids appear in the same trace exports as task ids and need the
     same treatment for byte-identical re-runs *)
  Strip_obs.Span.reset_ids ()

let create ~klass ~func_name ?unique_key ?deadline ?(value = 1.0) ?(bound = [])
    ?ctx ~release_time ~created_at body =
  incr next_id;
  {
    task_id = !next_id;
    klass;
    func_name;
    unique_key;
    release_time;
    deadline;
    value;
    bound;
    state = Pending;
    body;
    created_at;
    dispatched_at = nan;
    service_us = 0.0;
    attempts = 0;
    first_failed_at = nan;
    first_blocked_at = nan;
    ctx;
  }

let priority t =
  match t.klass with Update -> 0 | Recompute -> 1 | Background -> 2

let retire_bound t =
  List.iter (fun (_, tmp) -> Temp_table.retire tmp) t.bound

let run t =
  (match t.state with
  | Pending | Ready -> ()
  | Running | Done | Cancelled ->
    invalid_arg
      (Printf.sprintf "Task.run: task %d already started" t.task_id));
  t.state <- Running;
  t.attempts <- t.attempts + 1;
  Meter.tick_c c_begin_task;
  match t.body t with
  | () ->
    Meter.tick_c c_end_task;
    retire_bound t;
    t.state <- Done
  | exception e ->
    Meter.tick_c c_end_task;
    (* The attempt failed: keep the bound tables and return to [Pending] so
       the scheduler can retry with the accumulated TCB intact (and unique
       merges can keep appending while the task waits out its backoff).  The
       caller either re-enqueues or discards. *)
    t.state <- Pending;
    raise e

let cancel t =
  (match t.state with
  | Pending | Ready ->
    retire_bound t;
    t.state <- Cancelled
  | Running | Done | Cancelled -> ())

let discard t =
  match t.state with
  | Done | Cancelled -> ()
  | Pending | Ready | Running ->
    retire_bound t;
    t.state <- Cancelled

let started t =
  match t.state with Running | Done -> true | Pending | Ready | Cancelled -> false
