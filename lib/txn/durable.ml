type t = {
  wal : Wal.t;
  mutable snapshot : string option;
  mutable snapshot_lsn : int;
  mutable snapshot_time : float;
  mutable checkpoints : int;
}

let create ?wal () =
  {
    wal = (match wal with Some w -> w | None -> Wal.create ());
    snapshot = None;
    snapshot_lsn = 0;
    snapshot_time = 0.0;
    checkpoints = 0;
  }

let wal t = t.wal
let snapshot t = t.snapshot
let snapshot_lsn t = t.snapshot_lsn
let snapshot_time t = t.snapshot_time
let n_checkpoints t = t.checkpoints

let install_checkpoint t ~encoded ~lsn ~time =
  t.snapshot <- Some encoded;
  t.snapshot_lsn <- lsn;
  t.snapshot_time <- time;
  t.checkpoints <- t.checkpoints + 1

let last_checkpoint_bytes t =
  match t.snapshot with None -> 0 | Some s -> String.length s
