(* Stable storage: WAL + retained checkpoint slots + media-fault ledger. *)

type slot = {
  s_image : string;
  s_crc : int;  (* CRC32 of [s_image], computed at install time *)
  s_lsn : int;
  s_time : float;
}

type fault_kind = Bitrot_wal | Bitrot_checkpoint | Fsync_lie

type fault_state =
  | Outstanding  (* injected, not yet noticed by anything *)
  | Detected  (* noticed (scrub / ship verify / recovery), not yet fixed *)
  | Repaired  (* clean bytes restored (replica splice or fresh checkpoint) *)
  | Quarantined  (* corrupt range dropped from the log; never served *)
  | Expunged
      (* left the system without ever being read: truncated behind a
         checkpoint, or the whole store was abandoned at failover *)

type media_fault = {
  f_kind : fault_kind;
  f_lsn : int;
  f_len : int;
  mutable f_state : fault_state;
}

type t = {
  wal : Wal.t;
  mutable slots : slot list;  (* newest first, at most [retain] *)
  retain : int;
  mutable checkpoints : int;
  mutable media_armed : bool;
  mutable ledger : media_fault list;  (* newest first *)
}

let create ?wal ?(retain = 1) () =
  {
    wal = (match wal with Some w -> w | None -> Wal.create ());
    slots = [];
    retain = max 1 retain;
    checkpoints = 0;
    media_armed = false;
    ledger = [];
  }

let wal t = t.wal
let retain t = t.retain
let snapshot t = match t.slots with [] -> None | s :: _ -> Some s.s_image
let snapshot_lsn t = match t.slots with [] -> 0 | s :: _ -> s.s_lsn
let snapshot_time t = match t.slots with [] -> 0.0 | s :: _ -> s.s_time
let n_checkpoints t = t.checkpoints

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let install_checkpoint t ~encoded ~lsn ~time =
  let s =
    { s_image = encoded; s_crc = Codec.crc32 encoded; s_lsn = lsn; s_time = time }
  in
  t.slots <- take t.retain (s :: t.slots);
  t.checkpoints <- t.checkpoints + 1

let last_checkpoint_bytes t =
  match t.slots with [] -> 0 | s :: _ -> String.length s.s_image

let slot_valid s = Codec.crc32 s.s_image = s.s_crc

let verified_slot t =
  (* a usable slot must pass its CRC *and* still have its redo tail: a
     slot whose LSN fell behind the log's base (an emergency scrub
     checkpoint truncated aggressively) cannot be replayed from *)
  let base = Wal.base_lsn t.wal in
  let rec go skipped = function
    | [] -> None
    | s :: rest ->
      if slot_valid s && s.s_lsn >= base then
        Some (s.s_image, s.s_lsn, s.s_time, skipped)
      else go (skipped + 1) rest
  in
  go 0 t.slots

let truncation_floor t =
  match List.rev t.slots with [] -> 0 | oldest :: _ -> oldest.s_lsn

(* ------------------------------------------------------------------ *)
(* Media-fault ledger.  Every injected at-rest fault is recorded here
   and must leave the [Outstanding] state before the run ends — the
   chaos invariant [no_silent_corruption] checks exactly that. *)

let arm_media t = t.media_armed <- true
let media_armed t = t.media_armed

let note_injected t ~kind ~lsn ~len =
  t.ledger <- { f_kind = kind; f_lsn = lsn; f_len = len; f_state = Outstanding }
              :: t.ledger

let wal_kind = function Bitrot_wal | Fsync_lie -> true | Bitrot_checkpoint -> false

let overlaps f ~lsn ~len = f.f_lsn < lsn + len && lsn < f.f_lsn + f.f_len

let transition t ~select ~from ~to_ =
  List.iter
    (fun f -> if List.mem f.f_state from && select f then f.f_state <- to_)
    t.ledger

let note_wal_detected t ~lsn ~len =
  transition t
    ~select:(fun f -> wal_kind f.f_kind && overlaps f ~lsn ~len)
    ~from:[ Outstanding ] ~to_:Detected

let note_wal_repaired t ~lsn ~len =
  transition t
    ~select:(fun f -> wal_kind f.f_kind && overlaps f ~lsn ~len)
    ~from:[ Outstanding; Detected ] ~to_:Repaired

let note_wal_quarantined t ~from_lsn =
  transition t
    ~select:(fun f -> wal_kind f.f_kind && f.f_lsn + f.f_len > from_lsn)
    ~from:[ Outstanding; Detected ] ~to_:Quarantined

let note_truncated t ~below =
  (* bytes behind a checkpoint leave the log without ever being read:
     an undetected fault there is benign and an already-detected one is
     fixed by construction (the checkpoint captured clean live state) *)
  transition t
    ~select:(fun f -> wal_kind f.f_kind && f.f_lsn + f.f_len <= below)
    ~from:[ Outstanding; Detected ] ~to_:Expunged

let note_cp_detected t =
  transition t
    ~select:(fun f -> f.f_kind = Bitrot_checkpoint)
    ~from:[ Outstanding ] ~to_:Detected

let note_cp_repaired t =
  transition t
    ~select:(fun f -> f.f_kind = Bitrot_checkpoint)
    ~from:[ Outstanding; Detected ] ~to_:Repaired

let note_abandoned t =
  (* the whole store left service (failover elected another node);
     nothing in it can influence a read anymore *)
  transition t ~select:(fun _ -> true) ~from:[ Outstanding; Detected ]
    ~to_:Expunged

let flip_snapshot_byte t ~frac =
  match t.slots with
  | [] -> false
  | s :: rest ->
    let n = String.length s.s_image in
    if n = 0 then false
    else begin
      let off = min (int_of_float (frac *. float_of_int n)) (n - 1) in
      let b = Bytes.of_string s.s_image in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
      (* the stored CRC is kept: it was computed over the clean image,
         so verification now fails — that is the point *)
      t.slots <- { s with s_image = Bytes.to_string b } :: rest;
      note_injected t ~kind:Bitrot_checkpoint ~lsn:s.s_lsn ~len:1;
      true
    end

let scrub_slots t =
  (* drop (quarantine) every slot whose image no longer matches its CRC;
     returns how many were dropped *)
  let bad, good = List.partition (fun s -> not (slot_valid s)) t.slots in
  if bad <> [] then begin
    t.slots <- good;
    note_cp_detected t
  end;
  List.length bad

let slots_valid t = List.for_all slot_valid t.slots

type media_counts = {
  injected_bitrot_wal : int;
  injected_bitrot_cp : int;
  injected_fsync_lie : int;
  detected : int;
  repaired : int;
  quarantined : int;
  expunged : int;
  outstanding : int;
}

let zero_counts =
  {
    injected_bitrot_wal = 0;
    injected_bitrot_cp = 0;
    injected_fsync_lie = 0;
    detected = 0;
    repaired = 0;
    quarantined = 0;
    expunged = 0;
    outstanding = 0;
  }

let add_counts t c =
  List.fold_left
    (fun c f ->
      let c =
        match f.f_kind with
        | Bitrot_wal -> { c with injected_bitrot_wal = c.injected_bitrot_wal + 1 }
        | Bitrot_checkpoint ->
          { c with injected_bitrot_cp = c.injected_bitrot_cp + 1 }
        | Fsync_lie -> { c with injected_fsync_lie = c.injected_fsync_lie + 1 }
      in
      match f.f_state with
      | Outstanding -> { c with outstanding = c.outstanding + 1 }
      | Detected -> { c with detected = c.detected + 1 }
      | Repaired -> { c with repaired = c.repaired + 1 }
      | Quarantined -> { c with quarantined = c.quarantined + 1 }
      | Expunged -> { c with expunged = c.expunged + 1 })
    c t.ledger

let media_counts t = add_counts t zero_counts
let outstanding t = (media_counts t).outstanding
