open Strip_relational

exception Decode_error of string

let () =
  Printexc.register_printer (function
    | Decode_error msg -> Some (Printf.sprintf "Codec.Decode_error(%s)" msg)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writers append to a [Buffer.t]; all integers are little-endian.      *)

let put_u8 b i = Buffer.add_char b (Char.chr (i land 0xff))

let put_u32 b i =
  if i < 0 || i > 0xFFFFFFFF then invalid_arg "Codec.put_u32: out of range";
  put_u8 b i;
  put_u8 b (i lsr 8);
  put_u8 b (i lsr 16);
  put_u8 b (i lsr 24)

let put_i64 b (i : int64) =
  for k = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical i (8 * k)))
  done

let put_int b i = put_i64 b (Int64.of_int i)
let put_float b f = put_i64 b (Int64.bits_of_float f)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b f xs =
  put_u32 b (List.length xs);
  List.iter (f b) xs

let put_value b = function
  | Value.Null -> put_u8 b 0
  | Value.Bool x ->
    put_u8 b 1;
    put_u8 b (Bool.to_int x)
  | Value.Int x ->
    put_u8 b 2;
    put_int b x
  | Value.Float x ->
    put_u8 b 3;
    put_float b x
  | Value.Str s ->
    put_u8 b 4;
    put_string b s

let put_values b arr =
  put_u32 b (Array.length arr);
  Array.iter (put_value b) arr

let put_ty b = function
  | Value.TBool -> put_u8 b 0
  | Value.TInt -> put_u8 b 1
  | Value.TFloat -> put_u8 b 2
  | Value.TStr -> put_u8 b 3

(* ------------------------------------------------------------------ *)
(* Readers.                                                             *)

type reader = {
  data : string;
  mutable pos : int;
}

let reader ?(pos = 0) data = { data; pos }
let position r = r.pos
let remaining r = String.length r.data - r.pos

let get_u8 r =
  if remaining r < 1 then fail "get_u8: truncated input at %d" r.pos;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u32 r =
  if remaining r < 4 then fail "get_u32: truncated input at %d" r.pos;
  let b0 = get_u8 r and b1 = get_u8 r and b2 = get_u8 r and b3 = get_u8 r in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_i64 r =
  if remaining r < 8 then fail "get_i64: truncated input at %d" r.pos;
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * k))
  done;
  !v

let get_int r = Int64.to_int (get_i64 r)
let get_float r = Int64.float_of_bits (get_i64 r)

let get_string r =
  let len = get_u32 r in
  if remaining r < len then fail "get_string: truncated input at %d" r.pos;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let get_list r f =
  let n = get_u32 r in
  List.init n (fun _ -> f r)

let get_value r =
  match get_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Bool (get_u8 r <> 0)
  | 2 -> Value.Int (get_int r)
  | 3 -> Value.Float (get_float r)
  | 4 -> Value.Str (get_string r)
  | tag -> fail "get_value: unknown tag %d" tag

let get_values r =
  let n = get_u32 r in
  Array.init n (fun _ -> get_value r)

let get_ty r =
  match get_u8 r with
  | 0 -> Value.TBool
  | 1 -> Value.TInt
  | 2 -> Value.TFloat
  | 3 -> Value.TStr
  | tag -> fail "get_ty: unknown tag %d" tag

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), the classic reflected polynomial.               *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
