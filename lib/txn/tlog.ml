type change =
  | Inserted of Strip_relational.Record.t
  | Deleted of Strip_relational.Record.t
  | Updated of {
      old_rec : Strip_relational.Record.t;
      new_rec : Strip_relational.Record.t;
    }

type entry = {
  table : string;
  change : change;
  execute_order : int;
}

type t = {
  mutable rev_entries : entry list;
  mutable next : int;
}

let create () = { rev_entries = []; next = 1 }

let push t table change =
  t.rev_entries <- { table; change; execute_order = t.next } :: t.rev_entries;
  t.next <- t.next + 1

let log_insert t ~table r = push t table (Inserted r)
let log_delete t ~table r = push t table (Deleted r)

let log_update t ~table ~old_rec ~new_rec =
  push t table (Updated { old_rec; new_rec })

let entries t = List.rev t.rev_entries
let entries_rev t = t.rev_entries
let length t = List.length t.rev_entries

let tables_touched t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e.table then None
      else begin
        Hashtbl.add seen e.table ();
        Some e.table
      end)
    (entries t)
