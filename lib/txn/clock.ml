type t = { mutable now : float }

let create ?(now = 0.0) () = { now }

let now t = t.now

let advance_to t time =
  if time < t.now -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: %.9f is before now (%.9f)" time t.now);
  if time > t.now then t.now <- time

let advance_by t dt = advance_to t (t.now +. dt)
