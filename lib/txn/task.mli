(** Tasks — STRIP's unit of scheduling (paper §6.2).

    "Transactions must be executed within a task ... a task can contain
    zero or more transactions."  Update transactions arrive as immediate
    tasks; rule actions arrive as tasks whose release may be delayed and
    whose task control block (TCB) carries the bound tables, the user
    function name, and — for unique transactions — the unique-column key
    that the rule system's hash table maps to this TCB (paper §6.3).

    A task's [body] runs the actual work against the engine when the
    simulated CPU dispatches it. *)

type klass =
  | Update  (** base-data update transaction: high priority *)
  | Recompute  (** rule-triggered derived-data maintenance *)
  | Background  (** anything else *)

type state = Pending | Ready | Running | Done | Cancelled

type t = {
  task_id : int;
  klass : klass;
  func_name : string;
      (** user function to run; doubles as a description for update tasks *)
  unique_key : Strip_relational.Value.t list option;
      (** [Some key] iff created by a [unique] rule; the key is the tuple of
          unique-column values ([[]] for coarse uniqueness) *)
  mutable release_time : float;
  deadline : float option;
  value : float;  (** for value-density-first scheduling *)
  mutable bound : (string * Strip_relational.Temp_table.t) list;
      (** the TCB's bound-table list; unique-transaction merges append here *)
  mutable state : state;
  body : t -> unit;
  mutable created_at : float;
  mutable dispatched_at : float;
  mutable service_us : float;  (** simulated service time, set by the engine *)
  mutable attempts : int;  (** times {!run} was entered (includes failures) *)
  mutable first_failed_at : float;
      (** virtual time of the first failed attempt ([nan] if none); the
          engine stamps it to measure recovery latency *)
  mutable first_blocked_at : float;
      (** virtual time of the first lock-blocked attempt of the current
          wait episode ([nan] when not waiting); the engine's presumed-
          deadlock timeout measures against it *)
  mutable ctx : Strip_obs.Span.ctx option;
      (** causal trace context — minted at base-update ingestion,
          parent-linked through rule firings and commits; [None] unless
          tracing is on *)
}

val create :
  klass:klass ->
  func_name:string ->
  ?unique_key:Strip_relational.Value.t list ->
  ?deadline:float ->
  ?value:float ->
  ?bound:(string * Strip_relational.Temp_table.t) list ->
  ?ctx:Strip_obs.Span.ctx ->
  release_time:float ->
  created_at:float ->
  (t -> unit) ->
  t

val priority : t -> int
(** Dispatch priority class: updates before recomputes before background. *)

val run : t -> unit
(** Execute the body (ticks ["begin_task"]/["end_task"]), mark [Done], and
    retire the bound tables (§6.3: "when a triggered task finishes, its
    bound tables are no longer needed and are reclaimed").  If the body
    raises, the task returns to [Pending] with its bound tables {e kept}
    (the TCB survives the failure so a retry re-runs the whole batch) and
    the exception propagates; the scheduler must then either re-enqueue or
    {!discard} the task.
    @raise Invalid_argument if the task already ran. *)

val cancel : t -> unit
(** Mark cancelled and retire bound tables without running. *)

val discard : t -> unit
(** Unconditionally retire the bound tables and mark [Cancelled] (no-op on
    [Done]/[Cancelled] tasks).  Used for dead-lettered tasks, whose failed
    attempts already ran. *)

val started : t -> bool
(** Running or finished — a unique transaction stops accepting merges at
    this point (paper §2). *)

val reset_ids : unit -> unit
(** Reset the global task-id counter (and, for the same reason, the
    {!Strip_obs.Span} id counter).  Task and span ids appear in trace
    exports, so byte-identical re-runs inside one process must reset the
    counters first; never call it while tasks are still queued (ids would
    collide).  Used by tests and the determinism harness only. *)
