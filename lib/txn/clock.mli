(** Virtual clock.

    The reproduction runs the paper's 30-minute experiments in simulated
    time: the discrete-event engine advances this clock, and everything that
    needs "now" (transaction commit times, task release times, the
    [commit_time] bound-table column) reads it.  Units are seconds. *)

type t

val create : ?now:float -> unit -> t

val now : t -> float

val advance_to : t -> float -> unit
(** Move time forward.  @raise Invalid_argument on an attempt to go
    backwards by more than 1e-9 (events at equal times are fine). *)

val advance_by : t -> float -> unit
