(** Transactions.

    A transaction wraps the relational engine's cursor path with two-phase
    locking and undo/event logging.  All data access flows through
    {!Strip_relational.Sql_exec} with this module's hooks installed:

    - every touched record is locked (and, when exclusively locked, pinned
      so its pre-image stays readable for the commit-time rule pass);
    - every change is appended to the transaction's {!Tlog};
    - commit stamps the virtual-clock time later exposed to bound tables'
      [commit_time] columns (paper §2);
    - abort replays the log backwards.

    Rule processing is deliberately *not* here: the rule system inspects
    the log between the application's last operation and commit
    ({!Strip_core.Rule_manager}), matching the paper's "event checking
    occurs at the end of each transaction prior to commit". *)

type status = Active | Committed | Aborted

exception Lock_conflict of {
  txid : int;
  blockers : int list;
  deadlock : bool;
}
(** Raised when a lock cannot be granted.  The simulated system serializes
    real execution so this never fires during experiments; concurrent tests
    exercise it directly. *)

type t

val begin_ :
  cat:Strip_relational.Catalog.t ->
  locks:Lock.t ->
  clock:Clock.t ->
  ?env:Strip_relational.Catalog.env ->
  unit ->
  t
(** Start a transaction.  [env] is the task-local bound-table scope for
    rule-action transactions.  Ticks ["begin_transaction"]. *)

val txid : t -> int
val status : t -> status
val log : t -> Tlog.t
val env : t -> Strip_relational.Catalog.env
val start_time : t -> float

val commit_time : t -> float
(** @raise Invalid_argument unless committed. *)

val hooks : t -> Strip_relational.Sql_exec.hooks
(** The lock/log hooks; exposed for callers that drive {!Sql_exec}
    directly. *)

val exec : t -> string -> Strip_relational.Sql_exec.exec_result
(** Parse and run one statement inside the transaction.
    @raise Lock_conflict, plus the parser/planner exceptions. *)

val exec_stmt :
  t -> Strip_relational.Sql_parser.statement -> Strip_relational.Sql_exec.exec_result

val query : t -> string -> Strip_relational.Query.result
(** Run a SELECT inside the transaction (shared-locks the scanned standard
    tables). *)

val query_plan : t -> Strip_relational.Query.plan -> Strip_relational.Query.result
(** Run a prebuilt plan inside the transaction. *)

val commit : t -> unit
(** Stamp the commit time, release locks, tick ["commit_transaction"].
    Pinned pre-images stay pinned until {!cleanup} so the rule pass can
    still read them.  @raise Invalid_argument unless active. *)

val abort : t -> unit
(** Undo all changes (reverse log order), release locks, unpin, tick
    ["abort_transaction"].  @raise Invalid_argument unless active. *)

val cleanup : t -> unit
(** Unpin the pre-images held for the rule pass.  Idempotent; call after
    commit-time rule processing has built its transition tables. *)
