open Strip_relational

type site =
  | Txn_abort
  | Lock_conflict
  | Deadlock
  | User_fun
  | Crash
  | Partition
  | Bitrot
  | Fsync_lie
  | Disk_full

let site_name = function
  | Txn_abort -> "txn_abort"
  | Lock_conflict -> "lock_conflict"
  | Deadlock -> "deadlock"
  | User_fun -> "user_fun"
  | Crash -> "crash"
  | Partition -> "partition"
  | Bitrot -> "bitrot"
  | Fsync_lie -> "fsync_lie"
  | Disk_full -> "disk_full"

exception Injected of { site : site; detail : string }
exception Crashed of { at : string }
exception Partitioned of { at : string; heal_after_s : float }

let () =
  Printexc.register_printer (function
    | Injected { site; detail } ->
      Some (Printf.sprintf "Fault.Injected(%s, %s)" (site_name site) detail)
    | Crashed { at } -> Some (Printf.sprintf "Fault.Crashed(%s)" at)
    | Partitioned { at; heal_after_s } ->
      Some (Printf.sprintf "Fault.Partitioned(%s, heal %.3fs)" at heal_after_s)
    | _ -> None)

type rates = {
  txn_abort : float;
  lock_conflict : float;
  deadlock : float;
  user_fun : float;
  crash : float;
  partition : float;
  bitrot : float;
  fsync_lie : float;
  disk_full : float;
}

let no_faults =
  {
    txn_abort = 0.0;
    lock_conflict = 0.0;
    deadlock = 0.0;
    user_fun = 0.0;
    crash = 0.0;
    partition = 0.0;
    bitrot = 0.0;
    fsync_lie = 0.0;
    disk_full = 0.0;
  }

type config = {
  seed : int;
  rates : rates;
  partition_heal_s : float;
}

let default_config = { seed = 2025; rates = no_faults; partition_heal_s = 1.0 }

let abort_only ?(seed = 2025) rate =
  { default_config with seed; rates = { no_faults with txn_abort = rate } }

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable n_abort : int;
  mutable n_conflict : int;
  mutable n_deadlock : int;
  mutable n_user : int;
  mutable n_crash : int;
  mutable n_partition : int;
  mutable n_bitrot : int;
  mutable n_fsync_lie : int;
  mutable n_disk_full : int;
}

let create cfg =
  {
    cfg;
    rng = Random.State.make [| cfg.seed; 0x5741; 0x9e37 |];
    n_abort = 0;
    n_conflict = 0;
    n_deadlock = 0;
    n_user = 0;
    n_crash = 0;
    n_partition = 0;
    n_bitrot = 0;
    n_fsync_lie = 0;
    n_disk_full = 0;
  }

let config t = t.cfg

let rate_of t = function
  | Txn_abort -> t.cfg.rates.txn_abort
  | Lock_conflict -> t.cfg.rates.lock_conflict
  | Deadlock -> t.cfg.rates.deadlock
  | User_fun -> t.cfg.rates.user_fun
  | Crash -> t.cfg.rates.crash
  | Partition -> t.cfg.rates.partition
  | Bitrot -> t.cfg.rates.bitrot
  | Fsync_lie -> t.cfg.rates.fsync_lie
  | Disk_full -> t.cfg.rates.disk_full

let active t =
  let r = t.cfg.rates in
  r.txn_abort > 0.0 || r.lock_conflict > 0.0 || r.deadlock > 0.0
  || r.user_fun > 0.0 || r.crash > 0.0 || r.partition > 0.0
  || r.bitrot > 0.0 || r.fsync_lie > 0.0 || r.disk_full > 0.0

let count t = function
  | Txn_abort -> t.n_abort <- t.n_abort + 1
  | Lock_conflict -> t.n_conflict <- t.n_conflict + 1
  | Deadlock -> t.n_deadlock <- t.n_deadlock + 1
  | User_fun -> t.n_user <- t.n_user + 1
  | Crash -> t.n_crash <- t.n_crash + 1
  | Partition -> t.n_partition <- t.n_partition + 1
  | Bitrot -> t.n_bitrot <- t.n_bitrot + 1
  | Fsync_lie -> t.n_fsync_lie <- t.n_fsync_lie + 1
  | Disk_full -> t.n_disk_full <- t.n_disk_full + 1

let injected t = function
  | Txn_abort -> t.n_abort
  | Lock_conflict -> t.n_conflict
  | Deadlock -> t.n_deadlock
  | User_fun -> t.n_user
  | Crash -> t.n_crash
  | Partition -> t.n_partition
  | Bitrot -> t.n_bitrot
  | Fsync_lie -> t.n_fsync_lie
  | Disk_full -> t.n_disk_full

let total_injected t =
  t.n_abort + t.n_conflict + t.n_deadlock + t.n_user + t.n_crash
  + t.n_partition + t.n_bitrot + t.n_fsync_lie + t.n_disk_full

let note t site =
  count t site;
  Meter.tick "fault_injected"

let fire t ~site ~txid ~detail =
  let rate = rate_of t site in
  (* Sites with a zero rate consume no randomness, so enabling one site
     never perturbs another's decision stream. *)
  if rate > 0.0 && Random.State.float t.rng 1.0 < rate then begin
    count t site;
    Meter.tick "fault_injected";
    match site with
    | Lock_conflict ->
      raise (Transaction.Lock_conflict { txid; blockers = []; deadlock = false })
    | Deadlock ->
      raise (Transaction.Lock_conflict { txid; blockers = []; deadlock = true })
    | Txn_abort | User_fun | Bitrot | Fsync_lie | Disk_full ->
      raise (Injected { site; detail })
    | Crash -> raise (Crashed { at = detail })
    | Partition ->
      raise
        (Partitioned { at = detail; heal_after_s = t.cfg.partition_heal_s })
  end
