(** Deterministic, seedable fault injection.

    STRIP is a soft real-time system: the paper's claim is that derived-data
    maintenance keeps up under a bursty feed, which is only meaningful if the
    system survives the failures such feeds provoke — aborted transactions,
    lock conflicts, deadlock victims, and user functions that raise.  The
    simulated system serializes execution so none of these occur naturally;
    this module injects them on purpose, at configurable per-site rates,
    from a private seeded PRNG stream so every run is reproducible.

    An injector is consulted at well-defined sites (see {!site}) by the rule
    manager and the database facade.  A hit either raises {!Injected} (for
    [Txn_abort] and [User_fun]) or {!Transaction.Lock_conflict} (for
    [Lock_conflict] and [Deadlock]), so recovery code exercises the same
    exception paths a real concurrent system would. *)

type site =
  | Txn_abort  (** the transaction aborts just before commit *)
  | Lock_conflict  (** a lock acquisition fails (blocked) *)
  | Deadlock  (** the transaction is chosen as a deadlock victim *)
  | User_fun  (** the rule action's user function raises *)
  | Crash  (** the whole engine dies, losing all volatile state *)
  | Partition
      (** the node is cut off from its peers but keeps running — its
          volatile state survives, only its network traffic dies *)
  | Bitrot  (** at-rest byte flip in durable WAL bytes or a checkpoint image *)
  | Fsync_lie
      (** an fsync acknowledges the write but silently drops the bytes *)
  | Disk_full  (** an append is refused by the device's byte budget *)

val site_name : site -> string

exception Injected of { site : site; detail : string }
(** Raised for [Txn_abort]/[User_fun] hits.  [detail] names the task or
    function at the injection point. *)

exception Crashed of { at : string }
(** Raised for [Crash] hits (and by scheduled crashes).  Unlike the soft
    faults above this is not recoverable in-place: the catcher must discard
    every volatile structure and restart from {!Durable.t}. *)

exception Partitioned of { at : string; heal_after_s : float }
(** Raised for [Partition] hits (and by scheduled partitions).  The node is
    isolated from its peers for [heal_after_s] simulated seconds but stays
    alive: the catcher must open partition windows on its links, keep the
    node running, and fence it when a peer is promoted in a higher epoch. *)

type rates = {
  txn_abort : float;
  lock_conflict : float;
  deadlock : float;
  user_fun : float;
  crash : float;
  partition : float;
  bitrot : float;
  fsync_lie : float;
  disk_full : float;
}
(** Per-site firing probabilities in [0, 1].  The storage sites
    ([bitrot], [fsync_lie], [disk_full]) are normally driven by
    scheduled chaos events rather than rates; their rates default to
    zero and, like every zero-rate site, consume no randomness. *)

val no_faults : rates

type config = {
  seed : int;  (** PRNG seed; fixed seed => identical injection decisions *)
  rates : rates;
  partition_heal_s : float;
      (** how long a rate-injected partition stays open before healing *)
}

val default_config : config
(** Seed 2025, all rates zero, 1 s partition heal. *)

val abort_only : ?seed:int -> float -> config
(** [abort_only rate] injects transaction aborts at [rate] and nothing
    else — the ISSUE's 10%-abort scenario is [abort_only 0.1]. *)

type t

val create : config -> t
val config : t -> config

val active : t -> bool
(** True when any rate is positive. *)

val fire : t -> site:site -> txid:int -> detail:string -> unit
(** Draw from the injector's PRNG stream for [site] (no draw is consumed
    when the site's rate is zero).  On a hit, tick ["fault_injected"],
    record the site, and raise the site's exception. *)

val note : t -> site -> unit
(** Record a fault injected by a scheduled event (not a PRNG draw):
    count the site and tick ["fault_injected"], raising nothing. *)

val injected : t -> site -> int
(** Faults injected so far at a site. *)

val total_injected : t -> int
