(** Redo write-ahead log.

    The log is fed from the per-transaction {!Tlog} at commit: each commit
    appends one {!record} carrying the after-images of every change, in
    [execute_order].  Unique-transaction queue maintenance (enqueue, merge,
    release) is logged alongside so queued batches survive a crash.

    Entries are framed [[u32 len][u32 crc][payload]] (little-endian); an
    entry's LSN is the byte offset of its frame start since log creation.
    Appends land in a volatile [pending] buffer and only become durable at
    {!fsync} — a crash ({!lose_tail}) discards the pending tail, modelling
    writes that never reached stable storage.  {!truncate_to} drops durable
    bytes behind a checkpoint LSN without renumbering later entries. *)

open Strip_relational

type op =
  | Insert of { table : string; order : int; values : Value.t array }
  | Delete of { table : string; order : int; values : Value.t array }
  | Update of {
      table : string;
      order : int;
      old_values : Value.t array;
      new_values : Value.t array;
    }

type bound_rows = (string * Value.t array list) list
(** Bound temp-table contents of a queued unique transaction, keyed by the
    (unqualified) bound-table name. *)

type trace_subject =
  | For_txn of int
      (** annotates the commit with this txid: a replica parents its
          apply span under the primary's commit span *)
  | For_uq of { func : string; key : Value.t list }
      (** annotates the queued unique batch for [(func, key)]: crash
          recovery reattaches the context to the resubmitted task *)

type record =
  | Commit of { txid : int; time : float; ops : op list }
  | Uq_enqueue of {
      func : string;
      key : Value.t list;
      release_time : float;
      created_at : float;
      bound : bound_rows;
    }
  | Uq_merge of { func : string; key : Value.t list; bound : bound_rows }
  | Uq_release of { func : string; key : Value.t list }
  | Checkpoint_mark of { time : float; lsn : int }
  | Trace_note of { subject : trace_subject; trace : int; span : int }
      (** causal-trace annotation riding the same fsync as the record it
          describes; written only when tracing is on, so flag-off logs
          are byte-identical to earlier releases *)
  | Shard_out of {
      seq : int;
      dst : int;
      key : Value.t list;
      delta : float;
      created_at : float;
    }
      (** a weighted partial delta owed to composite row [key] on shard
          [dst], logged atomically with the commit that produced it;
          recovery re-ships every logged-but-unacknowledged partial
          (at-least-once) *)
  | Shard_in of {
      src : int;
      seq : int;
      key : Value.t list;
      delta : float;
      created_at : float;
    }
      (** durable receipt of a shipped partial on the owning shard;
          [(src, seq)] is the dedup identity that turns at-least-once
          shipping into an exactly-once merge effect *)
  | Shard_release of { key : Value.t list }
      (** the owner applied the merged partials for [key]; rides the
          applying commit's append batch so apply and release share one
          fsync *)
  | Shard_state of {
      next_seq : int;
      seen : (int * int) list;
      pending : (Value.t list * float * float) list;
      unacked : (int * int * Value.t list * float * float) list;
    }
      (** snapshot of a shard's cross-shard protocol state ([next_seq],
          merged receipts, unapplied per-key deltas, in-flight ships),
          re-appended after recovery because the recovery checkpoint
          truncates the log the individual records lived in *)

val op_table : op -> string
val op_order : op -> int

val ops_of_tlog : Tlog.t -> op list
(** Convert a committed transaction's log into redo ops, oldest first,
    preserving [execute_order]. *)

type t

exception
  Out_of_range of { fn : string; lsn : int; base_lsn : int; durable_end : int }
(** An LSN argument lies outside the durable log.  [fn] names the
    operation that refused it. *)

exception Disk_full of { need : int; capacity : int; used : int }
(** An append would exceed the configured {!set_capacity} byte budget.
    Typed backpressure: the engine translates this into a crash-and-recover
    cycle instead of growing without bound. *)

val create : ?base_lsn:int -> unit -> t
(** [base_lsn] (default 0) is the LSN of the first byte this log will hold
    — a replica's log copy starts at its bootstrap checkpoint's LSN. *)

val append : t -> record -> int
(** Frame and append a record to the pending (unsynced) tail; returns its
    LSN.  Ticks the ["wal_append"] meter. *)

val append_batch : t -> record list -> int list
(** Append a transaction's records in one pass: all payloads are encoded
    into a single reused buffer and framed from it, instead of allocating
    an encode buffer per record.  The resulting byte stream, LSNs and
    ["wal_append"] tick count are exactly those of the equivalent
    per-record {!append}s. *)

val fsync : t -> unit
(** Make all pending bytes durable.  Ticks the ["wal_fsync"] meter. *)

val lose_tail : t -> unit
(** Crash: discard everything appended since the last {!fsync}. *)

val truncate_to : t -> lsn:int -> unit
(** Drop durable bytes strictly before [lsn] (a checkpoint boundary).
    @raise Out_of_range if [lsn] is outside the durable log. *)

(** {1 Positions and volume} *)

val base_lsn : t -> int
val durable_end : t -> int
val end_lsn : t -> int
val pending_bytes : t -> int
val durable_bytes : t -> int
val n_appends : t -> int
val n_fsyncs : t -> int
val n_truncations : t -> int
val appended_bytes : t -> int

(** {1 Reading (recovery)} *)

type read_result = {
  records : (int * record) list;  (** (lsn, record), oldest first *)
  torn_at : int option;
      (** LSN of a torn final entry that was dropped, if any *)
  corrupt_at : int option;
      (** LSN of a mid-log corrupt entry; scanning stopped there *)
}

val read : t -> read_result
(** Scan the durable log.  A final entry that is incomplete or fails its
    CRC is treated as a torn write and dropped ([torn_at]); a bad entry
    with valid entries after it is corruption ([corrupt_at]) and scanning
    stops. *)

val read_from : t -> lsn:int -> read_result
(** Cursor-style tail read: scan durable entries starting at [lsn],
    without re-decoding anything before it.  [lsn] must be an entry
    boundary previously returned by {!append} (or {!base_lsn} /
    {!durable_end}).  @raise Out_of_range if [lsn] lies outside
    [[base_lsn, durable_end]]. *)

val scan_bytes : base:int -> string -> read_result
(** Scan already-framed bytes whose first byte has LSN [base] without
    installing them anywhere — integrity verification of a shipped
    segment or a salvage candidate before it is grafted onto a log. *)

(** {1 Log shipping} *)

val durable_slice : t -> from_lsn:int -> string
(** Raw framed bytes of the durable log from [from_lsn] (an entry
    boundary) to {!durable_end} — the segment a primary ships to a
    replica.  @raise Out_of_range if [from_lsn] lies outside
    [[base_lsn, durable_end]]. *)

val install_bytes : t -> string -> unit
(** Append already-framed bytes directly to the durable buffer.  Used by
    a replica to graft a shipped segment onto its local log copy; the
    bytes must start exactly at {!durable_end}. *)

(** {1 Media faults} *)

val set_capacity : t -> int option -> unit
(** Cap the bytes the device will hold (durable + pending); appends that
    would exceed it raise {!Disk_full}.  [None] (the default) removes
    the cap — the heal side of a disk-full fault. *)

val capacity : t -> int option

val arm_fsync_lie : t -> notify:(lsn:int -> len:int -> unit) -> unit
(** Arm a lying fsync: the next {!fsync} with pending bytes acknowledges
    the write but silently replaces the acked bytes with a zero gap of
    the same length (LSN accounting is unchanged).  [notify] fires with
    the gap's position when the lie happens.  The gap surfaces as
    mid-log corruption whenever the range is re-read. *)

val fsync_lie_armed : t -> bool

val flip_byte : t -> lsn:int -> unit
(** At-rest bit rot: XOR the durable byte at [lsn] with [0xff].
    @raise Out_of_range if [lsn] is not a durable byte position. *)

val n_disk_fulls : t -> int
(** Appends refused by the capacity cap. *)

val lied_bytes : t -> int
(** Total bytes silently discarded by lying fsyncs. *)

(** {1 Scrub and salvage} *)

val verify : t -> (int * int) list
(** Re-read the durable log and return the corrupt LSN ranges
    [(start, resync)] — [start] is where frame verification first
    failed, [resync] the first later offset from which the frame chain
    parses cleanly to the end of the log ({!durable_end} if none).
    A frame that merely parses past the end of the log counts as
    corruption only when the chain re-synchronizes strictly before the
    end — otherwise it is a genuine torn tail (an interrupted final
    append), which recovery truncates as usual and scrubbing must not
    flag.  Empty means the log is clean. *)

val next_valid_lsn : t -> after:int -> int
(** First LSN strictly after [after] at which the durable frame chain
    re-synchronizes (parses cleanly to the end of the log), or
    {!durable_end} if the rest of the log is unusable. *)

val splice : t -> lsn:int -> bytes:string -> unit
(** Overwrite the durable range starting at [lsn] with clean bytes
    (typically fetched from a replica whose log covers the corrupt
    range).  @raise Out_of_range if the range does not fit inside the
    durable log. *)

val drop_from : t -> lsn:int -> int
(** Quarantine: discard the durable tail from [lsn] onwards and return
    the number of bytes dropped.  Used when no replica can serve clean
    bytes for a corrupt range.  @raise Out_of_range on a bad [lsn]. *)

(** {1 Test hooks} *)

val durable_contents : t -> string
val set_durable_for_test : t -> string -> unit
