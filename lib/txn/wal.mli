(** Redo write-ahead log.

    The log is fed from the per-transaction {!Tlog} at commit: each commit
    appends one {!record} carrying the after-images of every change, in
    [execute_order].  Unique-transaction queue maintenance (enqueue, merge,
    release) is logged alongside so queued batches survive a crash.

    Entries are framed [[u32 len][u32 crc][payload]] (little-endian); an
    entry's LSN is the byte offset of its frame start since log creation.
    Appends land in a volatile [pending] buffer and only become durable at
    {!fsync} — a crash ({!lose_tail}) discards the pending tail, modelling
    writes that never reached stable storage.  {!truncate_to} drops durable
    bytes behind a checkpoint LSN without renumbering later entries. *)

open Strip_relational

type op =
  | Insert of { table : string; order : int; values : Value.t array }
  | Delete of { table : string; order : int; values : Value.t array }
  | Update of {
      table : string;
      order : int;
      old_values : Value.t array;
      new_values : Value.t array;
    }

type bound_rows = (string * Value.t array list) list
(** Bound temp-table contents of a queued unique transaction, keyed by the
    (unqualified) bound-table name. *)

type trace_subject =
  | For_txn of int
      (** annotates the commit with this txid: a replica parents its
          apply span under the primary's commit span *)
  | For_uq of { func : string; key : Value.t list }
      (** annotates the queued unique batch for [(func, key)]: crash
          recovery reattaches the context to the resubmitted task *)

type record =
  | Commit of { txid : int; time : float; ops : op list }
  | Uq_enqueue of {
      func : string;
      key : Value.t list;
      release_time : float;
      created_at : float;
      bound : bound_rows;
    }
  | Uq_merge of { func : string; key : Value.t list; bound : bound_rows }
  | Uq_release of { func : string; key : Value.t list }
  | Checkpoint_mark of { time : float; lsn : int }
  | Trace_note of { subject : trace_subject; trace : int; span : int }
      (** causal-trace annotation riding the same fsync as the record it
          describes; written only when tracing is on, so flag-off logs
          are byte-identical to earlier releases *)

val op_table : op -> string
val op_order : op -> int

val ops_of_tlog : Tlog.t -> op list
(** Convert a committed transaction's log into redo ops, oldest first,
    preserving [execute_order]. *)

type t

val create : ?base_lsn:int -> unit -> t
(** [base_lsn] (default 0) is the LSN of the first byte this log will hold
    — a replica's log copy starts at its bootstrap checkpoint's LSN. *)

val append : t -> record -> int
(** Frame and append a record to the pending (unsynced) tail; returns its
    LSN.  Ticks the ["wal_append"] meter. *)

val append_batch : t -> record list -> int list
(** Append a transaction's records in one pass: all payloads are encoded
    into a single reused buffer and framed from it, instead of allocating
    an encode buffer per record.  The resulting byte stream, LSNs and
    ["wal_append"] tick count are exactly those of the equivalent
    per-record {!append}s. *)

val fsync : t -> unit
(** Make all pending bytes durable.  Ticks the ["wal_fsync"] meter. *)

val lose_tail : t -> unit
(** Crash: discard everything appended since the last {!fsync}. *)

val truncate_to : t -> lsn:int -> unit
(** Drop durable bytes strictly before [lsn] (a checkpoint boundary).
    @raise Invalid_argument if [lsn] is outside the durable log. *)

(** {1 Positions and volume} *)

val base_lsn : t -> int
val durable_end : t -> int
val end_lsn : t -> int
val pending_bytes : t -> int
val durable_bytes : t -> int
val n_appends : t -> int
val n_fsyncs : t -> int
val n_truncations : t -> int
val appended_bytes : t -> int

(** {1 Reading (recovery)} *)

type read_result = {
  records : (int * record) list;  (** (lsn, record), oldest first *)
  torn_at : int option;
      (** LSN of a torn final entry that was dropped, if any *)
  corrupt_at : int option;
      (** LSN of a mid-log corrupt entry; scanning stopped there *)
}

val read : t -> read_result
(** Scan the durable log.  A final entry that is incomplete or fails its
    CRC is treated as a torn write and dropped ([torn_at]); a bad entry
    with valid entries after it is corruption ([corrupt_at]) and scanning
    stops. *)

val read_from : t -> lsn:int -> read_result
(** Cursor-style tail read: scan durable entries starting at [lsn],
    without re-decoding anything before it.  [lsn] must be an entry
    boundary previously returned by {!append} (or {!base_lsn} /
    {!durable_end}).  @raise Invalid_argument if [lsn] lies outside
    [[base_lsn, durable_end]]. *)

(** {1 Log shipping} *)

val durable_slice : t -> from_lsn:int -> string
(** Raw framed bytes of the durable log from [from_lsn] (an entry
    boundary) to {!durable_end} — the segment a primary ships to a
    replica.  @raise Invalid_argument if [from_lsn] lies outside
    [[base_lsn, durable_end]]. *)

val install_bytes : t -> string -> unit
(** Append already-framed bytes directly to the durable buffer.  Used by
    a replica to graft a shipped segment onto its local log copy; the
    bytes must start exactly at {!durable_end}. *)

(** {1 Test hooks} *)

val durable_contents : t -> string
val set_durable_for_test : t -> string -> unit
