(** Stable storage surviving a crash: the WAL plus retained checkpoint
    slots and a media-fault ledger.

    A [Durable.t] is the only state that outlives {!Fault.Crashed} — the
    engine, catalog, queues and every other in-memory structure are
    discarded and rebuilt from it by [Strip_core.Recovery].

    Checkpoint installation is atomic: the encoded snapshot is published
    with a CRC computed at install time, so later verification
    ({!verified_slot}, {!scrub_slots}) can tell a rotted image from a
    clean one.  Up to [retain] slots are kept, newest first; with
    [retain >= 2] recovery can fall back to the previous slot when the
    newest image fails its CRC, provided the log is truncated no further
    than {!truncation_floor}.

    The media-fault ledger records every injected at-rest fault (bit rot
    in WAL bytes or checkpoint images, lying fsyncs) and tracks it from
    [Outstanding] through detection to one of the terminal states.  The
    chaos invariant [no_silent_corruption] asserts that no fault is
    still [Outstanding] when the run ends. *)

type t

(** [create ?wal ?retain ()] — [?wal] supplies a pre-existing log (a
    replica's shipped copy, whose [base_lsn] is the bootstrap
    checkpoint's LSN); default is a fresh empty log.  [?retain] (default
    1) is how many checkpoint slots to keep. *)
val create : ?wal:Wal.t -> ?retain:int -> unit -> t

val wal : t -> Wal.t
val retain : t -> int

val snapshot : t -> string option
(** Latest installed checkpoint image (encoded), if any — unverified;
    media-aware callers use {!verified_slot}. *)

val snapshot_lsn : t -> int
(** WAL position the latest snapshot is consistent up to; redo starts
    here. *)

val snapshot_time : t -> float
val n_checkpoints : t -> int
val last_checkpoint_bytes : t -> int

val install_checkpoint : t -> encoded:string -> lsn:int -> time:float -> unit
(** Atomically publish a new checkpoint image (with its CRC), rotating
    out the oldest slot beyond [retain]. *)

val verified_slot : t -> (string * int * float * int) option
(** [(image, lsn, time, skipped)] for the newest slot whose image still
    matches its install-time CRC; [skipped] counts newer slots that
    failed verification and were passed over.  [None] if no slot
    verifies. *)

val truncation_floor : t -> int
(** LSN of the oldest retained slot — the log must not be truncated past
    it or slot fallback loses its redo tail.  0 when no slot exists. *)

val slots_valid : t -> bool
(** All retained slots pass their CRC. *)

val scrub_slots : t -> int
(** Drop every slot whose image fails its CRC (marking matching ledger
    faults [Detected]); returns how many were dropped.  The caller is
    expected to take a fresh checkpoint when the count is nonzero. *)

(** {1 Media-fault ledger} *)

type fault_kind = Bitrot_wal | Bitrot_checkpoint | Fsync_lie

type fault_state =
  | Outstanding
  | Detected
  | Repaired
  | Quarantined
  | Expunged

val arm_media : t -> unit
(** Mark this store as running under storage-fault injection; gates the
    (scan-cost-bearing) ship-time verification and media metrics so
    fault-free runs stay byte-identical. *)

val media_armed : t -> bool
val note_injected : t -> kind:fault_kind -> lsn:int -> len:int -> unit

val flip_snapshot_byte : t -> frac:float -> bool
(** Bit-rot the newest checkpoint image at relative offset [frac]
    (0..1), recording the injection; the stored CRC is left alone so
    verification fails.  Returns false if there is no image to rot. *)

val note_wal_detected : t -> lsn:int -> len:int -> unit
val note_wal_repaired : t -> lsn:int -> len:int -> unit
val note_wal_quarantined : t -> from_lsn:int -> unit

val note_truncated : t -> below:int -> unit
(** WAL bytes strictly below [below] left the log behind a checkpoint
    without ever being read; faults wholly inside them become
    [Expunged]. *)

val note_cp_detected : t -> unit
val note_cp_repaired : t -> unit

val note_abandoned : t -> unit
(** The whole store left service (failover elected another node); every
    fault still pending becomes [Expunged]. *)

type media_counts = {
  injected_bitrot_wal : int;
  injected_bitrot_cp : int;
  injected_fsync_lie : int;
  detected : int;
  repaired : int;
  quarantined : int;
  expunged : int;
  outstanding : int;
}

val zero_counts : media_counts

val add_counts : t -> media_counts -> media_counts
(** Fold this store's ledger into [counts] — metrics union the current
    primary's store with every store abandoned at a failover. *)

val media_counts : t -> media_counts
val outstanding : t -> int
