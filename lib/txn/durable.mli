(** Stable storage surviving a crash: the WAL plus the latest checkpoint.

    A [Durable.t] is the only state that outlives {!Fault.Crashed} — the
    engine, catalog, queues and every other in-memory structure are
    discarded and rebuilt from it by [Strip_core.Recovery].

    Checkpoint installation is atomic: the encoded snapshot replaces the
    previous one in a single step, so a crash during capture leaves the
    old checkpoint (and the untruncated log) intact. *)

type t

(** [create ?wal ()] — [?wal] supplies a pre-existing log (a replica's
    shipped copy, whose [base_lsn] is the bootstrap checkpoint's LSN);
    default is a fresh empty log. *)
val create : ?wal:Wal.t -> unit -> t
val wal : t -> Wal.t

val snapshot : t -> string option
(** Latest installed checkpoint image (encoded), if any. *)

val snapshot_lsn : t -> int
(** WAL position the snapshot is consistent up to; redo starts here. *)

val snapshot_time : t -> float
val n_checkpoints : t -> int
val last_checkpoint_bytes : t -> int

val install_checkpoint : t -> encoded:string -> lsn:int -> time:float -> unit
(** Atomically publish a new checkpoint image. *)
