(** Binary serialization helpers for the durability layer.

    The write-ahead log and checkpoint snapshots share one little-endian
    wire vocabulary: fixed-width integers, IEEE-754 floats (by bit
    pattern, so round trips are exact), length-prefixed strings and lists,
    and tagged {!Strip_relational.Value.t} cells.  Decoding is strict —
    any truncation or unknown tag raises {!Decode_error}, which the WAL
    reader turns into torn-tail / corruption verdicts. *)

exception Decode_error of string

(** {1 Writers} — append to a [Buffer.t] *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument outside [0, 2^32). *)

val put_i64 : Buffer.t -> int64 -> unit
val put_int : Buffer.t -> int -> unit
val put_float : Buffer.t -> float -> unit
(** Exact (bit-pattern) float round trip. *)

val put_string : Buffer.t -> string -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val put_value : Buffer.t -> Strip_relational.Value.t -> unit
val put_values : Buffer.t -> Strip_relational.Value.t array -> unit
val put_ty : Buffer.t -> Strip_relational.Value.ty -> unit

(** {1 Readers} *)

type reader

val reader : ?pos:int -> string -> reader
val position : reader -> int
val remaining : reader -> int
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int64
val get_int : reader -> int
val get_float : reader -> float
val get_string : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list
val get_value : reader -> Strip_relational.Value.t
val get_values : reader -> Strip_relational.Value.t array
val get_ty : reader -> Strip_relational.Value.ty

(** {1 Integrity} *)

val crc32 : ?pos:int -> ?len:int -> string -> int
(** CRC-32 (IEEE) of a substring; the WAL's per-entry checksum. *)
