(** Ready queue with real-time scheduling policies (paper §6.2).

    STRIP serves ready tasks from a pool of processes using "standard
    real-time scheduling algorithms ... such as earliest-deadline and
    value-density first".  Within the simulator a single CPU drains this
    queue; updates always dispatch before recomputes (class priority), and
    the policy orders tasks within a class:

    - [Fifo]: release order;
    - [Edf]: earliest deadline first (no deadline sorts last);
    - [Vdf]: highest value first.

    Each enqueue/dequeue ticks ["sched_op"] — the scheduling overhead the
    paper blames for the "critical region" once recomputation counts reach
    hundreds of thousands. *)

type policy = Fifo | Edf | Vdf

type t

val create : ?policy:policy -> unit -> t

val policy : t -> policy

val enqueue : t -> Task.t -> unit
(** Marks the task [Ready]. *)

val dequeue : t -> Task.t option
(** Highest-priority task, or [None] when empty.  Cancelled tasks are
    skipped and dropped. *)

val peek : t -> Task.t option

val length : t -> int
(** Number of live (non-cancelled) queued tasks.  Cancellation is lazy, so
    this scans the heap: O(queued). *)

val is_empty : t -> bool
(** No live queued task ([length t = 0]); consistent with {!dequeue}
    returning [None]. *)

val fold : ('a -> Task.t -> 'a) -> 'a -> t -> 'a
(** Fold over the live queued tasks, in arbitrary (heap) order. *)
