open Strip_relational

let c_abort_transaction = Meter.counter "abort_transaction"
let c_begin_transaction = Meter.counter "begin_transaction"
let c_commit_transaction = Meter.counter "commit_transaction"

type status = Active | Committed | Aborted

exception Lock_conflict of {
  txid : int;
  blockers : int list;
  deadlock : bool;
}

type t = {
  id : int;
  cat : Catalog.t;
  locks : Lock.t;
  clock : Clock.t;
  tlog : Tlog.t;
  tenv : Catalog.env;
  mutable pinned : Record.t list;
  mutable st : status;
  tstart : float;
  mutable tcommit : float option;
}

let next_txid = ref 0

let begin_ ~cat ~locks ~clock ?(env = []) () =
  incr next_txid;
  Meter.tick_c c_begin_transaction;
  {
    id = !next_txid;
    cat;
    locks;
    clock;
    tlog = Tlog.create ();
    tenv = env;
    pinned = [];
    st = Active;
    tstart = Clock.now clock;
    tcommit = None;
  }

let txid t = t.id
let status t = t.st
let log t = t.tlog
let env t = t.tenv
let start_time t = t.tstart

let commit_time t =
  match t.tcommit with
  | Some c -> c
  | None -> invalid_arg "Transaction.commit_time: not committed"

let require_active t op =
  if t.st <> Active then
    invalid_arg (Printf.sprintf "Transaction.%s: transaction %d not active" op t.id)

let acquire t res mode =
  match Lock.acquire t.locks ~owner:t.id res mode with
  | Lock.Granted -> ()
  | Lock.Blocked blockers ->
    raise (Lock_conflict { txid = t.id; blockers; deadlock = false })
  | Lock.Deadlock blockers ->
    raise (Lock_conflict { txid = t.id; blockers; deadlock = true })

let pin t r =
  Record.pin r;
  t.pinned <- r :: t.pinned

let hooks t : Sql_exec.hooks =
  let lmode = function Sql_exec.Shared -> Lock.S | Sql_exec.Exclusive -> Lock.X in
  {
    Sql_exec.lock_table =
      (fun tb mode -> acquire t (Lock.Rel (Table.name tb)) (lmode mode));
    lock_record =
      (fun tb r mode ->
        (* Lock the stable logical-row identity: updates version records,
           so locking the version rid would let a second writer slip past
           the first one's still-held lock on the superseded version. *)
        let res = Lock.Rec (Table.name tb, r.Record.base) in
        let already = Lock.holds t.locks ~owner:t.id res in
        acquire t res (lmode mode);
        (* Pin the pre-image on first exclusive acquisition so the rule pass
           can read it after the update retires it. *)
        match (mode, already) with
        | Sql_exec.Exclusive, (None | Some Lock.S) -> pin t r
        | _ -> ());
    on_insert = (fun tb r -> Tlog.log_insert t.tlog ~table:(Table.name tb) r);
    on_update =
      (fun tb ~old_rec ~new_rec ->
        Tlog.log_update t.tlog ~table:(Table.name tb) ~old_rec ~new_rec);
    on_delete = (fun tb r -> Tlog.log_delete t.tlog ~table:(Table.name tb) r);
  }

let exec_stmt t stmt =
  require_active t "exec";
  Sql_exec.exec ~hooks:(hooks t) t.cat ~env:t.tenv stmt

let exec t s = exec_stmt t (Sql_parser.parse_statement s)

let lock_from_tables t (ast : Sql_parser.select_ast) =
  List.iter
    (fun (r : Sql_parser.table_ref) ->
      match Catalog.find_table t.cat r.rel with
      | Some _ -> acquire t (Lock.Rel r.rel) Lock.S
      | None -> ())
    ast.from

let query t s =
  require_active t "query";
  let ast = Sql_parser.parse_select_string s in
  lock_from_tables t ast;
  let plan = Sql_exec.plan_select t.cat ~env:t.tenv ast in
  Query.run t.cat ~env:t.tenv plan

let query_plan t plan =
  require_active t "query_plan";
  Query.run t.cat ~env:t.tenv plan

let commit t =
  require_active t "commit";
  Meter.tick_c c_commit_transaction;
  t.tcommit <- Some (Clock.now t.clock);
  t.st <- Committed;
  Lock.release_all t.locks ~owner:t.id

let cleanup t =
  List.iter Record.unpin t.pinned;
  t.pinned <- []

let abort t =
  require_active t "abort";
  Meter.tick_c c_abort_transaction;
  (* Undo in reverse order.  Because updates version records, the record a
     log entry names may since have been superseded; [current] maps an
     original rid to the live record now standing for it. *)
  let current : (int, Record.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve (r : Record.t) =
    match Hashtbl.find_opt current r.Record.rid with Some x -> x | None -> r
  in
  List.iter
    (fun (e : Tlog.entry) ->
      let tb = Catalog.table_exn t.cat e.table in
      match e.change with
      | Tlog.Inserted r ->
        let c = resolve r in
        if c.Record.live then Table.delete tb c
      | Tlog.Deleted r ->
        let fresh = Table.insert tb (Array.copy r.Record.values) in
        Hashtbl.replace current r.Record.rid fresh
      | Tlog.Updated { old_rec; new_rec } ->
        let c = resolve new_rec in
        if c.Record.live then begin
          let fresh = Table.update tb c (Array.copy old_rec.Record.values) in
          Hashtbl.replace current old_rec.Record.rid fresh
        end)
    (Tlog.entries_rev t.tlog);
  t.st <- Aborted;
  (* Aborts release physically even inside a defer window: the undo above
     already took effect in real execution order, so no zombie holder must
     outlive the transaction. *)
  Lock.release_now t.locks ~owner:t.id;
  cleanup t
