open Strip_relational

let c_sched_op = Meter.counter "sched_op"
type policy = Fifo | Edf | Vdf

(* Heap keys: lexicographic (class priority, policy key, arrival seq). *)
type keyed = {
  kpri : int;
  kpol : float;
  kseq : int;
  task : Task.t;
}

type t = {
  pol : policy;
  mutable heap : keyed array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(policy = Fifo) () =
  { pol = policy; heap = [||]; size = 0; next_seq = 0 }

let policy t = t.pol

let less a b =
  if a.kpri <> b.kpri then a.kpri < b.kpri
  else if a.kpol <> b.kpol then a.kpol < b.kpol
  else a.kseq < b.kseq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let pol_key t (task : Task.t) =
  match t.pol with
  | Fifo -> 0.0
  | Edf -> ( match task.Task.deadline with Some d -> d | None -> infinity)
  | Vdf -> -.task.Task.value

let enqueue t task =
  Meter.tick_c c_sched_op;
  let keyed =
    { kpri = Task.priority task; kpol = pol_key t task; kseq = t.next_seq; task }
  in
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (max 64 (2 * t.size)) keyed in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  task.Task.state <- Task.Ready;
  t.heap.(t.size) <- keyed;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec dequeue t =
  if t.size = 0 then None
  else begin
    Meter.tick_c c_sched_op;
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    match top.task.Task.state with
    | Task.Cancelled -> dequeue t
    | _ -> Some top.task
  end

let rec peek t =
  if t.size = 0 then None
  else
    match t.heap.(0).task.Task.state with
    | Task.Cancelled ->
      (* Drop cancelled tasks lazily. *)
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      peek t
    | _ -> Some t.heap.(0).task

(* Cancellation is lazy (cancelled entries stay in the heap until a
   dequeue/peek reaches them), so the live count must skip them — otherwise
   [is_empty] can be false while [dequeue] returns [None]. *)
let length t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).task.Task.state <> Task.Cancelled then incr n
  done;
  !n

let is_empty t =
  let rec live i =
    i < t.size
    && (t.heap.(i).task.Task.state <> Task.Cancelled || live (i + 1))
  in
  not (live 0)

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    if t.heap.(i).task.Task.state <> Task.Cancelled then
      acc := f !acc t.heap.(i).task
  done;
  !acc
