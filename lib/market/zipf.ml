let weights ~n ~s =
  let w = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let power w b =
  let biased = Array.map (fun x -> Float.pow x b) w in
  let total = Array.fold_left ( +. ) 0.0 biased in
  Array.map (fun x -> x /. total) biased

(* Vose's alias method. *)
type sampler = {
  prob : float array;
  alias : int array;
}

let sampler w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Zipf.sampler: empty weights";
  let scaled = Array.map (fun x -> x *. float_of_int n) w in
  let total = Array.fold_left ( +. ) 0.0 w in
  let scaled = Array.map (fun x -> x /. total) scaled in
  let prob = Array.make n 0.0 and alias = Array.make n 0 in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i x -> if x < 1.0 then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias }

let sample t rng =
  let n = Array.length t.prob in
  let i = Random.State.int rng n in
  if Random.State.float rng 1.0 < t.prob.(i) then i else t.alias.(i)

let sample_distinct t rng ~k ~n =
  if k > n then invalid_arg "Zipf.sample_distinct: k > n";
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let filled = ref 0 in
  (* Rejection sampling; falls back to scanning when k approaches n. *)
  let attempts = ref 0 in
  while !filled < k && !attempts < 50 * k do
    incr attempts;
    let i = sample t rng in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      out.(!filled) <- i;
      incr filled
    end
  done;
  (* Complete deterministically if rejection stalled. *)
  let next = ref 0 in
  while !filled < k do
    if not (Hashtbl.mem seen !next) then begin
      Hashtbl.add seen !next ();
      out.(!filled) <- !next;
      incr filled
    end;
    incr next
  done;
  out
