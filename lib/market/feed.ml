type quote = {
  time : float;
  stock : int;
  price : float;
}

type config = {
  n_stocks : int;
  duration : float;
  target_updates : int;
  zipf_s : float;
  burst_mean_quotes : float;
  burst_gap_min : float;
  burst_gap_mean : float;
  seed : int;
}

let default_config =
  {
    n_stocks = 6600;
    duration = 1800.0;
    target_updates = 60000;
    zipf_s = 0.6;
    burst_mean_quotes = 1.4;
    burst_gap_min = 1.1;
    burst_gap_mean = 1.8;
    seed = 1994;
  }

let scaled cfg f =
  {
    cfg with
    duration = cfg.duration *. f;
    target_updates =
      max 1 (int_of_float (Float.round (float_of_int cfg.target_updates *. f)));
  }

let activity_weights cfg = Zipf.weights ~n:cfg.n_stocks ~s:cfg.zipf_s

let eighth = 0.125

let round_to_eighth p = Float.round (p /. eighth) *. eighth

let initial_prices cfg =
  let rng = Random.State.make [| cfg.seed; 17 |] in
  Array.init cfg.n_stocks (fun _ ->
      let p = 8.0 +. Random.State.float rng 112.0 in
      Float.max eighth (round_to_eighth p))

(* Knuth's Poisson sampler; adequate for the per-stock burst counts. *)
let poisson rng lambda =
  if lambda <= 0.0 then 0
  else if lambda > 700.0 then
    (* normal approximation for very active stocks *)
    let u1 = Random.State.float rng 1.0 and u2 = Random.State.float rng 1.0 in
    let z =
      Float.sqrt (-2.0 *. Float.log (Float.max 1e-12 u1))
      *. Float.cos (2.0 *. Float.pi *. u2)
    in
    max 0 (int_of_float (Float.round (lambda +. (z *. Float.sqrt lambda))))
  else begin
    let l = Float.exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue_ = ref true in
    while !continue_ do
      p := !p *. Random.State.float rng 1.0;
      if !p <= l then continue_ := false else incr k
    done;
    !k
  end

let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let weights = activity_weights cfg in
  let prices = initial_prices cfg in
  let stop_p = 1.0 /. Float.max 1.0 cfg.burst_mean_quotes in
  let quotes = ref [] in
  for s = 0 to cfg.n_stocks - 1 do
    let expected = float_of_int cfg.target_updates *. weights.(s) in
    let expected_bursts = expected /. Float.max 1.0 cfg.burst_mean_quotes in
    let n_bursts = poisson rng expected_bursts in
    (* Quote instants for all bursts of this stock. *)
    let times = ref [] in
    for _b = 1 to n_bursts do
      let start = Random.State.float rng cfg.duration in
      (* burst length: 1 + Geometric(stop_p) *)
      let k = ref 1 in
      while Random.State.float rng 1.0 > stop_p do
        incr k
      done;
      (* quotes separated by a floor gap plus an exponential tail *)
      let tail = Float.max 1e-6 (cfg.burst_gap_mean -. cfg.burst_gap_min) in
      let t = ref start in
      times := start :: !times;
      for _q = 2 to !k do
        let gap =
          cfg.burst_gap_min
          -. (tail *. Float.log (Float.max 1e-12 (Random.State.float rng 1.0)))
        in
        t := !t +. gap;
        times := !t :: !times
      done
    done;
    (* Strictly increasing per-stock times (overlapping bursts are nudged
       apart), so the price walk is well ordered in time and every quote
       really changes the price. *)
    let times = List.sort Float.compare !times in
    let price = ref prices.(s) in
    let last = ref neg_infinity in
    List.iter
      (fun time ->
        let time = if time <= !last +. 1e-3 then !last +. 1e-3 else time in
        last := time;
        if time < cfg.duration then begin
          (* random walk in eighths; every quote moves the price *)
          let steps = float_of_int (1 + Random.State.int rng 3) in
          let dir =
            if !price <= 1.0 then 1.0
            else if Random.State.bool rng then 1.0
            else -1.0
          in
          price := Float.max eighth (!price +. (dir *. steps *. eighth));
          quotes := { time; stock = s; price = !price } :: !quotes
        end)
      times
  done;
  let arr = Array.of_list !quotes in
  Array.sort
    (fun a b ->
      let c = Float.compare a.time b.time in
      if c <> 0 then c else Int.compare a.stock b.stock)
    arr;
  arr

let arrival_times quotes = Array.map (fun q -> q.time) quotes
