(** Synthetic TAQ-like quote stream.

    Stands in for the NYSE TAQ consolidated quote file the paper replays
    (§4.1): ~6,600 stocks, ~60,000 price changes over a 30-minute window.
    The generator reproduces the two statistical properties the paper's
    results depend on:

    - {b activity skew} — per-stock quote counts follow a Zipf-like law, so
      a few stocks dominate the stream (this drives the fan-in/fan-out
      batching asymmetry of §5);
    - {b burstiness} — "a small price change in a stock may trigger a burst
      of quotes ... followed by minutes of inactivity" (§1): each stock
      alternates long quiet gaps with bursts of quotes whose intra-burst
      gaps are a floor plus an exponential tail (market makers settling on
      a new price re-quote every second or two).  This is the temporal
      locality that [unique on symbol] batching exploits — and because the
      gaps rarely dip below a second, delay windows shorter than ~1 s catch
      almost none of it, reproducing the paper's Figure-12 crossover.

    Prices follow a per-stock random walk in 1994-style eighths, and every
    quote changes the price (a no-op quote would not trigger the rules). *)

type quote = {
  time : float;  (** seconds from experiment start *)
  stock : int;  (** stock index, 0 = most active *)
  price : float;  (** new price, a positive multiple of 1/8 *)
}

type config = {
  n_stocks : int;
  duration : float;  (** seconds *)
  target_updates : int;  (** expected total quote count *)
  zipf_s : float;  (** activity skew exponent *)
  burst_mean_quotes : float;  (** mean quotes per burst (≥ 1) *)
  burst_gap_min : float;  (** minimum seconds between quotes of a burst *)
  burst_gap_mean : float;
      (** mean intra-burst gap (exponential tail above the minimum) *)
  seed : int;
}

val default_config : config
(** The paper's scenario: 6,600 stocks, 1,800 s, 60,000 updates,
    [zipf_s = 0.6], bursts of ~1.4 quotes with gaps of 0.9 s plus an
    exponential tail (mean 1.6 s), seed 1994. *)

val scaled : config -> float -> config
(** [scaled cfg f] shrinks duration and update count by factor [f] (for
    quick runs); everything else is untouched. *)

val activity_weights : config -> float array
(** Normalized expected share of the stream per stock (the paper's "trading
    activity as measured by the number of price changes"). *)

val generate : config -> quote array
(** The trace, sorted by time; deterministic for a given config. *)

val initial_prices : config -> float array
(** Per-stock price at experiment start (the walk's origin), in eighths. *)

val arrival_times : quote array -> float array
(** Just the (sorted) times — the engine's context-switch profile. *)
