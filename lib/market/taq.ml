let compute_symbol i =
  let rec go i acc =
    let letter = Char.chr (Char.code 'A' + (i mod 26)) in
    let acc = String.make 1 letter ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

(* Symbols are interned: populate and feed import ask for the same few
   thousand symbols tens of thousands of times, in a dense 0..n range. *)
let symbol_cache = ref [||]

let symbol i =
  if i < 0 then invalid_arg "Taq.symbol: negative index";
  let cache = !symbol_cache in
  if i < Array.length cache && String.length cache.(i) > 0 then cache.(i)
  else begin
    let s = compute_symbol i in
    let cache =
      if i < Array.length cache then cache
      else begin
        let bigger = Array.make (max 1024 ((i + 1) * 2)) "" in
        Array.blit cache 0 bigger 0 (Array.length cache);
        symbol_cache := bigger;
        bigger
      end
    in
    cache.(i) <- s;
    s
  end

let stock_of_symbol s =
  if s = "" then invalid_arg "Taq.stock_of_symbol: empty symbol";
  let n = String.length s in
  let value = ref 0 in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if c < 'A' || c > 'Z' then
      invalid_arg (Printf.sprintf "Taq.stock_of_symbol: bad symbol %s" s);
    value := (!value * 26) + (Char.code c - Char.code 'A' + 1)
  done;
  !value - 1

let half_spread = 0.125

let to_lines quotes =
  Array.to_list quotes
  |> List.map (fun (q : Feed.quote) ->
         Printf.sprintf "%s,%d,%.3f,%.3f" (symbol q.stock)
           (int_of_float q.time)
           (q.price -. half_spread)
           (q.price +. half_spread))

let of_lines lines =
  let parse line =
    match String.split_on_char ',' (String.trim line) with
    | [ sym; sec; bid; ask ] -> (
      try
        let stock = stock_of_symbol sym in
        let second = int_of_string sec in
        let bid = float_of_string bid and ask = float_of_string ask in
        (stock, second, (bid +. ask) /. 2.0)
      with _ -> failwith (Printf.sprintf "Taq.of_lines: malformed line %S" line))
    | _ -> failwith (Printf.sprintf "Taq.of_lines: malformed line %S" line)
  in
  let parsed =
    List.filter_map
      (fun line -> if String.trim line = "" then None else Some (parse line))
      lines
  in
  (* Count quotes per integer second, then spread each second's quotes
     evenly: quote k of n at t + k/n (k = 0..n-1). *)
  let per_second = Hashtbl.create 256 in
  List.iter
    (fun (_, sec, _) ->
      let n = match Hashtbl.find_opt per_second sec with Some n -> n | None -> 0 in
      Hashtbl.replace per_second sec (n + 1))
    parsed;
  let seen = Hashtbl.create 256 in
  let quotes =
    List.map
      (fun (stock, sec, price) ->
        let n = Hashtbl.find per_second sec in
        let k = match Hashtbl.find_opt seen sec with Some k -> k | None -> 0 in
        Hashtbl.replace seen sec (k + 1);
        let time = float_of_int sec +. (float_of_int k /. float_of_int n) in
        { Feed.time; stock; price })
      parsed
  in
  let arr = Array.of_list quotes in
  Array.sort
    (fun (a : Feed.quote) b ->
      let c = Float.compare a.time b.time in
      if c <> 0 then c else Int.compare a.stock b.stock)
    arr;
  arr

let save path quotes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines quotes))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))
