(** Zipf-like weights and weighted sampling.

    Trading activity across stocks is famously heavy-tailed; the paper's
    TAQ trace has a few stocks quoting thousands of times a day and a long
    tail quoting a handful.  We model per-stock activity as
    [wₖ ∝ 1/k^s] and expose weighted sampling for populating the
    activity-proportional composite memberships and option listings of
    paper §4.2. *)

val weights : n:int -> s:float -> float array
(** Normalized weights (sum = 1); index 0 is the most active. *)

val power : float array -> float -> float array
(** [power w b] renormalizes [wᵢ^b] — a bias knob: [b = 1] keeps the
    distribution, [b = 0] flattens it to uniform. *)

type sampler

val sampler : float array -> sampler
(** O(1) weighted sampling via the alias method. *)

val sample : sampler -> Random.State.t -> int

val sample_distinct : sampler -> Random.State.t -> k:int -> n:int -> int array
(** [k] distinct indexes drawn from the weighted distribution (rejection on
    duplicates; [k] must be ≤ [n], the index space size).
    @raise Invalid_argument otherwise. *)
