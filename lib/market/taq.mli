(** TAQ-style consolidated quote files (paper §4.1).

    The NYSE TAQ quote file records, per quote: the stock symbol, bid and
    ask prices, and the time {e to the nearest second}.  This module
    serializes traces in that shape and, on load, re-applies the paper's
    timestamp treatment: "if more than one quote occurs within a given
    second we spread them evenly over the 1 second interval" (quote [k] of
    [n] within second [t] lands at [t + k/n]).

    Line format: [SYMBOL,SECOND,BID,ASK] with bid/ask an eighth below/above
    the quote midpoint. *)

val symbol : int -> string
(** Ticker for a stock index: base-26 letters ("A", "B", ..., "AA", ...),
    stable across the whole system. *)

val stock_of_symbol : string -> int
(** Inverse of {!symbol}.  @raise Invalid_argument on a malformed ticker. *)

val to_lines : Feed.quote array -> string list
(** Serialize (timestamps truncated to whole seconds, as in TAQ). *)

val of_lines : string list -> Feed.quote array
(** Parse and spread same-second quotes evenly.
    @raise Failure on a malformed line. *)

val save : string -> Feed.quote array -> unit
(** Write a trace file. *)

val load : string -> Feed.quote array
(** Read a trace file (applying the even-spreading rule). *)
