(** Scalar expressions over rows.

    Expressions appear in WHERE predicates, select lists, and SET clauses.
    Column references are written with an optional qualifier ([new.price])
    and are resolved against a schema into positional references before
    evaluation.  Comparison and boolean operators follow SQL three-valued
    logic: any comparison with [Null] is unknown ([Null]), [AND]/[OR]
    short-circuit through the Kleene tables.

    Scalar functions (e.g. the Black-Scholes pricer the PTA registers as
    [f_bs]) are looked up in a global registry by name — they are the paper's
    "application-provided functions linked into the database". *)

type unop = Neg | Not | Is_null | Is_not_null

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type t =
  | Const of Value.t
  | Col of string option * string  (** (qualifier, column name) — unresolved *)
  | Bound of int  (** resolved column position *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list

exception Unknown_column of string
exception Unknown_function of string

val col : ?qual:string -> string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val ( =: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t
val ( &&: ) : t -> t -> t
val ( ||: ) : t -> t -> t
(** Builder combinators for writing queries in OCaml. *)

val resolve : Schema.t -> t -> t
(** Replace every [Col] with its [Bound] position.
    @raise Unknown_column on an unresolvable reference.
    @raise Schema.Ambiguous on an ambiguous unqualified reference. *)

val eval : t -> Value.t array -> Value.t
(** Evaluate a resolved expression against a row.  Ticks the
    ["predicate_eval"] meter once per call.
    @raise Unknown_column if an unresolved [Col] remains.
    @raise Unknown_function if a called function is unregistered. *)

val eval_pred : t -> Value.t array -> bool
(** Predicate evaluation: [Null] (unknown) counts as false, as in SQL
    WHERE. *)

val columns_used : t -> (string option * string) list
(** Unresolved column references, in first-occurrence order. *)

val infer_type : Schema.t -> t -> Value.ty option
(** Best-effort static type of an expression over rows of the schema;
    [None] when unknown (e.g. an unregistered function). *)

val register_fun : string -> ?ret:Value.ty -> (Value.t list -> Value.t) -> unit
(** Register (or replace) a scalar function; names are case-insensitive.
    [ret] feeds {!infer_type}. *)

val find_fun : string -> (Value.t list -> Value.t) option

val pp : Format.formatter -> t -> unit
(** SQL-ish rendering, for error messages and EXPLAIN output. *)
