type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Comma | Dot | Semi | Star
  | Eq | Neq | Lt | Le | Gt | Ge
  | Plus | Minus | Slash | Percent
  | Plus_eq
  | Concat
  | Eof

exception Lex_error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.sub input start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
      then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        if !i < n && is_digit input.[!i] then begin
          is_float := true;
          while !i < n && is_digit input.[!i] do
            incr i
          done
        end
        else i := save
      end;
      let text = String.sub input start (!i - start) in
      if !is_float then emit (Float_lit (float_of_string text))
      else emit (Int_lit (int_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string literal", start));
      emit (Str_lit (Buffer.contents buf))
    end
    else begin
      let two a b t =
        if c = a && peek 1 = Some b then begin
          emit t;
          i := !i + 2;
          true
        end
        else false
      in
      if
        two '<' '>' Neq || two '!' '=' Neq || two '<' '=' Le || two '>' '=' Ge
        || two '+' '=' Plus_eq || two '|' '|' Concat
      then ()
      else begin
        (match c with
        | '(' -> emit Lparen
        | ')' -> emit Rparen
        | ',' -> emit Comma
        | '.' -> emit Dot
        | ';' -> emit Semi
        | '*' -> emit Star
        | '=' -> emit Eq
        | '<' -> emit Lt
        | '>' -> emit Gt
        | '+' -> emit Plus
        | '-' -> emit Minus
        | '/' -> emit Slash
        | '%' -> emit Percent
        | c ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
      end
    end
  done;
  emit Eof;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Semi -> ";"
  | Star -> "*"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Plus_eq -> "+="
  | Concat -> "||"
  | Eof -> "<eof>"
