type snapshot = (string * int) list

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let enabled = ref true

let cell name =
  match Hashtbl.find_opt counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add counters name r;
    r

let tick name = if !enabled then incr (cell name)

let tick_n name n =
  if !enabled && n <> 0 then begin
    assert (n > 0);
    let r = cell name in
    r := !r + n
  end

let get name = match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let reset () = Hashtbl.iter (fun _ r -> r := 0) counters

let snapshot () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []

let diff before after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) before;
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let v0 = match Hashtbl.find_opt tbl name with Some x -> x | None -> 0 in
        if v <> v0 then Some (name, v - v0) else None)
      after
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) deltas

let fold f init = Hashtbl.fold (fun name r acc -> f name !r acc) counters init
