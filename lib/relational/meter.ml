(* Counters live in a flat int array indexed by a small registry id; the
   string name is resolved once (at [counter] time) so hot paths tick by
   array index instead of hashing a string per operation.  Snapshots are
   plain array copies, and [diff] is a single linear scan — both sit on
   the engine's per-task path, so they must not allocate per counter. *)

type cell = int

let enabled = ref true
let index : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref (Array.make 64 "")
let vals = ref (Array.make 64 0)
let count = ref 0

let counter name =
  match Hashtbl.find_opt index name with
  | Some id -> id
  | None ->
    let id = !count in
    let cap = Array.length !vals in
    if id >= cap then begin
      let names' = Array.make (2 * cap) "" in
      Array.blit !names 0 names' 0 cap;
      names := names';
      let vals' = Array.make (2 * cap) 0 in
      Array.blit !vals 0 vals' 0 cap;
      vals := vals'
    end;
    !names.(id) <- name;
    Hashtbl.add index name id;
    incr count;
    id

let tick_c c =
  if !enabled then begin
    let v = !vals in
    Array.unsafe_set v c (Array.unsafe_get v c + 1)
  end

let tick_cn c n =
  if !enabled && n <> 0 then begin
    assert (n > 0);
    let v = !vals in
    Array.unsafe_set v c (Array.unsafe_get v c + n)
  end

let tick name = if !enabled then tick_c (counter name)
let tick_n name n = if !enabled && n <> 0 then tick_cn (counter name) n

let get name =
  match Hashtbl.find_opt index name with Some id -> !vals.(id) | None -> 0

let reset () = Array.fill !vals 0 !count 0

type snapshot = int array
(* values of counters [0, Array.length - 1] at capture time; counters
   registered later are implicitly 0 in this snapshot *)

let snapshot () = Array.sub !vals 0 !count

(* Counter ids in name order, recomputed only when a counter registers.
   [diff] and the cost model's fused charge both walk this, so per-task
   accounting needs no sort and their float sums keep the historical
   (name-sorted) addition order bit for bit. *)
let sorted_ids = ref [||]
let sorted_for = ref (-1)

let ids_by_name () =
  if !sorted_for <> !count then begin
    let ids = Array.init !count (fun i -> i) in
    Array.sort (fun a b -> String.compare !names.(a) !names.(b)) ids;
    sorted_ids := ids;
    sorted_for := !count
  end;
  !sorted_ids

let name_of_cell id = !names.(id)
let cell_id id = id

let diff before after =
  let nb = Array.length before and na = Array.length after in
  let ids = ids_by_name () in
  let deltas = ref [] in
  for i = Array.length ids - 1 downto 0 do
    let id = ids.(i) in
    if id < na then begin
      let v0 = if id < nb then before.(id) else 0 in
      let v = after.(id) in
      if v <> v0 then deltas := (!names.(id), v - v0) :: !deltas
    end
  done;
  !deltas

let charge_diff before after ~rate =
  let nb = Array.length before and na = Array.length after in
  let ids = ids_by_name () in
  let acc = ref 0.0 in
  for i = 0 to Array.length ids - 1 do
    let id = ids.(i) in
    if id < na then begin
      let v0 = if id < nb then before.(id) else 0 in
      let d = after.(id) - v0 in
      if d <> 0 then acc := !acc +. (rate id *. float_of_int d)
    end
  done;
  !acc

let fold f init =
  let acc = ref init in
  for id = 0 to !count - 1 do
    acc := f !names.(id) !vals.(id) !acc
  done;
  !acc
