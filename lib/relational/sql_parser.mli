(** Parser and planner for the STRIP SQL subset.

    Covers what STRIP v2.0's evaluation needs (paper §3-§4): CREATE TABLE /
    INDEX / VIEW, INSERT, UPDATE (including the [+=] increment form of
    Figure 3), DELETE, and SELECT with comma joins, WHERE, GROUP BY /
    HAVING, ORDER BY and LIMIT.  The rule DDL of Figure 2 is layered on top
    in {!Strip_core.Rule_parser}, which drives the exposed token cursor so
    the [select ... bind as t] form can be parsed in place.

    Parsing yields an AST; {!plan_select} lowers a select AST to a
    {!Query.plan}, choosing join order with a small heuristic: temporary
    relations (transition/bound tables — always small) are joined first and
    standard tables later, so that equi-joins against indexed standard
    tables run as index nested loops; WHERE conjuncts are attached to the
    join level where they first resolve. *)

type set_op = Assign | Increment

type sel_item =
  | Star
  | Qual_star of string
  | Item of Query.select_item

type table_ref = { rel : string; alias : string }

type select_ast = {
  distinct : bool;
  items : sel_item list;
  from : table_ref list;
  where : Expr.t option;
  group_by : Expr.t list;
  having : Expr.t option;
  order_by : (Expr.t * Query.order) list;
  limit : int option;
}

type statement =
  | Create_table of { name : string; cols : (string * Value.ty) list }
  | Create_index of {
      iname : string;
      table : string;
      cols : string list;
      kind : Index.kind;
    }
  | Create_view of { name : string; select : select_ast }
  | Insert of { table : string; columns : string list option; values : Expr.t list list }
  | Update of {
      table : string;
      sets : (string * set_op * Expr.t) list;
      where : Expr.t option;
    }
  | Delete of { table : string; where : Expr.t option }
  | Drop_table of string
  | Drop_index of { table : string; iname : string }
  | Select of select_ast
  | Explain of select_ast

exception Parse_error of string

val parse_statement : string -> statement
(** Parse exactly one statement (an optional trailing [;] is allowed). *)

val parse_statements : string -> statement list
(** Parse a [;]-separated script. *)

val parse_select_string : string -> select_ast

val plan_select :
  resolve_rel:(string -> (Schema.t * [ `Std | `Tmp ]) option) ->
  select_ast ->
  Query.plan
(** Lower a select AST to an executable plan.  [resolve_rel] supplies the
    schema and kind of every referenced relation (catalog tables plus the
    transition/bound tables in scope); it drives [*] expansion and join
    ordering.  @raise Parse_error on unknown relations, [*] ambiguity or
    unresolvable conjuncts. *)

(** {1 Token cursor}

    Exposed for the rule-DDL parser, which embeds SELECT queries. *)

type cursor

val cursor_of_string : string -> cursor
val at_eof : cursor -> bool
val peek : cursor -> Sql_lexer.token
val advance : cursor -> unit
val accept_kw : cursor -> string -> bool
(** Consume the given case-insensitive keyword if it is next. *)

val expect_kw : cursor -> string -> unit
(** @raise Parse_error if the keyword is not next. *)

val expect_ident : cursor -> string
(** Consume and return an identifier. *)

val save : cursor -> int
(** Current position, for backtracking probes. *)

val restore : cursor -> int -> unit

val parse_error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Parse_error} with a formatted message. *)

val parse_statement_at : cursor -> statement
(** Parse one statement starting at the cursor (used by script runners that
    interleave SQL statements with rule DDL). *)

val parse_select_at : cursor -> select_ast
(** Parse a SELECT starting at the cursor (the [select] keyword included);
    stops at the first token that cannot continue the query. *)

val parse_expr_at : cursor -> Expr.t
