(** Database catalog: names to relations.

    Standard tables are global.  Temporary tables (transition and bound
    tables) are visible only to the task that owns them; the paper notes
    that "whenever a triggered task tries to access a table, its bound table
    list must be checked as well as the database catalog" (§6.3) — that
    bound-table list is the [env] argument threaded through resolution. *)

type relation =
  | Std of Table.t
  | Tmp of Temp_table.t

type env = (string * Temp_table.t) list
(** Task-local bound/transition tables, checked before the catalog. *)

type t

val create : unit -> t

val create_table : t -> name:string -> schema:Schema.t -> Table.t
(** @raise Invalid_argument if the name is taken. *)

val add_table : t -> Table.t -> unit
(** Register an externally-built table.  @raise Invalid_argument if taken. *)

val drop_table : t -> string -> unit
(** @raise Not_found if absent. *)

val find_table : t -> string -> Table.t option
(** Standard tables only. *)

val table_exn : t -> string -> Table.t
(** @raise Not_found if absent or not a standard table. *)

val resolve : t -> env:env -> string -> relation option
(** Bound-table list first, then the catalog. *)

val resolve_exn : t -> env:env -> string -> relation

val relation_schema : relation -> Schema.t
val relation_name : relation -> string

val tables : t -> Table.t list
(** All standard tables, in creation order. *)
