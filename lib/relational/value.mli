(** Typed SQL values.

    STRIP v2.0 supported fixed-length fields only; we model the four scalar
    types the program-trading schema needs plus [Null].  Arithmetic follows
    SQL conventions: integer operations stay integral, mixing an integer with
    a float promotes to float, and any operation on [Null] yields [Null].
    Comparisons involving [Null] are unknown and surface as [None]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr
(** Column types.  [Null] inhabits every type. *)

val ty_name : ty -> string
(** Lowercase SQL-ish name of a type ("int", "float", "bool", "string"). *)

val ty_of_string : string -> ty option
(** Inverse of {!ty_name}; also accepts the synonyms accepted by the SQL
    parser ("integer", "real", "double", "text", "varchar", "boolean"). *)

val type_of : t -> ty option
(** Runtime type of a value; [None] for [Null]. *)

val conforms : t -> ty -> bool
(** [conforms v ty] is true if [v] may be stored in a column of type [ty]
    ([Null] conforms to everything, [Int] conforms to [TFloat]). *)

val equal : t -> t -> bool
(** Structural equality with numeric coercion ([Int 1] equals [Float 1.]).
    [Null] equals [Null] here — use {!cmp_sql} for SQL three-valued logic. *)

val compare : t -> t -> int
(** Total order used by indexes and sorting: [Null] first, then booleans,
    then numbers (compared numerically across [Int]/[Float]), then strings. *)

val cmp_sql : t -> t -> int option
(** SQL comparison: [None] when either side is [Null] or the types are
    incomparable, otherwise [Some c] with [c] as {!compare}. *)

val hash : t -> int
(** Hash compatible with {!equal} (numeric coercion included). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic with SQL promotion rules.  Division by zero raises
    [Division_by_zero] for integers and yields IEEE infinities for floats.
    @raise Type_error on non-numeric operands. *)

val neg : t -> t

val concat : t -> t -> t
(** String concatenation; numeric operands are rendered with {!to_string}. *)

exception Type_error of string
(** Raised by arithmetic and conversions on ill-typed operands. *)

val to_float : t -> float
(** @raise Type_error unless the value is numeric. *)

val to_int : t -> int
(** @raise Type_error unless the value is an [Int]. *)

val to_bool : t -> bool
(** @raise Type_error unless the value is a [Bool]. *)

val to_string : t -> string
(** Display form: [Null] prints as "NULL", floats with enough digits to
    round-trip. *)

val is_null : t -> bool

val pp : Format.formatter -> t -> unit
