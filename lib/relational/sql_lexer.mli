(** Tokenizer for the STRIP SQL subset and rule DDL.

    Keywords are not distinguished from identifiers at this level — the
    parser matches identifiers case-insensitively, because STRIP's rule
    grammar uses many context-sensitive words ([unique], [after], [bind],
    [seconds], ...) that remain valid column names elsewhere. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Comma | Dot | Semi | Star
  | Eq | Neq | Lt | Le | Gt | Ge
  | Plus | Minus | Slash | Percent
  | Plus_eq  (** the [+=] update extension of paper Figure 3 *)
  | Concat  (** [||] *)
  | Eof

exception Lex_error of string * int
(** (message, character offset) *)

val tokenize : string -> token array
(** Whole-input tokenization; comments ([-- ...] to end of line) and
    whitespace are skipped; the result always ends with [Eof].
    @raise Lex_error on an unrecognizable character or unterminated
    string. *)

val token_to_string : token -> string
