(** Relation schemas.

    A schema is an ordered list of columns, each with a name, a type, and an
    optional qualifier (the table name or alias the column came from).
    Qualifiers matter during query processing — ["new.price"] and
    ["old.price"] are distinct columns of a join result — and are dropped
    when a result is materialized under explicit output names. *)

type column = {
  cname : string;  (** unqualified column name *)
  cqual : string option;  (** qualifying table name or alias, if any *)
  cty : Value.ty;
}

type t

val column : ?qual:string -> string -> Value.ty -> column

val make : column list -> t
(** @raise Invalid_argument on duplicate (qualifier, name) pairs. *)

val of_list : (string * Value.ty) list -> t
(** Unqualified schema from (name, type) pairs. *)

val columns : t -> column list

val arity : t -> int

val names : t -> string list
(** Unqualified column names, in order. *)

val col : t -> int -> column
(** @raise Invalid_argument if out of range. *)

val find : t -> ?qual:string -> string -> int option
(** [find s ~qual name] resolves a column reference to its position.
    Without [qual], matches on the unqualified name; ambiguous references
    (same name from two qualifiers) raise [Ambiguous]. *)

exception Ambiguous of string
(** Raised by {!find} when an unqualified name matches several columns. *)

val find_exn : t -> ?qual:string -> string -> int
(** @raise Not_found when the column does not exist. *)

val mem : t -> string -> bool
(** Does an unqualified column with this name exist? *)

val requalify : string -> t -> t
(** [requalify alias s] replaces every column's qualifier with [alias] —
    used when a table is scanned under an alias. *)

val unqualify : t -> t
(** Drop all qualifiers (used when materializing named results). *)

val append : t -> t -> t
(** Schema of a join result; duplicate qualified names are allowed only if
    their qualifiers differ.  @raise Invalid_argument otherwise. *)

val equal_layout : t -> t -> bool
(** Same arity, unqualified names and types, in order.  This is the
    compatibility check for appending bound tables of two rule firings. *)

val validate_row : t -> Value.t array -> (unit, string) result
(** Check arity and per-column type conformance of a candidate row. *)

val pp : Format.formatter -> t -> unit
