(** Persistent red-black tree (Okasaki insertion, Kahrs deletion).

    STRIP indexes standard tables "using either a hash or red-black tree
    structure" (paper §6.1); this is the ordered half.  The tree maps keys
    to values and rejects duplicate keys — multi-map behaviour (several
    records with one key) is layered on top by {!Index} with list payloads.

    All operations are purely functional; [insert]/[remove] return the new
    tree.  Complexities are the usual O(log n). *)

type ('k, 'v) t

val empty : ('k, 'v) t

val is_empty : ('k, 'v) t -> bool

val insert : cmp:('k -> 'k -> int) -> 'k -> 'v -> ('k, 'v) t -> ('k, 'v) t
(** Insert or replace the binding for a key. *)

val remove : cmp:('k -> 'k -> int) -> 'k -> ('k, 'v) t -> ('k, 'v) t
(** Remove the binding for a key; identity (up to balancing) if absent. *)

val find : cmp:('k -> 'k -> int) -> 'k -> ('k, 'v) t -> 'v option

val update :
  cmp:('k -> 'k -> int) ->
  'k ->
  ('v option -> 'v option) ->
  ('k, 'v) t ->
  ('k, 'v) t
(** [update ~cmp k f t] applies [f] to the current binding: [f None]
    inserts (or not), [f (Some v) = None] deletes, [Some v'] replaces. *)

val cardinal : ('k, 'v) t -> int

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** In-order (ascending key) traversal. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** In-order fold. *)

val range :
  cmp:('k -> 'k -> int) ->
  ?lo:'k ->
  ?hi:'k ->
  ('k -> 'v -> unit) ->
  ('k, 'v) t ->
  unit
(** Visit bindings with [lo <= k <= hi] (inclusive bounds, either optional)
    in ascending order, skipping subtrees outside the range. *)

val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Ascending association list. *)

val check_invariants : cmp:('k -> 'k -> int) -> ('k, 'v) t -> (unit, string) result
(** Verify the red-black invariants: root is black, no red node has a red
    child, every root-leaf path has the same black height, and keys are
    strictly increasing in-order.  Used by the property-test suite. *)
