type t = {
  rid : int;
  base : int;
  values : Value.t array;
  mutable refcount : int;
  mutable live : bool;
}

let next_rid = ref 0

let reclaimed = ref 0

let create values =
  incr next_rid;
  { rid = !next_rid; base = !next_rid; values; refcount = 0; live = true }

let create_version ~base values =
  incr next_rid;
  { rid = !next_rid; base; values; refcount = 0; live = true }

(* Arena filler for unused temp-table slots; never pinned, never linked,
   and allocated without consuming a rid (rid assignment is part of the
   deterministic surface). *)
let dummy = { rid = min_int; base = min_int; values = [||]; refcount = 1; live = false }

let pin r = r.refcount <- r.refcount + 1

let reclaim r = if (not r.live) && r.refcount = 0 then incr reclaimed

let unpin r =
  if r.refcount <= 0 then
    invalid_arg (Printf.sprintf "Record.unpin: record %d not pinned" r.rid);
  r.refcount <- r.refcount - 1;
  reclaim r

let retire r =
  if r.live then begin
    r.live <- false;
    reclaim r
  end

let value r i =
  if i < 0 || i >= Array.length r.values then
    invalid_arg (Printf.sprintf "Record.value: index %d out of range" i);
  r.values.(i)

let reclaimed_count () = !reclaimed

let reset_reclaimed () = reclaimed := 0

let pp ppf r =
  Format.fprintf ppf "#%d[%s]%s" r.rid
    (String.concat "; "
       (Array.to_list (Array.map Value.to_string r.values)))
    (if r.live then "" else "(retired)")
