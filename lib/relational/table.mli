(** Standard tables (paper §6.1).

    A standard table is a linked list of fixed-layout records plus any number
    of secondary indexes (hash or red-black).  Updates are versioned: the new
    record replaces the old one at the same list position, the old record is
    retired and survives only while pinned by temporary tables.

    Cursors are the primitive access path measured in the paper's Table 1:
    open / fetch / update / delete / close, each ticking its meter counter.
    A full-scan cursor walks the list; an index cursor walks the matching
    records of one key.  Cursors capture their successor before yielding a
    record, so updating or deleting through the cursor is safe.

    This module is transaction-agnostic; locking and logging are layered on
    top by {!Strip_txn.Transaction}. *)

type t

type cursor

val create : name:string -> schema:Schema.t -> t

val name : t -> string
val schema : t -> Schema.t
val cardinal : t -> int
(** Number of live records. *)

val create_index : t -> name:string -> kind:Index.kind -> cols:string list -> Index.t
(** Build (and register) an index over existing rows.
    @raise Not_found if a column name is unknown.
    @raise Invalid_argument if the index name is taken. *)

val find_index : t -> string -> Index.t option

val index_on : t -> string list -> Index.t option
(** Any index whose key columns are exactly these (by name, in order). *)

val indexes : t -> Index.t list

val index_gen : t -> int
(** Generation counter, bumped whenever the set of indexes changes.  Lets
    cached query plans validate their access-path choice in O(1). *)

val insert : t -> Value.t array -> Record.t
(** Append a record.  @raise Invalid_argument on schema mismatch. *)

val update : t -> Record.t -> Value.t array -> Record.t
(** [update t old values] links a fresh record in place of [old] and retires
    [old] (§6.1 versioning).  Returns the new record.
    @raise Invalid_argument if [old] is not live in [t]. *)

val delete : t -> Record.t -> unit
(** Unlink and retire a record.  @raise Invalid_argument if not live. *)

val iter : t -> (Record.t -> unit) -> unit
(** Unmetered whole-table iteration (used for bulk loading and tests). *)

val open_cursor : t -> cursor
(** Full-scan cursor. *)

val open_index_cursor : t -> Index.t -> Value.t list -> cursor
(** Cursor over the records matching one index key. *)

val open_range_cursor :
  t -> Index.t -> ?lo:Value.t list -> ?hi:Value.t list -> unit -> cursor
(** Cursor over the records whose ordered-index key lies in the inclusive
    range, in ascending key order.
    @raise Invalid_argument on a hash index. *)

val fetch : cursor -> Record.t option
(** Next record, or [None] at end. *)

val cursor_update : cursor -> Value.t array -> Record.t
(** Replace the record most recently fetched.  @raise Invalid_argument if no
    record has been fetched or it is no longer live. *)

val cursor_delete : cursor -> unit

val close_cursor : cursor -> unit

val clear : t -> unit
(** Remove all records (retiring each). *)

val to_rows : t -> Value.t array list
(** Snapshot of all live rows, in list order (copies). *)
