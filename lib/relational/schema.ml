type column = {
  cname : string;
  cqual : string option;
  cty : Value.ty;
}

type t = { cols : column array }

exception Ambiguous of string

let column ?qual cname cty = { cname; cqual = qual; cty }

let key c =
  (match c.cqual with Some q -> q ^ "." | None -> "") ^ c.cname

let make cols =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let k = key c in
      if Hashtbl.mem seen k then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s" k);
      Hashtbl.add seen k ())
    cols;
  { cols = Array.of_list cols }

let of_list l = make (List.map (fun (n, ty) -> column n ty) l)

let columns s = Array.to_list s.cols

let arity s = Array.length s.cols

let names s = Array.to_list (Array.map (fun c -> c.cname) s.cols)

let col s i =
  if i < 0 || i >= Array.length s.cols then
    invalid_arg (Printf.sprintf "Schema.col: index %d out of range" i);
  s.cols.(i)

let find s ?qual name =
  match qual with
  | Some q ->
    let rec loop i =
      if i >= Array.length s.cols then None
      else
        let c = s.cols.(i) in
        if c.cname = name && c.cqual = Some q then Some i else loop (i + 1)
    in
    loop 0
  | None ->
    let matches = ref [] in
    Array.iteri
      (fun i c -> if c.cname = name then matches := i :: !matches)
      s.cols;
    (match !matches with
    | [] -> None
    | [ i ] -> Some i
    | _ -> raise (Ambiguous name))

let find_exn s ?qual name =
  match find s ?qual name with Some i -> i | None -> raise Not_found

let mem s name =
  Array.exists (fun c -> c.cname = name) s.cols

let requalify alias s =
  { cols = Array.map (fun c -> { c with cqual = Some alias }) s.cols }

let unqualify s = { cols = Array.map (fun c -> { c with cqual = None }) s.cols }

let append a b =
  make (columns a @ columns b)

let equal_layout a b =
  arity a = arity b
  && Array.for_all2
       (fun ca cb -> ca.cname = cb.cname && ca.cty = cb.cty)
       a.cols b.cols

let validate_row s row =
  if Array.length row <> arity s then
    Error
      (Printf.sprintf "row arity %d does not match schema arity %d"
         (Array.length row) (arity s))
  else
    let rec loop i =
      if i >= arity s then Ok ()
      else if not (Value.conforms row.(i) s.cols.(i).cty) then
        Error
          (Printf.sprintf "column %s expects %s, got %s" s.cols.(i).cname
             (Value.ty_name s.cols.(i).cty)
             (Value.to_string row.(i)))
      else loop (i + 1)
    in
    loop 0

let pp ppf s =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%s %s" (key c) (Value.ty_name c.cty))
          (columns s)))
