let c_close_cursor = Meter.counter "close_cursor"
let c_delete_cursor = Meter.counter "delete_cursor"
let c_delete_record = Meter.counter "delete_record"
let c_fetch_cursor = Meter.counter "fetch_cursor"
let c_insert_record = Meter.counter "insert_record"
let c_open_cursor = Meter.counter "open_cursor"
let c_update_cursor = Meter.counter "update_cursor"
let c_update_record = Meter.counter "update_record"

type node = {
  record : Record.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  tname : string;
  tschema : Schema.t;
  mutable first : node option;
  mutable last : node option;
  nodes : (int, node) Hashtbl.t;  (* rid -> node, for O(1) unlink *)
  mutable tindexes : Index.t list;
  mutable ixgen : int;  (* bumped whenever the index list changes *)
  mutable count : int;
}

type cursor = {
  table : t;
  mutable pending : [ `List of node option | `Recs of Record.t list ];
  mutable current : Record.t option;
  mutable closed : bool;
}

let create ~name ~schema =
  {
    tname = name;
    tschema = schema;
    first = None;
    last = None;
    nodes = Hashtbl.create 64;
    tindexes = [];
    ixgen = 0;
    count = 0;
  }

let name t = t.tname
let schema t = t.tschema
let cardinal t = t.count

let iter t f =
  let rec loop = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.record;
      loop next
  in
  loop t.first

let create_index t ~name ~kind ~cols =
  if List.exists (fun i -> Index.name i = name) t.tindexes then
    invalid_arg (Printf.sprintf "Table.create_index: duplicate index %s" name);
  let positions =
    List.map (fun c -> Schema.find_exn t.tschema c) cols |> Array.of_list
  in
  let idx = Index.create ~size_hint:t.count ~name ~kind ~cols:positions () in
  iter t (fun r -> Index.add idx r);
  t.tindexes <- t.tindexes @ [ idx ];
  t.ixgen <- t.ixgen + 1;
  idx

let find_index t name =
  List.find_opt (fun i -> Index.name i = name) t.tindexes

let index_on t cols =
  let want =
    List.map (fun c -> Schema.find_exn t.tschema c) cols |> Array.of_list
  in
  List.find_opt (fun i -> Index.key_cols i = want) t.tindexes

let indexes t = t.tindexes
let index_gen t = t.ixgen

let check_row t values =
  match Schema.validate_row t.tschema values with
  | Ok () -> ()
  | Error msg ->
    invalid_arg (Printf.sprintf "table %s: %s" t.tname msg)

let link_last t node =
  (match t.last with
  | None ->
    t.first <- Some node;
    t.last <- Some node
  | Some l ->
    l.next <- Some node;
    node.prev <- Some l;
    t.last <- Some node);
  (* rids are unique, so the new binding cannot shadow an existing one *)
  Hashtbl.add t.nodes node.record.Record.rid node;
  t.count <- t.count + 1

(* Splice [node] into [old_node]'s list position; [old_node] is detached.
   Must run before anything clears [old_node]'s links. *)
let replace_node t ~old_node node =
  node.prev <- old_node.prev;
  node.next <- old_node.next;
  (match old_node.prev with
  | None -> t.first <- Some node
  | Some p -> p.next <- Some node);
  (match old_node.next with
  | None -> t.last <- Some node
  | Some nx -> nx.prev <- Some node);
  old_node.prev <- None;
  old_node.next <- None;
  Hashtbl.remove t.nodes old_node.record.Record.rid;
  Hashtbl.replace t.nodes node.record.Record.rid node

let unlink t node =
  (match node.prev with
  | None -> t.first <- node.next
  | Some p -> p.next <- node.next);
  (match node.next with
  | None -> t.last <- node.prev
  | Some nx -> nx.prev <- node.prev);
  node.prev <- None;
  node.next <- None;
  Hashtbl.remove t.nodes node.record.Record.rid;
  t.count <- t.count - 1

let node_of t (r : Record.t) =
  match Hashtbl.find_opt t.nodes r.Record.rid with
  | Some n -> n
  | None ->
    invalid_arg
      (Printf.sprintf "table %s: record %d is not live here" t.tname
         r.Record.rid)

let insert t values =
  check_row t values;
  Meter.tick_c c_insert_record;
  let r = Record.create values in
  let node = { record = r; prev = None; next = None } in
  link_last t node;
  List.iter (fun idx -> Index.add idx r) t.tindexes;
  r

let update t old values =
  check_row t values;
  Meter.tick_c c_update_record;
  let old_node = node_of t old in
  let r = Record.create_version ~base:old.Record.base values in
  let node = { record = r; prev = None; next = None } in
  replace_node t ~old_node node;
  List.iter
    (fun idx ->
      Index.remove idx old;
      Index.add idx r)
    t.tindexes;
  Record.retire old;
  r

let delete t r =
  Meter.tick_c c_delete_record;
  let node = node_of t r in
  unlink t node;
  List.iter (fun idx -> Index.remove idx r) t.tindexes;
  Record.retire r

let open_cursor t =
  Meter.tick_c c_open_cursor;
  { table = t; pending = `List t.first; current = None; closed = false }

let open_index_cursor t idx key =
  Meter.tick_c c_open_cursor;
  let recs = Index.lookup idx key in
  { table = t; pending = `Recs recs; current = None; closed = false }

let open_range_cursor t idx ?lo ?hi () =
  Meter.tick_c c_open_cursor;
  let acc = ref [] in
  Index.range idx ?lo ?hi (fun r -> acc := r :: !acc);
  { table = t; pending = `Recs (List.rev !acc); current = None; closed = false }

let fetch c =
  if c.closed then invalid_arg "Table.fetch: cursor is closed";
  (* end-of-scan detection is free; only delivered records are metered *)
  match c.pending with
  | `List None ->
    c.current <- None;
    None
  | `List (Some n) ->
    Meter.tick_c c_fetch_cursor;
    c.pending <- `List n.next;
    c.current <- Some n.record;
    Some n.record
  | `Recs [] ->
    c.current <- None;
    None
  | `Recs (r :: rest) ->
    Meter.tick_c c_fetch_cursor;
    c.pending <- `Recs rest;
    c.current <- Some r;
    Some r

let cursor_update c values =
  if c.closed then invalid_arg "Table.cursor_update: cursor is closed";
  match c.current with
  | None -> invalid_arg "Table.cursor_update: no current record"
  | Some r ->
    Meter.tick_c c_update_cursor;
    let r' = update c.table r values in
    c.current <- Some r';
    r'

let cursor_delete c =
  if c.closed then invalid_arg "Table.cursor_delete: cursor is closed";
  match c.current with
  | None -> invalid_arg "Table.cursor_delete: no current record"
  | Some r ->
    Meter.tick_c c_delete_cursor;
    delete c.table r;
    c.current <- None

let close_cursor c =
  if not c.closed then begin
    Meter.tick_c c_close_cursor;
    c.closed <- true;
    c.current <- None;
    c.pending <- `Recs []
  end

let clear t =
  let recs = ref [] in
  iter t (fun r -> recs := r :: !recs);
  List.iter (fun r -> delete t r) !recs

let to_rows t =
  let acc = ref [] in
  iter t (fun r -> acc := Array.copy r.Record.values :: !acc);
  List.rev !acc
