(** Versioned standard-table records (paper §6.1).

    STRIP never changes a standard record in place: an [UPDATE] creates a new
    record and unlinks the old one, which is "kept in the system until the
    last bound table that references it is retired, as determined by a
    reference counting scheme".  A record's [values] are therefore immutable;
    mutability lives in its bookkeeping fields.

    The global [reclaimed] counter lets tests observe that retired records
    are reclaimed exactly when their last pin is dropped. *)

type t = private {
  rid : int;  (** unique id, assigned at creation, database-wide *)
  base : int;
      (** stable logical-row identity, preserved across update versions —
          the resource record locks name, so two transactions writing
          successive versions of the same row really conflict *)
  values : Value.t array;  (** immutable attribute values *)
  mutable refcount : int;  (** pins held by temporary tables *)
  mutable live : bool;  (** still linked into its standard table? *)
}

val create : Value.t array -> t
(** Fresh live record with refcount 0; [base] equals [rid]. *)

val create_version : base:int -> Value.t array -> t
(** Fresh record standing for a new version of the logical row [base]
    (used by [Table.update], which carries the old record's [base]
    through). *)

val dummy : t
(** Inert filler record for preallocated arenas: no rid is consumed, it is
    never live, and it must never be pinned, unpinned, or read. *)

val pin : t -> unit
(** Take a reference (called when a temporary tuple stores a pointer). *)

val unpin : t -> unit
(** Drop a reference.  When the count reaches zero on a record that is no
    longer live, the record counts as reclaimed.
    @raise Invalid_argument if the count is already zero. *)

val retire : t -> unit
(** Mark the record as unlinked from its table.  If nothing pins it, it is
    reclaimed immediately. *)

val value : t -> int -> Value.t
(** [value r i] is attribute [i].  @raise Invalid_argument if out of range. *)

val reclaimed_count : unit -> int
(** Number of records reclaimed since the last {!reset_reclaimed}. *)

val reset_reclaimed : unit -> unit

val pp : Format.formatter -> t -> unit
