(** Operation metering.

    Every layer of the engine ticks named counters as it performs primitive
    operations (lock acquisitions, cursor fetches, index probes, Black-Scholes
    evaluations, ...).  The discrete-event simulator converts counter deltas
    into simulated CPU time through {!Strip_sim.Cost_model}, and the benchmark
    harness reports them directly.

    Counters are global and intentionally cheap: hot paths resolve a name to
    a {!cell} once and then tick by array index — no string hashing per
    operation.  They carry no semantics of their own — the set of counter
    names in use is documented by {!Strip_sim.Cost_model.default}. *)

type snapshot
(** Immutable snapshot of all counters at a point in time. *)

type cell
(** Pre-resolved handle to a named counter; ticking through a cell skips the
    per-operation name lookup. *)

val counter : string -> cell
(** Resolve (registering if needed) the cell for counter [name]. *)

val tick_c : cell -> unit
(** Increment a pre-resolved counter by one; free when {!enabled} is off. *)

val tick_cn : cell -> int -> unit
(** Increment a pre-resolved counter by [n] ([n >= 0]). *)

val tick : string -> unit
(** [tick name] increments counter [name] by one. *)

val tick_n : string -> int -> unit
(** [tick_n name n] increments counter [name] by [n] ([n >= 0]). *)

val get : string -> int
(** Current value of a counter (0 if never ticked). *)

val reset : unit -> unit
(** Reset every counter to zero. *)

val snapshot : unit -> snapshot
(** Capture the current value of every counter. *)

val diff : snapshot -> snapshot -> (string * int) list
(** [diff before after] lists counters whose value changed between the two
    snapshots, with the (positive) delta, sorted by counter name. *)

val charge_diff : snapshot -> snapshot -> rate:(cell -> float) -> float
(** [charge_diff before after ~rate] is
    [List.fold_left (fun a (n, d) -> a +. rate n *. float d) 0.0 (diff before after)]
    with [rate] keyed by cell instead of name, computed without building the
    intermediate list.  The additions happen in the same (name-sorted) order
    as the fold, so the result is bit-identical — this sits on the engine's
    per-task accounting path. *)

val name_of_cell : cell -> string
(** The name a cell was registered under. *)

val cell_id : cell -> int
(** Dense small-integer id of a cell (registration order), for callers that
    memoize per-cell data in arrays. *)

val fold : (string -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over all live counters. *)

val enabled : bool ref
(** Master switch; metering is on by default.  Turning it off makes [tick]
    a no-op, which the micro-benchmarks use to measure raw engine speed. *)
