(** Operation metering.

    Every layer of the engine ticks named counters as it performs primitive
    operations (lock acquisitions, cursor fetches, index probes, Black-Scholes
    evaluations, ...).  The discrete-event simulator converts counter deltas
    into simulated CPU time through {!Strip_sim.Cost_model}, and the benchmark
    harness reports them directly.

    Counters are global and intentionally cheap: one hashtable increment per
    tick.  They carry no semantics of their own — the set of counter names in
    use is documented by {!Strip_sim.Cost_model.default}. *)

type snapshot
(** Immutable snapshot of all counters at a point in time. *)

val tick : string -> unit
(** [tick name] increments counter [name] by one. *)

val tick_n : string -> int -> unit
(** [tick_n name n] increments counter [name] by [n] ([n >= 0]). *)

val get : string -> int
(** Current value of a counter (0 if never ticked). *)

val reset : unit -> unit
(** Reset every counter to zero. *)

val snapshot : unit -> snapshot
(** Capture the current value of every counter. *)

val diff : snapshot -> snapshot -> (string * int) list
(** [diff before after] lists counters whose value changed between the two
    snapshots, with the (positive) delta, sorted by counter name. *)

val fold : (string -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over all live counters. *)

val enabled : bool ref
(** Master switch; metering is on by default.  Turning it off makes [tick]
    a no-op, which the micro-benchmarks use to measure raw engine speed. *)
