type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type select_item = {
  expr : Expr.t;
  alias : string option;
}

type plan =
  | Scan of { rel : string; alias : string option }
  | Filter of Expr.t * plan
  | Join of plan * plan * Expr.t option
  | Project of select_item list * plan
  | Group of {
      keys : select_item list;
      aggs : (agg * string) list;
      having : Expr.t option;
      input : plan;
    }
  | Order of (Expr.t * order) list * plan
  | Limit of int * plan
  | Distinct of plan

let item ?alias expr = { expr; alias }

exception Plan_error of string

let plan_error fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

(* Column provenance within an executing result: a verbatim copy of a
   standard-record attribute ([Slot]) or a computed value ([Mat]). *)
type colprov = Slot of int * int | Mat

type xdesc = {
  schema : Schema.t;
  nslots : int;
  colprov : colprov array;
}

type xrow = {
  vals : Value.t array;
  srcs : Record.t array;
}

type result = {
  desc : xdesc;
  xrows : xrow list;  (* result order *)
}

(* ------------------------------------------------------------------ *)
(* Descriptor computation (shared by [run] and [schema_of]).           *)

let item_name i (it : select_item) =
  match it.alias with
  | Some a -> a
  | None -> (
    match it.expr with
    | Expr.Col (_, n) -> n
    | _ -> Printf.sprintf "col%d" i)

let item_type schema (it : select_item) =
  match Expr.infer_type schema it.expr with
  | Some ty -> ty
  | None -> Value.TFloat  (* unregistered functions default to float *)

let agg_type schema = function
  | Count_star | Count _ -> Value.TInt
  | Avg _ -> Value.TFloat
  | Sum e | Min e | Max e -> (
    match Expr.infer_type schema e with Some ty -> ty | None -> Value.TFloat)

let scan_desc relation alias =
  let base = Catalog.relation_schema relation in
  let name = Option.value alias ~default:(Catalog.relation_name relation) in
  let schema = Schema.requalify name base in
  match relation with
  | Catalog.Std _ ->
    {
      schema;
      nslots = 1;
      colprov = Array.init (Schema.arity schema) (fun i -> Slot (0, i));
    }
  | Catalog.Tmp tmp ->
    let prov = Temp_table.static_map tmp in
    {
      schema;
      nslots = Temp_table.slots tmp;
      colprov =
        Array.map
          (function
            | Temp_table.From_record (s, o) -> Slot (s, o)
            | Temp_table.Computed _ -> Mat)
          prov;
    }

let join_desc dl dr =
  let schema =
    try Schema.append dl.schema dr.schema
    with Invalid_argument msg -> plan_error "join: %s" msg
  in
  let shift = function Slot (s, o) -> Slot (s + dl.nslots, o) | Mat -> Mat in
  {
    schema;
    nslots = dl.nslots + dr.nslots;
    colprov = Array.append dl.colprov (Array.map shift dr.colprov);
  }

let project_desc d items =
  let cols =
    List.mapi
      (fun i it -> Schema.column (item_name i it) (item_type d.schema it))
      items
  in
  let schema =
    try Schema.make cols
    with Invalid_argument msg ->
      plan_error "projection has duplicate output columns (%s); use AS aliases"
        msg
  in
  let colprov =
    items
    |> List.map (fun it ->
           match Expr.resolve d.schema it.expr with
           | Expr.Bound i -> d.colprov.(i)
           | _ -> Mat
           | exception Expr.Unknown_column c ->
             plan_error "unknown column %s" c)
    |> Array.of_list
  in
  { schema; nslots = d.nslots; colprov }

let group_desc d keys aggs =
  let key_cols =
    List.mapi
      (fun i it -> Schema.column (item_name i it) (item_type d.schema it))
      keys
  in
  let agg_cols =
    List.map (fun (a, name) -> Schema.column name (agg_type d.schema a)) aggs
  in
  let schema =
    try Schema.make (key_cols @ agg_cols)
    with Invalid_argument msg -> plan_error "group by: %s" msg
  in
  {
    schema;
    nslots = 0;
    colprov = Array.make (Schema.arity schema) Mat;
  }

let rec desc_of cat ~env = function
  | Scan { rel; alias } -> (
    match Catalog.resolve cat ~env rel with
    | Some relation -> scan_desc relation alias
    | None -> plan_error "unknown relation %s" rel)
  | Filter (_, p) -> desc_of cat ~env p
  | Join (l, r, _) -> join_desc (desc_of cat ~env l) (desc_of cat ~env r)
  | Project (items, p) -> project_desc (desc_of cat ~env p) items
  | Group { keys; aggs; input; _ } -> group_desc (desc_of cat ~env input) keys aggs
  | Order (_, p) -> desc_of cat ~env p
  | Limit (_, p) -> desc_of cat ~env p
  | Distinct p -> desc_of cat ~env p

(* ------------------------------------------------------------------ *)
(* Predicate analysis for join strategies.                              *)

let rec conjuncts = function
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Split a resolved join predicate into equi pairs (left position, right
   position relative to the right input) and residual conjuncts. *)
let split_equi ~left_arity pred =
  let equi = ref [] and residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | Expr.Binop (Expr.Eq, Expr.Bound i, Expr.Bound j)
        when i < left_arity && j >= left_arity ->
        equi := (i, j - left_arity) :: !equi
      | Expr.Binop (Expr.Eq, Expr.Bound j, Expr.Bound i)
        when i < left_arity && j >= left_arity ->
        equi := (i, j - left_arity) :: !equi
      | c -> residual := c :: !residual)
    (conjuncts pred);
  (List.rev !equi, List.rev !residual)

module VKey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash k = Hashtbl.hash (List.map Value.hash k)
end

module VTbl = Hashtbl.Make (VKey)

(* ------------------------------------------------------------------ *)
(* Execution.                                                           *)

let scan_rows relation desc =
  match relation with
  | Catalog.Std tb ->
    let acc = ref [] in
    Table.iter tb (fun r ->
        Meter.tick "seq_row";
        acc := { vals = r.Record.values; srcs = [| r |] } :: !acc);
    ignore desc;
    List.rev !acc
  | Catalog.Tmp tmp ->
    let nslots = Temp_table.slots tmp in
    let acc = ref [] in
    Temp_table.iter tmp (fun row ->
        Meter.tick "seq_row";
        acc :=
          {
            vals = Temp_table.row_values tmp row;
            srcs = Array.init nslots (fun s -> Temp_table.row_source row s);
          }
          :: !acc);
    List.rev !acc

let combine_rows lrow rrow =
  Meter.tick "join_row";
  {
    vals = Array.append lrow.vals rrow.vals;
    srcs = Array.append lrow.srcs rrow.srcs;
  }

let rec exec cat ~env plan : result =
  match plan with
  | Scan { rel; alias } -> (
    match Catalog.resolve cat ~env rel with
    | None -> plan_error "unknown relation %s" rel
    | Some relation ->
      let desc = scan_desc relation alias in
      { desc; xrows = scan_rows relation desc })
  | Filter (pred, p) ->
    let r = exec cat ~env p in
    let pred =
      try Expr.resolve r.desc.schema pred
      with Expr.Unknown_column c -> plan_error "unknown column %s" c
    in
    { r with xrows = List.filter (fun x -> Expr.eval_pred pred x.vals) r.xrows }
  | Join (lp, rp, pred) -> exec_join cat ~env lp rp pred
  | Project (items, p) ->
    let r = exec cat ~env p in
    let desc = project_desc r.desc items in
    let resolved =
      List.map
        (fun it ->
          try Expr.resolve r.desc.schema it.expr
          with Expr.Unknown_column c -> plan_error "unknown column %s" c)
        items
    in
    let project x =
      Meter.tick "row_construct";
      {
        vals = Array.of_list (List.map (fun e -> Expr.eval e x.vals) resolved);
        srcs = x.srcs;
      }
    in
    { desc; xrows = List.map project r.xrows }
  | Group { keys; aggs; having; input } -> exec_group cat ~env keys aggs having input
  | Order (specs, p) ->
    let r = exec cat ~env p in
    let specs =
      List.map
        (fun (e, o) ->
          ( (try Expr.resolve r.desc.schema e
             with Expr.Unknown_column c -> plan_error "unknown column %s" c),
            o ))
        specs
    in
    let keyed =
      List.map
        (fun x ->
          Meter.tick "sort_row";
          (List.map (fun (e, o) -> (Expr.eval e x.vals, o)) specs, x))
        r.xrows
    in
    let compare_keys (ka, _) (kb, _) =
      let rec loop a b =
        match (a, b) with
        | [], [] -> 0
        | (va, o) :: a', (vb, _) :: b' ->
          let c = Value.compare va vb in
          let c = match o with Asc -> c | Desc -> -c in
          if c <> 0 then c else loop a' b'
        | _ -> 0
      in
      loop ka kb
    in
    { r with xrows = List.map snd (List.stable_sort compare_keys keyed) }
  | Limit (n, p) ->
    let r = exec cat ~env p in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    { r with xrows = take n r.xrows }
  | Distinct p ->
    let r = exec cat ~env p in
    let seen = VTbl.create 64 in
    let xrows =
      List.filter
        (fun x ->
          Meter.tick "hash_probe";
          let key = Array.to_list x.vals in
          if VTbl.mem seen key then false
          else begin
            VTbl.add seen key ();
            true
          end)
        r.xrows
    in
    { r with xrows }

and exec_join cat ~env lp rp pred =
  let lres = exec cat ~env lp in
  let ldesc = lres.desc in
  let rdesc = desc_of cat ~env rp in
  let desc = join_desc ldesc rdesc in
  let la = Schema.arity ldesc.schema in
  let resolved_pred =
    Option.map
      (fun p ->
        try Expr.resolve desc.schema p
        with Expr.Unknown_column c -> plan_error "unknown column %s" c)
      pred
  in
  let equi, residual =
    match resolved_pred with
    | None -> ([], [])
    | Some p -> split_equi ~left_arity:la p
  in
  let residual_pred =
    match residual with
    | [] -> None
    | c :: cs ->
      Some (List.fold_left (fun acc c -> Expr.Binop (Expr.And, acc, c)) c cs)
  in
  let keep combined =
    match residual_pred with
    | None -> true
    | Some p -> Expr.eval_pred p combined.vals
  in
  (* Index nested loop: right side is a standard-table scan with an index
     exactly covering the right equi columns. *)
  let index_path =
    match (rp, equi) with
    | Scan { rel; alias = _ }, _ :: _ -> (
      match Catalog.resolve cat ~env rel with
      | Some (Catalog.Std tb) -> (
        let rcols =
          List.map
            (fun (_, j) -> (Schema.col (Table.schema tb) j).Schema.cname)
            equi
        in
        match Table.index_on tb rcols with
        | Some idx -> Some (tb, idx)
        | None -> None)
      | _ -> None)
    | _ -> None
  in
  let xrows =
    match index_path with
    | Some (_tb, idx) ->
      List.concat_map
        (fun lrow ->
          let key = List.map (fun (i, _) -> lrow.vals.(i)) equi in
          Index.lookup idx key
          |> List.filter_map (fun (rec_ : Record.t) ->
                 let rrow = { vals = rec_.Record.values; srcs = [| rec_ |] } in
                 let combined = combine_rows lrow rrow in
                 if keep combined then Some combined else None))
        lres.xrows
    | None -> (
      let rres = exec cat ~env rp in
      match equi with
      | [] ->
        (* Nested loop over the cross product. *)
        List.concat_map
          (fun lrow ->
            List.filter_map
              (fun rrow ->
                let combined = combine_rows lrow rrow in
                if keep combined then Some combined else None)
              rres.xrows)
          lres.xrows
      | _ ->
        (* Hash join. *)
        let tbl = VTbl.create 256 in
        List.iter
          (fun rrow ->
            Meter.tick "hash_build";
            let key = List.map (fun (_, j) -> rrow.vals.(j)) equi in
            let cur = match VTbl.find_opt tbl key with Some l -> l | None -> [] in
            VTbl.replace tbl key (rrow :: cur))
          rres.xrows;
        List.concat_map
          (fun lrow ->
            Meter.tick "hash_probe";
            let key = List.map (fun (i, _) -> lrow.vals.(i)) equi in
            match VTbl.find_opt tbl key with
            | None -> []
            | Some rrows ->
              List.rev rrows
              |> List.filter_map (fun rrow ->
                     let combined = combine_rows lrow rrow in
                     if keep combined then Some combined else None))
          lres.xrows)
  in
  { desc; xrows }

and exec_group cat ~env keys aggs having input =
  let r = exec cat ~env input in
  let in_schema = r.desc.schema in
  let desc = group_desc r.desc keys aggs in
  let resolve e =
    try Expr.resolve in_schema e
    with Expr.Unknown_column c -> plan_error "unknown column %s" c
  in
  let key_exprs = List.map (fun it -> resolve it.expr) keys in
  let agg_specs =
    List.map
      (fun (a, _) ->
        match a with
        | Count_star -> (`Count_star, Expr.Const Value.Null)
        | Count e -> (`Count, resolve e)
        | Sum e -> (`Sum, resolve e)
        | Avg e -> (`Avg, resolve e)
        | Min e -> (`Min, resolve e)
        | Max e -> (`Max, resolve e))
      aggs
  in
  (* Accumulator per aggregate: (count, sum as float, current value). *)
  let module Acc = struct
    type t = {
      mutable n : int;
      mutable fsum : float;
      mutable v : Value.t;  (* running sum / min / max *)
    }

    let make () = { n = 0; fsum = 0.0; v = Value.Null }
  end in
  let groups = VTbl.create 64 in
  let group_order = ref [] in
  List.iter
    (fun x ->
      Meter.tick "agg_row";
      let key = List.map (fun e -> Expr.eval e x.vals) key_exprs in
      let accs =
        match VTbl.find_opt groups key with
        | Some a -> a
        | None ->
          Meter.tick "group_init";
          let a = Array.init (List.length agg_specs) (fun _ -> Acc.make ()) in
          VTbl.add groups key a;
          group_order := key :: !group_order;
          a
      in
      List.iteri
        (fun i (kind, e) ->
          let acc = accs.(i) in
          match kind with
          | `Count_star -> acc.Acc.n <- acc.Acc.n + 1
          | `Count ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then acc.Acc.n <- acc.Acc.n + 1
          | `Sum ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then begin
              acc.Acc.n <- acc.Acc.n + 1;
              acc.Acc.v <-
                (if Value.is_null acc.Acc.v then v else Value.add acc.Acc.v v)
            end
          | `Avg ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then begin
              acc.Acc.n <- acc.Acc.n + 1;
              acc.Acc.fsum <- acc.Acc.fsum +. Value.to_float v
            end
          | `Min ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then
              if Value.is_null acc.Acc.v || Value.compare v acc.Acc.v < 0 then
                acc.Acc.v <- v
          | `Max ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then
              if Value.is_null acc.Acc.v || Value.compare v acc.Acc.v > 0 then
                acc.Acc.v <- v)
        agg_specs)
    r.xrows;
  (* A grand aggregate (no keys) over an empty input still yields one row. *)
  if key_exprs = [] && VTbl.length groups = 0 then begin
    VTbl.add groups [] (Array.init (List.length agg_specs) (fun _ -> Acc.make ()));
    group_order := [ [] ]
  end;
  let finish key accs =
    let agg_vals =
      List.mapi
        (fun i (kind, _) ->
          let acc = accs.(i) in
          match kind with
          | `Count_star | `Count -> Value.Int acc.Acc.n
          | `Sum | `Min | `Max -> acc.Acc.v
          | `Avg ->
            if acc.Acc.n = 0 then Value.Null
            else Value.Float (acc.Acc.fsum /. float_of_int acc.Acc.n))
        agg_specs
    in
    Meter.tick "row_construct";
    { vals = Array.of_list (key @ agg_vals); srcs = [||] }
  in
  let xrows =
    List.rev_map (fun key -> finish key (VTbl.find groups key)) !group_order
  in
  let xrows =
    match having with
    | None -> xrows
    | Some h ->
      let h =
        try Expr.resolve desc.schema h
        with Expr.Unknown_column c -> plan_error "unknown column %s" c
      in
      List.filter (fun x -> Expr.eval_pred h x.vals) xrows
  in
  { desc; xrows }

let run cat ~env plan = exec cat ~env plan

let schema_of cat ~env plan = (desc_of cat ~env plan).schema

let result_schema r = r.desc.schema
let row_count r = List.length r.xrows
let rows r = List.map (fun x -> Array.copy x.vals) r.xrows

let partition r ~cols =
  let positions =
    List.map
      (fun c ->
        match Schema.find r.desc.schema c with
        | Some i -> i
        | None -> plan_error "partition: unknown column %s" c
        | exception Schema.Ambiguous c -> plan_error "partition: ambiguous column %s" c)
      cols
  in
  let tbl = VTbl.create 64 in
  let order = ref [] in
  List.iter
    (fun x ->
      Meter.tick "partition_row";
      let key = List.map (fun i -> x.vals.(i)) positions in
      match VTbl.find_opt tbl key with
      | Some l -> l := x :: !l
      | None ->
        VTbl.add tbl key (ref [ x ]);
        order := key :: !order)
    r.xrows;
  List.rev_map
    (fun key ->
      let rows = List.rev !(VTbl.find tbl key) in
      (key, { desc = r.desc; xrows = rows }))
    !order

(* ------------------------------------------------------------------ *)
(* Binding results as temporary tables (§6.1).                          *)

let bind ?(overrides = []) ~name r =
  let schema = Schema.unqualify r.desc.schema in
  let arity = Schema.arity schema in
  let override_for col =
    List.assoc_opt (Schema.col schema col).Schema.cname overrides
  in
  (* Keep only pointer slots actually referenced by a non-overridden output
     column (the §6.1 optimization; STRIP v2.0's footnote says it stored all
     slots — we implement the described design). *)
  let used = Array.make (max r.desc.nslots 1) false in
  Array.iteri
    (fun col prov ->
      match (prov, override_for col) with
      | Slot (s, _), None -> used.(s) <- true
      | _ -> ())
    r.desc.colprov;
  let slot_map = Array.make (max r.desc.nslots 1) (-1) in
  let nslots = ref 0 in
  Array.iteri
    (fun s u ->
      if u then begin
        slot_map.(s) <- !nslots;
        incr nslots
      end)
    used;
  let nmat = ref 0 in
  let prov =
    Array.init arity (fun col ->
        match (r.desc.colprov.(col), override_for col) with
        | Slot (s, o), None -> Temp_table.From_record (slot_map.(s), o)
        | _ ->
          let m = !nmat in
          incr nmat;
          Temp_table.Computed m)
  in
  let tmp = Temp_table.create ~name ~schema ~nslots:!nslots ~prov in
  List.iter
    (fun x ->
      let srcs =
        Array.of_list
          (List.filteri
             (fun s _ -> s < r.desc.nslots && used.(s))
             (Array.to_list x.srcs))
      in
      let mats = Array.make !nmat Value.Null in
      Array.iteri
        (fun col p ->
          match p with
          | Temp_table.Computed m -> (
            match override_for col with
            | Some v -> mats.(m) <- v
            | None -> mats.(m) <- x.vals.(col))
          | Temp_table.From_record _ -> ())
        prov;
      Temp_table.append tmp ~srcs ~mats)
    r.xrows;
  tmp

(* ------------------------------------------------------------------ *)

let rec explain_at depth plan =
  let pad = String.make (depth * 2) ' ' in
  let line = Printf.sprintf in
  match plan with
  | Scan { rel; alias } ->
    line "%sscan %s%s" pad rel
      (match alias with Some a when a <> rel -> " as " ^ a | _ -> "")
  | Filter (p, q) ->
    line "%sfilter %s\n%s" pad
      (Format.asprintf "%a" Expr.pp p)
      (explain_at (depth + 1) q)
  | Join (l, r, p) ->
    line "%sjoin%s\n%s\n%s" pad
      (match p with
      | Some p -> " on " ^ Format.asprintf "%a" Expr.pp p
      | None -> " (cross)")
      (explain_at (depth + 1) l)
      (explain_at (depth + 1) r)
  | Project (items, q) ->
    line "%sproject %s\n%s" pad
      (String.concat ", "
         (List.mapi
            (fun i it ->
              Format.asprintf "%a as %s" Expr.pp it.expr (item_name i it))
            items))
      (explain_at (depth + 1) q)
  | Group { keys; aggs; input; _ } ->
    line "%sgroup by %s aggs %s\n%s" pad
      (String.concat ", "
         (List.mapi
            (fun i it -> item_name i it)
            keys))
      (String.concat ", " (List.map snd aggs))
      (explain_at (depth + 1) input)
  | Order (specs, q) ->
    line "%sorder by %d key(s)\n%s" pad (List.length specs)
      (explain_at (depth + 1) q)
  | Limit (n, q) -> line "%slimit %d\n%s" pad n (explain_at (depth + 1) q)
  | Distinct q -> line "%sdistinct\n%s" pad (explain_at (depth + 1) q)

let explain plan = explain_at 0 plan
