let c_agg_row = Meter.counter "agg_row"
let c_group_init = Meter.counter "group_init"
let c_hash_build = Meter.counter "hash_build"
let c_hash_probe = Meter.counter "hash_probe"
let c_index_probe = Meter.counter "index_probe"
let c_join_row = Meter.counter "join_row"
let c_merge_step = Meter.counter "merge_step"
let c_partition_row = Meter.counter "partition_row"
let c_row_construct = Meter.counter "row_construct"
let c_seq_row = Meter.counter "seq_row"
let c_sort_row = Meter.counter "sort_row"

type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type select_item = {
  expr : Expr.t;
  alias : string option;
}

type plan =
  | Scan of { rel : string; alias : string option }
  | Filter of Expr.t * plan
  | Join of plan * plan * Expr.t option
  | Project of select_item list * plan
  | Group of {
      keys : select_item list;
      aggs : (agg * string) list;
      having : Expr.t option;
      input : plan;
    }
  | Order of (Expr.t * order) list * plan
  | Limit of int * plan
  | Distinct of plan

let item ?alias expr = { expr; alias }

exception Plan_error of string

let plan_error fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

(* Column provenance within an executing result: a verbatim copy of a
   standard-record attribute ([Slot]) or a computed value ([Mat]). *)
type colprov = Slot of int * int | Mat

type xdesc = {
  schema : Schema.t;
  nslots : int;
  colprov : colprov array;
}

type xrow = {
  vals : Value.t array;
  srcs : Record.t array;
}

type result = {
  desc : xdesc;
  xrows : xrow list;  (* result order *)
}

(* ------------------------------------------------------------------ *)
(* Descriptor computation (shared by [run] and [schema_of]).           *)

let item_name i (it : select_item) =
  match it.alias with
  | Some a -> a
  | None -> (
    match it.expr with
    | Expr.Col (_, n) -> n
    | _ -> Printf.sprintf "col%d" i)

let item_type schema (it : select_item) =
  match Expr.infer_type schema it.expr with
  | Some ty -> ty
  | None -> Value.TFloat  (* unregistered functions default to float *)

let agg_type schema = function
  | Count_star | Count _ -> Value.TInt
  | Avg _ -> Value.TFloat
  | Sum e | Min e | Max e -> (
    match Expr.infer_type schema e with Some ty -> ty | None -> Value.TFloat)

let scan_desc relation alias =
  let base = Catalog.relation_schema relation in
  let name = Option.value alias ~default:(Catalog.relation_name relation) in
  let schema = Schema.requalify name base in
  match relation with
  | Catalog.Std _ ->
    {
      schema;
      nslots = 1;
      colprov = Array.init (Schema.arity schema) (fun i -> Slot (0, i));
    }
  | Catalog.Tmp tmp ->
    let prov = Temp_table.static_map tmp in
    {
      schema;
      nslots = Temp_table.slots tmp;
      colprov =
        Array.map
          (function
            | Temp_table.From_record (s, o) -> Slot (s, o)
            | Temp_table.Computed _ -> Mat)
          prov;
    }

let join_desc dl dr =
  let schema =
    try Schema.append dl.schema dr.schema
    with Invalid_argument msg -> plan_error "join: %s" msg
  in
  let shift = function Slot (s, o) -> Slot (s + dl.nslots, o) | Mat -> Mat in
  {
    schema;
    nslots = dl.nslots + dr.nslots;
    colprov = Array.append dl.colprov (Array.map shift dr.colprov);
  }

let project_desc d items =
  let cols =
    List.mapi
      (fun i it -> Schema.column (item_name i it) (item_type d.schema it))
      items
  in
  let schema =
    try Schema.make cols
    with Invalid_argument msg ->
      plan_error "projection has duplicate output columns (%s); use AS aliases"
        msg
  in
  let colprov =
    items
    |> List.map (fun it ->
           match Expr.resolve d.schema it.expr with
           | Expr.Bound i -> d.colprov.(i)
           | _ -> Mat
           | exception Expr.Unknown_column c ->
             plan_error "unknown column %s" c)
    |> Array.of_list
  in
  { schema; nslots = d.nslots; colprov }

let group_desc d keys aggs =
  let key_cols =
    List.mapi
      (fun i it -> Schema.column (item_name i it) (item_type d.schema it))
      keys
  in
  let agg_cols =
    List.map (fun (a, name) -> Schema.column name (agg_type d.schema a)) aggs
  in
  let schema =
    try Schema.make (key_cols @ agg_cols)
    with Invalid_argument msg -> plan_error "group by: %s" msg
  in
  {
    schema;
    nslots = 0;
    colprov = Array.make (Schema.arity schema) Mat;
  }

let rec desc_of cat ~env = function
  | Scan { rel; alias } -> (
    match Catalog.resolve cat ~env rel with
    | Some relation -> scan_desc relation alias
    | None -> plan_error "unknown relation %s" rel)
  | Filter (_, p) -> desc_of cat ~env p
  | Join (l, r, _) -> join_desc (desc_of cat ~env l) (desc_of cat ~env r)
  | Project (items, p) -> project_desc (desc_of cat ~env p) items
  | Group { keys; aggs; input; _ } -> group_desc (desc_of cat ~env input) keys aggs
  | Order (_, p) -> desc_of cat ~env p
  | Limit (_, p) -> desc_of cat ~env p
  | Distinct p -> desc_of cat ~env p

(* ------------------------------------------------------------------ *)
(* Predicate analysis for join strategies.                              *)

let rec conjuncts = function
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Split a resolved join predicate into equi pairs (left position, right
   position relative to the right input) and residual conjuncts. *)
let split_equi ~left_arity pred =
  let equi = ref [] and residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | Expr.Binop (Expr.Eq, Expr.Bound i, Expr.Bound j)
        when i < left_arity && j >= left_arity ->
        equi := (i, j - left_arity) :: !equi
      | Expr.Binop (Expr.Eq, Expr.Bound j, Expr.Bound i)
        when i < left_arity && j >= left_arity ->
        equi := (i, j - left_arity) :: !equi
      | c -> residual := c :: !residual)
    (conjuncts pred);
  (List.rev !equi, List.rev !residual)

module VKey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash k = Hashtbl.hash (List.map Value.hash k)
end

module VTbl = Hashtbl.Make (VKey)

(* ------------------------------------------------------------------ *)
(* Join strategy selection.

   A pure function of the logical plan shape and the current catalog, so
   that [explain], the compiled executor and any cached decision always
   agree.  The choices, in priority order:

   - merge join: both inputs are bare standard-table scans whose equi
     columns are covered by [Ordered] indexes on both sides — stream the
     two red-black trees in key order (a two-way leapfrog);
   - index join: the right input is a bare standard-table scan with any
     index exactly covering its equi columns — probe per left row;
   - hash join: any other equi join;
   - nested loop: no equi conjunct (cross products and pure theta joins). *)

type strategy_pick =
  | PMerge of (Table.t * Index.t) * (Table.t * Index.t)
  | PIndex of Table.t * Index.t
  | PHash
  | PNested

let equi_cols tb ~side equi =
  List.map
    (fun (i, j) ->
      (Schema.col (Table.schema tb) (match side with `L -> i | `R -> j))
        .Schema.cname)
    equi

let pick_strategy ~ltb ~rtb equi =
  match (equi, rtb) with
  | [], _ -> PNested
  | _, None -> PHash
  | _, Some rtb -> (
    match Table.index_on rtb (equi_cols rtb ~side:`R equi) with
    | None -> PHash
    | Some ridx -> (
      let lordered =
        match ltb with
        | None -> None
        | Some ltb -> (
          match Table.index_on ltb (equi_cols ltb ~side:`L equi) with
          | Some lidx when Index.kind lidx = Index.Ordered -> Some (ltb, lidx)
          | _ -> None)
      in
      match lordered with
      | Some (ltb, lidx) when Index.kind ridx = Index.Ordered ->
        PMerge ((ltb, lidx), (rtb, ridx))
      | _ -> PIndex (rtb, ridx)))

(* ------------------------------------------------------------------ *)
(* Compiled plans.

   [run] compiles each plan once into a mirror tree of nodes carrying
   per-node memos: the computed descriptor, the predicates and select items
   resolved against it, and the chosen join strategy.  A memo is validated
   by physical identity on every execution — a scan is still valid when the
   resolved relation carries the same schema and static map as before (so
   transition tables, whose layouts are shared per base table, revalidate
   in O(1)), and a join is still valid while its input descriptors are the
   memoized ones and no index has been added to or dropped from the scanned
   tables ({!Table.index_gen}).  On any mismatch the node silently
   recompiles, which makes catalog rebuilds (crash recovery, failover)
   transparent.  Only resolution work is cached; every execution re-runs
   the physical operators, so meter ticks are unchanged. *)

type scan_memo = {
  sm_std : Table.t option;  (* [Some tb] iff the relation is standard *)
  sm_schema : Schema.t;  (* resolved relation's schema (identity key) *)
  sm_name : string;
  sm_prov : Temp_table.provenance array;  (* [||] for standard tables *)
  sm_desc : xdesc;
}

type jstrategy =
  | JMerge of (Table.t * Index.t) * (Table.t * Index.t)
  | JIndex of Table.t * Index.t
  | JHash
  | JNested

type join_memo = {
  jm_ldesc : xdesc;  (* identity keys: the input descriptors *)
  jm_rdesc : xdesc;
  jm_desc : xdesc;
  jm_equi : (int * int) list;
  jm_residual : Expr.t option;
  jm_strategy : jstrategy;
  jm_deps : (Table.t * int) list;  (* index generations the choice assumed *)
}

type agg_kind = [ `Count_star | `Count | `Sum | `Avg | `Min | `Max ]

type group_memo = {
  gm_in : xdesc;
  gm_desc : xdesc;
  gm_keys : Expr.t list;
  gm_aggs : (agg_kind * Expr.t) list;
  gm_having : Expr.t option;
}

type cnode =
  | CScan of cscan
  | CFilter of cfilter
  | CJoin of cjoin
  | CProject of cproject
  | CGroup of cgroup
  | COrder of corder
  | CLimit of int * cnode
  | CDistinct of cnode

and cscan = { rel : string; alias : string option; mutable sm : scan_memo option }
and cfilter = { fsub : cnode; fpred : Expr.t; mutable fm : (xdesc * Expr.t) option }
and cjoin = { jl : cnode; jr : cnode; jpred : Expr.t option; mutable jm : join_memo option }

and cproject = {
  psub : cnode;
  pitems : select_item list;
  mutable pm : (xdesc * xdesc * Expr.t list) option;
}

and cgroup = {
  gsub : cnode;
  gkeys : select_item list;
  gaggs : (agg * string) list;
  ghaving : Expr.t option;
  mutable gm : group_memo option;
}

and corder = {
  osub : cnode;
  ospecs : (Expr.t * order) list;
  mutable om : (xdesc * (Expr.t * order) list) option;
}

let rec compile_node = function
  | Scan { rel; alias } -> CScan { rel; alias; sm = None }
  | Filter (pred, p) -> CFilter { fsub = compile_node p; fpred = pred; fm = None }
  | Join (l, r, pred) ->
    CJoin { jl = compile_node l; jr = compile_node r; jpred = pred; jm = None }
  | Project (items, p) -> CProject { psub = compile_node p; pitems = items; pm = None }
  | Group { keys; aggs; having; input } ->
    CGroup
      { gsub = compile_node input; gkeys = keys; gaggs = aggs; ghaving = having; gm = None }
  | Order (specs, p) -> COrder { osub = compile_node p; ospecs = specs; om = None }
  | Limit (n, p) -> CLimit (n, compile_node p)
  | Distinct p -> CDistinct (compile_node p)

let resolve_in schema e =
  try Expr.resolve schema e
  with Expr.Unknown_column c -> plan_error "unknown column %s" c

let scan_valid m relation =
  match (relation, m.sm_std) with
  | Catalog.Std tb, Some tb' -> tb == tb'
  | Catalog.Tmp tmp, None ->
    Temp_table.schema tmp == m.sm_schema
    && Temp_table.name tmp = m.sm_name
    && Temp_table.same_static_map tmp m.sm_prov
  | _ -> false

let ensure_scan cat ~env (s : cscan) =
  match Catalog.resolve cat ~env s.rel with
  | None -> plan_error "unknown relation %s" s.rel
  | Some relation -> (
    match s.sm with
    | Some m when scan_valid m relation -> (relation, m.sm_desc)
    | _ ->
      let desc = scan_desc relation s.alias in
      s.sm <-
        Some
          {
            sm_std = (match relation with Catalog.Std tb -> Some tb | _ -> None);
            sm_schema = Catalog.relation_schema relation;
            sm_name = Catalog.relation_name relation;
            sm_prov =
              (match relation with
              | Catalog.Tmp t -> Temp_table.static_map t
              | Catalog.Std _ -> [||]);
            sm_desc = desc;
          };
      (relation, desc))

let scan_std cat ~env = function
  | CScan s -> (
    match Catalog.resolve cat ~env s.rel with
    | Some (Catalog.Std tb) -> Some tb
    | _ -> None)
  | _ -> None

(* [censure] validates the memo chain and returns the node's descriptor
   without executing anything (and without ticking any meter). *)
let rec censure cat ~env = function
  | CScan s -> snd (ensure_scan cat ~env s)
  | CFilter f -> censure cat ~env f.fsub
  | CJoin j -> (ensure_join cat ~env j).jm_desc
  | CProject p ->
    let _, desc, _ = ensure_project cat ~env p in
    desc
  | CGroup g -> (ensure_group cat ~env g).gm_desc
  | COrder o -> censure cat ~env o.osub
  | CLimit (_, sub) -> censure cat ~env sub
  | CDistinct sub -> censure cat ~env sub

and ensure_join cat ~env (j : cjoin) =
  let ldesc = censure cat ~env j.jl in
  let rdesc = censure cat ~env j.jr in
  let valid m =
    m.jm_ldesc == ldesc && m.jm_rdesc == rdesc
    && List.for_all (fun (tb, g) -> Table.index_gen tb = g) m.jm_deps
  in
  match j.jm with
  | Some m when valid m -> m
  | _ ->
    let desc = join_desc ldesc rdesc in
    let la = Schema.arity ldesc.schema in
    let resolved_pred = Option.map (resolve_in desc.schema) j.jpred in
    let equi, residual =
      match resolved_pred with
      | None -> ([], [])
      | Some p -> split_equi ~left_arity:la p
    in
    let residual_pred =
      match residual with
      | [] -> None
      | c :: cs ->
        Some (List.fold_left (fun acc c -> Expr.Binop (Expr.And, acc, c)) c cs)
    in
    let pick =
      pick_strategy
        ~ltb:(scan_std cat ~env j.jl)
        ~rtb:(scan_std cat ~env j.jr)
        equi
    in
    let strategy, deps =
      match pick with
      | PNested -> (JNested, [])
      | PHash ->
        (* a later CREATE INDEX on a scanned side can upgrade the choice *)
        let deps =
          List.filter_map
            (Option.map (fun tb -> (tb, Table.index_gen tb)))
            [ scan_std cat ~env j.jl; scan_std cat ~env j.jr ]
        in
        (JHash, deps)
      | PIndex (tb, idx) ->
        let deps =
          List.filter_map
            (Option.map (fun tb -> (tb, Table.index_gen tb)))
            [ scan_std cat ~env j.jl; Some tb ]
        in
        (JIndex (tb, idx), deps)
      | PMerge ((ltb, lidx), (rtb, ridx)) ->
        ( JMerge ((ltb, lidx), (rtb, ridx)),
          [ (ltb, Table.index_gen ltb); (rtb, Table.index_gen rtb) ] )
    in
    let m =
      {
        jm_ldesc = ldesc;
        jm_rdesc = rdesc;
        jm_desc = desc;
        jm_equi = equi;
        jm_residual = residual_pred;
        jm_strategy = strategy;
        jm_deps = deps;
      }
    in
    j.jm <- Some m;
    m

and ensure_project cat ~env (p : cproject) =
  let ind = censure cat ~env p.psub in
  match p.pm with
  | Some ((ind', _, _) as m) when ind' == ind -> m
  | _ ->
    let desc = project_desc ind p.pitems in
    let resolved = List.map (fun it -> resolve_in ind.schema it.expr) p.pitems in
    let m = (ind, desc, resolved) in
    p.pm <- Some m;
    m

and ensure_group cat ~env (g : cgroup) =
  let ind = censure cat ~env g.gsub in
  match g.gm with
  | Some m when m.gm_in == ind -> m
  | _ ->
    let desc = group_desc ind g.gkeys g.gaggs in
    let resolve e = resolve_in ind.schema e in
    let key_exprs = List.map (fun it -> resolve it.expr) g.gkeys in
    let agg_specs =
      List.map
        (fun (a, _) ->
          match a with
          | Count_star -> ((`Count_star :> agg_kind), Expr.Const Value.Null)
          | Count e -> (`Count, resolve e)
          | Sum e -> (`Sum, resolve e)
          | Avg e -> (`Avg, resolve e)
          | Min e -> (`Min, resolve e)
          | Max e -> (`Max, resolve e))
        g.gaggs
    in
    let having = Option.map (resolve_in desc.schema) g.ghaving in
    let m =
      {
        gm_in = ind;
        gm_desc = desc;
        gm_keys = key_exprs;
        gm_aggs = agg_specs;
        gm_having = having;
      }
    in
    g.gm <- Some m;
    m

let ensure_filter cat ~env (f : cfilter) =
  let ind = censure cat ~env f.fsub in
  match f.fm with
  | Some (ind', p) when ind' == ind -> p
  | _ ->
    let p = resolve_in ind.schema f.fpred in
    f.fm <- Some (ind, p);
    p

let ensure_order cat ~env (o : corder) =
  let ind = censure cat ~env o.osub in
  match o.om with
  | Some (ind', specs) when ind' == ind -> specs
  | _ ->
    let specs = List.map (fun (e, ord) -> (resolve_in ind.schema e, ord)) o.ospecs in
    o.om <- Some (ind, specs);
    specs

(* ------------------------------------------------------------------ *)
(* Execution.                                                           *)

(* Testing knob: when [false], the indexed-probe physical path is replaced
   by a hash-build fallback that reproduces the modeled path bit for bit —
   same "index_probe"/"join_row" ticks, same output order (an index posting
   list holds records newest-first, i.e. by descending rid).  Strategy
   *selection* is unaffected, so simulated results must not change; the
   differential tests assert exactly that. *)
let physical_index_join = ref true

let scan_rows relation desc =
  match relation with
  | Catalog.Std tb ->
    let acc = ref [] in
    Table.iter tb (fun r ->
        Meter.tick_c c_seq_row;
        acc := { vals = r.Record.values; srcs = [| r |] } :: !acc);
    ignore desc;
    List.rev !acc
  | Catalog.Tmp tmp ->
    let nslots = Temp_table.slots tmp in
    let acc = ref [] in
    Temp_table.iter tmp (fun row ->
        Meter.tick_c c_seq_row;
        acc :=
          {
            vals = Temp_table.row_values tmp row;
            srcs = Array.init nslots (fun s -> Temp_table.row_source tmp row s);
          }
          :: !acc);
    List.rev !acc

let combine_rows lrow rrow =
  Meter.tick_c c_join_row;
  {
    vals = Array.append lrow.vals rrow.vals;
    srcs = Array.append lrow.srcs rrow.srcs;
  }

let record_row (r : Record.t) = { vals = r.Record.values; srcs = [| r |] }

let rec cexec cat ~env node : result =
  match node with
  | CScan s ->
    let relation, desc = ensure_scan cat ~env s in
    { desc; xrows = scan_rows relation desc }
  | CFilter f ->
    let pred = ensure_filter cat ~env f in
    let r = cexec cat ~env f.fsub in
    { r with xrows = List.filter (fun x -> Expr.eval_pred pred x.vals) r.xrows }
  | CJoin j -> cexec_join cat ~env j
  | CProject p ->
    let _, desc, resolved = ensure_project cat ~env p in
    let r = cexec cat ~env p.psub in
    let exprs = Array.of_list resolved in
    let project x =
      Meter.tick_c c_row_construct;
      {
        vals = Array.map (fun e -> Expr.eval e x.vals) exprs;
        srcs = x.srcs;
      }
    in
    { desc; xrows = List.map project r.xrows }
  | CGroup g -> cexec_group cat ~env g
  | COrder o ->
    let specs = ensure_order cat ~env o in
    let r = cexec cat ~env o.osub in
    let keyed =
      List.map
        (fun x ->
          Meter.tick_c c_sort_row;
          (List.map (fun (e, ord) -> (Expr.eval e x.vals, ord)) specs, x))
        r.xrows
    in
    let compare_keys (ka, _) (kb, _) =
      let rec loop a b =
        match (a, b) with
        | [], [] -> 0
        | (va, o) :: a', (vb, _) :: b' ->
          let c = Value.compare va vb in
          let c = match o with Asc -> c | Desc -> -c in
          if c <> 0 then c else loop a' b'
        | _ -> 0
      in
      loop ka kb
    in
    { r with xrows = List.map snd (List.stable_sort compare_keys keyed) }
  | CLimit (n, sub) ->
    let r = cexec cat ~env sub in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    { r with xrows = take n r.xrows }
  | CDistinct sub ->
    let r = cexec cat ~env sub in
    let seen = VTbl.create 64 in
    let xrows =
      List.filter
        (fun x ->
          Meter.tick_c c_hash_probe;
          let key = Array.to_list x.vals in
          if VTbl.mem seen key then false
          else begin
            VTbl.add seen key ();
            true
          end)
        r.xrows
    in
    { r with xrows }

and cexec_join cat ~env (j : cjoin) =
  let m = ensure_join cat ~env j in
  let equi = m.jm_equi in
  let keep combined =
    match m.jm_residual with
    | None -> true
    | Some p -> Expr.eval_pred p combined.vals
  in
  let probe_key lrow = List.map (fun (i, _) -> lrow.vals.(i)) equi in
  let xrows =
    match m.jm_strategy with
    | JIndex (tb, idx) ->
      let lres = cexec cat ~env j.jl in
      if !physical_index_join then begin
        (* accumulator instead of concat_map/filter_map: this loop runs
           once per probed posting on every rule check, so avoid the
           per-match option and per-left-row list append *)
        let acc = ref [] in
        List.iter
          (fun lrow ->
            List.iter
              (fun (rec_ : Record.t) ->
                let combined = combine_rows lrow (record_row rec_) in
                if keep combined then acc := combined :: !acc)
              (Index.lookup idx (probe_key lrow)))
          lres.xrows;
        List.rev !acc
      end
      else begin
        (* unmetered hash build, then per-left-row probes that replay the
           modeled index path's ticks and posting order *)
        let tbl = VTbl.create 256 in
        Table.iter tb (fun r ->
            let key = List.map (fun (_, jj) -> Record.value r jj) equi in
            let cur =
              match VTbl.find_opt tbl key with Some l -> l | None -> []
            in
            VTbl.replace tbl key (r :: cur));
        List.concat_map
          (fun lrow ->
            Meter.tick_c c_index_probe;
            let matches =
              match VTbl.find_opt tbl (probe_key lrow) with
              | Some l ->
                List.sort
                  (fun (a : Record.t) (b : Record.t) -> compare b.rid a.rid)
                  l
              | None -> []
            in
            List.filter_map
              (fun rec_ ->
                let combined = combine_rows lrow (record_row rec_) in
                if keep combined then Some combined else None)
              matches)
          lres.xrows
      end
    | JMerge ((_ltb, lidx), (_rtb, ridx)) ->
      (* Neither side is scanned: stream both ordered indexes in key order
         and intersect, one "merge_step" per pointer advance.  Output is in
         ascending key order; within a key, left then right postings
         oldest-first (ascending rid). *)
      let acc = ref [] in
      let rec merge ls rs =
        match (ls, rs) with
        | [], _ | _, [] -> ()
        | (lk, lrecs) :: ls', (rk, rrecs) :: rs' ->
          Meter.tick_c c_merge_step;
          let c = Index.compare_keys lk rk in
          if c < 0 then merge ls' rs
          else if c > 0 then merge ls rs'
          else begin
            List.iter
              (fun (lr : Record.t) ->
                let lrow = record_row lr in
                List.iter
                  (fun (rr : Record.t) ->
                    let combined = combine_rows lrow (record_row rr) in
                    if keep combined then acc := combined :: !acc)
                  rrecs)
              lrecs;
            merge ls' rs'
          end
      in
      merge (Index.ordered_entries lidx) (Index.ordered_entries ridx);
      List.rev !acc
    | JHash ->
      let lres = cexec cat ~env j.jl in
      let rres = cexec cat ~env j.jr in
      let tbl = VTbl.create 256 in
      List.iter
        (fun rrow ->
          Meter.tick_c c_hash_build;
          let key = List.map (fun (_, jj) -> rrow.vals.(jj)) equi in
          let cur = match VTbl.find_opt tbl key with Some l -> l | None -> [] in
          VTbl.replace tbl key (rrow :: cur))
        rres.xrows;
      let acc = ref [] in
      List.iter
        (fun lrow ->
          Meter.tick_c c_hash_probe;
          match VTbl.find_opt tbl (probe_key lrow) with
          | None -> ()
          | Some rrows ->
            List.iter
              (fun rrow ->
                let combined = combine_rows lrow rrow in
                if keep combined then acc := combined :: !acc)
              (List.rev rrows))
        lres.xrows;
      List.rev !acc
    | JNested ->
      let lres = cexec cat ~env j.jl in
      let rres = cexec cat ~env j.jr in
      let acc = ref [] in
      List.iter
        (fun lrow ->
          List.iter
            (fun rrow ->
              let combined = combine_rows lrow rrow in
              if keep combined then acc := combined :: !acc)
            rres.xrows)
        lres.xrows;
      List.rev !acc
  in
  { desc = m.jm_desc; xrows }

and cexec_group cat ~env (g : cgroup) =
  let m = ensure_group cat ~env g in
  let r = cexec cat ~env g.gsub in
  let desc = m.gm_desc in
  let key_exprs = m.gm_keys in
  let agg_specs = m.gm_aggs in
  (* Accumulator per aggregate: (count, sum as float, current value). *)
  let module Acc = struct
    type t = {
      mutable n : int;
      mutable fsum : float;
      mutable v : Value.t;  (* running sum / min / max *)
    }

    let make () = { n = 0; fsum = 0.0; v = Value.Null }
  end in
  let groups = VTbl.create 64 in
  let group_order = ref [] in
  List.iter
    (fun x ->
      Meter.tick_c c_agg_row;
      let key = List.map (fun e -> Expr.eval e x.vals) key_exprs in
      let accs =
        match VTbl.find_opt groups key with
        | Some a -> a
        | None ->
          Meter.tick_c c_group_init;
          let a = Array.init (List.length agg_specs) (fun _ -> Acc.make ()) in
          VTbl.add groups key a;
          group_order := key :: !group_order;
          a
      in
      List.iteri
        (fun i (kind, e) ->
          let acc = accs.(i) in
          match kind with
          | `Count_star -> acc.Acc.n <- acc.Acc.n + 1
          | `Count ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then acc.Acc.n <- acc.Acc.n + 1
          | `Sum ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then begin
              acc.Acc.n <- acc.Acc.n + 1;
              acc.Acc.v <-
                (if Value.is_null acc.Acc.v then v else Value.add acc.Acc.v v)
            end
          | `Avg ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then begin
              acc.Acc.n <- acc.Acc.n + 1;
              acc.Acc.fsum <- acc.Acc.fsum +. Value.to_float v
            end
          | `Min ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then
              if Value.is_null acc.Acc.v || Value.compare v acc.Acc.v < 0 then
                acc.Acc.v <- v
          | `Max ->
            let v = Expr.eval e x.vals in
            if not (Value.is_null v) then
              if Value.is_null acc.Acc.v || Value.compare v acc.Acc.v > 0 then
                acc.Acc.v <- v)
        agg_specs)
    r.xrows;
  (* A grand aggregate (no keys) over an empty input still yields one row. *)
  if key_exprs = [] && VTbl.length groups = 0 then begin
    VTbl.add groups [] (Array.init (List.length agg_specs) (fun _ -> Acc.make ()));
    group_order := [ [] ]
  end;
  let finish key accs =
    let agg_vals =
      List.mapi
        (fun i (kind, _) ->
          let acc = accs.(i) in
          match kind with
          | `Count_star | `Count -> Value.Int acc.Acc.n
          | `Sum | `Min | `Max -> acc.Acc.v
          | `Avg ->
            if acc.Acc.n = 0 then Value.Null
            else Value.Float (acc.Acc.fsum /. float_of_int acc.Acc.n))
        agg_specs
    in
    Meter.tick_c c_row_construct;
    { vals = Array.of_list (key @ agg_vals); srcs = [||] }
  in
  let xrows =
    List.rev_map (fun key -> finish key (VTbl.find groups key)) !group_order
  in
  let xrows =
    match m.gm_having with
    | None -> xrows
    | Some h -> List.filter (fun x -> Expr.eval_pred h x.vals) xrows
  in
  { desc; xrows }

(* ------------------------------------------------------------------ *)
(* Compilation cache, keyed on the plan value's physical identity.  The
   rule system compiles a plan once per rule and re-runs the same value on
   every check, so this turns all per-execution schema/expression
   resolution into pointer comparisons.  Ad-hoc plans (fresh values) just
   compile again; the table is reset when it grows past a bound so one-shot
   plans cannot accumulate. *)

module PTbl = Hashtbl.Make (struct
  type t = plan

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let compiled : cnode PTbl.t = PTbl.create 64

let compile plan =
  match PTbl.find_opt compiled plan with
  | Some c -> c
  | None ->
    if PTbl.length compiled > 512 then PTbl.reset compiled;
    let c = compile_node plan in
    PTbl.add compiled plan c;
    c

let run cat ~env plan = cexec cat ~env (compile plan)

let schema_of cat ~env plan = (desc_of cat ~env plan).schema

let result_schema r = r.desc.schema
let row_count r = List.length r.xrows
let rows r = List.map (fun x -> Array.copy x.vals) r.xrows

let partition r ~cols =
  let positions =
    List.map
      (fun c ->
        match Schema.find r.desc.schema c with
        | Some i -> i
        | None -> plan_error "partition: unknown column %s" c
        | exception Schema.Ambiguous c -> plan_error "partition: ambiguous column %s" c)
      cols
  in
  let tbl = VTbl.create 64 in
  let order = ref [] in
  List.iter
    (fun x ->
      Meter.tick_c c_partition_row;
      let key = List.map (fun i -> x.vals.(i)) positions in
      match VTbl.find_opt tbl key with
      | Some l -> l := x :: !l
      | None ->
        VTbl.add tbl key (ref [ x ]);
        order := key :: !order)
    r.xrows;
  List.rev_map
    (fun key ->
      let rows = List.rev !(VTbl.find tbl key) in
      (key, { desc = r.desc; xrows = rows }))
    !order

(* ------------------------------------------------------------------ *)
(* Binding results as temporary tables (§6.1).                          *)

let bind ?(overrides = []) ~name r =
  let schema = Schema.unqualify r.desc.schema in
  let arity = Schema.arity schema in
  let override_for col =
    List.assoc_opt (Schema.col schema col).Schema.cname overrides
  in
  (* Keep only pointer slots actually referenced by a non-overridden output
     column (the §6.1 optimization; STRIP v2.0's footnote says it stored all
     slots — we implement the described design). *)
  let used = Array.make (max r.desc.nslots 1) false in
  Array.iteri
    (fun col prov ->
      match (prov, override_for col) with
      | Slot (s, _), None -> used.(s) <- true
      | _ -> ())
    r.desc.colprov;
  let slot_map = Array.make (max r.desc.nslots 1) (-1) in
  let nslots = ref 0 in
  Array.iteri
    (fun s u ->
      if u then begin
        slot_map.(s) <- !nslots;
        incr nslots
      end)
    used;
  let nmat = ref 0 in
  let prov =
    Array.init arity (fun col ->
        match (r.desc.colprov.(col), override_for col) with
        | Slot (s, o), None -> Temp_table.From_record (slot_map.(s), o)
        | _ ->
          let m = !nmat in
          incr nmat;
          Temp_table.Computed m)
  in
  let tmp = Temp_table.create ~name ~schema ~nslots:!nslots ~prov in
  List.iter
    (fun x ->
      let srcs =
        Array.of_list
          (List.filteri
             (fun s _ -> s < r.desc.nslots && used.(s))
             (Array.to_list x.srcs))
      in
      let mats = Array.make !nmat Value.Null in
      Array.iteri
        (fun col p ->
          match p with
          | Temp_table.Computed m -> (
            match override_for col with
            | Some v -> mats.(m) <- v
            | None -> mats.(m) <- x.vals.(col))
          | Temp_table.From_record _ -> ())
        prov;
      Temp_table.append tmp ~srcs ~mats)
    r.xrows;
  tmp

(* ------------------------------------------------------------------ *)

(* When a catalog is supplied, annotate each join with the access path the
   executor would choose right now (same selection function). *)
let strategy_note cat ~env l r pred =
  match
    let ldesc = desc_of cat ~env l in
    let rdesc = desc_of cat ~env r in
    let desc = join_desc ldesc rdesc in
    let la = Schema.arity ldesc.schema in
    let equi =
      match pred with
      | None -> []
      | Some p -> fst (split_equi ~left_arity:la (Expr.resolve desc.schema p))
    in
    let std = function
      | Scan { rel; _ } -> (
        match Catalog.resolve cat ~env rel with
        | Some (Catalog.Std tb) -> Some tb
        | _ -> None)
      | _ -> None
    in
    pick_strategy ~ltb:(std l) ~rtb:(std r) equi
  with
  | PMerge ((_, lidx), (_, ridx)) ->
    Printf.sprintf " [merge join via %s, %s]" (Index.name lidx) (Index.name ridx)
  | PIndex (_, idx) -> Printf.sprintf " [index join via %s]" (Index.name idx)
  | PHash -> " [hash join]"
  | PNested -> " [nested loop]"
  | exception _ -> ""

let rec explain_at ?cat ?(env = []) depth plan =
  let pad = String.make (depth * 2) ' ' in
  let line = Printf.sprintf in
  match plan with
  | Scan { rel; alias } ->
    line "%sscan %s%s" pad rel
      (match alias with Some a when a <> rel -> " as " ^ a | _ -> "")
  | Filter (p, q) ->
    line "%sfilter %s\n%s" pad
      (Format.asprintf "%a" Expr.pp p)
      (explain_at ?cat ~env (depth + 1) q)
  | Join (l, r, p) ->
    line "%sjoin%s%s\n%s\n%s" pad
      (match p with
      | Some p -> " on " ^ Format.asprintf "%a" Expr.pp p
      | None -> " (cross)")
      (match cat with
      | Some cat -> strategy_note cat ~env l r p
      | None -> "")
      (explain_at ?cat ~env (depth + 1) l)
      (explain_at ?cat ~env (depth + 1) r)
  | Project (items, q) ->
    line "%sproject %s\n%s" pad
      (String.concat ", "
         (List.mapi
            (fun i it ->
              Format.asprintf "%a as %s" Expr.pp it.expr (item_name i it))
            items))
      (explain_at ?cat ~env (depth + 1) q)
  | Group { keys; aggs; input; _ } ->
    line "%sgroup by %s aggs %s\n%s" pad
      (String.concat ", "
         (List.mapi
            (fun i it -> item_name i it)
            keys))
      (String.concat ", " (List.map snd aggs))
      (explain_at ?cat ~env (depth + 1) input)
  | Order (specs, q) ->
    line "%sorder by %d key(s)\n%s" pad (List.length specs)
      (explain_at ?cat ~env (depth + 1) q)
  | Limit (n, q) -> line "%slimit %d\n%s" pad n (explain_at ?cat ~env (depth + 1) q)
  | Distinct q -> line "%sdistinct\n%s" pad (explain_at ?cat ~env (depth + 1) q)

let explain ?cat ?env plan = explain_at ?cat ?env 0 plan
