let c_bound_append = Meter.counter "bound_append"

type provenance =
  | From_record of int * int
  | Computed of int

type row = int

(* Columnar arena backing: tuple [i]'s source pointers live at
   [srcs.(i * nslots + s)] and its materialized cells at
   [mats.(i * nmats + m)].  Both arenas grow geometrically, so building a
   transition or bound table allocates no per-row list cells; a row handle
   is just the tuple's index. *)
type t = {
  tname : string;
  tschema : Schema.t;
  nslots : int;
  nmats : int;
  prov : provenance array;
  mutable srcs : Record.t array;  (* nrows * nslots slots in use *)
  mutable mats : Value.t array;  (* nrows * nmats cells in use *)
  mutable cap : int;  (* rows the arenas can hold *)
  mutable nrows : int;
  mutable is_retired : bool;
}

let initial_cap = 8

let create ~name ~schema ~nslots ~prov =
  if Array.length prov <> Schema.arity schema then
    invalid_arg "Temp_table.create: static map arity mismatch";
  let nmats =
    Array.fold_left
      (fun acc p -> match p with Computed _ -> acc + 1 | From_record _ -> acc)
      0 prov
  in
  let seen = Array.make (max nmats 1) false in
  Array.iter
    (fun p ->
      match p with
      | Computed i ->
        if i < 0 || i >= nmats || seen.(i) then
          invalid_arg "Temp_table.create: materialized cells not dense";
        seen.(i) <- true
      | From_record (s, _) ->
        if s < 0 || s >= nslots then
          invalid_arg "Temp_table.create: pointer slot out of range")
    prov;
  {
    tname = name;
    tschema = schema;
    nslots;
    nmats;
    prov;
    srcs = (if nslots = 0 then [||] else Array.make (initial_cap * nslots) Record.dummy);
    mats = (if nmats = 0 then [||] else Array.make (initial_cap * nmats) Value.Null);
    cap = initial_cap;
    nrows = 0;
    is_retired = false;
  }

let create_materialized ~name ~schema =
  let prov = Array.init (Schema.arity schema) (fun i -> Computed i) in
  create ~name ~schema ~nslots:0 ~prov

let name t = t.tname
let schema t = t.tschema
let cardinal t = t.nrows
let slots t = t.nslots
let static_map t = Array.copy t.prov

let reserve t extra =
  let need = t.nrows + extra in
  if need > t.cap then begin
    let cap = ref (max t.cap initial_cap) in
    while need > !cap do
      cap := !cap * 2
    done;
    if t.nslots > 0 then begin
      let srcs = Array.make (!cap * t.nslots) Record.dummy in
      Array.blit t.srcs 0 srcs 0 (t.nrows * t.nslots);
      t.srcs <- srcs
    end;
    if t.nmats > 0 then begin
      let mats = Array.make (!cap * t.nmats) Value.Null in
      Array.blit t.mats 0 mats 0 (t.nrows * t.nmats);
      t.mats <- mats
    end;
    t.cap <- !cap
  end

let append t ~srcs ~mats =
  if t.is_retired then invalid_arg "Temp_table.append: table is retired";
  if Array.length srcs <> t.nslots || Array.length mats <> t.nmats then
    invalid_arg "Temp_table.append: slot/materialized arity mismatch";
  Array.iter Record.pin srcs;
  Meter.tick_c c_bound_append;
  reserve t 1;
  if t.nslots > 0 then Array.blit srcs 0 t.srcs (t.nrows * t.nslots) t.nslots;
  if t.nmats > 0 then Array.blit mats 0 t.mats (t.nrows * t.nmats) t.nmats;
  t.nrows <- t.nrows + 1

let append_values t values =
  if t.nslots <> 0 then
    invalid_arg "Temp_table.append_values: table has pointer slots";
  if t.is_retired then invalid_arg "Temp_table.append: table is retired";
  if Array.length values <> Array.length t.prov then
    invalid_arg "Temp_table.append: slot/materialized arity mismatch";
  Meter.tick_c c_bound_append;
  reserve t 1;
  (* Write the values directly into the arena in materialized-cell order. *)
  let base = t.nrows * t.nmats in
  Array.iteri
    (fun col p ->
      match p with
      | Computed m -> t.mats.(base + m) <- values.(col)
      | From_record _ -> assert false)
    t.prov;
  t.nrows <- t.nrows + 1

let get t row col =
  match t.prov.(col) with
  | From_record (slot, off) ->
    Record.value t.srcs.((row * t.nslots) + slot) off
  | Computed m -> t.mats.((row * t.nmats) + m)

let row_values t row =
  Array.init (Array.length t.prov) (fun c -> get t row c)

let row_source t row slot = t.srcs.((row * t.nslots) + slot)

let iter t f =
  for i = 0 to t.nrows - 1 do
    f i
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.nrows - 1 do
    acc := f !acc i
  done;
  !acc

let same_static_map t prov = t.prov == prov || t.prov = prov

let same_layout a b =
  Schema.equal_layout a.tschema b.tschema
  && a.nslots = b.nslots && a.prov = b.prov

let clear_arena t =
  if t.nslots > 0 then Array.fill t.srcs 0 (t.nrows * t.nslots) Record.dummy;
  t.nrows <- 0

let absorb dst src =
  if dst.is_retired then invalid_arg "Temp_table.absorb: destination retired";
  if same_layout dst src then begin
    (* Move rows by arena blit (pins move with them, so no repin/unpin). *)
    Meter.tick_cn c_bound_append src.nrows;
    reserve dst src.nrows;
    if dst.nslots > 0 then
      Array.blit src.srcs 0 dst.srcs (dst.nrows * dst.nslots)
        (src.nrows * src.nslots);
    if dst.nmats > 0 then
      Array.blit src.mats 0 dst.mats (dst.nrows * dst.nmats)
        (src.nrows * src.nmats);
    dst.nrows <- dst.nrows + src.nrows;
    clear_arena src
  end
  else if dst.nslots = 0 && Schema.equal_layout dst.tschema src.tschema then begin
    (* Fully-materialized destination (a recovered TCB rebuilt from the
       checkpoint/log, which carries no record pointers): copy the source
       rows by value.  append_values ticks "bound_append" per row, matching
       the fast path's metering. *)
    for i = 0 to src.nrows - 1 do
      append_values dst (row_values src i)
    done;
    Array.iter Record.unpin (Array.sub src.srcs 0 (src.nrows * src.nslots));
    clear_arena src
  end
  else
    invalid_arg
      (Printf.sprintf "Temp_table.absorb: layout mismatch between %s and %s"
         dst.tname src.tname)

let retire t =
  if not t.is_retired then begin
    t.is_retired <- true;
    for i = 0 to (t.nrows * t.nslots) - 1 do
      Record.unpin t.srcs.(i)
    done;
    clear_arena t
  end

let retired t = t.is_retired

let to_rows t =
  List.init t.nrows (fun i -> row_values t i)
