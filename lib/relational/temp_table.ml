type provenance =
  | From_record of int * int
  | Computed of int

type row = {
  srcs : Record.t array;
  mats : Value.t array;
}

type t = {
  tname : string;
  tschema : Schema.t;
  nslots : int;
  nmats : int;
  prov : provenance array;
  mutable rows_rev : row list;  (* newest first *)
  mutable nrows : int;
  mutable is_retired : bool;
}

let create ~name ~schema ~nslots ~prov =
  if Array.length prov <> Schema.arity schema then
    invalid_arg "Temp_table.create: static map arity mismatch";
  let nmats =
    Array.fold_left
      (fun acc p -> match p with Computed _ -> acc + 1 | From_record _ -> acc)
      0 prov
  in
  let seen = Array.make (max nmats 1) false in
  Array.iter
    (fun p ->
      match p with
      | Computed i ->
        if i < 0 || i >= nmats || seen.(i) then
          invalid_arg "Temp_table.create: materialized cells not dense";
        seen.(i) <- true
      | From_record (s, _) ->
        if s < 0 || s >= nslots then
          invalid_arg "Temp_table.create: pointer slot out of range")
    prov;
  {
    tname = name;
    tschema = schema;
    nslots;
    nmats;
    prov;
    rows_rev = [];
    nrows = 0;
    is_retired = false;
  }

let create_materialized ~name ~schema =
  let prov = Array.init (Schema.arity schema) (fun i -> Computed i) in
  create ~name ~schema ~nslots:0 ~prov

let name t = t.tname
let schema t = t.tschema
let cardinal t = t.nrows
let slots t = t.nslots
let static_map t = Array.copy t.prov

let append t ~srcs ~mats =
  if t.is_retired then invalid_arg "Temp_table.append: table is retired";
  if Array.length srcs <> t.nslots || Array.length mats <> t.nmats then
    invalid_arg "Temp_table.append: slot/materialized arity mismatch";
  Array.iter Record.pin srcs;
  Meter.tick "bound_append";
  t.rows_rev <- { srcs; mats } :: t.rows_rev;
  t.nrows <- t.nrows + 1

let append_values t values =
  if t.nslots <> 0 then
    invalid_arg "Temp_table.append_values: table has pointer slots";
  (* Reorder the values into materialized-cell order. *)
  let mats = Array.make t.nmats Value.Null in
  Array.iteri
    (fun col p ->
      match p with
      | Computed m -> mats.(m) <- values.(col)
      | From_record _ -> assert false)
    t.prov;
  append t ~srcs:[||] ~mats

let get t row col =
  match t.prov.(col) with
  | From_record (slot, off) -> Record.value row.srcs.(slot) off
  | Computed m -> row.mats.(m)

let row_values t row =
  Array.init (Schema.arity t.tschema) (fun c -> get t row c)

let row_source row slot = row.srcs.(slot)

let iter t f = List.iter f (List.rev t.rows_rev)

let fold t ~init ~f =
  List.fold_left f init (List.rev t.rows_rev)

let same_layout a b =
  Schema.equal_layout a.tschema b.tschema
  && a.nslots = b.nslots && a.prov = b.prov

let absorb dst src =
  if dst.is_retired then invalid_arg "Temp_table.absorb: destination retired";
  if same_layout dst src then begin
    (* Move rows (pins move with them, so no repin/unpin). *)
    Meter.tick_n "bound_append" src.nrows;
    dst.rows_rev <- src.rows_rev @ dst.rows_rev;
    dst.nrows <- dst.nrows + src.nrows;
    src.rows_rev <- [];
    src.nrows <- 0
  end
  else if dst.nslots = 0 && Schema.equal_layout dst.tschema src.tschema then begin
    (* Fully-materialized destination (a recovered TCB rebuilt from the
       checkpoint/log, which carries no record pointers): copy the source
       rows by value.  append_values ticks "bound_append" per row, matching
       the fast path's metering. *)
    List.iter
      (fun r -> append_values dst (row_values src r))
      (List.rev src.rows_rev);
    List.iter (fun r -> Array.iter Record.unpin r.srcs) src.rows_rev;
    src.rows_rev <- [];
    src.nrows <- 0
  end
  else
    invalid_arg
      (Printf.sprintf "Temp_table.absorb: layout mismatch between %s and %s"
         dst.tname src.tname)

let retire t =
  if not t.is_retired then begin
    t.is_retired <- true;
    List.iter (fun r -> Array.iter Record.unpin r.srcs) t.rows_rev;
    t.rows_rev <- [];
    t.nrows <- 0
  end

let retired t = t.is_retired

let to_rows t =
  (* [rows_rev] is newest-first, so a single rev_map restores insertion
     order. *)
  List.rev_map (fun r -> row_values t r) t.rows_rev
