(** Statement execution.

    Binds the parser to the storage engine.  DML goes through the cursor
    primitives of {!Table} — the same open/fetch/update/close path the
    paper's Table 1 measures — and uses an index cursor whenever the WHERE
    clause pins an indexed column to a constant.

    Locking and logging are not implemented here: the caller (normally
    {!Strip_txn.Transaction}) passes {!hooks} whose callbacks fire around
    each data operation.  With {!no_hooks} the statement runs raw, which is
    what bulk loading uses. *)

type lock_mode = Shared | Exclusive

type hooks = {
  lock_table : Table.t -> lock_mode -> unit;
      (** before touching any rows of the table *)
  lock_record : Table.t -> Record.t -> lock_mode -> unit;
      (** before reading (Shared) or modifying (Exclusive) a record *)
  on_insert : Table.t -> Record.t -> unit;
  on_update : Table.t -> old_rec:Record.t -> new_rec:Record.t -> unit;
  on_delete : Table.t -> Record.t -> unit;
}

val no_hooks : hooks

type exec_result =
  | Rows of Query.result  (** SELECT *)
  | Count of int  (** INSERT / UPDATE / DELETE: rows affected *)
  | Unit  (** DDL *)

val resolver :
  Catalog.t -> env:Catalog.env -> string -> (Schema.t * [ `Std | `Tmp ]) option
(** The relation resolver used to plan selects against a catalog plus
    task-local bound tables. *)

val plan_select :
  Catalog.t -> env:Catalog.env -> Sql_parser.select_ast -> Query.plan

val exec :
  ?hooks:hooks ->
  ?on_view:(string -> Sql_parser.select_ast -> unit) ->
  Catalog.t ->
  env:Catalog.env ->
  Sql_parser.statement ->
  exec_result
(** Execute one parsed statement.  [CREATE VIEW] materializes the view into
    a standard table and reports its definition through [on_view] so the
    caller can generate maintenance rules.
    @raise Sql_parser.Parse_error on planning errors
    @raise Query.Plan_error on execution-time resolution errors *)

val exec_string :
  ?hooks:hooks ->
  ?on_view:(string -> Sql_parser.select_ast -> unit) ->
  Catalog.t ->
  env:Catalog.env ->
  string ->
  exec_result
(** Parse and execute exactly one statement. *)

val query : ?hooks:hooks -> Catalog.t -> env:Catalog.env -> string -> Query.result
(** Parse, plan and run a SELECT. *)
