open Sql_lexer

type set_op = Assign | Increment

type sel_item =
  | Star
  | Qual_star of string
  | Item of Query.select_item

type table_ref = { rel : string; alias : string }

type select_ast = {
  distinct : bool;
  items : sel_item list;
  from : table_ref list;
  where : Expr.t option;
  group_by : Expr.t list;
  having : Expr.t option;
  order_by : (Expr.t * Query.order) list;
  limit : int option;
}

type statement =
  | Create_table of { name : string; cols : (string * Value.ty) list }
  | Create_index of {
      iname : string;
      table : string;
      cols : string list;
      kind : Index.kind;
    }
  | Create_view of { name : string; select : select_ast }
  | Insert of { table : string; columns : string list option; values : Expr.t list list }
  | Update of {
      table : string;
      sets : (string * set_op * Expr.t) list;
      where : Expr.t option;
    }
  | Delete of { table : string; where : Expr.t option }
  | Drop_table of string
  | Drop_index of { table : string; iname : string }
  | Select of select_ast
  | Explain of select_ast

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Token cursor.                                                        *)

type cursor = { toks : token array; mutable pos : int }

let cursor_of_string s =
  match tokenize s with
  | toks -> { toks; pos = 0 }
  | exception Lex_error (msg, off) ->
    parse_error "lexical error at offset %d: %s" off msg

let peek c = c.toks.(c.pos)

let peek2 c =
  if c.pos + 1 < Array.length c.toks then c.toks.(c.pos + 1) else Eof

let advance c = if c.pos < Array.length c.toks - 1 then c.pos <- c.pos + 1

let at_eof c = peek c = Eof

let is_kw tok kw =
  match tok with
  | Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let accept_kw c kw =
  if is_kw (peek c) kw then begin
    advance c;
    true
  end
  else false

let expect_kw c kw =
  if not (accept_kw c kw) then
    parse_error "expected %s, found %s" kw (token_to_string (peek c))

let expect_tok c t =
  if peek c = t then advance c
  else
    parse_error "expected %s, found %s" (token_to_string t)
      (token_to_string (peek c))

let save c = c.pos

let restore c pos = c.pos <- pos

let expect_ident c =
  match peek c with
  | Ident s ->
    advance c;
    s
  | t -> parse_error "expected identifier, found %s" (token_to_string t)

(* Words that terminate an expression or select-list item. *)
let reserved =
  [
    "from"; "where"; "group"; "groupby"; "having"; "order"; "limit"; "as";
    "and"; "or"; "between"; "in"; "join"; "inner"; "distinct"; "explain";
    "not"; "is"; "null"; "asc"; "desc"; "bind"; "by"; "then"; "when"; "if";
    "execute"; "evaluate"; "unique"; "after"; "on"; "set"; "values"; "into";
    "select"; "insert"; "update"; "delete"; "create"; "drop";
  ]

let is_reserved s = List.mem (String.lowercase_ascii s) reserved

(* ------------------------------------------------------------------ *)
(* Expressions.                                                         *)

let rec parse_expr c = parse_or c

and parse_or c =
  let lhs = ref (parse_and c) in
  while is_kw (peek c) "or" do
    advance c;
    let rhs = parse_and c in
    lhs := Expr.Binop (Expr.Or, !lhs, rhs)
  done;
  !lhs

and parse_and c =
  let lhs = ref (parse_not c) in
  while is_kw (peek c) "and" do
    advance c;
    let rhs = parse_not c in
    lhs := Expr.Binop (Expr.And, !lhs, rhs)
  done;
  !lhs

and parse_not c =
  if is_kw (peek c) "not" then begin
    advance c;
    Expr.Unop (Expr.Not, parse_not c)
  end
  else parse_cmp c

and parse_cmp c =
  let lhs = parse_add c in
  match peek c with
  | Ident _ when is_kw (peek c) "between" ->
    advance c;
    let lo = parse_add c in
    expect_kw c "and";
    let hi = parse_add c in
    Expr.(Binop (And, Binop (Ge, lhs, lo), Binop (Le, lhs, hi)))
  | Ident _ when is_kw (peek c) "in" ->
    advance c;
    expect_tok c Lparen;
    let alts = ref [ parse_expr c ] in
    while peek c = Comma do
      advance c;
      alts := parse_expr c :: !alts
    done;
    expect_tok c Rparen;
    (match List.rev_map (fun e -> Expr.Binop (Expr.Eq, lhs, e)) !alts with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun acc e -> Expr.Binop (Expr.Or, acc, e)) first rest)
  | Eq ->
    advance c;
    Expr.Binop (Expr.Eq, lhs, parse_add c)
  | Neq ->
    advance c;
    Expr.Binop (Expr.Neq, lhs, parse_add c)
  | Lt ->
    advance c;
    Expr.Binop (Expr.Lt, lhs, parse_add c)
  | Le ->
    advance c;
    Expr.Binop (Expr.Le, lhs, parse_add c)
  | Gt ->
    advance c;
    Expr.Binop (Expr.Gt, lhs, parse_add c)
  | Ge ->
    advance c;
    Expr.Binop (Expr.Ge, lhs, parse_add c)
  | Ident _ when is_kw (peek c) "is" ->
    advance c;
    let negated = accept_kw c "not" in
    expect_kw c "null";
    if negated then Expr.Unop (Expr.Is_not_null, lhs)
    else Expr.Unop (Expr.Is_null, lhs)
  | _ -> lhs

and parse_add c =
  let lhs = ref (parse_mul c) in
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Plus ->
      advance c;
      lhs := Expr.Binop (Expr.Add, !lhs, parse_mul c)
    | Minus ->
      advance c;
      lhs := Expr.Binop (Expr.Sub, !lhs, parse_mul c)
    | Concat ->
      advance c;
      lhs := Expr.Binop (Expr.Concat, !lhs, parse_mul c)
    | _ -> continue_ := false
  done;
  !lhs

and parse_mul c =
  let lhs = ref (parse_unary c) in
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Star ->
      advance c;
      lhs := Expr.Binop (Expr.Mul, !lhs, parse_unary c)
    | Slash ->
      advance c;
      lhs := Expr.Binop (Expr.Div, !lhs, parse_unary c)
    | Percent ->
      advance c;
      lhs := Expr.Binop (Expr.Mod, !lhs, parse_unary c)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary c =
  match peek c with
  | Minus ->
    advance c;
    Expr.Unop (Expr.Neg, parse_unary c)
  | _ -> parse_primary c

and parse_primary c =
  match peek c with
  | Int_lit i ->
    advance c;
    Expr.Const (Value.Int i)
  | Float_lit f ->
    advance c;
    Expr.Const (Value.Float f)
  | Str_lit s ->
    advance c;
    Expr.Const (Value.Str s)
  | Lparen ->
    advance c;
    let e = parse_expr c in
    expect_tok c Rparen;
    e
  | Ident name -> (
    let lower = String.lowercase_ascii name in
    match lower with
    | "null" ->
      advance c;
      Expr.Const Value.Null
    | "true" ->
      advance c;
      Expr.Const (Value.Bool true)
    | "false" ->
      advance c;
      Expr.Const (Value.Bool false)
    | _ ->
      advance c;
      if peek c = Lparen then begin
        (* function call; count( * ) becomes count_star *)
        advance c;
        if peek c = Star then begin
          advance c;
          expect_tok c Rparen;
          Expr.Call (lower ^ "_star", [])
        end
        else begin
          let args = ref [] in
          if peek c <> Rparen then begin
            args := [ parse_expr c ];
            while peek c = Comma do
              advance c;
              args := parse_expr c :: !args
            done
          end;
          expect_tok c Rparen;
          Expr.Call (lower, List.rev !args)
        end
      end
      else if peek c = Dot then begin
        advance c;
        let col = expect_ident c in
        Expr.Col (Some name, col)
      end
      else Expr.Col (None, name))
  | t -> parse_error "unexpected token %s in expression" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* SELECT.                                                              *)

let parse_select_items c =
  let parse_one () =
    match peek c with
    | Star ->
      advance c;
      Star
    | Ident name when peek2 c = Dot && not (is_reserved name) -> (
      (* could be qual.* or qual.col ... *)
      match c.toks.(c.pos + 2) with
      | Sql_lexer.Star ->
        advance c;
        advance c;
        advance c;
        Qual_star name
      | _ ->
        let e = parse_expr c in
        let alias =
          if accept_kw c "as" then Some (expect_ident c)
          else
            match peek c with
            | Ident a when not (is_reserved a) ->
              advance c;
              Some a
            | _ -> None
        in
        Item (Query.item ?alias e))
    | _ ->
      let e = parse_expr c in
      let alias =
        if accept_kw c "as" then Some (expect_ident c)
        else
          match peek c with
          | Ident a when not (is_reserved a) ->
            advance c;
            Some a
          | _ -> None
      in
      Item (Query.item ?alias e)
  in
  let items = ref [ parse_one () ] in
  while peek c = Comma do
    advance c;
    items := parse_one () :: !items
  done;
  List.rev !items

let parse_table_ref c =
  let rel = expect_ident c in
  let alias =
    if accept_kw c "as" then expect_ident c
    else
      match peek c with
      | Ident a when not (is_reserved a) ->
        advance c;
        a
      | _ -> rel
  in
  { rel; alias }

let parse_select_at c =
  expect_kw c "select";
  ignore (accept_kw c "all");
  let distinct = accept_kw c "distinct" in
  let items = parse_select_items c in
  expect_kw c "from";
  let from = ref [ parse_table_ref c ] in
  let join_preds = ref [] in
  let continue_ = ref true in
  while !continue_ do
    if peek c = Comma then begin
      advance c;
      from := parse_table_ref c :: !from
    end
    else if accept_kw c "inner" || is_kw (peek c) "join" then begin
      expect_kw c "join";
      from := parse_table_ref c :: !from;
      expect_kw c "on";
      join_preds := parse_expr c :: !join_preds
    end
    else continue_ := false
  done;
  let where = if accept_kw c "where" then Some (parse_expr c) else None in
  let where =
    List.fold_left
      (fun acc p ->
        match acc with
        | None -> Some p
        | Some w -> Some (Expr.Binop (Expr.And, w, p)))
      where !join_preds
  in
  let group_by =
    if accept_kw c "group" then begin
      (* accept both "group by" and the paper's "groupby" via kw group+by *)
      expect_kw c "by";
      let keys = ref [ parse_expr c ] in
      while peek c = Comma do
        advance c;
        keys := parse_expr c :: !keys
      done;
      List.rev !keys
    end
    else if accept_kw c "groupby" then begin
      let keys = ref [ parse_expr c ] in
      while peek c = Comma do
        advance c;
        keys := parse_expr c :: !keys
      done;
      List.rev !keys
    end
    else []
  in
  let having = if accept_kw c "having" then Some (parse_expr c) else None in
  let order_by =
    if accept_kw c "order" then begin
      expect_kw c "by";
      let one () =
        let e = parse_expr c in
        let dir =
          if accept_kw c "desc" then Query.Desc
          else begin
            ignore (accept_kw c "asc");
            Query.Asc
          end
        in
        (e, dir)
      in
      let specs = ref [ one () ] in
      while peek c = Comma do
        advance c;
        specs := one () :: !specs
      done;
      List.rev !specs
    end
    else []
  in
  let limit =
    if accept_kw c "limit" then begin
      match peek c with
      | Int_lit n ->
        advance c;
        Some n
      | t -> parse_error "expected integer after LIMIT, found %s" (token_to_string t)
    end
    else None
  in
  {
    distinct;
    items;
    from = List.rev !from;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

let parse_expr_at = parse_expr

(* Fix the "groupby" after-where ordering: the paper writes
   [... from matches groupby comp]; handled above. *)

(* ------------------------------------------------------------------ *)
(* Statements.                                                          *)

let parse_column_defs c =
  expect_tok c Lparen;
  let one () =
    let name = expect_ident c in
    let tyname = expect_ident c in
    match Value.ty_of_string tyname with
    | Some ty -> (name, ty)
    | None -> parse_error "unknown column type %s" tyname
  in
  let cols = ref [ one () ] in
  while peek c = Comma do
    advance c;
    cols := one () :: !cols
  done;
  expect_tok c Rparen;
  List.rev !cols

let parse_name_list c =
  expect_tok c Lparen;
  let names = ref [ expect_ident c ] in
  while peek c = Comma do
    advance c;
    names := expect_ident c :: !names
  done;
  expect_tok c Rparen;
  List.rev !names

let parse_statement_at c =
  if accept_kw c "create" then begin
    if accept_kw c "table" then begin
      let name = expect_ident c in
      let cols = parse_column_defs c in
      Create_table { name; cols }
    end
    else if accept_kw c "index" then begin
      let iname = expect_ident c in
      expect_kw c "on";
      let table = expect_ident c in
      let cols = parse_name_list c in
      let kind =
        if accept_kw c "using" then
          if accept_kw c "hash" then Index.Hash
          else begin
            ignore (accept_kw c "tree");
            Index.Ordered
          end
        else Index.Hash
      in
      Create_index { iname; table; cols; kind }
    end
    else if
      accept_kw c "view"
      ||
      (accept_kw c "materialized"
      &&
      (expect_kw c "view";
       true))
    then begin
      let name = expect_ident c in
      expect_kw c "as";
      let select = parse_select_at c in
      Create_view { name; select }
    end
    else parse_error "expected TABLE, INDEX or VIEW after CREATE"
  end
  else if accept_kw c "drop" then begin
    if accept_kw c "table" then Drop_table (expect_ident c)
    else if accept_kw c "index" then begin
      let iname = expect_ident c in
      expect_kw c "on";
      let table = expect_ident c in
      Drop_index { table; iname }
    end
    else parse_error "expected TABLE or INDEX after DROP"
  end
  else if accept_kw c "explain" then Explain (parse_select_at c)
  else if accept_kw c "insert" then begin
    expect_kw c "into";
    let table = expect_ident c in
    let columns = if peek c = Lparen then Some (parse_name_list c) else None in
    expect_kw c "values";
    let row () =
      expect_tok c Lparen;
      let vals = ref [ parse_expr c ] in
      while peek c = Comma do
        advance c;
        vals := parse_expr c :: !vals
      done;
      expect_tok c Rparen;
      List.rev !vals
    in
    let rows = ref [ row () ] in
    while peek c = Comma do
      advance c;
      rows := row () :: !rows
    done;
    Insert { table; columns; values = List.rev !rows }
  end
  else if accept_kw c "update" then begin
    let table = expect_ident c in
    expect_kw c "set";
    let one () =
      let col = expect_ident c in
      match peek c with
      | Eq ->
        advance c;
        (col, Assign, parse_expr c)
      | Plus_eq ->
        advance c;
        (col, Increment, parse_expr c)
      | t ->
        parse_error "expected = or += in SET, found %s" (token_to_string t)
    in
    let sets = ref [ one () ] in
    while peek c = Comma do
      advance c;
      sets := one () :: !sets
    done;
    let where = if accept_kw c "where" then Some (parse_expr c) else None in
    Update { table; sets = List.rev !sets; where }
  end
  else if accept_kw c "delete" then begin
    expect_kw c "from";
    let table = expect_ident c in
    let where = if accept_kw c "where" then Some (parse_expr c) else None in
    Delete { table; where }
  end
  else if is_kw (peek c) "select" then Select (parse_select_at c)
  else
    parse_error "expected a statement, found %s" (token_to_string (peek c))

let parse_statement s =
  let c = cursor_of_string s in
  let st = parse_statement_at c in
  if peek c = Semi then advance c;
  if not (at_eof c) then
    parse_error "trailing input after statement: %s" (token_to_string (peek c));
  st

let parse_statements s =
  let c = cursor_of_string s in
  let acc = ref [] in
  while not (at_eof c) do
    acc := parse_statement_at c :: !acc;
    while peek c = Semi do
      advance c
    done
  done;
  List.rev !acc

let parse_select_string s =
  let c = cursor_of_string s in
  let sel = parse_select_at c in
  if peek c = Semi then advance c;
  if not (at_eof c) then
    parse_error "trailing input after query: %s" (token_to_string (peek c));
  sel

(* ------------------------------------------------------------------ *)
(* Planning.                                                            *)

let aggregate_of (e : Expr.t) : Query.agg option =
  match e with
  | Expr.Call ("count_star", []) -> Some Query.Count_star
  | Expr.Call ("count", [ a ]) -> Some (Query.Count a)
  | Expr.Call ("sum", [ a ]) -> Some (Query.Sum a)
  | Expr.Call ("avg", [ a ]) -> Some (Query.Avg a)
  | Expr.Call ("min", [ a ]) -> Some (Query.Min a)
  | Expr.Call ("max", [ a ]) -> Some (Query.Max a)
  | _ -> None

let rec contains_aggregate (e : Expr.t) =
  match aggregate_of e with
  | Some _ -> true
  | None -> (
    match e with
    | Expr.Const _ | Expr.Col _ | Expr.Bound _ -> false
    | Expr.Unop (_, a) -> contains_aggregate a
    | Expr.Binop (_, a, b) -> contains_aggregate a || contains_aggregate b
    | Expr.Call (_, args) -> List.exists contains_aggregate args)

(* Aliases mentioned by an expression, given per-alias schemas for
   unqualified resolution.  Unresolvable or ambiguous unqualified columns
   yield None (meaning: only safe to place at the top). *)
let aliases_of_expr schemas e =
  let ok = ref true in
  let acc = ref [] in
  List.iter
    (fun (qual, name) ->
      match qual with
      | Some q -> if not (List.mem q !acc) then acc := q :: !acc
      | None -> (
        let owners =
          List.filter (fun (_, sch) -> Schema.mem sch name) schemas
        in
        match owners with
        | [ (a, _) ] -> if not (List.mem a !acc) then acc := a :: !acc
        | _ -> ok := false))
    (Expr.columns_used e);
  if !ok then Some !acc else None

let conj_and l =
  match l with
  | [] -> None
  | c :: cs ->
    Some (List.fold_left (fun acc c -> Expr.Binop (Expr.And, acc, c)) c cs)

let plan_select ~resolve_rel (ast : select_ast) : Query.plan =
  (* Resolve every FROM relation. *)
  let refs =
    List.map
      (fun (r : table_ref) ->
        match resolve_rel r.rel with
        | Some (schema, kind) -> (r, Schema.requalify r.alias schema, kind)
        | None -> parse_error "unknown relation %s" r.rel)
      ast.from
  in
  let schemas = List.map (fun (r, sch, _) -> (r.alias, sch)) refs in
  (* Join order: temporaries first (small), standard tables last; within a
     class keep the original order; prefer relations connected to what is
     already placed. *)
  let priority =
    List.stable_sort
      (fun (_, _, k1) (_, _, k2) ->
        match (k1, k2) with
        | `Tmp, `Std -> -1
        | `Std, `Tmp -> 1
        | _ -> 0)
      refs
  in
  let conjs =
    match ast.where with None -> [] | Some w ->
      let rec split = function
        | Expr.Binop (Expr.And, a, b) -> split a @ split b
        | e -> [ e ]
      in
      split w
  in
  let conj_info =
    List.map (fun cnj -> (cnj, aliases_of_expr schemas cnj)) conjs
  in
  let placed = ref [] in
  let pending = ref conj_info in
  let plan = ref None in
  let remaining = ref priority in
  let connected alias =
    List.exists
      (fun (_, als) ->
        match als with
        | Some als ->
          List.mem alias als
          && List.for_all (fun a -> a = alias || List.mem a !placed) als
        | None -> false)
      !pending
  in
  let take_ref () =
    match !remaining with
    | [] -> None
    | l -> (
      match
        List.find_opt (fun (r, _, _) -> connected r.alias) l
      with
      | Some r -> Some r
      | None -> Some (List.hd l))
  in
  let scan_of (r : table_ref) =
    Query.Scan { rel = r.rel; alias = Some r.alias }
  in
  let rec build () =
    match take_ref () with
    | None -> ()
    | Some ((r, _, _) as chosen) ->
      remaining := List.filter (fun (r', _, _) -> r'.alias <> r.alias) !remaining;
      let new_placed = r.alias :: !placed in
      (* Conjuncts that become fully resolvable now. *)
      let here, later =
        List.partition
          (fun (_, als) ->
            match als with
            | Some als -> List.for_all (fun a -> List.mem a new_placed) als
            | None -> false)
          !pending
      in
      pending := later;
      let pred = conj_and (List.map fst here) in
      (plan :=
         match !plan with
         | None -> (
           let base = scan_of r in
           match pred with
           | None -> Some base
           | Some p -> Some (Query.Filter (p, base)))
         | Some lhs -> Some (Query.Join (lhs, scan_of r, pred)));
      placed := new_placed;
      ignore chosen;
      build ()
  in
  build ();
  let plan =
    match !plan with
    | Some p -> p
    | None -> parse_error "empty FROM clause"
  in
  (* Any conjunct that could not be placed (ambiguous unqualified columns)
     goes in a top-level filter; executor-side resolution will complain if
     it is genuinely ambiguous. *)
  let plan =
    match conj_and (List.map fst !pending) with
    | None -> plan
    | Some p -> Query.Filter (p, plan)
  in
  (* Expand stars. *)
  let expand_star qual =
    let expand_one (alias, sch) =
      List.map
        (fun (col : Schema.column) ->
          Item (Query.item (Expr.Col (Some alias, col.Schema.cname))))
        (Schema.columns sch)
    in
    match qual with
    | None -> List.concat_map expand_one schemas
    | Some q -> (
      match List.assoc_opt q schemas with
      | Some sch -> expand_one (q, sch)
      | None -> parse_error "unknown alias %s in %s.*" q q)
  in
  let items =
    List.concat_map
      (function
        | Star -> expand_star None
        | Qual_star q -> expand_star (Some q)
        | Item it -> [ Item it ])
      ast.items
    |> List.map (function Item it -> it | _ -> assert false)
  in
  (* Aggregation? *)
  let has_agg =
    List.exists (fun (it : Query.select_item) -> contains_aggregate it.expr) items
  in
  let plan =
    if (not has_agg) && ast.group_by = [] then
      Query.Project (items, plan)
    else begin
      let keys, aggs =
        List.fold_left
          (fun (keys, aggs) (it : Query.select_item) ->
            match aggregate_of it.expr with
            | Some a ->
              let name =
                match it.alias with
                | Some n -> n
                | None -> Printf.sprintf "agg%d" (List.length aggs)
              in
              (keys, aggs @ [ (a, name) ])
            | None ->
              if contains_aggregate it.expr then
                parse_error
                  "aggregates must be top-level select items (e.g. SUM(x) AS s)"
              else (keys @ [ it ], aggs))
          ([], []) items
      in
      (* Group keys: the explicit GROUP BY list wins; bare non-aggregate
         select items must correspond to it. *)
      let keys =
        if ast.group_by = [] then keys
        else if keys = [] then
          List.map (fun e -> Query.item e) ast.group_by
        else keys
      in
      (* HAVING scopes over the grouped input, but the Group operator
         evaluates it against its own output schema — so [having sum(n) >
         0] would die with "unknown column n".  Rewrite every aggregate in
         the predicate into a reference to the matching aggregate output
         column, appending hidden aggregates (dropped again by a Project
         wrapper) for those not already in the select list. *)
      let all_aggs = ref aggs in
      let hidden = ref false in
      let rec rewrite_having (e : Expr.t) =
        match aggregate_of e with
        | Some a ->
          let name =
            match List.find_opt (fun (a', _) -> a' = a) !all_aggs with
            | Some (_, n) -> n
            | None ->
              let n = Printf.sprintf "having%d" (List.length !all_aggs) in
              all_aggs := !all_aggs @ [ (a, n) ];
              hidden := true;
              n
          in
          Expr.Col (None, name)
        | None -> (
          match e with
          | Expr.Const _ | Expr.Col _ | Expr.Bound _ -> e
          | Expr.Unop (op, a) -> Expr.Unop (op, rewrite_having a)
          | Expr.Binop (op, a, b) ->
            Expr.Binop (op, rewrite_having a, rewrite_having b)
          | Expr.Call (f, args) -> Expr.Call (f, List.map rewrite_having args))
      in
      let having = Option.map rewrite_having ast.having in
      let grouped =
        Query.Group { keys; aggs = !all_aggs; having; input = plan }
      in
      if not !hidden then grouped
      else begin
        let key_names =
          List.mapi
            (fun i (it : Query.select_item) ->
              match it.alias with
              | Some a -> a
              | None -> (
                match it.expr with
                | Expr.Col (_, n) -> n
                | _ -> Printf.sprintf "col%d" i))
            keys
        in
        let visible = key_names @ List.map snd aggs in
        Query.Project
          ( List.map (fun n -> Query.item (Expr.Col (None, n))) visible,
            grouped )
      end
    end
  in
  let plan = if ast.distinct then Query.Distinct plan else plan in
  let plan =
    match ast.order_by with [] -> plan | specs -> Query.Order (specs, plan)
  in
  match ast.limit with None -> plan | Some n -> Query.Limit (n, plan)
