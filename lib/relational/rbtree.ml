(* Persistent red-black tree.  Insertion follows Okasaki (1999); deletion
   follows Kahrs ("Red-black trees with types", JFP 2001).  The deletion
   helpers [balleft]/[balright]/[app] temporarily build trees whose root is
   red-red unbalanced; [balance] repairs them. *)

type color = R | B

type ('k, 'v) t =
  | E
  | T of color * ('k, 'v) t * ('k * 'v) * ('k, 'v) t

let empty = E

let is_empty = function E -> true | T _ -> false

let balance l kv r =
  match (l, kv, r) with
  | T (R, a, x, b), y, T (R, c, z, d) ->
    T (R, T (B, a, x, b), y, T (B, c, z, d))
  | T (R, T (R, a, x, b), y, c), z, d ->
    T (R, T (B, a, x, b), y, T (B, c, z, d))
  | T (R, a, x, T (R, b, y, c)), z, d ->
    T (R, T (B, a, x, b), y, T (B, c, z, d))
  | a, x, T (R, b, y, T (R, c, z, d)) ->
    T (R, T (B, a, x, b), y, T (B, c, z, d))
  | a, x, T (R, T (R, b, y, c), z, d) ->
    T (R, T (B, a, x, b), y, T (B, c, z, d))
  | a, x, b -> T (B, a, x, b)

let blacken = function T (R, a, x, b) -> T (B, a, x, b) | t -> t

let insert ~cmp k v t =
  let rec ins = function
    | E -> T (R, E, (k, v), E)
    | T (B, a, ((ky, _) as y), b) ->
      let c = cmp k ky in
      if c < 0 then balance (ins a) y b
      else if c > 0 then balance a y (ins b)
      else T (B, a, (k, v), b)
    | T (R, a, ((ky, _) as y), b) ->
      let c = cmp k ky in
      if c < 0 then T (R, ins a, y, b)
      else if c > 0 then T (R, a, y, ins b)
      else T (R, a, (k, v), b)
  in
  blacken (ins t)

(* Deletion machinery (Kahrs). *)

let sub1 = function
  | T (B, a, x, b) -> T (R, a, x, b)
  | _ -> invalid_arg "Rbtree: internal invariant violation (sub1)"

let balleft l x r =
  match (l, x, r) with
  | T (R, a, y, b), z, c -> T (R, T (B, a, y, b), z, c)
  | bl, y, T (B, a, z, b) -> balance bl y (T (R, a, z, b))
  | bl, y, T (R, T (B, a, z, b), w, c) ->
    T (R, T (B, bl, y, a), z, balance b w (sub1 c))
  | _ -> invalid_arg "Rbtree: internal invariant violation (balleft)"

let balright l x r =
  match (l, x, r) with
  | a, y, T (R, b, z, c) -> T (R, a, y, T (B, b, z, c))
  | T (B, a, y, b), z, bl -> balance (T (R, a, y, b)) z bl
  | T (R, a, y, T (B, b, z, c)), w, bl ->
    T (R, balance (sub1 a) y b, z, T (B, c, w, bl))
  | _ -> invalid_arg "Rbtree: internal invariant violation (balright)"

let rec app l r =
  match (l, r) with
  | E, x -> x
  | x, E -> x
  | T (R, a, x, b), T (R, c, y, d) -> (
    match app b c with
    | T (R, b', z, c') -> T (R, T (R, a, x, b'), z, T (R, c', y, d))
    | bc -> T (R, a, x, T (R, bc, y, d)))
  | T (B, a, x, b), T (B, c, y, d) -> (
    match app b c with
    | T (R, b', z, c') -> T (R, T (B, a, x, b'), z, T (B, c', y, d))
    | bc -> balleft a x (T (B, bc, y, d)))
  | a, T (R, b, x, c) -> T (R, app a b, x, c)
  | T (R, a, x, b), c -> T (R, a, x, app b c)

let remove ~cmp k t =
  let rec del = function
    | E -> E
    | T (_, a, ((ky, _) as y), b) ->
      let c = cmp k ky in
      if c < 0 then del_from_left a y b
      else if c > 0 then del_from_right a y b
      else app a b
  and del_from_left a y b =
    match a with
    | T (B, _, _, _) -> balleft (del a) y b
    | _ -> T (R, del a, y, b)
  and del_from_right a y b =
    match b with
    | T (B, _, _, _) -> balright a y (del b)
    | _ -> T (R, a, y, del b)
  in
  blacken (del t)

let rec find ~cmp k = function
  | E -> None
  | T (_, a, (ky, v), b) ->
    let c = cmp k ky in
    if c < 0 then find ~cmp k a else if c > 0 then find ~cmp k b else Some v

let update ~cmp k f t =
  match (find ~cmp k t, f (find ~cmp k t)) with
  | _, Some v -> insert ~cmp k v t
  | None, None -> t
  | Some _, None -> remove ~cmp k t

let rec cardinal = function
  | E -> 0
  | T (_, a, _, b) -> 1 + cardinal a + cardinal b

let rec iter f = function
  | E -> ()
  | T (_, a, (k, v), b) ->
    iter f a;
    f k v;
    iter f b

let rec fold f t acc =
  match t with
  | E -> acc
  | T (_, a, (k, v), b) -> fold f b (f k v (fold f a acc))

let range ~cmp ?lo ?hi f t =
  let above_lo k = match lo with None -> true | Some l -> cmp k l >= 0 in
  let below_hi k = match hi with None -> true | Some h -> cmp k h <= 0 in
  let rec visit = function
    | E -> ()
    | T (_, a, (k, v), b) ->
      if above_lo k then visit a;
      if above_lo k && below_hi k then f k v;
      if below_hi k then visit b
  in
  visit t

let rec min_binding = function
  | E -> None
  | T (_, E, kv, _) -> Some kv
  | T (_, a, _, _) -> min_binding a

let rec max_binding = function
  | E -> None
  | T (_, _, kv, E) -> Some kv
  | T (_, _, _, b) -> max_binding b

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let check_invariants ~cmp t =
  let exception Bad of string in
  try
    (match t with
    | T (R, _, _, _) -> raise (Bad "root is red")
    | _ -> ());
    (* Black height and red-red checks; returns black height. *)
    let rec bh = function
      | E -> 1
      | T (c, a, _, b) ->
        (match (c, a, b) with
        | R, T (R, _, _, _), _ | R, _, T (R, _, _, _) ->
          raise (Bad "red node with red child")
        | _ -> ());
        let ha = bh a and hb = bh b in
        if ha <> hb then raise (Bad "unequal black heights");
        ha + if c = B then 1 else 0
    in
    ignore (bh t);
    (* Strictly increasing in-order keys. *)
    let prev = ref None in
    iter
      (fun k _ ->
        (match !prev with
        | Some p when cmp p k >= 0 -> raise (Bad "keys not strictly increasing")
        | _ -> ());
        prev := Some k)
      t;
    Ok ()
  with Bad msg -> Error msg
