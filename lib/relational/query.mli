(** Logical query plans and their executor.

    The planner side of the SQL subset STRIP v2.0 supports: scans,
    selections, theta-joins, projections, grouped aggregation, ordering and
    limits.  Equi-joins pick an access path per execution, in priority
    order: merge join (both inputs are standard-table scans whose equi
    columns are covered by [Ordered] indexes — the two trees stream in key
    order), index join (the right input is a standard-table scan with any
    exactly-covering index — probe per left row), hash join otherwise;
    non-equi predicates fall back to a nested loop.

    [run] compiles each plan value once (cached by physical identity) into
    a tree whose schema/expression resolution and strategy choice are
    memoized, then revalidated per execution by pointer comparison plus the
    scanned tables' {!Table.index_gen} — so repeated rule checks skip all
    name resolution while catalog rebuilds and later [CREATE INDEX]es are
    still picked up.  Caching never changes meter ticks.

    Execution tracks provenance: a result column that is a verbatim copy of
    a standard-table attribute remembers which pointer slot and offset it
    came from, so {!bind} can build bound tables with the paper's §6.1
    pointer representation instead of copying values.  Aggregates, computed
    expressions and values that flow through grouping are materialized, as
    in the paper.

    Work is metered: ["seq_row"] per scanned row, ["index_probe"] per index
    probe, ["merge_step"] per merge-join pointer advance, ["hash_probe"]
    per hash-join probe, ["join_row"] per joined row, ["row_construct"] per
    output row, ["agg_row"] per aggregated input row, ["group_init"] per
    group, ["sort_row"] per sorted row. *)

type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type select_item = {
  expr : Expr.t;
  alias : string option;  (** output column name; derived if absent *)
}

type plan =
  | Scan of { rel : string; alias : string option }
  | Filter of Expr.t * plan
  | Join of plan * plan * Expr.t option
  | Project of select_item list * plan
  | Group of {
      keys : select_item list;
      aggs : (agg * string) list;
      having : Expr.t option;
      input : plan;
    }
  | Order of (Expr.t * order) list * plan
  | Limit of int * plan
  | Distinct of plan
      (** duplicate elimination over whole rows (first occurrence kept,
          with its provenance); ticks ["hash_probe"] per input row *)

val item : ?alias:string -> Expr.t -> select_item

type result
(** Materialized query result with provenance. *)

exception Plan_error of string
(** Planning/typing failures: unknown relation, unresolvable column, ... *)

val run : Catalog.t -> env:Catalog.env -> plan -> result

val physical_index_join : bool ref
(** Testing knob, default [true].  When [false], the index join's physical
    probe is replaced by a hash-build fallback that replays the modeled
    path exactly — same ["index_probe"]/["join_row"] ticks, same output
    order (index postings are newest-first).  Strategy selection is
    unaffected, so all simulated results must be byte-identical; the
    differential tests assert this. *)

val schema_of : Catalog.t -> env:Catalog.env -> plan -> Schema.t
(** Output schema without executing (used by the rule compiler). *)

val result_schema : result -> Schema.t
val row_count : result -> int
val rows : result -> Value.t array list
(** Fully-materialized rows, in result order. *)

val partition : result -> cols:string list -> (Value.t list * result) list
(** Split the result by the values of the named (unqualified) columns,
    preserving provenance; keys appear in first-seen order.  This is the
    Appendix-A partitioning step behind [unique on].
    @raise Plan_error on an unknown column. *)

val bind : ?overrides:(string * Value.t) list -> name:string -> result -> Temp_table.t
(** Materialize a result as a named bound table using pointer provenance
    where possible (§6.1).  [overrides] force named columns to a constant —
    the rule system uses this to stamp [commit_time] at bind time. *)

val explain : ?cat:Catalog.t -> ?env:Catalog.env -> plan -> string
(** Multi-line plan rendering.  With [?cat] (and optionally [?env]), each
    join line is annotated with the access path the executor would choose
    right now: [[merge join via i1, i2]], [[index join via i]],
    [[hash join]] or [[nested loop]]. *)
