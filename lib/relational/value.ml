type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

exception Type_error of string

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"

let ty_of_string s =
  match String.lowercase_ascii s with
  | "bool" | "boolean" -> Some TBool
  | "int" | "integer" -> Some TInt
  | "float" | "real" | "double" -> Some TFloat
  | "string" | "text" | "varchar" | "char" -> Some TStr
  | _ -> None

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let conforms v ty =
  match (v, ty) with
  | Null, _ -> true
  | Bool _, TBool -> true
  | Int _, TInt -> true
  | Int _, TFloat -> true
  | Float _, TFloat -> true
  | Str _, TStr -> true
  | (Bool _ | Int _ | Float _ | Str _), _ -> false

let to_string = function
  | Null -> "NULL"
  | Bool true -> "true"
  | Bool false -> "false"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let type_error op a b =
  raise
    (Type_error
       (Printf.sprintf "%s: incompatible operands %s and %s" op (to_string a)
          (to_string b)))

(* Numeric comparison across Int/Float; used by both [equal] and [compare]. *)
let num_cmp a b =
  match (a, b) with
  | Int x, Int y -> Some (Int.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Float x, Float y -> Some (Float.compare x y)
  | _ -> None

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | (Int _ | Float _), (Int _ | Float _) -> (
    match num_cmp a b with Some c -> c = 0 | None -> false)
  | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match num_cmp a b with
  | Some c -> c
  | None -> (
    let ra = rank a and rb = rank b in
    if ra <> rb then Int.compare ra rb
    else
      match (a, b) with
      | Null, Null -> 0
      | Bool x, Bool y -> Bool.compare x y
      | Str x, Str y -> String.compare x y
      | _ -> assert false)

let cmp_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | _ ->
    if rank a <> rank b then None else Some (compare a b)

let hash = function
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let arith name iop fop a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (iop x y)
  | Int x, Float y -> Float (fop (float_of_int x) y)
  | Float x, Int y -> Float (fop x (float_of_int y))
  | Float x, Float y -> Float (fop x y)
  | _ -> type_error name a b

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b
let div a b = arith "div" ( / ) ( /. ) a b

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> raise (Type_error ("neg: non-numeric operand " ^ to_string v))

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ -> Str (to_string a ^ to_string b)

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> raise (Type_error ("to_float: non-numeric value " ^ to_string v))

let to_int = function
  | Int i -> i
  | v -> raise (Type_error ("to_int: non-integer value " ^ to_string v))

let to_bool = function
  | Bool b -> b
  | v -> raise (Type_error ("to_bool: non-boolean value " ^ to_string v))

let is_null = function Null -> true | _ -> false
