(** Secondary indexes over standard tables.

    Per paper §6.1, tables can be indexed with either a hash structure or a
    red-black tree.  Keys are tuples of column values; several records may
    share a key (multi-map).  Index maintenance is driven by {!Table}: every
    record link/unlink is reflected here.

    Probes tick the ["index_probe"] meter; maintenance ticks
    ["index_update"]. *)

type kind = Hash | Ordered

type t

val create : ?size_hint:int -> name:string -> kind:kind -> cols:int array -> unit -> t
(** [cols] are the key column positions within the table schema, in key
    order.  [size_hint] pre-sizes a hash store (avoiding rehash churn when
    the index is created over an already-populated table); it does not
    affect behaviour. *)

val name : t -> string
val kind : t -> kind
val key_cols : t -> int array

val key_of_record : t -> Record.t -> Value.t list
(** Extract a record's key for this index. *)

val add : t -> Record.t -> unit

val remove : t -> Record.t -> unit
(** Removes this exact record (by rid) from its key's posting list. *)

val lookup : t -> Value.t list -> Record.t list
(** All records with exactly this key, unordered. *)

val range : t -> ?lo:Value.t list -> ?hi:Value.t list -> (Record.t -> unit) -> unit
(** Ordered-index range scan, inclusive bounds; ascending key order.
    @raise Invalid_argument on a hash index. *)

val ordered_entries : t -> (Value.t list * Record.t list) list
(** All (key, postings) pairs in ascending key order, postings oldest-first.
    One ["index_probe"] tick for the whole scan (the merge-join access path).
    @raise Invalid_argument on a hash index. *)

val compare_keys : Value.t list -> Value.t list -> int
(** The key ordering used by ordered indexes (lexicographic
    {!Value.compare}). *)

val cardinal : t -> int
(** Number of indexed records. *)

val distinct_keys : t -> int
