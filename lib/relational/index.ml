let c_index_probe = Meter.counter "index_probe"
let c_index_update = Meter.counter "index_update"

type kind = Hash | Ordered

module Key = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b

  (* Fold the per-value hashes instead of materializing a list of them;
     keys equal under [equal] hash equal because [Value.hash] already
     identifies numerically-equal Int/Float. *)
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 5381 k

  let compare a b =
    let rec loop a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: a', y :: b' ->
        let c = Value.compare x y in
        if c <> 0 then c else loop a' b'
    in
    loop a b
end

module KeyTbl = Hashtbl.Make (Key)

type store =
  | SHash of Record.t list ref KeyTbl.t
  | STree of (Key.t, Record.t list) Rbtree.t ref

type t = {
  iname : string;
  icols : int array;
  store : store;
  mutable count : int;
}

let create ?(size_hint = 256) ~name ~kind ~cols () =
  let store =
    match kind with
    | Hash -> SHash (KeyTbl.create (max 256 size_hint))
    | Ordered -> STree (ref Rbtree.empty)
  in
  { iname = name; icols = cols; store; count = 0 }

let name t = t.iname

let kind t = match t.store with SHash _ -> Hash | STree _ -> Ordered

let key_cols t = t.icols

let key_of_record t (r : Record.t) =
  match t.icols with
  | [| i |] -> [ Record.value r i ]
  | icols ->
    let n = Array.length icols in
    let rec build j =
      if j >= n then [] else Record.value r icols.(j) :: build (j + 1)
    in
    build 0

let cmp = Key.compare

let add t r =
  Meter.tick_c c_index_update;
  let key = key_of_record t r in
  (match t.store with
  | SHash h -> (
    (* posting lists live in mutable cells, so the steady-state add is a
       single probe with no rebinding *)
    match KeyTbl.find_opt h key with
    | Some cell -> cell := r :: !cell
    | None -> KeyTbl.add h key (ref [ r ]))
  | STree tr ->
    let cur = match Rbtree.find ~cmp key !tr with Some l -> l | None -> [] in
    tr := Rbtree.insert ~cmp key (r :: cur) !tr);
  t.count <- t.count + 1

let remove t r =
  Meter.tick_c c_index_update;
  let key = key_of_record t r in
  let drop l =
    let found = ref false in
    let l' =
      List.filter
        (fun (x : Record.t) ->
          if (not !found) && x.rid = r.rid then begin
            found := true;
            false
          end
          else true)
        l
    in
    (!found, l')
  in
  match t.store with
  | SHash h -> (
    match KeyTbl.find_opt h key with
    | None -> ()
    | Some cell ->
      let found, l' = drop !cell in
      if found then t.count <- t.count - 1;
      if l' = [] then KeyTbl.remove h key else cell := l')
  | STree tr -> (
    match Rbtree.find ~cmp key !tr with
    | None -> ()
    | Some l ->
      let found, l' = drop l in
      if found then t.count <- t.count - 1;
      tr :=
        (if l' = [] then Rbtree.remove ~cmp key !tr
         else Rbtree.insert ~cmp key l' !tr))

let lookup t key =
  Meter.tick_c c_index_probe;
  match t.store with
  | SHash h -> (
    match KeyTbl.find_opt h key with Some cell -> !cell | None -> [])
  | STree tr -> (
    match Rbtree.find ~cmp key !tr with Some l -> l | None -> [])

let range t ?lo ?hi f =
  match t.store with
  | SHash _ -> invalid_arg "Index.range: not an ordered index"
  | STree tr ->
    Meter.tick_c c_index_probe;
    Rbtree.range ~cmp ?lo ?hi (fun _ l -> List.iter f (List.rev l)) !tr

let ordered_entries t =
  match t.store with
  | SHash _ -> invalid_arg "Index.ordered_entries: not an ordered index"
  | STree tr ->
    Meter.tick_c c_index_probe;
    let acc = ref [] in
    Rbtree.range ~cmp (fun k l -> acc := (k, List.rev l) :: !acc) !tr;
    List.rev !acc

let compare_keys = Key.compare

let cardinal t = t.count

let distinct_keys t =
  match t.store with
  | SHash h -> KeyTbl.length h
  | STree tr -> Rbtree.cardinal !tr
