type kind = Hash | Ordered

module Key = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b

  let hash k = Hashtbl.hash (List.map Value.hash k)

  let compare a b =
    let rec loop a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: a', y :: b' ->
        let c = Value.compare x y in
        if c <> 0 then c else loop a' b'
    in
    loop a b
end

module KeyTbl = Hashtbl.Make (Key)

type store =
  | SHash of Record.t list KeyTbl.t
  | STree of (Key.t, Record.t list) Rbtree.t ref

type t = {
  iname : string;
  icols : int array;
  store : store;
  mutable count : int;
}

let create ~name ~kind ~cols =
  let store =
    match kind with
    | Hash -> SHash (KeyTbl.create 256)
    | Ordered -> STree (ref Rbtree.empty)
  in
  { iname = name; icols = cols; store; count = 0 }

let name t = t.iname

let kind t = match t.store with SHash _ -> Hash | STree _ -> Ordered

let key_cols t = t.icols

let key_of_record t (r : Record.t) =
  Array.to_list (Array.map (fun i -> Record.value r i) t.icols)

let cmp = Key.compare

let add t r =
  Meter.tick "index_update";
  let key = key_of_record t r in
  (match t.store with
  | SHash h ->
    let cur = match KeyTbl.find_opt h key with Some l -> l | None -> [] in
    KeyTbl.replace h key (r :: cur)
  | STree tr ->
    let cur = match Rbtree.find ~cmp key !tr with Some l -> l | None -> [] in
    tr := Rbtree.insert ~cmp key (r :: cur) !tr);
  t.count <- t.count + 1

let remove t r =
  Meter.tick "index_update";
  let key = key_of_record t r in
  let drop l =
    let found = ref false in
    let l' =
      List.filter
        (fun (x : Record.t) ->
          if (not !found) && x.rid = r.rid then begin
            found := true;
            false
          end
          else true)
        l
    in
    (!found, l')
  in
  match t.store with
  | SHash h -> (
    match KeyTbl.find_opt h key with
    | None -> ()
    | Some l ->
      let found, l' = drop l in
      if found then t.count <- t.count - 1;
      if l' = [] then KeyTbl.remove h key else KeyTbl.replace h key l')
  | STree tr -> (
    match Rbtree.find ~cmp key !tr with
    | None -> ()
    | Some l ->
      let found, l' = drop l in
      if found then t.count <- t.count - 1;
      tr :=
        (if l' = [] then Rbtree.remove ~cmp key !tr
         else Rbtree.insert ~cmp key l' !tr))

let lookup t key =
  Meter.tick "index_probe";
  match t.store with
  | SHash h -> ( match KeyTbl.find_opt h key with Some l -> l | None -> [])
  | STree tr -> (
    match Rbtree.find ~cmp key !tr with Some l -> l | None -> [])

let range t ?lo ?hi f =
  match t.store with
  | SHash _ -> invalid_arg "Index.range: not an ordered index"
  | STree tr ->
    Meter.tick "index_probe";
    Rbtree.range ~cmp ?lo ?hi (fun _ l -> List.iter f (List.rev l)) !tr

let cardinal t = t.count

let distinct_keys t =
  match t.store with
  | SHash h -> KeyTbl.length h
  | STree tr -> Rbtree.cardinal !tr
