type relation =
  | Std of Table.t
  | Tmp of Temp_table.t

type env = (string * Temp_table.t) list

type t = {
  tbl : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* creation order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let add_table t table =
  let n = Table.name table in
  if Hashtbl.mem t.tbl n then
    invalid_arg (Printf.sprintf "Catalog: table %s already exists" n);
  Hashtbl.add t.tbl n table;
  t.order <- n :: t.order

let create_table t ~name ~schema =
  let table = Table.create ~name ~schema in
  add_table t table;
  table

let drop_table t name =
  if not (Hashtbl.mem t.tbl name) then raise Not_found;
  Hashtbl.remove t.tbl name;
  t.order <- List.filter (fun n -> n <> name) t.order

let find_table t name = Hashtbl.find_opt t.tbl name

let table_exn t name =
  match find_table t name with Some tb -> tb | None -> raise Not_found

let resolve t ~env name =
  match List.assoc_opt name env with
  | Some tmp -> Some (Tmp tmp)
  | None -> (
    match find_table t name with Some tb -> Some (Std tb) | None -> None)

let resolve_exn t ~env name =
  match resolve t ~env name with Some r -> r | None -> raise Not_found

let relation_schema = function
  | Std tb -> Table.schema tb
  | Tmp tmp -> Temp_table.schema tmp

let relation_name = function
  | Std tb -> Table.name tb
  | Tmp tmp -> Temp_table.name tmp

let tables t =
  List.rev_map (fun n -> Hashtbl.find t.tbl n) t.order
