let c_predicate_eval = Meter.counter "predicate_eval"

type unop = Neg | Not | Is_null | Is_not_null

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type t =
  | Const of Value.t
  | Col of string option * string
  | Bound of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list

exception Unknown_column of string
exception Unknown_function of string

let col ?qual name = Col (qual, name)
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.Str s)
let bool b = Const (Value.Bool b)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Neq, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)

(* Scalar function registry. *)

type entry = { fn : Value.t list -> Value.t; ret : Value.ty option }

let funs : (string, entry) Hashtbl.t = Hashtbl.create 16

let register_fun name ?ret fn =
  Hashtbl.replace funs (String.lowercase_ascii name) { fn; ret }

let find_entry name = Hashtbl.find_opt funs (String.lowercase_ascii name)

let find_fun name = Option.map (fun e -> e.fn) (find_entry name)

let () =
  let num1 name f = function
    | [ v ] when not (Value.is_null v) -> Value.Float (f (Value.to_float v))
    | [ Value.Null ] -> Value.Null
    | _ -> raise (Value.Type_error (name ^ ": expects one numeric argument"))
  in
  register_fun "abs" ~ret:Value.TFloat (num1 "abs" Float.abs);
  register_fun "sqrt" ~ret:Value.TFloat (num1 "sqrt" Float.sqrt);
  register_fun "ln" ~ret:Value.TFloat (num1 "ln" Float.log);
  register_fun "exp" ~ret:Value.TFloat (num1 "exp" Float.exp);
  register_fun "round" ~ret:Value.TFloat (num1 "round" Float.round);
  register_fun "floor" ~ret:Value.TFloat (num1 "floor" Float.floor)

let name_of (qual, name) =
  match qual with Some q -> q ^ "." ^ name | None -> name

let rec resolve schema e =
  match e with
  | Const _ | Bound _ -> e
  | Col (qual, name) -> (
    match Schema.find schema ?qual name with
    | Some i -> Bound i
    | None -> raise (Unknown_column (name_of (qual, name))))
  | Unop (op, a) -> Unop (op, resolve schema a)
  | Binop (op, a, b) -> Binop (op, resolve schema a, resolve schema b)
  | Call (f, args) -> Call (f, List.map (resolve schema) args)

(* SQL three-valued comparison: Null if either side is Null. *)
let cmp3 keep a b =
  match Value.cmp_sql a b with
  | None -> Value.Null
  | Some c -> Value.Bool (keep c)

let rec eval_raw e row =
  match e with
  | Const v -> v
  | Bound i -> row.(i)
  | Col (qual, name) -> raise (Unknown_column (name_of (qual, name)))
  | Unop (op, a) -> (
    let va = eval_raw a row in
    match op with
    | Neg -> Value.neg va
    | Not -> (
      match va with
      | Value.Null -> Value.Null
      | Value.Bool b -> Value.Bool (not b)
      | v -> raise (Value.Type_error ("NOT: non-boolean " ^ Value.to_string v)))
    | Is_null -> Value.Bool (Value.is_null va)
    | Is_not_null -> Value.Bool (not (Value.is_null va)))
  | Binop (And, a, b) -> (
    (* Kleene AND with short-circuit on false. *)
    match eval_raw a row with
    | Value.Bool false -> Value.Bool false
    | Value.Bool true -> (
      match eval_raw b row with
      | Value.Bool _ as v -> v
      | Value.Null -> Value.Null
      | v -> raise (Value.Type_error ("AND: non-boolean " ^ Value.to_string v)))
    | Value.Null -> (
      match eval_raw b row with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true | Value.Null -> Value.Null
      | v -> raise (Value.Type_error ("AND: non-boolean " ^ Value.to_string v)))
    | v -> raise (Value.Type_error ("AND: non-boolean " ^ Value.to_string v)))
  | Binop (Or, a, b) -> (
    match eval_raw a row with
    | Value.Bool true -> Value.Bool true
    | Value.Bool false -> (
      match eval_raw b row with
      | Value.Bool _ as v -> v
      | Value.Null -> Value.Null
      | v -> raise (Value.Type_error ("OR: non-boolean " ^ Value.to_string v)))
    | Value.Null -> (
      match eval_raw b row with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false | Value.Null -> Value.Null
      | v -> raise (Value.Type_error ("OR: non-boolean " ^ Value.to_string v)))
    | v -> raise (Value.Type_error ("OR: non-boolean " ^ Value.to_string v)))
  | Binop (op, a, b) -> (
    let va = eval_raw a row and vb = eval_raw b row in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb
    | Mod -> (
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int x, Value.Int y -> Value.Int (x mod y)
      | _ ->
        raise
          (Value.Type_error
             (Printf.sprintf "MOD: non-integer operands %s, %s"
                (Value.to_string va) (Value.to_string vb))))
    | Eq -> cmp3 (fun c -> c = 0) va vb
    | Neq -> cmp3 (fun c -> c <> 0) va vb
    | Lt -> cmp3 (fun c -> c < 0) va vb
    | Le -> cmp3 (fun c -> c <= 0) va vb
    | Gt -> cmp3 (fun c -> c > 0) va vb
    | Ge -> cmp3 (fun c -> c >= 0) va vb
    | Concat -> Value.concat va vb
    | And | Or -> assert false)
  | Call (f, args) -> (
    match find_entry f with
    | None -> raise (Unknown_function f)
    | Some e ->
      let vs = List.map (fun a -> eval_raw a row) args in
      e.fn vs)

let eval e row =
  Meter.tick_c c_predicate_eval;
  eval_raw e row

let eval_pred e row =
  match eval e row with
  | Value.Bool b -> b
  | Value.Null -> false
  | v ->
    raise (Value.Type_error ("predicate: non-boolean " ^ Value.to_string v))

let columns_used e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ | Bound _ -> ()
    | Col (q, n) ->
      let key = name_of (q, n) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := (q, n) :: !acc
      end
    | Unop (_, a) -> go a
    | Binop (_, a, b) ->
      go a;
      go b
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !acc

let rec infer_type schema e =
  match e with
  | Const v -> Value.type_of v
  | Col (qual, name) ->
    Option.map
      (fun i -> (Schema.col schema i).Schema.cty)
      (Schema.find schema ?qual name)
  | Bound i ->
    if i < Schema.arity schema then Some (Schema.col schema i).Schema.cty
    else None
  | Unop (Neg, a) -> infer_type schema a
  | Unop ((Not | Is_null | Is_not_null), _) -> Some Value.TBool
  | Binop ((Add | Sub | Mul | Div), a, b) -> (
    match (infer_type schema a, infer_type schema b) with
    | Some Value.TInt, Some Value.TInt -> Some Value.TInt
    | Some (Value.TInt | Value.TFloat), Some (Value.TInt | Value.TFloat) ->
      Some Value.TFloat
    | _ -> None)
  | Binop (Mod, _, _) -> Some Value.TInt
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) -> Some Value.TBool
  | Binop (Concat, _, _) -> Some Value.TStr
  | Call (f, _) -> (
    match find_entry f with Some e -> e.ret | None -> None)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"
  | Concat -> "||"

let rec pp ppf = function
  | Const v -> (
    match v with
    | Value.Str s -> Format.fprintf ppf "'%s'" s
    | v -> Value.pp ppf v)
  | Col (q, n) -> Format.pp_print_string ppf (name_of (q, n))
  | Bound i -> Format.fprintf ppf "$%d" i
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Unop (Not, a) -> Format.fprintf ppf "(not %a)" pp a
  | Unop (Is_null, a) -> Format.fprintf ppf "(%a is null)" pp a
  | Unop (Is_not_null, a) -> Format.fprintf ppf "(%a is not null)" pp a
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      args
