(** Temporary tables: intermediate results, transition tables, bound tables
    (paper §6.1).

    A temporary tuple does not copy attribute values.  It stores one pointer
    per standard record that contributes at least one attribute, plus the
    materialized values of aggregate/computed/timestamp columns, which exist
    nowhere else.  A per-table static map records, for every column, whether
    to follow pointer slot [s] at offset [o] or to read materialized cell
    [m].

    Every stored pointer pins its record ({!Record.pin}), so records retired
    by later updates remain readable until the temporary table is itself
    retired — this is exactly the mechanism that lets a rule action see the
    database state of condition-evaluation time. *)

type provenance =
  | From_record of int * int
      (** [(slot, offset)]: follow source pointer [slot], read attribute
          [offset] of that record *)
  | Computed of int  (** read materialized cell [idx] *)

type t

val create : name:string -> schema:Schema.t -> nslots:int -> prov:provenance array -> t
(** [prov] must have one entry per schema column; materialized cells must be
    numbered densely from 0.  @raise Invalid_argument otherwise. *)

val create_materialized : name:string -> schema:Schema.t -> t
(** Convenience: no pointer slots, every column materialized. *)

val name : t -> string
val schema : t -> Schema.t
val cardinal : t -> int
val slots : t -> int
val static_map : t -> provenance array

val same_static_map : t -> provenance array -> bool
(** Does this table's static map equal [prov]?  Physical equality is checked
    first, so layouts shared via {!Strip_rules} transition caching compare in
    O(1). *)

type row
(** One temporary tuple. *)

val reserve : t -> int -> unit
(** Pre-grow the backing arenas so the next [n] appends don't reallocate.
    Purely a capacity hint; contents and metering are unaffected. *)

val append : t -> srcs:Record.t array -> mats:Value.t array -> unit
(** Add a tuple; pins each source record.
    @raise Invalid_argument on arity mismatch with the static map. *)

val append_values : t -> Value.t array -> unit
(** Add a fully-materialized tuple (table must have zero slots). *)

val get : t -> row -> int -> Value.t
(** Column value, through the static map. *)

val row_values : t -> row -> Value.t array
(** All column values of a tuple, materialized into a fresh array. *)

val row_source : t -> row -> int -> Record.t
(** [row_source t row slot]: the record in pointer slot [slot] of this
    tuple.  (Tuples live in their table's arena, so reading a slot needs
    the table.) *)

val iter : t -> (row -> unit) -> unit
(** Iterate tuples in insertion order. *)

val fold : t -> init:'a -> f:('a -> row -> 'a) -> 'a

val absorb : t -> t -> unit
(** [absorb dst src] moves every tuple of [src] to the end of [dst] — the
    unique-transaction merge of paper §2.  When the layouts (schema and
    static map) match, pins transfer with the tuples; when [dst] is fully
    materialized (no pointer slots, as in a TCB rebuilt by crash recovery)
    and only the column schemas match, the rows are copied by value and
    [src]'s pins are released.  Either way [src] is emptied (but not
    retired).
    @raise Invalid_argument on any other layout mismatch. *)

val retire : t -> unit
(** Drop the table's contents, unpinning every source record.  Idempotent.
    Called when the task owning a bound table finishes (§6.3). *)

val retired : t -> bool

val to_rows : t -> Value.t array list
(** Materialized snapshot, insertion order. *)
