type lock_mode = Shared | Exclusive

type hooks = {
  lock_table : Table.t -> lock_mode -> unit;
  lock_record : Table.t -> Record.t -> lock_mode -> unit;
  on_insert : Table.t -> Record.t -> unit;
  on_update : Table.t -> old_rec:Record.t -> new_rec:Record.t -> unit;
  on_delete : Table.t -> Record.t -> unit;
}

let no_hooks =
  {
    lock_table = (fun _ _ -> ());
    lock_record = (fun _ _ _ -> ());
    on_insert = (fun _ _ -> ());
    on_update = (fun _ ~old_rec:_ ~new_rec:_ -> ());
    on_delete = (fun _ _ -> ());
  }

type exec_result =
  | Rows of Query.result
  | Count of int
  | Unit

let resolver cat ~env name =
  match Catalog.resolve cat ~env name with
  | Some (Catalog.Std tb) -> Some (Table.schema tb, `Std)
  | Some (Catalog.Tmp tmp) -> Some (Temp_table.schema tmp, `Tmp)
  | None -> None

let plan_select cat ~env ast =
  Sql_parser.plan_select ~resolve_rel:(resolver cat ~env) ast

(* ------------------------------------------------------------------ *)
(* WHERE analysis for the cursor path: find an indexed equality prefix. *)

let rec conjuncts = function
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Split a resolved predicate into [col = constant] bindings and the
   residual conjuncts. *)
let const_bindings pred =
  let binds = ref [] and residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | Expr.Binop (Expr.Eq, Expr.Bound i, Expr.Const v)
      | Expr.Binop (Expr.Eq, Expr.Const v, Expr.Bound i) ->
        binds := (i, v) :: !binds
      | c -> residual := c :: !residual)
    (conjuncts pred);
  (List.rev !binds, List.rev !residual)

(* Choose an index whose key columns are all pinned by constants. *)
let pick_index tb binds =
  let pinned i = List.assoc_opt i binds in
  let usable idx =
    let cols = Index.key_cols idx in
    let rec loop k acc =
      if k >= Array.length cols then Some (List.rev acc)
      else
        match pinned cols.(k) with
        | Some v -> loop (k + 1) (v :: acc)
        | None -> None
    in
    loop 0 []
  in
  let rec first = function
    | [] -> None
    | idx :: rest -> (
      match usable idx with
      | Some key -> Some (idx, key)
      | None -> first rest)
  in
  first (Table.indexes tb)

(* Range bounds per column: [col >= / > lo] and [col <= / < hi] conjuncts
   (strict bounds widen to inclusive; the residual predicate re-checks). *)
let range_bounds pred =
  let lo = Hashtbl.create 4 and hi = Hashtbl.create 4 in
  let tighten tbl better i v =
    match Hashtbl.find_opt tbl i with
    | Some v0 when better (Value.compare v v0) -> Hashtbl.replace tbl i v
    | Some _ -> ()
    | None -> Hashtbl.replace tbl i v
  in
  List.iter
    (fun c ->
      match c with
      | Expr.Binop ((Expr.Ge | Expr.Gt), Expr.Bound i, Expr.Const v)
      | Expr.Binop ((Expr.Le | Expr.Lt), Expr.Const v, Expr.Bound i) ->
        tighten lo (fun c -> c > 0) i v
      | Expr.Binop ((Expr.Le | Expr.Lt), Expr.Bound i, Expr.Const v)
      | Expr.Binop ((Expr.Ge | Expr.Gt), Expr.Const v, Expr.Bound i) ->
        tighten hi (fun c -> c < 0) i v
      | _ -> ())
    (conjuncts pred);
  (lo, hi)

(* A single-column ordered index over a column with at least one range
   bound. *)
let pick_range_index tb pred =
  let lo, hi = range_bounds pred in
  let usable idx =
    match (Index.kind idx, Index.key_cols idx) with
    | Index.Ordered, [| i |] -> (
      match (Hashtbl.find_opt lo i, Hashtbl.find_opt hi i) with
      | None, None -> None
      | l, h ->
        Some
          ( idx,
            Option.map (fun v -> [ v ]) l,
            Option.map (fun v -> [ v ]) h ))
    | _ -> None
  in
  List.find_map usable (Table.indexes tb)

(* Open the cheapest cursor for a WHERE predicate; returns the cursor and
   the predicate still to check per row (None = accept all). *)
let open_matching_cursor tb where =
  let schema = Schema.requalify (Table.name tb) (Table.schema tb) in
  match where with
  | None -> (Table.open_cursor tb, None)
  | Some w -> (
    let w =
      try Expr.resolve schema w
      with Expr.Unknown_column c ->
        raise (Query.Plan_error (Printf.sprintf "unknown column %s" c))
    in
    let binds, _residual = const_bindings w in
    (* Keep the full predicate as the residual check in every indexed case:
       re-testing the pinned columns is cheap and keeps the logic obviously
       correct. *)
    match pick_index tb binds with
    | Some (idx, key) -> (Table.open_index_cursor tb idx key, Some w)
    | None -> (
      match pick_range_index tb w with
      | Some (idx, lo, hi) ->
        (Table.open_range_cursor tb idx ?lo ?hi (), Some w)
      | None -> (Table.open_cursor tb, Some w)))

let fold_matching ?(hooks = no_hooks) tb where ~mode f =
  (* Table-level lock: scans take S, and writers also take S — intention
     style.  A writer's exclusive claims are the per-record X locks its
     callback acquires on each matched row, so updates to disjoint records
     can overlap under the multi-server engine instead of serializing on a
     whole-table X lock.  INSERT keeps its table X lock (its appends have
     no pre-existing records to lock). *)
  ignore (mode : lock_mode);
  hooks.lock_table tb Shared;
  let cursor, pred = open_matching_cursor tb where in
  let n = ref 0 in
  let rec loop () =
    match Table.fetch cursor with
    | None -> ()
    | Some r ->
      let keep =
        match pred with
        | None -> true
        | Some p -> Expr.eval_pred p r.Record.values
      in
      if keep then begin
        incr n;
        f cursor r
      end;
      loop ()
  in
  loop ();
  Table.close_cursor cursor;
  !n

(* ------------------------------------------------------------------ *)

let table_of cat name =
  match Catalog.find_table cat name with
  | Some tb -> tb
  | None ->
    raise (Query.Plan_error (Printf.sprintf "unknown table %s" name))

let exec ?(hooks = no_hooks) ?on_view cat ~env (st : Sql_parser.statement) =
  match st with
  | Sql_parser.Create_table { name; cols } ->
    let schema = Schema.of_list cols in
    ignore (Catalog.create_table cat ~name ~schema);
    Unit
  | Sql_parser.Create_index { iname; table; cols; kind } ->
    let tb = table_of cat table in
    ignore (Table.create_index tb ~name:iname ~kind ~cols);
    Unit
  | Sql_parser.Create_view { name; select } ->
    let plan = plan_select cat ~env select in
    let result = Query.run cat ~env plan in
    let schema = Schema.unqualify (Query.result_schema result) in
    let tb = Catalog.create_table cat ~name ~schema in
    List.iter
      (fun row ->
        let r = Table.insert tb row in
        hooks.on_insert tb r)
      (Query.rows result);
    (match on_view with Some f -> f name select | None -> ());
    Unit
  | Sql_parser.Insert { table; columns; values } ->
    let tb = table_of cat table in
    hooks.lock_table tb Exclusive;
    let schema = Table.schema tb in
    let arity = Schema.arity schema in
    let positions =
      match columns with
      | None -> Array.init arity (fun i -> i)
      | Some cols ->
        Array.of_list
          (List.map
             (fun c ->
               match Schema.find schema c with
               | Some i -> i
               | None ->
                 raise
                   (Query.Plan_error
                      (Printf.sprintf "unknown column %s in INSERT" c)))
             cols)
    in
    List.iter
      (fun exprs ->
        if List.length exprs <> Array.length positions then
          raise
            (Query.Plan_error
               "INSERT row arity does not match the column list");
        let row = Array.make arity Value.Null in
        List.iteri
          (fun k e -> row.(positions.(k)) <- Expr.eval e [||])
          exprs;
        let r = Table.insert tb row in
        hooks.on_insert tb r)
      values;
    Count (List.length values)
  | Sql_parser.Update { table; sets; where } ->
    let tb = table_of cat table in
    let schema = Table.schema tb in
    let qschema = Schema.requalify (Table.name tb) schema in
    let resolved_sets =
      List.map
        (fun (col, op, e) ->
          let pos =
            match Schema.find schema col with
            | Some i -> i
            | None ->
              raise
                (Query.Plan_error
                   (Printf.sprintf "unknown column %s in UPDATE SET" col))
          in
          let e =
            try Expr.resolve qschema e
            with Expr.Unknown_column c ->
              raise (Query.Plan_error (Printf.sprintf "unknown column %s" c))
          in
          (pos, op, e))
        sets
    in
    let n =
      fold_matching ~hooks tb where ~mode:Exclusive (fun cursor r ->
          hooks.lock_record tb r Exclusive;
          let row = Array.copy r.Record.values in
          List.iter
            (fun (pos, op, e) ->
              let v = Expr.eval e r.Record.values in
              row.(pos) <-
                (match (op : Sql_parser.set_op) with
                | Sql_parser.Assign -> v
                | Sql_parser.Increment -> Value.add r.Record.values.(pos) v))
            resolved_sets;
          let r' = Table.cursor_update cursor row in
          hooks.on_update tb ~old_rec:r ~new_rec:r')
    in
    Count n
  | Sql_parser.Delete { table; where } ->
    let tb = table_of cat table in
    let n =
      fold_matching ~hooks tb where ~mode:Exclusive (fun cursor r ->
          hooks.lock_record tb r Exclusive;
          Table.cursor_delete cursor;
          hooks.on_delete tb r)
    in
    Count n
  | Sql_parser.Drop_table name ->
    (try Catalog.drop_table cat name
     with Not_found ->
       raise (Query.Plan_error (Printf.sprintf "unknown table %s" name)));
    Unit
  | Sql_parser.Drop_index { table; iname } ->
    let tb = table_of cat table in
    (match Table.find_index tb iname with
    | Some _ ->
      raise
        (Query.Plan_error
           "DROP INDEX is not supported by this engine revision (indexes \
            live for the table's lifetime)")
    | None ->
      raise (Query.Plan_error (Printf.sprintf "unknown index %s" iname)))
  | Sql_parser.Select ast ->
    let plan = plan_select cat ~env ast in
    Rows (Query.run cat ~env plan)
  | Sql_parser.Explain ast ->
    let plan = plan_select cat ~env ast in
    let tmp =
      Temp_table.create_materialized ~name:"explain"
        ~schema:(Schema.of_list [ ("plan", Value.TStr) ])
    in
    String.split_on_char '\n' (Query.explain plan)
    |> List.iter (fun line ->
           if String.trim line <> "" then
             Temp_table.append_values tmp [| Value.Str line |]);
    let lines_cat = Catalog.create () in
    Rows
      (Query.run lines_cat
         ~env:[ ("explain", tmp) ]
         (Query.Scan { rel = "explain"; alias = None }))

let exec_string ?hooks ?on_view cat ~env s =
  exec ?hooks ?on_view cat ~env (Sql_parser.parse_statement s)

let query ?hooks cat ~env s =
  ignore hooks;
  let ast = Sql_parser.parse_select_string s in
  let plan = plan_select cat ~env ast in
  Query.run cat ~env plan
