(** Analysis of materialized-view definitions for rule generation.

    Implements the paper's §8 future-work direction: "in [CW91], the authors
    show how rules can be automatically derived to maintain a certain class
    of relational views ... we are confident that this work can be extended
    to take advantage of unique transactions as well."

    Supported class: aggregate views of the shape

    {[ SELECT k1, ..., kn, AGG1(e1) AS a1, ...
       FROM driver, dim1, ..., dimm
       WHERE <conjunctive equi-joins and filters>
       GROUP BY k1, ..., kn ]}

    with [AGG] one of SUM, COUNT, COUNT-star (AVG can be stored as SUM+COUNT),
    maintained with respect to changes of one {e driver} table; the
    dimension tables are assumed static (the PTA's [comps_list] pattern).
    Group keys must be plain columns; aggregate arguments may be arbitrary
    scalar expressions over the joined row. *)

type agg_kind = Agg_sum | Agg_count | Agg_count_star

type agg_col = {
  a_name : string;  (** output column in the view *)
  a_kind : agg_kind;
  a_expr : Strip_relational.Expr.t option;  (** [None] for COUNT star *)
}

type t = {
  view : string;
  driver : string;  (** the table whose changes the rules react to *)
  driver_alias : string;  (** how the FROM clause names it *)
  key_cols : (string * Strip_relational.Expr.t) list;
      (** (output name, source column expr) for each group key *)
  aggs : agg_col list;
  others : Strip_relational.Sql_parser.table_ref list;  (** dimension tables *)
  where : Strip_relational.Expr.t option;
  driver_cols_used : string list;
      (** driver columns the view reads — the [when updated ...] list *)
}

exception Unsupported of string

val analyze :
  Strip_relational.Sql_parser.select_ast ->
  view:string ->
  driver:string ->
  driver_columns:string list ->
  t
(** [driver_columns] is the driver table's column list, used to attribute
    unqualified references.
    @raise Unsupported when the view is outside the maintainable class
    (missing driver in FROM, non-column group keys, disallowed
    aggregates, ...). *)

val requalify_driver : t -> as_:string -> Strip_relational.Expr.t -> Strip_relational.Expr.t
(** Rewrite references to the driver table (by alias or unqualified driver
    columns) to qualifier [as_] ("new"/"old"/"inserted"/"deleted") — used
    when splicing view expressions into rule condition queries. *)
