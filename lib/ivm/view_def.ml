open Strip_relational

type agg_kind = Agg_sum | Agg_count | Agg_count_star

type agg_col = {
  a_name : string;
  a_kind : agg_kind;
  a_expr : Expr.t option;
}

type t = {
  view : string;
  driver : string;
  driver_alias : string;
  key_cols : (string * Expr.t) list;
  aggs : agg_col list;
  others : Sql_parser.table_ref list;
  where : Expr.t option;
  driver_cols_used : string list;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let analyze (ast : Sql_parser.select_ast) ~view ~driver ~driver_columns =
  let driver_ref =
    match
      List.find_opt (fun (r : Sql_parser.table_ref) -> r.rel = driver) ast.from
    with
    | Some r -> r
    | None -> unsupported "driver table %s does not appear in the view's FROM" driver
  in
  let others =
    List.filter (fun (r : Sql_parser.table_ref) -> r.rel <> driver) ast.from
  in
  if ast.having <> None then unsupported "HAVING is not maintainable";
  if ast.order_by <> [] || ast.limit <> None then
    unsupported "ORDER BY / LIMIT do not define a maintainable view";
  (* Classify the select list. *)
  let keys = ref [] and aggs = ref [] in
  List.iter
    (fun item ->
      match item with
      | Sql_parser.Star | Sql_parser.Qual_star _ ->
        unsupported "SELECT * is not supported in maintainable views"
      | Sql_parser.Item it -> (
        let name i =
          match it.Query.alias with
          | Some a -> a
          | None -> (
            match it.Query.expr with
            | Expr.Col (_, n) -> n
            | _ -> Printf.sprintf "col%d" i)
        in
        match it.Query.expr with
        | Expr.Call ("sum", [ e ]) ->
          aggs :=
            { a_name = name 0; a_kind = Agg_sum; a_expr = Some e } :: !aggs
        | Expr.Call ("count", [ e ]) ->
          aggs :=
            { a_name = name 0; a_kind = Agg_count; a_expr = Some e } :: !aggs
        | Expr.Call ("count_star", []) ->
          aggs :=
            { a_name = name 0; a_kind = Agg_count_star; a_expr = None } :: !aggs
        | Expr.Call (f, _) when List.mem f [ "avg"; "min"; "max" ] ->
          unsupported
            "%s is not self-maintainable under updates (store SUM and COUNT \
             instead)"
            f
        | Expr.Col _ as e -> keys := (name 0, e) :: !keys
        | _ ->
          unsupported "group keys must be plain columns in maintainable views"))
    ast.items;
  let keys = List.rev !keys and aggs = List.rev !aggs in
  if aggs = [] then unsupported "view has no aggregate column";
  if keys = [] && ast.group_by <> [] then
    unsupported "GROUP BY keys must appear in the select list";
  (* Driver columns referenced anywhere in the view. *)
  let used = ref [] in
  let note (qual, col) =
    let is_driver =
      match qual with
      | Some q -> q = driver_ref.alias || q = driver
      | None -> List.mem col driver_columns
    in
    if is_driver && not (List.mem col !used) then used := col :: !used
  in
  let scan_expr e = List.iter note (Expr.columns_used e) in
  List.iter (fun (_, e) -> scan_expr e) keys;
  List.iter
    (fun a -> match a.a_expr with Some e -> scan_expr e | None -> ())
    aggs;
  (match ast.where with Some w -> scan_expr w | None -> ());
  {
    view;
    driver;
    driver_alias = driver_ref.alias;
    key_cols = keys;
    aggs;
    others;
    where = ast.where;
    driver_cols_used = List.rev !used;
  }

let requalify_driver t ~as_ e =
  let driver_cols =
    (* columns we know belong to the driver (from the analysis) plus any
       qualified reference *)
    t.driver_cols_used
  in
  let rec go e =
    match e with
    | Expr.Col (Some q, col) when q = t.driver_alias || q = t.driver ->
      Expr.Col (Some as_, col)
    | Expr.Col (None, col) when List.mem col driver_cols ->
      Expr.Col (Some as_, col)
    | Expr.Col _ | Expr.Const _ | Expr.Bound _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, go a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Call (f, args) -> Expr.Call (f, List.map go args)
  in
  go e
