open Strip_relational
open Strip_core

type stats = {
  update_rate : float;
  fanout_per_update : float;
  n_groups : int;
  staleness_bound : float;
}

type advice = {
  uniqueness : Rule_ast.uniqueness;
  delay : float;
  reason : string;
}

let advise (v : View_def.t) stats =
  if stats.update_rate <= 0.0 then
    {
      uniqueness = Rule_ast.Not_unique;
      delay = 0.0;
      reason = "no update traffic: batching buys nothing";
    }
  else begin
    (* Expected changes landing on one group per second. *)
    let group_rate =
      stats.update_rate *. stats.fanout_per_update
      /. float_of_int (max 1 stats.n_groups)
    in
    (* Size the window so a group batch collects ~3 changes, within the
       staleness bound and the paper's diminishing-returns knee (~3 s). *)
    let window target_rate =
      Float.min stats.staleness_bound
        (Float.max 0.5 (Float.min 3.0 (3.0 /. Float.max 1e-6 target_rate)))
    in
    if stats.fanout_per_update >= 4.0 && group_rate >= 0.2 then
      {
        uniqueness = Rule_ast.Unique_on (List.map fst v.View_def.key_cols);
        delay = window group_rate;
        reason =
          Printf.sprintf
            "high sharing (%.1f derived rows/change, %.2f changes/group/s): \
             batch per group key — just enough to exploit the redundancy"
            stats.fanout_per_update group_rate;
      }
    else if stats.update_rate >= 5.0 then
      {
        uniqueness = Rule_ast.Unique;
        delay = window stats.update_rate;
        reason =
          Printf.sprintf
            "low per-group sharing but a hot driver (%.1f changes/s): \
             coarse batching amortizes task overhead"
            stats.update_rate;
      }
    else
      {
        uniqueness = Rule_ast.Not_unique;
        delay = 0.0;
        reason =
          Printf.sprintf
            "cold driver (%.2f changes/s) and little sharing: immediate \
             maintenance keeps the view fresh for free"
            stats.update_rate;
      }
  end

let measure_stats db (v : View_def.t) ~update_rate ~staleness_bound =
  let was = !Meter.enabled in
  Meter.enabled := false;
  Fun.protect
    ~finally:(fun () -> Meter.enabled := was)
    (fun () ->
      let cat = Strip_db.catalog db in
      let view_tb = Catalog.table_exn cat v.View_def.view in
      let driver_tb = Catalog.table_exn cat v.View_def.driver in
      let n_groups = Table.cardinal view_tb in
      (* Fan-out per driver change ~ derived rows per driver row: the join
         of driver with the dimension tables has one row per (driver row,
         matching dim rows); approximate with |dims join| / |driver| using
         the largest dimension table linked to the driver. *)
      let dim_rows =
        List.fold_left
          (fun acc (r : Sql_parser.table_ref) ->
            match Catalog.find_table cat r.rel with
            | Some tb -> max acc (Table.cardinal tb)
            | None -> acc)
          0 v.View_def.others
      in
      let fanout =
        if v.View_def.others = [] then 1.0
        else
          float_of_int (max 1 dim_rows)
          /. float_of_int (max 1 (Table.cardinal driver_tb))
      in
      { update_rate; fanout_per_update = fanout; n_groups; staleness_bound })
