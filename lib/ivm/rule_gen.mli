(** Automatic generation of maintenance rules from view definitions.

    Given a materialized view in the {!View_def} class, installs STRIP
    rules (and their user functions) that maintain it incrementally under
    inserts, deletes, and updates of the driver table — the [CW91]
    derivation extended with unique transactions exactly as the paper's
    conclusion proposes.

    Three rules are generated (sharing one machinery but distinct user
    functions, since their delta layouts differ):

    - {b update}: condition joins [new]/[old] with the dimension tables
      and binds per-row aggregate deltas [(e(new) − e(old))]; the action
      folds them per group and applies [agg += δ];
    - {b insert}: binds [e(inserted)] deltas; the action upserts groups
      (a COUNT column, when present, tracks group cardinality);
    - {b delete}: binds [e(deleted)] deltas; the action decrements and
      removes groups whose COUNT reaches zero.

    [COUNT(e)] is treated as [COUNT( * )] for update deltas (i.e. the
    aggregate argument is assumed non-null), matching the common
    self-maintainability restriction. *)

val install :
  Strip_core.Strip_db.t ->
  view:string ->
  driver:string ->
  ?uniqueness:Strip_core.Rule_ast.uniqueness ->
  ?delay:float ->
  unit ->
  View_def.t
(** Analyze the view (its definition must have been captured by a
    [CREATE VIEW] through {!Strip_core.Strip_db.exec}), ensure an index on
    the view's group keys, register the user functions and create the
    rules [ivm_<view>_upd/ins/del].  Default: no uniqueness, no delay —
    pass the {!Advisor}'s advice for batched maintenance.
    @raise View_def.Unsupported on views outside the class
    @raise Not_found if the view or driver is unknown *)

val rule_names : view:string -> string list
(** The names of the generated rules, for [drop_rule]. *)
