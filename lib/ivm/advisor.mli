(** Batching advice — the paper's closing proposal made executable.

    "By maintaining statistics such as join selectivities and how often
    tables are updated, it should be possible for a materialized view
    manager to derive not just the rules to maintain a view but the unit
    of batching and delay window size as well." (§8)

    The advice encodes the paper's two experimental rules of thumb (§8):

    + the unit of batching should be just large enough to exploit the
      redundancy in the recomputation but no larger — high fan-in views
      (many driver rows per group) batch per group key; high fan-out
      views (each driver row feeding many derived rows) batch per driver
      key; views with little sharing stay unbatched;
    + the delay window starts small and is sized so an expected handful of
      changes share a window, capped by the staleness bound the
      application tolerates. *)

type stats = {
  update_rate : float;  (** driver changes per second *)
  fanout_per_update : float;  (** derived rows touched per driver change *)
  n_groups : int;  (** distinct group keys in the view *)
  staleness_bound : float;  (** max acceptable seconds of view staleness *)
}

type advice = {
  uniqueness : Strip_core.Rule_ast.uniqueness;
  delay : float;
  reason : string;  (** human-readable justification *)
}

val advise : View_def.t -> stats -> advice

val measure_stats :
  Strip_core.Strip_db.t ->
  View_def.t ->
  update_rate:float ->
  staleness_bound:float ->
  stats
(** Compute [fanout_per_update] and [n_groups] from the current table
    contents (unmetered); the update rate and staleness bound come from
    the application. *)
