open Strip_relational
open Strip_core

let c_close_cursor = Meter.counter "close_cursor"
let c_fetch_cursor = Meter.counter "fetch_cursor"
let c_open_cursor = Meter.counter "open_cursor"
let c_ugroup_row = Meter.counter "ugroup_row"
let rule_names ~view =
  [ "ivm_" ^ view ^ "_upd"; "ivm_" ^ view ^ "_ins"; "ivm_" ^ view ^ "_del" ]

(* Delta column name for an aggregate. *)
let delta_name (a : View_def.agg_col) = "d_" ^ a.View_def.a_name

(* Build the condition query that binds per-row deltas. *)
let delta_query (v : View_def.t) ~mode : Rule_ast.bound_query =
  let requal = View_def.requalify_driver v in
  let key_items =
    List.map
      (fun (name, e) ->
        Sql_parser.Item
          (Query.item ~alias:name
             (requal ~as_:(match mode with `Upd -> "new" | `Ins -> "inserted" | `Del -> "deleted") e)))
      v.View_def.key_cols
  in
  let agg_items =
    List.filter_map
      (fun (a : View_def.agg_col) ->
        match (a.View_def.a_kind, a.View_def.a_expr, mode) with
        | View_def.Agg_sum, Some e, `Upd ->
          Some
            (Sql_parser.Item
               (Query.item ~alias:(delta_name a)
                  (Expr.Binop
                     ( Expr.Sub,
                       requal ~as_:"new" e,
                       requal ~as_:"old" e ))))
        | View_def.Agg_sum, Some e, `Ins ->
          Some
            (Sql_parser.Item
               (Query.item ~alias:(delta_name a) (requal ~as_:"inserted" e)))
        | View_def.Agg_sum, Some e, `Del ->
          Some
            (Sql_parser.Item
               (Query.item ~alias:(delta_name a) (requal ~as_:"deleted" e)))
        | (View_def.Agg_count | View_def.Agg_count_star), _, `Upd ->
          (* counts are unchanged by updates (non-null assumption) *)
          None
        | (View_def.Agg_count | View_def.Agg_count_star), _, (`Ins | `Del) ->
          Some
            (Sql_parser.Item
               (Query.item ~alias:(delta_name a) (Expr.int 1)))
        | View_def.Agg_sum, None, _ -> assert false)
      v.View_def.aggs
  in
  let trans_ref name = { Sql_parser.rel = name; alias = name } in
  let from =
    v.View_def.others
    @
    match mode with
    | `Upd -> [ trans_ref "new"; trans_ref "old" ]
    | `Ins -> [ trans_ref "inserted" ]
    | `Del -> [ trans_ref "deleted" ]
  in
  let base_where =
    Option.map
      (fun w ->
        requal
          ~as_:(match mode with `Upd -> "new" | `Ins -> "inserted" | `Del -> "deleted")
          w)
      v.View_def.where
  in
  let where =
    match mode with
    | `Upd ->
      let order_eq =
        Expr.(
          Binop
            ( Eq,
              Col (Some "new", "execute_order"),
              Col (Some "old", "execute_order") ))
      in
      Some
        (match base_where with
        | Some w -> Expr.Binop (Expr.And, w, order_eq)
        | None -> order_eq)
    | `Ins | `Del -> base_where
  in
  {
    Rule_ast.query =
      {
        Sql_parser.distinct = false;
        items = key_items @ agg_items;
        from;
        where;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
      };
    bind_as = Some "deltas";
  }

(* The generated user functions fold the bound deltas per group key and
   apply them to the view through its key index. *)

let install db ~view ~driver ?(uniqueness = Rule_ast.Not_unique) ?(delay = 0.0)
    () =
  let cat = Strip_db.catalog db in
  let view_tb = Catalog.table_exn cat view in
  let driver_tb = Catalog.table_exn cat driver in
  let ast =
    match List.assoc_opt view (Strip_db.view_definitions db) with
    | Some ast -> ast
    | None -> raise Not_found
  in
  let v =
    View_def.analyze ast ~view ~driver
      ~driver_columns:(Schema.names (Table.schema driver_tb))
  in
  let key_names = List.map fst v.View_def.key_cols in
  let vschema = Table.schema view_tb in
  let key_positions =
    List.map (fun k -> Schema.find_exn vschema k) key_names
  in
  let view_index =
    match Table.index_on view_tb key_names with
    | Some idx -> idx
    | None ->
      Table.create_index view_tb
        ~name:(view ^ "_ivm_key")
        ~kind:Index.Hash ~cols:key_names
  in
  (* positions of aggregate columns in the view, and of their deltas in the
     bound table, per mode *)
  let agg_pos =
    List.map
      (fun (a : View_def.agg_col) ->
        (a, Schema.find_exn vschema a.View_def.a_name))
      v.View_def.aggs
  in
  let nkeys = List.length key_names in
  let is_count (a : View_def.agg_col) =
    match a.View_def.a_kind with
    | View_def.Agg_count | View_def.Agg_count_star -> true
    | View_def.Agg_sum -> false
  in
  let count_col =
    List.find_opt (fun (a, _) -> is_count a) agg_pos
    |> Option.map (fun (_, pos) -> pos)
  in
  (* Which aggregates have a delta column in this mode, in order. *)
  let deltas_for mode =
    List.filter
      (fun (a, _) ->
        match mode with `Upd -> not (is_count a) | `Ins | `Del -> true)
      agg_pos
  in
  (* Fold the bound rows into (key values -> delta array), preserving
     first-seen group order. *)
  let fold_groups mode (ctx : Rule_manager.action_ctx) =
    let specs = deltas_for mode in
    let nd = List.length specs in
    let groups : (Value.t list, float array * int ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    (match List.assoc_opt "deltas" ctx.Rule_manager.task.Strip_txn.Task.bound with
    | None -> ()
    | Some tmp ->
      Meter.tick_c c_open_cursor;
      Temp_table.iter tmp (fun row ->
          Meter.tick_c c_fetch_cursor;
          Meter.tick_c c_ugroup_row;
          let values = Temp_table.row_values tmp row in
          let key = List.init nkeys (fun i -> values.(i)) in
          let sums, n =
            match Hashtbl.find_opt groups key with
            | Some g -> g
            | None ->
              let g = (Array.make nd 0.0, ref 0) in
              Hashtbl.add groups key g;
              order := key :: !order;
              g
          in
          incr n;
          List.iteri
            (fun i _ ->
              let v = values.(nkeys + i) in
              if not (Value.is_null v) then
                sums.(i) <- sums.(i) +. Value.to_float v)
            specs);
      Meter.tick_c c_close_cursor);
    (specs, groups, List.rev !order)
  in
  let apply_group txn ~mode key (sums : float array) n specs =
    let sign = match mode with `Del -> -1.0 | `Upd | `Ins -> 1.0 in
    let matched =
      Db_ops.update_by_key txn view_tb view_index key (fun values ->
          List.iteri
            (fun i ((a : View_def.agg_col), pos) ->
              let d =
                if is_count a then
                  Value.Int (int_of_float sign * n)
                else Value.Float (sums.(i) *. sign)
              in
              values.(pos) <- Value.add values.(pos) d)
            specs;
          values)
    in
    (match mode with
    | `Ins when matched = 0 ->
      (* new group: insert a fresh view row *)
      let row = Array.make (Schema.arity vschema) Value.Null in
      List.iteri (fun i pos -> row.(pos) <- List.nth key i) key_positions;
      List.iteri
        (fun i ((a : View_def.agg_col), pos) ->
          row.(pos) <-
            (if is_count a then Value.Int n else Value.Float sums.(i)))
        specs;
      let hooks = Strip_txn.Transaction.hooks txn in
      hooks.Sql_exec.lock_table view_tb Sql_exec.Exclusive;
      let r = Table.insert view_tb row in
      hooks.Sql_exec.on_insert view_tb r
    | `Del -> (
      (* drop groups whose membership count reached zero *)
      match count_col with
      | Some cpos ->
        let hooks = Strip_txn.Transaction.hooks txn in
        let cursor = Table.open_index_cursor view_tb view_index key in
        let rec loop () =
          match Table.fetch cursor with
          | None -> ()
          | Some r ->
            if Value.to_int (Record.value r cpos) <= 0 then begin
              hooks.Sql_exec.lock_record view_tb r Sql_exec.Exclusive;
              Table.cursor_delete cursor;
              hooks.Sql_exec.on_delete view_tb r
            end;
            loop ()
        in
        loop ();
        Table.close_cursor cursor
      | None -> ())
    | _ -> ())
  in
  let make_fun mode (ctx : Rule_manager.action_ctx) =
    match (mode, deltas_for mode) with
    | `Upd, [] -> ()  (* pure COUNT views are unaffected by value updates *)
    | _ ->
      let specs, groups, order = fold_groups mode ctx in
      List.iter
        (fun key ->
          let sums, n = Hashtbl.find groups key in
          apply_group ctx.Rule_manager.txn ~mode key sums !n specs)
        order
  in
  let mgr = Strip_db.rules db in
  let mk_rule suffix mode events =
    let func = "ivm_" ^ view ^ "_" ^ suffix in
    Rule_manager.register_function mgr func (make_fun mode);
    Rule_manager.create_rule mgr
      {
        Rule_ast.rname = func;
        rtable = driver;
        events;
        condition = [ delta_query v ~mode ];
        evaluate = [];
        func;
        uniqueness;
        delay;
      }
  in
  mk_rule "upd" `Upd [ Rule_ast.On_update v.View_def.driver_cols_used ];
  mk_rule "ins" `Ins [ Rule_ast.On_insert ];
  mk_rule "del" `Del [ Rule_ast.On_delete ];
  v
