(** Staleness SLO monitor: configurable per-view staleness objectives
    with violation-window tracking.

    Feed it every staleness sample ({!observe}); consecutive violating
    samples form a violation window opening at the first offending
    sample and closing at the next compliant one (call {!finish} at the
    end of a run to close a window still open).  All state is
    deterministic under fixed-seed runs. *)

type objective = { view : string; bound_s : float }

val parse : string -> (objective, string) result
(** ["VIEW:BOUND_SECONDS"], e.g. ["comp_prices:2.0"].  The last [':']
    splits, so view names may not end in a colon-digit suffix. *)

type t

val create : objective list -> t
val objectives : t -> objective list

val observe : t -> view:string -> staleness_s:float -> now:float -> unit
(** Check one staleness sample for [view] against every objective naming
    it (other views' objectives are untouched). *)

val finish : t -> unit
(** Close any still-open violation windows. *)

type view_report = {
  r_view : string;
  r_bound_s : float;
  r_samples : int;
  r_violations : int;  (** samples over the bound *)
  r_windows : int;  (** violation windows (closed + open) *)
  r_violation_s : float;  (** summed window spans, first→last offender *)
  r_worst_s : float;  (** worst staleness sampled *)
  r_met : bool;  (** no violating sample *)
}

val report : t -> view_report list
(** One report per objective, in objective order. *)

val met : t -> bool
val total_violations : t -> int
val total_windows : t -> int

val report_json : view_report -> Json.t
