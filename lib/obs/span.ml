(* Causal trace contexts.

   A context names one causal story: [trace] is the id of the root span
   (minted when a base update enters the system) and [span] is this
   step's own id; [parent] is the span that caused it (0 for a root).
   Contexts ride on tasks, WAL trace notes, and replication messages, so
   a base write on the primary, the rule firings it triggers, the WAL
   commit, and the apply on every replica all share one [trace] id and
   form a parent-linked tree.

   Ids come from one global counter (like [Task]'s), so fixed-seed runs
   mint identical contexts; [reset_ids] restores byte-identical
   in-process re-runs. *)

type ctx = { trace : int; span : int; parent : int }

let next_id = ref 1

let reset_ids () = next_id := 1

let fresh () =
  let id = !next_id in
  incr next_id;
  id

let mint () =
  let id = fresh () in
  { trace = id; span = id; parent = 0 }

let child ctx =
  let id = fresh () in
  { trace = ctx.trace; span = id; parent = ctx.span }

(* A child of a span we only know by id (e.g. decoded from a WAL trace
   note or a shipped segment's annotation). *)
let child_of ~trace ~parent =
  let id = fresh () in
  { trace; span = id; parent }

let args ctx =
  [
    ("trace", Trace.Int ctx.trace);
    ("span", Trace.Int ctx.span);
    ("parent", Trace.Int ctx.parent);
  ]

let of_args args =
  let find k =
    match List.assoc_opt k args with
    | Some (Trace.Int i) -> Some i
    | _ -> None
  in
  match (find "trace", find "span") with
  | Some trace, Some span ->
    let parent = Option.value ~default:0 (find "parent") in
    Some { trace; span; parent }
  | _ -> None
