(** Structured lifecycle tracing with a bounded ring buffer and a Chrome
    [trace_event] exporter.

    The engine and rule manager emit one event per task/transaction
    lifecycle step — [enqueue], [release], task execution (a complete span
    covering start to end of service), [commit], [abort], [retry], [merge]
    (unique-batch merge), [shed], [dead_letter] — stamped with simulated
    time.  Events live in a fixed-capacity ring buffer: when it overflows,
    the oldest events are dropped (and counted) so tracing a long run has
    bounded memory.

    [chrome_json] renders the buffer in the Chrome [trace_event] JSON
    format; load the file at [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.  Simulated seconds map to trace microseconds.  All output is
    deterministic: two identical runs export byte-identical traces. *)

type arg = Int of int | Float of float | Str of string

type phase =
  | Instant
  | Complete of float  (** duration in simulated microseconds *)
  | Counter of float

type event = {
  seq : int;  (** global emission order, 0-based *)
  ts : float;  (** simulated seconds *)
  tid : int;
  cat : string;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events.  @raise Invalid_argument if < 1. *)

(** Thread ids used by the engine's emitters (one lane per task class in
    the viewer). *)

val tid_engine : int

val tid_update : int

val tid_recompute : int

val tid_background : int

val instant :
  t -> ts:float -> ?tid:int -> ?cat:string -> ?args:(string * arg) list ->
  string -> unit

val complete :
  t -> ts:float -> dur_us:float -> ?tid:int -> ?cat:string ->
  ?args:(string * arg) list -> string -> unit
(** A span starting at [ts] (seconds) lasting [dur_us] microseconds. *)

val counter : t -> ts:float -> string -> float -> unit

val length : t -> int
(** Events currently buffered. *)

val dropped : t -> int
(** Events lost to ring overflow. *)

val events : t -> event list
(** Buffered events, oldest first. *)

val clear : t -> unit

val chrome_events : ?pid:int -> ?process_name:string -> t -> Json.t list
(** The buffer as a list of Chrome [trace_event] objects (metadata events
    naming the process and per-class threads included), for embedding
    several traces into one file under distinct [pid]s. *)

val chrome_json : ?pid:int -> ?process_name:string -> t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] — a complete Chrome
    trace file. *)

val merge_chrome_json : (string * t) list -> Json.t
(** Several per-node buffers merged into one deterministic trace file:
    the i-th [(name, trace)] pair becomes pid [i+1] named [name] (put
    the primary first).  Cross-node spans stay linked through the
    [trace]/[span]/[parent] args {!Span} stamps on events. *)
