(** Causal trace contexts for cross-node span trees.

    A context is minted when a base update enters the system and derived
    (parent-linked) at every causal hop: rule firing, unique-batch merge,
    WAL commit, link shipping, replica apply, failover.  All spans of one
    story share the root's [trace] id, so a merged cluster trace can be
    reassembled into one tree.

    Ids come from a global counter; call {!reset_ids} (alongside
    [Task.reset_ids]) before a run that must be byte-identical to an
    earlier in-process run. *)

type ctx = {
  trace : int;  (** id of the root span (the ingested base update) *)
  span : int;  (** this step's own span id *)
  parent : int;  (** causing span id; 0 for a root *)
}

val reset_ids : unit -> unit

val mint : unit -> ctx
(** A fresh root context ([parent = 0], [trace = span]). *)

val child : ctx -> ctx
(** A new span caused by [ctx], in the same trace. *)

val child_of : trace:int -> parent:int -> ctx
(** A child of a span known only by id — e.g. decoded from a WAL trace
    note on a replica. *)

val args : ctx -> (string * Trace.arg) list
(** [("trace", _); ("span", _); ("parent", _)] — appended to trace-event
    args so exported spans carry their causal links. *)

val of_args : (string * Trace.arg) list -> ctx option
(** Recover a context from event args written by {!args}. *)
