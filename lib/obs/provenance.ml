(* Derived-row provenance: which base deltas and rule firings produced
   each derived value.

   Opt-in and bounded: each view keeps its own ring of the most recent
   [capacity] entries; older entries are overwritten and counted as
   truncated, so recording a long run has fixed memory.  One entry is
   recorded per (rule transaction, derived row) pair at commit time,
   carrying the firing's identity, its trace context (0s when tracing is
   off), and the base-delta rows the bound transition table held. *)

type input = { src_table : string; src_desc : string }

type entry = {
  view : string;
  key : string;
  rule : string;
  task_id : int;
  txid : int;
  trace : int;
  span : int;
  committed_at : float;
  inputs : input list;
}

type ring = {
  buf : entry option array;
  mutable total : int;  (* entries ever recorded for this view *)
}

type t = {
  capacity : int;
  views : (string, ring) Hashtbl.t;
  mutable recorded : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Provenance.create: capacity must be >= 1";
  { capacity; views = Hashtbl.create 8; recorded = 0 }

let ring_of t view =
  match Hashtbl.find_opt t.views view with
  | Some r -> r
  | None ->
    let r = { buf = Array.make t.capacity None; total = 0 } in
    Hashtbl.add t.views view r;
    r

let record t e =
  let r = ring_of t e.view in
  r.buf.(r.total mod t.capacity) <- Some e;
  r.total <- r.total + 1;
  t.recorded <- t.recorded + 1

let entries_of_ring t r =
  let n = min r.total t.capacity in
  let first = r.total - n in
  List.init n (fun i ->
      match r.buf.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let query t ~view ~key =
  match Hashtbl.find_opt t.views view with
  | None -> []
  | Some r ->
    List.rev (List.filter (fun e -> e.key = key) (entries_of_ring t r))

let views t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.views []
  |> List.sort String.compare

let keys t ~view =
  match Hashtbl.find_opt t.views view with
  | None -> []
  | Some r ->
    List.sort_uniq String.compare
      (List.map (fun e -> e.key) (entries_of_ring t r))

let total t = t.recorded

let truncated t =
  Hashtbl.fold
    (fun _ r acc -> acc + max 0 (r.total - t.capacity))
    t.views 0

let capacity t = t.capacity

(* A lineage tree for one derived row: the row at the root, one branch
   per recorded firing (newest first), one leaf per base-delta input. *)
let render ?(limit = 5) t ~view ~key =
  let buf = Buffer.create 256 in
  let es = query t ~view ~key in
  let shown = if limit > 0 then List.filteri (fun i _ -> i < limit) es else es in
  Buffer.add_string buf (Printf.sprintf "%s[%s]\n" view key);
  (match es with
  | [] -> Buffer.add_string buf "└─ (no recorded provenance)\n"
  | _ ->
    let n = List.length shown in
    List.iteri
      (fun i e ->
        let last = i = n - 1 && List.length es <= n in
        let head = if last then "└─" else "├─" in
        let stem = if last then "   " else "│  " in
        Buffer.add_string buf
          (Printf.sprintf "%s firing %s (task %d, txn %d%s, committed %.3fs)\n"
             head e.rule e.task_id e.txid
             (if e.trace > 0 then
                Printf.sprintf ", trace %d span %d" e.trace e.span
              else "")
             e.committed_at);
        let m = List.length e.inputs in
        List.iteri
          (fun j inp ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s input %s: %s\n" stem
                 (if j = m - 1 then "└─" else "├─")
                 inp.src_table inp.src_desc))
          e.inputs)
      shown;
    if List.length es > n then
      Buffer.add_string buf
        (Printf.sprintf "└─ … %d older firing(s) not shown\n"
           (List.length es - n)));
  Buffer.contents buf

let entry_json e =
  Json.Obj
    [
      ("view", Json.Str e.view);
      ("key", Json.Str e.key);
      ("rule", Json.Str e.rule);
      ("task", Json.Int e.task_id);
      ("txn", Json.Int e.txid);
      ("trace", Json.Int e.trace);
      ("span", Json.Int e.span);
      ("committed_at_s", Json.Float e.committed_at);
      ( "inputs",
        Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [
                   ("table", Json.Str i.src_table);
                   ("row", Json.Str i.src_desc);
                 ])
             e.inputs) );
    ]

let json t ~view ~key =
  Json.Obj
    [
      ("view", Json.Str view);
      ("key", Json.Str key);
      ("lineage", Json.List (List.map entry_json (query t ~view ~key)));
    ]
