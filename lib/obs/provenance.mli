(** Derived-row provenance store: which base deltas and rule firings
    produced each derived value.

    Opt-in and bounded — each view keeps a ring of its most recent
    [capacity] entries (default 512); overwritten entries are counted by
    {!truncated}.  Queryable as a lineage tree ([strip-cli explain]). *)

type input = {
  src_table : string;  (** transition (delta) table the firing was bound to *)
  src_desc : string;  (** rendered base-delta row *)
}

type entry = {
  view : string;
  key : string;  (** derived row key, rendered *)
  rule : string;  (** rule action / function name *)
  task_id : int;
  txid : int;
  trace : int;  (** trace context of the firing; 0 when tracing off *)
  span : int;
  committed_at : float;  (** simulated seconds *)
  inputs : input list;
}

type t

val create : ?capacity:int -> unit -> t
(** Per-view ring capacity, default 512.  @raise Invalid_argument if < 1. *)

val record : t -> entry -> unit

val query : t -> view:string -> key:string -> entry list
(** Recorded firings behind [view[key]], newest first. *)

val views : t -> string list
val keys : t -> view:string -> string list

val total : t -> int
(** Entries ever recorded. *)

val truncated : t -> int
(** Entries lost to ring bounds, summed over views. *)

val capacity : t -> int

val render : ?limit:int -> t -> view:string -> key:string -> string
(** The lineage tree as text, newest firing first, at most [limit]
    firings (default 5; [limit <= 0] shows all). *)

val json : t -> view:string -> key:string -> Json.t
