type arg = Int of int | Float of float | Str of string

type phase =
  | Instant
  | Complete of float
  | Counter of float

type event = {
  seq : int;
  ts : float;
  tid : int;
  cat : string;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

type t = {
  capacity : int;
  ring : event option array;
  mutable total : int;  (* events ever emitted *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity; ring = Array.make capacity None; total = 0 }

let tid_engine = 0
let tid_update = 1
let tid_recompute = 2
let tid_background = 3

let emit t ~ts ~tid ~cat ~name ~phase ~args =
  let ev = { seq = t.total; ts; tid; cat; name; phase; args } in
  t.ring.(t.total mod t.capacity) <- Some ev;
  t.total <- t.total + 1

let instant t ~ts ?(tid = tid_engine) ?(cat = "task") ?(args = []) name =
  emit t ~ts ~tid ~cat ~name ~phase:Instant ~args

let complete t ~ts ~dur_us ?(tid = tid_engine) ?(cat = "task") ?(args = []) name
    =
  emit t ~ts ~tid ~cat ~name ~phase:(Complete dur_us) ~args

let counter t ~ts name value =
  emit t ~ts ~tid:tid_engine ~cat:"counter" ~name ~phase:(Counter value)
    ~args:[]

let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let events t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.total <- 0

let json_of_arg = function
  | Int i -> Json.Int i
  | Float v -> Json.Float v
  | Str s -> Json.Str s

(* trace_event timestamps are microseconds *)
let ts_us s = s *. 1e6

let chrome_of_event ~pid ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ts", Json.Float (ts_us ev.ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.tid);
    ]
  in
  match ev.phase with
  | Instant ->
    Json.Obj
      (base
      @ [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
      @
      if ev.args = [] then []
      else
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) ev.args)) ])
  | Complete dur ->
    Json.Obj
      (base
      @ [ ("ph", Json.Str "X"); ("dur", Json.Float dur) ]
      @
      if ev.args = [] then []
      else
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) ev.args)) ])
  | Counter v ->
    Json.Obj
      (base
      @ [ ("ph", Json.Str "C"); ("args", Json.Obj [ (ev.name, Json.Float v) ]) ])

let metadata ~pid ~name ~tid what =
  Json.Obj
    [
      ("name", Json.Str what);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let chrome_events ?(pid = 1) ?(process_name = "strip") t =
  metadata ~pid ~name:process_name ~tid:0 "process_name"
  :: metadata ~pid ~name:"engine" ~tid:tid_engine "thread_name"
  :: metadata ~pid ~name:"updates" ~tid:tid_update "thread_name"
  :: metadata ~pid ~name:"recomputes" ~tid:tid_recompute "thread_name"
  :: metadata ~pid ~name:"background" ~tid:tid_background "thread_name"
  :: List.map (chrome_of_event ~pid) (events t)

let chrome_json ?pid ?process_name t =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events ?pid ?process_name t));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* Several per-node buffers as one trace file: pid i+1 for the i-th
   node, in caller order (primary first by convention), so a cluster-wide
   span tree renders each node as its own process. *)
let merge_chrome_json traces =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.concat
             (List.mapi
                (fun i (name, t) ->
                  chrome_events ~pid:(i + 1) ~process_name:name t)
                traces)) );
      ("displayTimeUnit", Json.Str "ms");
    ]
