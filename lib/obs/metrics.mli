(** A metrics registry: named counters, gauges and histograms with labels,
    snapshotted to JSON or CSV.

    Components either hold a direct instrument ({!counter}, {!gauge},
    {!histogram}) or register a {e probe} — a closure polled at snapshot
    time — over state they already maintain ({!probe_int}, {!probe_float},
    {!probe_hist}).  {!probe_family} covers label sets only known at
    runtime (e.g. one staleness histogram per derived table).

    Identity is the pair (name, canonicalised labels); registering it twice
    raises {!Duplicate}.  Snapshots are sorted by that identity, so exports
    are deterministic. *)

type labels = (string * string) list

exception Duplicate of string
(** The offending ["name{k=v,...}"] identity. *)

type t

val create : unit -> t

(** {1 Direct instruments} *)

type counter

val counter : t -> ?labels:labels -> string -> counter
val inc : ?n:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit

val histogram : t -> ?labels:labels -> string -> Histogram.t
(** Create, register and return a histogram instrument. *)

(** {1 Probes (polled at snapshot time)} *)

val probe_int : t -> ?labels:labels -> string -> (unit -> int) -> unit
val probe_float : t -> ?labels:labels -> string -> (unit -> float) -> unit
val probe_hist : t -> ?labels:labels -> string -> (unit -> Histogram.t) -> unit

type family_sample =
  | Sample_int of int
  | Sample_float of float
  | Sample_hist of Histogram.t

val probe_family : t -> string -> (unit -> (labels * family_sample) list) -> unit
(** A metric whose label sets appear during the run; the closure returns
    every current (labels, sample) pair.  Collisions with other rows are
    detected at snapshot time. *)

(** {1 Snapshots} *)

type datum =
  | Int of int
  | Float of float
  | Histo of Histogram.summary * (float * float * int) list
      (** summary plus [(lo, hi, count)] buckets *)

type row = { name : string; labels : labels; datum : datum }

val snapshot : t -> row list
(** Current value of every instrument and probe, sorted by (name, labels).
    @raise Duplicate if a probe family collides with another row. *)

val find : row list -> ?labels:labels -> string -> datum option
(** Convenience lookup in a snapshot. *)

val json_of_rows : ?buckets:bool -> row list -> Json.t
(** [{"metrics": [{"name", "labels", "type", ...}]}]; histograms carry
    count/sum/mean/min/max/p50/p90/p99 and, when [buckets] (default true),
    the raw bucket triples. *)

val csv_of_rows : row list -> string
(** Header [name,labels,type,value,count,sum,mean,min,max,p50,p90,p99];
    labels rendered as [k=v] pairs joined with [;]. *)
