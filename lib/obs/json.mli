(** A minimal JSON tree and deterministic printer.

    The observability exporters (metrics snapshots, Chrome traces) must
    produce byte-identical output for identical runs, so the printer uses a
    fixed float format ([%.12g], which round-trips every value the
    simulator produces) and preserves object-key order exactly as built.
    Non-finite floats have no JSON representation and are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Compact (single-line) output, trailing newline included. *)

exception Parse_error of string

val parse : string -> t
(** Parse the dialect {!to_buffer} emits (standard JSON restricted to
    single-byte \u escapes) — the replay path for saved chaos schedules
    and reports.  Numbers without fraction or exponent parse as [Int].
    @raise Parse_error on malformed input. *)

(** {1 Accessors} — small helpers for consuming parsed trees. *)

val member : string -> t -> t option
(** Object member by key; [None] on missing key or non-object. *)

val to_int : t -> int option
(** [Int] directly, or an integral [Float]. *)

val to_float : t -> float option
(** [Float] directly, or a widened [Int]. *)
