(** A minimal JSON tree and deterministic printer.

    The observability exporters (metrics snapshots, Chrome traces) must
    produce byte-identical output for identical runs, so the printer uses a
    fixed float format ([%.12g], which round-trips every value the
    simulator produces) and preserves object-key order exactly as built.
    Non-finite floats have no JSON representation and are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Compact (single-line) output, trailing newline included. *)
