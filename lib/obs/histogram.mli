(** Log-bucketed histograms for latency and staleness distributions.

    Positive samples fall into geometric buckets [[gamma^i, gamma^(i+1))]
    with the default [gamma = 2^(1/4)], bounding the relative error of any
    reported quantile by [gamma - 1] (~9%).  Zero and negative samples land
    in a dedicated underflow bucket reported as 0.  Count, sum, min and max
    are tracked exactly; everything is deterministic, so identical runs
    export identical histograms. *)

type t

val create : ?gamma:float -> unit -> t
(** [gamma] is the bucket growth factor; it must exceed 1.0.
    @raise Invalid_argument otherwise. *)

val add : t -> float -> unit
(** NaN samples are counted in the underflow bucket (they cannot be
    ordered, and dropping them silently would unbalance totals). *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** 0.0 when empty (never NaN). *)

val min_value : t -> float
(** Smallest sample seen; 0.0 when empty or when every sample was NaN
    (always finite unless an infinite sample was added). *)

val max_value : t -> float
(** Largest sample seen; 0.0 when empty or when every sample was NaN. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100], by nearest rank over the buckets;
    the returned value is the bucket's geometric midpoint clamped to the
    observed [min, max].  0.0 when empty (never NaN). *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending; the underflow bucket
    appears as [(0., 0., n)].  Samples satisfy [lo <= x < hi]. *)

val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** Add every bucket of the source into [dst] (same [gamma] required).
    @raise Invalid_argument on mismatched [gamma]. *)

val merge : t list -> t
(** A fresh histogram holding every source's samples — per-node
    histograms (replica apply lag, lock waits) aggregate into one
    cluster distribution.  Sources are untouched; the empty list yields
    an empty default-[gamma] histogram.
    @raise Invalid_argument on mismatched [gamma]s. *)

type summary = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : t -> summary

val summary_json : ?buckets:bool -> t -> Json.t
(** Object with [count], [sum], [mean], [min], [max], [p50], [p90], [p99]
    and, when [buckets] (default true), a [buckets] array of [[lo, hi,
    count]] triples. *)
