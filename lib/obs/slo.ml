(* Staleness SLOs: turn sampled per-view staleness into objectives with
   violation-window tracking.

   An objective bounds one view's staleness ("comp_prices must be under
   2 s behind its base data").  Every staleness sample (taken at rule
   transaction commit) is checked; consecutive violating samples form a
   violation window that opens at the first offending sample and closes
   at the next compliant one (or when the run ends).  Windows, violating
   samples, time in violation, and the worst staleness seen are tracked
   per view, cheap enough to stay on for every sample. *)

type objective = { view : string; bound_s : float }

let parse s =
  match String.rindex_opt s ':' with
  | None ->
    Error (Printf.sprintf "bad SLO %S (expected VIEW:BOUND_SECONDS)" s)
  | Some i ->
    let view = String.sub s 0 i in
    let bound = String.sub s (i + 1) (String.length s - i - 1) in
    if view = "" then Error (Printf.sprintf "bad SLO %S (empty view)" s)
    else (
      match float_of_string_opt bound with
      | Some b when b >= 0.0 -> Ok { view; bound_s = b }
      | _ -> Error (Printf.sprintf "bad staleness bound in SLO %S" s))

type state = {
  obj : objective;
  mutable samples : int;
  mutable violations : int;  (* samples over the bound *)
  mutable windows : int;  (* violation windows, closed or open *)
  mutable open_since : float option;  (* first offending sample's time *)
  mutable last_violation_at : float;
  mutable violation_s : float;  (* closed windows' spans *)
  mutable worst_s : float;
}

type t = { states : state list }

let create objectives =
  {
    states =
      List.map
        (fun obj ->
          {
            obj;
            samples = 0;
            violations = 0;
            windows = 0;
            open_since = None;
            last_violation_at = 0.0;
            violation_s = 0.0;
            worst_s = 0.0;
          })
        objectives;
  }

let objectives t = List.map (fun s -> s.obj) t.states

let close_window st =
  match st.open_since with
  | None -> ()
  | Some from ->
    st.violation_s <- st.violation_s +. (st.last_violation_at -. from);
    st.open_since <- None

let observe t ~view ~staleness_s ~now =
  List.iter
    (fun st ->
      if st.obj.view = view then begin
        st.samples <- st.samples + 1;
        if staleness_s > st.worst_s then st.worst_s <- staleness_s;
        if staleness_s > st.obj.bound_s then begin
          st.violations <- st.violations + 1;
          st.last_violation_at <- now;
          if st.open_since = None then begin
            st.open_since <- Some now;
            st.windows <- st.windows + 1
          end
        end
        else close_window st
      end)
    t.states

let finish t = List.iter close_window t.states

type view_report = {
  r_view : string;
  r_bound_s : float;
  r_samples : int;
  r_violations : int;
  r_windows : int;
  r_violation_s : float;  (* span of closed windows *)
  r_worst_s : float;
  r_met : bool;
}

let report t =
  List.map
    (fun st ->
      {
        r_view = st.obj.view;
        r_bound_s = st.obj.bound_s;
        r_samples = st.samples;
        r_violations = st.violations;
        r_windows = st.windows;
        r_violation_s =
          (st.violation_s
          +.
          match st.open_since with
          | Some from -> st.last_violation_at -. from
          | None -> 0.0);
        r_worst_s = st.worst_s;
        r_met = st.violations = 0;
      })
    t.states

let met t = List.for_all (fun r -> r.r_met) (report t)

let total_violations t =
  List.fold_left (fun acc st -> acc + st.violations) 0 t.states

let total_windows t =
  List.fold_left (fun acc st -> acc + st.windows) 0 t.states

let report_json r =
  Json.Obj
    [
      ("view", Json.Str r.r_view);
      ("bound_s", Json.Float r.r_bound_s);
      ("samples", Json.Int r.r_samples);
      ("violations", Json.Int r.r_violations);
      ("windows", Json.Int r.r_windows);
      ("violation_s", Json.Float r.r_violation_s);
      ("worst_s", Json.Float r.r_worst_s);
      ("met", Json.Bool r.r_met);
    ]
