type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else Printf.sprintf "%.12g" v

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 4096 in
  to_buffer buf j;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf
