type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else Printf.sprintf "%.12g" v

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 4096 in
  to_buffer buf j;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* Recursive-descent parser for the same dialect [to_buffer] emits —
   enough to round-trip saved reports and chaos schedules.  A number
   parses as [Int] when it has no fraction, exponent, or overflow, else
   [Float]. *)
exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Emitted strings only escape control characters, so a
             code point above one byte is out of dialect. *)
          if code < 0x100 then Buffer.add_char buf (Char.chr code)
          else fail "non-latin \\u escape"
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
