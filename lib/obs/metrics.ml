type labels = (string * string) list

exception Duplicate of string

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let identity name labels =
  match labels with
  | [] -> name
  | labels ->
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

type source =
  | Src_counter of int ref
  | Src_gauge of float ref
  | Src_hist of Histogram.t
  | Src_probe_int of (unit -> int)
  | Src_probe_float of (unit -> float)
  | Src_probe_hist of (unit -> Histogram.t)

type family_sample =
  | Sample_int of int
  | Sample_float of float
  | Sample_hist of Histogram.t

type entry = { name : string; labels : labels; source : source }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable families : (string * (unit -> (labels * family_sample) list)) list;
  ids : (string, unit) Hashtbl.t;
}

let create () = { entries = []; families = []; ids = Hashtbl.create 64 }

let register t ~name ~labels source =
  let labels = canon labels in
  let id = identity name labels in
  if Hashtbl.mem t.ids id then raise (Duplicate id);
  Hashtbl.add t.ids id ();
  t.entries <- { name; labels; source } :: t.entries

type counter = int ref

let counter t ?(labels = []) name =
  let r = ref 0 in
  register t ~name ~labels (Src_counter r);
  r

let inc ?(n = 1) r = r := !r + n
let counter_value r = !r

type gauge = float ref

let gauge t ?(labels = []) name =
  let r = ref 0.0 in
  register t ~name ~labels (Src_gauge r);
  r

let set r v = r := v

let histogram t ?(labels = []) name =
  let h = Histogram.create () in
  register t ~name ~labels (Src_hist h);
  h

let probe_int t ?(labels = []) name f =
  register t ~name ~labels (Src_probe_int f)

let probe_float t ?(labels = []) name f =
  register t ~name ~labels (Src_probe_float f)

let probe_hist t ?(labels = []) name f =
  register t ~name ~labels (Src_probe_hist f)

let probe_family t name f = t.families <- (name, f) :: t.families

type datum =
  | Int of int
  | Float of float
  | Histo of Histogram.summary * (float * float * int) list

type row = { name : string; labels : labels; datum : datum }

let datum_of_hist h = Histo (Histogram.summary h, Histogram.buckets h)

let row_of_entry e =
  let datum =
    match e.source with
    | Src_counter r -> Int !r
    | Src_gauge r -> Float !r
    | Src_hist h -> datum_of_hist h
    | Src_probe_int f -> Int (f ())
    | Src_probe_float f -> Float (f ())
    | Src_probe_hist f -> datum_of_hist (f ())
  in
  { name = e.name; labels = e.labels; datum }

let snapshot t =
  let fixed = List.rev_map row_of_entry t.entries in
  let dynamic =
    List.concat_map
      (fun (name, f) ->
        List.map
          (fun (labels, sample) ->
            let labels = canon labels in
            let datum =
              match sample with
              | Sample_int i -> Int i
              | Sample_float v -> Float v
              | Sample_hist h -> datum_of_hist h
            in
            { name; labels; datum })
          (f ()))
      t.families
  in
  let rows = fixed @ dynamic in
  let seen = Hashtbl.create (List.length rows) in
  List.iter
    (fun r ->
      let id = identity r.name r.labels in
      if Hashtbl.mem seen id then raise (Duplicate id);
      Hashtbl.add seen id ())
    rows;
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    rows

let find rows ?(labels = []) name =
  let labels = canon labels in
  List.find_map
    (fun r -> if r.name = name && r.labels = labels then Some r.datum else None)
    rows

let json_of_rows ?(buckets = true) rows =
  let row_json r =
    let label_obj = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.labels) in
    let head = [ ("name", Json.Str r.name); ("labels", label_obj) ] in
    match r.datum with
    | Int i -> Json.Obj (head @ [ ("type", Json.Str "counter"); ("value", Json.Int i) ])
    | Float v ->
      Json.Obj (head @ [ ("type", Json.Str "gauge"); ("value", Json.Float v) ])
    | Histo (s, bs) ->
      Json.Obj
        (head
        @ [
            ("type", Json.Str "histogram");
            ("count", Json.Int s.Histogram.n);
            ("sum", Json.Float s.Histogram.sum);
            ("mean", Json.Float s.Histogram.mean);
            ("min", Json.Float s.Histogram.min);
            ("max", Json.Float s.Histogram.max);
            ("p50", Json.Float s.Histogram.p50);
            ("p90", Json.Float s.Histogram.p90);
            ("p99", Json.Float s.Histogram.p99);
          ]
        @
        if not buckets then []
        else
          [
            ( "buckets",
              Json.List
                (List.map
                   (fun (lo, hi, c) ->
                     Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
                   bs) );
          ])
  in
  Json.Obj [ ("metrics", Json.List (List.map row_json rows)) ]

let csv_of_rows rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "name,labels,type,value,count,sum,mean,min,max,p50,p90,p99\n";
  let fl v = Printf.sprintf "%.12g" v in
  List.iter
    (fun r ->
      let labels =
        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) r.labels)
      in
      let cells =
        match r.datum with
        | Int i ->
          [ r.name; labels; "counter"; string_of_int i; ""; ""; ""; ""; ""; "";
            ""; "" ]
        | Float v ->
          [ r.name; labels; "gauge"; fl v; ""; ""; ""; ""; ""; ""; ""; "" ]
        | Histo (s, _) ->
          [
            r.name; labels; "histogram"; "";
            string_of_int s.Histogram.n;
            fl s.Histogram.sum; fl s.Histogram.mean; fl s.Histogram.min;
            fl s.Histogram.max; fl s.Histogram.p50; fl s.Histogram.p90;
            fl s.Histogram.p99;
          ]
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
