type t = {
  gamma : float;
  log_gamma : float;
  tbl : (int, int ref) Hashtbl.t;  (* bucket index -> count, v > 0 *)
  mutable underflow : int;  (* v <= 0 or NaN *)
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let create ?(gamma = sqrt (sqrt 2.0)) () =
  if not (gamma > 1.0) then invalid_arg "Histogram.create: gamma must be > 1";
  {
    gamma;
    log_gamma = log gamma;
    tbl = Hashtbl.create 64;
    underflow = 0;
    n = 0;
    total = 0.0;
    lo = infinity;
    hi = neg_infinity;
  }

let index t v = int_of_float (Float.floor (log v /. t.log_gamma))

let bucket_lo t i = t.gamma ** float_of_int i
let bucket_hi t i = t.gamma ** float_of_int (i + 1)

let add t v =
  t.n <- t.n + 1;
  if Float.is_nan v then t.underflow <- t.underflow + 1
  else begin
    t.total <- t.total +. v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v;
    if v <= 0.0 then t.underflow <- t.underflow + 1
    else begin
      let i = index t v in
      (* guard against floor/pow rounding at bucket edges *)
      let i = if v < bucket_lo t i then i - 1 else i in
      let i = if v >= bucket_hi t i then i + 1 else i in
      match Hashtbl.find_opt t.tbl i with
      | Some r -> incr r
      | None -> Hashtbl.add t.tbl i (ref 1)
    end
  end

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n

(* [lo > hi] means no sample ever updated the bounds — the histogram is
   empty or holds only NaN samples (which skip the bounds update). *)
let min_value t = if t.n = 0 || t.lo > t.hi then 0.0 else t.lo
let max_value t = if t.n = 0 || t.lo > t.hi then 0.0 else t.hi

let sorted_indices t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    (* nearest-rank: the k-th smallest sample, k in [1, n] *)
    let k =
      max 1 (int_of_float (Float.ceil (Float.of_int t.n *. p /. 100.0)))
    in
    let k = min k t.n in
    if k <= t.underflow then 0.0
    else begin
      let rest = ref (k - t.underflow) in
      let result = ref (max_value t) in
      (try
         List.iter
           (fun (i, c) ->
             if !rest <= c then begin
               (* geometric midpoint of the bucket, clamped to observed range *)
               let v = sqrt (bucket_lo t i *. bucket_hi t i) in
               result := Float.max (min_value t) (Float.min (max_value t) v);
               raise Exit
             end
             else rest := !rest - c)
           (sorted_indices t)
       with Exit -> ());
      !result
    end
  end

let buckets t =
  let pos =
    List.map (fun (i, c) -> (bucket_lo t i, bucket_hi t i, c)) (sorted_indices t)
  in
  if t.underflow > 0 then (0.0, 0.0, t.underflow) :: pos else pos

let reset t =
  Hashtbl.reset t.tbl;
  t.underflow <- 0;
  t.n <- 0;
  t.total <- 0.0;
  t.lo <- infinity;
  t.hi <- neg_infinity

let merge_into ~dst src =
  if dst.gamma <> src.gamma then
    invalid_arg "Histogram.merge_into: gamma mismatch";
  Hashtbl.iter
    (fun i r ->
      match Hashtbl.find_opt dst.tbl i with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add dst.tbl i (ref !r))
    src.tbl;
  dst.underflow <- dst.underflow + src.underflow;
  dst.n <- dst.n + src.n;
  dst.total <- dst.total +. src.total;
  if src.n > 0 then begin
    if src.lo < dst.lo then dst.lo <- src.lo;
    if src.hi > dst.hi then dst.hi <- src.hi
  end

let merge = function
  | [] -> create ()
  | first :: _ as hs ->
    let dst = create ~gamma:first.gamma () in
    List.iter (fun h -> merge_into ~dst h) hs;
    dst

type summary = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary t =
  {
    n = count t;
    sum = sum t;
    mean = mean t;
    min = min_value t;
    max = max_value t;
    p50 = percentile t 50.0;
    p90 = percentile t 90.0;
    p99 = percentile t 99.0;
  }

let bucket_list = buckets

let summary_json ?(buckets = true) t =
  let s = summary t in
  let base =
    [
      ("count", Json.Int s.n);
      ("sum", Json.Float s.sum);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]
  in
  let bucket_rows =
    if not buckets then []
    else
      [
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, c) ->
                 Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
               (bucket_list t)) );
      ]
  in
  Json.Obj (base @ bucket_rows)
