(** Seeded, serializable chaos schedules.

    A schedule is a finite list of deterministic fault events
    ({!Strip_pta.Experiment.chaos_event}) in absolute simulated time,
    plus the seed and workload scale that position them.  Generation is
    pure in the seed: the same [(seed, scale)] always yields the same
    events, and the JSON form round-trips exactly — a failing schedule
    written to disk replays the identical run anywhere. *)

type t = {
  seed : int;
  scale : float;  (** workload scale factor (see {!Strip_pta.Experiment.quick}) *)
  events : Strip_pta.Experiment.chaos_event list;  (** sorted by fire time *)
}

val generate : ?scale:float -> seed:int -> unit -> t
(** 2-5 events drawn from a dedicated seeded stream — crashes,
    partitions (heals from blip-length to multi-second), drop bursts,
    and checkpoint races — landing in the middle 80% of the scaled feed.
    Default scale 0.05. *)

val generate_storage : ?scale:float -> seed:int -> unit -> t
(** 1-3 at-rest media events (WAL/checkpoint bit rot, lying fsyncs,
    disk-full windows), with a racing crash or partition in about half
    the schedules so salvage regularly runs as a double fault.  A
    separate seeded stream: {!generate}'s historical seeds stay
    byte-stable.  Default scale 0.05. *)

val to_json : t -> Strip_obs.Json.t
val of_json : Strip_obs.Json.t -> t
(** @raise Invalid_argument on a malformed tree. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Invalid_argument on malformed JSON or tree. *)

val describe : t -> string
(** One-line human summary, e.g.
    ["crash@3.20s partition@7.10s(heal 1.20s)"]. *)

val describe_event : Strip_pta.Experiment.chaos_event -> string
