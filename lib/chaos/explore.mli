(** The chaos explorer: run seeded fault schedules against a replicated,
    durable STRIP experiment, check invariants, and shrink failures.

    Each schedule drives one {!Strip_pta.Experiment.run} — two replicas,
    a lossy shipping link, the unique-on-comp rule, verification on —
    with the schedule's events armed as deterministic faults.  After the
    run, five invariants are checked:

    - [auditor_clean]: the final consistency audit finds no divergence
      the repair pass could not fix;
    - [recovery_converges]: the maintained view equals a from-scratch
      recomputation, and every replica ends at the primary's final LSN;
    - [single_primary_per_epoch]: the epoch history is strictly
      increasing — no two primaries ever shared a term;
    - [no_acked_commit_lost]: every promotion's acked frontier (the LSN
      the elected winner had applied) is still inside the final log;
    - [uq_exactly_once]: no unique transaction was dead-lettered.

    A sixth, opt-in invariant — [staleness_slo] — arms when the run
    carries staleness SLO objectives ([?slo]): any view whose objective
    was violated fails the schedule, so SLO regressions shrink to minimal
    fault reproducers like any other violation.

    Storage-fault schedules ({!Schedule.generate_storage}, or any
    schedule carrying media events) arm two more:

    - [no_silent_corruption]: every injected media fault left the
      [Outstanding] ledger state — something (scrub, ship-time
      verification, or recovery) detected it before the end of the run;
    - [salvage_converges]: the durable media verifies clean at the end —
      the WAL frame chain parses end-to-end and every retained
      checkpoint slot passes its CRC.

    A failing schedule can be {!shrink}ed to a 1-minimal reproducer and
    serialized ({!Schedule.to_json}) for replay via
    [strip-cli chaos --replay]. *)

type violation = { invariant : string; detail : string }

type outcome = {
  schedule : Schedule.t;
  violations : violation list;  (** empty = all invariants held *)
  n_crashes : int;
  n_partitions : int;
  n_failovers : int;
  final_epoch : int;
  lost_bytes : int;
  fenced_bytes : int;
  makespan_s : float;
  storage : Strip_pta.Experiment.storage_metrics option;
      (** present iff the run armed the storage-fault substrate *)
}

val check :
  ?extra:(Strip_pta.Experiment.metrics -> violation list) ->
  Strip_pta.Experiment.metrics ->
  violation list
(** Evaluate the invariants against one run's metrics, including
    [staleness_slo] for any SLO report the run produced.  [extra] appends
    caller-defined checks (used by tests to plant an unsatisfiable
    invariant and watch the shrinker work). *)

val run_schedule :
  ?extra:(Strip_pta.Experiment.metrics -> violation list) ->
  ?slo:Strip_obs.Slo.objective list ->
  ?storage:Strip_pta.Experiment.storage_cfg ->
  Schedule.t ->
  outcome
(** One deterministic experiment under the schedule; task ids are reset
    first so identical schedules replay byte-identically in-process.
    [slo] arms a fresh staleness monitor for the run (fresh per call, so
    shrinker trials never share violation state).  [storage] overrides
    the storage substrate config — e.g. a scrubber-free
    [{ scrub_every = None; retain = 2 }] de-arms detection, which is how
    the planted-bug hunt makes [no_silent_corruption] fire; without it a
    schedule carrying media events auto-enables
    {!Strip_pta.Experiment.default_storage}. *)

val shrink :
  ?extra:(Strip_pta.Experiment.metrics -> violation list) ->
  ?slo:Strip_obs.Slo.objective list ->
  ?storage:Strip_pta.Experiment.storage_cfg ->
  Schedule.t ->
  outcome
(** Delta-debug a failing schedule down to a 1-minimal event list (every
    remaining event is necessary for the violation) and return the final
    reproducer's outcome.  A schedule that does not fail is returned
    re-run but unshrunk. *)

val explore :
  ?extra:(Strip_pta.Experiment.metrics -> violation list) ->
  ?slo:Strip_obs.Slo.objective list ->
  ?scale:float ->
  seed:int ->
  schedules:int ->
  unit ->
  outcome list
(** Generate and run [schedules] schedules seeded [seed, seed+1, ...] at
    [scale] (default 0.05). *)

val explore_storage :
  ?extra:(Strip_pta.Experiment.metrics -> violation list) ->
  ?slo:Strip_obs.Slo.objective list ->
  ?storage:Strip_pta.Experiment.storage_cfg ->
  ?scale:float ->
  seed:int ->
  schedules:int ->
  unit ->
  outcome list
(** Like {!explore} but over {!Schedule.generate_storage} schedules, so
    every run carries at least one at-rest media fault and the storage
    invariants are armed. *)

val total_violations : outcome list -> int

val outcome_json : outcome -> Strip_obs.Json.t
val summary_json : seed:int -> scale:float -> outcome list -> Strip_obs.Json.t
val print_outcome : outcome -> unit
val print_summary : outcome list -> unit
