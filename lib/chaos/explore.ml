open Strip_pta
open Strip_obs

type violation = { invariant : string; detail : string }

type outcome = {
  schedule : Schedule.t;
  violations : violation list;
  n_crashes : int;
  n_partitions : int;
  n_failovers : int;
  final_epoch : int;
  lost_bytes : int;
  fenced_bytes : int;
  makespan_s : float;
  storage : Experiment.storage_metrics option;
      (* present iff the run armed the storage-fault substrate *)
}

(* Every schedule drives the same replicated, durable, unique-rule
   workload: two replicas so elections have a choice, a trickle of
   policy-routed reads, a slightly lossy link so the optimistic resend
   path stays warm, and the unique-on-comp rule so the pending queue is
   live state that crashes and failovers must preserve. *)
let cfg_of ?(slo = []) ?storage (s : Schedule.t) =
  let base =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_comp)
      ~delay:0.5
  in
  let cfg = Experiment.quick base s.scale in
  {
    cfg with
    Experiment.verify = true;
    (* A fresh monitor per run: schedules (and shrinker trials) must not
       share violation state. *)
    slo = (match slo with [] -> None | os -> Some (Slo.create os));
    (* [None] defers to the run's auto-enable: a schedule with storage
       events gets {!Experiment.default_storage}.  An explicit override
       (e.g. scrubber off) is how the planted-bug hunt de-arms
       detection. *)
    storage;
    recovery = Some Experiment.default_recovery;
    repl =
      Some
        {
          Experiment.default_repl with
          Experiment.replicas = 2;
          read_rate = 2.0;
          link =
            {
              Strip_repl.Link.default_config with
              Strip_repl.Link.drop_rate = 0.01;
              seed = s.seed;
            };
        };
    chaos = s.events;
  }

(* The five invariants every schedule must preserve.  [extra] lets a
   caller (or a test) bolt on a deliberately unsatisfiable check to
   exercise the shrinker. *)
let check ?extra (m : Experiment.metrics) =
  let v = ref [] in
  let add invariant detail = v := { invariant; detail } :: !v in
  (match m.Experiment.recovery with
  | Some r when not r.Experiment.audit_clean ->
    add "auditor_clean"
      (Printf.sprintf "%d divergences survive repair"
         r.Experiment.audit_divergences)
  | _ -> ());
  (match m.Experiment.verified with
  | Some false ->
    add "recovery_converges"
      (Printf.sprintf "view diverges from recomputation (max err %g)"
         m.Experiment.max_abs_error)
  | _ -> ());
  (match m.Experiment.repl with
  | None -> ()
  | Some r ->
    let rec mono = function
      | (e1, _) :: ((e2, _) :: _ as rest) ->
        if e2 <= e1 then
          add "single_primary_per_epoch"
            (Printf.sprintf "epoch %d opened at or below %d" e2 e1);
        mono rest
      | _ -> ()
    in
    mono r.Experiment.epochs;
    List.iter
      (fun (e, _, lsn) ->
        if lsn > r.Experiment.final_lsn then
          add "no_acked_commit_lost"
            (Printf.sprintf
               "epoch %d promoted at lsn %d but the final log ends at %d" e
               lsn r.Experiment.final_lsn))
      r.Experiment.promotions;
    List.iter
      (fun (pr : Experiment.replica_metrics) ->
        if pr.Experiment.r_applied_lsn <> r.Experiment.final_lsn then
          add "recovery_converges"
            (Printf.sprintf "replica %d ends at lsn %d, primary at %d"
               pr.Experiment.r_id pr.Experiment.r_applied_lsn
               r.Experiment.final_lsn))
      r.Experiment.per_replica);
  if m.Experiment.n_dead_letters > 0 then
    add "uq_exactly_once"
      (Printf.sprintf "%d unique transactions dead-lettered"
         m.Experiment.n_dead_letters);
  (* Armed only for storage-fault runs (m.storage is None otherwise). *)
  (match m.Experiment.storage with
  | None -> ()
  | Some s ->
    if s.Experiment.faults_outstanding > 0 then
      add "no_silent_corruption"
        (Printf.sprintf
           "%d injected media fault(s) outstanding — never detected by \
            scrub, shipping or recovery"
           s.Experiment.faults_outstanding);
    if not s.Experiment.final_clean then
      add "salvage_converges"
        "durable media still corrupt at end of run (WAL chain or a \
         retained checkpoint slot fails verification)");
  (* Armed only when the run carried an SLO monitor (m.slo is empty
     otherwise), so SLO-free schedules check exactly the classic five. *)
  List.iter
    (fun (r : Slo.view_report) ->
      if not r.Slo.r_met then
        add "staleness_slo"
          (Printf.sprintf
             "%s over %.3fs bound: %d/%d samples in %d window(s), worst %.3fs"
             r.Slo.r_view r.Slo.r_bound_s r.Slo.r_violations r.Slo.r_samples
             r.Slo.r_windows r.Slo.r_worst_s))
    m.Experiment.slo;
  let base = List.rev !v in
  match extra with None -> base | Some f -> base @ f m

let run_schedule ?extra ?slo ?storage (s : Schedule.t) =
  (* Deterministic task ids across in-process runs: every schedule (and
     every shrinker trial) starts from the same counter. *)
  Strip_txn.Task.reset_ids ();
  let m = Experiment.run (cfg_of ?slo ?storage s) in
  let violations = check ?extra m in
  let n_crashes =
    match m.Experiment.recovery with
    | Some r -> r.Experiment.n_crashes
    | None -> 0
  in
  let n_partitions, n_failovers, final_epoch, lost_bytes, fenced_bytes =
    match m.Experiment.repl with
    | Some r ->
      ( r.Experiment.n_partitions,
        r.Experiment.n_failovers,
        r.Experiment.epoch,
        r.Experiment.promotion_lost_bytes,
        r.Experiment.fenced_bytes )
    | None -> (0, 0, 1, 0, 0)
  in
  {
    schedule = s;
    violations;
    n_crashes;
    n_partitions;
    n_failovers;
    final_epoch;
    lost_bytes;
    fenced_bytes;
    makespan_s = m.Experiment.makespan_s;
    storage = m.Experiment.storage;
  }

(* Delta-debugging-lite: drop event halves while the failure survives,
   then greedily remove single events until no removal keeps it failing.
   The result is 1-minimal — every remaining event is necessary. *)
let shrink ?extra ?slo ?storage (s : Schedule.t) =
  let fails events =
    (run_schedule ?extra ?slo ?storage { s with Schedule.events }).violations
    <> []
  in
  let rec halve events =
    let n = List.length events in
    if n <= 1 then events
    else begin
      let left = List.filteri (fun i _ -> i < n / 2) events in
      let right = List.filteri (fun i _ -> i >= n / 2) events in
      if fails left then halve left
      else if fails right then halve right
      else events
    end
  in
  let rec greedy events =
    let n = List.length events in
    if n <= 1 then events
    else begin
      let rec try_drop i =
        if i >= n then events
        else begin
          let cand = List.filteri (fun j _ -> j <> i) events in
          if fails cand then greedy cand else try_drop (i + 1)
        end
      in
      try_drop 0
    end
  in
  let events =
    if fails s.Schedule.events then greedy (halve s.Schedule.events)
    else s.Schedule.events
  in
  run_schedule ?extra ?slo ?storage { s with Schedule.events }

let explore ?extra ?slo ?(scale = 0.05) ~seed ~schedules () =
  List.init schedules (fun i ->
      run_schedule ?extra ?slo (Schedule.generate ~scale ~seed:(seed + i) ()))

let explore_storage ?extra ?slo ?storage ?(scale = 0.05) ~seed ~schedules () =
  List.init schedules (fun i ->
      run_schedule ?extra ?slo ?storage
        (Schedule.generate_storage ~scale ~seed:(seed + i) ()))

let total_violations outcomes =
  List.fold_left (fun a o -> a + List.length o.violations) 0 outcomes

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let violation_json v =
  Json.Obj
    [ ("invariant", Json.Str v.invariant); ("detail", Json.Str v.detail) ]

let outcome_json o =
  Json.Obj
    ([
       ("schedule", Schedule.to_json o.schedule);
       ("events", Json.Str (Schedule.describe o.schedule));
       ("violations", Json.List (List.map violation_json o.violations));
       ("n_crashes", Json.Int o.n_crashes);
       ("n_partitions", Json.Int o.n_partitions);
       ("n_failovers", Json.Int o.n_failovers);
       ("final_epoch", Json.Int o.final_epoch);
       ("lost_bytes", Json.Int o.lost_bytes);
       ("fenced_bytes", Json.Int o.fenced_bytes);
       ("makespan_s", Json.Float o.makespan_s);
     ]
    (* present only for storage-fault runs, so classic chaos JSON stays
       byte-identical *)
    @
    match o.storage with
    | None -> []
    | Some s -> [ ("storage", Report.storage_json s) ])

let summary_json ~seed ~scale outcomes =
  Json.Obj
    [
      ("seed", Json.Int seed);
      ("scale", Json.Float scale);
      ("schedules", Json.Int (List.length outcomes));
      ("violations", Json.Int (total_violations outcomes));
      ("runs", Json.List (List.map outcome_json outcomes));
    ]

let print_outcome o =
  Printf.printf
    "  seed %-6d %-52s crashes %d partitions %d failovers %d epoch %d \
     lost %dB fenced %dB  %s\n%!"
    o.schedule.Schedule.seed
    (Schedule.describe o.schedule)
    o.n_crashes o.n_partitions o.n_failovers o.final_epoch o.lost_bytes
    o.fenced_bytes
    ((match o.storage with
     | None -> ""
     | Some s ->
       Printf.sprintf "media %d/%d/%d/%d/%d (inj/rep/quar/exp/out)  "
         (s.Experiment.injected_bitrot_wal + s.Experiment.injected_bitrot_cp
        + s.Experiment.injected_fsync_lie)
         s.Experiment.faults_repaired s.Experiment.faults_quarantined
         s.Experiment.faults_expunged s.Experiment.faults_outstanding)
    ^
    match o.violations with
    | [] -> "ok"
    | vs ->
      "VIOLATED "
      ^ String.concat "; "
          (List.map (fun v -> v.invariant ^ ": " ^ v.detail) vs))

let print_summary outcomes =
  List.iter print_outcome outcomes;
  let bad = List.filter (fun o -> o.violations <> []) outcomes in
  Printf.printf "  %d schedule(s), %d violation(s) in %d run(s)\n%!"
    (List.length outcomes)
    (total_violations outcomes)
    (List.length bad)
