open Strip_pta
open Strip_obs

type t = {
  seed : int;
  scale : float;
  events : Experiment.chaos_event list;
}

(* Event times live in the middle 80% of the scaled feed so every fault
   has traffic before it (state worth breaking) and after it (time to
   converge again). *)
let generate ?(scale = 0.05) ~seed () =
  if scale <= 0.0 then invalid_arg "Schedule.generate: scale <= 0";
  let rng = Random.State.make [| seed; 0xc405 |] in
  let duration = Strip_market.Feed.default_config.Strip_market.Feed.duration *. scale in
  let at () = duration *. (0.1 +. (0.8 *. Random.State.float rng 1.0)) in
  let n_events = 2 + Random.State.int rng 4 in
  let events =
    List.init n_events (fun _ ->
        let u = Random.State.float rng 1.0 in
        if u < 0.30 then Experiment.Crash_at (at ())
        else if u < 0.60 then
          (* Heals from 50 ms to ~2.5 s: some are blips shorter than the
             detection timeout, most force an election over the cut. *)
          Experiment.Partition_at
            {
              at = at ();
              heal_after_s = 0.05 +. (2.5 *. Random.State.float rng 1.0);
            }
        else if u < 0.80 then
          Experiment.Drop_burst
            {
              at = at ();
              until_s = 0.5 +. (4.0 *. Random.State.float rng 1.0);
              rate = 0.3 +. (0.6 *. Random.State.float rng 1.0);
            }
        else Experiment.Checkpoint_at (at ()))
    |> List.map (fun ev ->
           (* Bursts carry a duration; rewrite until_s as an absolute
              endpoint now that the opening edge is known. *)
           match ev with
           | Experiment.Drop_burst { at; until_s; rate } ->
             Experiment.Drop_burst { at; until_s = at +. until_s; rate }
           | ev -> ev)
    |> List.sort (fun a b ->
           Float.compare
             (Experiment.chaos_event_time a)
             (Experiment.chaos_event_time b))
  in
  { seed; scale; events }

(* Storage-fault schedules: the classic fault mix plus at-rest media
   events (bit rot in the durable WAL or the newest checkpoint image,
   lying fsyncs, disk-full windows).  A separate generator — rather than
   new arms in {!generate} — keeps every historical seed's classic
   schedule byte-stable. *)
let generate_storage ?(scale = 0.05) ~seed () =
  if scale <= 0.0 then invalid_arg "Schedule.generate_storage: scale <= 0";
  let rng = Random.State.make [| seed; 0x57a6 |] in
  let duration =
    Strip_market.Feed.default_config.Strip_market.Feed.duration *. scale
  in
  let at () = duration *. (0.1 +. (0.8 *. Random.State.float rng 1.0)) in
  let n_storage = 1 + Random.State.int rng 3 in
  let storage_events =
    List.init n_storage (fun _ ->
        let u = Random.State.float rng 1.0 in
        if u < 0.45 then
          Experiment.Bitrot_at
            {
              at = at ();
              target = (if Random.State.bool rng then `Wal else `Checkpoint);
              frac = Random.State.float rng 1.0;
            }
        else if u < 0.70 then Experiment.Fsync_lie_at (at ())
        else
          Experiment.Disk_full_at
            {
              at = at ();
              free_bytes = 64 + Random.State.int rng 512;
              heal_after_s = 0.2 +. Random.State.float rng 1.0;
            })
  in
  (* Half the schedules also race a crash or partition against the media
     faults, so salvage regularly runs as a double fault (corruption
     discovered during crash recovery). *)
  let classic =
    if Random.State.bool rng then
      [
        (if Random.State.bool rng then Experiment.Crash_at (at ())
         else
           Experiment.Partition_at
             {
               at = at ();
               heal_after_s = 0.05 +. (2.5 *. Random.State.float rng 1.0);
             });
      ]
    else []
  in
  let events =
    storage_events @ classic
    |> List.sort (fun a b ->
           Float.compare
             (Experiment.chaos_event_time a)
             (Experiment.chaos_event_time b))
  in
  { seed; scale; events }

let event_json ev =
  match ev with
  | Experiment.Crash_at at ->
    Json.Obj [ ("kind", Json.Str "crash"); ("at", Json.Float at) ]
  | Experiment.Partition_at { at; heal_after_s } ->
    Json.Obj
      [
        ("kind", Json.Str "partition");
        ("at", Json.Float at);
        ("heal_after_s", Json.Float heal_after_s);
      ]
  | Experiment.Drop_burst { at; until_s; rate } ->
    Json.Obj
      [
        ("kind", Json.Str "drop_burst");
        ("at", Json.Float at);
        ("until_s", Json.Float until_s);
        ("rate", Json.Float rate);
      ]
  | Experiment.Checkpoint_at at ->
    Json.Obj [ ("kind", Json.Str "checkpoint"); ("at", Json.Float at) ]
  | Experiment.Bitrot_at { at; target; frac } ->
    Json.Obj
      [
        ("kind", Json.Str "bitrot");
        ("at", Json.Float at);
        ( "target",
          Json.Str (match target with `Wal -> "wal" | `Checkpoint -> "checkpoint")
        );
        ("frac", Json.Float frac);
      ]
  | Experiment.Fsync_lie_at at ->
    Json.Obj [ ("kind", Json.Str "fsync_lie"); ("at", Json.Float at) ]
  | Experiment.Disk_full_at { at; free_bytes; heal_after_s } ->
    Json.Obj
      [
        ("kind", Json.Str "disk_full");
        ("at", Json.Float at);
        ("free_bytes", Json.Int free_bytes);
        ("heal_after_s", Json.Float heal_after_s);
      ]

let to_json s =
  Json.Obj
    [
      ("seed", Json.Int s.seed);
      ("scale", Json.Float s.scale);
      ("events", Json.List (List.map event_json s.events));
    ]

let fail fmt = Printf.ksprintf (fun m -> invalid_arg ("Schedule.of_json: " ^ m)) fmt

let get_float j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some v -> v
  | None -> fail "missing number %S" key

let event_of_json j =
  match Option.bind (Json.member "kind" j) (function
      | Json.Str s -> Some s
      | _ -> None)
  with
  | Some "crash" -> Experiment.Crash_at (get_float j "at")
  | Some "partition" ->
    Experiment.Partition_at
      { at = get_float j "at"; heal_after_s = get_float j "heal_after_s" }
  | Some "drop_burst" ->
    Experiment.Drop_burst
      {
        at = get_float j "at";
        until_s = get_float j "until_s";
        rate = get_float j "rate";
      }
  | Some "checkpoint" -> Experiment.Checkpoint_at (get_float j "at")
  | Some "bitrot" ->
    Experiment.Bitrot_at
      {
        at = get_float j "at";
        target =
          (match Option.bind (Json.member "target" j) (function
               | Json.Str s -> Some s
               | _ -> None)
           with
          | Some "wal" -> `Wal
          | Some "checkpoint" -> `Checkpoint
          | Some k -> fail "unknown bitrot target %S" k
          | None -> fail "bitrot without target");
        frac = get_float j "frac";
      }
  | Some "fsync_lie" -> Experiment.Fsync_lie_at (get_float j "at")
  | Some "disk_full" ->
    Experiment.Disk_full_at
      {
        at = get_float j "at";
        free_bytes =
          (match Option.bind (Json.member "free_bytes" j) Json.to_int with
          | Some v -> v
          | None -> fail "missing number %S" "free_bytes");
        heal_after_s = get_float j "heal_after_s";
      }
  | Some k -> fail "unknown event kind %S" k
  | None -> fail "event without kind"

let of_json j =
  let seed =
    match Option.bind (Json.member "seed" j) Json.to_int with
    | Some v -> v
    | None -> fail "missing seed"
  in
  let scale = get_float j "scale" in
  let events =
    match Json.member "events" j with
    | Some (Json.List l) -> List.map event_of_json l
    | _ -> fail "missing events"
  in
  { seed; scale; events }

let of_string s = of_json (Json.parse s)
let to_string s = Json.to_string (to_json s)

let describe_event ev =
  match ev with
  | Experiment.Crash_at at -> Printf.sprintf "crash@%.2fs" at
  | Experiment.Partition_at { at; heal_after_s } ->
    Printf.sprintf "partition@%.2fs(heal %.2fs)" at heal_after_s
  | Experiment.Drop_burst { at; until_s; rate } ->
    Printf.sprintf "burst@%.2f-%.2fs(%.0f%%)" at until_s (100.0 *. rate)
  | Experiment.Checkpoint_at at -> Printf.sprintf "checkpoint@%.2fs" at
  | Experiment.Bitrot_at { at; target; frac } ->
    Printf.sprintf "bitrot:%s@%.2fs(%.0f%%)"
      (match target with `Wal -> "wal" | `Checkpoint -> "cp")
      at (100.0 *. frac)
  | Experiment.Fsync_lie_at at -> Printf.sprintf "fsync-lie@%.2fs" at
  | Experiment.Disk_full_at { at; free_bytes; heal_after_s } ->
    Printf.sprintf "disk-full@%.2fs(%dB free, heal %.2fs)" at free_bytes
      heal_after_s

let describe s =
  if s.events = [] then "(empty)"
  else String.concat " " (List.map describe_event s.events)
