(* The paper's program trading application (§3), at 1/20 scale: a synthetic
   TAQ-like quote stream drives stock prices; STRIP rules maintain composite
   indexes incrementally and theoretical option prices via Black-Scholes,
   batched with unique transactions.

   Run with: dune exec examples/program_trading.exe *)

open Strip_relational
open Strip_core
open Strip_market
open Strip_pta

let scale = 0.05

let () =
  let db = Strip_db.create () in
  let feed = Feed.scaled Feed.default_config scale in
  let sizes = Pta_tables.scaled_sizes Pta_tables.default_sizes scale in
  Printf.printf
    "populating: %d stocks, %d composites x %d members, %d options...\n%!"
    feed.Feed.n_stocks sizes.Pta_tables.n_comps sizes.Pta_tables.comp_members
    sizes.Pta_tables.n_options;
  let h = Pta_tables.populate db ~feed sizes in

  (* Maintain composites per composite symbol and options per stock symbol —
     the units of batching the paper's experiments recommend (§5). *)
  Comp_rules.install db h Comp_rules.Unique_on_comp ~delay:1.0;
  Option_rules.install db h Option_rules.Unique_on_symbol ~delay:1.0;
  print_endline "installed rules:";
  List.iter
    (fun r -> Format.printf "  %a@." Rule_ast.pp r)
    (Rule_manager.rules (Strip_db.rules db));

  (* Replay the market feed through the simulator. *)
  let trace = Feed.generate feed in
  Printf.printf "replaying %d quotes over %.0f simulated seconds...\n%!"
    (Array.length trace) feed.Feed.duration;
  Array.iter
    (fun (q : Feed.quote) ->
      let symbol = Taq.symbol q.stock in
      Strip_db.submit_update db ~at:q.time (fun txn ->
          Db_ops.update_stock_price txn ~stocks:h.Pta_tables.stocks
            ~by_symbol:h.Pta_tables.stocks_by_symbol ~symbol ~price:q.price))
    trace;
  Strip_sim.Engine.set_arrival_profile (Strip_db.engine db)
    (Feed.arrival_times trace);
  Strip_db.run db;

  (* What did it cost, and is the derived data right? *)
  let stats = Strip_db.stats db in
  Format.printf "%a@."
    (Strip_sim.Stats.pp_summary ~duration_s:feed.Feed.duration)
    stats;

  let check name expected actual tol =
    let tbl = Hashtbl.create 256 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) expected;
    let worst =
      List.fold_left
        (fun worst (k, v) ->
          match Hashtbl.find_opt tbl k with
          | Some e -> Float.max worst (Float.abs (v -. e))
          | None -> infinity)
        0.0 actual
    in
    Printf.printf "%s: %s (max error %.2e over %d rows)\n" name
      (if worst <= tol then "consistent with full recomputation" else "STALE")
      worst (List.length actual)
  in
  check "comp_prices"
    (Comp_rules.recompute_from_scratch h)
    (Comp_rules.maintained h) 1e-6;
  check "option_prices"
    (Option_rules.recompute_from_scratch h)
    (Option_rules.maintained h) 1e-9;

  (* A taste of the application side: the five richest composites. *)
  print_endline "\ntop composites:";
  List.iter
    (fun row ->
      Printf.printf "  %s = %s\n" (Value.to_string row.(0))
        (Value.to_string row.(1)))
    (Strip_db.query_rows db
       "select comp, price from comp_prices order by price desc limit 5")
