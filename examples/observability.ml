(* Observability walkthrough: the quote-stream example with lifecycle
   tracing and the metrics registry turned on.

   A small market feed replays into [stocks]; a unique rule conflates each
   one-second window of quotes into a derived [conflated] table (last
   quote per symbol wins).  Because the database was created with a trace
   buffer, every enqueue / release / execution / merge / commit lands in
   the ring, and the registry accumulates per-class latency histograms and
   per-table staleness.  The run ends by writing:

     obs_trace.json    Chrome trace_event file — open at chrome://tracing
                       or https://ui.perfetto.dev
     obs_metrics.json  metrics-registry snapshot (JSON)
     obs_metrics.csv   the same snapshot as CSV

   Run with: dune exec examples/observability.exe *)

open Strip_relational
open Strip_core
open Strip_market
open Strip_ingest

let () =
  let trace = Strip_obs.Trace.create () in
  let db = Strip_db.create ~trace () in
  Strip_db.exec_script db
    {|create table stocks (symbol string, price float);
      create index stocks_sym on stocks (symbol);
      create table conflated (symbol string, price float);
      create index conflated_sym on conflated (symbol)|};
  let cat = Strip_db.catalog db in
  let stocks = Catalog.table_exn cat "stocks" in
  let conflated = Catalog.table_exn cat "conflated" in

  (* a one-minute, 40-stock feed *)
  let feed =
    {
      Feed.default_config with
      Feed.n_stocks = 40;
      duration = 60.0;
      target_updates = 400;
      seed = 7;
    }
  in
  let prices = Feed.initial_prices feed in
  for s = 0 to feed.Feed.n_stocks - 1 do
    ignore
      (Table.insert stocks [| Value.Str (Taq.symbol s); Value.Float prices.(s) |]);
    ignore
      (Table.insert conflated
         [| Value.Str (Taq.symbol s); Value.Float prices.(s) |])
  done;

  (* The maintenance action: replay the window's changes in arrival order,
     so the last quote per symbol wins. *)
  Strip_db.register_function db "refresh_conflated" (fun ctx ->
      let txn = ctx.Rule_manager.txn in
      List.iter
        (fun row ->
          ignore
            (Strip_txn.Transaction.exec txn
               (Printf.sprintf
                  "update conflated set price = %s where symbol = '%s'"
                  (Value.to_string row.(1))
                  (Value.to_string row.(0)))))
        (Query.rows
           (Strip_txn.Transaction.query txn
              "select symbol, new_price, ord from changes order by ord")));

  Strip_db.create_rule db
    {|create rule conflate on stocks
      when updated price
      if
        select new.symbol as symbol, new.price as new_price,
               new.execute_order as ord
        from new, old
        where new.execute_order = old.execute_order
        bind as changes
      then
        execute refresh_conflated
        unique
        after 1.0 seconds|};

  let target =
    {
      Import.stocks;
      by_symbol = Option.get (Table.find_index stocks "stocks_sym");
    }
  in
  let n = Import.generate_and_replay db target feed in
  Printf.printf "replaying %d quotes through the conflation rule...\n" n;
  Strip_db.run db;

  (* Export the three artifacts. *)
  let oc = open_out "obs_trace.json" in
  Strip_obs.Json.to_channel oc (Strip_obs.Trace.chrome_json trace);
  close_out oc;
  let rows = Strip_obs.Metrics.snapshot (Strip_db.metrics db) in
  let oc = open_out "obs_metrics.json" in
  Strip_obs.Json.to_channel oc (Strip_obs.Metrics.json_of_rows rows);
  close_out oc;
  let oc = open_out "obs_metrics.csv" in
  output_string oc (Strip_obs.Metrics.csv_of_rows rows);
  close_out oc;

  Printf.printf
    "wrote obs_trace.json (%d events, %d dropped), obs_metrics.json, \
     obs_metrics.csv\n"
    (Strip_obs.Trace.length trace)
    (Strip_obs.Trace.dropped trace);

  (* What the registry saw, in one glance. *)
  let stats = Strip_db.stats db in
  let mgr = Strip_db.rules db in
  Printf.printf "\nfirings: %d, merged: %d, maintenance transactions: %d\n"
    (Rule_manager.n_rule_firings mgr)
    (Rule_manager.n_merges mgr)
    (Strip_sim.Stats.n_recompute stats);
  Printf.printf "recompute service time: p50 %.0fus  p99 %.0fus\n"
    (Strip_sim.Stats.service_percentile_us stats Strip_txn.Task.Recompute 50.0)
    (Strip_sim.Stats.service_percentile_us stats Strip_txn.Task.Recompute 99.0);
  List.iter
    (fun table ->
      let s =
        Strip_obs.Histogram.summary (Strip_sim.Stats.staleness_hist stats table)
      in
      Printf.printf
        "staleness of %s: n=%d mean=%.3fs p50=%.3fs p99=%.3fs max=%.3fs\n"
        table s.Strip_obs.Histogram.n s.Strip_obs.Histogram.mean
        s.Strip_obs.Histogram.p50 s.Strip_obs.Histogram.p99
        s.Strip_obs.Histogram.max)
    (Strip_sim.Stats.staleness_tables stats)
