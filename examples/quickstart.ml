(* Quickstart: a table, a unique rule with a delay window, and a handful of
   updates — the whole STRIP loop in fifty lines.

   Run with: dune exec examples/quickstart.exe *)

open Strip_relational
open Strip_core

let () =
  let db = Strip_db.create () in

  (* Base data: a tiny price table. *)
  ignore (Strip_db.exec db "create table prices (symbol string, price float)");
  ignore (Strip_db.exec db "create index prices_sym on prices (symbol)");
  ignore
    (Strip_db.exec db
       "insert into prices values ('ACME', 10.0), ('GLOBEX', 20.0)");

  (* A user function, 'linked into the database': it sees the bound table
     [changes] inside its own transaction. *)
  Strip_db.register_function db "log_changes" (fun ctx ->
      let result =
        Strip_txn.Transaction.query ctx.Rule_manager.txn
          "select symbol, count(*) as n, min(new_price) as lo, \
           max(new_price) as hi from changes group by symbol order by symbol"
      in
      Printf.printf "[t=%.1fs] batch arrived:\n" (Strip_db.now db);
      List.iter
        (fun row ->
          Printf.printf "  %s: %s change(s), range %s .. %s\n"
            (Value.to_string row.(0)) (Value.to_string row.(1))
            (Value.to_string row.(2)) (Value.to_string row.(3)))
        (Query.rows result));

  (* The rule: batch every price change for two simulated seconds, then run
     log_changes once with all of them (a unique transaction, paper §2). *)
  Strip_db.create_rule db
    {|create rule watch_prices on prices
      when updated price
      if
        select new.symbol as symbol, old.price as old_price,
               new.price as new_price
        from new, old
        where new.execute_order = old.execute_order
        bind as changes
      then
        execute log_changes
        unique
        after 2.0 seconds|};

  (* A burst of updates at t = 0, 0.5, 1.0 — they all land in one batch. *)
  List.iter
    (fun (at, sql) ->
      Strip_db.submit_update db ~at (fun txn ->
          ignore (Strip_txn.Transaction.exec txn sql)))
    [
      (0.0, "update prices set price = 10.5 where symbol = 'ACME'");
      (0.5, "update prices set price = 10.25 where symbol = 'ACME'");
      (1.0, "update prices set price += 1.0 where symbol = 'GLOBEX'");
      (* ... and one more after the window closes: a second batch. *)
      (5.0, "update prices set price = 11.0 where symbol = 'ACME'");
    ];

  (* Drain the simulated system. *)
  Strip_db.run db;

  Printf.printf "\nfinal prices:\n";
  List.iter
    (fun row ->
      Printf.printf "  %s = %s\n" (Value.to_string row.(0))
        (Value.to_string row.(1)))
    (Strip_db.query_rows db "select symbol, price from prices order by symbol");

  let mgr = Strip_db.rules db in
  Printf.printf
    "\nrule firings: %d, action transactions: %d, merged firings: %d\n"
    (Rule_manager.n_rule_firings mgr)
    (Rule_manager.n_tasks_created mgr)
    (Rule_manager.n_merges mgr)
