(* Real-time monitoring beyond finance: the paper's robot-arm scenario
   ("readings from sensors (base data) may be used to estimate the weight of
   the object being lifted by the arm (derived data)", §1).

   Four strain-gauge sensors report at 10 Hz in bursts.  A unique rule
   batches readings per arm over a 0.25 s window and recomputes the arm's
   load estimate once per window instead of once per reading; a second,
   non-unique rule fires immediately when any single reading exceeds a hard
   safety threshold — showing how one application mixes batched derived-data
   maintenance with latency-critical alerting.

   Run with: dune exec examples/sensor_monitoring.exe *)

open Strip_relational
open Strip_core

let () =
  let db = Strip_db.create () in
  Strip_db.exec db
    "create table readings (arm string, sensor int, strain float)"
  |> ignore;
  Strip_db.exec db "create index readings_arm on readings (arm)" |> ignore;
  Strip_db.exec db "create table load_estimate (arm string, kg float)"
  |> ignore;
  Strip_db.exec db "create index load_arm on load_estimate (arm)" |> ignore;
  Strip_db.exec db
    "insert into readings values ('left', 1, 0.0), ('left', 2, 0.0), \
     ('left', 3, 0.0), ('left', 4, 0.0), ('right', 1, 0.0), \
     ('right', 2, 0.0), ('right', 3, 0.0), ('right', 4, 0.0)"
  |> ignore;
  Strip_db.exec db
    "insert into load_estimate values ('left', 0.0), ('right', 0.0)"
  |> ignore;

  (* Derived data: load estimate = calibration * mean strain of the arm's
     four gauges, recomputed from the *current* readings (the batch only
     tells us which arm is stale — a non-incremental recomputation, like
     option prices in the paper). *)
  let calibration = 35.0 in
  Strip_db.register_function db "estimate_load" (fun ctx ->
      let txn = ctx.Rule_manager.txn in
      let stale =
        Strip_txn.Transaction.query txn
          "select arm, count(*) as n from batch group by arm"
      in
      List.iter
        (fun row ->
          let arm = Value.to_string row.(0) in
          let mean =
            match
              Query.rows
                (Strip_txn.Transaction.query txn
                   (Printf.sprintf
                      "select avg(strain) as s from readings where arm = '%s'"
                      arm))
            with
            | [ [| Value.Float s |] ] -> s
            | _ -> 0.0
          in
          Printf.printf "[t=%.2fs] %s arm: %s readings batched -> %.1f kg\n"
            (Strip_db.now db) arm (Value.to_string row.(1))
            (calibration *. mean);
          ignore
            (Strip_txn.Transaction.exec txn
               (Printf.sprintf
                  "update load_estimate set kg = %f where arm = '%s'"
                  (calibration *. mean) arm)))
        (Query.rows stale));

  Strip_db.create_rule db
    {|create rule reestimate on readings
      when updated strain
      if
        select new.arm as arm, new.sensor as sensor, new.strain as strain
        from new, old
        where new.execute_order = old.execute_order
        bind as batch
      then
        execute estimate_load
        unique on arm
        after 0.25 seconds|};

  (* The safety alert must not wait for a batch: a plain (non-unique,
     zero-delay) rule with a condition threshold. *)
  Strip_db.register_function db "alert" (fun ctx ->
      List.iter
        (fun row ->
          Printf.printf "[t=%.2fs] !! OVERLOAD %s sensor %s: strain %s\n"
            (Strip_db.now db) (Value.to_string row.(0))
            (Value.to_string row.(1)) (Value.to_string row.(2)))
        (Query.rows
           (Strip_txn.Transaction.query ctx.Rule_manager.txn
              "select arm, sensor, strain from overloads")));
  Strip_db.create_rule db
    {|create rule safety on readings
      when updated strain
      if
        select new.arm as arm, new.sensor as sensor, new.strain as strain
        from new, old
        where new.execute_order = old.execute_order and new.strain > 0.9
        bind as overloads
      then
        execute alert|};

  (* Simulate the arm picking up a crate: bursts of readings per sensor. *)
  let rng = Random.State.make [| 7 |] in
  let t = ref 0.0 in
  for step = 1 to 12 do
    t := !t +. 0.05 +. Random.State.float rng 0.05;
    let arm = if step mod 3 = 0 then "right" else "left" in
    let sensor = 1 + Random.State.int rng 4 in
    let strain =
      if step = 11 then 0.95 (* the overload *)
      else 0.1 +. (float_of_int step *. 0.05)
    in
    let at = !t in
    Strip_db.submit_update db ~at (fun txn ->
        ignore
          (Strip_txn.Transaction.exec txn
             (Printf.sprintf
                "update readings set strain = %f where arm = '%s' and sensor \
                 = %d"
                strain arm sensor)))
  done;
  Strip_db.run db;

  print_endline "\nfinal estimates:";
  List.iter
    (fun row ->
      Printf.printf "  %s arm: %s kg\n" (Value.to_string row.(0))
        (Value.to_string row.(1)))
    (Strip_db.query_rows db "select arm, kg from load_estimate order by arm");
  let mgr = Strip_db.rules db in
  Printf.printf "firings %d / action txns %d / merges %d\n"
    (Rule_manager.n_rule_firings mgr)
    (Rule_manager.n_tasks_created mgr)
    (Rule_manager.n_merges mgr)
