(* Automatic view maintenance (the paper's §8 future work, implemented in
   lib/ivm): define an aggregate view in SQL, let the system derive the
   maintenance rules — and let the advisor pick the unit of batching and the
   delay window from workload statistics.

   Run with: dune exec examples/view_maintenance.exe *)

open Strip_relational
open Strip_core
open Strip_ivm

let () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table sales (region string, product string, amount float, qty int);
      create index sales_region on sales (region);
      insert into sales values
        ('east', 'widget', 120.0, 3), ('east', 'gadget', 80.0, 1),
        ('west', 'widget', 200.0, 5), ('west', 'widget', 50.0, 1),
        ('north', 'gadget', 75.0, 2);
      create view revenue as
        select region, sum(amount) as total, count(*) as n
        from sales
        group by region|};

  print_endline "materialized view 'revenue':";
  let show () =
    List.iter
      (fun row ->
        Printf.printf "  %-6s total=%-8s n=%s\n" (Value.to_string row.(0))
          (Value.to_string row.(1)) (Value.to_string row.(2)))
      (Strip_db.query_rows db
         "select region, total, n from revenue order by region")
  in
  show ();

  (* Derive the maintenance rules; ask the advisor for batching parameters
     given the expected workload. *)
  let view_ast = List.assoc "revenue" (Strip_db.view_definitions db) in
  let analysis =
    View_def.analyze view_ast ~view:"revenue" ~driver:"sales"
      ~driver_columns:[ "region"; "product"; "amount"; "qty" ]
  in
  let stats =
    Advisor.measure_stats db analysis ~update_rate:50.0 ~staleness_bound:2.0
  in
  let advice = Advisor.advise analysis stats in
  Printf.printf "\nadvisor: delay %.2fs, %s\n  (%s)\n" advice.Advisor.delay
    (match advice.Advisor.uniqueness with
    | Rule_ast.Not_unique -> "no batching"
    | Rule_ast.Unique -> "coarse batching"
    | Rule_ast.Unique_on cols -> "batch per " ^ String.concat ", " cols)
    advice.Advisor.reason;
  ignore
    (Rule_gen.install db ~view:"revenue" ~driver:"sales"
       ~uniqueness:advice.Advisor.uniqueness ~delay:advice.Advisor.delay ());
  print_endline "generated rules:";
  List.iter
    (fun r -> Format.printf "  %a@." Rule_ast.pp r)
    (Rule_manager.rules (Strip_db.rules db));

  (* Mixed workload: updates, inserts into a new group, deletes. *)
  List.iter
    (fun (at, sql) ->
      Strip_db.submit_update db ~at (fun txn ->
          ignore (Strip_txn.Transaction.exec txn sql)))
    [
      (0.1, "update sales set amount = 150.0 where product = 'gadget'");
      (0.2, "insert into sales values ('south', 'widget', 300.0, 6)");
      (0.3, "insert into sales values ('south', 'gadget', 40.0, 1)");
      (0.4, "update sales set amount += 10.0 where region = 'east'");
      (0.5, "delete from sales where region = 'north'");
    ];
  Strip_db.run db;

  print_endline "\nafter maintenance:";
  show ();

  (* Cross-check against recomputing the view from scratch. *)
  let recomputed =
    Strip_db.query_rows db
      "select region, sum(amount) as total, count(*) as n from sales group \
       by region order by region"
  in
  let maintained =
    Strip_db.query_rows db
      "select region, total, n from revenue order by region"
  in
  let same =
    List.length recomputed = List.length maintained
    && List.for_all2
         (fun a b -> Array.for_all2 Value.equal a b)
         recomputed maintained
  in
  Printf.printf "\nconsistent with recomputation: %b\n" same;
  if not same then exit 1
