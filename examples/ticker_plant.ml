(* A downstream ticker plant: replay a market feed into the database with
   the import system, and export *conflated* price updates to a consumer
   that only wants one delivery per half-second — the export half of the
   paper's import/export system (§6.2), implemented with a batched unique
   rule under the hood.

   Run with: dune exec examples/ticker_plant.exe *)

open Strip_relational
open Strip_core
open Strip_market
open Strip_ingest

let () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table stocks (symbol string, price float);
      create index stocks_sym on stocks (symbol)|};
  let cat = Strip_db.catalog db in
  let stocks = Catalog.table_exn cat "stocks" in
  let target =
    {
      Import.stocks;
      by_symbol = Option.get (Table.find_index stocks "stocks_sym");
    }
  in

  (* a one-minute, 60-stock feed *)
  let feed =
    {
      Feed.default_config with
      Feed.n_stocks = 60;
      duration = 60.0;
      target_updates = 600;
      seed = 3;
    }
  in
  let prices = Feed.initial_prices feed in
  for s = 0 to feed.Feed.n_stocks - 1 do
    ignore
      (Table.insert stocks [| Value.Str (Taq.symbol s); Value.Float prices.(s) |])
  done;

  (* The consumer: wants at most one (conflated) delivery per 0.5 s. *)
  let deliveries = ref 0 and rows_delivered = ref 0 in
  let sub =
    Export.subscribe db ~table:"stocks" ~events:[ Export.On_update ]
      ~batch:0.5 ~columns:[ "symbol"; "price" ]
      (fun ~time ~rows ->
        incr deliveries;
        rows_delivered := !rows_delivered + List.length rows;
        if !deliveries <= 5 then
          Printf.printf "[t=%6.2fs] tick batch: %d change(s), e.g. %s @ %s\n"
            time (List.length rows)
            (Value.to_string (List.hd rows).(0))
            (Value.to_string (List.hd rows).(1)))
  in

  let n = Import.generate_and_replay db target feed in
  Printf.printf "replaying %d quotes...\n" n;
  Strip_db.run db;

  Printf.printf
    "\n%d raw quotes -> %d conflated deliveries (%.1f changes per delivery \
     on average)\n"
    n (Export.deliveries sub)
    (float_of_int !rows_delivered /. float_of_int (max 1 !deliveries));
  let stats = Strip_db.stats db in
  Format.printf "%a@."
    (Strip_sim.Stats.pp_summary ~duration_s:feed.Feed.duration)
    stats;
  assert (!rows_delivered = n)
