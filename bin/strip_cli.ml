(* strip-cli — drive the STRIP reproduction from the command line.

   Subcommands:
     experiment   run one PTA experiment configuration and print its metrics
     explain      print the provenance lineage tree behind one derived row
     trace        generate a TAQ-style quote file
     rules        print the paper's rule definitions (Figures 3/6/7/8)
     repl         interactive SQL + rule-DDL shell on a fresh database
     chaos        explore seeded fault schedules and shrink failures
     scrub        run one storage-fault schedule and report the repair mix *)

open Cmdliner
open Strip_pta
open Strip_market

(* ------------------------------------------------------------------ *)
(* experiment                                                           *)

let view_arg =
  let doc = "View to maintain: comps | options." in
  Arg.(value & opt string "comps" & info [ "view" ] ~docv:"VIEW" ~doc)

let variant_arg =
  let doc =
    "Batching variant: none | unique | symbol | comp (comps) / option \
     (options)."
  in
  Arg.(value & opt string "none" & info [ "variant" ] ~docv:"VARIANT" ~doc)

let delay_arg =
  let doc = "Delay window in seconds." in
  Arg.(value & opt float 1.0 & info [ "delay" ] ~docv:"SECONDS" ~doc)

let scale_arg =
  let doc =
    "Workload scale factor (1.0 = the paper's 30-minute, 60k-update run)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let verify_arg =
  let doc = "Verify the maintained view against full recomputation." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let seed_arg =
  let doc = "Trace random seed." in
  Arg.(value & opt int 1994 & info [ "seed" ] ~docv:"SEED" ~doc)

let abort_rate_arg =
  let doc =
    "Inject transaction aborts at this per-commit probability (0 disables \
     injection).  Failed tasks are retried with exponential backoff."
  in
  Arg.(value & opt float 0.0 & info [ "abort-rate" ] ~docv:"RATE" ~doc)

let fault_seed_arg =
  let doc = "Fault-injector random seed (injection is deterministic)." in
  Arg.(value & opt int 2025 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let retries_arg =
  let doc = "Retry budget: total attempts per failed task." in
  Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N" ~doc)

let servers_arg =
  let doc =
    "Number of logical executor servers; overlapping task service windows \
     are arbitrated by the 2PL lock manager (blocked tasks park and wake \
     deterministically)."
  in
  Arg.(value & opt int 1 & info [ "servers" ] ~docv:"N" ~doc)

let watermark_arg =
  let doc =
    "Overload high watermark: shed (coalescing when possible) delayed rule \
     tasks once the live backlog exceeds $(docv).  0 disables overload \
     control."
  in
  Arg.(value & opt int 0 & info [ "watermark" ] ~docv:"N" ~doc)

let crash_rate_arg =
  let doc =
    "Inject whole-engine crashes at this per-site probability (0 disables).  \
     A crash kills all volatile state; the run restarts from the write-ahead \
     log and last checkpoint, then resumes the remaining feed.  Implies \
     durability."
  in
  Arg.(value & opt float 0.0 & info [ "crash-rate" ] ~docv:"RATE" ~doc)

let crash_at_arg =
  let doc =
    "Schedule one deterministic crash at $(docv) simulated seconds.  Implies \
     durability."
  in
  Arg.(value & opt (some float) None & info [ "crash-at" ] ~docv:"SECONDS" ~doc)

let checkpoint_interval_arg =
  let doc =
    "Enable the durability layer and take fuzzy checkpoints every $(docv) \
     simulated seconds (0 = only the initial checkpoint, so recovery redoes \
     the whole log)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "checkpoint-interval" ] ~docv:"SECONDS" ~doc)

let trace_file_arg =
  let doc =
    "Record task/transaction lifecycle events and write them to $(docv) in \
     the Chrome trace_event format (open at chrome://tracing or \
     ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let slo_arg =
  let doc =
    "Staleness SLO objective $(docv) (repeatable), e.g. \
     $(b,comp_prices:2.0).  Every maintenance commit's staleness is \
     checked against the bound; the report gains per-view verdict lines \
     with violation windows, and any violated objective fails the run \
     (exit 1)."
  in
  Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"VIEW:BOUND" ~doc)

let metrics_file_arg =
  let doc =
    "Write the post-run metrics-registry snapshot (latency percentiles per \
     task class, per-table staleness, failure counters) to $(docv); a .csv \
     suffix selects CSV, anything else JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Print the experiment metrics as JSON instead of a table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let replicas_arg =
  let doc =
    "Attach $(docv) read replicas fed by WAL log shipping.  Implies the \
     durability layer; a primary crash is then resolved by failover \
     promotion instead of restart-in-place.  0 (the default) creates no \
     cluster and leaves the run identical to a non-replicated one."
  in
  Arg.(value & opt int 0 & info [ "replicas" ] ~docv:"N" ~doc)

let read_policy_arg =
  let doc =
    "Routing policy for the read pump: $(b,any) (round-robin over primary \
     and replicas), $(b,bounded:SECS) (any replica whose staleness is \
     under SECS, falling through to the primary; $(b,bounded:0) always \
     reads the primary), or $(b,primary) (primary only)."
  in
  Arg.(value & opt string "any" & info [ "read-policy" ] ~docv:"POLICY" ~doc)

let read_rate_arg =
  let doc =
    "Issue $(docv) read-only point queries per simulated second, routed by \
     $(b,--read-policy).  0 (the default) disables the read pump."
  in
  Arg.(value & opt float 0.0 & info [ "read-rate" ] ~docv:"RATE" ~doc)

let shards_arg =
  let doc =
    "Partition the base tables across $(docv) shard primaries \
     (hash-on-symbol), each with its own engine, WAL and checkpoints; \
     cross-shard composite maintenance ships weighted partial deltas \
     through the distributed unique-transaction queue.  1 (the default) \
     keeps the single-primary path and leaves the run byte-identical to a \
     shard-less one."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shard_crash_at_arg =
  let doc =
    "Crash shard $(b,SID) at $(b,SECONDS) simulated seconds (format \
     $(b,SID:SECONDS)); the shard restarts in place from its own WAL and \
     re-ships its unacknowledged partials.  Requires $(b,--shards) > 1."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-crash-at" ] ~docv:"SID:SECONDS" ~doc)

let parse_shard_crash_at = function
  | None -> Ok None
  | Some s -> (
    match String.index_opt s ':' with
    | Some i -> (
      let sid = String.sub s 0 i
      and at = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt sid, float_of_string_opt at) with
      | Some sid, Some at when sid >= 0 && at >= 0.0 -> Ok (Some (sid, at))
      | _ -> Error (Printf.sprintf "bad --shard-crash-at %S (want SID:SECONDS)" s))
    | None ->
      Error (Printf.sprintf "bad --shard-crash-at %S (want SID:SECONDS)" s))

let parse_read_policy s =
  let open Strip_repl.Cluster in
  match s with
  | "any" -> Ok Any
  | "primary" -> Ok Primary_only
  | _ ->
    let prefix = "bounded:" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match float_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some b when b >= 0.0 -> Ok (Bounded_staleness b)
      | _ -> Error (Printf.sprintf "bad staleness bound in %S" s)
    else
      Error
        (Printf.sprintf "unknown read policy %S (any|bounded:SECS|primary)" s)

let rule_of_strings view variant =
  match (view, variant) with
  | "comps", "none" -> Ok (Experiment.Comp_view Comp_rules.Non_unique)
  | "comps", "unique" -> Ok (Experiment.Comp_view Comp_rules.Unique_coarse)
  | "comps", "symbol" -> Ok (Experiment.Comp_view Comp_rules.Unique_on_symbol)
  | "comps", "comp" -> Ok (Experiment.Comp_view Comp_rules.Unique_on_comp)
  | "options", "none" -> Ok (Experiment.Option_view Option_rules.Non_unique)
  | "options", "unique" -> Ok (Experiment.Option_view Option_rules.Unique_coarse)
  | "options", "symbol" ->
    Ok (Experiment.Option_view Option_rules.Unique_on_symbol)
  | "options", "option" ->
    Ok (Experiment.Option_view Option_rules.Unique_on_option)
  | _ -> Error (Printf.sprintf "unknown view/variant: %s/%s" view variant)

let parse_slos specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun os ->
          Result.map (fun o -> o :: os) (Strip_obs.Slo.parse spec)))
    (Ok []) specs
  |> Result.map List.rev

let run_experiment view variant delay scale verify seed abort_rate fault_seed
    retries servers watermark crash_rate crash_at checkpoint_interval replicas
    read_policy read_rate shards shard_crash_at slo_specs trace_file
    metrics_file json =
  match
    Result.bind (rule_of_strings view variant) (fun rule ->
        Result.bind (parse_read_policy read_policy) (fun p ->
            Result.bind (parse_shard_crash_at shard_crash_at) (fun sc ->
                Result.map
                  (fun os -> (rule, p, sc, os))
                  (parse_slos slo_specs))))
  with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok (_, _, Some _, _) when shards < 2 ->
    prerr_endline "--shard-crash-at requires --shards > 1";
    1
  | Ok (rule, policy, shard_crash, objectives) ->
    let cfg = Experiment.default_config rule ~delay in
    let cfg =
      { cfg with Experiment.feed = { cfg.Experiment.feed with Feed.seed } }
    in
    let cfg = if scale <> 1.0 then Experiment.quick cfg scale else cfg in
    let cfg = { cfg with Experiment.verify; servers = max 1 servers } in
    let cfg =
      if watermark > 0 then
        {
          cfg with
          Experiment.overload =
            Some
              {
                Strip_sim.Engine.high_watermark = watermark;
                shed_policy = Strip_sim.Engine.Coalesce;
              };
        }
      else cfg
    in
    let cfg =
      if abort_rate > 0.0 then
        Experiment.with_faults ~seed:fault_seed
          ~retry:
            { Strip_sim.Engine.default_retry with max_attempts = retries }
          ~abort_rate cfg
      else cfg
    in
    let cfg =
      if crash_rate > 0.0 then begin
        let open Strip_txn in
        let base =
          match cfg.Experiment.fault with
          | Some f -> f
          | None -> { Fault.default_config with Fault.seed = fault_seed }
        in
        {
          cfg with
          Experiment.fault =
            Some
              {
                base with
                Fault.rates = { base.Fault.rates with Fault.crash = crash_rate };
              };
        }
      end
      else cfg
    in
    let cfg =
      if crash_rate > 0.0 || crash_at <> None || checkpoint_interval <> None
      then
        {
          cfg with
          Experiment.recovery =
            Some
              {
                Experiment.default_recovery with
                Experiment.checkpoint_every =
                  (match checkpoint_interval with
                  | Some i when i > 0.0 -> Some i
                  | Some _ -> None
                  | None ->
                    Experiment.default_recovery.Experiment.checkpoint_every);
                crash_at;
              };
        }
      else cfg
    in
    let cfg =
      if replicas > 0 || read_rate > 0.0 then
        {
          cfg with
          Experiment.repl =
            Some
              {
                Experiment.default_repl with
                Experiment.replicas = max 0 replicas;
                read_policy = policy;
                read_rate = max 0.0 read_rate;
              };
        }
      else cfg
    in
    let cfg =
      if shards > 1 then
        {
          cfg with
          Experiment.shard =
            Some
              {
                (Experiment.default_shard ~shards) with
                Experiment.shard_crash_at = shard_crash;
              };
        }
      else cfg
    in
    let tr = Option.map (fun _ -> Strip_obs.Trace.create ()) trace_file in
    let slo =
      match objectives with
      | [] -> None
      | os -> Some (Strip_obs.Slo.create os)
    in
    let cfg = { cfg with Experiment.trace = tr; slo } in
    let m = Shard_exp.dispatch cfg in
    if json then Report.print_metrics_json [ m ]
    else begin
      Report.print_metrics_header ();
      Report.print_metrics m;
      Report.print_failures m;
      Report.print_servers m;
      Report.print_recovery m;
      Report.print_repl m;
      Report.print_shard m;
      Report.print_staleness m;
      Report.print_slo m;
      Report.print_trace m;
      Printf.printf
        "updates: %d; firings: %d; fanout E[rows/update]: %.1f; busy \
         update/recompute: %.1fs/%.1fs\n"
        m.Experiment.n_updates m.Experiment.n_firings
        m.Experiment.expected_fanout m.Experiment.busy_update_s
        m.Experiment.busy_recompute_s
    end;
    (match (trace_file, tr) with
    | Some path, Some tr ->
      let oc = open_out path in
      (* A replicated traced run merges every node's buffer into one
         cluster-wide tree (one pid per node); otherwise the single
         primary buffer exports exactly as before. *)
      (match m.Experiment.cluster_traces with
      | [] ->
        Strip_obs.Json.to_channel oc (Strip_obs.Trace.chrome_json tr);
        close_out oc;
        if not json then
          Printf.printf "wrote Chrome trace (%d events) to %s\n"
            (Strip_obs.Trace.length tr) path
      | nodes ->
        Strip_obs.Json.to_channel oc (Strip_obs.Trace.merge_chrome_json nodes);
        close_out oc;
        if not json then
          Printf.printf
            "wrote merged cluster trace (%d events across %d nodes) to %s\n"
            (List.fold_left
               (fun a (_, t) -> a + Strip_obs.Trace.length t)
               0 nodes)
            (List.length nodes) path)
    | _ -> ());
    (match metrics_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      if Filename.check_suffix path ".csv" then
        output_string oc (Strip_obs.Metrics.csv_of_rows m.Experiment.registry)
      else
        Strip_obs.Json.to_channel oc
          (Strip_obs.Metrics.json_of_rows m.Experiment.registry);
      close_out oc;
      if not json then Printf.printf "wrote metrics snapshot to %s\n" path);
    let audit_failed =
      (match m.Experiment.recovery with
      | Some r -> not r.Experiment.audit_clean
      | None -> false)
      ||
      match m.Experiment.shard with
      | Some s -> s.Experiment.cross_divergences > 0
      | None -> false
    in
    let slo_failed =
      List.exists
        (fun (r : Strip_obs.Slo.view_report) -> not r.Strip_obs.Slo.r_met)
        m.Experiment.slo
    in
    (match m.Experiment.verified with
    | Some false -> 1
    | _ -> if audit_failed || slo_failed then 1 else 0)

let experiment_cmd =
  let term =
    Term.(
      const run_experiment $ view_arg $ variant_arg $ delay_arg $ scale_arg
      $ verify_arg $ seed_arg $ abort_rate_arg $ fault_seed_arg $ retries_arg
      $ servers_arg $ watermark_arg $ crash_rate_arg $ crash_at_arg
      $ checkpoint_interval_arg $ replicas_arg $ read_policy_arg
      $ read_rate_arg $ shards_arg $ shard_crash_at_arg $ slo_arg
      $ trace_file_arg $ metrics_file_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Run one program-trading experiment (a Figure 9-14 curve point).")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                              *)

let explain_table_arg =
  let doc = "Derived table (view) to explain, e.g. comp_prices." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc)

let explain_key_arg =
  let doc =
    "Derived-row key, e.g. a composite name.  List recorded keys by \
     passing a key that matches nothing."
  in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY" ~doc)

let explain_limit_arg =
  let doc = "Most recent firings to show (0 = all)." in
  Arg.(value & opt int 5 & info [ "limit" ] ~docv:"N" ~doc)

let run_explain view variant delay scale seed table key limit json =
  match rule_of_strings view variant with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok rule ->
    let cfg = Experiment.default_config rule ~delay in
    let cfg =
      { cfg with Experiment.feed = { cfg.Experiment.feed with Feed.seed } }
    in
    let cfg = if scale <> 1.0 then Experiment.quick cfg scale else cfg in
    let prov = Strip_obs.Provenance.create () in
    (* Tracing on too, so every lineage entry carries the trace/span ids
       of the firing that wrote it and can be cross-referenced against a
       --trace export of the same seed. *)
    let cfg =
      {
        cfg with
        Experiment.verify = false;
        provenance = Some prov;
        trace = Some (Strip_obs.Trace.create ());
      }
    in
    ignore (Experiment.run cfg);
    (match Strip_obs.Provenance.query prov ~view:table ~key with
    | [] ->
      Printf.eprintf "no provenance recorded for %s[%s]\n" table key;
      (match Strip_obs.Provenance.views prov with
      | [] -> ()
      | views ->
        Printf.eprintf "views with recorded lineage: %s\n"
          (String.concat ", " views);
        if List.mem table views then begin
          let keys = Strip_obs.Provenance.keys prov ~view:table in
          let shown = List.filteri (fun i _ -> i < 10) keys in
          Printf.eprintf "%s keys (%d recorded): %s%s\n" table
            (List.length keys) (String.concat ", " shown)
            (if List.length keys > List.length shown then ", ..." else "")
        end);
      1
    | _ ->
      if json then
        print_endline
          (Strip_obs.Json.to_string
             (Strip_obs.Provenance.json prov ~view:table ~key))
      else print_string (Strip_obs.Provenance.render ~limit prov ~view:table ~key);
      0)

let explain_cmd =
  let term =
    Term.(
      const run_explain $ view_arg $ variant_arg $ delay_arg $ scale_arg
      $ seed_arg $ explain_table_arg $ explain_key_arg $ explain_limit_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run one experiment with the derived-row provenance store armed \
          and print the lineage tree behind TABLE[KEY]: each rule firing \
          with its transaction, trace span, commit time, and the base \
          deltas it consumed.")
    term

(* ------------------------------------------------------------------ *)
(* trace                                                                *)

let out_arg =
  let doc = "Output file." in
  Arg.(value & opt string "trace.taq" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let run_trace out scale seed =
  let cfg = { (Feed.scaled Feed.default_config scale) with Feed.seed } in
  let quotes = Feed.generate cfg in
  Taq.save out quotes;
  Printf.printf "wrote %d quotes (%.0f simulated seconds) to %s\n"
    (Array.length quotes) cfg.Feed.duration out;
  0

let trace_cmd =
  let term = Term.(const run_trace $ out_arg $ scale_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a TAQ-style consolidated quote file.")
    term

(* ------------------------------------------------------------------ *)
(* rules                                                                *)

let run_rules () =
  print_endline "-- comp_prices maintenance (Figures 3, 6, 7):";
  List.iter
    (fun v ->
      Printf.printf "\n%s\n" (Comp_rules.rule_text v ~delay:1.0))
    Comp_rules.all_variants;
  print_endline "\n-- option_prices maintenance (Figure 8 and variants):";
  List.iter
    (fun v ->
      Printf.printf "\n%s\n" (Option_rules.rule_text v ~delay:1.0))
    Option_rules.all_variants;
  0

let rules_cmd =
  let term = Term.(const run_rules $ const ()) in
  Cmd.v
    (Cmd.info "rules" ~doc:"Print the paper's rule definitions as STRIP DDL.")
    term

(* ------------------------------------------------------------------ *)
(* repl                                                                 *)

let run_repl () =
  let open Strip_core in
  let db = Strip_db.create () in
  print_endline
    "STRIP repl — SQL statements and `create rule ...` DDL; empty line or \
     \\q quits; \\run drains pending rule tasks; \\dt lists tables; \\rules \
     lists rules.";
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "strip> " else "   ... ");
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> 0
    | "" | "\\q" when Buffer.length buffer = 0 -> 0
    | "\\run" ->
      Strip_db.run db;
      Printf.printf "drained; now = %.2fs\n" (Strip_db.now db);
      loop ()
    | "\\dt" ->
      let open Strip_relational in
      List.iter
        (fun tb ->
          Printf.printf "%-20s %6d rows  %s  indexes: %s\n" (Table.name tb)
            (Table.cardinal tb)
            (Format.asprintf "%a" Schema.pp (Table.schema tb))
            (String.concat ", "
               (List.map
                  (fun i ->
                    Printf.sprintf "%s(%s)" (Index.name i)
                      (match Index.kind i with
                      | Index.Hash -> "hash"
                      | Index.Ordered -> "tree"))
                  (Table.indexes tb))))
        (Catalog.tables (Strip_db.catalog db));
      loop ()
    | "\\rules" ->
      List.iter
        (fun r -> Format.printf "%a@." Rule_ast.pp r)
        (Rule_manager.rules (Strip_db.rules db));
      loop ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      if String.contains line ';' then begin
        let text = Buffer.contents buffer in
        Buffer.clear buffer;
        (try
           match Strip_db.exec db (String.trim text) with
           | Strip_relational.Sql_exec.Rows r ->
             let open Strip_relational in
             let names = Schema.names (Query.result_schema r) in
             print_endline (String.concat " | " names);
             List.iter
               (fun row ->
                 print_endline
                   (String.concat " | "
                      (Array.to_list (Array.map Value.to_string row))))
               (Query.rows r)
           | Strip_relational.Sql_exec.Count n -> Printf.printf "%d row(s)\n" n
           | Strip_relational.Sql_exec.Unit -> print_endline "ok"
         with
        | Strip_relational.Sql_parser.Parse_error msg ->
          Printf.printf "parse error: %s\n" msg
        | Strip_relational.Query.Plan_error msg ->
          Printf.printf "plan error: %s\n" msg
        | Rule_manager.Rule_error msg -> Printf.printf "rule error: %s\n" msg
        | Strip_relational.Value.Type_error msg ->
          Printf.printf "type error: %s\n" msg
        | Invalid_argument msg -> Printf.printf "error: %s\n" msg);
        loop ()
      end
      else loop ()
  in
  loop ()

let repl_cmd =
  let term = Term.(const run_repl $ const ()) in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL and rule-DDL shell.") term

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)

let schedules_arg =
  let doc = "Number of seeded schedules to generate and run." in
  Arg.(value & opt int 25 & info [ "schedules" ] ~docv:"N" ~doc)

let chaos_seed_arg =
  let doc = "Base seed; schedule $(i,i) uses seed + i." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let chaos_scale_arg =
  let doc = "Workload scale factor for each schedule's experiment." in
  Arg.(value & opt float 0.05 & info [ "chaos-scale" ] ~docv:"F" ~doc)

let replay_arg =
  let doc = "Replay one saved schedule (JSON) instead of exploring." in
  Arg.(
    value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let failure_out_arg =
  let doc = "Where to write the shrunk reproducer if a schedule fails." in
  Arg.(
    value
    & opt string "chaos_failure.json"
    & info [ "out" ] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_chaos schedules seed scale storage replay out slo_specs json =
  match parse_slos slo_specs with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok objectives -> (
    let slo = match objectives with [] -> None | os -> Some os in
    match replay with
    | Some path ->
    let s =
      try Ok (Strip_chaos.Schedule.of_string (read_file path)) with
      | Sys_error msg -> Error msg
      | Invalid_argument msg | Strip_obs.Json.Parse_error msg ->
        Error (Printf.sprintf "%s: %s" path msg)
    in
    (match s with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok s ->
      let o = Strip_chaos.Explore.run_schedule ?slo s in
      if json then
        print_endline (Strip_obs.Json.to_string (Strip_chaos.Explore.outcome_json o))
      else begin
        Printf.printf "replaying %s (seed %d, scale %g):\n" path
          s.Strip_chaos.Schedule.seed s.Strip_chaos.Schedule.scale;
        Strip_chaos.Explore.print_outcome o
      end;
      if o.Strip_chaos.Explore.violations = [] then 0 else 1)
    | None ->
    let outcomes =
      if storage then
        Strip_chaos.Explore.explore_storage ?slo ~scale ~seed ~schedules ()
      else Strip_chaos.Explore.explore ?slo ~scale ~seed ~schedules ()
    in
    if json then
      print_endline
        (Strip_obs.Json.to_string
           (Strip_chaos.Explore.summary_json ~seed ~scale outcomes))
    else Strip_chaos.Explore.print_summary outcomes;
    (match
       List.find_opt
         (fun (o : Strip_chaos.Explore.outcome) ->
           o.Strip_chaos.Explore.violations <> [])
         outcomes
     with
    | None -> 0
    | Some o ->
      let shrunk =
        Strip_chaos.Explore.shrink ?slo o.Strip_chaos.Explore.schedule
      in
      let oc = open_out out in
      Strip_obs.Json.to_channel oc
        (Strip_chaos.Schedule.to_json shrunk.Strip_chaos.Explore.schedule);
      close_out oc;
      if not json then
        Printf.printf
          "shrunk failing schedule to %d event(s); reproducer written to \
           %s (replay with: strip-cli chaos --replay %s)\n"
          (List.length
             shrunk.Strip_chaos.Explore.schedule.Strip_chaos.Schedule.events)
          out out;
      1))

let chaos_storage_arg =
  let doc =
    "Explore storage-fault schedules (at-rest bit-rot, lying fsync, \
     disk-full backpressure) instead of the classic crash/partition mix; \
     arms the $(b,no_silent_corruption) and $(b,salvage_converges) \
     invariants on every run."
  in
  Arg.(value & flag & info [ "storage" ] ~doc)

let chaos_slo_arg =
  let doc =
    "Staleness SLO objective $(docv) (repeatable), armed as an extra \
     invariant: a schedule under which any objective is violated fails \
     and shrinks like any other violation."
  in
  Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"VIEW:BOUND" ~doc)

let chaos_cmd =
  let term =
    Term.(
      const run_chaos $ schedules_arg $ chaos_seed_arg $ chaos_scale_arg
      $ chaos_storage_arg $ replay_arg $ failure_out_arg $ chaos_slo_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Explore seeded fault schedules (crashes, partitions, drop \
          bursts, checkpoint races) against a replicated durable run, \
          check invariants, and shrink any failure to a minimal \
          replayable reproducer.")
    term

(* ------------------------------------------------------------------ *)
(* scrub                                                                *)

let scrub_every_arg =
  let doc =
    "Background scrubber period in simulated seconds; 0 disables the \
     scrubber so corruption is only found by ship-time verification or \
     recovery (the silent-corruption demo)."
  in
  Arg.(value & opt float 0.5 & info [ "every" ] ~docv:"SECONDS" ~doc)

let scrub_retain_arg =
  let doc = "Checkpoint slots to retain for slot-CRC fallback." in
  Arg.(value & opt int 2 & info [ "retain" ] ~docv:"N" ~doc)

let run_scrub seed scale every retain json =
  let s = Strip_chaos.Schedule.generate_storage ~scale ~seed () in
  let storage =
    {
      Experiment.scrub_every = (if every > 0.0 then Some every else None);
      retain = max 1 retain;
    }
  in
  let o = Strip_chaos.Explore.run_schedule ~storage s in
  if json then
    print_endline
      (Strip_obs.Json.to_string (Strip_chaos.Explore.outcome_json o))
  else begin
    Printf.printf "storage-fault schedule (seed %d, scale %g):\n" seed scale;
    Strip_chaos.Explore.print_outcome o;
    match o.Strip_chaos.Explore.storage with
    | None -> ()
    | Some st ->
      Printf.printf
        "  scrub: %d pass(es) over %d bytes; %d WAL + %d checkpoint \
         corruption(s); repaired %d from replicas, %d from checkpoints; \
         salvage cpu %.1fms\n"
        st.Experiment.scrub_passes st.Experiment.scrub_bytes
        st.Experiment.wal_corruptions st.Experiment.cp_corruptions
        st.Experiment.repaired_replica st.Experiment.repaired_checkpoint
        (1e3 *. st.Experiment.salvage_s)
  end;
  if o.Strip_chaos.Explore.violations = [] then 0 else 1

let scrub_cmd =
  let term =
    Term.(
      const run_scrub $ chaos_seed_arg $ chaos_scale_arg $ scrub_every_arg
      $ scrub_retain_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Run one seeded storage-fault schedule (bit-rot, lying fsync, \
          disk-full) against a replicated durable run with the background \
          scrubber armed, and report the media-fault ledger: what was \
          injected, what was detected, and how each fault was repaired \
          (replica fetch, checkpoint fallback, or quarantine).")
    term

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "strip-cli" ~version:"1.0.0"
      ~doc:
        "STRIP rule system reproduction (Adelberg, Garcia-Molina, Widom, \
         SIGMOD 1997)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            experiment_cmd;
            explain_cmd;
            trace_cmd;
            rules_cmd;
            repl_cmd;
            chaos_cmd;
            scrub_cmd;
          ]))
