(* The sharded write path: hash partitioner, partial-delta codec, the
   Shard_* WAL records, the distributed unique-transaction queue's
   idempotence and determinism, and end-to-end sharded runs (clean
   cross-shard audit, in-process re-run determinism, crash-during-ship
   exactly-once recovery). *)

open Strip_relational
open Strip_txn
open Strip_pta
module Partitioner = Strip_shard.Partitioner
module Partial = Strip_shard.Partial
module Dqueue = Strip_shard.Dqueue

(* ------------------------------------------------------------------ *)
(* Partitioner *)

let test_partitioner () =
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Partitioner.create: shards < 1") (fun () ->
      ignore (Partitioner.create ~shards:0));
  let p = Partitioner.create ~shards:4 in
  let syms = List.init 500 Strip_market.Taq.symbol in
  let hit = Array.make 4 false in
  List.iter
    (fun s ->
      let i = Partitioner.shard_of_symbol p s in
      Alcotest.(check bool) "in range" true (i >= 0 && i < 4);
      Alcotest.(check int) "deterministic" i (Partitioner.shard_of_symbol p s);
      (* symbol and composite keys route through the same hash *)
      Alcotest.(check int) "comp = symbol routing" i
        (Partitioner.shard_of_comp p s);
      hit.(i) <- true)
    syms;
  Alcotest.(check bool) "all shards populated" true
    (Array.for_all Fun.id hit);
  let one = Partitioner.create ~shards:1 in
  List.iter
    (fun s ->
      Alcotest.(check int) "single shard owns all" 0
        (Partitioner.shard_of_symbol one s))
    syms

(* ------------------------------------------------------------------ *)
(* Partial-delta codec *)

let roundtrip msg = Partial.decode (Partial.encode msg)

let test_partial_codec () =
  let p =
    {
      Partial.src = 2;
      seq = 41;
      dst = 0;
      key = [ Value.Str "C17" ];
      delta = -3.125;
      created_at = 12.5;
      ctx = Some (77, 13);
    }
  in
  (match roundtrip (Partial.Partial p) with
  | Partial.Partial q ->
    Alcotest.(check int) "src" p.Partial.src q.Partial.src;
    Alcotest.(check int) "seq" p.Partial.seq q.Partial.seq;
    Alcotest.(check int) "dst" p.Partial.dst q.Partial.dst;
    Alcotest.(check bool) "key" true (p.Partial.key = q.Partial.key);
    Alcotest.(check (float 0.0)) "delta" p.Partial.delta q.Partial.delta;
    Alcotest.(check (float 0.0)) "created_at" p.Partial.created_at
      q.Partial.created_at;
    Alcotest.(check bool) "ctx" true (q.Partial.ctx = Some (77, 13))
  | Partial.Ack _ -> Alcotest.fail "decoded as ack");
  (match roundtrip (Partial.Partial { p with Partial.ctx = None }) with
  | Partial.Partial q -> Alcotest.(check bool) "no ctx" true (q.Partial.ctx = None)
  | Partial.Ack _ -> Alcotest.fail "decoded as ack");
  (match roundtrip (Partial.Ack { src = 3; seq = 99 }) with
  | Partial.Ack { src; seq } ->
    Alcotest.(check int) "ack src" 3 src;
    Alcotest.(check int) "ack seq" 99 seq
  | Partial.Partial _ -> Alcotest.fail "decoded as partial");
  let garbage = "\xff" ^ String.make 8 '\x00' in
  Alcotest.(check bool) "unknown tag raises" true
    (match Partial.decode garbage with
    | exception Strip_txn.Codec.Decode_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Shard_* WAL records *)

let test_wal_shard_records () =
  let recs =
    [
      Wal.Shard_out
        {
          seq = 5;
          dst = 1;
          key = [ Value.Str "C3" ];
          delta = 0.625;
          created_at = 1.5;
        };
      Wal.Shard_in
        {
          src = 3;
          seq = 12;
          key = [ Value.Str "C3"; Value.Int 7 ];
          delta = -1.25;
          created_at = 2.0;
        };
      Wal.Shard_release { key = [ Value.Str "C3" ] };
      Wal.Shard_state
        {
          next_seq = 6;
          seen = [ (0, 1); (2, 4) ];
          pending = [ ([ Value.Str "C9" ], 2.5, 1.0) ];
          unacked = [ (5, 1, [ Value.Str "C3" ], 0.625, 1.5) ];
        };
    ]
  in
  let w = Wal.create () in
  ignore (Wal.append_batch w recs);
  Wal.fsync w;
  let got = List.map snd (Wal.read w).Wal.records in
  Alcotest.(check int) "all read back" (List.length recs) (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "record round-trips" true (a = b))
    recs got

(* ------------------------------------------------------------------ *)
(* Distributed unique-transaction queue *)

let k c = [ Value.Str c ]

let test_dqueue_idempotence () =
  let q = Dqueue.create () in
  let offer ?(src = 0) ?(seq = 0) ?(key = "C1") ?(delta = 1.0) ?(at = 1.0) () =
    Dqueue.offer q ~src ~seq ~key:(k key) ~delta ~created_at:at
  in
  Alcotest.(check bool) "first is fresh" true (offer () = Dqueue.Fresh);
  Alcotest.(check bool) "resend is duplicate" true
    (offer ~delta:99.0 () = Dqueue.Duplicate);
  Alcotest.(check bool) "same key, new identity merges" true
    (offer ~src:1 ~seq:0 ~delta:0.5 ~at:2.0 () = Dqueue.Merged);
  (match Dqueue.peek q ~key:(k "C1") with
  | Some (d, at) ->
    Alcotest.(check (float 1e-12)) "merged total" 1.5 d;
    Alcotest.(check (float 0.0)) "keeps first arrival time" 1.0 at
  | None -> Alcotest.fail "pending entry missing");
  (* duplicate of the merged identity still changes nothing *)
  Alcotest.(check bool) "merged identity deduped" true
    (offer ~src:1 ~seq:0 ~delta:7.0 () = Dqueue.Duplicate);
  Alcotest.(check int) "counters: offered" 4 (Dqueue.n_offered q);
  Alcotest.(check int) "counters: duplicates" 2 (Dqueue.n_duplicates q);
  Alcotest.(check int) "counters: merged" 1 (Dqueue.n_merged q);
  Alcotest.(check int) "counters: fresh" 1 (Dqueue.n_fresh q);
  Dqueue.remove q ~key:(k "C1");
  Alcotest.(check int) "applied" 1 (Dqueue.n_applied q);
  Alcotest.(check bool) "removed" true (Dqueue.peek q ~key:(k "C1") = None);
  (* removing an absent key is a no-op, not a second apply *)
  Dqueue.remove q ~key:(k "C1");
  Alcotest.(check int) "no-op remove not counted" 1 (Dqueue.n_applied q)

(* Any arrival order of the same identity set yields the same merged
   totals and the same first-arrival bookkeeping: merge is commutative
   addition and dedup is order-independent. *)
let test_dqueue_order_independence () =
  let deliveries =
    [
      (0, 0, "C1", 1.0, 1.0);
      (1, 0, "C1", 2.0, 1.5);
      (0, 1, "C2", -0.5, 2.0);
      (2, 3, "C1", 0.25, 2.5);
      (1, 1, "C2", 4.0, 3.0);
      (0, 0, "C1", 1.0, 3.5) (* resend of the first *);
    ]
  in
  let feed order =
    let q = Dqueue.create () in
    List.iter
      (fun (src, seq, key, delta, at) ->
        ignore (Dqueue.offer q ~src ~seq ~key:(k key) ~delta ~created_at:at))
      order;
    List.map
      (fun key ->
        match Dqueue.peek q ~key:(k key) with
        | Some (d, _) -> (key, d)
        | None -> (key, nan))
      [ "C1"; "C2" ]
  in
  let base = feed deliveries in
  Alcotest.(check (float 1e-12)) "C1 total" 3.25 (List.assoc "C1" base);
  Alcotest.(check (float 1e-12)) "C2 total" 3.5 (List.assoc "C2" base);
  let rev = feed (List.rev deliveries) in
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check string) "same key" ka kb;
      Alcotest.(check (float 1e-12)) "same total under reorder" va vb)
    base rev

let test_dqueue_restore () =
  let q = Dqueue.create () in
  ignore (Dqueue.offer q ~src:0 ~seq:0 ~key:(k "C1") ~delta:1.0 ~created_at:1.0);
  ignore (Dqueue.offer q ~src:1 ~seq:2 ~key:(k "C2") ~delta:2.0 ~created_at:2.0);
  ignore (Dqueue.offer q ~src:0 ~seq:1 ~key:(k "C1") ~delta:0.5 ~created_at:3.0);
  let seen = Dqueue.seen_list q and pending = Dqueue.pending_list q in
  Alcotest.(check int) "seen size" 3 (List.length seen);
  Alcotest.(check int) "pending size" 2 (List.length pending);
  let q2 = Dqueue.create () in
  Dqueue.restore q2 ~seen ~pending;
  Alcotest.(check bool) "seen restored" true (Dqueue.seen_list q2 = seen);
  Alcotest.(check bool) "pending restored" true
    (Dqueue.pending_list q2 = pending);
  Alcotest.(check bool) "first-arrival order kept" true
    (Dqueue.pending_keys q2 = Dqueue.pending_keys q);
  (* restored dedup set still rejects the old identities *)
  Alcotest.(check bool) "restored dedup" true
    (Dqueue.offer q2 ~src:0 ~seq:0 ~key:(k "C1") ~delta:9.0 ~created_at:9.0
    = Dqueue.Duplicate)

(* ------------------------------------------------------------------ *)
(* End-to-end sharded runs *)

let scale = 0.05

let sharded_cfg ?crash ~shards rule ~delay =
  let cfg = Experiment.quick (Experiment.default_config rule ~delay) scale in
  {
    cfg with
    Experiment.shard =
      Some
        {
          (Experiment.default_shard ~shards) with
          Experiment.shard_crash_at = crash;
        };
  }

let fingerprint (m : Experiment.metrics) =
  ( ( m.Experiment.n_updates,
      m.Experiment.n_recompute,
      m.Experiment.n_firings,
      m.Experiment.makespan_s ),
    (m.Experiment.verified, m.Experiment.max_abs_error),
    m.Experiment.shard )

let test_sharded_run_verified () =
  let cfg =
    sharded_cfg ~shards:3
      (Experiment.Comp_view Comp_rules.Unique_on_comp)
      ~delay:1.0
  in
  let m = Shard_exp.dispatch cfg in
  Alcotest.(check bool) "cross-shard audit verified" true
    (m.Experiment.verified = Some true);
  match m.Experiment.shard with
  | None -> Alcotest.fail "shard metrics missing"
  | Some s ->
    Alcotest.(check int) "three shards" 3 s.Experiment.n_shards;
    Alcotest.(check bool) "partials shipped cross-shard" true
      (s.Experiment.sh_partials > 0);
    Alcotest.(check bool) "acks flowed back" true (s.Experiment.sh_acks > 0);
    Alcotest.(check int) "no divergences" 0 s.Experiment.cross_divergences;
    Alcotest.(check bool) "every shard saw updates" true
      (List.for_all
         (fun r -> r.Experiment.sh_updates > 0)
         s.Experiment.sh_rows);
    let applied =
      List.fold_left
        (fun t r -> t + r.Experiment.sh_applied)
        0 s.Experiment.sh_rows
    in
    Alcotest.(check bool) "merged deltas were applied" true (applied > 0);
    (match m.Experiment.recovery with
    | Some r -> Alcotest.(check bool) "audit clean" true r.Experiment.audit_clean
    | None -> Alcotest.fail "sharded runs are always durable")

(* Same dataset for any shard count: the union of the shards' partitions
   must equal the unsharded population, table by table. *)
let test_partition_union () =
  let feed = Strip_market.Feed.scaled Strip_market.Feed.default_config scale in
  let sizes = Pta_tables.scaled_sizes Pta_tables.default_sizes scale in
  let db1 = Strip_core.Strip_db.create () in
  let h1 = Pta_tables.populate db1 ~feed sizes in
  let p = Partitioner.create ~shards:3 in
  let dbs = Array.init 3 (fun _ -> Strip_core.Strip_db.create ()) in
  let hs =
    Pta_tables.populate_sharded dbs
      ~owner_sym:(Partitioner.shard_of_symbol p)
      ~owner_comp:(Partitioner.shard_of_comp p)
      ~feed sizes
  in
  let rows table_of h =
    let t = table_of h in
    let arity = Schema.arity (Table.schema t) in
    let acc = ref [] in
    Table.iter t (fun r ->
        acc := List.init arity (fun i -> Record.value r i) :: !acc);
    !acc
  in
  let union table_of =
    Array.to_list hs |> List.concat_map (rows table_of) |> List.sort compare
  in
  let whole table_of = List.sort compare (rows table_of h1) in
  List.iter
    (fun (name, table_of) ->
      Alcotest.(check bool)
        (name ^ " union equals unsharded")
        true
        (union table_of = whole table_of))
    [
      ("stocks", fun (h : Pta_tables.handles) -> h.Pta_tables.stocks);
      ("stock_stdev", fun h -> h.Pta_tables.stock_stdev);
      ("comps_list", fun h -> h.Pta_tables.comps_list);
      ("options_list", fun h -> h.Pta_tables.options_list);
    ];
  (* seeded composite partitions agree with the unsharded view *)
  let worst =
    Experiment.max_error
      (Comp_rules.maintained h1)
      (Comp_rules.maintained_sharded hs)
  in
  Alcotest.(check bool) "comp seeds agree" true (worst < 1e-9)

let test_sharded_determinism () =
  let mk () =
    Shard_exp.dispatch
      (sharded_cfg ~shards:2
         (Experiment.Comp_view Comp_rules.Unique_coarse)
         ~delay:2.0)
  in
  let a = fingerprint (mk ()) and b = fingerprint (mk ()) in
  Alcotest.(check bool) "re-run is identical in-process" true (a = b)

let test_shard_crash_recovery () =
  let cfg =
    sharded_cfg ~shards:3
      ~crash:(1, Strip_market.Feed.(scaled default_config scale).duration /. 2.0)
      (Experiment.Comp_view Comp_rules.Unique_on_comp)
      ~delay:1.0
  in
  let m = Shard_exp.dispatch cfg in
  (match m.Experiment.shard with
  | None -> Alcotest.fail "shard metrics missing"
  | Some s ->
    let crashed = List.nth s.Experiment.sh_rows 1 in
    Alcotest.(check bool) "shard 1 crashed" true
      (crashed.Experiment.sh_crashes >= 1);
    Alcotest.(check int) "cross-shard audit clean after recovery" 0
      s.Experiment.cross_divergences);
  Alcotest.(check bool) "exactly-once composite effect" true
    (m.Experiment.verified = Some true);
  match m.Experiment.recovery with
  | Some r ->
    Alcotest.(check bool) "crash counted" true (r.Experiment.n_crashes >= 1);
    Alcotest.(check bool) "audit clean" true r.Experiment.audit_clean
  | None -> Alcotest.fail "recovery metrics missing"

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "partitioner: stable, total, in range" `Quick
          test_partitioner;
        Alcotest.test_case "partial-delta codec round-trips" `Quick
          test_partial_codec;
        Alcotest.test_case "Shard_* WAL records round-trip" `Quick
          test_wal_shard_records;
        Alcotest.test_case "dqueue: duplicate + merge idempotence" `Quick
          test_dqueue_idempotence;
        Alcotest.test_case "dqueue: reorder-independent totals" `Quick
          test_dqueue_order_independence;
        Alcotest.test_case "dqueue: state snapshot restore" `Quick
          test_dqueue_restore;
        Alcotest.test_case "partitioned population unions to the whole" `Slow
          test_partition_union;
        Alcotest.test_case "sharded run: clean cross-shard audit" `Slow
          test_sharded_run_verified;
        Alcotest.test_case "sharded run: in-process determinism" `Slow
          test_sharded_determinism;
        Alcotest.test_case "crash during ship: exactly-once recovery" `Slow
          test_shard_crash_recovery;
      ] );
  ]
