(* Aggregated alcotest runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "strip"
    (Test_value.suite @ Test_schema.suite @ Test_rbtree.suite
   @ Test_index.suite @ Test_table.suite @ Test_temp_table.suite
   @ Test_expr.suite @ Test_query.suite @ Test_query_model.suite
   @ Test_catalog.suite @ Test_sql.suite @ Test_txn.suite
   @ Test_queues.suite @ Test_sim.suite @ Test_robustness.suite
   @ Test_rules.suite
   @ Test_unique.suite @ Test_rule_properties.suite @ Test_finance.suite @ Test_market.suite
   @ Test_obs.suite
   @ Test_pta.suite @ Test_ivm.suite @ Test_ingest.suite
   @ Test_recovery.suite @ Test_repl.suite @ Test_chaos.suite
   @ Test_storage.suite @ Test_shard.suite @ Test_integration.suite)
