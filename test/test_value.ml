open Strip_relational

let v = Alcotest.testable Value.pp Value.equal

let test_arith_promotion () =
  Alcotest.check v "int+int" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  Alcotest.check v "int+float" (Value.Float 5.5)
    (Value.add (Value.Int 2) (Value.Float 3.5));
  Alcotest.check v "float*int" (Value.Float 7.0)
    (Value.mul (Value.Float 3.5) (Value.Int 2));
  Alcotest.check v "int div stays int" (Value.Int 2)
    (Value.div (Value.Int 5) (Value.Int 2));
  Alcotest.check v "float div" (Value.Float 2.5)
    (Value.div (Value.Float 5.0) (Value.Int 2))

let test_null_propagation () =
  Alcotest.check v "null+int" Value.Null (Value.add Value.Null (Value.Int 1));
  Alcotest.check v "int-null" Value.Null (Value.sub (Value.Int 1) Value.Null);
  Alcotest.check v "null concat" Value.Null
    (Value.concat Value.Null (Value.Str "x"))

let test_arith_type_errors () =
  Alcotest.check_raises "str+int"
    (Value.Type_error "add: incompatible operands a and 1") (fun () ->
      ignore (Value.add (Value.Str "a") (Value.Int 1)));
  (match Value.neg (Value.Str "a") with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "neg of string should raise")

let test_division_edge_cases () =
  (match Value.div (Value.Int 1) (Value.Int 0) with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "integer division by zero should raise");
  Alcotest.check v "float/0 = inf" (Value.Float infinity)
    (Value.div (Value.Float 1.0) (Value.Int 0));
  match
    Expr.eval (Expr.Binop (Expr.Mod, Expr.int 5, Expr.int 0)) [||]
  with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "mod by zero should raise"

let test_equality_coercion () =
  Alcotest.check Alcotest.bool "1 = 1.0" true
    (Value.equal (Value.Int 1) (Value.Float 1.0));
  Alcotest.check Alcotest.bool "hash agrees" true
    (Value.hash (Value.Int 7) = Value.hash (Value.Float 7.0));
  Alcotest.check Alcotest.bool "null=null (storage equality)" true
    (Value.equal Value.Null Value.Null)

let test_total_order () =
  (* Null < booleans < numbers < strings; numbers compared numerically. *)
  let sorted =
    List.sort Value.compare
      [ Value.Str "a"; Value.Int 2; Value.Null; Value.Bool true;
        Value.Float 1.5; Value.Bool false ]
  in
  Alcotest.(check (list string))
    "order"
    [ "NULL"; "false"; "true"; "1.5"; "2"; "a" ]
    (List.map Value.to_string sorted)

let test_cmp_sql_three_valued () =
  Alcotest.(check (option int)) "null vs 1" None (Value.cmp_sql Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "1 vs null" None (Value.cmp_sql (Value.Int 1) Value.Null);
  Alcotest.(check (option int))
    "str vs int incomparable" None
    (Value.cmp_sql (Value.Str "a") (Value.Int 1));
  Alcotest.check Alcotest.bool "1 < 2" true
    (match Value.cmp_sql (Value.Int 1) (Value.Float 2.0) with
    | Some c -> c < 0
    | None -> false)

let test_conforms () =
  Alcotest.check Alcotest.bool "null conforms anywhere" true
    (Value.conforms Value.Null Value.TStr);
  Alcotest.check Alcotest.bool "int conforms to float" true
    (Value.conforms (Value.Int 1) Value.TFloat);
  Alcotest.check Alcotest.bool "float does not conform to int" false
    (Value.conforms (Value.Float 1.0) Value.TInt)

let test_ty_names () =
  List.iter
    (fun ty ->
      Alcotest.(check (option Alcotest.bool))
        "round trip" (Some true)
        (Option.map (fun t -> t = ty) (Value.ty_of_string (Value.ty_name ty))))
    [ Value.TBool; Value.TInt; Value.TFloat; Value.TStr ];
  Alcotest.(check bool) "synonyms" true
    (Value.ty_of_string "VARCHAR" = Some Value.TStr
    && Value.ty_of_string "Integer" = Some Value.TInt
    && Value.ty_of_string "double" = Some Value.TFloat)

let test_to_string () =
  Alcotest.(check string) "float integral" "2.0" (Value.to_string (Value.Float 2.0));
  Alcotest.(check string) "float frac" "2.25" (Value.to_string (Value.Float 2.25));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 8));
      ])

let prop_compare_total =
  QCheck2.Test.make ~name:"Value.compare is a total order (antisym + trans spot)"
    ~count:500
    QCheck2.Gen.(triple gen_value gen_value gen_value)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      (compare ab 0 = compare 0 ba)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_equal_hash =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:500
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_compare_equal_agree =
  QCheck2.Test.make ~name:"compare = 0 iff equal" ~count:500
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

let suite =
  [
    ( "value",
      [
        Alcotest.test_case "arithmetic promotion" `Quick test_arith_promotion;
        Alcotest.test_case "null propagation" `Quick test_null_propagation;
        Alcotest.test_case "type errors" `Quick test_arith_type_errors;
        Alcotest.test_case "division edge cases" `Quick test_division_edge_cases;
        Alcotest.test_case "numeric equality coercion" `Quick test_equality_coercion;
        Alcotest.test_case "total order by rank" `Quick test_total_order;
        Alcotest.test_case "three-valued comparison" `Quick test_cmp_sql_three_valued;
        Alcotest.test_case "type conformance" `Quick test_conforms;
        Alcotest.test_case "type-name round trips" `Quick test_ty_names;
        Alcotest.test_case "display form" `Quick test_to_string;
        QCheck_alcotest.to_alcotest prop_compare_total;
        QCheck_alcotest.to_alcotest prop_equal_hash;
        QCheck_alcotest.to_alcotest prop_compare_equal_agree;
      ] );
  ]
