(* Observability subsystem: histograms, trace ring buffer, metrics
   registry, totality guards, staleness sampling, and export determinism. *)

open Strip_obs

let gamma = sqrt (sqrt 2.0)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_bucket_boundaries () =
  let h = Histogram.create () in
  (* Samples on and around an exact bucket edge must land in a bucket
     whose [lo, hi) really contains them. *)
  let samples = [ 1.0; gamma; gamma ** 2.0; 0.999; 1.001; 123.456; 1e-9 ] in
  List.iter (Histogram.add h) samples;
  let buckets = Histogram.buckets h in
  Alcotest.(check int) "every sample counted" (List.length samples)
    (List.fold_left (fun a (_, _, c) -> a + c) 0 buckets);
  List.iter
    (fun v ->
      let held =
        List.exists (fun (lo, hi, _) -> lo <= v && v < hi) buckets
      in
      Alcotest.(check bool) (Printf.sprintf "%g inside its bucket" v) true held)
    samples;
  (* ascending and disjoint *)
  let rec check_sorted = function
    | (_, hi1, _) :: ((lo2, _, _) :: _ as rest) ->
      Alcotest.(check bool) "buckets ascending and disjoint" true (hi1 <= lo2);
      check_sorted rest
    | _ -> ()
  in
  check_sorted buckets

let test_hist_percentiles_known () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum exact" 500500.0 (Histogram.sum h);
  Alcotest.(check (float 1e-6)) "mean exact" 500.5 (Histogram.mean h);
  Alcotest.(check (float 1e-6)) "min exact" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max exact" 1000.0 (Histogram.max_value h);
  (* Quantiles of U{1..1000}: bounded by the bucket width (gamma - 1 ~ 9%)
     plus nearest-rank granularity. *)
  let within p expected =
    let v = Histogram.percentile h p in
    let rel = Float.abs (v -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f=%.1f within 10%% of %.0f" p v expected)
      true (rel <= 0.10)
  in
  within 50.0 500.0;
  within 90.0 900.0;
  within 99.0 990.0;
  let p100 = Histogram.percentile h 100.0 in
  Alcotest.(check bool) "p100 inside the top bucket, never above max" true
    (p100 >= Histogram.percentile h 99.0 && p100 <= Histogram.max_value h);
  (* monotone in p *)
  Alcotest.(check bool) "p50 <= p90 <= p99" true
    (Histogram.percentile h 50.0 <= Histogram.percentile h 90.0
    && Histogram.percentile h 90.0 <= Histogram.percentile h 99.0)

let test_hist_empty_and_underflow () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Histogram.max_value h);
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Histogram.percentile h 99.0);
  Histogram.add h 0.0;
  Histogram.add h (-5.0);
  Histogram.add h Float.nan;
  Alcotest.(check int) "underflow counted" 3 (Histogram.count h);
  (match Histogram.buckets h with
  | [ (0.0, 0.0, 3) ] -> ()
  | _ -> Alcotest.fail "expected a single underflow bucket (0, 0, 3)");
  Alcotest.(check (float 0.0)) "all-underflow p50 is 0" 0.0
    (Histogram.percentile h 50.0)

let test_hist_percentile_edges () =
  (* Empty: every percentile is 0, never NaN/inf. *)
  let e = Histogram.create () in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty p%.0f" p)
        0.0
        (Histogram.percentile e p))
    [ 0.0; 50.0; 100.0 ];
  (* Single sample: every percentile collapses onto it (clamped to the
     observed range, so exact despite bucketing). *)
  let s = Histogram.create () in
  Histogram.add s 7.25;
  List.iter
    (fun p ->
      let v = Histogram.percentile s p in
      Alcotest.(check bool)
        (Printf.sprintf "single-sample p%.1f finite" p)
        true (Float.is_finite v);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single-sample p%.1f" p)
        7.25 v)
    [ 0.0; 50.0; 99.9; 100.0 ];
  (* p = 100.0 on a multi-sample histogram: finite and never above max. *)
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.001; 3.0; 9000.0 ];
  let p100 = Histogram.percentile h 100.0 in
  Alcotest.(check bool) "p100 finite" true (Float.is_finite p100);
  Alcotest.(check bool) "p100 <= max" true (p100 <= Histogram.max_value h);
  (* out-of-range p is clamped, not an excursion into garbage ranks *)
  Alcotest.(check (float 1e-9)) "p>100 clamps to p100" p100
    (Histogram.percentile h 150.0);
  Alcotest.(check bool) "p<0 clamps to p0" true
    (Float.is_finite (Histogram.percentile h (-5.0)))

let test_hist_all_nan_bounds () =
  (* Regression: a histogram fed only NaN used to report min = +inf and
     max = -inf (n > 0 but the bounds never updated); summaries exported
     non-finite JSON. *)
  let h = Histogram.create () in
  Histogram.add h Float.nan;
  Histogram.add h Float.nan;
  Alcotest.(check int) "NaN samples counted" 2 (Histogram.count h);
  Alcotest.(check (float 0.0)) "all-NaN min is 0" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "all-NaN max is 0" 0.0 (Histogram.max_value h);
  let s = Histogram.summary h in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v))
    [
      ("mean", s.Histogram.mean);
      ("min", s.Histogram.min);
      ("max", s.Histogram.max);
      ("p50", s.Histogram.p50);
      ("p99", s.Histogram.p99);
    ];
  (* once a real sample arrives the bounds recover *)
  Histogram.add h 4.0;
  Alcotest.(check (float 1e-9)) "real min after NaNs" 4.0
    (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "real max after NaNs" 4.0
    (Histogram.max_value h)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Histogram.add b) [ 100.0; 200.0 ];
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 4 (Histogram.count a);
  Alcotest.(check (float 1e-6)) "merged max" 200.0 (Histogram.max_value a);
  Alcotest.(check (float 1e-6)) "merged min" 1.0 (Histogram.min_value a);
  let coarse = Histogram.create ~gamma:2.0 () in
  Alcotest.check_raises "gamma mismatch"
    (Invalid_argument "Histogram.merge_into: gamma mismatch") (fun () ->
      Histogram.merge_into ~dst:coarse a);
  (* Regression: merging an empty histogram either way must not disturb
     the non-empty side's bounds (the empty side's sentinels are
     lo = +inf / hi = -inf). *)
  let empty = Histogram.create () in
  Histogram.merge_into ~dst:a empty;
  Alcotest.(check int) "empty src adds nothing" 4 (Histogram.count a);
  Alcotest.(check (float 1e-6)) "min survives empty merge" 1.0
    (Histogram.min_value a);
  Alcotest.(check (float 1e-6)) "max survives empty merge" 200.0
    (Histogram.max_value a);
  let fresh = Histogram.create () in
  Histogram.merge_into ~dst:fresh a;
  Alcotest.(check int) "merge into empty dst" 4 (Histogram.count fresh);
  Alcotest.(check (float 1e-6)) "empty dst takes src min" 1.0
    (Histogram.min_value fresh);
  Alcotest.(check (float 1e-6)) "empty dst takes src max" 200.0
    (Histogram.max_value fresh)

let test_hist_merge_list () =
  let mk vs =
    let h = Histogram.create () in
    List.iter (Histogram.add h) vs;
    h
  in
  let a = mk [ 1.0; 2.0 ] and b = mk [ 10.0 ] and c = mk [] in
  let m = Histogram.merge [ a; b; c ] in
  Alcotest.(check int) "merged count" 3 (Histogram.count m);
  Alcotest.(check (float 1e-6)) "merged max" 10.0 (Histogram.max_value m);
  (* sources untouched *)
  Alcotest.(check int) "source a untouched" 2 (Histogram.count a);
  Alcotest.(check int) "empty merge is empty" 0
    (Histogram.count (Histogram.merge []));
  (* the cluster-percentile use case: merged p-quantiles bracket sources *)
  Alcotest.(check bool) "merged p99 >= each source p99" true
    (Histogram.percentile m 99.0 >= Histogram.percentile a 99.0
    && Histogram.percentile m 99.0 >= Histogram.percentile b 99.0)

(* ------------------------------------------------------------------ *)
(* Trace ring buffer *)

let test_trace_ring_overflow_and_order () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.instant t ~ts:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped counted" 2 (Trace.dropped t);
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events t) in
  Alcotest.(check (list string)) "oldest dropped, order kept"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) (Trace.events t) in
  Alcotest.(check (list int)) "seq numbers global" [ 2; 3; 4; 5 ] seqs;
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_trace_chrome_export () =
  let t = Trace.create () in
  Trace.instant t ~ts:1.5 ~tid:Trace.tid_update ~args:[ ("k", Trace.Int 7) ] "ev";
  Trace.complete t ~ts:2.0 ~dur_us:250.0 ~tid:Trace.tid_recompute "span";
  let s = Json.to_string (Trace.chrome_json t) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "export contains %s" needle) true
        (contains s needle))
    [
      "\"traceEvents\"";
      "\"process_name\"";
      "\"thread_name\"";
      (* 1.5 simulated seconds -> 1.5e6 trace microseconds *)
      "\"ts\":1500000";
      "\"ph\":\"X\"";
      "\"dur\":250";
      "\"k\":7";
    ]

(* ------------------------------------------------------------------ *)
(* Span contexts *)

let test_span_contexts () =
  Span.reset_ids ();
  let root = Span.mint () in
  Alcotest.(check bool) "root: trace = span" true
    (root.Span.trace = root.Span.span);
  Alcotest.(check int) "root: no parent" 0 root.Span.parent;
  let c1 = Span.child root in
  let c2 = Span.child root in
  Alcotest.(check int) "child keeps trace" root.Span.trace c1.Span.trace;
  Alcotest.(check int) "child parents to root" root.Span.span c1.Span.parent;
  Alcotest.(check bool) "sibling spans distinct" true
    (c1.Span.span <> c2.Span.span);
  let g = Span.child c1 in
  Alcotest.(check int) "grandchild keeps trace" root.Span.trace g.Span.trace;
  Alcotest.(check int) "grandchild parents to child" c1.Span.span g.Span.parent;
  (* args round-trip: what a trace event carries reconstructs the ctx *)
  (match Span.of_args (Span.args g) with
  | Some back ->
    Alcotest.(check bool) "args round-trip" true
      (back.Span.trace = g.Span.trace
      && back.Span.span = g.Span.span
      && back.Span.parent = g.Span.parent)
  | None -> Alcotest.fail "of_args lost the context");
  Alcotest.(check (option reject)) "of_args on unrelated args" None
    (Span.of_args [ ("k", Trace.Int 7) ]);
  (* remote linkage (WAL note -> replica apply) *)
  let r = Span.child_of ~trace:g.Span.trace ~parent:g.Span.span in
  Alcotest.(check int) "child_of keeps trace" g.Span.trace r.Span.trace;
  Alcotest.(check int) "child_of parents to span" g.Span.span r.Span.parent;
  Span.reset_ids ();
  let again = Span.mint () in
  Alcotest.(check int) "reset restarts ids" root.Span.trace again.Span.trace

(* ------------------------------------------------------------------ *)
(* Staleness SLO monitor *)

let test_slo_parse () =
  (match Slo.parse "comp_prices:2.5" with
  | Ok o ->
    Alcotest.(check string) "view" "comp_prices" o.Slo.view;
    Alcotest.(check (float 0.0)) "bound" 2.5 o.Slo.bound_s
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.fail (bad ^ " should not parse")
      | Error _ -> ())
    [ ""; "comp_prices"; "comp_prices:"; ":1.0"; "comp_prices:-1"; "v:abc" ]

let test_slo_windows () =
  let t =
    Slo.create
      [
        { Slo.view = "a"; bound_s = 1.0 }; { Slo.view = "b"; bound_s = 10.0 };
      ]
  in
  (* a: ok, viol, viol, ok, viol (left open; finish closes it) *)
  Slo.observe t ~view:"a" ~staleness_s:0.5 ~now:1.0;
  Slo.observe t ~view:"a" ~staleness_s:2.0 ~now:2.0;
  Slo.observe t ~view:"a" ~staleness_s:3.0 ~now:3.0;
  Slo.observe t ~view:"a" ~staleness_s:0.2 ~now:4.0;
  Slo.observe t ~view:"a" ~staleness_s:5.0 ~now:5.0;
  (* b never violates; unknown views are ignored *)
  Slo.observe t ~view:"b" ~staleness_s:1.0 ~now:1.0;
  Slo.observe t ~view:"unmonitored" ~staleness_s:99.0 ~now:1.0;
  Slo.finish t;
  (match Slo.report t with
  | [ ra; rb ] ->
    Alcotest.(check string) "objective order" "a" ra.Slo.r_view;
    Alcotest.(check int) "a samples" 5 ra.Slo.r_samples;
    Alcotest.(check int) "a violations" 3 ra.Slo.r_violations;
    Alcotest.(check int) "a windows" 2 ra.Slo.r_windows;
    Alcotest.(check (float 1e-9)) "a worst" 5.0 ra.Slo.r_worst_s;
    Alcotest.(check bool) "a not met" false ra.Slo.r_met;
    Alcotest.(check int) "b samples" 1 rb.Slo.r_samples;
    Alcotest.(check bool) "b met" true rb.Slo.r_met
  | rs -> Alcotest.fail (Printf.sprintf "%d reports" (List.length rs)));
  Alcotest.(check bool) "monitor not met overall" false (Slo.met t);
  Alcotest.(check int) "total violations" 3 (Slo.total_violations t);
  Alcotest.(check int) "total windows" 2 (Slo.total_windows t)

(* ------------------------------------------------------------------ *)
(* Provenance ring *)

let test_provenance_ring_truncation () =
  let p = Provenance.create ~capacity:3 () in
  let entry i key =
    {
      Provenance.view = "v";
      key;
      rule = "r";
      task_id = i;
      txid = i;
      trace = 0;
      span = 0;
      committed_at = float_of_int i;
      inputs = [ { Provenance.src_table = "d"; src_desc = "row" } ];
    }
  in
  for i = 1 to 5 do
    Provenance.record p (entry i "k")
  done;
  Alcotest.(check int) "total counts every record" 5 (Provenance.total p);
  Alcotest.(check int) "ring truncated oldest" 2 (Provenance.truncated p);
  let got = Provenance.query p ~view:"v" ~key:"k" in
  Alcotest.(check (list int)) "newest first, bounded" [ 5; 4; 3 ]
    (List.map (fun (e : Provenance.entry) -> e.Provenance.task_id) got);
  (* per-view rings: another view does not steal capacity *)
  Provenance.record p { (entry 6 "other") with Provenance.view = "w" };
  Alcotest.(check int) "v ring untouched" 3
    (List.length (Provenance.query p ~view:"v" ~key:"k"));
  Alcotest.(check (list string)) "views listed" [ "v" ]
    (List.filter (fun v -> v = "v") (Provenance.views p));
  Alcotest.(check bool) "render shows the firing" true
    (contains (Provenance.render p ~view:"v" ~key:"k") "task 5")

(* ------------------------------------------------------------------ *)
(* Merged cluster traces *)

let test_trace_merge_chrome () =
  let mk name ts =
    let t = Trace.create () in
    Trace.instant t ~ts ~args:[ ("n", Trace.Str name) ] ("ev-" ^ name);
    t
  in
  let j =
    Trace.merge_chrome_json
      [ ("primary", mk "primary" 1.0); ("replica-0", mk "replica-0" 2.0) ]
  in
  let s = Json.to_string j in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "merged contains %s" needle) true
        (contains s needle))
    [
      "\"traceEvents\"";
      "\"primary\"";
      "\"replica-0\"";
      "\"pid\":1";
      "\"pid\":2";
      "ev-primary";
      "ev-replica-0";
    ]

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_duplicate_identity () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "c" ~labels:[ ("a", "1"); ("b", "2") ]);
  (* same name, same labels in a different order: same identity *)
  Alcotest.check_raises "label order canonicalised"
    (Metrics.Duplicate "c{a=1,b=2}") (fun () ->
      ignore (Metrics.counter reg "c" ~labels:[ ("b", "2"); ("a", "1") ]));
  (* different labels: fine *)
  ignore (Metrics.counter reg "c" ~labels:[ ("a", "2") ]);
  ignore (Metrics.gauge reg "g");
  Alcotest.check_raises "gauge name collides" (Metrics.Duplicate "g") (fun () ->
      Metrics.probe_int reg "g" (fun () -> 0))

let test_metrics_snapshot_and_find () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests" ~labels:[ ("class", "update") ] in
  Metrics.inc c;
  Metrics.inc ~n:2 c;
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.5;
  let h = Metrics.histogram reg "lat" in
  List.iter (Histogram.add h) [ 1.0; 10.0; 100.0 ];
  Metrics.probe_int reg "polled" (fun () -> 42);
  let rows = Metrics.snapshot reg in
  (* sorted by (name, labels) *)
  let names = List.map (fun (r : Metrics.row) -> r.Metrics.name) rows in
  Alcotest.(check (list string)) "sorted"
    [ "depth"; "lat"; "polled"; "requests" ] names;
  (match Metrics.find rows "requests" ~labels:[ ("class", "update") ] with
  | Some (Metrics.Int 3) -> ()
  | _ -> Alcotest.fail "counter value");
  (match Metrics.find rows "polled" with
  | Some (Metrics.Int 42) -> ()
  | _ -> Alcotest.fail "probe polled at snapshot");
  (match Metrics.find rows "lat" with
  | Some (Metrics.Histo (s, _)) -> Alcotest.(check int) "hist count" 3 s.Histogram.n
  | _ -> Alcotest.fail "histogram row");
  let csv = Metrics.csv_of_rows rows in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "name,labels,type,value,count,sum,mean,min,max,p50,p90,p99" header
  | [] -> Alcotest.fail "empty csv");
  (* families collide with fixed rows only at snapshot time *)
  Metrics.probe_family reg "depth" (fun () -> [ ([], Metrics.Sample_int 1) ]);
  Alcotest.check_raises "family collision detected" (Metrics.Duplicate "depth")
    (fun () -> ignore (Metrics.snapshot reg))

(* ------------------------------------------------------------------ *)
(* Stats totality guards *)

let test_stats_totality () =
  let open Strip_sim in
  let s = Stats.create () in
  let finite v = Float.is_finite v in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " finite") true (finite v);
      Alcotest.(check (float 0.0)) (name ^ " zero") 0.0 v)
    [
      ("utilization (zero duration)", Stats.utilization s ~duration_s:0.0);
      ("utilization (negative duration)", Stats.utilization s ~duration_s:(-1.0));
      ("mean service", Stats.mean_service_us s Strip_txn.Task.Recompute);
      ("mean queue", Stats.mean_queue_us s Strip_txn.Task.Update);
      ("max service", Stats.max_service_us s Strip_txn.Task.Background);
      ("p99 service", Stats.service_percentile_us s Strip_txn.Task.Recompute 99.0);
      ("p50 queue", Stats.queue_percentile_us s Strip_txn.Task.Update 50.0);
      ("mean recovery", Stats.mean_recovery_s s);
    ]

(* ------------------------------------------------------------------ *)
(* Staleness sampling and export determinism (full pipeline) *)

let small_cfg () =
  let open Strip_pta in
  let cfg =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0
  in
  Experiment.quick cfg 0.02

let test_staleness_sampled () =
  let open Strip_pta in
  let m = Experiment.run (small_cfg ()) in
  let tables = List.map fst m.Experiment.staleness in
  Alcotest.(check (list string)) "derived table sampled" [ "comp_prices" ] tables;
  let s = List.assoc "comp_prices" m.Experiment.staleness in
  Alcotest.(check int) "one sample per maintenance commit"
    m.Experiment.n_recompute s.Histogram.n;
  (* With a 1 s delay window the oldest folded-in change is ~1 s old at
     commit: the mean sits near the window, and nothing is negative. *)
  Alcotest.(check bool) "mean near the delay window" true
    (s.Histogram.mean >= 0.5 && s.Histogram.mean <= 2.0);
  Alcotest.(check bool) "min non-negative" true (s.Histogram.min >= 0.0);
  Alcotest.(check bool) "p50 <= p99 <= max" true
    (s.Histogram.p50 <= s.Histogram.p99 && s.Histogram.p99 <= s.Histogram.max);
  (* the registry carries the same distribution *)
  match
    Strip_obs.Metrics.find m.Experiment.registry "staleness_s"
      ~labels:[ ("table", "comp_prices") ]
  with
  | Some (Metrics.Histo (rs, _)) ->
    Alcotest.(check int) "registry row matches" s.Histogram.n rs.Histogram.n
  | _ -> Alcotest.fail "staleness_s{table=comp_prices} missing from registry"

let run_traced () =
  let open Strip_pta in
  (* Task ids appear in trace args; reset them so an in-process re-run is
     byte-identical (safe here: no tasks are queued between experiments). *)
  Strip_txn.Task.reset_ids ();
  let tr = Trace.create () in
  let cfg = { (small_cfg ()) with Experiment.trace = Some tr } in
  let m = Experiment.run cfg in
  let trace_str = Json.to_string (Trace.chrome_json tr) in
  let metrics_str =
    Json.to_string (Metrics.json_of_rows m.Experiment.registry)
  in
  let report_str = Json.to_string (Report.metrics_json m) in
  (trace_str, metrics_str, report_str)

let test_fixed_seed_determinism () =
  let t1, m1, r1 = run_traced () in
  let t2, m2, r2 = run_traced () in
  Alcotest.(check bool) "trace export non-trivial" true
    (String.length t1 > 1000);
  Alcotest.(check string) "byte-identical traces" t1 t2;
  Alcotest.(check string) "byte-identical metrics" m1 m2;
  Alcotest.(check string) "byte-identical reports" r1 r2

let test_trace_has_lifecycle_vocabulary () =
  let open Strip_pta in
  Strip_txn.Task.reset_ids ();
  let tr = Trace.create () in
  let cfg = { (small_cfg ()) with Experiment.trace = Some tr } in
  ignore (Experiment.run cfg);
  let names =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if List.mem e.Trace.name acc then acc else e.Trace.name :: acc)
      [] (Trace.events tr)
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " events present") true
        (List.mem expected names))
    [ "enqueue"; "release"; "commit"; "merge" ]

let suite =
  [
    ( "obs/histogram",
      [
        Alcotest.test_case "bucket boundaries" `Quick test_hist_bucket_boundaries;
        Alcotest.test_case "percentiles vs uniform 1..1000" `Quick
          test_hist_percentiles_known;
        Alcotest.test_case "empty and underflow" `Quick
          test_hist_empty_and_underflow;
        Alcotest.test_case "percentile edge cases" `Quick
          test_hist_percentile_edges;
        Alcotest.test_case "all-NaN bounds stay finite" `Quick
          test_hist_all_nan_bounds;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "merge list (cluster aggregation)" `Quick
          test_hist_merge_list;
      ] );
    ( "obs/trace",
      [
        Alcotest.test_case "ring overflow and ordering" `Quick
          test_trace_ring_overflow_and_order;
        Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
        Alcotest.test_case "merged cluster export" `Quick
          test_trace_merge_chrome;
      ] );
    ( "obs/span",
      [
        Alcotest.test_case "mint/child/args round-trip" `Quick
          test_span_contexts;
      ] );
    ( "obs/slo",
      [
        Alcotest.test_case "parse VIEW:BOUND" `Quick test_slo_parse;
        Alcotest.test_case "violation windows" `Quick test_slo_windows;
      ] );
    ( "obs/provenance",
      [
        Alcotest.test_case "ring truncation at bound" `Quick
          test_provenance_ring_truncation;
      ] );
    ( "obs/metrics",
      [
        Alcotest.test_case "duplicate identity" `Quick
          test_metrics_duplicate_identity;
        Alcotest.test_case "snapshot, find, csv" `Quick
          test_metrics_snapshot_and_find;
      ] );
    ( "obs/integration",
      [
        Alcotest.test_case "stats accessors are total" `Quick
          test_stats_totality;
        Alcotest.test_case "staleness sampled at commit" `Quick
          test_staleness_sampled;
        Alcotest.test_case "fixed-seed export determinism" `Quick
          test_fixed_seed_determinism;
        Alcotest.test_case "lifecycle event vocabulary" `Quick
          test_trace_has_lifecycle_vocabulary;
      ] );
  ]
