(* Model-based fuzzing of the query executor: random select-project-join-
   aggregate queries run both through the engine and through a naive
   reference evaluator over plain row lists; results must agree. *)

open Strip_relational

type db_model = {
  emp_rows : (string * string * int) list;  (* name, dept, salary *)
  dept_rows : (string * int) list;  (* dname, budget *)
}

let gen_db =
  QCheck2.Gen.(
    let name = map (fun i -> Printf.sprintf "e%d" i) (int_range 0 15) in
    let dept = map (fun i -> Printf.sprintf "d%d" i) (int_range 0 4) in
    let emp = triple name dept (int_range 0 100) in
    let dept_row = pair dept (int_range 0 1000) in
    map
      (fun (emps, depts) ->
        (* dedup department names; employee duplicates are fine *)
        let seen = Hashtbl.create 8 in
        let depts =
          List.filter
            (fun (d, _) ->
              if Hashtbl.mem seen d then false
              else begin
                Hashtbl.add seen d ();
                true
              end)
            depts
        in
        { emp_rows = emps; dept_rows = depts })
      (pair (list_size (int_range 0 25) emp) (list_size (int_range 0 6) dept_row)))

let build { emp_rows; dept_rows } =
  let cat = Catalog.create () in
  let emp =
    Catalog.create_table cat ~name:"emp"
      ~schema:
        (Schema.of_list
           [ ("name", Value.TStr); ("dept", Value.TStr); ("salary", Value.TInt) ])
  in
  ignore (Table.create_index emp ~name:"emp_dept" ~kind:Index.Hash ~cols:[ "dept" ]);
  let dept =
    Catalog.create_table cat ~name:"dept"
      ~schema:(Schema.of_list [ ("dname", Value.TStr); ("budget", Value.TInt) ])
  in
  List.iter
    (fun (n, d, s) ->
      ignore (Table.insert emp [| Value.Str n; Value.Str d; Value.Int s |]))
    emp_rows;
  List.iter
    (fun (d, b) -> ignore (Table.insert dept [| Value.Str d; Value.Int b |]))
    dept_rows;
  cat

let sorted_rows result =
  Query.rows result
  |> List.map (fun r -> Array.to_list (Array.map Value.to_string r))
  |> List.sort compare

(* Property 1: filter over a threshold = reference List.filter. *)
let prop_filter =
  QCheck2.Test.make ~name:"filter agrees with reference" ~count:150
    QCheck2.Gen.(pair gen_db (int_range 0 100))
    (fun (model, threshold) ->
      let cat = build model in
      let got =
        sorted_rows
          (Sql_exec.query cat ~env:[]
             (Printf.sprintf "select name, salary from emp where salary >= %d"
                threshold))
      in
      let expected =
        model.emp_rows
        |> List.filter (fun (_, _, s) -> s >= threshold)
        |> List.map (fun (n, _, s) -> [ n; string_of_int s ])
        |> List.sort compare
      in
      got = expected)

(* Property 2: equi-join (exercising the index path) = reference nested
   loop. *)
let prop_join =
  QCheck2.Test.make ~name:"equi-join agrees with reference" ~count:150 gen_db
    (fun model ->
      let cat = build model in
      let got =
        sorted_rows
          (Sql_exec.query cat ~env:[]
             "select name, budget from dept, emp where emp.dept = dept.dname")
      in
      let expected =
        List.concat_map
          (fun (n, d, _) ->
            List.filter_map
              (fun (dn, b) ->
                if d = dn then Some [ n; string_of_int b ] else None)
              model.dept_rows)
          model.emp_rows
        |> List.sort compare
      in
      got = expected)

(* Property 3: group-by sum/count = reference fold. *)
let prop_group =
  QCheck2.Test.make ~name:"group-by agrees with reference" ~count:150 gen_db
    (fun model ->
      let cat = build model in
      let got =
        sorted_rows
          (Sql_exec.query cat ~env:[]
             "select dept, sum(salary) as s, count(*) as n from emp group by \
              dept")
      in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (_, d, s) ->
          let sum, n =
            match Hashtbl.find_opt tbl d with Some x -> x | None -> (0, 0)
          in
          Hashtbl.replace tbl d (sum + s, n + 1))
        model.emp_rows;
      let expected =
        Hashtbl.fold
          (fun d (s, n) acc -> [ d; string_of_int s; string_of_int n ] :: acc)
          tbl []
        |> List.sort compare
      in
      got = expected)

(* Property 4: ORDER BY k LIMIT n = reference sort + take. *)
let prop_order_limit =
  QCheck2.Test.make ~name:"order/limit agrees with reference" ~count:150
    QCheck2.Gen.(pair gen_db (int_range 0 10))
    (fun (model, n) ->
      let cat = build model in
      let got =
        Query.rows
          (Sql_exec.query cat ~env:[]
             (Printf.sprintf
                "select salary from emp order by salary desc limit %d" n))
        |> List.map (fun r -> Value.to_int r.(0))
      in
      let expected =
        model.emp_rows
        |> List.map (fun (_, _, s) -> s)
        |> List.sort (fun a b -> compare b a)
        |> List.filteri (fun i _ -> i < n)
      in
      got = expected)

(* Property 5: updates through SQL agree with a reference mutation. *)
let prop_update =
  QCheck2.Test.make ~name:"update agrees with reference" ~count:150
    QCheck2.Gen.(triple gen_db (int_range 0 100) (int_range (-20) 20))
    (fun (model, threshold, bump) ->
      let cat = build model in
      ignore
        (Sql_exec.exec_string cat ~env:[]
           (Printf.sprintf "update emp set salary += %d where salary < %d" bump
              threshold));
      let got =
        sorted_rows (Sql_exec.query cat ~env:[] "select name, salary from emp")
      in
      let expected =
        model.emp_rows
        |> List.map (fun (n, _, s) ->
               [ n; string_of_int (if s < threshold then s + bump else s) ])
        |> List.sort compare
      in
      got = expected)

let suite =
  [
    ( "query-model",
      [
        QCheck_alcotest.to_alcotest prop_filter;
        QCheck_alcotest.to_alcotest prop_join;
        QCheck_alcotest.to_alcotest prop_group;
        QCheck_alcotest.to_alcotest prop_order_limit;
        QCheck_alcotest.to_alcotest prop_update;
      ] );
  ]
